(** Bounded multi-producer multi-consumer queue with admission control.

    The server's connection threads push jobs, the worker domains pop
    them; both sides may live on different domains, so the queue is a
    plain mutex + condition monitor (OCaml 5 [Mutex]/[Condition] work
    across domains and systhreads alike).

    Admission is non-blocking by design: a full queue {e rejects} the
    push instead of blocking the connection thread, which is what lets
    the server answer [queue_full] immediately — backpressure surfaces
    as a typed protocol error, never as an unbounded internal buffer.

    {!close} switches the queue to drain mode: further pushes are
    refused with [`Closed], but consumers keep popping until the
    backlog is empty and only then observe [None] — exactly the
    graceful-shutdown contract ("finish everything admitted, admit
    nothing new"). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity < 0] is clamped to 0. A zero-capacity queue refuses every
    push — the degenerate configuration tests use to exercise admission
    control deterministically. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Jobs currently waiting (popped jobs no longer count). *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Never blocks. [`Closed] wins over [`Full] once {!close} ran. *)

val pop : 'a t -> 'a option
(** Block until a job is available ([Some]) or the queue is closed
    {e and} drained ([None]). FIFO across all producers. *)

val close : 'a t -> unit
(** Idempotent. Wakes every blocked consumer. *)

val is_closed : 'a t -> bool
