lib/workloads/random_reversible.ml: Array Char Float List Quantum Random String
