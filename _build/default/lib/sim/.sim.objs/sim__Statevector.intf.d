lib/sim/statevector.mli: Complex Hardware Quantum Random
