type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity = max 0 capacity;
    closed = false;
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let length t = with_lock t (fun () -> Queue.length t.items)

let try_push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.take t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = with_lock t (fun () -> t.closed)
