(* Device-keyed distance-matrix cache.

   These tests serialise on the global cache (clear + reset counters at
   the start of each case), so they stay meaningful whatever order
   alcotest runs them in. *)

module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Cache = Hardware.Dist_cache
module Engine = Sabre.Engine

let check = Alcotest.check
let tc = Alcotest.test_case

let path n =
  Coupling.create ~n_qubits:n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  Coupling.create ~n_qubits:n
    ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let flat_of_matrix m =
  let n = Array.length m in
  Array.init (n * n) (fun i -> float_of_int m.(i / n).(i mod n))

let test_hit_miss_accounting () =
  Cache.clear ();
  let d, outcome = Cache.lookup (Devices.ibm_q20_tokyo ()) in
  check Alcotest.bool "first lookup misses" true (outcome = `Miss);
  (* a structurally equal but physically distinct instance must hit *)
  let d', outcome' = Cache.lookup (Devices.ibm_q20_tokyo ()) in
  check Alcotest.bool "fresh equal instance hits" true (outcome' = `Hit);
  check Alcotest.bool "hit shares the cached array" true (d == d');
  let s = Cache.stats () in
  check Alcotest.int "misses" 1 s.misses;
  check Alcotest.int "hits" 1 s.hits;
  check Alcotest.int "entries" 1 s.entries;
  check
    (Alcotest.array (Alcotest.float 0.0))
    "cached matrix equals the per-instance one"
    (flat_of_matrix (Coupling.distance_matrix (Devices.ibm_q20_tokyo ())))
    d

let test_equal_qubit_count_devices_do_not_collide () =
  Cache.clear ();
  let p, po = Cache.lookup (path 6) in
  let r, ro = Cache.lookup (ring 6) in
  check Alcotest.bool "both miss" true (po = `Miss && ro = `Miss);
  check Alcotest.bool "digests differ" true
    (Coupling.digest (path 6) <> Coupling.digest (ring 6));
  (* endpoints: 5 hops apart on the path, adjacent on the ring *)
  check (Alcotest.float 0.0) "path endpoint distance" 5.0 p.((0 * 6) + 5);
  check (Alcotest.float 0.0) "ring endpoint distance" 1.0 r.((0 * 6) + 5);
  check Alcotest.int "two resident entries" 2 (Cache.stats ()).entries

let test_lru_eviction_at_capacity () =
  Cache.clear ();
  (* fill to capacity with distinct devices (paths of growing length) *)
  let dev i = path (i + 2) in
  for i = 0 to Cache.capacity () - 1 do
    ignore (Cache.lookup (dev i))
  done;
  check Alcotest.int "at capacity, nothing evicted" 0
    (Cache.stats ()).evictions;
  (* refresh entry 0 so entry 1 becomes the least recently used *)
  check Alcotest.bool "entry 0 still resident" true
    (snd (Cache.lookup (dev 0)) = `Hit);
  ignore (Cache.lookup (path (Cache.capacity () + 2)));
  let s = Cache.stats () in
  check Alcotest.int "one eviction past capacity" 1 s.evictions;
  check Alcotest.int "resident count stays at capacity" (Cache.capacity ())
    s.entries;
  check Alcotest.bool "refreshed entry survived" true
    (snd (Cache.lookup (dev 0)) = `Hit);
  check Alcotest.bool "least recently used entry was evicted" true
    (snd (Cache.lookup (dev 1)) = `Miss)

let test_set_capacity_evicts_down () =
  Cache.clear ();
  let original = Cache.capacity () in
  Fun.protect
    ~finally:(fun () ->
      Cache.set_capacity original;
      Cache.clear ())
    (fun () ->
      for i = 0 to 7 do
        ignore (Cache.lookup (path (i + 2)))
      done;
      check Alcotest.int "eight resident" 8 (Cache.stats ()).entries;
      (* keep 2 and 7 warm, then shrink: only the warmest three survive *)
      ignore (Cache.lookup (path 4));
      ignore (Cache.lookup (path 9));
      Cache.set_capacity 3;
      check Alcotest.int "capacity reported" 3 (Cache.capacity ());
      let s = Cache.stats () in
      check Alcotest.int "evicted down to the new capacity" 3 s.entries;
      check Alcotest.int "evictions counted" 5 s.evictions;
      check Alcotest.bool "most recently used survived" true
        (snd (Cache.lookup (path 9)) = `Hit);
      check Alcotest.bool "refreshed entry survived" true
        (snd (Cache.lookup (path 4)) = `Hit);
      check Alcotest.bool "cold entry evicted" true
        (snd (Cache.lookup (path 2)) = `Miss);
      (* growing back does not resurrect anything *)
      Cache.set_capacity 16;
      check Alcotest.bool "rejects capacity below 1" true
        (match Cache.set_capacity 0 with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_reset_stats_keeps_entries () =
  Cache.clear ();
  ignore (Cache.lookup (path 4));
  Cache.reset_stats ();
  let s = Cache.stats () in
  check Alcotest.int "counters zeroed" 0 (s.hits + s.misses + s.evictions);
  check Alcotest.int "entries survive reset" 1 s.entries;
  check Alcotest.bool "entry still hits" true (snd (Cache.lookup (path 4)) = `Hit)

let test_context_create_reports_cache_outcome () =
  Cache.clear ();
  let circuit = Workloads.Qft.circuit 4 in
  let counters ctx = Engine.Context.counters ctx in
  let first = counters (Engine.Context.create (Devices.ibm_q20_tokyo ()) circuit) in
  check Alcotest.int "cold create counts a miss" 1
    (List.assoc "context.dist_cache_miss" first);
  check Alcotest.int "cold create counts no hit" 0
    (List.assoc "context.dist_cache_hit" first);
  let second =
    counters (Engine.Context.create (Devices.ibm_q20_tokyo ()) circuit)
  in
  check Alcotest.int "warm create counts a hit" 1
    (List.assoc "context.dist_cache_hit" second);
  check Alcotest.int "warm create counts no miss" 0
    (List.assoc "context.dist_cache_miss" second)

let test_concurrent_lookups_safe () =
  Cache.clear ();
  let per_domain = 25 and n_domains = 4 in
  let worker _ =
    Domain.spawn (fun () ->
        let sum = ref 0.0 in
        for _ = 1 to per_domain do
          (* fresh instance every time: every iteration goes through the
             digest + lock path, racing insert-vs-hit on the first rounds *)
          let d = Cache.hop_distances (Devices.ibm_q20_tokyo ()) in
          sum := !sum +. d.(1)
        done;
        !sum)
  in
  let sums =
    Array.map Domain.join (Array.init n_domains worker)
  in
  let expected = Array.make n_domains sums.(0) in
  check
    (Alcotest.array (Alcotest.float 0.0))
    "every domain read the same matrix" expected sums;
  let s = Cache.stats () in
  check Alcotest.int "every lookup accounted for"
    (per_domain * n_domains)
    (s.hits + s.misses);
  (* find-or-insert is one critical section, so exactly one lookup pays
     the BFS however many domains race on the first round *)
  check Alcotest.int "exactly one miss" 1 s.misses;
  check Alcotest.int "one resident entry" 1 s.entries

let test_integer_view_agrees_with_float () =
  Cache.clear ();
  let flat, flat_int, outcome = Cache.lookup_all (Devices.ibm_q20_tokyo ()) in
  check Alcotest.bool "first lookup_all misses" true (outcome = `Miss);
  check Alcotest.int "same length" (Array.length flat) (Array.length flat_int);
  Array.iteri
    (fun i f ->
      check Alcotest.bool "entrywise float_of_int agreement" true
        (Float.equal f (float_of_int flat_int.(i))))
    flat;
  (* one accounting event per lookup_all, same as lookup *)
  let s = Cache.stats () in
  check Alcotest.int "single miss recorded" 1 (s.hits + s.misses)

let test_integer_view_shared_on_hit () =
  Cache.clear ();
  let _, i1, _ = Cache.lookup_all (path 7) in
  let _, i2, outcome = Cache.lookup_all (path 7) in
  check Alcotest.bool "second lookup_all hits" true (outcome = `Hit);
  check Alcotest.bool "hit shares the cached int array" true (i1 == i2);
  check Alcotest.bool "hop_distances_int reads the same entry" true
    (Cache.hop_distances_int (path 7) == i1)

let suite =
  [
    tc "hit/miss accounting" `Quick test_hit_miss_accounting;
    tc "equal qubit counts do not collide" `Quick
      test_equal_qubit_count_devices_do_not_collide;
    tc "LRU eviction at capacity" `Quick test_lru_eviction_at_capacity;
    tc "set_capacity evicts down and validates" `Quick
      test_set_capacity_evicts_down;
    tc "reset_stats keeps entries" `Quick test_reset_stats_keeps_entries;
    tc "Context.create reports cache outcome" `Quick
      test_context_create_reports_cache_outcome;
    tc "concurrent lookups are safe" `Quick test_concurrent_lookups_safe;
    tc "integer view agrees with float" `Quick
      test_integer_view_agrees_with_float;
    tc "integer view shared on hit" `Quick test_integer_view_shared_on_hit;
  ]
