module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Config = Sabre_core.Config

let name = "dag"

let pass =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      if ctx.cache_status = Context.Cache_hit then
        (* routed result already in hand: nothing downstream needs the
           DAG, and skipping its construction is most of the hit's win *)
        Pass.count instrument ~pass:name ctx "cached" 1
      else
      let build =
        if ctx.config.Config.commutation_aware then Dag.of_circuit_commuting
        else Dag.of_circuit
      in
      let forward = build ctx.circuit in
      let backward =
        if ctx.config.Config.traversals > 1 then
          Some (build (Circuit.reverse ctx.circuit))
        else None
      in
      let ctx = { ctx with dag_forward = Some forward; dag_backward = backward } in
      Pass.count instrument ~pass:name ctx "nodes" (Dag.n_nodes forward))
