lib/quantum/commutation.mli: Gate
