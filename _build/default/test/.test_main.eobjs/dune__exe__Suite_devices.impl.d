test/suite_devices.ml: Alcotest Hardware List
