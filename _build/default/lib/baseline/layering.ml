module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

type layer = { gates : Gate.t list }

let partition c =
  let layers = ref [] in
  let current = ref [] in
  let busy = Hashtbl.create 16 in
  let close () =
    if !current <> [] then begin
      layers := { gates = List.rev !current } :: !layers;
      current := [];
      Hashtbl.reset busy
    end
  in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier _ -> close ()
      | _ ->
        let qs = Gate.qubits g in
        if List.exists (Hashtbl.mem busy) qs then close ();
        List.iter (fun q -> Hashtbl.replace busy q ()) qs;
        current := g :: !current)
    (Circuit.gates c);
  close ();
  List.rev !layers

let partition_asap c =
  let weight g = if Gate.is_two_qubit g then 1 else 0 in
  let { Quantum.Depth.levels; depth } = Quantum.Depth.asap ~weight c in
  let buckets = Array.make (depth + 1) [] in
  let gates = Circuit.gate_array c in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.Barrier _ -> ()
      | _ -> buckets.(levels.(i)) <- g :: buckets.(levels.(i)))
    gates;
  Array.to_list buckets
  |> List.filter_map (fun l ->
         match l with [] -> None | _ -> Some { gates = List.rev l })

let two_qubit_pairs layer = List.filter_map Gate.two_qubit_pair layer.gates
let layer_count c = List.length (partition c)
