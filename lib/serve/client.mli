(** Blocking client for the routing service.

    A thin, dependency-free counterpart to {!Server}: one socket, one
    request on the wire at a time, {!Netline} framing, {!Protocol}
    codec. The test suite, the benchmark driver and the CI smoke
    script all talk to the daemon through this module (or through the
    documented NDJSON protocol directly). *)

type t

val connect : ?retry_for_s:float -> Protocol.endpoint -> t
(** Connect to a server. [retry_for_s] (default 0) keeps retrying
    [ENOENT]/[ECONNREFUSED] for that many seconds — covers the race
    between spawning a daemon and its socket appearing. Ignores
    [SIGPIPE] process-wide. Raises [Unix.Unix_error] when the
    connection cannot be established in time. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response. [Error] means a
    transport-level failure (connection lost, undecodable response
    line), not a server-side error — those arrive as
    [Ok (Error_resp _)]. *)

val close : t -> unit
(** Idempotent. *)

val with_connection :
  ?retry_for_s:float -> Protocol.endpoint -> (t -> 'a) -> 'a
(** [connect], run, [close] on all exits. *)
