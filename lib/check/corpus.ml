module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config

type repro = {
  router : string;
  property : string;
  seed : int;
  failure : string;
  config : Config.t;
  coupling : Coupling.t;
  circuit : Circuit.t;
}

let header = "sabre-fuzz repro v1"

let heuristic_to_string = function
  | Config.Basic -> "basic"
  | Config.Lookahead -> "lookahead"
  | Config.Decay -> "decay"

let heuristic_of_string = function
  | "basic" -> Ok Config.Basic
  | "lookahead" -> Ok Config.Lookahead
  | "decay" -> Ok Config.Decay
  | s -> Error (Printf.sprintf "unknown heuristic %S" s)

(* Floats are written in hex notation (%h) so a round-trip is bit-exact. *)
let config_to_string (c : Config.t) =
  Printf.sprintf
    "heuristic:%s extended_set_size:%d extended_set_weight:%h \
     decay_increment:%h decay_reset_interval:%d trials:%d traversals:%d \
     seed:%d stall_limit:%s commutation_aware:%b"
    (heuristic_to_string c.heuristic)
    c.extended_set_size c.extended_set_weight c.decay_increment
    c.decay_reset_interval c.trials c.traversals c.seed
    (match c.stall_limit with None -> "none" | Some s -> string_of_int s)
    c.commutation_aware

let config_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
    |> List.filter_map (fun f ->
           match String.index_opt f ':' with
           | None -> None
           | Some i ->
             Some
               ( String.sub f 0 i,
                 String.sub f (i + 1) (String.length f - i - 1) ))
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "config: missing field %S" k)
  in
  let int_field k =
    let* v = get k in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "config: bad int %S for %s" v k)
  in
  let float_field k =
    let* v = get k in
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "config: bad float %S for %s" v k)
  in
  let* h = get "heuristic" in
  let* heuristic = heuristic_of_string h in
  let* extended_set_size = int_field "extended_set_size" in
  let* extended_set_weight = float_field "extended_set_weight" in
  let* decay_increment = float_field "decay_increment" in
  let* decay_reset_interval = int_field "decay_reset_interval" in
  let* trials = int_field "trials" in
  let* traversals = int_field "traversals" in
  let* seed = int_field "seed" in
  let* stall = get "stall_limit" in
  let* stall_limit =
    if stall = "none" then Ok None
    else
      match int_of_string_opt stall with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "config: bad stall_limit %S" stall)
  in
  let* commut = get "commutation_aware" in
  let* commutation_aware =
    match bool_of_string_opt commut with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "config: bad bool %S" commut)
  in
  Ok
    {
      Config.heuristic;
      extended_set_size;
      extended_set_weight;
      decay_increment;
      decay_reset_interval;
      trials;
      traversals;
      seed;
      stall_limit;
      commutation_aware;
    }

let coupling_to_string c =
  Printf.sprintf "n:%d edges:%s" (Coupling.n_qubits c)
    (String.concat ","
       (List.map
          (fun (a, b) -> Printf.sprintf "%d-%d" a b)
          (Coupling.edges c)))

let coupling_of_string s =
  let ( let* ) = Result.bind in
  match String.split_on_char ' ' (String.trim s) with
  | [ n_field; e_field ]
    when String.length n_field > 2
         && String.sub n_field 0 2 = "n:"
         && String.length e_field >= 6
         && String.sub e_field 0 6 = "edges:" -> (
    let* n =
      match
        int_of_string_opt (String.sub n_field 2 (String.length n_field - 2))
      with
      | Some n -> Ok n
      | None -> Error "device: bad qubit count"
    in
    let edges_s = String.sub e_field 6 (String.length e_field - 6) in
    let* edges =
      if edges_s = "" then Ok []
      else
        String.split_on_char ',' edges_s
        |> List.fold_left
             (fun acc e ->
               let* acc = acc in
               match String.split_on_char '-' e with
               | [ a; b ] -> (
                 match (int_of_string_opt a, int_of_string_opt b) with
                 | Some a, Some b -> Ok ((a, b) :: acc)
                 | _ -> Error (Printf.sprintf "device: bad edge %S" e))
               | _ -> Error (Printf.sprintf "device: bad edge %S" e))
             (Ok [])
        |> Result.map List.rev
    in
    match Coupling.create ~n_qubits:n edges with
    | c -> Ok c
    | exception Invalid_argument msg -> Error ("device: " ^ msg))
  | _ -> Error "device: expected \"n:<int> edges:<a-b,...>\""

(* newlines in the captured failure message would break the line format *)
let escape_line s =
  String.concat "\\n" (String.split_on_char '\n' s)

let to_string r =
  String.concat "\n"
    [
      header;
      "router=" ^ r.router;
      "property=" ^ r.property;
      "seed=" ^ string_of_int r.seed;
      "failure=" ^ escape_line r.failure;
      "config=" ^ config_to_string r.config;
      "device=" ^ coupling_to_string r.coupling;
      "qasm:";
      Quantum.Qasm.to_string r.circuit;
    ]

let of_string s =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = header ->
    let rec split_fields acc = function
      | [] -> Error "missing \"qasm:\" section"
      | l :: rest when String.trim l = "qasm:" ->
        Ok (List.rev acc, String.concat "\n" rest)
      | l :: rest -> (
        match String.index_opt l '=' with
        | Some i ->
          split_fields
            ((String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
            :: acc)
            rest
        | None -> Error (Printf.sprintf "bad line %S" l))
    in
    let* fields, qasm = split_fields [] rest in
    let get k =
      match List.assoc_opt k fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" k)
    in
    let* router = get "router" in
    let* property = get "property" in
    let* seed_s = get "seed" in
    let* seed =
      match int_of_string_opt seed_s with
      | Some i -> Ok i
      | None -> Error "bad seed"
    in
    let* failure = get "failure" in
    let* config_s = get "config" in
    let* config = config_of_string config_s in
    let* device_s = get "device" in
    let* coupling = coupling_of_string device_s in
    let* circuit =
      match Quantum.Qasm.of_string qasm with
      | c -> Ok c
      | exception Quantum.Qasm.Parse_error { line; column; message } ->
        Error (Printf.sprintf "qasm:%d:%d: %s" line column message)
    in
    Ok { router; property; seed; failure; config; coupling; circuit }
  | _ -> Error (Printf.sprintf "not a %S file" header)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let save ~dir r =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "repro-%s-%s-%d.txt" r.router r.property r.seed)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r));
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
