module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats
module Routing = Sabre_core.Routing_pass
module Context = Engine.Context
module Router = Engine.Router
module Race = Engine.Race

(* HAIL-style routing (arXiv:2502.07536): program-order SWAP insertion
   scored by a layer-weight-decayed lookahead. Each decision looks at
   the two-qubit gates of the next [lookahead_layers] static ASAP
   layers, weighting a pair in layer offset k as [lookahead_layers - k]
   (the blocked front gate carries the full weight), and only considers
   SWAPs on edges incident to the front gate's operands — HAIL's
   search-space reduction. Candidate evaluation reuses the PR 5 delta
   contract: with an integer distance view the score change is the
   exact integer sum over the window pairs touching the swapped
   occupants; a non-integer metric falls back to a full float recompute
   per candidate. *)

let name = "hail"
let deterministic = false
let derives_seed = false
let lookahead_layers = 4
let window_cap = 64 (* weighted pairs per decision *)
let scan_cap = 512 (* gates scanned ahead when filling the window *)

(* static ASAP layer of each gate: only two-qubit gates take a step,
   single-qubit gates and measurements ride along (cf. Layering) *)
let asap_layers gates n_logical =
  let qlevel = Array.make (max 1 n_logical) 0 in
  Array.map
    (fun g ->
      match Gate.two_qubit_pair g with
      | Some (a, b) ->
        let l = max qlevel.(a) qlevel.(b) in
        qlevel.(a) <- l + 1;
        qlevel.(b) <- l + 1;
        l
      | None -> -1)
    gates

let route (ctx : Context.t) ~initial =
  let coupling = ctx.Context.coupling in
  let circuit = ctx.Context.circuit in
  let config = ctx.Context.config in
  let n_physical = Coupling.n_qubits coupling in
  let stride = n_physical in
  let dist = ctx.Context.dist in
  let dist_int = ctx.Context.dist_int in
  let gates = Circuit.gate_array circuit in
  let layer = asap_layers gates (Circuit.n_qubits circuit) in
  let mapping = Mapping.copy initial in
  let trial_initial = Mapping.copy initial in
  let out = ref [] in
  let n_swaps = ref 0 in
  let fallback_swaps = ref 0 in
  let decisions = ref 0 in
  let candidates = ref 0 in
  let delta_terms = ref 0 in
  let full_terms = ref 0 in
  (* Race plumbing: hail is a single forward pass, so the whole run is
     the "final traversal" whose monotone counters (SWAPs inserted,
     prefix ASAP depth) certify a pruning bound. The depth tracker and
     the every-N progress check only engage when a token is present;
     the hookless hot path is untouched. *)
  (match ctx.Context.race with
  | Some r -> Race.note_traversal r ~final:true
  | None -> ());
  let hook = Option.map (fun r -> Race.hook r) ctx.Context.race in
  let depth_lb = ref 0 in
  let note_depth =
    match hook with
    | None -> fun _ -> ()
    | Some _ ->
      let ready = Array.make n_physical 0 in
      fun g ->
        let w =
          match g with Gate.Swap _ -> 3 | Gate.Barrier _ -> 0 | _ -> 1
        in
        let qs = Gate.qubits g in
        let start = List.fold_left (fun acc q -> max acc ready.(q)) 0 qs in
        let finish = start + w in
        List.iter (fun q -> ready.(q) <- finish) qs;
        if finish > !depth_lb then depth_lb := finish
  in
  let emit g =
    note_depth g;
    out := g :: !out
  in
  let swap pa pb =
    emit (Gate.Swap (pa, pb));
    Mapping.swap_physical_inplace mapping pa pb;
    incr n_swaps
  in
  (* lookahead window for the blocked gate at index [i]: logical pairs +
     integer weights; static per gate (only distances change as the
     mapping moves) *)
  let wq1 = Array.make window_cap 0 in
  let wq2 = Array.make window_cap 0 in
  let ww = Array.make window_cap 0 in
  let fill_window i l0 =
    let count = ref 0 in
    let j = ref i in
    while
      !count < window_cap
      && !j < Array.length gates
      && !j - i < scan_cap
    do
      (match Gate.two_qubit_pair gates.(!j) with
      | Some (a, b) when a <> b && layer.(!j) < l0 + lookahead_layers ->
        let w = lookahead_layers - max 0 (layer.(!j) - l0) in
        wq1.(!count) <- a;
        wq2.(!count) <- b;
        ww.(!count) <- w;
        incr count
      | _ -> ());
      incr j
    done;
    !count
  in
  (* positions after a hypothetical SWAP of the occupants of pa/pb *)
  let pos_after ~la ~lb ~pa ~pb q =
    if q = la && la >= 0 then pb
    else if q = lb && lb >= 0 then pa
    else Mapping.to_physical mapping q
  in
  let delta_exact di win pa pb =
    let la = Mapping.to_logical mapping pa
    and lb = Mapping.to_logical mapping pb in
    let d = ref 0 in
    for k = 0 to win - 1 do
      let a = wq1.(k) and b = wq2.(k) in
      if (a = la || a = lb || b = la || b = lb) && (la >= 0 || lb >= 0) then begin
        let old_d = di.((Mapping.to_physical mapping a * stride)
                        + Mapping.to_physical mapping b)
        and new_d =
          di.((pos_after ~la ~lb ~pa ~pb a * stride)
              + pos_after ~la ~lb ~pa ~pb b)
        in
        d := !d + (ww.(k) * (new_d - old_d));
        incr delta_terms
      end
    done;
    float_of_int !d
  in
  let score_full_after win pa pb =
    let la = Mapping.to_logical mapping pa
    and lb = Mapping.to_logical mapping pb in
    let s = ref 0.0 in
    for k = 0 to win - 1 do
      let a = pos_after ~la ~lb ~pa ~pb wq1.(k)
      and b = pos_after ~la ~lb ~pa ~pb wq2.(k) in
      s := !s +. (float_of_int ww.(k) *. dist.((a * stride) + b));
      incr full_terms
    done;
    !s
  in
  (* candidate edges incident to either operand's position, deduped and
     visited in edge-id order so ties break deterministically *)
  let pick_swap win q1 q2 =
    incr decisions;
    let p1 = Mapping.to_physical mapping q1
    and p2 = Mapping.to_physical mapping q2 in
    let cands = ref [] in
    let add p =
      List.iter
        (fun p' -> cands := Coupling.edge_id coupling p p' :: !cands)
        (Coupling.neighbors coupling p)
    in
    add p1;
    add p2;
    let cands = List.sort_uniq compare !cands in
    let best = ref (-1) and best_score = ref infinity in
    List.iter
      (fun eid ->
        let pa, pb = Coupling.edge_endpoints coupling eid in
        incr candidates;
        let score =
          match dist_int with
          | Some di -> delta_exact di win pa pb
          | None ->
            (* non-integer metric: full recompute; subtracting the
               shared base preserves the comparison *)
            score_full_after win pa pb
        in
        if score < !best_score then begin
          best_score := score;
          best := eid
        end)
      cands;
    Coupling.edge_endpoints coupling !best
  in
  (* anti-livelock fallback: walk the shortest path like the greedy
     baseline, counting the forced swaps *)
  let fallback_adjacent q1 q2 =
    let p1 = Mapping.to_physical mapping q1
    and p2 = Mapping.to_physical mapping q2 in
    if not (Coupling.connected coupling p1 p2) then begin
      let path = Coupling.shortest_path coupling p1 p2 in
      let rec walk = function
        | a :: (b :: (_ :: _ as rest)) ->
          swap a b;
          incr fallback_swaps;
          walk (b :: rest)
        | _ -> ()
      in
      walk path
    end
  in
  let stall_limit =
    match config.Sabre_core.Config.stall_limit with
    | Some s -> s
    | None -> 2 * n_physical
  in
  let check =
    match hook with
    | None -> fun () -> ()
    | Some { Routing.every; notify } ->
      let every = max 1 every in
      let next = ref every in
      fun () ->
        if !decisions >= !next then begin
          next := !decisions + every;
          match
            notify
              {
                Routing.swaps = !n_swaps;
                decisions = !decisions;
                depth_lb = !depth_lb;
              }
          with
          | Routing.Continue -> ()
          | Routing.Stop -> raise Routing.Cancelled
        end
  in
  Array.iteri
    (fun i g ->
      (match Gate.two_qubit_pair g with
      | Some (q1, q2) when q1 <> q2 ->
        let win = fill_window i layer.(i) in
        let gate_dist () =
          dist.((Mapping.to_physical mapping q1 * stride)
                + Mapping.to_physical mapping q2)
        in
        let best_seen = ref (gate_dist ()) in
        let stalls = ref 0 in
        while
          not
            (Coupling.connected coupling
               (Mapping.to_physical mapping q1)
               (Mapping.to_physical mapping q2))
        do
          if !stalls > stall_limit then fallback_adjacent q1 q2
          else begin
            let pa, pb = pick_swap win q1 q2 in
            swap pa pb;
            let d = gate_dist () in
            if d < !best_seen then begin
              best_seen := d;
              stalls := 0
            end
            else incr stalls
          end;
          check ()
        done
      | _ -> ());
      emit (Gate.remap (Mapping.to_physical mapping) g))
    gates;
  {
    Router.physical =
      Circuit.create ~n_qubits:n_physical ~n_clbits:(Circuit.n_clbits circuit)
        (List.rev !out);
    trial_initial;
    final_mapping = mapping;
    n_swaps = !n_swaps;
    first_swaps = !n_swaps;
    search_steps = !decisions;
    fallback_swaps = !fallback_swaps;
    traversals = 1;
    scoring =
      {
        Stats.decisions = !decisions;
        candidates = !candidates;
        delta_terms = !delta_terms;
        full_terms = !full_terms;
      };
  }

let router : Router.t =
  (module struct
    let name = name
    let deterministic = deterministic
    let derives_seed = derives_seed
    let route = route
  end)
