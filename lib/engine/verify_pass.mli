(** Semantic verification of the routed circuit.

    Strict mode (the default) uses the permutation tracker: the physical
    circuit must be coupling-compliant and, gate for gate, a remapping
    of the logical circuit under the evolving π. When the config is
    commutation-aware, reordering of commuting gates is legal, so the
    pass instead checks compliance plus that the unrouted circuit is a
    linearisation of the commuting DAG.

    Sets [verified = Some true] on success. *)

exception Verify_failed of string

val pass : Pass.t
