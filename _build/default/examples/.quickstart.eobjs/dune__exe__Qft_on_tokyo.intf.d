examples/qft_on_tokyo.mli:
