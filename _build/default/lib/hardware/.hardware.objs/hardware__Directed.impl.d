lib/hardware/directed.ml: Coupling Hashtbl List Printf Quantum
