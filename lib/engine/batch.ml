module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type job = { name : string; circuit : Circuit.t }

type success = {
  name : string;
  router : string;
  physical : Circuit.t;
  initial : Mapping.t;
  final : Mapping.t;
  stats : Stats.t;
}

type error = { name : string; message : string }
type outcome = (success, error) result

type report = {
  outcomes : outcome array;
  wall_s : float;
  domains : int;
  domain_stats : Scheduler.domain_stats array;
}

let wall = Unix.gettimeofday

let compile_one ~config ~router_name ~pipeline ~cache ~instrument coupling job
    =
  let t0 = wall () in
  let cache_spec = if cache then Some router_name else None in
  match
    Context.create ~config ~trial_mode:Trial_runner.Sequential ~instrument
      ?cache_spec coupling job.circuit
    |> Pipeline.run ~instrument pipeline
  with
  | ctx ->
    let r = Context.routed_exn ctx in
    Ok
      {
        name = job.name;
        router = router_name;
        physical = r.Context.physical;
        initial = r.Context.trial_initial;
        final = r.Context.final_mapping;
        stats = Context.stats ctx ~time_s:(wall () -. t0);
      }
  | exception Router.Route_failed msg -> Error { name = job.name; message = msg }
  | exception Verify_pass.Verify_failed msg ->
    Error { name = job.name; message = msg }
  | exception Invalid_argument msg -> Error { name = job.name; message = msg }

(* a portfolio job: entries race sequentially inside the job (parallelism
   stays across jobs), the winner becomes the job's success and its
   entry label the [router] field *)
let compile_portfolio ~config ~entries ~objective ~verify ~race ~cache
    ~instrument coupling job =
  let t0 = wall () in
  match
    Portfolio.run ~domains:1 ~objective ~config ~verify ~race ~cache
      ~instrument coupling job.circuit entries
  with
  | report ->
    let m = Portfolio.winner_member report in
    Ok
      {
        name = job.name;
        router = Portfolio.entry_name m.Portfolio.entry;
        physical = m.Portfolio.physical;
        initial = m.Portfolio.initial;
        final = m.Portfolio.final;
        stats = { m.Portfolio.stats with Stats.time_s = wall () -. t0 };
      }
  | exception Router.Route_failed msg -> Error { name = job.name; message = msg }
  | exception Verify_pass.Verify_failed msg ->
    Error { name = job.name; message = msg }
  | exception Invalid_argument msg -> Error { name = job.name; message = msg }

(* Manifest-level deduplication: identical rows (same circuit, same
   device/config/router for the whole batch) route once; every duplicate
   receives the representative's outcome under its own name. Rows are
   bucketed by the strict program-order digest and confirmed with
   [Circuit.equal] before folding, so a hash collision degrades to a
   redundant route, never to serving the wrong circuit. Failure
   isolation is preserved exactly because routing is deterministic: a
   duplicate of a failing row would have failed identically, so fanning
   the error out changes nothing but the wall clock. *)
let dedup_plan jobs =
  let index : (string, (Circuit.t * int) list) Hashtbl.t =
    Hashtbl.create (Array.length jobs)
  in
  let uniques = ref [] and n_unique = ref 0 in
  let owner =
    Array.map
      (fun job ->
        let d = Circuit.digest job.circuit in
        let bucket =
          Option.value (Hashtbl.find_opt index d) ~default:[]
        in
        match
          List.find_opt (fun (c, _) -> Circuit.equal c job.circuit) bucket
        with
        | Some (_, u) -> u
        | None ->
          let u = !n_unique in
          Hashtbl.replace index d ((job.circuit, u) :: bucket);
          incr n_unique;
          uniques := job :: !uniques;
          u)
      jobs
  in
  (Array.of_list (List.rev !uniques), owner)

let rename name : outcome -> outcome = function
  | Ok (s : success) -> Ok { s with name }
  | Error (e : error) -> Error { e with name }

let compile_many ?(config = Config.default) ?(router = Sabre_router.router)
    ?portfolio ?(domains = 1) ?(verify = false) ?(race = false)
    ?(cache = false) ?(dedup = true) ?(instrument = Instrument.null) coupling
    jobs =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Batch: " ^ msg));
  (* Warm the device-keyed distance cache once on the calling domain so
     workers start from a hit instead of racing on the first miss. *)
  ignore (Hardware.Dist_cache.hop_distances coupling);
  let unique_jobs, owner =
    if dedup then dedup_plan jobs
    else (jobs, Array.init (Array.length jobs) Fun.id)
  in
  let thunks =
    match portfolio with
    | Some (entries, objective) ->
      Array.map
        (fun job () ->
          compile_portfolio ~config ~entries ~objective ~verify ~race ~cache
            ~instrument coupling job)
        unique_jobs
    | None ->
      let pipeline = Pipeline.default ~router ~verify () in
      let router_name = Router.name router in
      Array.map
        (fun job () ->
          compile_one ~config ~router_name ~pipeline ~cache ~instrument
            coupling job)
        unique_jobs
  in
  let t0 = wall () in
  let domains = max 1 (min domains (max 1 (Array.length unique_jobs))) in
  let { Scheduler.results; stats } = Scheduler.run_report ~domains thunks in
  let outcomes =
    Array.mapi (fun i (job : job) -> rename job.name results.(owner.(i))) jobs
  in
  {
    outcomes;
    wall_s = wall () -. t0;
    domains;
    domain_stats = stats;
  }
