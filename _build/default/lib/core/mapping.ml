type t = { l2p : int array; p2l : int array }

let identity ~n_logical ~n_physical =
  if n_logical > n_physical then
    invalid_arg "Mapping.identity: more logical than physical qubits";
  {
    l2p = Array.init n_logical Fun.id;
    p2l = Array.init n_physical (fun p -> if p < n_logical then p else -1);
  }

let of_array ~n_physical l2p =
  let n = Array.length l2p in
  if n > n_physical then
    invalid_arg "Mapping.of_array: more logical than physical qubits";
  let p2l = Array.make n_physical (-1) in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_physical then
        invalid_arg "Mapping.of_array: physical index out of range";
      if p2l.(p) >= 0 then invalid_arg "Mapping.of_array: not injective";
      p2l.(p) <- l)
    l2p;
  { l2p = Array.copy l2p; p2l }

let random ~state ~n_logical ~n_physical =
  if n_logical > n_physical then
    invalid_arg "Mapping.random: more logical than physical qubits";
  let places = Array.init n_physical Fun.id in
  for i = n_physical - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let tmp = places.(i) in
    places.(i) <- places.(j);
    places.(j) <- tmp
  done;
  of_array ~n_physical (Array.sub places 0 n_logical)

let n_logical m = Array.length m.l2p
let n_physical m = Array.length m.p2l
let to_physical m q = m.l2p.(q)
let to_logical m p = m.p2l.(p)
let l2p_array m = Array.copy m.l2p
let copy m = { l2p = Array.copy m.l2p; p2l = Array.copy m.p2l }

let swap_physical_inplace m p1 p2 =
  let l1 = m.p2l.(p1) and l2 = m.p2l.(p2) in
  m.p2l.(p1) <- l2;
  m.p2l.(p2) <- l1;
  if l1 >= 0 then m.l2p.(l1) <- p2;
  if l2 >= 0 then m.l2p.(l2) <- p1

let swap_physical m p1 p2 =
  let m' = copy m in
  swap_physical_inplace m' p1 p2;
  m'

let equal a b = a.l2p = b.l2p && a.p2l = b.p2l

let compose_permutation before after =
  if n_logical before <> n_logical after then
    invalid_arg "Mapping.compose_permutation: arity mismatch";
  let d = Array.init (n_physical before) Fun.id in
  Array.iteri (fun q p -> d.(p) <- after.l2p.(q)) before.l2p;
  d

let pp ppf m =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun q p -> Format.fprintf ppf "%sq%d↦Q%d" (if q > 0 then ", " else "") q p)
    m.l2p;
  Format.fprintf ppf "}@]"
