test/suite_statevector.ml: Alcotest Complex Float List Printf Quantum Random Sim Workloads
