examples/quickstart.ml: Format Hardware Quantum Sabre Sim
