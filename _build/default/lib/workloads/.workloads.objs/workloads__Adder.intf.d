lib/workloads/adder.mli: Quantum
