(** Per-pass instrumentation sink.

    Every pipeline pass emits timing and counter events into a sink.
    Sinks are first-class values so callers can choose where the events
    go: nowhere ({!null}), a human-readable stderr trace
    ({!stderr_trace}), or an in-memory collector ({!collector}) that the
    CLI turns into the [--stats-json] report and the benchmark harness
    into per-stage timing columns. *)

type event =
  | Pass_start of { pass : string }
  | Pass_end of { pass : string; wall_s : float }
      (** emitted by {!Pipeline.run} after each pass, with the pass's
          wall-clock duration in seconds *)
  | Counter of { pass : string; name : string; value : int }
      (** emitted by passes themselves: gate counts, trial counts,
          inserted SWAPs, search steps, ... *)

type t = { emit : event -> unit }

val null : t
(** Drops every event (the default sink). *)

val stderr_trace : t
(** One line per event on stderr, prefixed with [[engine]]. *)

val collector : unit -> t * (unit -> event list)
(** [collector ()] returns a sink and a function producing the events
    emitted so far, oldest first. Single-domain only: the buffer is an
    unsynchronised ref. Use {!sync_collector} when several domains
    share the sink. *)

val sync_collector : unit -> t * (unit -> event list)
(** Like {!collector}, but mutex-protected: safe to share across
    domains and threads (e.g. as the sink of {!Batch.compile_many}
    with [domains > 1], or of a {!Serve.Server}). Events from
    concurrent emitters interleave in lock-acquisition order; the
    read-back function may run concurrently with emitters and sees a
    consistent prefix. *)

val tee : t -> t -> t
(** Duplicates every event into both sinks. *)

val pp_event : Format.formatter -> event -> unit
