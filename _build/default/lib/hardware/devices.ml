(* IBM Q20 Tokyo (paper Fig. 2): qubits arranged in a 4x5 grid,

       0  1  2  3  4
       5  6  7  8  9
      10 11 12 13 14
      15 16 17 18 19

   with nearest-neighbour row/column couplers plus diagonal couplers in
   alternating 2x2 cells, matching the published device edge list. *)
let tokyo_edges =
  [
    (* rows *)
    (0, 1); (1, 2); (2, 3); (3, 4);
    (5, 6); (6, 7); (7, 8); (8, 9);
    (10, 11); (11, 12); (12, 13); (13, 14);
    (15, 16); (16, 17); (17, 18); (18, 19);
    (* columns *)
    (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    (5, 10); (6, 11); (7, 12); (8, 13); (9, 14);
    (10, 15); (11, 16); (12, 17); (13, 18); (14, 19);
    (* diagonals *)
    (1, 7); (2, 6); (3, 9); (4, 8);
    (5, 11); (6, 10); (7, 13); (8, 12);
    (11, 17); (12, 16); (13, 19); (14, 18);
  ]

let ibm_q20_tokyo () = Coupling.create ~n_qubits:20 tokyo_edges

let ibm_q5_yorktown () =
  Coupling.create ~n_qubits:5 [ (0, 1); (0, 2); (1, 2); (2, 3); (2, 4); (3, 4) ]

let ibm_qx5 () =
  (* 16-qubit ladder: two rows of 8, rung between facing qubits.
     Row A: 1..8 left-to-right is the historical numbering; we use
     0..7 top row, 15..8 bottom row so that i pairs with 15-i. *)
  let rows =
    List.init 7 (fun i -> (i, i + 1)) @ List.init 7 (fun i -> (8 + i, 9 + i))
  in
  let rungs = List.init 8 (fun i -> (i, 15 - i)) in
  Coupling.create ~n_qubits:16 (rows @ rungs)

let linear n =
  if n < 1 then invalid_arg "Devices.linear: need >= 1 qubits";
  Coupling.create ~n_qubits:n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Devices.ring: need >= 3 qubits";
  Coupling.create ~n_qubits:n
    ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Devices.grid: empty lattice";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Coupling.create ~n_qubits:(rows * cols) !edges

let star n =
  if n < 2 then invalid_arg "Devices.star: need >= 2 qubits";
  Coupling.create ~n_qubits:n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  if n < 1 then invalid_arg "Devices.complete: need >= 1 qubit";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Coupling.create ~n_qubits:n !edges

(* Heavy-hex-style lattice: [d] horizontal chains of width [2d+1], with a
   single bridge qubit between consecutive rows every fourth column,
   alternating offset — degree <= 3 everywhere, like IBM's heavy-hex
   devices. *)
let heavy_hex d =
  if d < 3 || d mod 2 = 0 then
    invalid_arg "Devices.heavy_hex: distance must be odd and >= 3";
  let width = (2 * d) + 1 in
  let row_base r = r * width in
  let edges = ref [] in
  for r = 0 to d - 1 do
    for c = 0 to width - 2 do
      edges := (row_base r + c, row_base r + c + 1) :: !edges
    done
  done;
  let next_bridge = ref (d * width) in
  let bridges = ref [] in
  for r = 0 to d - 2 do
    let offset = if r mod 2 = 0 then 0 else 2 in
    let c = ref offset in
    while !c < width do
      let b = !next_bridge in
      incr next_bridge;
      bridges := b :: !bridges;
      edges := (row_base r + !c, b) :: (b, row_base (r + 1) + !c) :: !edges;
      c := !c + 4
    done
  done;
  Coupling.create ~n_qubits:!next_bridge !edges

let squarish n =
  let rows = int_of_float (Float.sqrt (float_of_int n)) in
  let rows = max rows 1 in
  let cols = (n + rows - 1) / rows in
  (rows, cols)

let by_name name size =
  let need () =
    match size with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "device %S needs a size" name)
  in
  match String.lowercase_ascii name with
  | "tokyo" | "ibm_q20" | "q20" -> ibm_q20_tokyo ()
  | "yorktown" | "qx2" | "q5" -> ibm_q5_yorktown ()
  | "qx5" | "rueschlikon" | "q16" -> ibm_qx5 ()
  | "linear" | "line" | "chain" -> linear (need ())
  | "ring" | "cycle" -> ring (need ())
  | "grid" | "lattice" ->
    let rows, cols = squarish (need ()) in
    grid ~rows ~cols
  | "star" -> star (need ())
  | "complete" | "full" -> complete (need ())
  | "heavy_hex" | "heavyhex" -> heavy_hex (need ())
  | _ -> invalid_arg (Printf.sprintf "unknown device %S" name)

let all_named =
  [
    ("tokyo", ibm_q20_tokyo ());
    ("yorktown", ibm_q5_yorktown ());
    ("qx5", ibm_qx5 ());
    ("linear16", linear 16);
    ("ring16", ring 16);
    ("grid4x5", grid ~rows:4 ~cols:5);
    ("star12", star 12);
    ("complete8", complete 8);
    ("heavy_hex3", heavy_hex 3);
  ]
