(** Gate decompositions into the {single-qubit, CNOT} elementary set
    supported by the paper's IBM hardware model (Section II-A). *)

val swap_to_cnots : int -> int -> Gate.t list
(** [swap_to_cnots a b] is the 3-CNOT expansion of SWAP(a,b) shown in
    Fig. 3(a): CX(a,b); CX(b,a); CX(a,b). *)

val cz_to_cnot : int -> int -> Gate.t list
(** CZ(a,b) = H(b); CX(a,b); H(b). *)

val cphase : float -> int -> int -> Gate.t list
(** [cphase theta a b] is the controlled-phase gate used by QFT,
    decomposed as Rz/CNOT: Rz(θ/2) a; Rz(θ/2) b; CX(a,b); Rz(-θ/2) b;
    CX(a,b) — 2 CNOTs and 3 single-qubit gates. *)

val toffoli : int -> int -> int -> Gate.t list
(** [toffoli c1 c2 t] is the standard 6-CNOT, 9-single-qubit-gate
    decomposition of the Toffoli (CCX) gate (paper Fig. 1). *)

val expand_swaps : Circuit.t -> Circuit.t
(** Replace every SWAP in the circuit with its 3-CNOT expansion; all other
    gates are kept verbatim. *)

val expand_all : Circuit.t -> Circuit.t
(** Expand SWAP and CZ gates so the result contains only single-qubit
    gates, CNOTs, barriers and measurements. *)

val elementary_gate_count : Circuit.t -> int
(** Gate count after {!expand_all}, without building the expansion:
    SWAP counts 3, CZ counts 3, barrier/measure count 0, others 1. *)
