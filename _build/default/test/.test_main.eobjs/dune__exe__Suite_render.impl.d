test/suite_render.ml: Alcotest Array Hardware Helpers List Quantum String Workloads
