(* Engine pass-pipeline suite.

   The golden-equivalence tests pin the refactored pipeline to the
   pre-refactor [Compiler.run]: the MD5 digests below were produced by
   the monolithic compiler (commit before the engine extraction) over
   routed QASM + both mappings + every Stats.t field except [time_s].
   At fixed seeds the pipeline must reproduce them byte for byte. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Compiler = Sabre.Compiler
module Engine = Sabre.Engine

let check = Alcotest.check
let tc = Alcotest.test_case

let fingerprint (r : Compiler.result) =
  let mapping m =
    String.concat ","
      (Array.to_list (Array.map string_of_int (Mapping.l2p_array m)))
  in
  let s = r.stats in
  let payload =
    String.concat "\n"
      [
        Quantum.Qasm.to_string r.physical;
        mapping r.initial_mapping;
        mapping r.final_mapping;
        Printf.sprintf
          "swaps=%d added=%d orig=%d total=%d d0=%d d1=%d steps=%d fb=%d \
           trav=%d first=%d"
          s.n_swaps s.added_gates s.original_gates s.total_gates
          s.original_depth s.routed_depth s.search_steps s.fallback_swaps
          s.traversals_run s.first_traversal_swaps;
      ]
  in
  Digest.to_hex (Digest.string payload)

let device_of_name = function
  | "tokyo" -> Devices.ibm_q20_tokyo ()
  | "grid3x4" -> Devices.grid ~rows:3 ~cols:4
  | "yorktown" -> Devices.ibm_q5_yorktown ()
  | other -> Alcotest.failf "unknown golden device %s" other

let workload_of_name = function
  | "qft8" -> Workloads.Qft.circuit 8
  | "ising10" -> Workloads.Ising.circuit 10
  | "ghz12" -> Workloads.Ghz.circuit 12
  | "bv5" -> Workloads.Bv.circuit ~hidden:0b1011 4
  | "random10" ->
    Workloads.Random_reversible.circuit ~seed:42 ~hot_bias:0.0 ~n:10 ~gates:80
      ()
  | other -> Alcotest.failf "unknown golden workload %s" other

(* (device, workload, pre-refactor digest) *)
let goldens =
  [
    ("tokyo", "qft8", "08b0f687b34377861373ec50a271ff06");
    ("tokyo", "ising10", "f35de5546df10516016b68275142612c");
    ("tokyo", "ghz12", "f942ac77b665e02e9b5c8a8ec5519aa1");
    ("tokyo", "bv5", "9d5a4b8e013000edbf63612866908513");
    ("tokyo", "random10", "e5e66342fdd94c2bd3a7b6b5c877bb0b");
    ("grid3x4", "qft8", "f961a860b9bcf8b189407bc59dd80f50");
    ("grid3x4", "ising10", "5675be56237d6d9377b46e42a38b7e03");
    ("grid3x4", "ghz12", "b6f014c1735ffb03b2c9d3006b83fed4");
    ("grid3x4", "bv5", "16739277f24e7df6720763fb03831947");
    ("grid3x4", "random10", "43883dab24b92061ec97bd76a3bb41fb");
  ]

let test_golden_equivalence () =
  List.iter
    (fun (dname, wname, expected) ->
      let r =
        Compiler.run (device_of_name dname) (workload_of_name wname)
      in
      check Alcotest.string
        (Printf.sprintf "%s/%s unchanged" dname wname)
        expected (fingerprint r))
    goldens

let test_golden_commuting () =
  let config = { Config.default with commutation_aware = true } in
  let r =
    Compiler.run ~config (device_of_name "tokyo") (workload_of_name "qft8")
  in
  check Alcotest.string "commutation-aware unchanged"
    "d00a09d3af1ee04ce871c8eecca64093" (fingerprint r)

let test_golden_route_with_initial () =
  let device = device_of_name "yorktown" in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  let r = Compiler.route_with_initial device c m in
  check Alcotest.string "seeded single traversal unchanged"
    "213d890016d2ebb9d539c973b4839d3a" (fingerprint r)

(* ------------------------------------------------------------------ *)
(* Trial runner: sequential and Domain-parallel pick the same winner   *)
(* ------------------------------------------------------------------ *)

let run_mode mode =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:7 ~n:12 ~gates:150 in
  let ctx = Engine.Context.create ~trial_mode:mode device c in
  let ctx = Engine.Pipeline.run (Engine.Pipeline.default ()) ctx in
  (c, ctx)

let stats_equal_sans_time (a : Sabre.Stats.t) (b : Sabre.Stats.t) =
  a.n_swaps = b.n_swaps && a.added_gates = b.added_gates
  && a.original_gates = b.original_gates
  && a.total_gates = b.total_gates
  && a.original_depth = b.original_depth
  && a.routed_depth = b.routed_depth
  && a.search_steps = b.search_steps
  && a.fallback_swaps = b.fallback_swaps
  && a.traversals_run = b.traversals_run
  && a.first_traversal_swaps = b.first_traversal_swaps

let test_parallel_trials_same_winner () =
  let _, seq = run_mode Engine.Trial_runner.Sequential in
  let _, par = run_mode (Engine.Trial_runner.Domains 4) in
  let rs = Engine.Context.routed_exn seq
  and rp = Engine.Context.routed_exn par in
  check Alcotest.bool "same routed circuit" true
    (Circuit.equal rs.Engine.Context.physical rp.Engine.Context.physical);
  check Alcotest.bool "same winning initial mapping" true
    (Mapping.equal rs.Engine.Context.trial_initial
       rp.Engine.Context.trial_initial);
  check Alcotest.bool "same stats" true
    (stats_equal_sans_time
       (Engine.Context.stats seq ~time_s:0.0)
       (Engine.Context.stats par ~time_s:0.0))

let test_parallel_result_verifies () =
  let c, par = run_mode (Engine.Trial_runner.Domains 3) in
  let r = Engine.Context.routed_exn par in
  Helpers.assert_routed ~coupling:(Devices.ibm_q20_tokyo ())
    ~initial:(Mapping.l2p_array r.Engine.Context.trial_initial)
    ~final:(Mapping.l2p_array r.Engine.Context.final_mapping)
    ~logical:c ~physical:r.Engine.Context.physical "parallel trials"

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let test_per_pass_timing_recorded () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let sink, events = Engine.Instrument.collector () in
  let ctx = Engine.Context.create device c in
  let ctx =
    Engine.Pipeline.run ~instrument:sink
      (Engine.Pipeline.default ~verify:true ())
      ctx
  in
  check Alcotest.bool "verified" true
    Engine.Context.(ctx.verified = Some true);
  let expected = [ "decompose"; "dag"; "initial_mapping"; "routing"; "verify" ] in
  let metrics = Engine.Context.metrics ctx in
  check
    (Alcotest.list Alcotest.string)
    "every stage timed" expected (List.map fst metrics);
  List.iter
    (fun (name, wall_s) ->
      check Alcotest.bool (name ^ " wall >= 0") true (wall_s >= 0.0))
    metrics;
  let ends =
    List.filter_map
      (function
        | Engine.Instrument.Pass_end { pass; _ } -> Some pass
        | _ -> None)
      (events ())
  in
  check (Alcotest.list Alcotest.string) "Pass_end per stage" expected ends;
  check Alcotest.bool "routing counters emitted" true
    (List.exists
       (function
         | Engine.Instrument.Counter { pass = "routing"; name = "swaps"; _ } ->
           true
         | _ -> false)
       (events ()))

(* ------------------------------------------------------------------ *)
(* Pluggable routers                                                   *)
(* ------------------------------------------------------------------ *)

let test_baseline_routers_via_engine () =
  Baseline.Routers.register ();
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  List.iter
    (fun rname ->
      let router =
        match Engine.Router.find rname with
        | Some r -> r
        | None -> Alcotest.failf "router %s not registered" rname
      in
      let ctx = Engine.Context.create device c in
      let ctx =
        Engine.Pipeline.run
          (Engine.Pipeline.default ~router ~verify:true ())
          ctx
      in
      check Alcotest.bool (rname ^ " verified") true
        Engine.Context.(ctx.verified = Some true))
    [ "sabre"; "greedy"; "bka" ]

let test_greedy_router_matches_baseline () =
  Baseline.Routers.register ();
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 8 in
  let direct = Baseline.Greedy_router.run device c in
  let ctx = Engine.Context.create device c in
  let ctx =
    Engine.Pipeline.run
      (Engine.Pipeline.default ~router:Baseline.Routers.greedy ())
      ctx
  in
  let r = Engine.Context.routed_exn ctx in
  check Alcotest.bool "same circuit as direct call" true
    (Circuit.equal direct.physical r.Engine.Context.physical);
  check Alcotest.int "same swaps" direct.n_swaps r.Engine.Context.n_swaps

(* ------------------------------------------------------------------ *)
(* Error paths: registry misses, invalid configs, malformed pipelines  *)
(* ------------------------------------------------------------------ *)

let test_router_registry_miss () =
  (match Engine.Router.find "no-such-router" with
  | None -> ()
  | Some _ -> Alcotest.fail "unregistered router resolved");
  Baseline.Routers.register ();
  let names = Engine.Router.names () in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " registered") true (List.mem n names))
    [ "sabre"; "greedy"; "bka" ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let expect_invalid_arg ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument (%s)" substring
  | exception Invalid_argument msg ->
    check Alcotest.bool
      (Printf.sprintf "%S mentions %S" msg substring)
      true (contains ~sub:substring msg)

let test_context_rejects_invalid_config () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Ghz.circuit 3 in
  expect_invalid_arg ~substring:"trials" (fun () ->
      Engine.Context.create ~config:{ Config.default with trials = 0 } device c);
  expect_invalid_arg ~substring:"traversals" (fun () ->
      Engine.Context.create
        ~config:{ Config.default with traversals = 2 }
        device c);
  expect_invalid_arg ~substring:"extended_set_weight" (fun () ->
      Engine.Context.create
        ~config:{ Config.default with extended_set_weight = 1.5 }
        device c)

let test_context_rejects_bad_devices () =
  expect_invalid_arg ~substring:"wider than device" (fun () ->
      Engine.Context.create (Devices.linear 3) (Workloads.Ghz.circuit 5));
  let disconnected = Coupling.create ~n_qubits:4 [ (0, 1); (2, 3) ] in
  expect_invalid_arg ~substring:"disconnected" (fun () ->
      Engine.Context.create disconnected (Workloads.Ghz.circuit 4))

let test_routing_pass_requires_initial_mapping () =
  let ctx =
    Engine.Context.create (Devices.ibm_q5_yorktown ()) (Workloads.Qft.circuit 4)
  in
  match Engine.Pipeline.run [ Engine.Routing_pass.pass () ] ctx with
  | _ -> Alcotest.fail "routing without an initial mapping succeeded"
  | exception Engine.Router.Route_failed msg ->
    check Alcotest.bool "mentions the missing pass" true
      (contains ~sub:"Initial_mapping_pass" msg)

let test_routed_exn_before_routing () =
  let ctx =
    Engine.Context.create (Devices.ibm_q5_yorktown ()) (Workloads.Ghz.circuit 3)
  in
  match Engine.Context.routed_exn ctx with
  | _ -> Alcotest.fail "routed_exn succeeded on an unrouted context"
  | exception Invalid_argument _ -> ()

let suite =
  [
    tc "golden equivalence: 5 workloads x 2 devices" `Quick
      test_golden_equivalence;
    tc "golden equivalence: commutation-aware" `Quick test_golden_commuting;
    tc "golden equivalence: route_with_initial" `Quick
      test_golden_route_with_initial;
    tc "sequential and parallel trials pick the same winner" `Quick
      test_parallel_trials_same_winner;
    tc "parallel trial result verifies" `Quick test_parallel_result_verifies;
    tc "per-pass timing and counters recorded" `Quick
      test_per_pass_timing_recorded;
    tc "sabre/greedy/bka run through the Router interface" `Quick
      test_baseline_routers_via_engine;
    tc "greedy router matches direct baseline call" `Quick
      test_greedy_router_matches_baseline;
    tc "router registry: miss returns None, names lists built-ins" `Quick
      test_router_registry_miss;
    tc "context rejects invalid configs" `Quick
      test_context_rejects_invalid_config;
    tc "context rejects too-small and disconnected devices" `Quick
      test_context_rejects_bad_devices;
    tc "routing pass without initial mapping fails" `Quick
      test_routing_pass_requires_initial_mapping;
    tc "routed_exn before routing raises" `Quick test_routed_exn_before_routing;
  ]
