lib/workloads/bv.ml: List Quantum
