type t = {
  name : string;
  run : instrument:Instrument.t -> Context.t -> Context.t;
}

let make name run = { name; run }

let count instrument ~pass ctx name value =
  instrument.Instrument.emit (Instrument.Counter { pass; name; value });
  Context.add_counter ctx ~pass name value
