module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Commutation = Quantum.Commutation

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Soundness: every [commute a b = true] is verified operationally      *)
(* ------------------------------------------------------------------ *)

(* a representative pool of gates over 3 qubits, covering every rule *)
let pool =
  let singles q =
    [
      Gate.Single (Gate.I, q); Single (H, q); Single (X, q); Single (Y, q);
      Single (Z, q); Single (S, q); Single (Sdg, q); Single (T, q);
      Single (Rx 0.31, q); Single (Ry 0.41, q); Single (Rz 0.51, q);
      Single (U1 0.61, q); Single (U3 (0.2, 0.3, 0.4), q);
    ]
  in
  let twos =
    [
      Gate.Cnot (0, 1); Cnot (1, 0); Cnot (0, 2); Cnot (2, 0); Cnot (1, 2);
      Cnot (2, 1); Cz (0, 1); Cz (1, 2); Cz (0, 2); Swap (0, 1); Swap (1, 2);
    ]
  in
  singles 0 @ singles 1 @ singles 2 @ twos

let operationally_commute a b =
  let ab = Circuit.create ~n_qubits:3 [ a; b ] in
  let ba = Circuit.create ~n_qubits:3 [ b; a ] in
  Sim.Equivalence.circuits_equivalent ~states:3 ab ba

let test_commute_sound () =
  (* exhaustive over the pool: no false positives *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Commutation.commute a b then
            check Alcotest.bool
              (Printf.sprintf "%s ; %s" (Gate.to_string a) (Gate.to_string b))
              true (operationally_commute a b))
        pool)
    pool

let test_commute_known_positives () =
  let yes a b = check Alcotest.bool "commutes" true (Commutation.commute a b) in
  yes (Gate.Cnot (0, 1)) (Gate.Cnot (0, 2));  (* shared control *)
  yes (Gate.Cnot (0, 2)) (Gate.Cnot (1, 2));  (* shared target *)
  yes (Gate.Cnot (0, 1)) (Gate.Cnot (0, 1));  (* identical *)
  yes (Gate.Single (Rz 0.3, 0)) (Gate.Cnot (0, 1));  (* diag on control *)
  yes (Gate.Single (X, 1)) (Gate.Cnot (0, 1));  (* X on target *)
  yes (Gate.Cz (0, 1)) (Gate.Cz (1, 2));  (* diagonals *)
  yes (Gate.Single (T, 0)) (Gate.Single (Rz 0.2, 0));
  yes (Gate.Single (H, 0)) (Gate.Single (H, 1)) (* disjoint *)

let test_commute_known_negatives () =
  let no a b = check Alcotest.bool "ordered" false (Commutation.commute a b) in
  no (Gate.Cnot (0, 1)) (Gate.Cnot (1, 2));  (* target meets control *)
  no (Gate.Single (H, 0)) (Gate.Cnot (0, 1));
  no (Gate.Single (X, 0)) (Gate.Cnot (0, 1));  (* X on control *)
  no (Gate.Single (Rz 0.3, 1)) (Gate.Cnot (0, 1));  (* diag on target *)
  no (Gate.Cz (0, 1)) (Gate.Cnot (2, 1));  (* CZ touches the target *)
  no (Gate.Barrier [ 0 ]) (Gate.Single (Gate.Z, 0));
  no (Gate.Measure (0, 0)) (Gate.Single (Gate.Z, 0))

(* ------------------------------------------------------------------ *)
(* Commutation-aware DAG                                                *)
(* ------------------------------------------------------------------ *)

let test_fanout_unordered () =
  (* CNOTs out of one control: strict DAG chains them, commuting DAG
     leaves them all in the initial front *)
  let c =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 1); Gate.Cnot (0, 2); Gate.Cnot (0, 3) ]
  in
  check Alcotest.int "strict front" 1
    (List.length (Dag.initial_front (Dag.of_circuit c)));
  check Alcotest.int "commuting front" 3
    (List.length (Dag.initial_front (Dag.of_circuit_commuting c)))

let test_noncommuting_still_ordered () =
  let c =
    Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 1); Gate.Cnot (1, 2) ]
  in
  let d = Dag.of_circuit_commuting c in
  check (Alcotest.list Alcotest.int) "second depends on first" [ 0 ]
    (Dag.predecessors d 1)

let test_transitive_ordering_through_groups () =
  (* H(0); Rz(0); H(0): the Rz commutes with neither H; all chained *)
  let c =
    Circuit.create ~n_qubits:1
      [ Gate.Single (H, 0); Gate.Single (Rz 0.4, 0); Gate.Single (H, 0) ]
  in
  let d = Dag.of_circuit_commuting c in
  check (Alcotest.list Alcotest.int) "rz after h" [ 0 ] (Dag.predecessors d 1);
  check (Alcotest.list Alcotest.int) "h after rz" [ 1 ] (Dag.predecessors d 2)

let test_linearizations_accepted () =
  let c =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 1); Gate.Cnot (0, 2); Gate.Cnot (0, 3) ]
  in
  let d = Dag.of_circuit_commuting c in
  (* any permutation of the three fan-out CNOTs is a linearisation *)
  let permuted =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 3); Gate.Cnot (0, 1); Gate.Cnot (0, 2) ]
  in
  check Alcotest.bool "permutation accepted" true
    (Dag.matches_linearization d permuted);
  (* but not under the strict DAG *)
  check Alcotest.bool "strict rejects" false
    (Dag.matches_linearization (Dag.of_circuit c) permuted);
  (* and a circuit with a different gate is rejected *)
  let wrong =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 3); Gate.Cnot (0, 1); Gate.Cnot (1, 2) ]
  in
  check Alcotest.bool "wrong gate rejected" false
    (Dag.matches_linearization d wrong);
  let short = Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 3) ] in
  check Alcotest.bool "wrong length rejected" false
    (Dag.matches_linearization d short)

let test_strict_linearization_always_accepted () =
  (* the original program order is a linearisation of both DAGs *)
  List.iter
    (fun seed ->
      let c = Helpers.random_circuit ~seed ~n:6 ~gates:60 in
      check Alcotest.bool "strict" true
        (Dag.matches_linearization (Dag.of_circuit c) c);
      check Alcotest.bool "commuting" true
        (Dag.matches_linearization (Dag.of_circuit_commuting c) c))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Commutation-aware routing                                            *)
(* ------------------------------------------------------------------ *)

let commuting_config =
  { Sabre.Config.default with commutation_aware = true }

let verify_commuting device logical (r : Sabre.Compiler.result) label =
  (* compliance *)
  (match Sim.Tracker.check_compliance ~coupling:device r.physical with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %a" label Sim.Tracker.pp_error e);
  (* unroute and check the recovered order is a valid linearisation of
     the original's commuting DAG *)
  (match
     Sim.Tracker.unroute
       ~initial:(Sabre.Mapping.l2p_array r.initial_mapping)
       ~n_logical:(Circuit.n_qubits logical)
       r.physical
   with
  | Ok (recovered, final) ->
    check Alcotest.bool (label ^ ": linearisation") true
      (Dag.matches_linearization (Dag.of_circuit_commuting logical) recovered);
    check (Alcotest.array Alcotest.int) (label ^ ": final mapping")
      (Sabre.Mapping.l2p_array r.final_mapping)
      final
  | Error e -> Alcotest.failf "%s: %a" label Sim.Tracker.pp_error e);
  (* unitary equivalence for small devices *)
  if Hardware.Coupling.n_qubits device <= 10 then
    check Alcotest.bool (label ^ ": unitary") true
      (Sim.Equivalence.routed_equivalent ~states:2
         ~initial:(Sabre.Mapping.l2p_array r.initial_mapping)
         ~final:(Sabre.Mapping.l2p_array r.final_mapping)
         ~logical ~physical:r.physical ())

let test_commuting_routing_correct () =
  let device = Hardware.Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = Sabre.Compiler.run ~config:commuting_config device c in
  verify_commuting device c r "qft5"

let test_commuting_routing_correct_tokyo () =
  let device = Hardware.Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:51 ~n:12 ~gates:150 in
  let r = Sabre.Compiler.run ~config:commuting_config device c in
  verify_commuting device c r "tokyo random"

let test_commuting_helps_on_fanout () =
  (* two rounds of CNOT fan-out from one control onto a line, in a
     shuffled program order: the strict DAG forces the control to shuttle
     along the program order, while the commuting router may sweep the
     control across the line and execute whatever is local. Aggregated
     over seeds the commuting router wins decisively (about 2x here). *)
  let n = 8 in
  let device = Hardware.Devices.linear n in
  let total_strict = ref 0 and total_commuting = ref 0 in
  for seed = 1 to 4 do
    let rng = Random.State.make [| seed |] in
    let shuffled =
      List.init (n - 1) (fun i -> i + 1)
      |> List.map (fun t -> (Random.State.bits rng, t))
      |> List.sort compare
      |> List.map (fun (_, t) -> Gate.Cnot (0, t))
    in
    let c = Circuit.create ~n_qubits:n (shuffled @ shuffled) in
    let strict = Sabre.Compiler.run device c in
    let commuting = Sabre.Compiler.run ~config:commuting_config device c in
    verify_commuting device c commuting (Printf.sprintf "fanout seed %d" seed);
    total_strict := !total_strict + strict.stats.n_swaps;
    total_commuting := !total_commuting + commuting.stats.n_swaps
  done;
  check Alcotest.bool
    (Printf.sprintf "commuting %d < strict %d swaps" !total_commuting
       !total_strict)
    true
    (!total_commuting < !total_strict)

let suite =
  [
    tc "commute is sound (exhaustive vs simulator)" `Slow test_commute_sound;
    tc "known positives" `Quick test_commute_known_positives;
    tc "known negatives" `Quick test_commute_known_negatives;
    tc "fan-out unordered" `Quick test_fanout_unordered;
    tc "non-commuting ordered" `Quick test_noncommuting_still_ordered;
    tc "transitive ordering" `Quick test_transitive_ordering_through_groups;
    tc "linearisations accepted/rejected" `Quick test_linearizations_accepted;
    tc "program order always a linearisation" `Quick
      test_strict_linearization_always_accepted;
    tc "commuting routing correct (yorktown)" `Quick test_commuting_routing_correct;
    tc "commuting routing correct (tokyo)" `Quick test_commuting_routing_correct_tokyo;
    tc "commuting helps on fan-out" `Quick test_commuting_helps_on_fanout;
  ]
