type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let size h = h.len
let is_empty h = h.len = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let data = Array.make (max 16 (2 * cap)) entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let push h prio payload =
  let entry = { prio; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(!i) in
    h.data.(!i) <- h.data.(parent);
    h.data.(parent) <- tmp;
    i := parent
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.payload)
  end
