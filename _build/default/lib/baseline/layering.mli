module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

(** Greedy layer partitioning as used by IBM's QISKit mapper and
    Zulehner et al. (paper Section VII): split the gate sequence into
    maximal groups of operations on pairwise-disjoint qubits. A gate
    starts a new layer when one of its qubits is already used in the
    current layer; program order inside a layer is preserved. *)

type layer = { gates : Gate.t list;  (** program order *) }

val partition : Circuit.t -> layer list
(** Layers in execution order. Barriers close the current layer and are
    dropped; measurements participate like single-qubit gates. *)

val partition_asap : Circuit.t -> layer list
(** ASAP layering: gates are grouped by the time step of the as-soon-as-
    possible schedule in which only two-qubit gates take a step
    (single-qubit gates and measurements ride along with weight 0). This
    is the layering the original BKA tool effectively searches over — it
    exposes the full concurrency of each step, so e.g. a brickwork Ising
    circuit yields layers of ~n/2 simultaneous CNOTs. Program order is
    preserved inside a layer; barriers are dropped. *)

val two_qubit_pairs : layer -> (int * int) list
(** The qubit pairs of the layer's two-qubit gates. *)

val layer_count : Circuit.t -> int
