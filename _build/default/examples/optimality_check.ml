(* How close is SABRE to optimal? (paper Section V-A's claim, checked
   against a real oracle)

   On devices small enough for exhaustive search we can compute the true
   minimum number of SWAPs with Baseline.Optimal (BFS over (gate index,
   mapping) states) and compare every router against it.

   Run with:  dune exec examples/optimality_check.exe *)

module Circuit = Quantum.Circuit
module Devices = Hardware.Devices

let () =
  let device = Devices.ibm_q5_yorktown () in
  Format.printf
    "Minimum-SWAP optimality on IBM Q5 Yorktown (5 qubits, 6 couplers)@.@.";
  Format.printf "%-14s %6s | %8s %8s %8s %8s | %s@." "circuit" "gates"
    "optimal" "sabre" "bka" "greedy" "oracle states";
  List.iter
    (fun (name, circuit) ->
      match Baseline.Optimal.run device circuit with
      | Error _ -> Format.printf "%-14s (oracle infeasible)@." name
      | Ok opt ->
        let sabre = (Sabre.Compiler.run device circuit).stats.n_swaps in
        let bka =
          match Baseline.Bka.run device circuit with
          | Ok r -> string_of_int r.n_swaps
          | Error _ -> "OOM"
        in
        let greedy = (Baseline.Greedy_router.run device circuit).n_swaps in
        Format.printf "%-14s %6d | %8d %8d %8s %8d | %d@." name
          (Circuit.length circuit) opt.n_swaps sabre bka greedy
          opt.states_expanded)
    [
      ("ghz_5", Workloads.Ghz.circuit 5);
      ("star_5", Workloads.Ghz.star 5);
      ("qft_4", Workloads.Qft.circuit 4);
      ("qft_5", Workloads.Qft.circuit 5);
      ("adder_1", Workloads.Adder.circuit 1);
      ("bv_4", Workloads.Bv.circuit ~hidden:0b1011 4);
      ( "toffnet_30",
        Workloads.Random_reversible.toffoli_network ~seed:8 ~n:5 ~gates:30 () );
      ( "toffnet_60",
        Workloads.Random_reversible.toffoli_network ~seed:9 ~n:5 ~gates:60 () );
      ( "qaoa_5",
        Workloads.Qaoa.maxcut_instance ~seed:5 ~n:5 ~edge_prob:0.6 () );
    ];
  Format.printf
    "@.SABRE lands on the provable optimum for these instances (the \
     paper's Section V-A observation); the greedy baseline does not. The \
     oracle's state count also shows why exact search stops scaling: it \
     grows with N!·g, which is the Section I motivation for heuristics.@."
