module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

(** The full SABRE compiler: multi-trial, bidirectional (reverse
    traversal) qubit mapping (paper Section IV).

    Since the pass-pipeline refactor this is a thin wrapper over
    {!Engine.Pipeline.run} with the default pass list; build a custom
    pipeline with {!Engine} directly for pluggable routers, per-pass
    instrumentation or Domain-parallel trials.

    Each trial starts from a fresh random initial mapping and alternates
    forward and backward routing passes ([Config.traversals] of them, odd,
    default 3 = forward–backward–forward); the final mapping of each pass
    seeds the next, so the last forward pass runs with a globally
    optimised initial mapping (Section IV-C2). The best trial — fewest
    inserted SWAPs, ties broken by routed depth — wins. *)

type result = {
  physical : Circuit.t;
      (** hardware-compliant circuit over the device's physical qubits;
          inserted SWAPs are kept as [Swap] gates (see
          {!Quantum.Decompose.expand_swaps} to lower them) *)
  initial_mapping : Mapping.t;  (** the optimised initial π *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  stats : Stats.t;
}

val run :
  ?config:Config.t ->
  ?dist:float array array ->
  ?noise:Hardware.Noise.t ->
  Coupling.t -> Circuit.t -> result
(** [run coupling circuit] compiles [circuit] for the device. Defaults to
    {!Config.default}. [dist] substitutes a custom routing metric for the
    hop-count distance matrix — pass
    {!Hardware.Noise.swap_reliability_distance} to make the search avoid
    unreliable couplers. [noise] changes the ranking among the random
    trials from (SWAPs, depth) to the estimated success probability under
    that model, so equally cheap routings resolve toward reliable
    couplers — variability-aware mapping, the Section VI extension.
    Raises [Invalid_argument] if the circuit is wider
    than the device, the config is invalid, or the coupling graph is
    disconnected. *)

val route_with_initial :
  ?config:Config.t ->
  ?dist:float array array ->
  Coupling.t -> Circuit.t -> Mapping.t -> result
(** Single forward traversal from a caller-supplied initial mapping (no
    trials, no reverse traversal) — the building block exposed for
    ablation studies and for the paper's [g_la] first-traversal column. *)
