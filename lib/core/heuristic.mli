module Gate = Quantum.Gate

(** The heuristic cost functions of Section IV-D.

    All functions score a *candidate SWAP already applied* to the mapping:
    the caller tentatively updates π, evaluates, and reverts. Gate
    operands are given as logical qubit pairs; [l2p] is the tentative π;
    [dist] the device distance matrix. *)

val basic :
  dist:float array array -> l2p:int array -> (int * int) list -> float
(** Eq. (1): Σ_{g ∈ F} D[π(g.q1)][π(g.q2)]. The matrix is float-valued so
    that the same heuristic serves hop distances (plain reproduction) and
    reliability-weighted distances ({!Hardware.Noise}). *)

val average_distance :
  dist:float array array -> l2p:int array -> (int * int) list -> float
(** Mean mapped distance over a pair list, 0 when empty — the building
    block of {!lookahead}. Sum and count are accumulated in a single
    traversal of the list. *)

val lookahead :
  dist:float array array ->
  l2p:int array ->
  front:(int * int) list ->
  extended:(int * int) list ->
  weight:float ->
  float
(** The look-ahead refinement: (1/|F|) Σ_F D + W · (1/|E|) Σ_E D.
    An empty F or E contributes 0 (no division by zero). *)

val with_decay :
  decay:float array -> p1:int -> p2:int -> float -> float
(** Eq. (2) outer factor: multiply a look-ahead score by
    [max decay.(p1) decay.(p2)], where [p1]/[p2] are the physical qubits
    of the candidate SWAP. *)

val score :
  heuristic:Config.heuristic ->
  dist:float array array ->
  l2p:int array ->
  front:(int * int) list ->
  extended:(int * int) list ->
  weight:float ->
  decay:float array ->
  p1:int ->
  p2:int ->
  float
(** Dispatch on the configured heuristic level. For [Basic] the extended
    set and decay are ignored; for [Lookahead] decay is ignored. *)

(** {2 Flat variants}

    Zero-allocation scoring for the routing hot loop. The distance
    matrix is row-major flattened ([dist.((i * stride) + j)]); gate sets
    are parallel arrays [q1]/[q2] of logical operands with an explicit
    length (the arrays may be over-allocated scratch buffers). Summation
    order equals the list versions', so results are bit-identical. *)

val flatten_dist : float array array -> float array
(** Row-major copy of a square matrix; stride = its dimension. Raises
    [Invalid_argument] on ragged input. *)

val basic_flat :
  dist:float array ->
  stride:int ->
  l2p:int array ->
  q1:int array ->
  q2:int array ->
  len:int ->
  float
(** Eq. (1) over [q1.(k), q2.(k)] for [k < len]. *)

val score_flat :
  heuristic:Config.heuristic ->
  dist:float array ->
  stride:int ->
  l2p:int array ->
  fq1:int array ->
  fq2:int array ->
  flen:int ->
  eq1:int array ->
  eq2:int array ->
  elen:int ->
  weight:float ->
  decay:float array ->
  p1:int ->
  p2:int ->
  float
(** Flat counterpart of {!score}: front layer [fq1]/[fq2]/[flen],
    extended set [eq1]/[eq2]/[elen]. *)

(** {2 Integer delta primitives}

    Support for incremental (delta) SWAP scoring that is *bit-identical*
    to a full {!score_flat} recompute — not approximately equal.

    The exactness argument: BFS hop distances are small non-negative
    integers; IEEE-754 doubles represent every integer below 2^53
    exactly, and adding exactly-representable integers is itself exact
    while every partial sum stays below 2^53. So summing an
    integer-valued distance matrix in float ({!basic_flat}) produces
    exactly [float_of_int] of the integer sum — and an integer sum
    maintained incrementally ([base − old_terms + new_terms], all in
    [int]) is the *same* integer regardless of update order. Entries are
    capped at 2^30 ({!dist_int_of_flat} rejects larger ones), so with
    fewer than 2^22 pairs no partial sum can approach 2^53.

    Reconstruction ({!score_of_sums_int}) mirrors {!score_flat}'s float
    expression shape operation for operation — same zero-length guards,
    same divisions, same [front +. (weight *. ext)] association, same
    {!with_decay} factor — which is what makes the reconstructed score
    bit-identical, not merely numerically close. *)

val dist_int_of_flat : float array -> int array option
(** Integer view of a flat distance matrix, or [None] if any entry is
    non-integral, negative, or above 2^30 (e.g. noise-weighted metrics,
    which must then use full recompute scoring). *)

val sum_int :
  dist:int array ->
  stride:int ->
  l2p:int array ->
  q1:int array ->
  q2:int array ->
  len:int ->
  int
(** Integer twin of {!basic_flat}: Σ_k D[π(q1.(k))][π(q2.(k))]. *)

val score_of_sums_int :
  heuristic:Config.heuristic ->
  fsum:int ->
  flen:int ->
  esum:int ->
  elen:int ->
  weight:float ->
  decay:float array ->
  p1:int ->
  p2:int ->
  float
(** Rebuild the {!score_flat} value from integer pair-distance sums.
    Bit-identical to [score_flat] evaluated on the matching
    integer-valued float matrix with the same front/extended sets (see
    the exactness argument above). *)
