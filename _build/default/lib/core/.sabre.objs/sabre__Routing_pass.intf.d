lib/core/routing_pass.mli: Config Hardware Mapping Quantum
