module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config

(** Replayable counterexample files.

    A repro file is a small self-contained text record: header, the
    failing router and property, the instance seed, the full
    configuration (floats in lossless hex notation), the coupling graph,
    and the (shrunk) circuit as embedded OpenQASM — everything needed to
    re-run the exact failing check on another machine, with no dependency
    on generator internals staying stable. *)

type repro = {
  router : string;
  property : string;  (** "conformance" or "determinism" *)
  seed : int;  (** instance seed the campaign derived the case from *)
  failure : string;  (** human-readable description captured at find time *)
  config : Config.t;
  coupling : Coupling.t;
  circuit : Circuit.t;
}

val to_string : repro -> string
val of_string : string -> (repro, string) result

val save : dir:string -> repro -> string
(** Write under [dir] (created if missing) as
    [repro-<router>-<property>-<seed>.txt]; returns the path. *)

val load : string -> (repro, string) result
