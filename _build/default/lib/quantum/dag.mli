(** Dependency DAG of a circuit (paper Section IV-A, "Circuit DAG
    generation").

    Nodes are gate indices into the source circuit's gate array. There is
    an edge [i -> j] when gate [j] is the first gate after [i] acting on
    one of [i]'s qubits; hence the DAG captures exactly the execution
    constraints. Unlike the paper's exposition, single-qubit gates,
    barriers and measurements are kept as nodes so that a routed circuit
    can carry them along; the routing algorithms treat any non-two-qubit
    node as always executable. Construction is O(g). *)

type t

val of_circuit : Circuit.t -> t

val of_circuit_commuting : Circuit.t -> t
(** Commutation-aware construction: on each qubit a gate depends on the
    most recent *group* of gates it does not commute with
    ({!Commutation.commute}), rather than on the immediately preceding
    gate. Every edge of this DAG is also an ordering of the plain DAG, so
    any linearisation of the plain DAG is a linearisation of this one —
    but not vice versa: routers get strictly more freedom (e.g. CNOTs
    fanning out of one control may execute in any order). *)

val matches_linearization : t -> Circuit.t -> bool
(** [matches_linearization dag c] — is [c] a topological linearisation of
    [dag] with exactly its gate multiset? Walks [c] greedily, consuming
    at each step some ready DAG node carrying an identical gate. Used to
    verify commutation-aware routing, where the per-qubit-sequence
    equality of {!Circuit.canonical_key} is deliberately violated. *)

val circuit : t -> Circuit.t
(** The circuit this DAG was built from. *)

val n_nodes : t -> int

val gate : t -> int -> Gate.t
(** [gate dag i] is the gate at node [i]. *)

val successors : t -> int -> int list
(** Direct successors of node [i], each listed once. *)

val predecessors : t -> int -> int list
(** Direct predecessors of node [i], each listed once. *)

val in_degree : t -> int -> int
(** Number of distinct predecessors. *)

val initial_front : t -> int list
(** Nodes with no predecessors, in program order: the initial front layer
    F of Algorithm 1 (before filtering out non-two-qubit gates). *)

val topological_order : t -> int list
(** A topological order (Kahn's algorithm, stable w.r.t. program order). *)

val two_qubit_nodes : t -> int list
(** Nodes carrying a two-qubit gate, in program order. *)

val descendant_count : t -> int -> int
(** Number of nodes reachable from [i] (excluding [i]); O(V+E) per call. *)
