test/suite_equivalence.ml: Alcotest Hardware Quantum Sabre Sim Workloads
