(** Multi-trial execution strategy.

    The SABRE trial loop is embarrassingly parallel: each trial routes
    independently from its own initial mapping and the routing search
    itself draws no random numbers. The runner evaluates an array of
    trial thunks either sequentially or across OCaml 5 [Domain]s and
    returns the results {e in trial order}, so the winner reduction is
    identical in both modes (deterministic given the seed). *)

type mode =
  | Sequential
  | Domains of int
      (** evaluate across [n] domains; trial [i] runs on domain
          [i mod n], results are still delivered in trial order *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : mode:mode -> (unit -> 'a) array -> 'a array
(** Evaluate every thunk, returning results in input order. In
    [Domains] mode an exception raised by any thunk is re-raised after
    all domains have been joined. *)

val best : better:('a -> 'a -> bool) -> 'a array -> 'a
(** Left fold keeping the first element when [better] ties — the same
    reduction order as a sequential loop, so sequential and parallel
    runs pick the same winner. [better a b] must mean "[a] is strictly
    better than [b]". Raises [Invalid_argument] on an empty array. *)
