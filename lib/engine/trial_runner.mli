(** Multi-trial execution strategy.

    The SABRE trial loop is embarrassingly parallel: each trial routes
    independently from its own initial mapping and the routing search
    itself draws no random numbers. The runner evaluates an array of
    trial thunks either sequentially or across OCaml 5 [Domain]s and
    returns the results {e in trial order}, so the winner reduction is
    identical in both modes (deterministic given the seed). *)

type mode =
  | Sequential
  | Domains of int
      (** evaluate across [n] domains via {!Scheduler} (shared atomic
          work queue, work-stealing claim order); results are still
          delivered in trial order *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : mode:mode -> (unit -> 'a) array -> 'a array
(** Evaluate every thunk, returning results in input order. [Domains]
    mode is implemented by {!Scheduler.run}, which also defines the
    exception semantics (lowest-indexed failure re-raised after all
    domains join). *)

val best : better:('a -> 'a -> bool) -> 'a array -> 'a
(** Left fold keeping the first element when [better] ties — the same
    reduction order as a sequential loop, so sequential and parallel
    runs pick the same winner ("first best wins"). [better a b] must
    mean "[a] is strictly better than [b]". Raises [Invalid_argument]
    on an empty array. *)
