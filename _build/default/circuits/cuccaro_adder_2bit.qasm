// 2-bit Cuccaro ripple-carry adder, written with MAJ/UMA macros.
// Computes b := a + b; qubit layout cin | a0 b0 a1 b1 | cout.
OPENQASM 2.0;
include "qelib1.inc";
gate majority x,y,z { cx z,y; cx z,x; ccx x,y,z; }
gate unmaj x,y,z { ccx x,y,z; cx z,x; cx x,y; }
qreg cin[1];
qreg a[2];
qreg b[2];
qreg cout[1];
creg c[3];
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
cx a[1],cout[0];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> c[0];
measure b[1] -> c[1];
measure cout[0] -> c[2];
