module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Optimal = Baseline.Optimal

let check = Alcotest.check
let tc = Alcotest.test_case

let run_ok ?initial device c =
  match Optimal.run ?initial device c with
  | Ok r -> r
  | Error (Optimal.Too_large m) -> Alcotest.failf "too large: %s" m
  | Error (Optimal.Budget_exhausted n) -> Alcotest.failf "budget: %d" n

let verify device c (r : Optimal.result) label =
  Helpers.assert_routed ~coupling:device
    ~initial:(Mapping.l2p_array r.initial_mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical:c ~physical:r.physical label

let test_zero_when_embeddable () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Ghz.circuit 5 in
  let r = run_ok device c in
  check Alcotest.int "zero swaps" 0 r.n_swaps;
  verify device c r "ghz"

let test_known_one_swap () =
  (* paper Fig. 3: with identity initial mapping the optimum is 1 SWAP *)
  let device = Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ] in
  let c =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  let identity = Mapping.identity ~n_logical:4 ~n_physical:4 in
  let fixed = run_ok ~initial:identity device c in
  check Alcotest.int "one swap from identity" 1 fixed.n_swaps;
  verify device c fixed "fig3 fixed";
  (* free initial mapping can do no worse *)
  let free = run_ok device c in
  check Alcotest.bool "free <= fixed" true (free.n_swaps <= fixed.n_swaps);
  verify device c free "fig3 free"

let test_line_distance_lower_bound () =
  (* single CNOT across a 5-line at distance d needs exactly d-1 swaps *)
  let device = Devices.linear 5 in
  List.iter
    (fun (target, expected) ->
      let c = Circuit.create ~n_qubits:5 [ Gate.Cnot (0, target) ] in
      let identity = Mapping.identity ~n_logical:5 ~n_physical:5 in
      let r = run_ok ~initial:identity device c in
      check Alcotest.int
        (Printf.sprintf "cx 0,%d" target)
        expected r.n_swaps)
    [ (1, 0); (2, 1); (3, 2); (4, 3) ]

let test_sabre_matches_optimal_small () =
  (* the paper's Section V-A claim, against a true optimality oracle *)
  let device = Devices.ibm_q5_yorktown () in
  List.iter
    (fun (name, c) ->
      let opt = run_ok device c in
      let sabre = Sabre.Compiler.run device c in
      check Alcotest.bool
        (Printf.sprintf "%s: sabre %d within optimal %d + 1" name
           sabre.stats.n_swaps opt.n_swaps)
        true
        (sabre.stats.n_swaps <= opt.n_swaps + 1))
    [
      ("qft_4", Workloads.Qft.circuit 4);
      ("qft_5", Workloads.Qft.circuit 5);
      ("ghz_5", Workloads.Ghz.circuit 5);
      ("toffnet_5", Workloads.Random_reversible.toffoli_network ~seed:3 ~n:5 ~gates:40 ());
      ("toffnet_5b", Workloads.Random_reversible.toffoli_network ~seed:8 ~n:5 ~gates:30 ());
    ]

let test_heuristics_never_beat_optimal () =
  (* sanity: no router reports fewer swaps than the oracle when starting
     from the same fixed initial mapping *)
  let device = Devices.linear 5 in
  for seed = 1 to 5 do
    let c = Helpers.random_circuit ~seed ~n:5 ~gates:25 in
    let identity = Mapping.identity ~n_logical:5 ~n_physical:5 in
    let opt = run_ok ~initial:identity device c in
    let greedy = Baseline.Greedy_router.run ~initial:identity device c in
    check Alcotest.bool
      (Printf.sprintf "seed %d: greedy %d >= optimal %d" seed greedy.n_swaps
         opt.n_swaps)
      true
      (greedy.n_swaps >= opt.n_swaps)
  done

let test_rejects_large_device () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Ghz.circuit 5 in
  match Optimal.run device c with
  | Error (Optimal.Too_large _) -> ()
  | _ -> Alcotest.fail "expected Too_large"

let test_min_swaps () =
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  check (Alcotest.option Alcotest.int) "free placement avoids the swap"
    (Some 0) (Optimal.min_swaps device c);
  let identity = Mapping.identity ~n_logical:3 ~n_physical:3 in
  check (Alcotest.option Alcotest.int) "fixed identity needs one" (Some 1)
    (Optimal.min_swaps ~initial:identity device c)

let suite =
  [
    tc "zero when embeddable" `Quick test_zero_when_embeddable;
    tc "paper Fig. 3 optimum" `Quick test_known_one_swap;
    tc "line distance lower bound" `Quick test_line_distance_lower_bound;
    tc "sabre matches optimal (small)" `Slow test_sabre_matches_optimal_small;
    tc "heuristics never beat optimal" `Quick test_heuristics_never_beat_optimal;
    tc "rejects large device" `Quick test_rejects_large_device;
    tc "min_swaps" `Quick test_min_swaps;
  ]
