module Router = Engine.Router
module Context = Engine.Context

let greedy : Router.t =
  (module struct
    let name = "greedy"
    let deterministic = true
    let derives_seed = true

    let route (ctx : Context.t) ~initial:_ =
      let r =
        Greedy_router.run ?initial:ctx.Context.fixed_initial ctx.Context.coupling
          ctx.Context.circuit
      in
      {
        Router.physical = r.physical;
        trial_initial = r.initial_mapping;
        final_mapping = r.final_mapping;
        n_swaps = r.n_swaps;
        first_swaps = r.n_swaps;
        search_steps = 0;
        fallback_swaps = 0;
        traversals = 1;
        scoring = Sabre_core.Stats.scoring_zero;
      }
  end)

let bka : Router.t =
  (module struct
    let name = "bka"
    let deterministic = true
    let derives_seed = true

    let route (ctx : Context.t) ~initial:_ =
      match Bka.run ctx.Context.coupling ctx.Context.circuit with
      | Ok r ->
        {
          Router.physical = r.physical;
          trial_initial = r.initial_mapping;
          final_mapping = r.final_mapping;
          n_swaps = r.n_swaps;
          first_swaps = r.n_swaps;
          search_steps = r.nodes_generated;
          fallback_swaps = 0;
          traversals = 1;
          scoring = Sabre_core.Stats.scoring_zero;
        }
      | Error f ->
        raise (Router.Route_failed (Format.asprintf "BKA: %a" Bka.pp_failure f))
  end)

let register () =
  Router.register greedy;
  Router.register bka;
  Router.register Hail.router
