test/suite_baseline.ml: Alcotest Baseline Hardware Helpers Int List Printf Quantum Sabre Workloads
