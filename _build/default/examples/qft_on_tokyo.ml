(* Routing the Quantum Fourier Transform onto IBM Q20 Tokyo, and
   comparing SABRE against both baselines — the paper's headline
   experiment in miniature.

   Run with:  dune exec examples/qft_on_tokyo.exe *)

module Circuit = Quantum.Circuit
module Depth = Quantum.Depth
module Mapping = Sabre.Mapping

let verify device circuit ~initial ~final ~physical =
  match
    Sim.Tracker.check ~coupling:device ~initial ~final ~logical:circuit
      ~physical ()
  with
  | Ok () -> "OK"
  | Error e -> Format.asprintf "%a" Sim.Tracker.pp_error e

let () =
  let device = Hardware.Devices.ibm_q20_tokyo () in
  Format.printf
    "Routing the QFT onto IBM Q20 Tokyo (20 qubits, 43 couplers)@.@.";
  Format.printf "%-6s %-9s | %-22s | %-22s | %-22s@." "" ""
    "SABRE (swaps/depth)" "BKA (swaps/depth)" "greedy (swaps/depth)";
  List.iter
    (fun n ->
      let circuit = Workloads.Qft.circuit n in
      let g_ori = Quantum.Decompose.elementary_gate_count circuit in

      (* SABRE: 5 trials, forward-backward-forward *)
      let sabre = Sabre.Compiler.run device circuit in
      let sabre_cell =
        Printf.sprintf "%4d / %4d  %s" sabre.stats.n_swaps
          sabre.stats.routed_depth
          (verify device circuit
             ~initial:(Mapping.l2p_array sabre.initial_mapping)
             ~final:(Mapping.l2p_array sabre.final_mapping)
             ~physical:sabre.physical)
      in

      (* BKA: layered A* over mappings; may exhaust its memory budget *)
      let bka_cell =
        match Baseline.Bka.run device circuit with
        | Ok r ->
          Printf.sprintf "%4d / %4d  %s" r.n_swaps
            (Depth.depth_swap3 r.physical)
            (verify device circuit
               ~initial:(Mapping.l2p_array r.initial_mapping)
               ~final:(Mapping.l2p_array r.final_mapping)
               ~physical:r.physical)
        | Error (Baseline.Bka.Node_budget_exhausted _) -> "Out of Memory"
      in

      (* greedy: shortest-path, no look-ahead *)
      let greedy = Baseline.Greedy_router.run device circuit in
      let greedy_cell =
        Printf.sprintf "%4d / %4d  %s" greedy.n_swaps
          (Depth.depth_swap3 greedy.physical)
          (verify device circuit
             ~initial:(Mapping.l2p_array greedy.initial_mapping)
             ~final:(Mapping.l2p_array greedy.final_mapping)
             ~physical:greedy.physical)
      in
      Format.printf "qft_%-2d g=%-6d | %-22s | %-22s | %-22s@." n g_ori
        sabre_cell bka_cell greedy_cell)
    [ 6; 8; 10; 12; 14; 16 ];
  Format.printf
    "@.SABRE needs the fewest SWAPs and keeps working where the \
     exhaustive-search baseline runs out of memory (paper Section V).@."
