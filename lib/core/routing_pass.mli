module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

(** One traversal of SABRE's SWAP-based heuristic search (paper
    Algorithm 1).

    The pass consumes a circuit DAG and an initial mapping and produces
    the physical circuit: original gates remapped through the evolving π,
    interleaved with inserted SWAP gates on coupling-graph edges. The
    bidirectional driver {!Compiler} calls this once per traversal. *)

type scoring_mode =
  | Delta
      (** Incremental candidate scoring: integer base sums once per
          decision, then O(pairs touching the swapped qubits) per
          candidate. Requires an integer-valued metric — when the matrix
          is not integer-valued (noise-weighted metrics), the run
          silently degrades to [Full]. Bit-identical output to [Full]
          (see {!Heuristic}'s exactness argument). The default. *)
  | Full
      (** Full |F|+|E| recompute per candidate — the pre-delta scorer,
          kept as the equivalence baseline and for custom float
          metrics. *)

(** {2 Cooperative budget/cancel hook}

    A driver that races several routing runs (best-of-K portfolios, a
    serving daemon with deadlines) needs to stop a run that can no
    longer win without poisoning the per-domain scratch arena. The
    hook below is the contract: the traversal loop invokes [notify]
    every [every] routing decisions with monotone counters, and a
    [Stop] verdict aborts the run by raising {!Cancelled} from inside
    the arena's [Fun.protect] discipline — grown arrays and generation
    counters are synced back on the way out, so the scratch stays
    reusable and a subsequent run on it is bit-identical to a
    fresh-arena run. *)

type verdict = Continue | Stop

type progress = {
  swaps : int;  (** SWAPs inserted so far; never decreases *)
  decisions : int;  (** heuristic SWAP decisions so far; never decreases *)
  depth_lb : int;
      (** ASAP depth (Swap weight 3, Barrier 0, else 1 — the
          {!Depth.depth_swap3} metric) of the physical prefix emitted so
          far. Finish times only grow as gates are appended, so this is
          a monotone lower bound on the finished traversal's depth. *)
}

type hook = {
  every : int;  (** invoke [notify] every [max 1 every] decisions *)
  notify : progress -> verdict;
}

exception Cancelled
(** Raised out of a run whose hook returned [Stop]. The run's partial
    output is discarded; the scratch arena remains valid. *)

type result = {
  physical : Circuit.t;  (** hardware-compliant output circuit *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  n_swaps : int;  (** SWAPs inserted (each costs 3 CNOTs) *)
  search_steps : int;  (** heuristic SWAP selections performed *)
  fallback_swaps : int;
      (** SWAPs inserted by the anti-livelock shortest-path fallback; 0
          in normal operation *)
  scoring : Stats.scoring;  (** inner-loop scorer accounting *)
}

val run :
  ?dist:float array array ->
  ?scoring:scoring_mode ->
  Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** [run config coupling dag initial] routes the DAG's circuit. [dist]
    overrides the hop-count distance matrix with a custom routing metric
    (e.g. {!Hardware.Noise.swap_reliability_distance} for fidelity-aware
    mapping); it must be non-negative, symmetric, zero on the diagonal
    and finite between connected qubits. The
    initial mapping is not mutated. Raises [Invalid_argument] when the
    circuit needs more logical qubits than the device has physical ones,
    or when the coupling graph is disconnected while the circuit requires
    interaction across components.

    Convenience wrapper over {!run_flat}: flattens [dist] row-major per
    call. Drivers that route many traversals (trials × directions)
    should flatten once and call {!run_flat}. *)

val run_flat :
  ?dist:float array ->
  ?dist_int:int array ->
  ?scoring:scoring_mode ->
  ?hook:hook ->
  Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** Same as {!run}, but the metric is the row-major flattened matrix
    ([dist.((p1 * n_physical) + p2)], stride = device qubit count) the
    search scores against directly — no per-compilation conversion, one
    shared array across trials and traversal directions. Raises
    [Invalid_argument] if [dist] is not exactly [n_physical²] long.

    [dist_int] is the integer view of the same matrix for the delta
    scorer (e.g. {!Hardware.Dist_cache.lookup_all}'s second component);
    it must agree with [dist] entry for entry ([Invalid_argument]
    otherwise). When omitted under [~scoring:Delta] (the default mode)
    an integer view is derived from [dist] when possible, else the run
    degrades to full recompute.

    Allocates a fresh {!Scratch.t} per call; drivers routing many
    traversals against one device should hold a scratch and call
    {!run_with_scratch}. *)

(** Reusable search-state arena: every array the traversal loop touches
    (front deque, candidate stamps, BFS ring buffer, decay, front-pair
    and extended-set caches), allocated once per device and reset per
    run, so the steady-state hot path of a driver that routes many
    circuits is allocation-free. A scratch belongs to one domain at a
    time — never share one across concurrent runs. *)
module Scratch : sig
  type t

  val create : Coupling.t -> t
  (** Size the arena for [coupling] (decay per physical qubit, candidate
      stamps per edge); DAG-sized arrays start empty and grow to the
      largest circuit routed with this scratch. *)
end

(** Per-logical-qubit incidence index over front/extended pair slots, in
    CSR form — the structure behind delta scoring, exposed so tests can
    exercise the counting-sort builder and generation stamping
    directly. Keyed by logical qubits, so it is π-independent: valid
    across applied SWAPs, stale only when front membership changes. *)
module Incidence : sig
  type t

  val create : unit -> t
  (** Empty index; arrays grow to high-water capacity across builds. *)

  val build :
    t -> gen:int -> n_logical:int -> q1:int array -> q2:int array ->
    len:int -> unit
  (** (Re)build over pair slots [q1.(k), q2.(k)], [k < len], recording
      [gen] as the front generation the index reflects. *)

  val generation : t -> int
  (** The generation passed to the last {!build}; -1 if never built or
      invalidated. The router compares this against its live front
      generation to detect a stale index. *)

  val invalidate : t -> unit
  (** Reset the generation to -1 (e.g. between runs, where front
      generations restart and could alias). *)

  val degree : t -> int -> int
  (** Number of pair slots containing logical qubit [q]. *)

  val iter : t -> int -> (int -> unit) -> unit
  (** Apply to each slot id containing logical qubit [q]. *)
end

val run_with_scratch :
  scratch:Scratch.t ->
  ?dist:float array ->
  ?dist_int:int array ->
  ?scoring:scoring_mode ->
  ?hook:hook ->
  Config.t ->
  Coupling.t ->
  Dag.t ->
  Mapping.t ->
  result
(** {!run_flat}, reusing [scratch] instead of allocating. The output is
    bit-identical to a fresh-scratch run: per-run state is reset on
    entry, and the stamp arrays survive untouched because their
    generation counters only ever increase (a π-independent stale stamp
    can never collide with a fresh generation). Raises
    [Invalid_argument] when [scratch] was created for a device of a
    different shape (qubit or edge count).

    [hook] installs the cooperative progress callback; a [Stop] verdict
    raises {!Cancelled} and leaves [scratch] reusable (the sync in the
    run's [Fun.protect] runs on the abort path too). Installing a hook
    never changes the routed output of a run that completes. *)

(** {2 Streaming entry point} *)

type stream_result = {
  s_final_mapping : Mapping.t;  (** π after the last gate *)
  s_n_swaps : int;
  s_search_steps : int;
  s_fallback_swaps : int;
  s_scoring : Stats.scoring;
  s_gates_in : int;  (** gates consumed from the source stream *)
  s_gates_out : int;  (** gates delivered to the sink (in + SWAPs) *)
  s_peak_window : int;
      (** high-water count of simultaneously resident DAG nodes — the
          quantity that bounds streaming memory instead of circuit
          length *)
}

val run_streaming :
  ?dist:float array ->
  ?dist_int:int array ->
  ?scoring:scoring_mode ->
  ?retire:int array ->
  ?hook:hook ->
  sink:(Quantum.Gate.t -> unit) ->
  Config.t ->
  Coupling.t ->
  (unit -> Quantum.Gate.t option) ->
  Mapping.t ->
  stream_result
(** [run_streaming ~sink config coupling source initial] routes the
    gate stream [source] (one gate per call, [None] at end) in a single
    forward traversal from the fixed [initial] mapping, delivering each
    routed physical gate to [sink] as soon as it is decided.

    The delivered gate sequence is byte-identical to
    [(run_flat config coupling (Dag.of_circuit c) initial).physical] on
    the materialised equivalent [c] — same gates, same order, same
    SWAPs — for every scoring mode and heuristic; see {!Dag.Window} for
    the admission discipline behind the guarantee. What streaming gives
    up is only what inherently needs the whole circuit: reverse
    traversals and multi-trial initial-mapping search.

    [retire.(q)] is the stream position of the last gate touching
    logical qubit [q] ([-1] if never touched), as produced by
    {!Quantum.Qasm_stream.survey}; with it, peak resident state is
    proportional to the circuit's maximum qubit-inactivity span and
    independent of gate count. Without it the run is still exact but
    may buffer up to the whole stream. [dist]/[dist_int]/[scoring] are
    as in {!run_flat}. The number of logical qubits is taken from
    [Mapping.n_logical initial]. Raises [Invalid_argument] on
    validation failure, a stream gate out of qubit range, or a
    zero-operand gate. *)
