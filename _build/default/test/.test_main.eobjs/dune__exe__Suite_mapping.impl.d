test/suite_mapping.ml: Alcotest Array Random Sabre
