(** The routing stage: drive a {!Router} over every trial seed and keep
    the best attempt.

    Trials are evaluated by {!Trial_runner} in the context's trial mode
    (sequentially or across Domains) and reduced in trial order by the
    paper's ranking: fewest inserted SWAPs, ties broken by routed depth
    — or, when the context carries a noise model, highest estimated
    success probability (Section VI). Deterministic routers (greedy,
    BKA) run a single trial. *)

val pass : ?router:Router.t -> unit -> Pass.t
(** Defaults to the SABRE router.

    Compile-cache integration rides on [Context.cache_status]:
    [Cache_off] routes exactly as before the cache existed; [Cache_hit]
    only emits counters (the result was installed at context creation);
    [Cache_probe key] performs the single-flight acquire — a
    second-chance hit (counter [routing.cache_hit], plus
    [routing.cache_wait] when it blocked on another caller's in-flight
    route) installs the shared result, otherwise this caller owns the
    flight: it routes, verifies ({!Verify_pass.check} — on insert, so
    hits skip it), publishes (counter [routing.cache_insert]), and on
    any exception (including racing cancellation) aborts the flight
    without caching the failure. *)

val better :
  noise:Hardware.Noise.t option -> Router.outcome -> Router.outcome -> bool
(** [better ~noise a b] — is trial [a] strictly better than [b]? Exposed
    for tests. *)
