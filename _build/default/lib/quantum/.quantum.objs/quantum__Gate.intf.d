lib/quantum/gate.mli: Format
