test/suite_integration.ml: Alcotest Array Baseline Complex Hardware List Printf Quantum Sabre Sim Workloads
