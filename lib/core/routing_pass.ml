module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

type result = {
  physical : Circuit.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  search_steps : int;
  fallback_swaps : int;
}

(* Growable int FIFO: the ready queue and the extended-set BFS both ran
   on [int Queue.t], one boxed cell per push; this is a flat ring buffer
   with identical FIFO semantics and no per-element allocation. *)
module Intq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create n = { buf = Array.make (max 16 n) 0; head = 0; len = 0 }
  let is_empty q = q.len = 0
  let clear q =
    q.head <- 0;
    q.len <- 0

  let push q x =
    let cap = Array.length q.buf in
    if q.len = cap then begin
      let buf = Array.make (2 * cap) 0 in
      let tail = cap - q.head in
      Array.blit q.buf q.head buf 0 tail;
      Array.blit q.buf 0 buf tail q.head;
      q.buf <- buf;
      q.head <- 0
    end;
    q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
    q.len <- q.len + 1

  let pop q =
    if q.len = 0 then invalid_arg "Intq.pop: empty";
    let x = q.buf.(q.head) in
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    x
end

(* Reusable search-state arena. One scratch owns every array the
   traversal loop touches, so a driver that routes many circuits against
   one device (trials × traversals × batched compilations) allocates
   the arena once per domain and the steady-state hot path performs no
   array allocation at all.

   Reset discipline: per-run state (front deque length, ready/BFS
   queues, decay, remaining-predecessor counts) is cleared at the start
   of every run; the stamp arrays ([cand_mark], [visit_stamp]) are
   deliberately NOT cleared — their generation counters survive in the
   scratch and keep increasing monotonically across runs, so a stale
   stamp can never equal a fresh generation. Growable arrays keep their
   high-water capacity between runs.

   A scratch is single-domain state: never share one across concurrent
   runs. *)
module Scratch = struct
  type t = {
    n_physical : int;
    n_edges : int;
    decay : float array;  (* per physical qubit, refilled 1.0 per run *)
    cand_mark : int array;  (* per coupling edge, generation-stamped *)
    mutable cand_gen : int;
    mutable remaining : int array;  (* grown to the largest DAG seen *)
    mutable visit_stamp : int array;
    mutable visit_gen : int;
    mutable front_buf : int array;
    mutable fq1 : int array;
    mutable fq2 : int array;
    mutable eq1 : int array;
    mutable eq2 : int array;
    mutable l2p : int array;  (* grown to the widest circuit seen *)
    ready : Intq.t;
    bfs : Intq.t;
  }

  let create coupling =
    {
      n_physical = Coupling.n_qubits coupling;
      n_edges = Coupling.n_edges coupling;
      decay = Array.make (Coupling.n_qubits coupling) 1.0;
      cand_mark = Array.make (max 1 (Coupling.n_edges coupling)) 0;
      cand_gen = 0;
      remaining = [||];
      visit_stamp = [||];
      visit_gen = 0;
      front_buf = Array.make 16 0;
      fq1 = [||];
      fq2 = [||];
      eq1 = [||];
      eq2 = [||];
      l2p = [||];
      ready = Intq.create 64;
      bfs = Intq.create 64;
    }
end

(* Mutable search state for one traversal. *)
type state = {
  config : Config.t;
  coupling : Coupling.t;
  dist : float array;  (* row-major, stride = n_physical *)
  stride : int;
  dag : Dag.t;
  mapping : Mapping.t;  (* private copy, updated in place *)
  remaining : int array;  (* unexecuted predecessor count per node *)
  ready : Intq.t;  (* nodes whose predecessors all executed *)
  (* Front layer: array-backed deque of ready-but-blocked two-qubit
     nodes, oldest first, always compacted to start at index 0.
     [front_gen] bumps whenever membership changes; the caches below
     carry the generation they were built at. *)
  mutable front_buf : int array;
  mutable front_len : int;
  mutable front_gen : int;
  mutable cache_gen : int;  (* generation of fq/eq caches; -1 = stale *)
  mutable fq1 : int array;  (* front-layer logical pairs, front order *)
  mutable fq2 : int array;
  mutable flen : int;
  mutable eq1 : int array;  (* extended set E, BFS collection order *)
  mutable eq2 : int array;
  mutable elen : int;
  (* extended-set BFS scratch, reused across rebuilds *)
  visit_stamp : int array;  (* per DAG node; = visit_gen if seen *)
  mutable visit_gen : int;
  bfs : Intq.t;
  (* SWAP-candidate scratch: per-coupling-edge stamps. A set bit at
     [cand_gen] marks the edge as a candidate for the current decision;
     scanning edge ids in order recovers the canonical sorted (min,max)
     enumeration with no hashtable and no sort. *)
  cand_mark : int array;
  mutable cand_gen : int;
  l2p_scratch : int array;  (* tentative π for scoring, one per decision *)
  mutable out_rev : Gate.t list;  (* emitted physical gates, reversed *)
  decay : float array;  (* per physical qubit; 1.0 at rest *)
  mutable steps_since_reset : int;
  mutable stall : int;  (* swaps since the last gate execution *)
  stall_limit : int;
  mutable n_swaps : int;
  mutable search_steps : int;
  mutable fallback_swaps : int;
}

let reset_decay st =
  Array.fill st.decay 0 (Array.length st.decay) 1.0;
  st.steps_since_reset <- 0

let emit st gate = st.out_rev <- gate :: st.out_rev

let front_push st i =
  if st.front_len = Array.length st.front_buf then begin
    let buf = Array.make (2 * st.front_len) 0 in
    Array.blit st.front_buf 0 buf 0 st.front_len;
    st.front_buf <- buf
  end;
  st.front_buf.(st.front_len) <- i;
  st.front_len <- st.front_len + 1;
  st.front_gen <- st.front_gen + 1

(* Emit the logical gate at DAG node [i], remapped through the current π,
   and release its successors. *)
let execute_node st i =
  let to_physical q = Mapping.to_physical st.mapping q in
  emit st (Gate.remap to_physical (Dag.gate st.dag i));
  Dag.succ_iter st.dag i (fun j ->
      st.remaining.(j) <- st.remaining.(j) - 1;
      if st.remaining.(j) = 0 then Intq.push st.ready j);
  st.stall <- 0;
  if Dag.is_two_qubit_node st.dag i then reset_decay st

let executable st i =
  let q1 = Dag.pair_q1 st.dag i in
  q1 < 0
  || Coupling.connected st.coupling
       (Mapping.to_physical st.mapping q1)
       (Mapping.to_physical st.mapping (Dag.pair_q2 st.dag i))

(* Drain the ready queue and the front layer until no gate can execute.
   Returns once progress stops; the front then holds exactly the blocked
   two-qubit gates (possibly none, if the circuit is finished). *)
let advance st =
  let again = ref true in
  while !again do
    let progressed = ref false in
    while not (Intq.is_empty st.ready) do
      let i = Intq.pop st.ready in
      if Dag.is_two_qubit_node st.dag i then front_push st i
      else begin
        execute_node st i;
        progressed := true
      end
    done;
    (* one in-place sweep: executable nodes run (executability depends
       only on π, which gate execution never changes, so interleaving
       equals the old partition-then-execute), blocked ones compact *)
    let w = ref 0 in
    let executed = ref false in
    for r = 0 to st.front_len - 1 do
      let i = st.front_buf.(r) in
      if executable st i then begin
        execute_node st i;
        executed := true
      end
      else begin
        st.front_buf.(!w) <- i;
        incr w
      end
    done;
    if !executed then begin
      st.front_len <- !w;
      st.front_gen <- st.front_gen + 1;
      progressed := true
    end;
    again := !progressed
  done

let ensure_capacity arr len = if Array.length arr < len then Array.make (2 * len) 0 else arr

(* Rebuild the front-pair arrays and the extended set E (Section IV-D:
   breadth-first successors of the front layer, up to [size] two-qubit
   gates). Both depend only on front membership — not on π — so they
   stay valid across every candidate scored and every SWAP applied until
   a gate executes; [cache_gen] tracks that. *)
let rebuild_front_caches st =
  st.fq1 <- ensure_capacity st.fq1 st.front_len;
  st.fq2 <- ensure_capacity st.fq2 st.front_len;
  for r = 0 to st.front_len - 1 do
    let i = st.front_buf.(r) in
    st.fq1.(r) <- Dag.pair_q1 st.dag i;
    st.fq2.(r) <- Dag.pair_q2 st.dag i
  done;
  st.flen <- st.front_len;
  let size = st.config.extended_set_size in
  st.elen <- 0;
  if size > 0 && st.config.heuristic <> Config.Basic then begin
    st.eq1 <- ensure_capacity st.eq1 size;
    st.eq2 <- ensure_capacity st.eq2 size;
    st.visit_gen <- st.visit_gen + 1;
    Intq.clear st.bfs;
    for r = 0 to st.front_len - 1 do
      Dag.succ_iter st.dag st.front_buf.(r) (fun j -> Intq.push st.bfs j)
    done;
    while st.elen < size && not (Intq.is_empty st.bfs) do
      let i = Intq.pop st.bfs in
      if st.visit_stamp.(i) <> st.visit_gen then begin
        st.visit_stamp.(i) <- st.visit_gen;
        if Dag.is_two_qubit_node st.dag i then begin
          st.eq1.(st.elen) <- Dag.pair_q1 st.dag i;
          st.eq2.(st.elen) <- Dag.pair_q2 st.dag i;
          st.elen <- st.elen + 1
        end;
        Dag.succ_iter st.dag i (fun j -> Intq.push st.bfs j)
      end
    done
  end;
  st.cache_gen <- st.front_gen

(* Candidate SWAPs: coupling-graph edges with at least one endpoint
   occupied by a logical qubit of a front-layer gate (Section IV-C1).
   Unlike the front caches these depend on π, which the applied SWAP
   mutates, so they are re-marked per decision — but with per-edge
   stamps instead of a hashtable, and the id-order scan replaces the
   sort (edge ids are already the sorted (min,max) order). *)
let mark_candidates st =
  st.cand_gen <- st.cand_gen + 1;
  let stamp = st.cand_gen in
  let mark_qubit q =
    let p = Mapping.to_physical st.mapping q in
    Coupling.neighbors_iter st.coupling p (fun p' ->
        st.cand_mark.(Coupling.edge_id st.coupling p p') <- stamp)
  in
  for r = 0 to st.front_len - 1 do
    mark_qubit (Dag.pair_q1 st.dag st.front_buf.(r));
    mark_qubit (Dag.pair_q2 st.dag st.front_buf.(r))
  done;
  stamp

let apply_swap st ~fallback (p1, p2) =
  emit st (Gate.Swap (p1, p2));
  Mapping.swap_physical_inplace st.mapping p1 p2;
  st.n_swaps <- st.n_swaps + 1;
  if fallback then st.fallback_swaps <- st.fallback_swaps + 1

let score_swap st ~l2p ~p1 ~p2 =
  (* tentatively apply the swap on the scratch π *)
  let l1 = Mapping.to_logical st.mapping p1
  and l2 = Mapping.to_logical st.mapping p2 in
  if l1 >= 0 then l2p.(l1) <- p2;
  if l2 >= 0 then l2p.(l2) <- p1;
  let v =
    Heuristic.score_flat ~heuristic:st.config.heuristic ~dist:st.dist
      ~stride:st.stride ~l2p ~fq1:st.fq1 ~fq2:st.fq2 ~flen:st.flen
      ~eq1:st.eq1 ~eq2:st.eq2 ~elen:st.elen
      ~weight:st.config.extended_set_weight ~decay:st.decay ~p1 ~p2
  in
  if l1 >= 0 then l2p.(l1) <- p1;
  if l2 >= 0 then l2p.(l2) <- p2;
  v

let choose_and_apply_swap st =
  if st.cache_gen <> st.front_gen then rebuild_front_caches st;
  let stamp = mark_candidates st in
  let l2p = st.l2p_scratch in
  for q = 0 to Mapping.n_logical st.mapping - 1 do
    l2p.(q) <- Mapping.to_physical st.mapping q
  done;
  (* scan edge ids in order: same enumeration as the old sorted candidate
     list, same first-strictly-better tie-break *)
  let best_p1 = ref (-1) and best_p2 = ref (-1) in
  let best_score = ref infinity in
  let have_best = ref false in
  for e = 0 to Coupling.n_edges st.coupling - 1 do
    if st.cand_mark.(e) = stamp then begin
      let p1, p2 = Coupling.edge_endpoints st.coupling e in
      let s = score_swap st ~l2p ~p1 ~p2 in
      if (not !have_best) || s < !best_score then begin
        have_best := true;
        best_score := s;
        best_p1 := p1;
        best_p2 := p2
      end
    end
  done;
  if not !have_best then
    (* Cannot happen on a connected graph with a non-empty front: every
       occupied qubit has neighbours. *)
    invalid_arg "Routing_pass: no SWAP candidates (disconnected device?)";
  let p1 = !best_p1 and p2 = !best_p2 in
  apply_swap st ~fallback:false (p1, p2);
  st.search_steps <- st.search_steps + 1;
  st.stall <- st.stall + 1;
  (* decay bookkeeping (Section IV-C3 / V "Algorithm Configuration") *)
  if st.config.heuristic = Config.Decay then begin
    st.decay.(p1) <- st.decay.(p1) +. st.config.decay_increment;
    st.decay.(p2) <- st.decay.(p2) +. st.config.decay_increment;
    st.steps_since_reset <- st.steps_since_reset + 1;
    if st.steps_since_reset >= st.config.decay_reset_interval then
      reset_decay st
  end

(* Anti-livelock fallback: force the oldest front gate executable by
   swapping one operand along a shortest path to the other. *)
let fallback_route st =
  if st.front_len > 0 then begin
    let i = st.front_buf.(0) in
    let q1 = Dag.pair_q1 st.dag i and q2 = Dag.pair_q2 st.dag i in
    assert (q1 >= 0);
    let p1 = Mapping.to_physical st.mapping q1
    and p2 = Mapping.to_physical st.mapping q2 in
    let path = Coupling.shortest_path st.coupling p1 p2 in
    let rec walk = function
      | a :: (b :: (_ :: _ as rest)) ->
        apply_swap st ~fallback:true (a, b);
        walk (b :: rest)
      | _ -> ()
    in
    walk path;
    reset_decay st;
    st.stall <- 0
  end

let flat_hop_distances coupling =
  let d = Coupling.distance_matrix coupling in
  let n = Coupling.n_qubits coupling in
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- float_of_int row.(j)
    done
  done;
  flat

(* Grow-only capacity helper for scratch arrays. Replacing a stamp
   array with a zeroed one is safe: stamps are only ever compared
   against generations that keep increasing, and 0 is below any live
   generation. *)
let grown arr len = if Array.length arr >= len then arr else Array.make len 0

let run_with_scratch ~scratch ?dist config coupling dag initial =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Routing_pass.run: " ^ msg));
  let circuit = Dag.circuit dag in
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Routing_pass.run: circuit wider than device";
  if Mapping.n_logical initial <> Circuit.n_qubits circuit then
    invalid_arg "Routing_pass.run: mapping arity mismatch";
  let n = Dag.n_nodes dag in
  let n_physical = Coupling.n_qubits coupling in
  if
    scratch.Scratch.n_physical <> n_physical
    || scratch.Scratch.n_edges <> Coupling.n_edges coupling
  then invalid_arg "Routing_pass.run: scratch built for a different device";
  let dist =
    match dist with
    | Some d ->
      if Array.length d <> n_physical * n_physical then
        invalid_arg "Routing_pass.run: flat dist has wrong dimension";
      d
    | None -> flat_hop_distances coupling
  in
  (* per-run reset of the reused arena *)
  scratch.Scratch.remaining <- grown scratch.Scratch.remaining n;
  let remaining = scratch.Scratch.remaining in
  for i = 0 to n - 1 do
    remaining.(i) <- Dag.in_degree dag i
  done;
  scratch.Scratch.visit_stamp <- grown scratch.Scratch.visit_stamp (max 1 n);
  scratch.Scratch.l2p <- grown scratch.Scratch.l2p (Mapping.n_logical initial);
  Intq.clear scratch.Scratch.ready;
  Intq.clear scratch.Scratch.bfs;
  Array.fill scratch.Scratch.decay 0 (Array.length scratch.Scratch.decay) 1.0;
  let st =
    {
      config;
      coupling;
      dist;
      stride = n_physical;
      dag;
      mapping = Mapping.copy initial;
      remaining;
      ready = scratch.Scratch.ready;
      front_buf = scratch.Scratch.front_buf;
      front_len = 0;
      front_gen = 0;
      cache_gen = -1;
      fq1 = scratch.Scratch.fq1;
      fq2 = scratch.Scratch.fq2;
      flen = 0;
      eq1 = scratch.Scratch.eq1;
      eq2 = scratch.Scratch.eq2;
      elen = 0;
      visit_stamp = scratch.Scratch.visit_stamp;
      visit_gen = scratch.Scratch.visit_gen;
      bfs = scratch.Scratch.bfs;
      cand_mark = scratch.Scratch.cand_mark;
      cand_gen = scratch.Scratch.cand_gen;
      l2p_scratch = scratch.Scratch.l2p;
      out_rev = [];
      decay = scratch.Scratch.decay;
      steps_since_reset = 0;
      stall = 0;
      stall_limit =
        (match config.stall_limit with
        | Some s -> s
        | None -> 10 + (5 * Coupling.diameter coupling));
      n_swaps = 0;
      search_steps = 0;
      fallback_swaps = 0;
    }
  in
  (* Sync grown arrays and generation counters back even when the run
     raises: a stamp written during an aborted run must stay below the
     next run's generations, so the counters may never rewind. *)
  let sync () =
    scratch.Scratch.front_buf <- st.front_buf;
    scratch.Scratch.fq1 <- st.fq1;
    scratch.Scratch.fq2 <- st.fq2;
    scratch.Scratch.eq1 <- st.eq1;
    scratch.Scratch.eq2 <- st.eq2;
    scratch.Scratch.visit_gen <- st.visit_gen;
    scratch.Scratch.cand_gen <- st.cand_gen
  in
  Fun.protect ~finally:sync (fun () ->
      List.iter (fun i -> Intq.push st.ready i) (Dag.initial_front dag);
      advance st;
      while st.front_len > 0 do
        if st.stall > st.stall_limit then fallback_route st
        else choose_and_apply_swap st;
        advance st
      done;
      {
        physical =
          Circuit.create
            ~n_qubits:(Coupling.n_qubits coupling)
            ~n_clbits:(Circuit.n_clbits circuit)
            (List.rev st.out_rev);
        final_mapping = st.mapping;
        n_swaps = st.n_swaps;
        search_steps = st.search_steps;
        fallback_swaps = st.fallback_swaps;
      })

let run_flat ?dist config coupling dag initial =
  run_with_scratch ~scratch:(Scratch.create coupling) ?dist config coupling dag
    initial

let run ?dist config coupling dag initial =
  let dist = Option.map Heuristic.flatten_dist dist in
  run_flat ?dist config coupling dag initial
