module Circuit = Quantum.Circuit

(** Device noise models.

    The paper's hardware model (Fig. 2) carries average error rates and
    coherence times; its Section VI names variability-aware, more precise
    hardware modelling as future work. This module provides that
    substrate: per-qubit and per-edge error rates, a reliability-weighted
    distance matrix that plugs into SABRE's heuristic (making the router
    avoid bad couplers), and a success-probability estimator for routed
    circuits. *)

type t = {
  coupling : Coupling.t;
  single_qubit_error : float array;  (** gate error per qubit *)
  two_qubit_error : float array array;
      (** CNOT error per coupled pair; symmetric; 0 on non-edges *)
  readout_error : float array;  (** measurement error per qubit *)
  t1_us : float array;  (** relaxation time per qubit, microseconds *)
  t2_us : float array;  (** dephasing time per qubit, microseconds *)
  gate_time_1q_ns : float;  (** single-qubit gate duration *)
  gate_time_2q_ns : float;  (** CNOT duration *)
}

val uniform :
  ?single_qubit_error:float ->
  ?two_qubit_error:float ->
  ?readout_error:float ->
  ?t1_us:float ->
  ?t2_us:float ->
  ?gate_time_1q_ns:float ->
  ?gate_time_2q_ns:float ->
  Coupling.t ->
  t
(** Uniform noise across the device; defaults are the IBM Q20 Tokyo
    averages of the paper's Fig. 2 (single-qubit 4.43e-3, CNOT 3.00e-2,
    readout 8.74e-2, T1 = 87.29 µs, T2 = 54.43 µs) with typical
    superconducting gate times (50 ns / 300 ns). *)

val randomized : ?seed:int -> ?spread:float -> Coupling.t -> t
(** [randomized coupling] draws per-qubit and per-edge rates log-normally
    around the Fig. 2 averages with the given relative [spread] (default
    0.5) — the qubit-to-qubit variability that variability-aware mapping
    exploits (the Tannu & Qureshi observation cited in Section VI).
    Deterministic in [seed]. *)

val edge_error : t -> int -> int -> float
(** CNOT error rate of a coupled pair (symmetric). Raises
    [Invalid_argument] if the qubits are not coupled. *)

val swap_reliability_distance : t -> float array array
(** All-pairs routing metric for fidelity-aware mapping: the weight of an
    edge is −log(1 − e) of its SWAP failure probability (three CNOTs),
    and entries are weighted shortest-path distances. Plugs directly into
    {!Sabre.Compiler.run}'s [~dist] parameter: minimising summed
    distances then maximises the product of success probabilities along
    the chosen SWAP paths. *)

val mixed_routing_distance : ?lambda:float -> t -> float array array
(** [mixed_routing_distance t] blends hop count with reliability:
    each edge weighs [(1 − λ) + λ · nll(e)/avg_nll] where [nll] is the
    −log success of a SWAP on that edge and [avg_nll] its device-wide
    mean, then all-pairs shortest paths. With λ = 0 this is exactly the
    hop metric; with λ = 1 the pure (normalised) reliability metric. The
    default λ = 0.5 keeps the SWAP count near-minimal while steering
    paths away from bad couplers — in practice this dominates the pure
    metric of {!swap_reliability_distance}, which trades too many extra
    SWAPs for good edges. *)

val circuit_success_probability : t -> Circuit.t -> float
(** Estimate of the probability that the whole circuit runs without an
    error: the product of per-gate success rates (SWAPs count as three
    CNOTs, barriers are free) times a decoherence factor
    exp(−t_busy/T1 − t_busy/T2) per qubit under the ASAP schedule. *)

val expected_duration_ns : t -> Circuit.t -> float
(** Wall-clock duration of the circuit under the ASAP schedule with this
    model's gate times. *)

val pp : Format.formatter -> t -> unit
(** Summary: average rates and worst/best couplers. *)
