type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

(* ------------------------------------------------------------------ *)
(* Parser: strict recursive descent over the input string              *)
(* ------------------------------------------------------------------ *)

exception Fail of string * int

type state = { src : string; mutable pos : int }

let fail st msg = raise (Fail (msg, st.pos))
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  if (not (eof st))
     && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  then begin
    advance st;
    skip_ws st
  end

let expect st c =
  if eof st || peek st <> c then fail st (Printf.sprintf "expected %C" c);
  advance st

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid \\u escape"

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v =
    (hex_digit st st.src.[st.pos] lsl 12)
    lor (hex_digit st st.src.[st.pos + 1] lsl 8)
    lor (hex_digit st st.src.[st.pos + 2] lsl 4)
    lor hex_digit st st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

(* UTF-8 encode one scalar value *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated string";
    match peek st with
    | '"' -> advance st
    | '\\' ->
      advance st;
      if eof st then fail st "unterminated escape";
      let c = peek st in
      advance st;
      (match c with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let cp = hex4 st in
        if cp >= 0xD800 && cp <= 0xDBFF then begin
          (* high surrogate: require the paired low surrogate *)
          if
            st.pos + 2 > String.length st.src
            || peek st <> '\\'
            || st.src.[st.pos + 1] <> 'u'
          then fail st "unpaired high surrogate";
          st.pos <- st.pos + 2;
          let lo = hex4 st in
          if lo < 0xDC00 || lo > 0xDFFF then fail st "invalid low surrogate";
          add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
        end
        else if cp >= 0xDC00 && cp <= 0xDFFF then
          fail st "unpaired low surrogate"
        else add_utf8 buf cp
      | _ -> fail st "invalid escape");
      go ()
    | c when Char.code c < 0x20 -> fail st "raw control byte in string"
    | c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

(* RFC 8259 number grammar: optional minus, then 0 or a nonzero-led
   digit run, optional fraction, optional signed exponent — notably
   stricter than [int_of_string] (no leading zeros, no "+1"). *)
let json_number_ok text =
  let n = String.length text in
  let digits j =
    let rec go j = if j < n && text.[j] >= '0' && text.[j] <= '9' then go (j + 1) else j in
    go j
  in
  let i = if n > 0 && text.[0] = '-' then 1 else 0 in
  if i >= n then false
  else
    let j = digits i in
    if j = i then false
    else if text.[i] = '0' && j > i + 1 then false
    else
      let j =
        if j < n && text.[j] = '.' then
          let k = digits (j + 1) in
          if k = j + 1 then -1 else k
        else j
      in
      if j < 0 then false
      else
        let j =
          if j < n && (text.[j] = 'e' || text.[j] = 'E') then
            let j = j + 1 in
            let j = if j < n && (text.[j] = '+' || text.[j] = '-') then j + 1 else j in
            let k = digits j in
            if k = j then -1 else k
          else j
        in
        j = n

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec scan () =
    if not (eof st) then
      match peek st with
      | '0' .. '9' | '-' | '+' ->
        advance st;
        scan ()
      | '.' | 'e' | 'E' ->
        is_float := true;
        advance st;
        scan ()
      | _ -> ()
  in
  scan ();
  if st.pos = start then fail st "expected a value";
  let text = String.sub st.src start (st.pos - start) in
  if not (json_number_ok text) then
    fail st (Printf.sprintf "bad number %S" text);
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out of int range: fall back to the float representation *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st ~depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  if eof st then fail st "unexpected end of input";
  match peek st with
  | 'n' -> literal st "null" Null
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | '"' -> Str (parse_string st)
  | '[' ->
    advance st;
    skip_ws st;
    if (not (eof st)) && peek st = ']' then begin
      advance st;
      List []
    end
    else
      let rec items acc =
        let v = parse_value st ~depth:(depth + 1) in
        skip_ws st;
        if eof st then fail st "unterminated array";
        match peek st with
        | ',' ->
          advance st;
          items (v :: acc)
        | ']' ->
          advance st;
          List (List.rev (v :: acc))
        | _ -> fail st "expected ',' or ']'"
      in
      items []
  | '{' ->
    advance st;
    skip_ws st;
    if (not (eof st)) && peek st = '}' then begin
      advance st;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st ~depth:(depth + 1) in
        skip_ws st;
        if eof st then fail st "unterminated object";
        match peek st with
        | ',' ->
          advance st;
          fields ((k, v) :: acc)
        | '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected ',' or '}'"
      in
      fields []
  | _ -> parse_number st

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st ~depth:0 with
  | v ->
    skip_ws st;
    if eof st then Ok v
    else Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
  | exception Fail (msg, pos) ->
    Error (Printf.sprintf "%s at byte %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_json f =
  if not (Float.is_finite f) then
    invalid_arg "Jsonx.to_string: NaN/infinity has no JSON encoding";
  let s = Printf.sprintf "%.17g" f in
  (* "%.17g" prints integral floats without a decimal point; force one
     so the value parses back as Float, not Int *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_json f)
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2.0 ** 52.0 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
