let single_token kind =
  match (kind : Gate.single_kind) with
  | I -> "I"
  | H -> "H"
  | X -> "X"
  | Y -> "Y"
  | Z -> "Z"
  | S -> "S"
  | Sdg -> "S'"
  | T -> "T"
  | Tdg -> "T'"
  | Rx _ -> "Rx"
  | Ry _ -> "Ry"
  | Rz _ -> "Rz"
  | U1 _ -> "U1"
  | U2 _ -> "U2"
  | U3 _ -> "U3"

let circuit_ascii ?(max_columns = 120) c =
  let n = Circuit.n_qubits c in
  if n = 0 then "(empty register)"
  else begin
    (* every gate (barriers included) occupies one rendering column *)
    let { Depth.levels; depth } = Depth.asap ~weight:(fun _ -> 1) c in
    let columns = min depth max_columns in
    let truncated = depth > max_columns in
    let tokens = Array.make_matrix n (max columns 1) "" in
    let connector = Array.make_matrix n (max columns 1) false in
    let place q l s = if l < columns then tokens.(q).(l) <- s in
    let connect a b l =
      if l < columns then
        for q = min a b + 1 to max a b - 1 do
          connector.(q).(l) <- true
        done
    in
    Array.iteri
      (fun i gate ->
        let l = levels.(i) in
        match (gate : Gate.t) with
        | Single (k, q) -> place q l (single_token k)
        | Cnot (a, b) ->
          place a l "*";
          place b l "X";
          connect a b l
        | Cz (a, b) ->
          place a l "*";
          place b l "Z";
          connect a b l
        | Swap (a, b) ->
          place a l "x";
          place b l "x";
          connect a b l
        | Measure (q, _) -> place q l "M"
        | Barrier qs -> List.iter (fun q -> place q l "|") qs)
      (Circuit.gate_array c);
    let width col =
      let w = ref 1 in
      for q = 0 to n - 1 do
        w := max !w (String.length tokens.(q).(col))
      done;
      !w
    in
    let buf = Buffer.create 1024 in
    for q = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "q%-2d: -" q);
      for col = 0 to columns - 1 do
        let w = width col in
        let cell =
          match tokens.(q).(col) with
          | "" -> if connector.(q).(col) then "|" else "-"
          | s -> s
        in
        Buffer.add_string buf cell;
        for _ = String.length cell + 1 to w + 1 do
          Buffer.add_char buf '-'
        done
      done;
      if truncated then Buffer.add_string buf "...";
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end

let dag_dot dag =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph circuit_dag {\n  rankdir=LR;\n";
  for i = 0 to Dag.n_nodes dag - 1 do
    let gate = Dag.gate dag i in
    let shape = if Gate.is_two_qubit gate then "box" else "ellipse" in
    Buffer.add_string buf
      (Printf.sprintf "  g%d [label=\"g%d: %s\", shape=%s];\n" i i
         (String.escaped (Gate.to_string gate))
         shape)
  done;
  for i = 0 to Dag.n_nodes dag - 1 do
    List.iter
      (fun j -> Buffer.add_string buf (Printf.sprintf "  g%d -> g%d;\n" i j))
      (Dag.successors dag i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
