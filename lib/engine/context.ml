module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type routed = Compile_cache.routed = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
  scoring : Stats.scoring;
}

type cache_status =
  | Cache_off  (** no [cache_spec], cache disabled, or inputs not keyed *)
  | Cache_hit  (** [routed]/[verified] filled from the cache at create *)
  | Cache_probe of string  (** probe missed; the key to fill after routing *)

type t = {
  config : Config.t;
  coupling : Coupling.t;
  circuit : Circuit.t;
  noise : Noise.t option;
  dist : float array;  (* row-major, stride = Coupling.n_qubits coupling *)
  dist_int : int array option;  (* integer view of [dist], if exact *)
  scoring_mode : Sabre_core.Routing_pass.scoring_mode;
  trial_mode : Trial_runner.mode;
  race : Race.t option;
  fixed_initial : Mapping.t option;
  dag_forward : Dag.t option;
  dag_backward : Dag.t option;
  trial_mappings : Mapping.t array option;
  routed : routed option;
  verified : bool option;
  cache_status : cache_status;
  metrics : (string * float) list;
  counters : (string * int) list;
}

let check_device coupling circuit =
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Engine.Context: circuit wider than device";
  if Circuit.n_qubits circuit > 1 && not (Coupling.is_connected_graph coupling)
  then invalid_arg "Engine.Context: disconnected coupling graph"

let create ?(config = Config.default) ?dist ?noise
    ?(trial_mode = Trial_runner.Sequential) ?race ?initial
    ?(instrument = Instrument.null)
    ?(scoring = Sabre_core.Routing_pass.Delta) ?cache_spec coupling circuit =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Context: " ^ msg));
  check_device coupling circuit;
  let custom_metric = Option.is_some dist in
  let dist, dist_int, cache_counters =
    match dist with
    | Some d ->
      (* custom metric: integer-valued ones (hop-like) still get delta
         scoring; non-integer ones (noise-weighted) get [None] and the
         router recomputes in full *)
      let flat = Sabre_core.Heuristic.flatten_dist d in
      (flat, Sabre_core.Heuristic.dist_int_of_flat flat, [])
    | None ->
      (* the device-keyed cache skips the all-pairs BFS entirely when a
         structurally identical device was compiled before *)
      let flat, flat_int, outcome = Hardware.Dist_cache.lookup_all coupling in
      let hit, miss = match outcome with `Hit -> (1, 0) | `Miss -> (0, 1) in
      instrument.Instrument.emit
        (Instrument.Counter
           { pass = "context"; name = "dist_cache_hit"; value = hit });
      instrument.Instrument.emit
        (Instrument.Counter
           { pass = "context"; name = "dist_cache_miss"; value = miss });
      ( flat,
        Some flat_int,
        [ ("context.dist_cache_hit", hit); ("context.dist_cache_miss", miss) ]
      )
  in
  (* Read-only compile-cache probe. Only fully keyed compilations
     participate: a noise model changes trial ranking without entering
     the key, a custom metric replaces the digested hop distances, and
     a caller-supplied initial mapping replaces the seeded trials — all
     three force [Cache_off] (route normally, cache nothing). *)
  let cache_status, routed, verified, cache_counters =
    match cache_spec with
    | Some spec
      when Compile_cache.enabled () && noise = None && (not custom_metric)
           && initial = None ->
      let key = Compile_cache.key ~circuit ~coupling ~config ~scoring ~spec in
      let emit name v =
        instrument.Instrument.emit
          (Instrument.Counter { pass = "context"; name; value = v })
      in
      let counters_with hit miss =
        emit "compile_cache_hit" hit;
        emit "compile_cache_miss" miss;
        cache_counters
        @ [
            ("context.compile_cache_hit", hit);
            ("context.compile_cache_miss", miss);
          ]
      in
      (match Compile_cache.find key with
      | Some r -> (Cache_hit, Some r, Some true, counters_with 1 0)
      | None -> (Cache_probe key, None, None, counters_with 0 1))
    | _ -> (Cache_off, None, None, cache_counters)
  in
  {
    config;
    coupling;
    circuit;
    noise;
    dist;
    dist_int;
    scoring_mode = scoring;
    trial_mode;
    race;
    fixed_initial = Option.map Mapping.copy initial;
    dag_forward = None;
    dag_backward = None;
    trial_mappings = None;
    routed;
    verified;
    cache_status;
    metrics = [];
    counters = List.rev cache_counters;  (* stored newest-first *)
  }

let add_metric ctx name v = { ctx with metrics = (name, v) :: ctx.metrics }

let add_counter ctx ~pass name v =
  { ctx with counters = (pass ^ "." ^ name, v) :: ctx.counters }

let metrics ctx = List.rev ctx.metrics
let counters ctx = List.rev ctx.counters

let routed_exn ctx =
  match ctx.routed with
  | Some r -> r
  | None -> invalid_arg "Engine.Context: no routing pass has run"

let stats ctx ~time_s =
  let r = routed_exn ctx in
  Stats.summary ~original:ctx.circuit ~routed:r.physical ~n_swaps:r.n_swaps
    ~search_steps:r.search_steps ~fallback_swaps:r.fallback_swaps
    ~traversals_run:r.traversals_run ~time_s
    ~first_traversal_swaps:r.first_swaps ~scoring:r.scoring
