lib/quantum/depth.ml: Array Circuit Gate List
