lib/sim/equivalence.mli: Hardware Quantum
