module Gate = Quantum.Gate

let basic ~dist ~l2p pairs =
  List.fold_left
    (fun acc (q1, q2) -> acc +. dist.(l2p.(q1)).(l2p.(q2)))
    0.0 pairs

let average_distance ~dist ~l2p pairs =
  match pairs with
  | [] -> 0.0
  | _ -> basic ~dist ~l2p pairs /. float_of_int (List.length pairs)

let lookahead ~dist ~l2p ~front ~extended ~weight =
  average_distance ~dist ~l2p front
  +. (weight *. average_distance ~dist ~l2p extended)

let with_decay ~decay ~p1 ~p2 value = Float.max decay.(p1) decay.(p2) *. value

let score ~heuristic ~dist ~l2p ~front ~extended ~weight ~decay ~p1 ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> basic ~dist ~l2p front
  | Lookahead -> lookahead ~dist ~l2p ~front ~extended ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2 (lookahead ~dist ~l2p ~front ~extended ~weight)
