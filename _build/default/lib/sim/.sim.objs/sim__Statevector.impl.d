lib/sim/statevector.ml: Array Complex Float Hardware List Quantum Random
