(* sabre_serve: long-running routing-as-a-service daemon.

   Binds a Unix-domain or TCP socket, speaks the newline-delimited
   JSON protocol of [Serve.Protocol], and routes compile requests
   through the persistent worker pool of [Serve.Server]. The process
   prints one "listening on <endpoint>" line to stdout once it accepts
   connections (the CI smoke test keys its readiness on that line),
   then serves until SIGTERM/SIGINT, drains every admitted request,
   and exits 0. *)

let run socket port host domains queue deadline max_request_bytes trace
    cache_mb no_cache dist_cache_entries =
  let endpoint =
    match (socket, port) with
    | Some _, Some _ ->
      prerr_endline "sabre_serve: --socket and --port are mutually exclusive";
      exit 2
    | Some path, None -> Serve.Protocol.Unix_sock path
    | None, Some port -> Serve.Protocol.Tcp { host; port }
    | None, None ->
      prerr_endline "sabre_serve: one of --socket PATH or --port N is required";
      exit 2
  in
  let instrument =
    if trace then Engine.Instrument.stderr_trace else Engine.Instrument.null
  in
  (* process-wide cache knobs, set before the workers exist *)
  if cache_mb < 0 then begin
    Printf.eprintf "sabre_serve: --cache-mb must be >= 0, got %d\n%!" cache_mb;
    exit 2
  end;
  if dist_cache_entries < 1 then begin
    Printf.eprintf "sabre_serve: --dist-cache-entries must be >= 1, got %d\n%!"
      dist_cache_entries;
    exit 2
  end;
  Engine.Compile_cache.set_capacity_mb (if no_cache then 0 else cache_mb);
  Hardware.Dist_cache.set_capacity dist_cache_entries;
  let cache = (not no_cache) && cache_mb > 0 in
  let server =
    try
      Serve.Server.start ~domains ~queue_capacity:queue ~cache
        ?default_deadline_s:deadline ~max_request_bytes ~instrument endpoint
    with Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "sabre_serve: cannot bind %s: %s (%s %s)\n%!"
        (Format.asprintf "%a" Serve.Protocol.pp_endpoint endpoint)
        (Unix.error_message err) fn arg;
      exit 1
  in
  Serve.Server.install_signal_handlers server;
  Format.printf "listening on %a@." Serve.Protocol.pp_endpoint
    (Serve.Server.endpoint server);
  Serve.Server.wait server;
  let s = Serve.Server.stats server in
  Printf.printf
    "served %d, errored %d, rejected %d, timed out %d, malformed %d in %.1fs\n%!"
    s.Serve.Protocol.served s.Serve.Protocol.errored s.Serve.Protocol.rejected
    s.Serve.Protocol.timed_out s.Serve.Protocol.malformed
    s.Serve.Protocol.uptime_s;
  0

open Cmdliner

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at $(docv).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N"
        ~doc:"Listen on TCP port $(docv) (0 picks a free port; the chosen \
              port appears in the listening line).")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address for --port.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains routing in parallel.")

let queue =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission-queue capacity; a full queue answers queue_full.")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Default per-request deadline for requests that carry none.")

let max_request_bytes =
  Arg.(
    value
    & opt int Serve.Protocol.default_max_bytes
    & info [ "max-request-bytes" ] ~docv:"N"
        ~doc:"Longest accepted request line; longer lines answer oversized.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Trace engine pass events to stderr.")

let cache_mb =
  Arg.(
    value & opt int 256
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Compile-cache byte budget in megabytes (default 256). A \
              compile request whose (circuit, device, config, router) was \
              already routed is answered at admission, byte-identically, \
              without occupying a worker. 0 disables caching.")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the compile cache: every request routes from \
              scratch on a worker domain.")

let dist_cache_entries =
  Arg.(
    value & opt int 16
    & info [ "dist-cache-entries" ] ~docv:"N"
        ~doc:"Distance-matrix cache capacity in devices (default 16); the \
              stats request reports its hit/miss counters.")

let cmd =
  let doc = "serve qubit-mapping compilations over a socket" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Long-running daemon around the same engine pipeline as \
         $(b,sabre_compile): requests routed through it produce \
         byte-identical QASM. One JSON request per line; see the Serving \
         section of the README for the schema.";
      `S Manpage.s_examples;
      `Pre
        "  sabre_serve --socket /tmp/sabre.sock --domains 4\n\
        \  printf '{\"kind\":\"ping\",\"id\":\"x\"}\\n' | nc -U /tmp/sabre.sock";
    ]
  in
  Cmd.v
    (Cmd.info "sabre_serve" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ socket $ port $ host $ domains $ queue $ deadline
      $ max_request_bytes $ trace $ cache_mb $ no_cache
      $ dist_cache_entries)

let () = exit (Cmd.eval' cmd)
