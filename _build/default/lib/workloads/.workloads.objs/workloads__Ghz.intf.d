lib/workloads/ghz.mli: Quantum
