module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
}

let run ?initial coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical > n_physical then
    invalid_arg "Greedy_router.run: circuit wider than device";
  if n_logical > 1 && not (Coupling.is_connected_graph coupling) then
    invalid_arg "Greedy_router.run: disconnected coupling graph";
  let initial =
    match initial with
    | Some m -> Mapping.copy m
    | None -> Mapping.identity ~n_logical ~n_physical
  in
  let mapping = Mapping.copy initial in
  let out = ref [] in
  let n_swaps = ref 0 in
  let emit g = out := g :: !out in
  let swap p1 p2 =
    emit (Gate.Swap (p1, p2));
    Mapping.swap_physical_inplace mapping p1 p2;
    incr n_swaps
  in
  let make_adjacent q1 q2 =
    let p1 = Mapping.to_physical mapping q1
    and p2 = Mapping.to_physical mapping q2 in
    if not (Coupling.connected coupling p1 p2) then begin
      let path = Coupling.shortest_path coupling p1 p2 in
      (* move the first operand down the path, stopping one hop short *)
      let rec walk = function
        | a :: (b :: (_ :: _ as rest)) ->
          swap a b;
          walk (b :: rest)
        | _ -> ()
      in
      walk path
    end
  in
  List.iter
    (fun g ->
      (match Gate.two_qubit_pair g with
      | Some (q1, q2) -> make_adjacent q1 q2
      | None -> ());
      emit (Gate.remap (Mapping.to_physical mapping) g))
    (Circuit.gates circuit);
  {
    physical =
      Circuit.create ~n_qubits:n_physical ~n_clbits:(Circuit.n_clbits circuit)
        (List.rev !out);
    initial_mapping = initial;
    final_mapping = mapping;
    n_swaps = !n_swaps;
  }
