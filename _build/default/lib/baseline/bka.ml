module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

type config = {
  node_budget : int;
  lookahead : bool;
  lookahead_weight : float;
}

let default_config =
  { node_budget = 2_000_000; lookahead = true; lookahead_weight = 0.5 }

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  nodes_generated : int;
  peak_layer_nodes : int;
}

type failure = Node_budget_exhausted of { layer : int; nodes : int }

let pp_failure ppf (Node_budget_exhausted { layer; nodes }) =
  Format.fprintf ppf "out of memory: %d search nodes generated at layer %d"
    nodes layer

exception Budget of int  (* nodes generated when the budget tripped *)

exception Unsatisfiable
(* Raised when a layer's pairs cannot all be adjacent simultaneously on
   this topology (e.g. two concurrent gates on a star device, whose only
   hub can serve one pair at a time). The driver splits such layers. *)

(* ------------------------------------------------------------------ *)
(* Greedy beginning-of-circuit initial placement                        *)
(* ------------------------------------------------------------------ *)

let initial_mapping = Sabre.Initial_mapping.interaction_greedy

(* ------------------------------------------------------------------ *)
(* Per-layer A* search over mappings                                    *)
(* ------------------------------------------------------------------ *)

let mapping_key l2p =
  let b = Bytes.create (Array.length l2p) in
  Array.iteri (fun i p -> Bytes.set b i (Char.chr p)) l2p;
  Bytes.to_string b

type node = {
  l2p : int array;
  swaps_rev : (int * int) list;  (* physical swaps, latest first *)
  g : int;
}

let layer_cost dist l2p pairs =
  List.fold_left
    (fun acc (q1, q2) -> acc + dist.(l2p.(q1)).(l2p.(q2)) - 1)
    0 pairs

(* Candidate SWAP edges for a node: coupling edges incident to a physical
   position holding a layer qubit, deduplicated and sorted. *)
let candidate_edges coupling l2p pairs =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      List.iter
        (fun p ->
          List.iter
            (fun p' ->
              let e = (min p p', max p p') in
              if not (Hashtbl.mem seen e) then Hashtbl.add seen e ())
            (Coupling.neighbors coupling p))
        [ l2p.(a); l2p.(b) ])
    pairs;
  Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> List.sort compare

(* Enumerate every non-empty matching (set of pairwise-disjoint edges) of
   [edges], calling [yield] on each. This is the original algorithm's
   expansion — "all possible combinations of SWAP operations that can be
   applied concurrently" — and the source of its exponential search
   space. *)
let iter_matchings edges ~n_physical yield =
  let used = Array.make n_physical false in
  let edges = Array.of_list edges in
  let m = Array.length edges in
  let chosen = ref [] in
  let rec enum idx =
    if idx = m then begin
      match !chosen with [] -> () | matching -> yield matching
    end
    else begin
      enum (idx + 1);
      let a, b = edges.(idx) in
      if (not used.(a)) && not used.(b) then begin
        used.(a) <- true;
        used.(b) <- true;
        chosen := edges.(idx) :: !chosen;
        enum (idx + 1);
        chosen := List.tl !chosen;
        used.(a) <- false;
        used.(b) <- false
      end
    end
  in
  enum 0

(* Solve one layer: find a swap sequence making all [pairs] adjacent.
   [next_pairs] feeds the look-ahead term. Returns the swaps in execution
   order. Raises [Budget] when a single layer's search generates more
   nodes than the budget — the peak-memory proxy for the paper's
   Out-of-Memory behaviour (the open/closed sets of one A* search are
   what filled the 378 GB server; memory is reclaimed between layers). *)
let solve_layer config coupling dist ~pairs ~next_pairs l2p0 =
  match pairs with
  | [] -> ([], 0)
  | _ ->
    let n_physical = Array.length dist in
    let h node_l2p =
      let base = float_of_int (layer_cost dist node_l2p pairs) in
      if config.lookahead && next_pairs <> [] then
        base
        +. (config.lookahead_weight
           *. float_of_int (max 0 (layer_cost dist node_l2p next_pairs)))
      else base
    in
    let open_set = Heap.create () in
    let closed = Hashtbl.create 4096 in
    let generated = ref 0 in
    let gen () =
      incr generated;
      if !generated > config.node_budget then raise (Budget !generated)
    in
    let root = { l2p = Array.copy l2p0; swaps_rev = []; g = 0 } in
    gen ();
    Heap.push open_set (h root.l2p) root;
    let result = ref None in
    while !result = None do
      match Heap.pop open_set with
      | None ->
        (* the whole reachable mapping space was closed without finding a
           goal: the layer is unsatisfiable on this topology *)
        raise Unsatisfiable
      | Some (_, node) ->
        if layer_cost dist node.l2p pairs = 0 then result := Some node
        else begin
          let key = mapping_key node.l2p in
          if not (Hashtbl.mem closed key) then begin
            Hashtbl.add closed key node.g;
            let p2l = Array.make n_physical (-1) in
            Array.iteri (fun q p -> p2l.(p) <- q) node.l2p;
            let candidates = candidate_edges coupling node.l2p pairs in
            iter_matchings candidates ~n_physical (fun matching ->
                let l2p' = Array.copy node.l2p in
                List.iter
                  (fun (a, b) ->
                    let la = p2l.(a) and lb = p2l.(b) in
                    (* note: p2l is the parent's view; correct because the
                       matching's edges are pairwise disjoint *)
                    if la >= 0 then l2p'.(la) <- b;
                    if lb >= 0 then l2p'.(lb) <- a)
                  matching;
                let child =
                  {
                    l2p = l2p';
                    swaps_rev = matching @ node.swaps_rev;
                    g = node.g + List.length matching;
                  }
                in
                gen ();
                Heap.push open_set (float_of_int child.g +. h child.l2p) child)
          end
        end
    done;
    (match !result with
    | Some node -> (List.rev node.swaps_rev, !generated)
    | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Whole-circuit driver                                                 *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) coupling circuit =
  let n_physical = Coupling.n_qubits coupling in
  if Circuit.n_qubits circuit > n_physical then
    invalid_arg "Bka.run: circuit wider than device";
  if Circuit.n_qubits circuit > 1 && not (Coupling.is_connected_graph coupling)
  then invalid_arg "Bka.run: disconnected coupling graph";
  if n_physical > 255 then
    invalid_arg "Bka.run: devices beyond 255 qubits unsupported (state keys)";
  let dist = Coupling.distance_matrix coupling in
  let initial = initial_mapping coupling circuit in
  let mapping = Mapping.copy initial in
  let layers = Layering.partition_asap circuit in
  let out = ref [] in
  let n_swaps = ref 0 in
  let nodes_total = ref 0 in
  let peak = ref 0 in
  let current_layer = ref 0 in
  let emit g = out := g :: !out in
  let rec route_layer layer next_pairs =
    let pairs = Layering.two_qubit_pairs layer in
    match
      solve_layer config coupling dist ~pairs ~next_pairs
        (Mapping.l2p_array mapping)
    with
    | swaps, generated ->
      nodes_total := !nodes_total + generated;
      if generated > !peak then peak := generated;
      List.iter
        (fun (p1, p2) ->
          emit (Gate.Swap (p1, p2));
          Mapping.swap_physical_inplace mapping p1 p2;
          incr n_swaps)
        swaps;
      List.iter
        (fun g -> emit (Gate.remap (Mapping.to_physical mapping) g))
        layer.Layering.gates
    | exception Unsatisfiable ->
      (* no mapping satisfies all pairs at once on this topology: split
         the layer and satisfy the halves in sequence (a single pair is
         always satisfiable on a connected graph, so this terminates) *)
      let gates = layer.Layering.gates in
      let k = List.length gates in
      assert (k > 1);
      let first = List.filteri (fun i _ -> i < k / 2) gates in
      let second = List.filteri (fun i _ -> i >= k / 2) gates in
      route_layer { Layering.gates = first } next_pairs;
      route_layer { Layering.gates = second } next_pairs
  in
  let rec drive = function
    | [] -> ()
    | layer :: rest ->
      let next_pairs =
        match rest with [] -> [] | l :: _ -> Layering.two_qubit_pairs l
      in
      route_layer layer next_pairs;
      incr current_layer;
      drive rest
  in
  match drive layers with
  | () ->
    Ok
      {
        physical =
          Circuit.create ~n_qubits:n_physical
            ~n_clbits:(Circuit.n_clbits circuit)
            (List.rev !out);
        initial_mapping = initial;
        final_mapping = mapping;
        n_swaps = !n_swaps;
        nodes_generated = !nodes_total;
        peak_layer_nodes = !peak;
      }
  | exception Budget nodes ->
    Error (Node_budget_exhausted { layer = !current_layer; nodes })
