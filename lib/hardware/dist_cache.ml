let default_capacity = 16
let capacity_ref = ref default_capacity

type entry = { flat : float array; flat_int : int array; mutable tick : int }
type stats = { hits : int; misses : int; evictions : int; entries : int }

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create default_capacity
let clock = ref 0
let hits = ref 0
let misses = ref 0
let evictions = ref 0

(* One pass builds both views: the float matrix the scorer sums in the
   hot loop, and the integer hop counts the delta scorer needs for
   exact incremental sums. *)
let flatten coupling =
  let d = Coupling.distance_matrix coupling in
  let n = Coupling.n_qubits coupling in
  let flat = Array.make (n * n) 0.0 in
  let flat_int = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    for j = 0 to n - 1 do
      let k = (i * n) + j in
      flat.(k) <- float_of_int row.(j);
      flat_int.(k) <- row.(j)
    done
  done;
  (flat, flat_int)

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, tick) when tick <= e.tick -> acc
        | _ -> Some (key, e.tick))
      table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove table key;
    incr evictions
  | None -> ()

let capacity () = Mutex.protect lock (fun () -> !capacity_ref)

let set_capacity n =
  if n < 1 then invalid_arg "Dist_cache.set_capacity: capacity must be >= 1";
  Mutex.protect lock (fun () ->
      capacity_ref := n;
      while Hashtbl.length table > n do
        evict_lru ()
      done)

let lookup_all coupling =
  (* digest first: it memoises inside the coupling value and keeps the
     O(edges) serialisation outside the critical section on reuse *)
  let key = Coupling.digest coupling in
  Mutex.protect lock (fun () ->
      incr clock;
      match Hashtbl.find_opt table key with
      | Some e ->
        e.tick <- !clock;
        incr hits;
        (e.flat, e.flat_int, `Hit)
      | None ->
        incr misses;
        let flat, flat_int = flatten coupling in
        if Hashtbl.length table >= !capacity_ref then evict_lru ();
        Hashtbl.add table key { flat; flat_int; tick = !clock };
        (flat, flat_int, `Miss))

let lookup coupling =
  let flat, _, outcome = lookup_all coupling in
  (flat, outcome)

let hop_distances coupling = fst (lookup coupling)

let hop_distances_int coupling =
  let _, flat_int, _ = lookup_all coupling in
  flat_int

let stats () =
  Mutex.protect lock (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        entries = Hashtbl.length table;
      })

let reset_stats () =
  Mutex.protect lock (fun () ->
      hits := 0;
      misses := 0;
      evictions := 0)

let clear () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      hits := 0;
      misses := 0;
      evictions := 0)
