module Circuit = Quantum.Circuit

(** QAOA MaxCut circuits — the flagship NISQ variational workload (the
    application class the paper's introduction motivates). The two-qubit
    interaction pattern is exactly the problem graph, so edge probability
    dials the routing difficulty from chain-like to all-to-all. *)

val random_graph :
  ?seed:int -> n:int -> edge_prob:float -> unit -> (int * int) list
(** Erdős–Rényi instance over [n] vertices; deterministic in [seed]. *)

val circuit :
  ?rounds:int ->
  ?gamma:float ->
  ?beta:float ->
  n:int ->
  edges:(int * int) list ->
  unit ->
  Circuit.t
(** [circuit ~n ~edges ()] builds the QAOA state-preparation circuit:
    initial Hadamard layer, then [rounds] (default 2) of the cost layer —
    exp(−iγ Z⊗Z) on every problem edge as CNOT·Rz·CNOT — followed by the
    mixer Rx(2β) on every vertex, and final measurements. *)

val maxcut_instance : ?seed:int -> n:int -> edge_prob:float -> unit -> Circuit.t
(** Convenience: {!random_graph} fed into {!circuit} with defaults. *)
