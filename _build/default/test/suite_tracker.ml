module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Tracker = Sim.Tracker

let check = Alcotest.check
let tc = Alcotest.test_case

(* the paper's Fig. 3 setting: 4-qubit square device, 6-CNOT circuit *)
let square = Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ]

let fig3_original =
  Circuit.create ~n_qubits:4
    [
      Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
      Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
    ]

(* Fig. 3(d): one SWAP between q1 and q2 (physical Q1, Q2 = indices 0, 1)
   after the third CNOT makes the rest executable. *)
let fig3_updated =
  Circuit.create ~n_qubits:4
    [
      Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
      Gate.Swap (0, 1);
      Gate.Cnot (0, 2); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
    ]

let identity4 = [| 0; 1; 2; 3 |]

let test_fig3_roundtrip () =
  match
    Tracker.check ~coupling:square ~initial:identity4
      ~final:[| 1; 0; 2; 3 |] ~logical:fig3_original ~physical:fig3_updated ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Tracker.pp_error e

let test_compliance_catches_bad_edge () =
  (* CNOT on the square's diagonal (0,3) is not an edge *)
  let bad = Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 3) ] in
  match Tracker.check_compliance ~coupling:square bad with
  | Error (Tracker.Not_on_edge _) -> ()
  | Ok () -> Alcotest.fail "should have failed"
  | Error e -> Alcotest.failf "wrong error: %a" Tracker.pp_error e

let test_semantics_mismatch_detected () =
  (* drop a gate from the physical circuit *)
  let truncated =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3) ]
  in
  match
    Tracker.check ~coupling:square ~initial:identity4 ~logical:fig3_original
      ~physical:truncated ()
  with
  | Error Tracker.Semantics_mismatch -> ()
  | Ok () -> Alcotest.fail "should have failed"
  | Error e -> Alcotest.failf "wrong error: %a" Tracker.pp_error e

let test_wrong_final_mapping_detected () =
  match
    Tracker.check ~coupling:square ~initial:identity4 ~final:identity4
      ~logical:fig3_original ~physical:fig3_updated ()
  with
  | Error (Tracker.Final_mapping_mismatch _) -> ()
  | Ok () -> Alcotest.fail "should have failed"
  | Error e -> Alcotest.failf "wrong error: %a" Tracker.pp_error e

let test_unroute_returns_final_mapping () =
  match Tracker.unroute ~initial:identity4 ~n_logical:4 fig3_updated with
  | Ok (recovered, final) ->
    check Alcotest.bool "semantics" true
      (Circuit.equal_up_to_reordering recovered fig3_original);
    check (Alcotest.array Alcotest.int) "final" [| 1; 0; 2; 3 |] final
  | Error e -> Alcotest.failf "unexpected: %a" Tracker.pp_error e

let test_unmapped_qubit_detected () =
  (* 2 logical qubits on 4 physical; a gate touches an unmapped qubit *)
  let logicalless =
    Circuit.create ~n_qubits:4 [ Gate.Single (H, 3) ]
  in
  match Tracker.unroute ~initial:[| 0; 1 |] ~n_logical:2 logicalless with
  | Error (Tracker.Unmapped_qubit (_, 3)) -> ()
  | Ok _ -> Alcotest.fail "should have failed"
  | Error e -> Alcotest.failf "wrong error: %a" Tracker.pp_error e

let test_swap_through_unmapped_ok () =
  (* moving a logical qubit through a free physical qubit is legal *)
  let line = Coupling.create ~n_qubits:3 [ (0, 1); (1, 2) ] in
  let logical = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  (* q0 at P0, q1 at P2: swap q1 to P1 then interact *)
  let physical =
    Circuit.create ~n_qubits:3 [ Gate.Swap (2, 1); Gate.Cnot (0, 1) ]
  in
  match
    Tracker.check ~coupling:line ~initial:[| 0; 2 |] ~final:[| 0; 1 |]
      ~logical ~physical ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Tracker.pp_error e

let test_invalid_initial_mapping_rejected () =
  let c = Circuit.empty 2 in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check Alcotest.bool "duplicate" true
    (raises (fun () -> Tracker.unroute ~initial:[| 0; 0 |] ~n_logical:2 c));
  check Alcotest.bool "out of range" true
    (raises (fun () -> Tracker.unroute ~initial:[| 0; 7 |] ~n_logical:2 c))

let suite =
  [
    tc "Fig. 3 roundtrip" `Quick test_fig3_roundtrip;
    tc "compliance catches bad edge" `Quick test_compliance_catches_bad_edge;
    tc "semantics mismatch detected" `Quick test_semantics_mismatch_detected;
    tc "wrong final mapping detected" `Quick test_wrong_final_mapping_detected;
    tc "unroute returns final mapping" `Quick test_unroute_returns_final_mapping;
    tc "unmapped qubit detected" `Quick test_unmapped_qubit_detected;
    tc "swap through unmapped qubit ok" `Quick test_swap_through_unmapped_ok;
    tc "invalid initial mapping rejected" `Quick test_invalid_initial_mapping_rejected;
  ]
