examples/device_survey.mli:
