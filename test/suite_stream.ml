(* Streaming pipeline suite (PR 6).

   The spine of this suite is byte-identity: windowed streaming routing
   must emit exactly the gate sequence the materialised single-traversal
   route emits, on named workloads (pinned with golden digests) and on
   random instances (qcheck over the differential property). Around it:
   Dag.Window release-order unit tests, incremental-frontend equivalence
   under adversarial chunking, and the file-to-file engine pass. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Qasm = Quantum.Qasm
module Qasm_stream = Quantum.Qasm_stream
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Routing_pass = Sabre_core.Routing_pass

let check = Alcotest.check
let tc = Alcotest.test_case

let source_of_circuit c =
  let r = ref (Circuit.gates c) in
  fun () ->
    match !r with
    | [] -> None
    | g :: tl ->
      r := tl;
      Some g

let last_use_of c =
  let last = Array.make (Circuit.n_qubits c) (-1) in
  List.iteri
    (fun i g -> List.iter (fun q -> last.(q) <- i) (Gate.qubits g))
    (Circuit.gates c);
  last

(* ------------------------------------------------------------------ *)
(* Dag.Window: release order matches the eager DAG                     *)
(* ------------------------------------------------------------------ *)

(* FIFO consumption of the eager DAG: seed with the initial front in
   program order, pop, release successors as in-degrees hit zero. *)
let eager_fifo_order c =
  let dag = Dag.of_circuit c in
  let n = Dag.n_nodes dag in
  let indeg = Array.init n (Dag.in_degree dag) in
  let q = Queue.create () in
  List.iter (fun i -> Queue.add i q) (Dag.initial_front dag);
  let order = ref [] in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    order := i :: !order;
    Dag.succ_iter dag i (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j q)
  done;
  List.rev !order

let window_fifo_order ?retire c =
  let w =
    Dag.Window.create ?retire ~n_qubits:(Circuit.n_qubits c)
      (source_of_circuit c)
  in
  let q = Queue.create () in
  let on_ready s = Queue.add s q in
  Dag.Window.saturate w on_ready;
  let order = ref [] in
  let peak = ref 0 in
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    order := Dag.Window.seq w s :: !order;
    Dag.Window.execute w s on_ready;
    peak := max !peak (Dag.Window.peak_live w)
  done;
  check Alcotest.bool "stream drained" true
    (Dag.Window.exhausted w && Dag.Window.live_count w = 0);
  check Alcotest.int "admitted = executed" (Dag.Window.admitted w)
    (Dag.Window.executed w);
  (List.rev !order, !peak)

let order_circuits () =
  [
    ("qft5", Workloads.Qft.circuit 5);
    ("ising10", Workloads.Ising.circuit 10);
    ("ghz12", Workloads.Ghz.circuit 12);
    ( "random10",
      Workloads.Random_reversible.circuit ~seed:11 ~n:10 ~gates:120 () );
    ("chain8", Workloads.Stream_chain.circuit ~seed:3 ~n:8 ~gates:400 ());
    ("empty", Circuit.create ~n_qubits:3 []);
    ("singles", Circuit.create ~n_qubits:2 [ Single (H, 0); Single (T, 0) ]);
  ]

let test_window_order_matches_dag () =
  List.iter
    (fun (name, c) ->
      let expected = eager_fifo_order c in
      let unbounded, _ = window_fifo_order c in
      check (Alcotest.list Alcotest.int)
        (name ^ " unbounded release order") expected unbounded;
      let bounded, peak = window_fifo_order ~retire:(last_use_of c) c in
      check (Alcotest.list Alcotest.int)
        (name ^ " retire-bounded release order") expected bounded;
      check Alcotest.bool
        (name ^ " bounded window never exceeds circuit")
        true
        (peak <= max 1 (Circuit.length c)))
    (order_circuits ())

let test_window_peak_bounded () =
  (* the same prefix-stable chain at 10x the length: the window must
     plateau, not grow with gate count *)
  let peak gates =
    let c = Workloads.Stream_chain.circuit ~seed:5 ~n:12 ~gates () in
    snd (window_fifo_order ~retire:(last_use_of c) c)
  in
  let p_small = peak 2_000 in
  let p_large = peak 20_000 in
  (* the peak saturates toward a deterministic O(n) cap (~2 brickwork
     layers of pair slots plus their ride-along singles); 10x the gates
     may still close in on the cap but can never pass it *)
  check Alcotest.bool
    (Printf.sprintf "peak window stays within the O(n) cap (%d vs %d)" p_small
       p_large)
    true
    (p_large <= 4 * 12 && p_large <= p_small + 12)

let test_window_rejects_zero_operand () =
  (* the empty barrier is only reached once the CNOT executes and the
     window re-saturates — drive the full consumption loop *)
  let gates = ref [ Gate.Cnot (0, 1); Gate.Barrier [] ] in
  let source () =
    match !gates with
    | [] -> None
    | g :: tl ->
      gates := tl;
      Some g
  in
  let w = Dag.Window.create ~n_qubits:2 source in
  Alcotest.check_raises "empty barrier rejected"
    (Invalid_argument "Dag.Window: zero-operand gates are not streamable")
    (fun () ->
      let q = Queue.create () in
      let on_ready s = Queue.add s q in
      Dag.Window.saturate w on_ready;
      while not (Queue.is_empty q) do
        Dag.Window.execute w (Queue.pop q) on_ready
      done)

let test_window_rejects_out_of_range () =
  let gates = ref [ Gate.Cnot (0, 5) ] in
  let source () =
    match !gates with
    | [] -> None
    | g :: tl ->
      gates := tl;
      Some g
  in
  let w = Dag.Window.create ~n_qubits:2 source in
  match Dag.Window.saturate w (fun _ -> ()) with
  | () -> Alcotest.fail "qubit 5 on a 2-qubit window was admitted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* run_streaming = run_flat, named rows + golden digests               *)
(* ------------------------------------------------------------------ *)

let stream_route ?retire ~config ~scoring coupling circuit initial =
  let out = ref [] in
  let r =
    Routing_pass.run_streaming ?retire ~scoring
      ~sink:(fun g -> out := g :: !out)
      config coupling (source_of_circuit circuit) initial
  in
  (List.rev !out, r)

let fingerprint coupling gates (final : Mapping.t) n_swaps =
  let c = Circuit.create ~n_qubits:(Coupling.n_qubits coupling) gates in
  let payload =
    String.concat "\n"
      [
        Qasm.to_string c;
        String.concat ","
          (Array.to_list (Array.map string_of_int (Mapping.l2p_array final)));
        string_of_int n_swaps;
      ]
  in
  Digest.to_hex (Digest.string payload)

let equivalence_rows () =
  let tokyo = Devices.ibm_q20_tokyo () in
  let yorktown = Devices.ibm_q5_yorktown () in
  let grid = Devices.grid ~rows:3 ~cols:4 in
  let basic = { Config.default with heuristic = Config.Basic } in
  let lookahead = { Config.default with heuristic = Config.Lookahead } in
  [
    ("qft5/yorktown/decay", yorktown, Workloads.Qft.circuit 5, Config.default);
    ("qft8/tokyo/decay", tokyo, Workloads.Qft.circuit 8, Config.default);
    ("qft8/tokyo/basic", tokyo, Workloads.Qft.circuit 8, basic);
    ("qft8/tokyo/lookahead", tokyo, Workloads.Qft.circuit 8, lookahead);
    ("ising10/tokyo/decay", tokyo, Workloads.Ising.circuit 10, Config.default);
    ("ghz12/grid3x4/decay", grid, Workloads.Ghz.circuit 12, Config.default);
    ( "random10/tokyo/decay",
      tokyo,
      Workloads.Random_reversible.circuit ~seed:42 ~hot_bias:0.0 ~n:10
        ~gates:80 (),
      Config.default );
    ( "chain12/tokyo/decay",
      tokyo,
      Workloads.Stream_chain.circuit ~seed:1 ~n:12 ~gates:600 (),
      Config.default );
  ]

let test_streaming_equals_materialised () =
  List.iter
    (fun (name, coupling, circuit, config) ->
      let n_logical = Circuit.n_qubits circuit in
      let n_physical = Coupling.n_qubits coupling in
      let initial = Mapping.identity ~n_logical ~n_physical in
      List.iter
        (fun scoring ->
          let m =
            Routing_pass.run_flat ~scoring config coupling
              (Dag.of_circuit circuit) initial
          in
          let expected = Circuit.gates m.Routing_pass.physical in
          List.iter
            (fun (label, retire) ->
              let gates, r =
                stream_route ?retire ~config ~scoring coupling circuit initial
              in
              let tag = Printf.sprintf "%s (%s)" name label in
              check Alcotest.bool (tag ^ " same gate sequence") true
                (gates = expected);
              check Alcotest.bool (tag ^ " same final mapping") true
                (Mapping.equal r.Routing_pass.s_final_mapping
                   m.Routing_pass.final_mapping);
              check Alcotest.int (tag ^ " same swap count")
                m.Routing_pass.n_swaps r.Routing_pass.s_n_swaps;
              check Alcotest.int (tag ^ " same search steps")
                m.Routing_pass.search_steps r.Routing_pass.s_search_steps;
              check Alcotest.int (tag ^ " gates_in = circuit length")
                (Circuit.length circuit) r.Routing_pass.s_gates_in;
              check Alcotest.int (tag ^ " gates_out = emitted")
                (List.length gates) r.Routing_pass.s_gates_out)
            [ ("retire", Some (last_use_of circuit)); ("unbounded", None) ])
        [ Routing_pass.Delta; Routing_pass.Full ])
    (equivalence_rows ())

(* Digests of the streamed output (routed QASM + final mapping + swap
   count), produced by this PR's streaming path and pinned so that
   future refactors of either side of the equivalence cannot drift
   silently. Delta scoring, retire-bounded, identity placement. *)
let stream_goldens =
  [
    ("qft8/tokyo/decay", "6ea0bdce5f3793d38e605ee11208f46a");
    ("ising10/tokyo/decay", "c4acb307611f35bee1affe43404ef7fa");
    ("chain12/tokyo/decay", "f25bd980d973740a64f559899daac372");
  ]

let test_stream_goldens () =
  List.iter
    (fun (row_name, expected) ->
      let name, coupling, circuit, config =
        List.find (fun (n, _, _, _) -> n = row_name) (equivalence_rows ())
      in
      let initial =
        Mapping.identity ~n_logical:(Circuit.n_qubits circuit)
          ~n_physical:(Coupling.n_qubits coupling)
      in
      let gates, r =
        stream_route ~retire:(last_use_of circuit) ~config
          ~scoring:Routing_pass.Delta coupling circuit initial
      in
      check Alcotest.string (name ^ " streamed digest unchanged") expected
        (fingerprint coupling gates r.Routing_pass.s_final_mapping
           r.Routing_pass.s_n_swaps))
    stream_goldens

let test_streaming_peak_window_independent () =
  let tokyo = Devices.ibm_q20_tokyo () in
  let route gates =
    let c = Workloads.Stream_chain.circuit ~seed:5 ~n:12 ~gates () in
    let initial =
      Mapping.identity ~n_logical:12 ~n_physical:(Coupling.n_qubits tokyo)
    in
    let _, r =
      stream_route ~retire:(last_use_of c) ~config:Config.default
        ~scoring:Routing_pass.Delta tokyo c initial
    in
    r.Routing_pass.s_peak_window
  in
  let p_small = route 2_000 in
  let p_large = route 20_000 in
  check Alcotest.bool
    (Printf.sprintf "routed peak window plateaus (%d vs %d)" p_small p_large)
    true
    (p_large <= p_small + 16)

let test_streaming_rejects_wide_circuit () =
  let yorktown = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 8 in
  let initial = Mapping.identity ~n_logical:8 ~n_physical:8 in
  match
    stream_route ~config:Config.default ~scoring:Routing_pass.Delta yorktown c
      initial
  with
  | _ -> Alcotest.fail "8 logical qubits on a 5-qubit device was accepted"
  | exception Invalid_argument _ -> ()

(* qcheck: the differential property on random instances *)
let prop_stream_equivalence =
  QCheck.Test.make ~count:80
    ~name:"streaming = materialised on random instances"
    (Check.Generators.instance_arb ())
    (fun inst ->
      match
        Check.Differential.stream_equivalence ~config:inst.Check.Generators.config
          inst.Check.Generators.coupling inst.Check.Generators.circuit
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

(* ------------------------------------------------------------------ *)
(* Incremental frontend                                                *)
(* ------------------------------------------------------------------ *)

let program =
  {|OPENQASM 2.0;
include "qelib1.inc";
qreg qa[2];
qreg qb[2];
creg ca[2];
gate gd1(p) a { rz(p*2) a; h a; }
h qa; // broadcast
cx qa[1],qb[0];
gd1(0.25) qb[1];
barrier qa;
measure qa -> ca;
|}

let test_event_stream () =
  let s = Qasm_stream.of_string program in
  let events = ref [] in
  let rec drain () =
    match Qasm_stream.next_event s with
    | None -> ()
    | Some e ->
      events := e :: !events;
      drain ()
  in
  drain ();
  match List.rev !events with
  | [
   Qasm_stream.Qreg { name = "qa"; size = 2 };
   Qreg { name = "qb"; size = 2 };
   Creg { name = "ca"; size = 2 };
   Gate (Single (H, 0));
   Gate (Single (H, 1));
   Gate (Cnot (1, 2));
   Gate (Single (Rz p, 3));
   Gate (Single (H, 3));
   Gate (Barrier [ 0; 1 ]);
   Gate (Measure (0, 0));
   Gate (Measure (1, 1));
  ] ->
    check (Alcotest.float 0.0) "gd1 param expression" 0.5 p;
    check Alcotest.int "qubits" 4 (Qasm_stream.n_qubits s);
    check Alcotest.int "clbits" 2 (Qasm_stream.n_clbits s)
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_survey () =
  let sv = Qasm_stream.survey (Qasm_stream.of_string program) in
  check Alcotest.int "qubits" 4 sv.Qasm_stream.sv_n_qubits;
  check Alcotest.int "clbits" 2 sv.Qasm_stream.sv_n_clbits;
  check Alcotest.int "gates" 8 sv.Qasm_stream.sv_n_gates;
  (* qa[0] last used by measure (pos 6), qa[1] by measure (pos 7),
     qb[0] by cx (pos 2), qb[1] by gd1's h expansion (pos 4) *)
  check (Alcotest.array Alcotest.int) "last uses" [| 6; 7; 2; 4 |]
    sv.Qasm_stream.sv_last_use

(* Parsing through a 1-byte refill function must agree with parsing the
   whole string: every token boundary crosses a buffer refill. *)
let byte_by_byte_events src =
  let pos = ref 0 in
  let refill buf =
    if !pos >= String.length src then 0
    else begin
      Bytes.set buf 0 src.[!pos];
      incr pos;
      1
    end
  in
  let s = Qasm_stream.of_refill refill in
  let gates = ref [] in
  let rec drain () =
    match Qasm_stream.next_event s with
    | None -> ()
    | Some (Qasm_stream.Gate g) ->
      gates := g :: !gates;
      drain ()
    | Some _ -> drain ()
  in
  drain ();
  (List.rev !gates, Qasm_stream.n_qubits s, Qasm_stream.n_clbits s)

let test_chunked_parse_equals_string_parse () =
  let c = Qasm.of_string program in
  let gates, nq, _ = byte_by_byte_events program in
  check Alcotest.bool "same gates through 1-byte refills" true
    (gates = Circuit.gates c);
  check Alcotest.int "same qubit count" (Circuit.n_qubits c) nq

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse-print-parse is the identity"
    Check.Generators.qasm_program_arb (fun src ->
      let c1 = Qasm.of_string src in
      let c2 = Qasm.of_string (Qasm.to_string c1) in
      if not (Circuit.equal c1 c2) then
        QCheck.Test.fail_reportf "round-trip changed the circuit:@.%s"
          (Qasm.to_string c1)
      else true)

let prop_chunked_parse =
  QCheck.Test.make ~count:100
    ~name:"1-byte-chunk parse = whole-string parse"
    Check.Generators.qasm_program_arb (fun src ->
      let c = Qasm.of_string src in
      let gates, nq, _ = byte_by_byte_events src in
      gates = Circuit.gates c && nq = Circuit.n_qubits c)

(* ------------------------------------------------------------------ *)
(* Stream_pass: file in, file out                                      *)
(* ------------------------------------------------------------------ *)

let temp name = Filename.temp_file ("sabre_stream_" ^ name) ".qasm"

let test_route_file_matches_materialised () =
  let tokyo = Devices.ibm_q20_tokyo () in
  let circuit = Workloads.Qft.circuit 8 in
  let input = temp "in" and output = temp "out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove input;
      Sys.remove output)
    (fun () ->
      Qasm.to_file input circuit;
      match Engine.Stream_pass.route_file tokyo ~input ~output with
      | Error msg -> Alcotest.failf "route_file failed: %s" msg
      | Ok rep ->
        let routed = Qasm.of_file output in
        let initial =
          Mapping.identity ~n_logical:8
            ~n_physical:(Coupling.n_qubits tokyo)
        in
        let parsed_back = Qasm.of_file input in
        let m =
          Routing_pass.run_flat Config.default tokyo
            (Dag.of_circuit parsed_back) initial
        in
        check Alcotest.bool "routed file = materialised route" true
          (Circuit.gates routed = Circuit.gates m.Routing_pass.physical);
        check Alcotest.int "report swap count" m.Routing_pass.n_swaps
          rep.Engine.Stream_pass.result.Routing_pass.s_n_swaps;
        check Alcotest.int "report qubit count" 8
          rep.Engine.Stream_pass.n_qubits)

let test_route_files_isolates_failures () =
  let tokyo = Devices.ibm_q20_tokyo () in
  let good_in = temp "good" and bad_in = temp "bad" in
  let good_out = temp "good_out" and bad_out = temp "bad_out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove [ good_in; bad_in; good_out; bad_out ])
    (fun () ->
      Qasm.to_file good_in (Workloads.Ghz.circuit 5);
      let oc = open_out bad_in in
      output_string oc "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n";
      close_out oc;
      let results =
        Engine.Stream_pass.route_files ~domains:2 tokyo
          [| (good_in, good_out); (bad_in, bad_out) |]
      in
      (match results.(0) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "good file failed: %s" msg);
      match results.(1) with
      | Ok _ -> Alcotest.fail "truncated cx was accepted"
      | Error msg ->
        check Alcotest.bool "error carries file:line:col" true
          (String.length msg >= String.length bad_in
          && String.sub msg 0 (String.length bad_in) = bad_in))

(* ------------------------------------------------------------------ *)
(* Stream_chain workload                                               *)
(* ------------------------------------------------------------------ *)

let test_stream_chain_contract () =
  let n = 9 and gates = 500 in
  let drain f =
    let rec go acc = match f () with None -> List.rev acc | Some g -> go (g :: acc) in
    go []
  in
  let a = drain (Workloads.Stream_chain.events ~seed:4 ~n ~gates ()) in
  let b = drain (Workloads.Stream_chain.events ~seed:4 ~n ~gates ()) in
  check Alcotest.bool "deterministic" true (a = b);
  check Alcotest.int "gate count" gates (List.length a);
  let c = Workloads.Stream_chain.circuit ~seed:4 ~n ~gates () in
  check Alcotest.bool "circuit twin agrees" true (Circuit.gates c = a);
  let prefix = drain (Workloads.Stream_chain.events ~seed:4 ~n ~gates:100 ()) in
  check Alcotest.bool "prefix-stable" true
    (prefix = List.filteri (fun i _ -> i < 100) a);
  check (Alcotest.array Alcotest.int) "last_use agrees with circuit scan"
    (last_use_of c)
    (Workloads.Stream_chain.last_use ~seed:4 ~n ~gates ());
  let path = temp "chain" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Stream_chain.to_qasm_file ~seed:4 ~n ~gates path;
      let parsed = Qasm.of_file path in
      check Alcotest.bool "qasm file round-trips the stream" true
        (Circuit.gates parsed = a))

let suite =
  [
    tc "window FIFO order = eager DAG FIFO order" `Quick
      test_window_order_matches_dag;
    tc "window peak is gate-count independent" `Quick test_window_peak_bounded;
    tc "window rejects zero-operand gates" `Quick
      test_window_rejects_zero_operand;
    tc "window rejects out-of-range qubits" `Quick
      test_window_rejects_out_of_range;
    tc "run_streaming = run_flat on named rows" `Quick
      test_streaming_equals_materialised;
    tc "streamed golden digests" `Quick test_stream_goldens;
    tc "routed peak window plateaus" `Quick
      test_streaming_peak_window_independent;
    tc "streaming rejects circuits wider than the device" `Quick
      test_streaming_rejects_wide_circuit;
    QCheck_alcotest.to_alcotest prop_stream_equivalence;
    tc "event stream of a mixed program" `Quick test_event_stream;
    tc "survey counts and retire schedule" `Quick test_survey;
    tc "1-byte-chunk parse = string parse" `Quick
      test_chunked_parse_equals_string_parse;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_chunked_parse;
    tc "route_file matches materialised routing" `Quick
      test_route_file_matches_materialised;
    tc "route_files isolates per-file failures" `Quick
      test_route_files_isolates_failures;
    tc "stream_chain generator contract" `Quick test_stream_chain_contract;
  ]
