module Gate = Quantum.Gate

let basic ~dist ~l2p pairs =
  List.fold_left
    (fun acc (q1, q2) -> acc +. dist.(l2p.(q1)).(l2p.(q2)))
    0.0 pairs

let average_distance ~dist ~l2p pairs =
  match pairs with
  | [] -> 0.0
  | _ ->
    (* Single traversal: the count rides along with the sum.  Same
       left-to-right addition order as [basic], so the result is
       bit-identical to the old sum-then-length form. *)
    let sum, count =
      List.fold_left
        (fun (acc, n) (q1, q2) -> (acc +. dist.(l2p.(q1)).(l2p.(q2)), n + 1))
        (0.0, 0) pairs
    in
    sum /. float_of_int count

let lookahead ~dist ~l2p ~front ~extended ~weight =
  average_distance ~dist ~l2p front
  +. (weight *. average_distance ~dist ~l2p extended)

let with_decay ~decay ~p1 ~p2 value = Float.max decay.(p1) decay.(p2) *. value

let score ~heuristic ~dist ~l2p ~front ~extended ~weight ~decay ~p1 ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> basic ~dist ~l2p front
  | Lookahead -> lookahead ~dist ~l2p ~front ~extended ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2 (lookahead ~dist ~l2p ~front ~extended ~weight)

(* ------------------------------------------------------------------ *)
(* Flat variants: row-major distance matrix, pair sets as parallel int
   arrays. Summation order matches the list versions exactly (index
   order = list order), so both produce bit-identical floats.           *)
(* ------------------------------------------------------------------ *)

let flatten_dist d =
  let n = Array.length d in
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    if Array.length row <> n then
      invalid_arg "Heuristic.flatten_dist: matrix not square";
    Array.blit row 0 flat (i * n) n
  done;
  flat

let basic_flat ~dist ~stride ~l2p ~q1 ~q2 ~len =
  let acc = ref 0.0 in
  for k = 0 to len - 1 do
    acc := !acc +. dist.((l2p.(q1.(k)) * stride) + l2p.(q2.(k)))
  done;
  !acc

let average_flat ~dist ~stride ~l2p ~q1 ~q2 ~len =
  if len = 0 then 0.0
  else basic_flat ~dist ~stride ~l2p ~q1 ~q2 ~len /. float_of_int len

let lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight
    =
  average_flat ~dist ~stride ~l2p ~q1:fq1 ~q2:fq2 ~len:flen
  +. (weight *. average_flat ~dist ~stride ~l2p ~q1:eq1 ~q2:eq2 ~len:elen)

let score_flat ~heuristic ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen
    ~weight ~decay ~p1 ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> basic_flat ~dist ~stride ~l2p ~q1:fq1 ~q2:fq2 ~len:flen
  | Lookahead ->
    lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2
      (lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen
         ~weight)

(* ------------------------------------------------------------------ *)
(* Integer delta primitives.

   BFS hop distances are small non-negative integers, and IEEE-754
   doubles represent every integer below 2^53 exactly, with addition of
   exactly-representable integers itself exact as long as every partial
   sum stays below 2^53.  [basic_flat] over an integer-valued matrix is
   therefore [float_of_int] of the integer sum, bit for bit — and an
   integer sum maintained by delta updates (base − old + new) is the
   same integer, independent of update order.  That is what lets the
   router score candidates in O(touched pairs) while reproducing the
   full-recompute float exactly.                                       *)
(* ------------------------------------------------------------------ *)

(* Keep individual entries far below 2^53 / max-pair-count so the sum
   bound can never be hit in practice: distances above this (or
   non-integral, or negative, as in noise-weighted metrics) disqualify
   the matrix from integer delta scoring. *)
let max_int_dist = 0x4000_0000 (* 2^30 *)

let dist_int_of_flat dist =
  let n = Array.length dist in
  let out = Array.make (max n 1) 0 in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       let v = dist.(i) in
       if Float.is_integer v && v >= 0.0 && v <= float_of_int max_int_dist
       then out.(i) <- int_of_float v
       else raise Exit
     done
   with Exit -> ok := false);
  if !ok then Some out else None

let sum_int ~dist ~stride ~l2p ~q1 ~q2 ~len =
  let acc = ref 0 in
  for k = 0 to len - 1 do
    acc := !acc + dist.((l2p.(q1.(k)) * stride) + l2p.(q2.(k)))
  done;
  !acc

(* Mirrors [average_flat]: same zero-length guard, same division. *)
let average_of_sum_int ~sum ~len =
  if len = 0 then 0.0 else float_of_int sum /. float_of_int len

(* Mirrors [lookahead_flat]'s expression shape exactly:
   [front_avg +. (weight *. ext_avg)]. *)
let lookahead_of_sums_int ~fsum ~flen ~esum ~elen ~weight =
  average_of_sum_int ~sum:fsum ~len:flen
  +. (weight *. average_of_sum_int ~sum:esum ~len:elen)

let score_of_sums_int ~heuristic ~fsum ~flen ~esum ~elen ~weight ~decay ~p1
    ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> float_of_int fsum
  | Lookahead -> lookahead_of_sums_int ~fsum ~flen ~esum ~elen ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2
      (lookahead_of_sums_int ~fsum ~flen ~esum ~elen ~weight)
