(** A zoo of device models.

    Includes the paper's evaluation target (IBM Q20 Tokyo, Fig. 2), two
    earlier IBM chips (treated symmetrically, per Section III-A's note
    that modern hardware has symmetric coupling), and parametric synthetic
    topologies used by tests and ablation benchmarks to exercise the
    "arbitrary coupling" flexibility objective. *)

val ibm_q20_tokyo : unit -> Coupling.t
(** The 20-qubit IBM Q20 Tokyo coupling graph of paper Fig. 2: a 4×5 grid
    with diagonal couplers inside alternating cells (43 undirected
    edges). *)

val ibm_q5_yorktown : unit -> Coupling.t
(** 5-qubit "bow-tie" (QX2): edges 0-1 0-2 1-2 2-3 2-4 3-4. *)

val ibm_qx5 : unit -> Coupling.t
(** 16-qubit ladder (QX5 / Rueschlikon), symmetrised. *)

val linear : int -> Coupling.t
(** [linear n]: 1D nearest-neighbour chain of [n] qubits. *)

val ring : int -> Coupling.t
(** [ring n]: cycle of [n >= 3] qubits. *)

val grid : rows:int -> cols:int -> Coupling.t
(** [grid ~rows ~cols]: 2D nearest-neighbour lattice. *)

val star : int -> Coupling.t
(** [star n]: qubit 0 connected to all others. *)

val complete : int -> Coupling.t
(** [complete n]: all-to-all coupling (no SWAPs ever needed; useful as a
    test oracle). *)

val heavy_hex : int -> Coupling.t
(** [heavy_hex d]: an IBM heavy-hex-style sparse lattice of code distance
    [d] (odd, >= 3), the topology of IBM's post-Tokyo devices. *)

val by_name : string -> int option -> Coupling.t
(** Look up a device by CLI name ("tokyo", "yorktown", "qx5", "linear",
    "ring", "grid", "star", "complete", "heavy_hex"); the [int option]
    supplies the size parameter where one is needed (grid is squarish).
    Raises [Invalid_argument] on unknown names or missing sizes. *)

val all_named : (string * Coupling.t) list
(** Fixed-size showcase instances of every topology, for surveys/tests. *)
