lib/workloads/ising.ml: List Quantum
