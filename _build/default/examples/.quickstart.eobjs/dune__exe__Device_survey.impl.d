examples/device_survey.ml: Format Hardware List Printf Quantum Sabre Sim Workloads
