test/suite_initial_mapping.ml: Alcotest Array Hardware Helpers List Printf Quantum Random Sabre Workloads
