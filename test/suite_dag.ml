module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag

let check = Alcotest.check
let tc = Alcotest.test_case
let ints = Alcotest.list Alcotest.int

(* The paper's Fig. 4 example shape: g1(q2,q3) g2(q6,q4) g3(q2,q4)
   g4(q1,q4) ... reduced to its two-qubit skeleton. *)
let fig4 () =
  Circuit.create ~n_qubits:7
    [
      Gate.Cnot (2, 3);  (* 0: g1 *)
      Gate.Cnot (6, 4);  (* 1: g2 *)
      Gate.Cnot (2, 4);  (* 2: g3, depends on g1 (q2) and g2 (q4) *)
      Gate.Cnot (1, 4);  (* 3: g4, depends on g3 (q4) *)
      Gate.Cnot (4, 5);  (* 4: g5, depends on g4 (q4) *)
    ]

let test_initial_front () =
  let d = Dag.of_circuit (fig4 ()) in
  check ints "front = g1 g2" [ 0; 1 ] (Dag.initial_front d)

let test_dependencies () =
  let d = Dag.of_circuit (fig4 ()) in
  check ints "g3 preds" [ 0; 1 ] (Dag.predecessors d 2);
  check ints "g3 succs" [ 3 ] (Dag.successors d 2);
  check ints "g4 preds" [ 2 ] (Dag.predecessors d 3);
  check ints "g5 preds" [ 3 ] (Dag.predecessors d 4);
  check Alcotest.int "g1 indegree" 0 (Dag.in_degree d 0);
  check Alcotest.int "g3 indegree" 2 (Dag.in_degree d 2)

let test_single_qubit_gates_chain () =
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Single (T, 0); Gate.Cnot (0, 1) ]
  in
  let d = Dag.of_circuit c in
  check ints "H first" [ 0 ] (Dag.initial_front d);
  check ints "T after H" [ 1 ] (Dag.successors d 0);
  check ints "CX after T" [ 2 ] (Dag.successors d 1)

let test_duplicate_edge_collapsed () =
  (* two gates sharing BOTH qubits create one dependency, not two *)
  let c = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1); Gate.Cnot (1, 0) ] in
  let d = Dag.of_circuit c in
  check ints "single pred" [ 0 ] (Dag.predecessors d 1);
  check Alcotest.int "indegree 1" 1 (Dag.in_degree d 1)

let test_topological_order () =
  let d = Dag.of_circuit (fig4 ()) in
  let order = Dag.topological_order d in
  check Alcotest.int "all nodes" 5 (List.length order);
  let pos = Array.make 5 0 in
  List.iteri (fun i node -> pos.(node) <- i) order;
  List.iter
    (fun node ->
      List.iter
        (fun succ ->
          check Alcotest.bool "edge respected" true (pos.(node) < pos.(succ)))
        (Dag.successors d node))
    [ 0; 1; 2; 3; 4 ]

let test_two_qubit_nodes () =
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Measure (0, 0) ]
  in
  let d = Dag.of_circuit c in
  check ints "only cnot" [ 1 ] (Dag.two_qubit_nodes d)

let test_descendant_count () =
  let d = Dag.of_circuit (fig4 ()) in
  check Alcotest.int "g1 reaches g3 g4 g5" 3 (Dag.descendant_count d 0);
  check Alcotest.int "g5 reaches none" 0 (Dag.descendant_count d 4)

let test_descendant_count_deep_chain () =
  (* 50k-gate dependency chain: the pre-flat-core recursive DFS blew the
     stack here; the worklist rewrite must count all descendants. *)
  let n = 50_000 in
  let gates = List.init n (fun i -> Gate.Cnot (i mod 2, (i + 1) mod 2)) in
  let d = Dag.of_circuit (Circuit.create ~n_qubits:2 gates) in
  check Alcotest.int "head reaches the whole chain" (n - 1)
    (Dag.descendant_count d 0);
  check Alcotest.int "midpoint reaches the tail" (n - 1 - (n / 2))
    (Dag.descendant_count d (n / 2));
  check Alcotest.int "tail reaches none" 0 (Dag.descendant_count d (n - 1))

let test_empty_circuit () =
  let d = Dag.of_circuit (Circuit.empty 3) in
  check Alcotest.int "no nodes" 0 (Dag.n_nodes d);
  check ints "no front" [] (Dag.initial_front d)

let test_barrier_orders () =
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Barrier [ 0; 1 ]; Gate.Single (T, 1) ]
  in
  let d = Dag.of_circuit c in
  (* T(q1) must wait for the barrier, which waits for H(q0) *)
  check ints "barrier preds" [ 0 ] (Dag.predecessors d 1);
  check ints "t preds" [ 1 ] (Dag.predecessors d 2)

let suite =
  [
    tc "initial front (Fig. 4)" `Quick test_initial_front;
    tc "dependencies (Fig. 4)" `Quick test_dependencies;
    tc "single-qubit chain" `Quick test_single_qubit_gates_chain;
    tc "duplicate edges collapsed" `Quick test_duplicate_edge_collapsed;
    tc "topological order" `Quick test_topological_order;
    tc "two_qubit_nodes" `Quick test_two_qubit_nodes;
    tc "descendant_count" `Quick test_descendant_count;
    tc "descendant_count on a 50k-gate chain" `Quick
      test_descendant_count_deep_chain;
    tc "empty circuit" `Quick test_empty_circuit;
    tc "barrier orders" `Quick test_barrier_orders;
  ]
