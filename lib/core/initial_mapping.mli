module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** Initial-mapping strategies.

    SABRE's own answer to the initial-mapping problem is the reverse
    traversal (Section IV-C2), which needs no strategy beyond a random
    start. This module collects the alternatives the paper compares
    against, as seeds for {!Compiler.route_with_initial} and for the
    ablation benchmarks:

    - {!trivial} — logical qubit q on physical qubit q;
    - {!random} — uniform injective placement (the paper's trial seed);
    - {!degree_matching} — Siraichi et al.'s heuristic (Section VII):
      rank logical qubits by how many distinct partners they interact
      with, physical qubits by coupling degree, and match ranks;
    - {!interaction_greedy} — the beginning-of-circuit greedy placement
      our BKA re-implementation uses (Zulehner et al. determine their
      initial mapping "by those two-qubit gates at the beginning of the
      circuit"). *)

val trivial : Coupling.t -> Circuit.t -> Mapping.t
(** Identity placement. *)

val random : state:Random.State.t -> Coupling.t -> Circuit.t -> Mapping.t
(** Uniform random injective placement. *)

val degree_matching : Coupling.t -> Circuit.t -> Mapping.t
(** Match interaction-degree rank to coupling-degree rank (no temporal
    information, as the paper notes when critiquing it). Deterministic:
    ties break by index. *)

val interaction_greedy : Coupling.t -> Circuit.t -> Mapping.t
(** Greedy beginning-of-circuit placement: walk the two-qubit gates in
    program order, placing unplaced operands adjacently when possible
    and nearest-free otherwise. *)

val iso_anchored : Coupling.t -> Circuit.t -> Mapping.t
(** Greedy subgraph-isomorphism-anchored placement (Li/Zhou/Feng,
    arXiv:2004.07138): anchor the most-interacting logical qubit on the
    highest-degree physical qubit, then expand by connection strength to
    the placed set, placing each qubit on the free physical location
    minimising the interaction-weighted distance to its placed partners.
    Deterministic: all ties break by index. *)

(** First-class initial-mapping seeders.

    A seeder produces the placement a router starts from. [derive]
    returning [None] means "router-native seeding" — the router keeps
    its own policy (SABRE's random trials + reverse traversal); [Some m]
    pins the compilation to mapping [m] (one trial, no refinement).
    Registration is open: downstream libraries may add seeders the same
    way routers join {!Engine.Router}. *)
module Seeder : sig
  type t = {
    name : string;
    description : string;
    derive : seed:int -> Coupling.t -> Circuit.t -> Mapping.t option;
  }

  val register : t -> unit
  (** Add (or replace) a seeder under its [name]. *)

  val find : string -> t option

  val find_suggest : string -> (t, string) result
  (** Like {!find}, but a miss yields an error message listing the
      registered names. *)

  val names : unit -> string list
  (** Registered names, sorted. *)

  val reverse_traversal : t
  (** Router-native seeding ([derive] = [None]). *)

  val random : t
  (** One uniform injective placement drawn from the config seed. *)

  val iso : t
  (** {!iso_anchored}. *)
end
