module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Initial_mapping = Sabre_core.Initial_mapping

type strategy =
  | Random_trials
  | Trivial
  | Degree
  | Interaction
  | Seeded of Initial_mapping.Seeder.t

let name = "initial_mapping"

let random_trials (ctx : Context.t) =
  (* one shared stream, drawn in trial order before any trial runs:
     trial i's seed mapping depends only on (config.seed, i), never on
     how trials are later scheduled — the invariant that makes
     Domain-parallel trial execution deterministic *)
  let rng = Random.State.make [| ctx.Context.config.Config.seed |] in
  let n_logical = Circuit.n_qubits ctx.circuit in
  let n_physical = Coupling.n_qubits ctx.coupling in
  let draw () = Mapping.random ~state:rng ~n_logical ~n_physical in
  let ms = Array.make ctx.config.Config.trials (draw ()) in
  for i = 1 to Array.length ms - 1 do
    ms.(i) <- draw ()
  done;
  ms

let pass ?(strategy = Random_trials) () =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      if ctx.cache_status = Context.Cache_hit then
        Pass.count instrument ~pass:name ctx "cached" 1
      else
      let mappings =
        match ctx.fixed_initial with
        | Some m -> [| m |]
        | None -> (
          match strategy with
          | Random_trials -> random_trials ctx
          | Trivial -> [| Initial_mapping.trivial ctx.coupling ctx.circuit |]
          | Degree ->
            [| Initial_mapping.degree_matching ctx.coupling ctx.circuit |]
          | Interaction ->
            [| Initial_mapping.interaction_greedy ctx.coupling ctx.circuit |]
          | Seeded s -> (
            match
              s.Initial_mapping.Seeder.derive
                ~seed:ctx.config.Config.seed ctx.coupling ctx.circuit
            with
            | Some m -> [| m |]
            | None ->
              (* router-native seeding: the paper's random-trials flow *)
              random_trials ctx))
      in
      let ctx = { ctx with trial_mappings = Some mappings } in
      Pass.count instrument ~pass:name ctx "trials" (Array.length mappings))
