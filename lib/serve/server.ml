module Qasm = Quantum.Qasm
module Devices = Hardware.Devices
module Instrument = Engine.Instrument
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping

let wall = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Jobs and result slots                                               *)
(* ------------------------------------------------------------------ *)

(* One-shot rendezvous between the connection thread that admitted a
   request and the worker domain that answers it. *)
type slot = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable resp : Protocol.response option;
}

let new_slot () =
  { sm = Mutex.create (); sc = Condition.create (); resp = None }

let deliver slot resp =
  Mutex.lock slot.sm;
  slot.resp <- Some resp;
  Condition.broadcast slot.sc;
  Mutex.unlock slot.sm

let await slot =
  Mutex.lock slot.sm;
  let rec go () =
    match slot.resp with
    | Some r ->
      Mutex.unlock slot.sm;
      r
    | None ->
      Condition.wait slot.sc slot.sm;
      go ()
  in
  go ()

type work =
  | W_compile of Protocol.compile
  | W_portfolio of Protocol.portfolio

let work_id = function
  | W_compile c -> c.Protocol.id
  | W_portfolio p -> p.Protocol.id

type job = {
  work : work;
  deadline : float;  (** absolute; [infinity] = none *)
  admitted_at : float;
  slot : slot;
  conn_fd : Unix.file_descr;
      (** the requesting connection, for the disconnect probe; its
          thread is parked in [await] until we deliver, so the fd stays
          open for the whole run *)
}

(* Cooperative cancellation probe for an in-flight job: the routing
   hook polls this every few dozen decisions. Deadline expiry is a
   clock read; client disconnect is a zero-timeout select + MSG_PEEK
   (the connection thread never reads while parked in [await], so a
   readable-but-empty socket can only mean EOF; pipelined requests
   peek as data and keep the job alive). Any socket error counts as a
   disconnect — nobody is left to read the answer. *)
let should_stop_probe job =
  let disconnected () =
    match Unix.select [ job.conn_fd ] [] [] 0.0 with
    | [], _, _ -> false
    | _ :: _, _, _ -> (
      match Unix.recv job.conn_fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] with
      | 0 -> true
      | _ -> false
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        false
      | exception Unix.Unix_error _ -> true)
    | exception Unix.Unix_error _ -> true
  in
  fun () -> wall () > job.deadline || disconnected ()

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type state = Running | Stopping | Stopped

type router_cell = {
  mutable rc_requests : int;
  mutable rc_succeeded : int;
  mutable rc_failed : int;
}

type t = {
  bound : Protocol.endpoint;
  listen_fd : Unix.file_descr;
  unlink_on_stop : string option;
  queue : job Rqueue.t;
  n_domains : int;
  cache : bool;
      (** compile-cache participation: requests probe at admission and
          route through {!Engine.Compile_cache} (unless they carry
          [cache=false]); off by default so tests and embedders opt in *)
  default_deadline_s : float option;
  max_request_bytes : int;
  instrument : Instrument.t;
  started_at : float;
  (* counters (all monotonic; queue depth is read off the queue) *)
  served : int Atomic.t;
  errored : int Atomic.t;
  rejected : int Atomic.t;
  timed_out : int Atomic.t;
  malformed : int Atomic.t;
  worker_jobs : int Atomic.t array;
  worker_busy : float Atomic.t array;  (** written only by its worker *)
  (* per-router accounting: a request counts when routing starts (after
     the router name resolved), so garbage names never open a bucket;
     portfolio requests count once per entry *)
  rm : Mutex.t;
  routers : (string, router_cell) Hashtbl.t;
  (* lifecycle *)
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lm : Mutex.t;
  lc : Condition.t;
  mutable state : state;
  mutable workers : unit Domain.t array;
  mutable acceptor : Thread.t option;
  (* live connections: fd set for shutdown-on-drain, every thread ever
     spawned for the final join *)
  cm : Mutex.t;
  conn_fds : (Unix.file_descr, unit) Hashtbl.t;
  mutable conn_threads : Thread.t list;
}

let endpoint t = t.bound

let bump t counter name =
  Atomic.incr counter;
  t.instrument.Instrument.emit
    (Instrument.Counter { pass = "serve"; name; value = 1 })

let bump_router t name outcome =
  Mutex.lock t.rm;
  let cell =
    match Hashtbl.find_opt t.routers name with
    | Some c -> c
    | None ->
      let c = { rc_requests = 0; rc_succeeded = 0; rc_failed = 0 } in
      Hashtbl.replace t.routers name c;
      c
  in
  cell.rc_requests <- cell.rc_requests + 1;
  (match outcome with
  | `Ok -> cell.rc_succeeded <- cell.rc_succeeded + 1
  | `Err -> cell.rc_failed <- cell.rc_failed + 1);
  Mutex.unlock t.rm;
  t.instrument.Instrument.emit
    (Instrument.Counter
       {
         pass = "serve";
         name = "router." ^ name ^ (match outcome with `Ok -> ".ok" | `Err -> ".err");
         value = 1;
       })

let stats t : Protocol.server_stats =
  let c = Hardware.Dist_cache.stats () in
  let cc = Engine.Compile_cache.stats () in
  {
    served = Atomic.get t.served;
    errored = Atomic.get t.errored;
    rejected = Atomic.get t.rejected;
    timed_out = Atomic.get t.timed_out;
    malformed = Atomic.get t.malformed;
    queue_depth = Rqueue.length t.queue;
    queue_capacity = Rqueue.capacity t.queue;
    domains = t.n_domains;
    uptime_s = wall () -. t.started_at;
    dist_cache_hits = c.Hardware.Dist_cache.hits;
    dist_cache_misses = c.Hardware.Dist_cache.misses;
    cache_hits = cc.Engine.Compile_cache.hits;
    cache_misses = cc.Engine.Compile_cache.misses;
    cache_entries = cc.Engine.Compile_cache.entries;
    cache_bytes = cc.Engine.Compile_cache.bytes;
    per_domain =
      Array.init t.n_domains (fun i ->
          {
            Protocol.domain = i;
            jobs_run = Atomic.get t.worker_jobs.(i);
            wall_busy_s = Atomic.get t.worker_busy.(i);
          });
    per_router =
      (Mutex.lock t.rm;
       let rows =
         Hashtbl.fold
           (fun name c acc ->
             {
               Protocol.router = name;
               requests = c.rc_requests;
               succeeded = c.rc_succeeded;
               failed = c.rc_failed;
             }
             :: acc)
           t.routers []
       in
       Mutex.unlock t.rm;
       Array.of_list
         (List.sort
            (fun a b -> compare a.Protocol.router b.Protocol.router)
            rows));
  }

(* ------------------------------------------------------------------ *)
(* The compile path: exactly Engine.Batch's per-job pipeline           *)
(* ------------------------------------------------------------------ *)

let config_of_overrides (o : Protocol.overrides) =
  let d = Config.default in
  {
    d with
    Config.trials = Option.value o.trials ~default:d.Config.trials;
    traversals = Option.value o.traversals ~default:d.Config.traversals;
    decay_increment = Option.value o.delta ~default:d.Config.decay_increment;
    extended_set_weight =
      Option.value o.weight ~default:d.Config.extended_set_weight;
    extended_set_size =
      Option.value o.extended_set ~default:d.Config.extended_set_size;
    seed = Option.value o.seed ~default:d.Config.seed;
    commutation_aware =
      Option.value o.commutation ~default:d.Config.commutation_aware;
  }

let error_id id kind fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error_resp { id; kind; message })
    fmt

let error (c : Protocol.compile) kind fmt = error_id c.Protocol.id kind fmt

let parse_source id source =
  match
    match source with
    | Protocol.Inline text -> Qasm.of_string text
    | Protocol.Path path -> Qasm.of_file path
  with
  | exception Qasm.Parse_error { line; column; message } ->
    Error (error_id id Protocol.Qasm_error "%d:%d: %s" line column message)
  | exception Sys_error msg -> Error (error_id id Protocol.Invalid "%s" msg)
  | circuit -> Ok circuit

(* Route one request. This is deliberately the same pipeline as
   [Engine.Batch.compile_one] / the [sabre_compile] single-circuit
   path — sequential trials, [Verify_pass] on — so the QASM we answer
   with is byte-identical to the CLI's output for the same inputs. *)
let cancelled_message = "cancelled mid-route: deadline expired or client gone"

let compile_request t ?should_stop (c : Protocol.compile) : Protocol.response =
  match
    let config = config_of_overrides c.overrides in
    (match Config.validate config with
    | Ok () -> Ok config
    | Error msg -> Error (error c Protocol.Invalid "config: %s" msg))
    |> Result.map (fun config ->
           match Engine.Router.find c.router with
           | None ->
             Error
               (error c Protocol.Invalid "unknown router %S (available: %s)"
                  c.router
                  (String.concat ", " (Engine.Router.names ())))
           | Some router -> Ok (config, router))
    |> Result.join
    |> Result.map (fun (config, router) ->
           match Devices.by_name c.device c.device_size with
           | device -> Ok (config, router, device)
           | exception Invalid_argument msg ->
             Error (error c Protocol.Invalid "device: %s" msg))
    |> Result.join
  with
  | Error resp -> resp
  | Ok (config, router, device) -> (
    match parse_source c.id c.source with
    | Error resp -> resp
    | Ok circuit ->
      let t0 = wall () in
      let race =
        Option.map (fun f -> Engine.Race.token ~should_stop:f ()) should_stop
      in
      let cache_spec =
        (* [Router.find] is an exact-name lookup, so [c.router] is the
           canonical name [Engine.Batch] keys with — hits are shared
           with the CLI and batch entry points *)
        if t.cache && c.cache then Some c.router else None
      in
      let resp =
        match
          Engine.Context.create ~config
            ~trial_mode:Engine.Trial_runner.Sequential ?race ?cache_spec
            ~instrument:t.instrument device circuit
          |> Engine.Pipeline.run ~instrument:t.instrument
               (Engine.Pipeline.default ~router ~verify:true ())
        with
        | exception Sabre_core.Routing_pass.Cancelled ->
          error c Protocol.Route_error "%s" cancelled_message
        | exception Engine.Router.Route_failed msg ->
          error c Protocol.Route_error "%s" msg
        | exception Engine.Verify_pass.Verify_failed msg ->
          error c Protocol.Route_error "verification: %s" msg
        | exception Invalid_argument msg -> error c Protocol.Invalid "%s" msg
        | ctx ->
          let r = Engine.Context.routed_exn ctx in
          let stats = Engine.Context.stats ctx ~time_s:(wall () -. t0) in
          Protocol.Ok_compiled
            {
              id = c.id;
              qasm = Qasm.to_string r.Engine.Context.physical;
              initial = Mapping.l2p_array r.Engine.Context.trial_initial;
              final = Mapping.l2p_array r.Engine.Context.final_mapping;
              n_swaps = stats.Sabre_core.Stats.n_swaps;
              original_gates = stats.Sabre_core.Stats.original_gates;
              total_gates = stats.Sabre_core.Stats.total_gates;
              routed_depth = stats.Sabre_core.Stats.routed_depth;
              time_s = stats.Sabre_core.Stats.time_s;
            }
      in
      bump_router t c.router
        (match resp with Protocol.Ok_compiled _ -> `Ok | _ -> `Err);
      resp)

(* A portfolio request: Engine.Portfolio over the entries, the winner
   answered in the Ok_compiled shape plus per-entry outcomes. *)
let portfolio_request t ?should_stop (p : Protocol.portfolio) :
    Protocol.response =
  let err kind fmt = error_id p.id kind fmt in
  match
    let config = config_of_overrides p.overrides in
    (match Config.validate config with
    | Ok () -> Ok config
    | Error msg -> Error (err Protocol.Invalid "config: %s" msg))
    |> Result.map (fun config ->
           match Engine.Portfolio.parse_spec p.spec with
           | Ok entries -> Ok (config, entries)
           | Error msg -> Error (err Protocol.Invalid "%s" msg))
    |> Result.join
    |> Result.map (fun (config, entries) ->
           match Engine.Portfolio.objective_of_string p.objective with
           | Ok objective -> Ok (config, entries, objective)
           | Error msg -> Error (err Protocol.Invalid "%s" msg))
    |> Result.join
    |> Result.map (fun (config, entries, objective) ->
           match Devices.by_name p.device p.device_size with
           | device -> Ok (config, entries, objective, device)
           | exception Invalid_argument msg ->
             Error (err Protocol.Invalid "device: %s" msg))
    |> Result.join
  with
  | Error resp -> resp
  | Ok (config, entries, objective, device) -> (
    match parse_source p.id p.source with
    | Error resp -> resp
    | Ok circuit -> (
      let names =
        Array.of_list (List.map Engine.Portfolio.entry_name entries)
      in
      let t0 = wall () in
      match
        Engine.Portfolio.run ~domains:1 ~objective ~config ~verify:true
          ~race:p.race ~cache:(t.cache && p.cache) ?cancel:should_stop
          ~instrument:t.instrument device circuit entries
      with
      | exception Engine.Router.Route_failed msg ->
        List.iter (fun n -> bump_router t n `Err) (Array.to_list names);
        err Protocol.Route_error "%s" msg
      | exception Invalid_argument msg -> err Protocol.Invalid "%s" msg
      | report ->
        Array.iteri
          (fun i o ->
            bump_router t names.(i)
              (match o with Ok _ -> `Ok | Error _ -> `Err))
          report.Engine.Portfolio.outcomes;
        let w = Engine.Portfolio.winner_member report in
        let stats = w.Engine.Portfolio.stats in
        let members =
          Array.mapi
            (fun i o ->
              let es = report.Engine.Portfolio.entry_stats.(i) in
              match o with
              | Ok (m : Engine.Portfolio.member) ->
                {
                  Protocol.entry = names.(i);
                  swaps = Some m.Engine.Portfolio.n_swaps;
                  depth = Some m.Engine.Portfolio.depth;
                  value =
                    Some (Engine.Portfolio.objective_value objective m);
                  wall_s = Some es.Engine.Portfolio.e_wall_s;
                  cancelled = es.Engine.Portfolio.e_cancelled;
                  error = None;
                }
              | Error msg ->
                {
                  Protocol.entry = names.(i);
                  swaps = None;
                  depth = None;
                  value = None;
                  wall_s = Some es.Engine.Portfolio.e_wall_s;
                  cancelled = es.Engine.Portfolio.e_cancelled;
                  error = Some msg;
                })
            report.Engine.Portfolio.outcomes
        in
        Protocol.Ok_portfolio
          {
            compiled =
              {
                id = p.id;
                qasm = Qasm.to_string w.Engine.Portfolio.physical;
                initial = Mapping.l2p_array w.Engine.Portfolio.initial;
                final = Mapping.l2p_array w.Engine.Portfolio.final;
                n_swaps = stats.Sabre_core.Stats.n_swaps;
                original_gates = stats.Sabre_core.Stats.original_gates;
                total_gates = stats.Sabre_core.Stats.total_gates;
                routed_depth = stats.Sabre_core.Stats.routed_depth;
                time_s = wall () -. t0;
              };
            winner = names.(report.Engine.Portfolio.winner);
            members;
          }))

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let worker_loop t i =
  let rec loop () =
    match Rqueue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some job ->
      let id = work_id job.work in
      let resp =
        let now = wall () in
        if now > job.deadline then
          error_id id Protocol.Timeout
            "deadline expired after %.3fs in queue (routing not started)"
            (now -. job.admitted_at)
        else begin
          let t0 = wall () in
          let should_stop = should_stop_probe job in
          let resp =
            try
              match job.work with
              | W_compile c -> compile_request t ~should_stop c
              | W_portfolio p -> portfolio_request t ~should_stop p
            with exn ->
              (* a worker never dies with its pool: any stray exception
                 becomes a typed error on this one request *)
              error_id id Protocol.Route_error "internal error: %s"
                (Printexc.to_string exn)
          in
          let t1 = wall () in
          Atomic.set t.worker_busy.(i) (Atomic.get t.worker_busy.(i) +. (t1 -. t0));
          if t1 > job.deadline then
            error_id id Protocol.Timeout
              "routing finished %.3fs past the deadline; result discarded"
              (t1 -. job.deadline)
          else resp
        end
      in
      (match resp with
      | Protocol.Ok_compiled _ | Protocol.Ok_portfolio _ ->
        bump t t.served "served"
      | Protocol.Error_resp { kind = Protocol.Timeout; _ } ->
        bump t t.timed_out "timed_out"
      | Protocol.Error_resp _ -> bump t t.errored "errored"
      | Protocol.Ok_stats _ | Protocol.Pong _ -> ());
      Atomic.incr t.worker_jobs.(i);
      deliver job.slot resp;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection threads                                                  *)
(* ------------------------------------------------------------------ *)

let admit t ~conn_fd work deadline_s =
  let id = work_id work in
  let now = wall () in
  let deadline =
    match (deadline_s, t.default_deadline_s) with
    | Some d, _ | None, Some d -> if d <= 0.0 then neg_infinity else now +. d
    | None, None -> infinity
  in
  let slot = new_slot () in
  match
    Rqueue.try_push t.queue { work; deadline; admitted_at = now; slot; conn_fd }
  with
  | `Ok -> await slot
  | `Full ->
    bump t t.rejected "rejected";
    error_id id Protocol.Queue_full "queue full (%d waiting, capacity %d)"
      (Rqueue.length t.queue) (Rqueue.capacity t.queue)
  | `Closed ->
    error_id id Protocol.Shutting_down
      "server is draining; request not admitted"

(* Admission-time cache fast path: a compile request whose complete
   result is already memoized is answered on the connection thread,
   bypassing the worker queue entirely — a hit costs one QASM parse and
   one digest, never a queue slot. Strictly best-effort: any parse or
   validation failure falls through to the normal admission path, which
   produces the proper typed error. A request whose deadline is already
   expired is NOT probed — it must time out exactly as before, whatever
   the cache holds. A draining server is NOT probed either: the request
   falls through to [admit], whose closed-queue push rejects it with
   [Shutting_down] like every other request path. *)
let admission_cache_hit t (c : Protocol.compile) : Protocol.response option =
  let pre_expired =
    match (c.Protocol.deadline_s, t.default_deadline_s) with
    | Some d, _ | None, Some d -> d <= 0.0
    | None, None -> false
  in
  if
    Rqueue.is_closed t.queue || (not t.cache) || (not c.Protocol.cache)
    || pre_expired
    || not (Engine.Compile_cache.enabled ())
  then None
  else
    let t0 = wall () in
    let probe =
      let config = config_of_overrides c.overrides in
      match Config.validate config with
      | Error _ -> None
      | Ok () -> (
        match Devices.by_name c.device c.device_size with
        | exception Invalid_argument _ -> None
        | coupling -> (
          match parse_source c.id c.source with
          | Error _ -> None
          | Ok circuit ->
            let key =
              Engine.Compile_cache.key ~circuit ~coupling ~config
                ~scoring:Sabre_core.Routing_pass.Delta ~spec:c.router
            in
            (* hit-only probe: a miss here is re-probed (and counted)
               by the worker pipeline *)
            Option.map
              (fun r -> (circuit, r))
              (Engine.Compile_cache.peek key)))
    in
    match probe with
    | None -> None
    | Some (circuit, r) ->
      (* same [Stats.summary] call as [Context.stats], so the response
         is field-identical to the worker path answering the same hit *)
      let stats =
        Sabre_core.Stats.summary ~original:circuit
          ~routed:r.Engine.Context.physical ~n_swaps:r.Engine.Context.n_swaps
          ~search_steps:r.Engine.Context.search_steps
          ~fallback_swaps:r.Engine.Context.fallback_swaps
          ~traversals_run:r.Engine.Context.traversals_run
          ~time_s:(wall () -. t0)
          ~first_traversal_swaps:r.Engine.Context.first_swaps
          ~scoring:r.Engine.Context.scoring
      in
      bump t t.served "served";
      t.instrument.Instrument.emit
        (Instrument.Counter
           { pass = "serve"; name = "cache_admission_hit"; value = 1 });
      bump_router t c.router `Ok;
      Some
        (Protocol.Ok_compiled
           {
             id = c.id;
             qasm = Qasm.to_string r.Engine.Context.physical;
             initial = Mapping.l2p_array r.Engine.Context.trial_initial;
             final = Mapping.l2p_array r.Engine.Context.final_mapping;
             n_swaps = stats.Sabre_core.Stats.n_swaps;
             original_gates = stats.Sabre_core.Stats.original_gates;
             total_gates = stats.Sabre_core.Stats.total_gates;
             routed_depth = stats.Sabre_core.Stats.routed_depth;
             time_s = stats.Sabre_core.Stats.time_s;
           })

let handle_request t ~conn_fd (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Ping { id } -> Protocol.Pong { id }
  | Protocol.Stats { id } -> Protocol.Ok_stats { id; stats = stats t }
  | Protocol.Compile c -> (
    match admission_cache_hit t c with
    | Some resp -> resp
    | None -> admit t ~conn_fd (W_compile c) c.deadline_s)
  | Protocol.Portfolio p -> admit t ~conn_fd (W_portfolio p) p.deadline_s

let handle_conn t fd =
  let reader = Netline.reader fd in
  let respond resp = Netline.write_line fd (Protocol.encode_response resp) in
  let rec loop () =
    match Netline.read_line ~max_bytes:t.max_request_bytes reader with
    | Netline.Eof -> ()
    | Netline.Overflow ->
      (* the frame boundary is lost for good: answer and hang up *)
      bump t t.malformed "malformed";
      ignore
        (respond
           (Protocol.Error_resp
              {
                id = "";
                kind = Protocol.Oversized;
                message =
                  Printf.sprintf "request exceeds %d bytes" t.max_request_bytes;
              }))
    | Netline.Line "" -> loop ()
    | Netline.Line line ->
      let ok =
        match Protocol.decode_request ~max_bytes:t.max_request_bytes line with
        | Error (kind, message) ->
          bump t t.malformed "malformed";
          respond (Protocol.Error_resp { id = ""; kind; message })
        | Ok req -> respond (handle_request t ~conn_fd:fd req)
      in
      if ok then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.cm;
      if Hashtbl.mem t.conn_fds fd then begin
        Hashtbl.remove t.conn_fds fd;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end;
      Mutex.unlock t.cm)
    (fun () -> loop ())

(* ------------------------------------------------------------------ *)
(* Acceptor                                                            *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  (try Unix.set_nonblock t.listen_fd with Unix.Unix_error _ -> ());
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | ready, _, _ ->
        if List.mem t.wake_r ready || Atomic.get t.stop_flag then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
            (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
            Mutex.lock t.cm;
            Hashtbl.replace t.conn_fds fd ();
            let th = Thread.create (fun () -> handle_conn t fd) () in
            t.conn_threads <- th :: t.conn_threads;
            Mutex.unlock t.cm
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
                  | Unix.EINTR ),
                  _,
                  _ ) ->
            ()
          | exception Unix.Unix_error _ ->
            (* listener gone: fall through to the stop-flag check *)
            Atomic.set t.stop_flag true);
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let request_stop t =
  Atomic.set t.stop_flag true;
  (* self-pipe wake-up: async-signal-safe, non-blocking, idempotent in
     effect (the byte is never consumed, so the pipe stays readable) *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
  with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.lm;
  match t.state with
  | Stopped -> Mutex.unlock t.lm
  | Stopping ->
    while t.state <> Stopped do
      Condition.wait t.lc t.lm
    done;
    Mutex.unlock t.lm
  | Running ->
    t.state <- Stopping;
    Mutex.unlock t.lm;
    request_stop t;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* refuse new work, let the workers drain everything admitted *)
    Rqueue.close t.queue;
    Array.iter Domain.join t.workers;
    (* every admitted job now has its response delivered; unblock the
       connection threads still waiting for client input (receive side
       only — pending responses still flush) and join them *)
    Mutex.lock t.cm;
    Hashtbl.iter
      (fun fd () ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conn_fds;
    let threads = t.conn_threads in
    t.conn_threads <- [];
    Mutex.unlock t.cm;
    List.iter Thread.join threads;
    (match t.unlink_on_stop with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    Mutex.lock t.lm;
    t.state <- Stopped;
    Condition.broadcast t.lc;
    Mutex.unlock t.lm

let wait t =
  let rec poll () =
    if Atomic.get t.stop_flag then ()
    else
      match Unix.select [ t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
      | exception Unix.Unix_error _ -> ()
      | _ -> ()
  in
  poll ();
  stop t

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      invalid_arg (Printf.sprintf "host %S resolves to no address" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      invalid_arg (Printf.sprintf "unknown host %S" host))

let bind_listener = function
  | Protocol.Unix_sock path ->
    (* remove a stale socket left by a crashed daemon, but never a
       regular file that happens to sit at the path *)
    (match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (fd, Protocol.Unix_sock path, Some path)
  | Protocol.Tcp { host; port } ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Protocol.Tcp { host; port = bound_port }, None)

let start ?(domains = 1) ?(queue_capacity = 64) ?(cache = false)
    ?default_deadline_s ?(max_request_bytes = Protocol.default_max_bytes)
    ?(instrument = Instrument.null) endpoint =
  Baseline.Routers.register ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, bound, unlink_on_stop = bind_listener endpoint in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  let n_domains = max 1 domains in
  let t =
    {
      bound;
      listen_fd;
      unlink_on_stop;
      queue = Rqueue.create ~capacity:queue_capacity;
      n_domains;
      cache;
      default_deadline_s;
      max_request_bytes;
      instrument;
      started_at = wall ();
      served = Atomic.make 0;
      errored = Atomic.make 0;
      rejected = Atomic.make 0;
      timed_out = Atomic.make 0;
      malformed = Atomic.make 0;
      worker_jobs = Array.init n_domains (fun _ -> Atomic.make 0);
      worker_busy = Array.init n_domains (fun _ -> Atomic.make 0.0);
      rm = Mutex.create ();
      routers = Hashtbl.create 8;
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      lm = Mutex.create ();
      lc = Condition.create ();
      state = Running;
      workers = [||];
      acceptor = None;
      cm = Mutex.create ();
      conn_fds = Hashtbl.create 16;
      conn_threads = [];
    }
  in
  (* warm the distance cache is the *workers'* job per device; what we
     warm here is the worker pool itself *)
  t.workers <-
    Array.init n_domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t
