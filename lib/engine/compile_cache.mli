(** Content-addressed compile cache: memoized complete routing results.

    A service workload is heavily redundant — benchmark suites, sweeps
    and iterative users re-submit structurally identical circuits
    against the same device and configuration. This module memoises the
    {e whole} routing result (physical circuit, mappings, per-trial
    accounting) under a canonical composite digest so an identical
    [(circuit, device, config, scoring mode, router/seeder spec)] tuple
    is answered in O(1) instead of re-running the SABRE search.

    The store is a sharded, mutex-striped LRU with byte-count
    accounting ({!set_capacity_bytes}; entry cost is measured with
    [Obj.reachable_words]). Concurrent identical requests are collapsed
    by single-flight deduplication: the first caller to {!acquire} a
    missing key owns the in-flight slot and routes; every other caller
    blocks on the slot until the owner {!fill}s it (they all receive
    the same result) or {!abort}s it (one waiter inherits the flight).
    Failures are never cached.

    Correctness contract: a cached result is byte-identical to the
    fresh route (enforced by the [cache-equivalence] fuzz property and
    the bench FATAL gate), and semantic verification runs on {e insert}
    (in {!Routing_pass}), not on hit. Mappings are copied on both sides
    of the cache boundary; circuits are immutable and shared. *)

type routed = {
  physical : Quantum.Circuit.t;
  trial_initial : Sabre_core.Mapping.t;
  final_mapping : Sabre_core.Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
  scoring : Sabre_core.Stats.scoring;
}
(** The complete routing result, structurally identical to
    [Context.routed] (which re-exports this type). *)

val key :
  circuit:Quantum.Circuit.t ->
  coupling:Hardware.Coupling.t ->
  config:Sabre_core.Config.t ->
  scoring:Sabre_core.Routing_pass.scoring_mode ->
  spec:string ->
  string
(** Canonical cache key: digest of [Circuit.digest] (strict program
    order) × [Coupling.digest] × [Config.digest] (hex-float exact,
    seed included) × scoring mode × [spec]. [spec] names the route
    recipe — a router name ("sabre") or a portfolio entry name
    ("hail/iso:trials=1"), which already encodes seeder and per-entry
    overrides. *)

val find : string -> routed option
(** Read-only probe. Never blocks and never claims the flight. Returns
    [None] when disabled. Counts a hit on a ready entry and a miss on a
    truly absent key; a probe that lands on an in-flight route counts
    {e nothing} — the follow-up {!acquire} classifies it (see
    {!stats}). *)

val peek : string -> routed option
(** {!find} that counts hits only. For early fast paths (serve
    admission) whose miss is re-probed by the worker pipeline: counting
    there instead keeps one request at one hit {e or} one miss. *)

type acquired =
  | Hit of routed * bool
      (** present (or delivered by an in-flight owner we waited for —
          the bool is [true] iff we blocked) *)
  | Compute  (** absent: the caller now owns the in-flight slot and
                 MUST call {!fill} or {!abort} exactly once *)

val acquire : string -> acquired
(** Single-flight acquire, called after a {!find} miss. Re-checks the
    slot (second-chance hit), blocks while another caller's flight is
    pending, or claims the flight. Completes the probe's accounting:
    a ready result counts a hit (wait-resolved or second-chance), and a
    waiter that inherits an aborted flight counts the miss its probe
    deferred; a probe-counted miss is not re-counted on [Compute]. *)

val fill : string -> routed -> unit
(** Resolve an owned flight with a successful result: store it (subject
    to the byte budget; LRU-evicts colder entries) and wake every
    waiter. *)

val abort : string -> unit
(** Resolve an owned flight without a result (routing raised or was
    cancelled): remove the pending slot and wake the waiters — one of
    them inherits the flight and recomputes. The failure is not
    cached. *)

val enabled : unit -> bool
val capacity_bytes : unit -> int

val set_capacity_bytes : int -> unit
(** Set the process-wide byte budget; [0] disables the cache entirely
    (and drops every resident entry). Shrinking evicts down
    immediately. Raises [Invalid_argument] on a negative budget. *)

val set_capacity_mb : int -> unit
(** [set_capacity_bytes (mb * 1024 * 1024)] — the [--cache-mb] flag. *)

(* Counting semantics: each request that consults the cache counts one
   hit (served from cache, including waits resolved by an in-flight
   owner) or one miss (routed fresh) — never both; [inflight_waits]
   additionally counts requests that blocked on an in-flight route.
   In the narrow race where a result is filled (or an in-flight slot
   aborted) between a request's probe and its acquire, that request may
   count one extra (or one fewer) probe; the totals are exact in their
   absence. *)
type stats = {
  hits : int;
  misses : int;
  inflight_waits : int;
  insertions : int;
  evictions : int;
  entries : int;  (** resident results right now *)
  bytes : int;  (** bytes held by resident results right now *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop every resident entry and zero the counters; pending in-flight
    slots survive so their owners can still resolve them. *)
