module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** Dense state-vector simulator.

    Stores the full 2{^n} complex amplitude vector; intended for
    verification of circuit transformations at small n (the memory cost is
    16·2{^n} bytes, so n ≤ ~20 is feasible and n ≤ ~12 is fast). Gates are
    applied in place. Measurements are not sampled: {!apply} raises on
    [Measure]; use {!apply_circuit} with [~drop_measurements:true] to
    verify the unitary part of a circuit. *)

type t

val create : int -> t
(** [create n] is the n-qubit state |0...0⟩. *)

val n_qubits : t -> int

val of_basis : int -> int -> t
(** [of_basis n k] is the computational basis state |k⟩ on [n] qubits
    (qubit 0 is the least significant bit of [k]). *)

val random : ?state:Random.State.t -> int -> t
(** A Haar-ish random normalised state (Gaussian amplitudes). *)

val copy : t -> t

val amplitude : t -> int -> Complex.t
(** [amplitude s k] is ⟨k|s⟩. *)

val apply : t -> Gate.t -> unit
(** Apply one gate in place. [Barrier] is a no-op. Raises
    [Invalid_argument] on [Measure]. *)

val apply_circuit : ?drop_measurements:bool -> t -> Circuit.t -> unit
(** Apply all gates in order. When [drop_measurements] is false (default),
    a [Measure] raises; when true, measurements are skipped. *)

val probability : t -> int -> float
(** [probability s q] is the probability that measuring qubit [q] yields
    1. *)

val inner_product : t -> t -> Complex.t
(** ⟨a|b⟩. The states must have the same size. *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|² — 1.0 for equal states regardless of global phase. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [approx_equal a b] holds when fidelity is within [tol] (default 1e-9)
    of 1, i.e. the states agree up to a global phase. *)

val embed : t -> int -> t
(** [embed s m] tensors [s] with |0...0⟩ on [m - n_qubits s] fresh high
    qubits, yielding an [m]-qubit state with [s] on the low qubits.
    Raises [Invalid_argument] when [m < n_qubits s]. *)

val permute : t -> int array -> t
(** [permute s p] relabels qubits: qubit [q] of the result carries what
    qubit [p.(q)] carried in [s]. [p] must be a permutation of
    [0 .. n-1]. *)

val norm : t -> float
(** The 2-norm of the amplitude vector (should always be ~1). *)
