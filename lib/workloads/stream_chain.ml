module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

(* Brickwork layers: layer [l] pairs adjacent qubits starting at offset
   [l mod 2], so every qubit interacts at least once every two layers
   and the qubit-inactivity span — hence a streaming router's window —
   is O(n) regardless of [gates]. *)

let validate ~n ~gates =
  if n < 2 then invalid_arg "Stream_chain: need >= 2 qubits";
  if gates < 0 then invalid_arg "Stream_chain: negative size"

let events ?(seed = 1) ~n ~gates () =
  validate ~n ~gates;
  (* seeded without [gates]: the stream at a smaller [gates] is a strict
     prefix of the stream at a larger one, which is what lets tests state
     "peak window is independent of gate count" on literally the same
     circuit *)
  let rng = Random.State.make [| seed; n; 0x57c4 |] in
  let emitted = ref 0 in
  let layer = ref 0 in
  let slot = ref 0 in
  let pending = ref None in
  fun () ->
    if !emitted >= gates then None
    else begin
      incr emitted;
      match !pending with
      | Some g ->
        pending := None;
        Some g
      | None ->
        (* skip layers with no pairs (offset 1 when n = 2) *)
        while !slot >= (n - (!layer land 1)) / 2 do
          incr layer;
          slot := 0
        done;
        let a = (!layer land 1) + (2 * !slot) in
        let b = a + 1 in
        incr slot;
        (* Every slot emits a two-qubit gate touching BOTH its qubits;
           single-qubit colour rides along as an extra gate, never as a
           replacement. That keeps the per-qubit inactivity span — and
           so a streaming router's window — deterministically O(n),
           independent of the total gate count. *)
        let r = Random.State.float rng 1.0 in
        let g =
          if r < 0.55 then Gate.Cnot (a, b)
          else if r < 0.8 then Gate.Cnot (b, a)
          else Gate.Cz (a, b)
        in
        let s = Random.State.float rng 1.0 in
        if s < 0.15 then pending := Some (Gate.Single (Gate.H, a))
        else if s < 0.3 then
          pending :=
            Some (Gate.Single (Gate.Rz (Random.State.float rng 6.28), b));
        Some g
    end

let circuit ?seed ~n ~gates () =
  let next = events ?seed ~n ~gates () in
  let rec drain acc =
    match next () with None -> List.rev acc | Some g -> drain (g :: acc)
  in
  Circuit.create ~n_qubits:n (drain [])

let last_use ?seed ~n ~gates () =
  let next = events ?seed ~n ~gates () in
  let last = Array.make n (-1) in
  let pos = ref 0 in
  let rec drain () =
    match next () with
    | None -> ()
    | Some g ->
      List.iter (fun q -> last.(q) <- !pos) (Gate.qubits g);
      incr pos;
      drain ()
  in
  drain ();
  last

let to_qasm_file ?seed ~n ~gates path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Quantum.Qasm.output_prelude oc ~n_qubits:n ~n_clbits:1;
      let next = events ?seed ~n ~gates () in
      let rec drain () =
        match next () with
        | None -> ()
        | Some g ->
          Quantum.Qasm.output_gate oc g;
          drain ()
      in
      drain ())
