test/suite_gate.ml: Alcotest List Quantum
