module Routing = Sabre_core.Routing_pass

(* Packed (objective value, entry index) orders lexicographically as a
   single int: value in the high bits, index in the low 20. The
   first-best winner of a portfolio is exactly the entry minimising
   this packed key, so one atomic min-register (the incumbent) is
   enough to decide "can entry [i] still win?" without ever replaying
   the tie-break logic. *)
let index_bits = 20
let max_index = (1 lsl index_bits) - 1

let pack v i = (max 0 v lsl index_bits) lor i

type bound = Swaps_bound | Depth_bound

type group = { incumbent : int Atomic.t }

let group () = { incumbent = Atomic.make max_int }

type t = {
  group : group option;
  bound : bound;
  index : int;
  cancelled : bool Atomic.t;
  should_stop : (unit -> bool) option;
  (* Trial bookkeeping below is entry-local: written only by the domain
     running the entry (sequential trials), read only from its hook. *)
  mutable completed_min : int;
  mutable in_last_trial : bool;
  mutable in_final_traversal : bool;
}

let make ~group ~bound ~index ~should_stop =
  if index < 0 || index > max_index then
    invalid_arg "Engine.Race: entry index out of range";
  {
    group;
    bound;
    index;
    cancelled = Atomic.make false;
    should_stop;
    completed_min = max_int;
    in_last_trial = false;
    in_final_traversal = false;
  }

let token ?should_stop () =
  make ~group:None ~bound:Swaps_bound ~index:0 ~should_stop

let entry ~group ~bound ~index ?should_stop () =
  make ~group:(Some group) ~bound ~index ~should_stop

let cancel t = Atomic.set t.cancelled true

let cancelled t =
  Atomic.get t.cancelled
  ||
  match t.should_stop with
  | Some f when f () ->
    (* latch, so the claim-time skip and the post-run flag agree even
       if the probe is not stable (e.g. a one-shot EOF read) *)
    Atomic.set t.cancelled true;
    true
  | _ -> false

let was_cancelled t = Atomic.get t.cancelled
let needs_depth t = t.group <> None && t.bound = Depth_bound

let note_trial t ~last =
  t.in_last_trial <- last;
  t.in_final_traversal <- false

let note_trial_done t ~swaps ~depth =
  let v = match t.bound with Swaps_bound -> swaps | Depth_bound -> depth in
  if v < t.completed_min then t.completed_min <- v

let note_traversal t ~final = t.in_final_traversal <- final

let complete t ~swaps ~depth =
  match t.group with
  | None -> ()
  | Some g ->
    let v = match t.bound with Swaps_bound -> swaps | Depth_bound -> depth in
    let key = pack v t.index in
    let rec cas_min () =
      let cur = Atomic.get g.incumbent in
      if key < cur && not (Atomic.compare_and_set g.incumbent cur key) then
        cas_min ()
    in
    cas_min ()

(* The certified lower bound on this entry's final objective value.
   An entry's value is drawn from {completed trials' values} ∪ {the
   in-flight trial's value}; the in-flight trial only contributes a
   bound during its final forward traversal, where the monotone
   counter (SWAPs inserted / prefix ASAP depth) can no longer shrink.
   Outside that window the in-flight (and any future) trial bounds at
   0, which is always sound. *)
let lower_bound t (p : Routing.progress) =
  if t.in_last_trial && t.in_final_traversal then
    min t.completed_min
      (match t.bound with
      | Swaps_bound -> p.Routing.swaps
      | Depth_bound -> p.Routing.depth_lb)
  else 0

let beaten t lb =
  match t.group with
  | None -> false
  | Some g -> pack lb t.index > Atomic.get g.incumbent

let skip_at_claim t = cancelled t || beaten t 0

let hook ?(every = 64) t : Routing.hook =
  {
    Routing.every;
    notify =
      (fun p ->
        if cancelled t then Routing.Stop
        else if beaten t (lower_bound t p) then begin
          (* latch, so post-run reporting sees the prune as a
             cancellation without inspecting the outcome *)
          Atomic.set t.cancelled true;
          Routing.Stop
        end
        else Routing.Continue);
  }
