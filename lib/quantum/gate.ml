type single_kind =
  | I
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U1 of float
  | U2 of float * float
  | U3 of float * float * float

type t =
  | Single of single_kind * int
  | Cnot of int * int
  | Cz of int * int
  | Swap of int * int
  | Barrier of int list
  | Measure of int * int

let qubits = function
  | Single (_, q) -> [ q ]
  | Cnot (a, b) | Cz (a, b) | Swap (a, b) -> [ a; b ]
  | Barrier qs -> qs
  | Measure (q, _) -> [ q ]

let is_two_qubit = function
  | Cnot _ | Cz _ | Swap _ -> true
  | Single _ | Barrier _ | Measure _ -> false

let two_qubit_pair = function
  | Cnot (a, b) | Cz (a, b) | Swap (a, b) -> Some (a, b)
  | Single _ | Barrier _ | Measure _ -> None

let remap f = function
  | Single (k, q) -> Single (k, f q)
  | Cnot (a, b) -> Cnot (f a, f b)
  | Cz (a, b) -> Cz (f a, f b)
  | Swap (a, b) -> Swap (f a, f b)
  | Barrier qs -> Barrier (List.map f qs)
  | Measure (q, c) -> Measure (f q, c)

let single_kind_dagger = function
  | I -> I
  | H -> H
  | X -> X
  | Y -> Y
  | Z -> Z
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Rx a -> Rx (-.a)
  | Ry a -> Ry (-.a)
  | Rz a -> Rz (-.a)
  | U1 a -> U1 (-.a)
  (* U2(φ,λ)† = U2(-λ-π, -φ+π): follows from U2 = U3(π/2, φ, λ). *)
  | U2 (phi, lam) -> U2 (-.lam -. Float.pi, -.phi +. Float.pi)
  | U3 (theta, phi, lam) -> U3 (-.theta, -.lam, -.phi)

let dagger = function
  | Single (k, q) -> Single (single_kind_dagger k, q)
  | Cnot (a, b) -> Cnot (a, b)
  | Cz (a, b) -> Cz (a, b)
  | Swap (a, b) -> Swap (a, b)
  | Barrier qs -> Barrier qs
  | Measure _ -> invalid_arg "Gate.dagger: measurement is not unitary"

let single_kind_name = function
  | I -> "id"
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | U1 _ -> "u1"
  | U2 _ -> "u2"
  | U3 _ -> "u3"

let name = function
  | Single (k, _) -> single_kind_name k
  | Cnot _ -> "cx"
  | Cz _ -> "cz"
  | Swap _ -> "swap"
  | Barrier _ -> "barrier"
  | Measure _ -> "measure"

let single_kind_params = function
  | I | H | X | Y | Z | S | Sdg | T | Tdg -> []
  | Rx a | Ry a | Rz a | U1 a -> [ a ]
  | U2 (a, b) -> [ a; b ]
  | U3 (a, b, c) -> [ a; b; c ]

let pp ppf g =
  let pp_params ppf = function
    | [] -> ()
    | ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf x -> Format.fprintf ppf "%g" x))
        ps
  in
  match g with
  | Single (k, q) ->
    Format.fprintf ppf "%s%a q[%d]" (single_kind_name k) pp_params
      (single_kind_params k) q
  | Cnot (a, b) -> Format.fprintf ppf "cx q[%d], q[%d]" a b
  | Cz (a, b) -> Format.fprintf ppf "cz q[%d], q[%d]" a b
  | Swap (a, b) -> Format.fprintf ppf "swap q[%d], q[%d]" a b
  | Barrier qs ->
    Format.fprintf ppf "barrier %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs
  | Measure (q, c) -> Format.fprintf ppf "measure q[%d] -> c[%d]" q c

let to_string g = Format.asprintf "%a" pp g

(* Float parameters go through %h (hex-float) so bit-distinct angles —
   including ones that agree to %g's 6 significant digits, NaN, signed
   zero and subnormals — never serialise alike. Gates without float
   parameters render exactly under [to_string] already. *)
let digest_string g =
  match g with
  | Single (k, q) -> (
    match single_kind_params k with
    | [] -> to_string g
    | ps ->
      Printf.sprintf "%s(%s) q[%d]" (single_kind_name k)
        (String.concat "," (List.map (Printf.sprintf "%h") ps))
        q)
  | Cnot _ | Cz _ | Swap _ | Barrier _ | Measure _ -> to_string g

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let validate ~n_qubits g =
  let in_range q = q >= 0 && q < n_qubits in
  let check_range qs =
    match List.find_opt (fun q -> not (in_range q)) qs with
    | Some q ->
      Error
        (Printf.sprintf "gate %s: qubit %d out of range [0,%d)" (name g) q
           n_qubits)
    | None -> Ok ()
  in
  let qs = qubits g in
  match check_range qs with
  | Error _ as e -> e
  | Ok () -> (
    match g with
    | Cnot (a, b) | Cz (a, b) | Swap (a, b) when a = b ->
      Error
        (Printf.sprintf "gate %s: identical operands q[%d]" (name g) a)
    | Barrier qs when List.length (List.sort_uniq Int.compare qs) <> List.length qs
      -> Error "barrier: duplicate qubit"
    | _ -> Ok ())
