module Circuit = Quantum.Circuit
module Mapping = Sabre_core.Mapping

type outcome = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals : int;
  scoring : Sabre_core.Stats.scoring;
      (* inner-loop scorer accounting; [Stats.scoring_zero] for routers
         without a heuristic decision loop *)
}

exception Route_failed of string

module type S = sig
  val name : string
  val deterministic : bool
  val route : Context.t -> initial:Mapping.t -> outcome
end

type t = (module S)

let name (module R : S) = R.name

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let register (module R : S) = Hashtbl.replace registry R.name (module R : S)
let find n = Hashtbl.find_opt registry n

let names () =
  Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort compare
