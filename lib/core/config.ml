type heuristic = Basic | Lookahead | Decay

type t = {
  heuristic : heuristic;
  extended_set_size : int;
  extended_set_weight : float;
  decay_increment : float;
  decay_reset_interval : int;
  trials : int;
  traversals : int;
  seed : int;
  stall_limit : int option;
  commutation_aware : bool;
}

let default =
  {
    heuristic = Decay;
    extended_set_size = 20;
    extended_set_weight = 0.5;
    decay_increment = 0.001;
    decay_reset_interval = 5;
    trials = 5;
    traversals = 3;
    seed = 2019;
    stall_limit = None;
    commutation_aware = false;
  }

let validate c =
  if c.extended_set_size < 0 then Error "extended_set_size must be >= 0"
  else if Float.is_nan c.extended_set_weight then
    Error "extended_set_weight must not be NaN"
  else if not (c.extended_set_weight >= 0.0 && c.extended_set_weight < 1.0)
  then Error "extended_set_weight must be in [0, 1)"
  else if Float.is_nan c.decay_increment then
    Error "decay_increment must not be NaN"
  else if c.decay_increment < 0.0 then Error "decay_increment must be >= 0"
  else if c.decay_reset_interval < 1 then
    Error "decay_reset_interval must be >= 1 (got <= 0)"
  else if c.trials < 1 then Error "trials must be >= 1"
  else if c.traversals < 1 || c.traversals mod 2 = 0 then
    Error "traversals must be odd and >= 1 (forward passes bracket the run)"
  else if (match c.stall_limit with Some s -> s < 1 | None -> false) then
    Error "stall_limit must be >= 1"
  else Ok ()

let heuristic_name = function
  | Basic -> "basic"
  | Lookahead -> "lookahead"
  | Decay -> "decay"

(* Canonical content digest. Floats go through %h (hex-float) so the
   serialisation round-trips bit-exactly — the same convention Corpus
   uses for repro files. %h prints NaN, signed zero and subnormals
   stably, so equal bit patterns always hash equally and distinct ones
   (including -0.0 vs 0.0) never collide. *)
let digest c =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "heuristic:%s extended_set_size:%d extended_set_weight:%h \
           decay_increment:%h decay_reset_interval:%d trials:%d \
           traversals:%d seed:%d stall_limit:%s commutation_aware:%b"
          (heuristic_name c.heuristic)
          c.extended_set_size c.extended_set_weight c.decay_increment
          c.decay_reset_interval c.trials c.traversals c.seed
          (match c.stall_limit with
          | None -> "none"
          | Some s -> string_of_int s)
          c.commutation_aware))

let pp ppf c =
  Format.fprintf ppf
    "{heuristic=%s; |E|=%d; W=%g; delta=%g; reset=%d; trials=%d; \
     traversals=%d; seed=%d}"
    (heuristic_name c.heuristic)
    c.extended_set_size c.extended_set_weight c.decay_increment
    c.decay_reset_interval c.trials c.traversals c.seed
