lib/quantum/circuit.mli: Format Gate
