(** Human-readable renderings of circuits and graphs: an ASCII circuit
    diagram in the style of the paper's figures, and Graphviz exports for
    coupling graphs and dependency DAGs. Debugging and documentation
    aids; nothing here affects compilation. *)

val circuit_ascii : ?max_columns:int -> Circuit.t -> string
(** Draw the circuit as one text line per qubit, gates placed at their
    ASAP time step:

    {v
    q0 : -H--*-----x-
    q1 : ----X--*--|-
    q2 : -------Z--x-
    v}

    [*]/[X] mark CNOT control/target, [x...x] a SWAP, [*...Z] a CZ, [M]
    a measurement, [|] a barrier or a crossing connector; single-qubit
    gates print a short mnemonic. Circuits wider than [max_columns] time
    steps (default 120) are truncated with an ellipsis. *)

val dag_dot : Dag.t -> string
(** Graphviz [digraph] source for a circuit's dependency DAG; node labels
    are gate strings, two-qubit gates are highlighted. *)
