lib/workloads/qft.mli: Quantum
