type endpoint = Unix_sock of string | Tcp of { host : string; port : int }

let pp_endpoint ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp { host; port } -> Format.fprintf ppf "tcp:%s:%d" host port

type source = Inline of string | Path of string

type overrides = {
  trials : int option;
  traversals : int option;
  delta : float option;
  weight : float option;
  extended_set : int option;
  seed : int option;
  commutation : bool option;
}

let no_overrides =
  {
    trials = None;
    traversals = None;
    delta = None;
    weight = None;
    extended_set = None;
    seed = None;
    commutation = None;
  }

type compile = {
  id : string;
  source : source;
  device : string;
  device_size : int option;
  router : string;
  overrides : overrides;
  cache : bool;
  deadline_s : float option;
}

type portfolio = {
  id : string;
  source : source;
  device : string;
  device_size : int option;
  spec : string;
  objective : string;
  race : bool;
  overrides : overrides;
  cache : bool;
  deadline_s : float option;
}

type request =
  | Compile of compile
  | Portfolio of portfolio
  | Stats of { id : string }
  | Ping of { id : string }

type error_kind =
  | Malformed
  | Oversized
  | Queue_full
  | Timeout
  | Qasm_error
  | Route_error
  | Invalid
  | Shutting_down

let error_kind_name = function
  | Malformed -> "malformed"
  | Oversized -> "oversized"
  | Queue_full -> "queue_full"
  | Timeout -> "timeout"
  | Qasm_error -> "qasm_error"
  | Route_error -> "route_error"
  | Invalid -> "invalid"
  | Shutting_down -> "shutting_down"

let error_kind_of_name = function
  | "malformed" -> Some Malformed
  | "oversized" -> Some Oversized
  | "queue_full" -> Some Queue_full
  | "timeout" -> Some Timeout
  | "qasm_error" -> Some Qasm_error
  | "route_error" -> Some Route_error
  | "invalid" -> Some Invalid
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type compiled = {
  id : string;
  qasm : string;
  initial : int array;
  final : int array;
  n_swaps : int;
  original_gates : int;
  total_gates : int;
  routed_depth : int;
  time_s : float;
}

type member_stat = {
  entry : string;
  swaps : int option;
  depth : int option;
  value : float option;  (** the entry's objective value (lower wins) *)
  wall_s : float option;  (** wall seconds the entry's compile ran *)
  cancelled : bool;  (** stopped early: pruned, deadline, or disconnect *)
  error : string option;
}

type domain_load = { domain : int; jobs_run : int; wall_busy_s : float }
type router_load = { router : string; requests : int; succeeded : int; failed : int }

type server_stats = {
  served : int;
  errored : int;
  rejected : int;
  timed_out : int;
  malformed : int;
  queue_depth : int;
  queue_capacity : int;
  domains : int;
  uptime_s : float;
  dist_cache_hits : int;
  dist_cache_misses : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  cache_bytes : int;
  per_domain : domain_load array;
  per_router : router_load array;
}

type response =
  | Ok_compiled of compiled
  | Ok_portfolio of {
      compiled : compiled;
      winner : string;
      members : member_stat array;
    }
  | Ok_stats of { id : string; stats : server_stats }
  | Pong of { id : string }
  | Error_resp of { id : string; kind : error_kind; message : string }

let default_max_bytes = 8 * 1024 * 1024

(* Structural equality is what we mean everywhere: the only non-scalar
   payloads are int arrays, which polymorphic equality compares by
   contents, and no float we produce is NaN. *)
let request_equal (a : request) (b : request) = a = b
let response_equal (a : response) (b : response) = a = b

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt_field name to_json = function
  | None -> []
  | Some v -> [ (name, to_json v) ]

let overrides_fields o =
  opt_field "trials" (fun v -> Jsonx.Int v) o.trials
  @ opt_field "traversals" (fun v -> Jsonx.Int v) o.traversals
  @ opt_field "delta" (fun v -> Jsonx.Float v) o.delta
  @ opt_field "weight" (fun v -> Jsonx.Float v) o.weight
  @ opt_field "extended_set" (fun v -> Jsonx.Int v) o.extended_set
  @ opt_field "seed" (fun v -> Jsonx.Int v) o.seed
  @ opt_field "commutation" (fun v -> Jsonx.Bool v) o.commutation

let source_field = function
  | Inline qasm -> [ ("qasm", Jsonx.Str qasm) ]
  | Path p -> [ ("path", Jsonx.Str p) ]

let encode_request req =
  let obj =
    match req with
    | Compile c ->
      Jsonx.Obj
        ([ ("kind", Jsonx.Str "compile"); ("id", Jsonx.Str c.id) ]
        @ source_field c.source
        @ [ ("device", Jsonx.Str c.device) ]
        @ opt_field "device_size" (fun v -> Jsonx.Int v) c.device_size
        @ [ ("router", Jsonx.Str c.router) ]
        @ overrides_fields c.overrides
        @ [ ("cache", Jsonx.Bool c.cache) ]
        @ opt_field "deadline_s" (fun v -> Jsonx.Float v) c.deadline_s)
    | Portfolio p ->
      Jsonx.Obj
        ([ ("kind", Jsonx.Str "portfolio"); ("id", Jsonx.Str p.id) ]
        @ source_field p.source
        @ [ ("device", Jsonx.Str p.device) ]
        @ opt_field "device_size" (fun v -> Jsonx.Int v) p.device_size
        @ [
            ("spec", Jsonx.Str p.spec);
            ("objective", Jsonx.Str p.objective);
            ("race", Jsonx.Bool p.race);
          ]
        @ overrides_fields p.overrides
        @ [ ("cache", Jsonx.Bool p.cache) ]
        @ opt_field "deadline_s" (fun v -> Jsonx.Float v) p.deadline_s)
    | Stats { id } ->
      Jsonx.Obj [ ("kind", Jsonx.Str "stats"); ("id", Jsonx.Str id) ]
    | Ping { id } ->
      Jsonx.Obj [ ("kind", Jsonx.Str "ping"); ("id", Jsonx.Str id) ]
  in
  Jsonx.to_string obj

let int_array_json a =
  Jsonx.List (Array.to_list (Array.map (fun i -> Jsonx.Int i) a))

let compiled_fields (c : compiled) =
  [
    ("id", Jsonx.Str c.id);
    ("qasm", Jsonx.Str c.qasm);
    ("initial", int_array_json c.initial);
    ("final", int_array_json c.final);
    ("swaps", Jsonx.Int c.n_swaps);
    ("original_gates", Jsonx.Int c.original_gates);
    ("total_gates", Jsonx.Int c.total_gates);
    ("depth", Jsonx.Int c.routed_depth);
    ("time_s", Jsonx.Float c.time_s);
  ]

let encode_response resp =
  let obj =
    match resp with
    | Ok_compiled c -> Jsonx.Obj (("kind", Jsonx.Str "ok") :: compiled_fields c)
    | Ok_portfolio { compiled = c; winner; members } ->
      Jsonx.Obj
        ((("kind", Jsonx.Str "ok_portfolio") :: compiled_fields c)
        @ [
            ("winner", Jsonx.Str winner);
            ( "members",
              Jsonx.List
                (Array.to_list
                   (Array.map
                      (fun m ->
                        Jsonx.Obj
                          ([ ("entry", Jsonx.Str m.entry) ]
                          @ opt_field "swaps" (fun v -> Jsonx.Int v) m.swaps
                          @ opt_field "depth" (fun v -> Jsonx.Int v) m.depth
                          @ opt_field "value" (fun v -> Jsonx.Float v) m.value
                          @ opt_field "wall_s" (fun v -> Jsonx.Float v) m.wall_s
                          @ [ ("cancelled", Jsonx.Bool m.cancelled) ]
                          @ opt_field "error" (fun v -> Jsonx.Str v) m.error))
                      members)) );
          ])
    | Ok_stats { id; stats = s } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.Str "stats");
          ("id", Jsonx.Str id);
          ("served", Jsonx.Int s.served);
          ("errored", Jsonx.Int s.errored);
          ("rejected", Jsonx.Int s.rejected);
          ("timed_out", Jsonx.Int s.timed_out);
          ("malformed", Jsonx.Int s.malformed);
          ("queue_depth", Jsonx.Int s.queue_depth);
          ("queue_capacity", Jsonx.Int s.queue_capacity);
          ("domains", Jsonx.Int s.domains);
          ("uptime_s", Jsonx.Float s.uptime_s);
          ("dist_cache_hits", Jsonx.Int s.dist_cache_hits);
          ("dist_cache_misses", Jsonx.Int s.dist_cache_misses);
          ("cache_hits", Jsonx.Int s.cache_hits);
          ("cache_misses", Jsonx.Int s.cache_misses);
          ("cache_entries", Jsonx.Int s.cache_entries);
          ("cache_bytes", Jsonx.Int s.cache_bytes);
          ( "per_domain",
            Jsonx.List
              (Array.to_list
                 (Array.map
                    (fun d ->
                      Jsonx.Obj
                        [
                          ("domain", Jsonx.Int d.domain);
                          ("jobs_run", Jsonx.Int d.jobs_run);
                          ("wall_busy_s", Jsonx.Float d.wall_busy_s);
                        ])
                    s.per_domain)) );
          ( "per_router",
            Jsonx.List
              (Array.to_list
                 (Array.map
                    (fun r ->
                      Jsonx.Obj
                        [
                          ("router", Jsonx.Str r.router);
                          ("requests", Jsonx.Int r.requests);
                          ("succeeded", Jsonx.Int r.succeeded);
                          ("failed", Jsonx.Int r.failed);
                        ])
                    s.per_router)) );
        ]
    | Pong { id } ->
      Jsonx.Obj [ ("kind", Jsonx.Str "pong"); ("id", Jsonx.Str id) ]
    | Error_resp { id; kind; message } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.Str "error");
          ("id", Jsonx.Str id);
          ("error", Jsonx.Str (error_kind_name kind));
          ("message", Jsonx.Str message);
        ]
  in
  Jsonx.to_string obj

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let get_str obj name =
  match Jsonx.member name obj with
  | Some v -> (
    match Jsonx.to_str v with
    | Some s -> s
    | None -> raise (Bad (Printf.sprintf "field %S must be a string" name)))
  | None -> raise (Bad (Printf.sprintf "missing field %S" name))

let opt_typed obj name of_json what =
  match Jsonx.member name obj with
  | None -> None
  | Some v -> (
    match of_json v with
    | Some x -> Some x
    | None -> raise (Bad (Printf.sprintf "field %S must be %s" name what)))

let opt_int obj name = opt_typed obj name Jsonx.to_int "an integer"
let opt_float obj name = opt_typed obj name Jsonx.to_float "a number"
let opt_bool obj name = opt_typed obj name Jsonx.to_bool "a boolean"
let opt_str obj name = opt_typed obj name Jsonx.to_str "a string"

let known_request_fields =
  [
    "kind"; "id"; "qasm"; "path"; "device"; "device_size"; "router"; "spec";
    "objective"; "race"; "trials"; "traversals"; "delta"; "weight";
    "extended_set"; "seed"; "commutation"; "cache"; "deadline_s";
  ]

let reject_unknown_fields obj known =
  match obj with
  | Jsonx.Obj fields ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k known) then
          raise (Bad (Printf.sprintf "unknown field %S" k)))
      fields
  | _ -> raise (Bad "request must be a JSON object")

let decode_request ?(max_bytes = default_max_bytes) line =
  if String.length line > max_bytes then
    Error
      ( Oversized,
        Printf.sprintf "request is %d bytes; the limit is %d"
          (String.length line) max_bytes )
  else
    match Jsonx.parse line with
    | Error msg -> Error (Malformed, msg)
    | Ok json -> (
      try
        reject_unknown_fields json known_request_fields;
        let id = Option.value (opt_str json "id") ~default:"" in
        match get_str json "kind" with
        | "stats" -> Ok (Stats { id })
        | "ping" -> Ok (Ping { id })
        | ("compile" | "portfolio") as kind ->
          let source =
            match (opt_str json "qasm", opt_str json "path") with
            | Some q, None -> Inline q
            | None, Some p -> Path p
            | Some _, Some _ -> raise (Bad "give either \"qasm\" or \"path\", not both")
            | None, None ->
              raise (Bad (kind ^ " needs a \"qasm\" or \"path\" field"))
          in
          let overrides =
            {
              trials = opt_int json "trials";
              traversals = opt_int json "traversals";
              delta = opt_float json "delta";
              weight = opt_float json "weight";
              extended_set = opt_int json "extended_set";
              seed = opt_int json "seed";
              commutation = opt_bool json "commutation";
            }
          in
          let device = get_str json "device" in
          let device_size = opt_int json "device_size" in
          let cache = Option.value (opt_bool json "cache") ~default:true in
          let deadline_s = opt_float json "deadline_s" in
          if kind = "compile" then
            Ok
              (Compile
                 {
                   id;
                   source;
                   device;
                   device_size;
                   router = Option.value (opt_str json "router") ~default:"sabre";
                   overrides;
                   cache;
                   deadline_s;
                 })
          else
            Ok
              (Portfolio
                 {
                   id;
                   source;
                   device;
                   device_size;
                   spec = get_str json "spec";
                   objective =
                     Option.value (opt_str json "objective") ~default:"swaps";
                   race = Option.value (opt_bool json "race") ~default:false;
                   overrides;
                   cache;
                   deadline_s;
                 })
        | other -> raise (Bad (Printf.sprintf "unknown request kind %S" other))
      with Bad msg -> Error (Malformed, msg))

let get_int obj name =
  match opt_int obj name with
  | Some i -> i
  | None -> raise (Bad (Printf.sprintf "missing integer field %S" name))

let get_float obj name =
  match opt_float obj name with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "missing number field %S" name))

let get_int_array obj name =
  match Jsonx.member name obj with
  | Some (Jsonx.List items) ->
    Array.of_list
      (List.map
         (fun v ->
           match Jsonx.to_int v with
           | Some i -> i
           | None -> raise (Bad (Printf.sprintf "field %S must hold integers" name)))
         items)
  | _ -> raise (Bad (Printf.sprintf "missing array field %S" name))

let decode_compiled json id =
  {
    id;
    qasm = get_str json "qasm";
    initial = get_int_array json "initial";
    final = get_int_array json "final";
    n_swaps = get_int json "swaps";
    original_gates = get_int json "original_gates";
    total_gates = get_int json "total_gates";
    routed_depth = get_int json "depth";
    time_s = get_float json "time_s";
  }

let decode_response line =
  match Jsonx.parse line with
  | Error msg -> Error msg
  | Ok json -> (
    try
      let id = get_str json "id" in
      match get_str json "kind" with
      | "ok" -> Ok (Ok_compiled (decode_compiled json id))
      | "ok_portfolio" ->
        let members =
          match Jsonx.member "members" json with
          | Some (Jsonx.List items) ->
            Array.of_list
              (List.map
                 (fun m ->
                   {
                     entry = get_str m "entry";
                     swaps = opt_int m "swaps";
                     depth = opt_int m "depth";
                     value = opt_float m "value";
                     wall_s = opt_float m "wall_s";
                     cancelled =
                       Option.value (opt_bool m "cancelled") ~default:false;
                     error = opt_str m "error";
                   })
                 items)
          | _ -> raise (Bad "missing array field \"members\"")
        in
        Ok
          (Ok_portfolio
             {
               compiled = decode_compiled json id;
               winner = get_str json "winner";
               members;
             })
      | "stats" ->
        let per_domain =
          match Jsonx.member "per_domain" json with
          | Some (Jsonx.List items) ->
            Array.of_list
              (List.map
                 (fun d ->
                   {
                     domain = get_int d "domain";
                     jobs_run = get_int d "jobs_run";
                     wall_busy_s = get_float d "wall_busy_s";
                   })
                 items)
          | _ -> raise (Bad "missing array field \"per_domain\"")
        in
        let per_router =
          match Jsonx.member "per_router" json with
          | Some (Jsonx.List items) ->
            Array.of_list
              (List.map
                 (fun r ->
                   {
                     router = get_str r "router";
                     requests = get_int r "requests";
                     succeeded = get_int r "succeeded";
                     failed = get_int r "failed";
                   })
                 items)
          | _ -> raise (Bad "missing array field \"per_router\"")
        in
        Ok
          (Ok_stats
             {
               id;
               stats =
                 {
                   served = get_int json "served";
                   errored = get_int json "errored";
                   rejected = get_int json "rejected";
                   timed_out = get_int json "timed_out";
                   malformed = get_int json "malformed";
                   queue_depth = get_int json "queue_depth";
                   queue_capacity = get_int json "queue_capacity";
                   domains = get_int json "domains";
                   uptime_s = get_float json "uptime_s";
                   dist_cache_hits = get_int json "dist_cache_hits";
                   dist_cache_misses = get_int json "dist_cache_misses";
                   (* compile-cache fields are newer than the stats
                      frame itself: decode them leniently (default 0)
                      so this client still reads stats from an older
                      server that doesn't send them *)
                   cache_hits =
                     Option.value (opt_int json "cache_hits") ~default:0;
                   cache_misses =
                     Option.value (opt_int json "cache_misses") ~default:0;
                   cache_entries =
                     Option.value (opt_int json "cache_entries") ~default:0;
                   cache_bytes =
                     Option.value (opt_int json "cache_bytes") ~default:0;
                   per_domain;
                   per_router;
                 };
             })
      | "pong" -> Ok (Pong { id })
      | "error" -> (
        let name = get_str json "error" in
        match error_kind_of_name name with
        | Some kind ->
          Ok (Error_resp { id; kind; message = get_str json "message" })
        | None -> Error (Printf.sprintf "unknown error kind %S" name))
      | other -> Error (Printf.sprintf "unknown response kind %S" other)
    with Bad msg -> Error msg)

let pp_request ppf req = Format.pp_print_string ppf (encode_request req)
