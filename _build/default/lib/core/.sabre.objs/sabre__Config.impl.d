lib/core/config.ml: Format
