lib/baseline/layering.mli: Quantum
