(* Variability-aware mapping (the paper's Section VI future-work item):
   real devices have per-coupler error rates that vary by several-fold
   day to day; a mapper that knows them can place the program on the
   healthy part of the chip.

   This example builds a randomized noise model over IBM Q20 Tokyo (the
   Fig. 2 averages with log-normal per-qubit/per-edge variation), routes
   the same workloads with and without noise awareness, and compares the
   estimated success probabilities.

   Run with:  dune exec examples/noise_aware.exe *)

module Noise = Hardware.Noise
module Mapping = Sabre.Mapping

let () =
  let device = Hardware.Devices.ibm_q20_tokyo () in
  let model = Noise.randomized ~seed:2026 ~spread:1.0 device in
  Format.printf "%a@.@." Noise.pp model;
  Format.printf "%-22s | %-24s | %-24s | %s@." "workload"
    "noise-blind (swaps, p)" "noise-aware (swaps, p)" "gain";
  let config = { Sabre.Config.default with trials = 10 } in
  List.iter
    (fun (name, circuit) ->
      (* noise-blind: rank trials by (swaps, depth) as the paper does *)
      let blind = Sabre.Compiler.run ~config device circuit in
      (* noise-aware: same search, but rank trials by estimated success
         probability under the calibration model *)
      let aware = Sabre.Compiler.run ~config ~noise:model device circuit in
      (match
         Sim.Tracker.check ~coupling:device
           ~initial:(Mapping.l2p_array aware.initial_mapping)
           ~final:(Mapping.l2p_array aware.final_mapping)
           ~logical:circuit ~physical:aware.physical ()
       with
      | Ok () -> ()
      | Error e ->
        Format.printf "verification failed: %a@." Sim.Tracker.pp_error e;
        exit 1);
      let p r = Noise.circuit_success_probability model r in
      let pb = p blind.physical and pa = p aware.physical in
      Format.printf "%-22s | %5d  p=%-14.5f | %5d  p=%-14.5f | %.2fx@." name
        blind.stats.n_swaps pb aware.stats.n_swaps pa
        (pa /. pb))
    [
      ("ghz_10", Workloads.Ghz.circuit 10);
      ("ising_10 (4 steps)", Workloads.Ising.circuit ~steps:4 10);
      ("qft_8", Workloads.Qft.circuit 8);
      ("bv_9", Workloads.Bv.circuit ~hidden:0b101101101 9);
      ("adder_3", Workloads.Adder.circuit 3);
    ];
  Format.printf
    "@.Both runs insert (near-)minimal SWAPs; the noise-aware run breaks \
     ties between equally cheap placements toward reliable couplers, \
     which multiplies the end-to-end success probability.@."
