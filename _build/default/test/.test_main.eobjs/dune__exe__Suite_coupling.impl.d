test/suite_coupling.ml: Alcotest Array Hardware List
