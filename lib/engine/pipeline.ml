let run ?(instrument = Instrument.null) passes ctx =
  List.fold_left
    (fun ctx (p : Pass.t) ->
      instrument.Instrument.emit (Instrument.Pass_start { pass = p.name });
      let t0 = Unix.gettimeofday () in
      let ctx = p.run ~instrument ctx in
      let wall_s = Unix.gettimeofday () -. t0 in
      instrument.Instrument.emit (Instrument.Pass_end { pass = p.name; wall_s });
      Context.add_metric ctx p.name wall_s)
    ctx passes

let default ?router ?(decompose = Decompose_pass.Keep) ?initial_strategy
    ?(verify = false) () =
  [
    Decompose_pass.pass ~level:decompose ();
    Dag_pass.pass;
    Initial_mapping_pass.pass ?strategy:initial_strategy ();
    Routing_pass.pass ?router ();
  ]
  @ if verify then [ Verify_pass.pass ] else []
