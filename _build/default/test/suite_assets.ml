(* Tests over the sample OpenQASM files shipped in circuits/. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let check = Alcotest.check
let tc = Alcotest.test_case

let load name = Quantum.Qasm.of_file (Filename.concat "../circuits" name)

let test_adder_asset () =
  let c = load "cuccaro_adder_2bit.qasm" in
  check Alcotest.int "qubits" 6 (Circuit.n_qubits c);
  (* layout: cin=0, a=1,2, b=3,4, cout=5; check 3 + 2 = 5 (b := a+b) *)
  let a_val = 3 and b_val = 2 in
  let input =
    (if a_val land 1 <> 0 then 1 lsl 1 else 0)
    lor (if a_val land 2 <> 0 then 1 lsl 2 else 0)
    lor (if b_val land 1 <> 0 then 1 lsl 3 else 0)
    lor if b_val land 2 <> 0 then 1 lsl 4 else 0
  in
  let s = Sim.Statevector.of_basis 6 input in
  Sim.Statevector.apply_circuit ~drop_measurements:true s c;
  let result = ref (-1) in
  for k = 0 to 63 do
    if Complex.norm (Sim.Statevector.amplitude s k) > 0.99 then result := k
  done;
  check Alcotest.bool "deterministic" true (!result >= 0);
  let sum =
    ((!result lsr 3) land 1)
    lor (((!result lsr 4) land 1) lsl 1)
    lor (((!result lsr 5) land 1) lsl 2)
  in
  check Alcotest.int "3+2=5" 5 sum

let test_bell_asset_routes_everywhere () =
  let c = load "bell_swap_test.qasm" in
  List.iter
    (fun (name, device) ->
      if Hardware.Coupling.n_qubits device >= 5 then begin
        let r = Sabre.Compiler.run device c in
        Helpers.assert_compiler_result ~coupling:device ~logical:c r name
      end)
    Hardware.Devices.all_named

let test_qpe_asset_reads_phase () =
  (* T has eigenphase 1/8: a 3-bit QPE must read the counting register
     deterministically as the integer 1 (in one of the two bit orders) *)
  let c = load "qpe_3bit.qasm" in
  check Alcotest.int "4 qubits" 4 (Circuit.n_qubits c);
  let s = Sim.Statevector.create 4 in
  Sim.Statevector.apply_circuit ~drop_measurements:true s c;
  let outcome = ref (-1) in
  for k = 0 to 15 do
    if Complex.norm2 (Sim.Statevector.amplitude s k) > 0.98 then outcome := k
  done;
  check Alcotest.bool "deterministic" true (!outcome >= 0);
  let counting = !outcome land 0b111 in
  let lsb_first = counting in
  let msb_first =
    ((counting land 1) lsl 2) lor (counting land 2) lor ((counting lsr 2) land 1)
  in
  check Alcotest.bool
    (Printf.sprintf "reads 1/8 (counting=%d)" counting)
    true
    (lsb_first = 1 || msb_first = 1)

let test_assets_route_and_roundtrip () =
  let device = Hardware.Devices.ibm_q20_tokyo () in
  List.iter
    (fun name ->
      let c = load name in
      let r = Sabre.Compiler.run device c in
      Helpers.assert_compiler_result ~coupling:device ~logical:c r name;
      let back = Quantum.Qasm.of_string (Quantum.Qasm.to_string r.physical) in
      check Alcotest.bool (name ^ " roundtrip") true
        (Circuit.equal r.physical back))
    [ "cuccaro_adder_2bit.qasm"; "bell_swap_test.qasm"; "qpe_3bit.qasm" ]

let suite =
  [
    tc "cuccaro adder asset adds" `Quick test_adder_asset;
    tc "bell asset routes everywhere" `Quick test_bell_asset_routes_everywhere;
    tc "qpe asset reads the phase" `Quick test_qpe_asset_reads_phase;
    tc "assets route and roundtrip" `Quick test_assets_route_and_roundtrip;
  ]
