module Depth = Quantum.Depth
module Noise = Hardware.Noise

let name = "routing"

(* Default trial ranking: fewest SWAPs, then lowest depth. With a noise
   model, rank by estimated success probability instead — equally cheap
   routings then resolve toward reliable couplers (variability-aware
   mapping, the Section VI extension). *)
let better ~noise (a : Router.outcome) (b : Router.outcome) =
  match noise with
  | Some model ->
    Noise.circuit_success_probability model a.Router.physical
    > Noise.circuit_success_probability model b.Router.physical
  | None ->
    if a.Router.n_swaps <> b.Router.n_swaps then
      a.Router.n_swaps < b.Router.n_swaps
    else
      Depth.depth_swap3 a.Router.physical < Depth.depth_swap3 b.Router.physical

let route ~instrument ~router (ctx : Context.t) =
  let (module R : Router.S) = router in
  let mappings =
    match ctx.trial_mappings with
    | Some ms when Array.length ms > 0 -> ms
    | _ ->
      raise
        (Router.Route_failed "routing pass: Initial_mapping_pass must run first")
  in
  let mappings = if R.deterministic then [| mappings.(0) |] else mappings in
  (* Race notation only makes sense when trials run sequentially on
     one domain (the token's trial bookkeeping is entry-local); the
     portfolio always races with sequential trials. *)
  let race =
    match ctx.race with
    | Some r when ctx.trial_mode = Trial_runner.Sequential -> Some r
    | _ -> None
  in
  let n_trials = Array.length mappings in
  let jobs =
    Array.mapi
      (fun k m () ->
        (match race with
        | Some r -> Race.note_trial r ~last:(k = n_trials - 1)
        | None -> ());
        let o = R.route ctx ~initial:m in
        (match race with
        | Some r ->
          let depth =
            if Race.needs_depth r then Depth.depth_swap3 o.Router.physical
            else 0
          in
          Race.note_trial_done r ~swaps:o.Router.n_swaps ~depth
        | None -> ());
        o)
      mappings
  in
  let outcomes = Trial_runner.map ~mode:ctx.trial_mode jobs in
  let best = Trial_runner.best ~better:(better ~noise:ctx.noise) outcomes in
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let scoring =
    Array.fold_left
      (fun acc o -> Sabre_core.Stats.scoring_add acc o.Router.scoring)
      Sabre_core.Stats.scoring_zero outcomes
  in
  let routed =
    {
      Context.physical = best.Router.physical;
      trial_initial = best.Router.trial_initial;
      final_mapping = best.Router.final_mapping;
      n_swaps = best.Router.n_swaps;
      first_swaps = best.Router.first_swaps;
      search_steps = sum (fun o -> o.Router.search_steps);
      fallback_swaps = sum (fun o -> o.Router.fallback_swaps);
      traversals_run = sum (fun o -> o.Router.traversals);
      scoring;
    }
  in
  let ctx = { ctx with routed = Some routed } in
  let ctx =
    Pass.count instrument ~pass:name ctx "trials" (Array.length outcomes)
  in
  let ctx = Pass.count instrument ~pass:name ctx "swaps" routed.n_swaps in
  let ctx =
    Pass.count instrument ~pass:name ctx "search_steps" routed.search_steps
  in
  let ctx =
    Pass.count instrument ~pass:name ctx "fallback_swaps" routed.fallback_swaps
  in
  let ctx =
    Pass.count instrument ~pass:name ctx "scoring_decisions"
      scoring.Sabre_core.Stats.decisions
  in
  let ctx =
    Pass.count instrument ~pass:name ctx "scoring_candidates"
      scoring.Sabre_core.Stats.candidates
  in
  let ctx =
    Pass.count instrument ~pass:name ctx "scoring_delta_terms"
      scoring.Sabre_core.Stats.delta_terms
  in
  Pass.count instrument ~pass:name ctx "scoring_full_terms"
    scoring.Sabre_core.Stats.full_terms

(* Cache integration. [Cache_off] is the exact pre-cache pipeline.
   [Cache_hit] means Context.create already installed the routed
   result. [Cache_probe key] is a create-time miss: acquire the key
   single-flight — either someone routed it while we got here (use
   their result), or we own the in-flight slot, route, verify, and
   publish. Verification runs on insert so hits never pay it; a route
   or verify failure aborts the flight (waiters recompute) and is
   never cached. *)
let hit_counters ~instrument ~waited (ctx : Context.t) =
  let r = Context.routed_exn ctx in
  let ctx = Pass.count instrument ~pass:name ctx "cache_hit" 1 in
  let ctx =
    if waited then Pass.count instrument ~pass:name ctx "cache_wait" 1 else ctx
  in
  Pass.count instrument ~pass:name ctx "swaps" r.Context.n_swaps

let pass ?(router = Sabre_router.router) () =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      match ctx.cache_status with
      | Context.Cache_off -> route ~instrument ~router ctx
      | Context.Cache_hit -> hit_counters ~instrument ~waited:false ctx
      | Context.Cache_probe key -> (
        match Compile_cache.acquire key with
        | Compile_cache.Hit (r, waited) ->
          let ctx = { ctx with routed = Some r; verified = Some true } in
          hit_counters ~instrument ~waited ctx
        | Compile_cache.Compute ->
          let ctx =
            match route ~instrument ~router ctx with
            | ctx -> ctx
            | exception e ->
              Compile_cache.abort key;
              raise e
          in
          let r = Context.routed_exn ctx in
          (match Verify_pass.check ctx r with
          | () -> ()
          | exception e ->
            Compile_cache.abort key;
            raise e);
          Compile_cache.fill key r;
          let ctx = { ctx with verified = Some true } in
          Pass.count instrument ~pass:name ctx "cache_insert" 1))
