lib/core/stats.mli: Format Quantum
