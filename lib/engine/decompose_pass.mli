(** Circuit preprocessing: optional gate lowering before routing.

    [Keep] (the default) leaves the circuit untouched — the routing
    passes handle SWAP/CZ natively, and that is the paper's flow.
    [Swaps] lowers explicit SWAP gates to 3 CNOTs; [All] additionally
    lowers CZ, controlled-phase and Toffoli so the router only ever sees
    1- and 2-qubit elementary gates. Either way the pass reports the
    pre/post elementary gate counts to the instrument sink. *)

type level = Keep | Swaps | All

val pass : ?level:level -> unit -> Pass.t
