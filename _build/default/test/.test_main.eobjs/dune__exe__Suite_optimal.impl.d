test/suite_optimal.ml: Alcotest Baseline Hardware Helpers List Printf Quantum Sabre Workloads
