lib/workloads/suite.ml: Float Ising Lazy List Qft Quantum Random_reversible String
