module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config

let gate ~n_qubits:n =
  let open QCheck.Gen in
  let qubit = int_range 0 (n - 1) in
  let distinct_pair =
    qubit >>= fun a ->
    int_range 0 (n - 2) >>= fun k ->
    let b = if k >= a then k + 1 else k in
    return (a, b)
  in
  frequency
    [
      (4, distinct_pair >|= fun (a, b) -> Gate.Cnot (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Cz (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Swap (a, b));
      (1, qubit >|= fun q -> Gate.Single (H, q));
      (1, qubit >|= fun q -> Gate.Single (T, q));
      ( 1,
        qubit >>= fun q ->
        float_range (-3.0) 3.0 >|= fun a -> Gate.Single (Rz a, q) );
    ]

let circuit ?(min_qubits = 2) ?(max_qubits = 6) ?(max_gates = 40) () =
  let open QCheck.Gen in
  int_range min_qubits max_qubits >>= fun n ->
  list_size (int_range 0 max_gates) (gate ~n_qubits:n) >|= fun gates ->
  Quantum.Decompose.expand_swaps (Circuit.create ~n_qubits:n gates)

let rebuild like gates =
  Circuit.create ~n_qubits:(Circuit.n_qubits like)
    ~n_clbits:(Circuit.n_clbits like) gates

let shrink_circuit c yield =
  QCheck.Shrink.list_spine (Circuit.gates c) (fun gates ->
      yield (rebuild c gates))

let circuit_arb ?min_qubits ?max_qubits ?max_gates () =
  QCheck.make
    (circuit ?min_qubits ?max_qubits ?max_gates ())
    ~print:Circuit.to_string ~shrink:shrink_circuit

(* ------------------------------------------------------------------ *)
(* QASM programs                                                       *)
(* ------------------------------------------------------------------ *)

(* Valid OpenQASM 2.0 sources exercising the frontend's whole surface:
   several quantum and classical registers, user-defined gates with
   parameter expressions, broadcast single-qubit application,
   whole-register measure, barriers, comments and blank lines. All
   parameters are multiples of 0.25, exact in binary, so printed
   round-trips are float-exact by construction. *)
let qasm_program =
  let open QCheck.Gen in
  let param = int_range 0 12 >|= fun k -> float_of_int k *. 0.25 in
  let pf = Printf.sprintf "%g" in
  int_range 1 3 >>= fun n_qregs ->
  list_repeat n_qregs (int_range 1 3) >>= fun qsizes ->
  int_range 1 2 >>= fun n_cregs ->
  list_repeat n_cregs (int_range 1 3) >>= fun csizes ->
  bool >>= fun with_defs ->
  let qregs = List.mapi (fun i s -> (Printf.sprintf "qr%d" i, s)) qsizes in
  let cregs = List.mapi (fun i s -> (Printf.sprintf "cr%d" i, s)) csizes in
  let qubits =
    List.concat_map (fun (n, s) -> List.init s (fun i -> (n, i))) qregs
  in
  let total = List.length qubits in
  let qubit_at k =
    let n, i = List.nth qubits k in
    Printf.sprintf "%s[%d]" n i
  in
  let qubit = int_range 0 (total - 1) >|= qubit_at in
  let distinct_pair =
    int_range 0 (total - 1) >>= fun a ->
    int_range 0 (total - 2) >|= fun k ->
    let b = if k >= a then k + 1 else k in
    (qubit_at a, qubit_at b)
  in
  let qreg_name = oneofl (List.map fst qregs) in
  let stmt =
    frequency
      ([
         ( 3,
           qubit >>= fun q ->
           oneofl [ "h"; "x"; "t"; "sdg" ] >|= fun g ->
           Printf.sprintf "%s %s;" g q );
         ( 2,
           qubit >>= fun q ->
           param >|= fun v -> Printf.sprintf "rz(%s) %s;" (pf v) q );
         ( 2,
           qreg_name >>= fun r ->
           oneofl [ "h"; "x" ] >|= fun g ->
           Printf.sprintf "%s %s; // broadcast" g r );
         (1, qreg_name >|= fun r -> Printf.sprintf "barrier %s;" r);
         (1, return "");
         (1, return "// comment line");
       ]
      @ (if total >= 2 then
           [
             ( 4,
               distinct_pair >|= fun (a, b) ->
               Printf.sprintf "cx %s,%s;" a b );
           ]
         else [])
      @
      if with_defs then
        [
          ( 1,
            qubit >>= fun q ->
            param >|= fun v -> Printf.sprintf "gd1(%s) %s;" (pf v) q );
        ]
        @
        if total >= 2 then
          [
            ( 1,
              distinct_pair >|= fun (a, b) ->
              Printf.sprintf "gd2 %s,%s;" a b );
          ]
        else []
      else [])
  in
  list_size (int_range 0 25) stmt >|= fun body ->
  let header =
    [ "OPENQASM 2.0;"; "include \"qelib1.inc\";" ]
    @ List.map (fun (n, s) -> Printf.sprintf "qreg %s[%d];" n s) qregs
    @ List.map (fun (n, s) -> Printf.sprintf "creg %s[%d];" n s) cregs
    @
    if with_defs then
      [
        "gate gd1(p) a { rz(p*2) a; h a; }";
        "gate gd2 a,b { cx a,b; tdg b; }";
      ]
    else []
  in
  let measures =
    let matched =
      List.concat_map
        (fun (qn, qs) ->
          List.filter_map
            (fun (cn, cs) ->
              if qs = cs then Some (Printf.sprintf "measure %s -> %s;" qn cn)
              else None)
            cregs)
        qregs
    in
    let indexed =
      Printf.sprintf "measure %s[0] -> %s[0];" (fst (List.hd qregs))
        (fst (List.hd cregs))
    in
    match matched with m :: _ -> [ m; indexed ] | [] -> [ indexed ]
  in
  String.concat "\n" (header @ body @ measures) ^ "\n"

let qasm_program_arb = QCheck.make qasm_program ~print:(fun s -> s)

(* ------------------------------------------------------------------ *)
(* Coupling graphs                                                     *)
(* ------------------------------------------------------------------ *)

let tree_plus_gen n =
  let open QCheck.Gen in
  if n = 1 then return (Coupling.create ~n_qubits:1 [])
  else
    (* spanning tree: each node i>0 attaches to a random previous node *)
    let attach i = int_range 0 (i - 1) >|= fun p -> (p, i) in
    let rec tree i acc =
      if i >= n then return acc
      else attach i >>= fun e -> tree (i + 1) (e :: acc)
    in
    tree 1 [] >>= fun tree_edges ->
    list_size (int_range 0 n)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >|= fun extras ->
    let have = Hashtbl.create 16 in
    List.iter
      (fun (a, b) -> Hashtbl.replace have (min a b, max a b) ())
      tree_edges;
    let extra_edges =
      List.filter_map
        (fun (a, b) ->
          if a = b then None
          else begin
            let e = (min a b, max a b) in
            if Hashtbl.mem have e then None
            else begin
              Hashtbl.replace have e ();
              Some e
            end
          end)
        extras
    in
    Coupling.create ~n_qubits:n (tree_edges @ extra_edges)

let path n =
  Coupling.create ~n_qubits:n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  let wrap = if n >= 3 then [ (0, n - 1) ] else [] in
  Coupling.create ~n_qubits:n
    (List.init (n - 1) (fun i -> (i, i + 1)) @ wrap)

let grid_at_least n =
  let rows = max 1 (int_of_float (sqrt (float_of_int n))) in
  let cols = (n + rows - 1) / rows in
  Hardware.Devices.grid ~rows ~cols

let coupling ?(min_qubits = 2) ?(slack = 4) () =
  let open QCheck.Gen in
  int_range (max 2 min_qubits) (max 2 min_qubits + slack) >>= fun n ->
  frequency
    [
      (1, return (path n));
      (1, return (ring n));
      (1, return (grid_at_least n));
      (3, tree_plus_gen n);
    ]

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

let config =
  let open QCheck.Gen in
  oneofl [ Config.Basic; Config.Lookahead; Config.Decay ] >>= fun heuristic ->
  int_range 1 2 >>= fun trials ->
  oneofl [ 1; 3 ] >>= fun traversals ->
  int_range 0 8 >>= fun extended_set_size ->
  float_range 0.0 0.9 >>= fun extended_set_weight ->
  float_range 0.0 0.01 >>= fun decay_increment ->
  int_range 1 5 >>= fun decay_reset_interval ->
  int_range 0 1_000_000 >|= fun seed ->
  {
    Config.default with
    heuristic;
    trials;
    traversals;
    extended_set_size;
    extended_set_weight;
    decay_increment;
    decay_reset_interval;
    seed;
  }

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

type instance = {
  circuit : Circuit.t;
  coupling : Coupling.t;
  config : Config.t;
}

let instance ?max_qubits ?max_gates () =
  let open QCheck.Gen in
  circuit ?max_qubits ?max_gates () >>= fun c ->
  coupling ~min_qubits:(Circuit.n_qubits c) () >>= fun coupling ->
  config >|= fun config -> { circuit = c; coupling; config }

let print_instance i =
  Format.asprintf "config=%a@.%a@.%a" Config.pp i.config Coupling.pp i.coupling
    Circuit.pp i.circuit

let shrink_instance i yield =
  shrink_circuit i.circuit (fun c -> yield { i with circuit = c })

let instance_arb ?max_qubits ?max_gates () =
  QCheck.make
    (instance ?max_qubits ?max_gates ())
    ~print:print_instance ~shrink:shrink_instance

let instance_of_seed ?max_qubits ?max_gates seed =
  QCheck.Gen.generate1
    ~rand:(Random.State.make [| 0x5eed; seed |])
    (instance ?max_qubits ?max_gates ())
