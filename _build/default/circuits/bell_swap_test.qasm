// Bell pair between the two ends of a 5-qubit register: a router must
// insert SWAPs on any device where q[0] and q[4] are not coupled.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[4];
barrier q;
measure q[0] -> c[0];
measure q[4] -> c[4];
