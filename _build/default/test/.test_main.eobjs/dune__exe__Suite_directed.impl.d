test/suite_directed.ml: Alcotest Hardware List Quantum Sabre Sim Workloads
