lib/baseline/optimal.mli: Hardware Quantum Sabre Stdlib
