lib/baseline/bka.ml: Array Bytes Char Format Hardware Hashtbl Heap Layering List Quantum Sabre
