type t = { n_qubits : int; n_clbits : int; gates : Gate.t array }

let create ?n_clbits ~n_qubits gate_list =
  if n_qubits < 0 then invalid_arg "Circuit.create: negative register size";
  let n_clbits = Option.value n_clbits ~default:n_qubits in
  List.iter
    (fun g ->
      match Gate.validate ~n_qubits g with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Circuit.create: " ^ msg))
    gate_list;
  { n_qubits; n_clbits; gates = Array.of_list gate_list }

let empty n = create ~n_qubits:n []
let n_qubits c = c.n_qubits
let n_clbits c = c.n_clbits
let gates c = Array.to_list c.gates
let gate_array c = Array.copy c.gates
let length c = Array.length c.gates

let count p c =
  Array.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 c.gates

let gate_count c =
  count (function Gate.Barrier _ | Gate.Measure _ -> false | _ -> true) c

let two_qubit_count c = count Gate.is_two_qubit c
let single_qubit_count c = count (function Gate.Single _ -> true | _ -> false) c

let count_by_name c =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let n = Gate.name g in
      Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    c.gates;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let append c g =
  (match Gate.validate ~n_qubits:c.n_qubits g with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Circuit.append: " ^ msg));
  { c with gates = Array.append c.gates [| g |] }

let concat a b =
  if a.n_qubits <> b.n_qubits then
    invalid_arg "Circuit.concat: register size mismatch";
  {
    n_qubits = a.n_qubits;
    n_clbits = max a.n_clbits b.n_clbits;
    gates = Array.append a.gates b.gates;
  }

let map_qubits f c =
  let image = Array.make c.n_qubits false in
  for q = 0 to c.n_qubits - 1 do
    let q' = f q in
    if q' < 0 || q' >= c.n_qubits then
      invalid_arg "Circuit.map_qubits: image out of range";
    if image.(q') then invalid_arg "Circuit.map_qubits: not injective";
    image.(q') <- true
  done;
  { c with gates = Array.map (Gate.remap f) c.gates }

let reverse c =
  let unitary =
    Array.to_list c.gates
    |> List.filter (function Gate.Measure _ -> false | _ -> true)
  in
  let reversed = List.rev_map Gate.dagger unitary in
  { c with gates = Array.of_list reversed }

let filter p c =
  { c with gates = Array.of_list (List.filter p (Array.to_list c.gates)) }

let two_qubit_interactions c =
  Array.to_list c.gates |> List.filter_map Gate.two_qubit_pair

let used_qubits c =
  Array.to_list c.gates
  |> List.concat_map Gate.qubits
  |> List.sort_uniq Int.compare

(* Per-qubit gate sequences determine the circuit as a labelled partial
   order: the dependency DAG has an edge between consecutive gates on each
   qubit, so equal sequences on every qubit imply the same DAG with the
   same labels, and any two topological orders of one DAG yield the same
   sequences. *)
let canonical_key c =
  let buffers = Array.init c.n_qubits (fun _ -> Buffer.create 64) in
  Array.iter
    (fun g ->
      let s = Gate.digest_string g in
      List.iter
        (fun q ->
          Buffer.add_string buffers.(q) s;
          Buffer.add_char buffers.(q) '\n')
        (Gate.qubits g))
    c.gates;
  let whole = Buffer.create 256 in
  Buffer.add_string whole (string_of_int c.n_qubits);
  Array.iteri
    (fun q b ->
      Buffer.add_string whole (Printf.sprintf "#q%d:" q);
      Buffer.add_buffer whole b)
    buffers;
  Digest.to_hex (Digest.string (Buffer.contents whole))

(* Strict program-order digest. Routing output is NOT invariant under
   commuting-gate interleaving (front-layer FIFO order follows gate
   indices), so memoization keys must hash the exact array order —
   canonical_key would conflate circuits that route differently. Gates
   serialise via [Gate.digest_string] (hex-float parameters): %g's 6
   significant digits would collide rotation angles differing only in
   lower bits, and a cache hit is trusted without re-verification. *)
let digest c =
  let whole = Buffer.create 256 in
  Buffer.add_string whole (string_of_int c.n_qubits);
  Buffer.add_char whole '/';
  Buffer.add_string whole (string_of_int c.n_clbits);
  Array.iter
    (fun g ->
      Buffer.add_char whole '\n';
      Buffer.add_string whole (Gate.digest_string g))
    c.gates;
  Digest.to_hex (Digest.string (Buffer.contents whole))

let equal_up_to_reordering a b =
  a.n_qubits = b.n_qubits && String.equal (canonical_key a) (canonical_key b)

let equal a b =
  a.n_qubits = b.n_qubits
  && Array.length a.gates = Array.length b.gates
  && Array.for_all2 Gate.equal a.gates b.gates

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit (%d qubits, %d gates)" c.n_qubits
    (Array.length c.gates);
  Array.iter (fun g -> Format.fprintf ppf "@,  %a" Gate.pp g) c.gates;
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
