module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

let trivial coupling circuit =
  Mapping.identity
    ~n_logical:(Circuit.n_qubits circuit)
    ~n_physical:(Coupling.n_qubits coupling)

let random ~state coupling circuit =
  Mapping.random ~state
    ~n_logical:(Circuit.n_qubits circuit)
    ~n_physical:(Coupling.n_qubits coupling)

let degree_matching coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  (* interaction degree: number of distinct partners of each logical qubit *)
  let partners = Array.make n_logical [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b partners.(a)) then partners.(a) <- b :: partners.(a);
      if not (List.mem a partners.(b)) then partners.(b) <- a :: partners.(b))
    (Circuit.two_qubit_interactions circuit);
  let by_rank degree count =
    List.init count Fun.id
    |> List.sort (fun a b ->
           match compare (degree b) (degree a) with
           | 0 -> compare a b
           | c -> c)
  in
  let logical_ranked = by_rank (fun q -> List.length partners.(q)) n_logical in
  let physical_ranked = by_rank (Coupling.degree coupling) n_physical in
  let l2p = Array.make n_logical (-1) in
  List.iteri
    (fun rank q ->
      l2p.(q) <- List.nth physical_ranked rank)
    logical_ranked;
  Mapping.of_array ~n_physical l2p

let interaction_greedy coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical > n_physical then
    invalid_arg "Initial_mapping.interaction_greedy: circuit wider than device";
  let dist = Coupling.distance_matrix coupling in
  let l2p = Array.make n_logical (-1) in
  let taken = Array.make n_physical false in
  let free_degree p =
    List.length
      (List.filter (fun p' -> not taken.(p')) (Coupling.neighbors coupling p))
  in
  let place q p =
    l2p.(q) <- p;
    taken.(p) <- true
  in
  let nearest_free_to p0 =
    let best = ref (-1) and best_d = ref max_int in
    for p = 0 to n_physical - 1 do
      if (not taken.(p)) && dist.(p0).(p) < !best_d then begin
        best := p;
        best_d := dist.(p0).(p)
      end
    done;
    !best
  in
  List.iter
    (fun (q1, q2) ->
      match (l2p.(q1) >= 0, l2p.(q2) >= 0) with
      | true, true -> ()
      | true, false ->
        let p = nearest_free_to l2p.(q1) in
        if p >= 0 then place q2 p
      | false, true ->
        let p = nearest_free_to l2p.(q2) in
        if p >= 0 then place q1 p
      | false, false ->
        (* pick the free edge whose endpoints keep the most free
           neighbours, so later gates still find room *)
        let best = ref None and best_score = ref (-1) in
        List.iter
          (fun (a, b) ->
            if (not taken.(a)) && not taken.(b) then begin
              let score = free_degree a + free_degree b in
              if score > !best_score then begin
                best := Some (a, b);
                best_score := score
              end
            end)
          (Coupling.edges coupling);
        (match !best with
        | Some (a, b) ->
          place q1 a;
          place q2 b
        | None -> ()))
    (Circuit.two_qubit_interactions circuit);
  (* leftovers: first free physical qubit *)
  let next_free = ref 0 in
  Array.iteri
    (fun q p ->
      if p < 0 then begin
        while taken.(!next_free) do
          incr next_free
        done;
        place q !next_free
      end)
    l2p;
  Mapping.of_array ~n_physical l2p

(* Greedy subgraph-isomorphism-anchored placement (Li/Zhou/Feng,
   arXiv:2004.07138): treat the circuit's weighted interaction graph as
   a pattern to embed into the coupling graph. Logical qubits are
   anchored in order of connection strength to the already-placed set
   (the classic greedy isomorphism expansion order); each is placed on
   the free physical qubit minimising the weighted distance to its
   placed interaction partners, so wherever an exact embedding exists
   the greedy walk tends to find distance-1 homes for every edge. *)
let iso_anchored coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical > n_physical then
    invalid_arg "Initial_mapping.iso_anchored: circuit wider than device";
  let dist = Coupling.distance_matrix coupling in
  (* weighted interaction graph: w.(q1).(q2) = number of two-qubit
     gates between q1 and q2 (dense: circuits here are narrow) *)
  let w = Array.make_matrix n_logical n_logical 0 in
  List.iter
    (fun (a, b) ->
      if a <> b then begin
        w.(a).(b) <- w.(a).(b) + 1;
        w.(b).(a) <- w.(b).(a) + 1
      end)
    (Circuit.two_qubit_interactions circuit);
  let strength q = Array.fold_left ( + ) 0 w.(q) in
  let l2p = Array.make n_logical (-1) in
  let taken = Array.make n_physical false in
  let place q p =
    l2p.(q) <- p;
    taken.(p) <- true
  in
  (* anchor: the most-connected logical qubit onto the highest-degree
     physical qubit — the densest pattern vertex gets the most room *)
  let anchor_q = ref 0 in
  for q = 1 to n_logical - 1 do
    if strength q > strength !anchor_q then anchor_q := q
  done;
  if n_logical > 0 then begin
    let anchor_p = ref 0 in
    for p = 1 to n_physical - 1 do
      if Coupling.degree coupling p > Coupling.degree coupling !anchor_p then
        anchor_p := p
    done;
    place !anchor_q !anchor_p
  end;
  (* expansion: repeatedly place the unplaced qubit with the strongest
     ties to the placed set, on the free physical qubit minimising the
     weighted distance to its placed partners; ties break by index *)
  for _ = 2 to n_logical do
    let best_q = ref (-1) and best_tie = ref (-1, -1) in
    for q = 0 to n_logical - 1 do
      if l2p.(q) < 0 then begin
        let tie = ref 0 in
        for r = 0 to n_logical - 1 do
          if l2p.(r) >= 0 then tie := !tie + w.(q).(r)
        done;
        (* order: strongest tie to placed set, then total strength *)
        let key = (!tie, strength q) in
        if !best_q < 0 || key > !best_tie then begin
          best_q := q;
          best_tie := key
        end
      end
    done;
    let q = !best_q in
    let best_p = ref (-1) and best_cost = ref max_int in
    for p = 0 to n_physical - 1 do
      if not taken.(p) then begin
        let cost = ref 0 in
        for r = 0 to n_logical - 1 do
          if l2p.(r) >= 0 && w.(q).(r) > 0 then
            cost := !cost + (w.(q).(r) * dist.(p).(l2p.(r)))
        done;
        (* isolated qubit (no placed partners): stay near the anchor so
           the placement remains compact *)
        if !cost = 0 && l2p.(!anchor_q) >= 0 && l2p.(!anchor_q) <> p then
          cost := dist.(p).(l2p.(!anchor_q));
        if !cost < !best_cost then begin
          best_p := p;
          best_cost := !cost
        end
      end
    done;
    place q !best_p
  done;
  Mapping.of_array ~n_physical l2p

(* ------------------------------------------------------------------ *)
(* Seeder registry                                                     *)
(* ------------------------------------------------------------------ *)

module Seeder = struct
  type t = {
    name : string;
    description : string;
    derive : seed:int -> Coupling.t -> Circuit.t -> Mapping.t option;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8
  let register s = Hashtbl.replace registry s.name s
  let find n = Hashtbl.find_opt registry n

  let names () =
    Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort compare

  let find_suggest n =
    match find n with
    | Some s -> Ok s
    | None ->
      Error
        (Printf.sprintf "unknown seeder %S (available: %s)" n
           (String.concat ", " (names ())))

  let derive_fixed f = fun ~seed:_ coupling circuit -> Some (f coupling circuit)

  let reverse_traversal =
    {
      name = "reverse-traversal";
      description =
        "router-native seeding: random trial placements refined by the \
         router's own reverse traversals (SABRE Section IV-C2)";
      derive = (fun ~seed:_ _ _ -> None);
    }

  let random =
    {
      name = "random";
      description = "one uniform injective placement drawn from the config seed";
      derive =
        (fun ~seed coupling circuit ->
          Some
            (random ~state:(Random.State.make [| seed |]) coupling circuit));
    }

  let iso =
    {
      name = "iso";
      description =
        "greedy subgraph-isomorphism-anchored placement over the weighted \
         interaction graph (arXiv:2004.07138)";
      derive = derive_fixed iso_anchored;
    }

  let trivial_s =
    {
      name = "trivial";
      description = "identity placement (logical q on physical q)";
      derive = derive_fixed trivial;
    }

  let degree =
    {
      name = "degree";
      description = "interaction-degree rank matched to coupling-degree rank";
      derive = derive_fixed degree_matching;
    }

  let interaction =
    {
      name = "interaction";
      description = "greedy beginning-of-circuit adjacent placement";
      derive = derive_fixed interaction_greedy;
    }

  let () =
    List.iter register
      [ reverse_traversal; random; iso; trivial_s; degree; interaction ]
end
