module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Decompose = Quantum.Decompose
module Depth = Quantum.Depth
module Dag = Quantum.Dag

type failure =
  | Tracker of string
  | Accounting of { expected : int; actual : int }
  | Depth_out_of_bounds of { logical : int; routed : int; n_swaps : int }
  | Not_equivalent
  | Not_commuting_linearisation
  | Crash of string

let pp_failure ppf = function
  | Tracker msg -> Format.fprintf ppf "tracker: %s" msg
  | Accounting { expected; actual } ->
    Format.fprintf ppf
      "gate accounting: expected %d elementary gates (input + 3 per SWAP), \
       got %d"
      expected actual
  | Depth_out_of_bounds { logical; routed; n_swaps } ->
    Format.fprintf ppf
      "depth %d outside [%d, %d] (logical depth %d, %d SWAPs)" routed logical
      (((n_swaps + 1) * logical) + (3 * n_swaps))
      logical n_swaps
  | Not_equivalent -> Format.fprintf ppf "dense simulation: not equivalent"
  | Not_commuting_linearisation ->
    Format.fprintf ppf "not a linearisation of the commuting DAG"
  | Crash msg -> Format.fprintf ppf "crash: %s" msg

let failure_to_string f = Format.asprintf "%a" pp_failure f

let count_swaps c =
  List.fold_left
    (fun acc g -> match g with Gate.Swap _ -> acc + 1 | _ -> acc)
    0 (Circuit.gates c)

let tracker_err e = Error (Tracker (Format.asprintf "%a" Sim.Tracker.pp_error e))

let check_semantics ~commuting ~coupling ~logical ~initial ~final ~physical =
  if commuting then
    match Sim.Tracker.check_compliance ~coupling physical with
    | Error e -> tracker_err e
    | Ok () -> (
      match
        Sim.Tracker.unroute ~initial ~n_logical:(Circuit.n_qubits logical)
          physical
      with
      | Error e -> tracker_err e
      | Ok (recovered, _) ->
        if Dag.matches_linearization (Dag.of_circuit_commuting logical) recovered
        then Ok ()
        else Error Not_commuting_linearisation)
  else
    match
      Sim.Tracker.check ~coupling ~initial ~final ~logical ~physical ()
    with
    | Ok () -> Ok ()
    | Error e -> tracker_err e

let check ?(dense_max_qubits = 12) ?(states = 2) ?(commuting = false) ~coupling
    ~logical ~initial ~final ~physical () =
  let ( let* ) = Result.bind in
  let* () =
    check_semantics ~commuting ~coupling ~logical ~initial ~final ~physical
  in
  let n_swaps = count_swaps physical in
  let expected = Decompose.elementary_gate_count logical + (3 * n_swaps) in
  let actual = Decompose.elementary_gate_count physical in
  let* () =
    if expected = actual then Ok () else Error (Accounting { expected; actual })
  in
  let* () =
    if commuting then Ok ()
    else
      (* every logical dependency chain survives routing (through the
         inserted SWAPs), so depth never drops; upward, a critical path
         decomposes into at most n_swaps+1 runs of original gates — each
         a logical chain, since consecutive run gates share a physical
         qubit with no SWAP in between — separated by weight-3 SWAPs *)
      let dl = Depth.depth_swap3 logical in
      let dp = Depth.depth_swap3 physical in
      if dl <= dp && dp <= ((n_swaps + 1) * dl) + (3 * n_swaps) then Ok ()
      else Error (Depth_out_of_bounds { logical = dl; routed = dp; n_swaps })
  in
  if Coupling.n_qubits coupling <= dense_max_qubits then
    if Sim.Equivalence.routed_equivalent ~states ~initial ~final ~logical
         ~physical ()
    then Ok ()
    else Error Not_equivalent
  else Ok ()
