lib/hardware/devices.mli: Coupling
