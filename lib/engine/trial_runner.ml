type mode = Sequential | Domains of int

let default_domains () = max 1 (Domain.recommended_domain_count ())

let map ~mode jobs =
  match mode with
  | Sequential -> Array.map (fun f -> f ()) jobs
  | Domains d ->
    let n = Array.length jobs in
    if n = 0 then [||]
    else begin
      let d = max 1 (min d n) in
      let results = Array.make n None in
      (* round-robin striping: domain k owns trials k, k+d, k+2d, ...
         Each slot is written by exactly one domain, so the plain array
         needs no synchronisation. *)
      let worker k () =
        let i = ref k in
        while !i < n do
          results.(!i) <- Some (jobs.(!i) ());
          i := !i + d
        done
      in
      let domains = List.init d (fun k -> Domain.spawn (worker k)) in
      let first_error =
        List.fold_left
          (fun err dom ->
            match Domain.join dom with
            | () -> err
            | exception e -> (match err with None -> Some e | s -> s))
          None domains
      in
      (match first_error with Some e -> raise e | None -> ());
      Array.map
        (function Some r -> r | None -> assert false (* joined without error *))
        results
    end

let best ~better = function
  | [||] -> invalid_arg "Trial_runner.best: no trials"
  | results ->
    let acc = ref results.(0) in
    for i = 1 to Array.length results - 1 do
      if better results.(i) !acc then acc := results.(i)
    done;
    !acc
