module Mapping = Sabre_core.Mapping

(** Trial seeding (paper Section IV-A initial mapping).

    Populates [trial_mappings], one seed mapping per trial. When the
    context carries a caller-fixed initial mapping it is the single
    trial regardless of strategy. Otherwise [Random_trials] (the
    paper's flow) draws [config.trials] injective placements from a
    deterministic stream seeded with [config.seed] — trial [i] always
    receives the [i]-th mapping of that stream, so sequential and
    Domain-parallel runs see identical seeds. The static strategies
    from the paper's Section VII comparison produce one deterministic
    trial each. *)

type strategy =
  | Random_trials
  | Trivial  (** logical qubit q on physical qubit q *)
  | Degree  (** Siraichi-style degree matching *)
  | Interaction  (** greedy beginning-of-circuit placement *)
  | Seeded of Sabre_core.Initial_mapping.Seeder.t
      (** a registered seeder: [derive = Some m] pins one trial to [m];
          [derive = None] (router-native seeding, e.g.
          ["reverse-traversal"]) falls through to [Random_trials] *)

val pass : ?strategy:strategy -> unit -> Pass.t
