exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | String of string
  | LBracket
  | RBracket
  | LParen
  | RParen
  | Comma
  | Semicolon
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | LBrace
  | RBrace

type lexed = { token : token; line : int }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let push t = tokens := { token = t; line = !line } :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '"' then begin
      let start = !pos + 1 in
      let stop = ref start in
      while !stop < n && src.[!stop] <> '"' do
        incr stop
      done;
      if !stop >= n then fail !line "unterminated string literal";
      push (String (String.sub src start (!stop - start)));
      pos := !stop + 1
    end
    else if is_digit c || (c = '.' && !pos + 1 < n && is_digit src.[!pos + 1])
    then begin
      let start = !pos in
      while
        !pos < n
        && (is_digit src.[!pos]
           || src.[!pos] = '.'
           || src.[!pos] = 'e'
           || src.[!pos] = 'E'
           || ((src.[!pos] = '+' || src.[!pos] = '-')
              && !pos > start
              && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> push (Number f)
      | None -> fail !line "malformed number %S" text
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      push (Ident (String.sub src start (!pos - start)))
    end
    else begin
      (match c with
      | '[' -> push LBracket
      | ']' -> push RBracket
      | '(' -> push LParen
      | ')' -> push RParen
      | ',' -> push Comma
      | ';' -> push Semicolon
      | '+' -> push Plus
      | '{' -> push LBrace
      | '}' -> push RBrace
      | '*' -> push Star
      | '/' -> push Slash
      | '^' -> push Caret
      | '-' ->
        if !pos + 1 < n && src.[!pos + 1] = '>' then begin
          push Arrow;
          incr pos
        end
        else push Minus
      | _ -> fail !line "unexpected character %C" c);
      incr pos
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { mutable rest : lexed list; mutable last_line : int }

let peek st = match st.rest with [] -> None | t :: _ -> Some t

let next st =
  match st.rest with
  | [] -> fail st.last_line "unexpected end of input"
  | t :: rest ->
    st.rest <- rest;
    st.last_line <- t.line;
    t

let expect st tok what =
  let t = next st in
  if t.token <> tok then fail t.line "expected %s" what

let expect_ident st =
  let t = next st in
  match t.token with
  | Ident s -> (s, t.line)
  | _ -> fail t.line "expected identifier"

let expect_nat st =
  let t = next st in
  match t.token with
  | Number f when Float.is_integer f && f >= 0.0 -> int_of_float f
  | _ -> fail t.line "expected a non-negative integer"

(* ------------------------------------------------------------------ *)
(* Parameter expression evaluation                                     *)
(* ------------------------------------------------------------------ *)

(* Parameter expressions are parsed to an AST so that user-defined gate
   bodies can reference formal parameters; top-level applications are
   evaluated in the empty environment.

   expr := term (('+'|'-') term)*
   term := factor (('*'|'/') factor)*
   factor := atom ('^' factor)?
   atom := number | 'pi' | ident | '-' atom | '(' expr ')' *)
type expr =
  | Num of float
  | Var of string * int  (* name, line (for error reporting) *)
  | Neg of expr
  | Bin of [ `Add | `Sub | `Mul | `Div | `Pow ] * expr * expr

let rec parse_expr st =
  let v = ref (parse_term st) in
  let rec loop () =
    match peek st with
    | Some { token = Plus; _ } ->
      ignore (next st);
      v := Bin (`Add, !v, parse_term st);
      loop ()
    | Some { token = Minus; _ } ->
      ignore (next st);
      v := Bin (`Sub, !v, parse_term st);
      loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_term st =
  let v = ref (parse_factor st) in
  let rec loop () =
    match peek st with
    | Some { token = Star; _ } ->
      ignore (next st);
      v := Bin (`Mul, !v, parse_factor st);
      loop ()
    | Some { token = Slash; _ } ->
      ignore (next st);
      v := Bin (`Div, !v, parse_factor st);
      loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_factor st =
  let base = parse_atom st in
  match peek st with
  | Some { token = Caret; _ } ->
    ignore (next st);
    Bin (`Pow, base, parse_factor st)
  | _ -> base

and parse_atom st =
  let t = next st in
  match t.token with
  | Number f -> Num f
  | Ident "pi" -> Num Float.pi
  | Ident name -> Var (name, t.line)
  | Minus -> Neg (parse_atom st)
  | LParen ->
    let v = parse_expr st in
    expect st RParen ")";
    v
  | _ -> fail t.line "expected a parameter expression"

let rec eval_expr env = function
  | Num f -> f
  | Var (name, line) -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> fail line "unknown parameter %S" name)
  | Neg e -> -.eval_expr env e
  | Bin (op, a, b) -> (
    let x = eval_expr env a and y = eval_expr env b in
    match op with
    | `Add -> x +. y
    | `Sub -> x -. y
    | `Mul -> x *. y
    | `Div -> x /. y
    | `Pow -> Float.pow x y)

(* ------------------------------------------------------------------ *)
(* Program parsing                                                     *)
(* ------------------------------------------------------------------ *)

type register = { base : int; size : int }

(* One statement of a user-defined gate body: callee name, parameter
   expressions over the definition's formals, and formal qubit names. *)
type body_stmt = { callee : string; callee_line : int; exprs : expr list; qargs : string list }

type gate_def = { formal_params : string list; formal_qubits : string list; body : body_stmt list }

type env = {
  qregs : (string, register) Hashtbl.t;
  cregs : (string, register) Hashtbl.t;
  defs : (string, gate_def) Hashtbl.t;
  mutable n_qubits : int;
  mutable n_clbits : int;
  mutable program : Gate.t list;  (* reversed *)
}

(* A qubit argument: either one qubit or a whole register (broadcast). *)
type arg = Qubit of int | Whole of register

let parse_arg env st =
  let name, line = expect_ident st in
  let reg =
    match Hashtbl.find_opt env.qregs name with
    | Some r -> r
    | None -> fail line "unknown quantum register %S" name
  in
  match peek st with
  | Some { token = LBracket; _ } ->
    ignore (next st);
    let idx = expect_nat st in
    expect st RBracket "]";
    if idx >= reg.size then fail line "index %d out of bounds for %S" idx name;
    Qubit (reg.base + idx)
  | _ -> Whole reg

let parse_carg env st =
  let name, line = expect_ident st in
  let reg =
    match Hashtbl.find_opt env.cregs name with
    | Some r -> r
    | None -> fail line "unknown classical register %S" name
  in
  match peek st with
  | Some { token = LBracket; _ } ->
    ignore (next st);
    let idx = expect_nat st in
    expect st RBracket "]";
    if idx >= reg.size then fail line "index %d out of bounds for %S" idx name;
    Qubit (reg.base + idx)
  | _ -> Whole reg

let parse_params st =
  match peek st with
  | Some { token = LParen; _ } ->
    ignore (next st);
    let rec loop acc =
      let v = parse_expr st in
      match (next st).token with
      | Comma -> loop (v :: acc)
      | RParen -> List.rev (v :: acc)
      | _ -> fail st.last_line "expected , or ) in parameter list"
    in
    loop []
  | _ -> []

let parse_args env st =
  let rec loop acc =
    let a = parse_arg env st in
    match peek st with
    | Some { token = Comma; _ } ->
      ignore (next st);
      loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  loop []

let emit env g = env.program <- g :: env.program

let single_kind_of line name params =
  let p i = List.nth params i in
  match (name, List.length params) with
  | "id", 0 -> Gate.I
  | "h", 0 -> Gate.H
  | "x", 0 -> Gate.X
  | "y", 0 -> Gate.Y
  | "z", 0 -> Gate.Z
  | "s", 0 -> Gate.S
  | "sdg", 0 -> Gate.Sdg
  | "t", 0 -> Gate.T
  | "tdg", 0 -> Gate.Tdg
  | "rx", 1 -> Gate.Rx (p 0)
  | "ry", 1 -> Gate.Ry (p 0)
  | "rz", 1 -> Gate.Rz (p 0)
  | "u1", 1 -> Gate.U1 (p 0)
  | "u2", 2 -> Gate.U2 (p 0, p 1)
  | ("u3" | "u" | "U"), 3 -> Gate.U3 (p 0, p 1, p 2)
  | _, k -> fail line "gate %S with %d parameter(s) is not supported" name k

let one_qubit line = function
  | Qubit q -> q
  | Whole _ -> fail line "broadcast is only supported for single-qubit gates"

(* Apply a gate given already-evaluated parameters and resolved qubit
   arguments. User-defined gates expand recursively; recursion is finite
   because a definition may only call gates defined before it. *)
let rec apply_gate env line name params args =
  match (name, args) with
  | ("cx" | "CX"), [ a; b ] ->
    emit env (Gate.Cnot (one_qubit line a, one_qubit line b))
  | "cz", [ a; b ] -> emit env (Gate.Cz (one_qubit line a, one_qubit line b))
  | "swap", [ a; b ] ->
    emit env (Gate.Swap (one_qubit line a, one_qubit line b))
  | ("ccx" | "toffoli"), [ a; b; c ] ->
    List.iter (emit env)
      (Decompose.toffoli (one_qubit line a) (one_qubit line b)
         (one_qubit line c))
  | ("cx" | "CX" | "cz" | "swap"), _ ->
    fail line "gate %S expects exactly 2 qubit arguments" name
  | ("ccx" | "toffoli"), _ ->
    fail line "gate %S expects exactly 3 qubit arguments" name
  | _, _ when Hashtbl.mem env.defs name ->
    let def = Hashtbl.find env.defs name in
    if List.length params <> List.length def.formal_params then
      fail line "gate %S expects %d parameter(s)" name
        (List.length def.formal_params);
    if List.length args <> List.length def.formal_qubits then
      fail line "gate %S expects %d qubit argument(s)" name
        (List.length def.formal_qubits);
    let qubit_binding =
      List.combine def.formal_qubits (List.map (one_qubit line) args)
    in
    let param_binding = List.combine def.formal_params params in
    List.iter
      (fun stmt ->
        let callee_params =
          List.map (eval_expr param_binding) stmt.exprs
        in
        let callee_args =
          List.map
            (fun formal ->
              match List.assoc_opt formal qubit_binding with
              | Some q -> Qubit q
              | None ->
                fail stmt.callee_line "unknown qubit argument %S" formal)
            stmt.qargs
        in
        apply_gate env stmt.callee_line stmt.callee callee_params callee_args)
      def.body
  | _, [ Qubit q ] -> emit env (Gate.Single (single_kind_of line name params, q))
  | _, [ Whole reg ] ->
    let kind = single_kind_of line name params in
    for i = 0 to reg.size - 1 do
      emit env (Gate.Single (kind, reg.base + i))
    done
  | _, _ -> fail line "gate %S expects exactly 1 qubit argument" name

(* gate name(p, ...) q, ... { callee(expr, ...) q, ...; ... } *)
let parse_gate_def env st =
  let name, line = expect_ident st in
  if Hashtbl.mem env.defs name then fail line "gate %S defined twice" name;
  let formal_params =
    match peek st with
    | Some { token = LParen; _ } ->
      ignore (next st);
      (match peek st with
      | Some { token = RParen; _ } ->
        ignore (next st);
        []
      | _ ->
        let rec loop acc =
          let p, _ = expect_ident st in
          match (next st).token with
          | Comma -> loop (p :: acc)
          | RParen -> List.rev (p :: acc)
          | _ -> fail st.last_line "expected , or ) in formal parameters"
        in
        loop [])
    | _ -> []
  in
  let rec qubit_formals acc =
    let q, _ = expect_ident st in
    match peek st with
    | Some { token = Comma; _ } ->
      ignore (next st);
      qubit_formals (q :: acc)
    | _ -> List.rev (q :: acc)
  in
  let formal_qubits = qubit_formals [] in
  (match (next st).token with
  | LBrace -> ()
  | _ -> fail st.last_line "expected { to open the gate body");
  let body = ref [] in
  let rec body_loop () =
    match peek st with
    | Some { token = RBrace; _ } -> ignore (next st)
    | Some _ ->
      let callee, callee_line = expect_ident st in
      if callee = "barrier" then begin
        (* barriers inside gate bodies only constrain scheduling of the
           expansion; accept and drop them *)
        let rec skip () =
          match (next st).token with
          | Semicolon -> ()
          | _ -> skip ()
        in
        skip ();
        body_loop ()
      end
      else begin
        let exprs =
          match peek st with
          | Some { token = LParen; _ } ->
            ignore (next st);
            let rec loop acc =
              let e = parse_expr st in
              match (next st).token with
              | Comma -> loop (e :: acc)
              | RParen -> List.rev (e :: acc)
              | _ -> fail st.last_line "expected , or ) in parameter list"
            in
            loop []
          | _ -> []
        in
        let rec qargs acc =
          let q, _ = expect_ident st in
          match (next st).token with
          | Comma -> qargs (q :: acc)
          | Semicolon -> List.rev (q :: acc)
          | _ -> fail st.last_line "expected , or ; in gate body"
        in
        let qargs = qargs [] in
        body := { callee; callee_line; exprs; qargs } :: !body;
        body_loop ()
      end
    | None -> fail st.last_line "unterminated gate body"
  in
  body_loop ();
  Hashtbl.add env.defs name
    { formal_params; formal_qubits; body = List.rev !body }

let parse_statement env st =
  let name, line = expect_ident st in
  match name with
  | "OPENQASM" ->
    let _version = eval_expr [] (parse_expr st) in
    expect st Semicolon ";"
  | "include" ->
    let t = next st in
    (match t.token with
    | String _ -> ()
    | _ -> fail t.line "include expects a string literal");
    expect st Semicolon ";"
  | "qreg" | "creg" ->
    let reg_name, rline = expect_ident st in
    expect st LBracket "[";
    let size = expect_nat st in
    expect st RBracket "]";
    expect st Semicolon ";";
    let table, base =
      if name = "qreg" then (env.qregs, env.n_qubits)
      else (env.cregs, env.n_clbits)
    in
    if Hashtbl.mem table reg_name then
      fail rline "register %S declared twice" reg_name;
    Hashtbl.add table reg_name { base; size };
    if name = "qreg" then env.n_qubits <- env.n_qubits + size
    else env.n_clbits <- env.n_clbits + size
  | "barrier" ->
    let args = parse_args env st in
    expect st Semicolon ";";
    let qs =
      List.concat_map
        (function
          | Qubit q -> [ q ]
          | Whole reg -> List.init reg.size (fun i -> reg.base + i))
        args
    in
    emit env (Gate.Barrier qs)
  | "measure" ->
    let src = parse_arg env st in
    expect st Arrow "->";
    let dst = parse_carg env st in
    expect st Semicolon ";";
    (match (src, dst) with
    | Qubit q, Qubit c -> emit env (Gate.Measure (q, c))
    | Whole qr, Whole cr when qr.size = cr.size ->
      for i = 0 to qr.size - 1 do
        emit env (Gate.Measure (qr.base + i, cr.base + i))
      done
    | _ -> fail line "measure arguments must both be bits or equal-size registers")
  | "gate" -> parse_gate_def env st
  | "opaque" ->
    (* declaration without body: consume through the semicolon; any later
       application will fail as an unknown gate *)
    let rec skip () =
      match (next st).token with Semicolon -> () | _ -> skip ()
    in
    skip ()
  | _ ->
    let params = List.map (eval_expr []) (parse_params st) in
    let args = parse_args env st in
    expect st Semicolon ";";
    apply_gate env line name params args

let of_string src =
  let st = { rest = tokenize src; last_line = 1 } in
  let env =
    {
      qregs = Hashtbl.create 4;
      cregs = Hashtbl.create 4;
      defs = Hashtbl.create 4;
      n_qubits = 0;
      n_clbits = 0;
      program = [];
    }
  in
  while peek st <> None do
    parse_statement env st
  done;
  Circuit.create ~n_qubits:env.n_qubits ~n_clbits:(max env.n_clbits 1)
    (List.rev env.program)

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  of_string src

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

(* %.17g guarantees float round-tripping (17 significant digits suffice
   to reconstruct any IEEE-754 double exactly) *)
let pp_param ppf v = Format.fprintf ppf "%.17g" v

let pp_gate ppf g =
  let params = function
    | Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.U1 a -> [ a ]
    | Gate.U2 (a, b) -> [ a; b ]
    | Gate.U3 (a, b, c) -> [ a; b; c ]
    | _ -> []
  in
  match g with
  | Gate.Single (k, q) -> (
    match params k with
    | [] -> Format.fprintf ppf "%s q[%d];" (Gate.single_kind_name k) q
    | ps ->
      Format.fprintf ppf "%s(%a) q[%d];" (Gate.single_kind_name k)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           pp_param)
        ps q)
  | Gate.Cnot (a, b) -> Format.fprintf ppf "cx q[%d],q[%d];" a b
  | Gate.Cz (a, b) -> Format.fprintf ppf "cz q[%d],q[%d];" a b
  | Gate.Swap (a, b) -> Format.fprintf ppf "swap q[%d],q[%d];" a b
  | Gate.Barrier qs ->
    Format.fprintf ppf "barrier %a;"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs
  | Gate.Measure (q, c) -> Format.fprintf ppf "measure q[%d] -> c[%d];" q c

let to_string c =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "OPENQASM 2.0;@.include \"qelib1.inc\";@.";
  Format.fprintf ppf "qreg q[%d];@.creg c[%d];@." (Circuit.n_qubits c)
    (max (Circuit.n_clbits c) 1);
  List.iter (fun g -> Format.fprintf ppf "%a@." pp_gate g) (Circuit.gates c);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
