module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Noise = Hardware.Noise

let check = Alcotest.check
let tc = Alcotest.test_case

let test_uniform_defaults_match_fig2 () =
  let m = Noise.uniform (Devices.ibm_q20_tokyo ()) in
  check (Alcotest.float 1e-12) "1q" 4.43e-3 m.single_qubit_error.(0);
  check (Alcotest.float 1e-12) "2q" 3.00e-2 (Noise.edge_error m 0 1);
  check (Alcotest.float 1e-12) "readout" 8.74e-2 m.readout_error.(7);
  check (Alcotest.float 1e-12) "t1" 87.29 m.t1_us.(3);
  check (Alcotest.float 1e-12) "t2" 54.43 m.t2_us.(19)

let test_edge_error_symmetric_and_guarded () =
  let m = Noise.uniform (Devices.ibm_q20_tokyo ()) in
  check (Alcotest.float 1e-12) "symmetric" (Noise.edge_error m 0 1)
    (Noise.edge_error m 1 0);
  check Alcotest.bool "non-edge raises" true
    (match Noise.edge_error m 0 6 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_randomized_deterministic_and_varied () =
  let device = Devices.ibm_q20_tokyo () in
  let a = Noise.randomized ~seed:3 device in
  let b = Noise.randomized ~seed:3 device in
  let c = Noise.randomized ~seed:4 device in
  check Alcotest.bool "same seed same model" true
    (a.single_qubit_error = b.single_qubit_error
    && a.two_qubit_error = b.two_qubit_error);
  check Alcotest.bool "different seed differs" false
    (a.two_qubit_error = c.two_qubit_error);
  (* variability exists between edges *)
  let errors =
    List.map (fun (x, y) -> Noise.edge_error a x y) (Coupling.edges device)
  in
  check Alcotest.bool "not all equal" true
    (List.length (List.sort_uniq compare errors) > 1);
  (* all rates remain probabilities *)
  List.iter
    (fun e -> check Alcotest.bool "in (0, 0.5]" true (e > 0.0 && e <= 0.5))
    errors

let test_reliability_distance_metric () =
  let device = Devices.ibm_q20_tokyo () in
  let m = Noise.randomized ~seed:5 device in
  let d = Noise.swap_reliability_distance m in
  let n = Coupling.n_qubits device in
  for i = 0 to n - 1 do
    check (Alcotest.float 1e-12) "diag" 0.0 d.(i).(i);
    for j = 0 to n - 1 do
      check (Alcotest.float 1e-9) "symmetric" d.(i).(j) d.(j).(i);
      check Alcotest.bool "non-negative" true (d.(i).(j) >= 0.0);
      for k = 0 to n - 1 do
        check Alcotest.bool "triangle" true
          (d.(i).(j) <= d.(i).(k) +. d.(k).(j) +. 1e-9)
      done
    done
  done

let test_reliability_distance_prefers_good_edges () =
  (* triangle-free 4-line with one terrible middle edge: the weighted
     distance through it must exceed the hop-equivalent alternative *)
  let device = Devices.linear 4 in
  let m = Noise.uniform device in
  m.two_qubit_error.(1).(2) <- 0.4;
  m.two_qubit_error.(2).(1) <- 0.4;
  let d = Noise.swap_reliability_distance m in
  check Alcotest.bool "bad edge costlier" true (d.(1).(2) > 10.0 *. d.(0).(1))

let test_success_probability_monotone_in_gates () =
  let device = Devices.ibm_q20_tokyo () in
  let m = Noise.uniform device in
  let small = Circuit.create ~n_qubits:20 [ Gate.Cnot (0, 1) ] in
  let big =
    Circuit.create ~n_qubits:20
      [ Gate.Cnot (0, 1); Gate.Cnot (0, 1); Gate.Cnot (0, 1) ]
  in
  let ps = Noise.circuit_success_probability m small in
  let pb = Noise.circuit_success_probability m big in
  check Alcotest.bool "probabilities" true (ps > 0.0 && ps <= 1.0);
  check Alcotest.bool "more gates, less success" true (pb < ps)

let test_success_probability_counts_swap_as_three () =
  let device = Devices.ibm_q20_tokyo () in
  let m = Noise.uniform device in
  let swap = Circuit.create ~n_qubits:20 [ Gate.Swap (0, 1) ] in
  let cnots =
    Circuit.create ~n_qubits:20 (Quantum.Decompose.swap_to_cnots 0 1)
  in
  check (Alcotest.float 1e-9) "swap = 3 cnots"
    (Noise.circuit_success_probability m cnots)
    (Noise.circuit_success_probability m swap)

let test_duration () =
  let m = Noise.uniform (Devices.ibm_q20_tokyo ()) in
  (* serial: 1q (50) then 2q (300) on overlapping qubits *)
  let c =
    Circuit.create ~n_qubits:20 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ]
  in
  check (Alcotest.float 1e-9) "350ns" 350.0 (Noise.expected_duration_ns m c);
  (* parallel gates share the wall clock *)
  let p =
    Circuit.create ~n_qubits:20 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ]
  in
  check (Alcotest.float 1e-9) "300ns" 300.0 (Noise.expected_duration_ns m p)

let test_mixed_metric_bounds () =
  let device = Devices.ibm_q20_tokyo () in
  let m = Noise.randomized ~seed:11 device in
  (* lambda = 0 must reproduce plain hop distances exactly *)
  let hops = Coupling.distance_matrix device in
  let mixed0 = Noise.mixed_routing_distance ~lambda:0.0 m in
  for i = 0 to 19 do
    for j = 0 to 19 do
      check (Alcotest.float 1e-9) "lambda=0 is hops"
        (float_of_int hops.(i).(j))
        mixed0.(i).(j)
    done
  done;
  check Alcotest.bool "lambda out of range" true
    (match Noise.mixed_routing_distance ~lambda:1.5 m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_noise_aware_trial_selection () =
  (* With a noise model, the compiler ranks its random trials by
     estimated success probability, so it can never do worse than the
     same trials ranked by (swaps, depth) — and on variability-heavy
     devices it finds strictly better placements. All outputs must stay
     semantically correct. *)
  let device = Devices.ibm_q20_tokyo () in
  let wins = ref 0 in
  let trials = 5 in
  for seed = 1 to trials do
    let m = Noise.randomized ~seed ~spread:1.0 device in
    let circuit = Workloads.Ising.circuit ~steps:3 10 in
    let hop = Sabre.Compiler.run device circuit in
    let fid = Sabre.Compiler.run ~noise:m device circuit in
    Helpers.assert_compiler_result ~coupling:device ~logical:circuit fid
      "noise-aware";
    let p c = Noise.circuit_success_probability m c in
    if p fid.physical >= p hop.physical then incr wins
  done;
  check Alcotest.bool
    (Printf.sprintf "noise-aware wins or ties %d/%d" !wins trials)
    true (!wins = trials)

let suite =
  [
    tc "uniform defaults = Fig. 2" `Quick test_uniform_defaults_match_fig2;
    tc "edge error symmetric, guarded" `Quick test_edge_error_symmetric_and_guarded;
    tc "randomized deterministic & varied" `Quick
      test_randomized_deterministic_and_varied;
    tc "reliability distance is a metric" `Quick test_reliability_distance_metric;
    tc "reliability distance avoids bad edges" `Quick
      test_reliability_distance_prefers_good_edges;
    tc "success prob monotone" `Quick test_success_probability_monotone_in_gates;
    tc "swap counted as 3 cnots" `Quick test_success_probability_counts_swap_as_three;
    tc "durations" `Quick test_duration;
    tc "mixed metric bounds" `Quick test_mixed_metric_bounds;
    tc "noise-aware trial selection" `Slow test_noise_aware_trial_selection;
  ]
