(* The decay knob: trading gate count against circuit depth
   (paper Section IV-C3 and Figure 8).

   Sweeps the decay increment δ and prints, for each value, the routed
   gate count and depth normalised to the original circuit — the two
   axes of the paper's Figure 8.

   Run with:  dune exec examples/tradeoff_explorer.exe *)

module Depth = Quantum.Depth

let () =
  let device = Hardware.Devices.ibm_q20_tokyo () in
  let circuit = Workloads.Qft.circuit 14 in
  let g_ori =
    float_of_int (Quantum.Decompose.elementary_gate_count circuit)
  in
  let d_ori = float_of_int (Depth.depth circuit) in
  Format.printf
    "Sweeping the decay increment delta on qft_14 / IBM Q20 Tokyo@.@.";
  Format.printf "%-8s %-8s %-8s %-12s %-12s %s@." "delta" "swaps" "depth"
    "gates/g_ori" "depth/d_ori" "parallelism";
  List.iter
    (fun delta ->
      let config =
        { Sabre.Config.default with decay_increment = delta; trials = 3 }
      in
      let r = Sabre.Compiler.run ~config device circuit in
      let lowered = Quantum.Decompose.expand_swaps r.physical in
      let g = float_of_int (Quantum.Circuit.gate_count lowered) in
      let d = float_of_int (Depth.depth lowered) in
      Format.printf "%-8g %-8d %-8d %-12.3f %-12.3f %.2f@." delta
        r.stats.n_swaps (int_of_float d) (g /. g_ori) (d /. d_ori)
        (Depth.parallelism lowered))
    [ 0.0; 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1 ];
  Format.printf
    "@.Small delta minimises gates; larger delta spreads SWAPs across \
     idle qubits, lowering depth at the cost of extra gates — until an \
     excessive delta hurts both (the caveat at the end of Section V-C).@."
