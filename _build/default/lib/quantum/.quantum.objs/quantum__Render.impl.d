lib/quantum/render.ml: Array Buffer Circuit Dag Depth Gate List Printf String
