module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Routing_pass = Sabre.Routing_pass

let check = Alcotest.check
let tc = Alcotest.test_case

let single_pass = { Config.default with trials = 1; traversals = 1 }

let route ?(config = single_pass) coupling circuit mapping =
  Routing_pass.run config coupling (Dag.of_circuit circuit) mapping

let verify coupling logical mapping (r : Routing_pass.result) label =
  Helpers.assert_routed ~coupling
    ~initial:(Mapping.l2p_array mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical ~physical:r.physical label

let test_executable_circuit_untouched () =
  (* GHZ chain on a line device with identity mapping: zero swaps *)
  let device = Devices.linear 5 in
  let c = Workloads.Ghz.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  let r = route device c m in
  check Alcotest.int "no swaps" 0 r.n_swaps;
  check Alcotest.int "same gate count" (Circuit.length c)
    (Circuit.length r.physical);
  verify device c m r "untouched"

let test_single_blocked_gate () =
  (* CNOT between the two ends of a 3-qubit line: exactly 1 swap *)
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "one swap" 1 r.n_swaps;
  verify device c m r "single blocked"

let test_paper_fig3_example () =
  (* the paper's worked example: 1 SWAP suffices *)
  let device = Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ] in
  let c =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  let m = Mapping.identity ~n_logical:4 ~n_physical:4 in
  let r = route device c m in
  check Alcotest.int "exactly one swap (Fig. 3d)" 1 r.n_swaps;
  verify device c m r "fig3"

let test_single_qubit_gates_pass_through () =
  let device = Devices.linear 2 in
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Single (T, 1); Gate.Measure (0, 0) ]
  in
  let m = Mapping.identity ~n_logical:2 ~n_physical:2 in
  let r = route device c m in
  check Alcotest.int "all emitted" 3 (Circuit.length r.physical);
  check Alcotest.int "no swaps" 0 r.n_swaps

let test_remapping_respects_initial_mapping () =
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ] in
  (* q0 on P2, q1 on P1 — adjacent, no swap; gates must be remapped *)
  let m = Mapping.of_array ~n_physical:3 [| 2; 1 |] in
  let r = route device c m in
  check Alcotest.int "no swaps" 0 r.n_swaps;
  check Alcotest.bool "gates remapped" true
    (Circuit.equal r.physical
       (Circuit.create ~n_qubits:3 [ Gate.Single (H, 2); Gate.Cnot (2, 1) ]));
  verify device c m r "remapped"

let test_all_heuristics_correct () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  List.iter
    (fun h ->
      let r = route ~config:{ single_pass with heuristic = h } device c m in
      verify device c m r "heuristic variant";
      check Alcotest.bool "made progress" true (r.n_swaps >= 1))
    [ Config.Basic; Config.Lookahead; Config.Decay ]

let test_final_mapping_consistent () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:21 ~n:8 ~gates:80 in
  let m =
    Mapping.random ~state:(Random.State.make [| 3 |]) ~n_logical:8
      ~n_physical:20
  in
  let r = route device c m in
  (* every logical qubit still placed injectively *)
  let seen = Array.make 20 false in
  for q = 0 to 7 do
    let p = Mapping.to_physical r.final_mapping q in
    check Alcotest.bool "in range" true (p >= 0 && p < 20);
    check Alcotest.bool "injective" false seen.(p);
    seen.(p) <- true
  done;
  verify device c m r "final mapping"

let test_swap_count_matches_emitted () =
  let device = Devices.linear 6 in
  let c = Helpers.random_circuit ~seed:5 ~n:6 ~gates:60 in
  let m = Mapping.identity ~n_logical:6 ~n_physical:6 in
  let r = route device c m in
  let swaps_in_circuit =
    List.length
      (List.filter
         (function Gate.Swap _ -> true | _ -> false)
         (Circuit.gates r.physical))
  in
  check Alcotest.int "n_swaps accurate" r.n_swaps swaps_in_circuit;
  check Alcotest.int "output length" (Circuit.length c + r.n_swaps)
    (Circuit.length r.physical)

let test_star_device () =
  (* on a star all routes go through the hub *)
  let device = Devices.star 6 in
  let c = Workloads.Ghz.circuit 6 in
  let m = Mapping.identity ~n_logical:6 ~n_physical:6 in
  let r = route device c m in
  verify device c m r "star"

let test_ring_device () =
  let device = Devices.ring 8 in
  let c = Helpers.random_circuit ~seed:13 ~n:8 ~gates:100 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let r = route device c m in
  verify device c m r "ring"

let test_wider_device_than_circuit () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 6 in
  let m =
    Mapping.random ~state:(Random.State.make [| 77 |]) ~n_logical:6
      ~n_physical:20
  in
  let r = route device c m in
  verify device c m r "wide device"

let test_rejects_too_wide_circuit () =
  let device = Devices.linear 3 in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  check Alcotest.bool "raises" true
    (match route device c m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_mapping_arity_mismatch () =
  let device = Devices.linear 4 in
  let c = Workloads.Qft.circuit 3 in
  let m = Mapping.identity ~n_logical:4 ~n_physical:4 in
  check Alcotest.bool "raises" true
    (match route device c m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_decay_zero_equals_lookahead () =
  (* with δ = 0 every decay factor stays 1.0, so the Decay heuristic must
     reproduce the Lookahead heuristic exactly *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:41 ~n:12 ~gates:150 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  let lookahead =
    route ~config:{ single_pass with heuristic = Config.Lookahead } device c m
  in
  let decay0 =
    route
      ~config:
        { single_pass with heuristic = Config.Decay; decay_increment = 0.0 }
      device c m
  in
  check Alcotest.bool "identical outputs" true
    (Circuit.equal lookahead.physical decay0.physical)

let test_decay_knob_has_effect () =
  (* Section IV-C3: δ is a real knob — across a δ sweep the generated
     circuits differ in the (gates, depth) plane *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 12 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  let outcomes =
    List.map
      (fun delta ->
        let r =
          route
            ~config:
              { single_pass with heuristic = Config.Decay; decay_increment = delta }
            device c m
        in
        verify device c m r (Printf.sprintf "delta %g" delta);
        (r.n_swaps, Quantum.Depth.depth_swap3 r.physical))
      [ 0.0; 0.001; 0.01; 0.1 ]
  in
  check Alcotest.bool "sweep produces distinct circuits" true
    (List.length (List.sort_uniq compare outcomes) > 1)

let test_stall_fallback_terminates () =
  (* an adversarial stall limit of 1 forces the fallback path; routing
     must still terminate and be correct *)
  let device = Devices.linear 8 in
  let c = Helpers.random_circuit ~seed:9 ~n:8 ~gates:120 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let r = route ~config:{ single_pass with stall_limit = Some 1 } device c m in
  verify device c m r "fallback";
  check Alcotest.bool "fallback used" true (r.fallback_swaps > 0)

let test_one_swap_serves_two_front_gates () =
  (* the situation of paper Fig. 6: two blocked front-layer gates share a
     profitable SWAP; the heuristic must find the single SWAP that makes
     both executable rather than fixing them one by one.

     3x3 grid     0 1 2      front: CX(0,4), CX(2,4)
                  3 4 5      swapping P1<->P4 moves q4 between q0 and q2
                  6 7 8 *)
  let device = Devices.grid ~rows:3 ~cols:3 in
  let c =
    Circuit.create ~n_qubits:9 [ Gate.Cnot (0, 4); Gate.Cnot (2, 4) ]
  in
  let m = Mapping.identity ~n_logical:9 ~n_physical:9 in
  let r = route device c m in
  check Alcotest.int "single shared swap" 1 r.n_swaps;
  (match Circuit.gates r.physical with
  | [ Gate.Swap (a, b); _; _ ] ->
    check Alcotest.bool "swap on (1,4)" true
      ((a, b) = (1, 4) || (a, b) = (4, 1))
  | _ -> Alcotest.fail "expected swap then two cnots");
  verify device c m r "fig6"

let test_candidates_restricted_to_front () =
  (* Section IV-C1: an inserted SWAP always touches a physical qubit
     occupied by a front-layer operand *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:61 ~n:10 ~gates:120 in
  let m = Mapping.identity ~n_logical:10 ~n_physical:20 in
  let r = route device c m in
  (* replay the output: before each SWAP, compute the physical homes of
     the *next* blocked logical two-qubit gates; the SWAP must touch one *)
  let p2l = Array.make 20 (-1) in
  Array.iteri (fun l p -> p2l.(p) <- l) (Mapping.l2p_array m);
  let rec upcoming_gate = function
    | Gate.Swap _ :: rest -> upcoming_gate rest
    | g :: rest -> (
      match Gate.two_qubit_pair g with Some _ -> Some g | None -> upcoming_gate rest)
    | [] -> None
  in
  let rec walk gates =
    match gates with
    | [] -> ()
    | Gate.Swap (a, b) :: rest ->
      (* some logical qubit of some not-yet-executed two-qubit gate must
         sit on a or b — weaker but checkable proxy: the physical circuit
         still contains a two-qubit gate later, and the swap moves an
         occupied qubit *)
      check Alcotest.bool "swap moves an occupied qubit" true
        (p2l.(a) >= 0 || p2l.(b) >= 0);
      check Alcotest.bool "work remains after a swap" true
        (upcoming_gate rest <> None);
      let tmp = p2l.(a) in
      p2l.(a) <- p2l.(b);
      p2l.(b) <- tmp;
      walk rest
    | _ :: rest -> walk rest
  in
  walk (Circuit.gates r.physical)

let test_empty_circuit () =
  let device = Devices.linear 3 in
  let c = Circuit.empty 3 in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "empty output" 0 (Circuit.length r.physical);
  check Alcotest.int "no swaps" 0 r.n_swaps

let test_search_steps_counted () =
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "one step" 1 r.search_steps

let suite =
  [
    tc "executable circuit untouched" `Quick test_executable_circuit_untouched;
    tc "single blocked gate" `Quick test_single_blocked_gate;
    tc "paper Fig. 3 example" `Quick test_paper_fig3_example;
    tc "single-qubit gates pass through" `Quick test_single_qubit_gates_pass_through;
    tc "initial mapping respected" `Quick test_remapping_respects_initial_mapping;
    tc "all heuristics correct" `Quick test_all_heuristics_correct;
    tc "final mapping consistent" `Quick test_final_mapping_consistent;
    tc "swap count matches emitted" `Quick test_swap_count_matches_emitted;
    tc "star device" `Quick test_star_device;
    tc "ring device" `Quick test_ring_device;
    tc "wider device than circuit" `Quick test_wider_device_than_circuit;
    tc "rejects too-wide circuit" `Quick test_rejects_too_wide_circuit;
    tc "rejects mapping arity mismatch" `Quick test_rejects_mapping_arity_mismatch;
    tc "decay(0) = lookahead" `Quick test_decay_zero_equals_lookahead;
    tc "decay knob has effect" `Quick test_decay_knob_has_effect;
    tc "stall fallback terminates" `Quick test_stall_fallback_terminates;
    tc "one swap serves two front gates (Fig. 6)" `Quick
      test_one_swap_serves_two_front_gates;
    tc "swaps touch occupied qubits" `Quick test_candidates_restricted_to_front;
    tc "empty circuit" `Quick test_empty_circuit;
    tc "search steps counted" `Quick test_search_steps_counted;
  ]
