lib/core/stats.ml: Format Quantum
