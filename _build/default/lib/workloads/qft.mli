module Circuit = Quantum.Circuit

(** Quantum Fourier Transform circuits (the paper's "qft" benchmark
    family). Controlled-phase gates are decomposed into the elementary
    {Rz, CNOT} set (2 CNOTs + 3 Rz each, {!Quantum.Decompose.cphase}),
    matching the paper's IBM gate-set assumption. The trailing qubit
    reversal of the textbook QFT is omitted — it is pure relabelling and
    contributes nothing to routing. *)

val circuit : int -> Circuit.t
(** [circuit n] is the n-qubit QFT: n Hadamards and n(n−1)/2 controlled
    phases, i.e. n(n−1) CNOTs in elementary gates. Every qubit pair
    interacts, which makes QFT the adversarial dense workload of
    Section V. *)

val approximate : int -> degree:int -> Circuit.t
(** [approximate n ~degree] is the approximate QFT keeping only
    controlled phases between qubits at distance < [degree] — the
    standard AQFT; linear-depth interaction pattern for small degrees. *)
