(* End-to-end pipeline tests: OpenQASM in → route → lower → optimise →
   OpenQASM out → reparse → verify, across routers and devices. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping

let check = Alcotest.check
let tc = Alcotest.test_case

let bell_qasm =
  {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[4];
cx q[4],q[2];
cx q[2],q[1];
cx q[1],q[3];
measure q -> c;
|}

let test_qasm_route_qasm_roundtrip () =
  let logical = Quantum.Qasm.of_string bell_qasm in
  let device = Devices.ibm_q5_yorktown () in
  let r = Sabre.Compiler.run device logical in
  (* export and re-import the routed circuit *)
  let exported = Quantum.Qasm.to_string r.physical in
  let reimported = Quantum.Qasm.of_string exported in
  check Alcotest.bool "round trip" true (Circuit.equal r.physical reimported);
  (* the re-imported circuit still verifies against the source *)
  match
    Sim.Tracker.check ~coupling:device
      ~initial:(Mapping.l2p_array r.initial_mapping)
      ~final:(Mapping.l2p_array r.final_mapping)
      ~logical ~physical:reimported ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Sim.Tracker.pp_error e

let test_route_lower_optimize_verify () =
  (* SWAP lowering then peephole optimisation must keep the circuit
     compliant and unitarily equal to the un-optimised lowering *)
  let device = Devices.ibm_q20_tokyo () in
  let logical = Workloads.Qaoa.maxcut_instance ~seed:4 ~n:9 ~edge_prob:0.5 () in
  let r = Sabre.Compiler.run device logical in
  let lowered = Quantum.Decompose.expand_swaps r.physical in
  let optimised = Quantum.Optimize.run lowered in
  (match Sim.Tracker.check_compliance ~coupling:device optimised with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compliance: %a" Sim.Tracker.pp_error e);
  check Alcotest.bool "no growth" true
    (Circuit.length optimised <= Circuit.length lowered)

let test_all_routers_agree_semantically () =
  let device = Devices.ibm_q20_tokyo () in
  let logical = Workloads.Adder.circuit 4 in
  (* 10 qubits *)
  let check_routed ~initial ~final ~physical label =
    match
      Sim.Tracker.check ~coupling:device ~initial ~final ~logical ~physical ()
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %a" label Sim.Tracker.pp_error e
  in
  let sabre = Sabre.Compiler.run device logical in
  check_routed
    ~initial:(Mapping.l2p_array sabre.initial_mapping)
    ~final:(Mapping.l2p_array sabre.final_mapping)
    ~physical:sabre.physical "sabre";
  (match Baseline.Bka.run device logical with
  | Ok bka ->
    check_routed
      ~initial:(Mapping.l2p_array bka.initial_mapping)
      ~final:(Mapping.l2p_array bka.final_mapping)
      ~physical:bka.physical "bka"
  | Error f -> Alcotest.failf "bka: %a" Baseline.Bka.pp_failure f);
  let greedy = Baseline.Greedy_router.run device logical in
  check_routed
    ~initial:(Mapping.l2p_array greedy.initial_mapping)
    ~final:(Mapping.l2p_array greedy.final_mapping)
    ~physical:greedy.physical "greedy"

let test_grover_survives_routing () =
  (* route Grover onto a line and confirm the algorithm still finds the
     marked element by simulating the *physical* circuit *)
  let n = 3 in
  let marked = 5 in
  let logical =
    Circuit.filter
      (function Gate.Measure _ -> false | _ -> true)
      (Workloads.Grover.circuit ~marked n)
  in
  let device = Devices.linear (Circuit.n_qubits logical) in
  let r = Sabre.Compiler.run device logical in
  let s = Sim.Statevector.create (Coupling.n_qubits device) in
  Sim.Statevector.apply_circuit s r.physical;
  (* locate logical data qubits through the final mapping *)
  let final = Mapping.l2p_array r.final_mapping in
  let prob = ref 0.0 in
  let width = Coupling.n_qubits device in
  for k = 0 to (1 lsl width) - 1 do
    let matches =
      List.for_all
        (fun q ->
          let bit = (k lsr final.(q)) land 1 in
          bit = (marked lsr q) land 1)
        [ 0; 1; 2 ]
    in
    if matches then
      prob := !prob +. Complex.norm2 (Sim.Statevector.amplitude s k)
  done;
  check Alcotest.bool (Printf.sprintf "p=%.3f > 0.9" !prob) true (!prob > 0.9)

let test_ising_zero_overhead_pipeline () =
  (* the headline sim-benchmark property end to end, with QASM io *)
  let logical = Workloads.Ising.circuit ~steps:5 10 in
  let qasm = Quantum.Qasm.to_string logical in
  let reloaded = Quantum.Qasm.of_string qasm in
  let device = Devices.ibm_q20_tokyo () in
  let r = Sabre.Compiler.run device reloaded in
  check Alcotest.int "zero swaps through qasm io" 0 r.stats.n_swaps

let test_directed_full_pipeline () =
  (* QASM -> SABRE on QX4's symmetric collapse -> direction fix ->
     export -> reparse -> direction check *)
  let d = Hardware.Directed.ibm_qx4 () in
  let logical = Quantum.Qasm.of_string bell_qasm in
  let r = Sabre.Compiler.run (Hardware.Directed.underlying d) logical in
  let fixed = Hardware.Directed.fix_directions d r.physical in
  let reloaded = Quantum.Qasm.of_string (Quantum.Qasm.to_string fixed) in
  check Alcotest.bool "directions hold after io" true
    (match Hardware.Directed.check_directions d reloaded with
    | Ok () -> true
    | Error _ -> false)

let suite =
  [
    tc "qasm -> route -> qasm" `Quick test_qasm_route_qasm_roundtrip;
    tc "route -> lower -> optimise" `Quick test_route_lower_optimize_verify;
    tc "all routers semantically agree" `Quick test_all_routers_agree_semantically;
    tc "grover survives routing" `Quick test_grover_survives_routing;
    tc "ising zero-overhead pipeline" `Quick test_ising_zero_overhead_pipeline;
    tc "directed full pipeline" `Quick test_directed_full_pipeline;
  ]
