module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

(** Best-of-K portfolio routing: fan (router × seeder) entries across
    the {!Scheduler} pool, keep the best result per circuit.

    Every entry compiles the same circuit through the default pipeline
    — its router from the {!Router} registry, its seeder from
    {!Sabre_core.Initial_mapping.Seeder} (pinning one trial, or falling
    through to the router-native random-trials flow for
    ["reverse-traversal"]) — with trials sequential inside each entry,
    so the only parallelism is across entries and the outcome array is
    byte-identical at any domain count. The winner is the entry whose
    objective value is lowest, chosen with {!Trial_runner.best}'s
    first-best-wins tie-break: the earliest listed entry wins ties,
    whatever the schedule was.

    Per-entry failures (route/verify failure, invalid input) are
    captured as [Error] outcomes; the portfolio only raises
    {!Router.Route_failed} when {e every} entry failed. *)

type objective =
  | Swaps  (** fewest inserted SWAPs *)
  | Depth  (** lowest {!Quantum.Depth.depth_swap3} of the routed circuit *)
  | Success_prob
      (** highest {!Hardware.Noise.circuit_success_probability}; without
          an explicit noise model, [Noise.uniform] over the device *)

val objective_name : objective -> string
val objective_of_string : string -> (objective, string) result

type entry = {
  router : string;
  seeder : string;
  overrides : (string * string) list;
      (** per-entry {!Config.t} deltas, applied on top of the base
          config {!run} receives; [[]] keeps the base untouched *)
}

val entry_name : entry -> string
(** ["router"] when the seeder is the default router-native
    ["reverse-traversal"], ["router/seeder"] otherwise; override
    deltas are appended as [":key=val,..."]. *)

val override_keys : string list
(** The override keys {!apply_overrides} understands — the kebab-case
    names of every {!Config.t} field. *)

val apply_overrides :
  Config.t -> (string * string) list -> (Config.t, string) result
(** Fold entry overrides into a base config and re-validate. Unknown
    keys and malformed values are rejected with a message listing
    {!override_keys} (mirroring the registries' suggest-style errors). *)

val parse_spec : string -> (entry list, string) result
(** Parse a CLI spec: comma-separated [ROUTER[/SEEDER][:key=val,...]]
    items, e.g. ["sabre,hail/iso:trials=1,traversals=1,greedy"] —
    a fragment that is a pure [key=val] (no [:]) continues the previous
    entry's override list. Override keys and value syntax are checked
    at parse time against {!Config.default}; router/seeder name
    resolution happens in {!run} (the registries may still be filling
    up at parse time). *)

type member = {
  entry : entry;
  physical : Circuit.t;  (** hardware-compliant routed circuit *)
  initial : Mapping.t;  (** the winning trial's starting placement *)
  final : Mapping.t;
  n_swaps : int;
  depth : int;  (** [depth_swap3] of [physical] *)
  success_prob : float option;
      (** populated when a noise model was given or the objective is
          [Success_prob] *)
  stats : Stats.t;  (** [time_s] is 0 — members race, wall time is
                        meaningless per entry *)
}

type outcome = (member, string) result

val cancelled_msg : string
(** The [Error] payload a pruned or hard-cancelled entry carries in
    [outcomes] — lets callers distinguish "stopped early" from a real
    per-entry failure. *)

type entry_stat = {
  e_wall_s : float;
      (** wall seconds this entry's compile thunk ran (0 when it was
          skipped at claim time) *)
  e_cancelled : bool;
      (** the entry was stopped — hard cancel, claim-time skip, or
          incumbent-bound pruning — instead of finishing *)
}

type report = {
  objective : objective;
  outcomes : outcome array;  (** in entry order *)
  entry_stats : entry_stat array;  (** in entry order *)
  winner : int;  (** index into [outcomes]; always an [Ok] member *)
  wall_s : float;
  domains : int;  (** domains actually used (after clamping) *)
  race : bool;  (** incumbent-bound pruning was armed for this run *)
}

val winner_member : report -> member

val objective_value : objective -> member -> float
(** Lower is better for every objective (success probability is
    negated). Raises [Invalid_argument] for [Success_prob] on a member
    without a probability. *)

val run :
  ?domains:int ->
  ?objective:objective ->
  ?config:Config.t ->
  ?noise:Noise.t ->
  ?verify:bool ->
  ?race:bool ->
  ?cache:bool ->
  ?cancel:(unit -> bool) ->
  ?instrument:Instrument.t ->
  Coupling.t ->
  Circuit.t ->
  entry list ->
  report
(** [run coupling circuit entries] routes [circuit] once per entry and
    picks the winner. [domains] defaults to 1 (sequential); the winner
    and every completing entry's outcome are identical at any domain
    count.

    [race] (default [false]) arms incumbent-bound pruning via {!Race}:
    entries whose certified lower bound cannot beat a completed
    entry's objective value under the first-best tie-break are stopped
    early (their outcome becomes [Error] and their
    {!entry_stat.e_cancelled} is set), which never changes the winner
    — see {!Race} for the argument. [Success_prob] has no monotone
    bound and silently runs unpruned.

    [cache] (default [false]) opts each entry into the
    content-addressed {!Compile_cache}, keyed per entry by
    {!entry_name} (router, seeder and overrides all enter the key). A
    cached entry completes in O(1) and — under [race] — its
    [Race.complete] lands immediately, so the hit becomes an instant
    incumbent that prunes every entry it renders unbeatable. Entries
    running with a noise model ([Success_prob], or explicit [noise])
    are excluded from the cache and route normally.

    [cancel] is an external hard-stop probe (deadline expiry, client
    disconnect), polled at claim time and at every in-flight progress
    check; once it returns [true] the whole portfolio winds down
    cooperatively. When it fires before any entry completes, {!run}
    raises {!Router.Route_failed} (every outcome is the cancellation
    error).

    [instrument] receives every entry's pass events plus per-entry
    [portfolio.<entry>.swaps/.depth/.failed/.cancelled] counters and
    [portfolio.winner]; it must be domain-safe when [domains > 1].
    Raises [Invalid_argument] on an unknown router or seeder name
    (listing the registered names) or an invalid override, and
    {!Router.Route_failed} when every entry failed. *)
