type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  acc : Buffer.t;  (** bytes read but not yet delivered *)
  mutable start : int;  (** scan offset of the next undelivered frame *)
  mutable scanned : int;  (** newline search resumes here, >= start *)
  mutable at_eof : bool;
  mutable broken : bool;  (** overflowed: framing lost for good *)
}

let reader ?(chunk_bytes = 65536) fd =
  {
    fd;
    chunk = Bytes.create (max 1 chunk_bytes);
    acc = Buffer.create 4096;
    start = 0;
    scanned = 0;
    at_eof = false;
    broken = false;
  }

type line = Line of string | Overflow | Eof

(* Drop the delivered prefix so the buffer doesn't grow with the
   connection's lifetime traffic. *)
let compact r =
  if r.start > 0 then begin
    let rest = Buffer.sub r.acc r.start (Buffer.length r.acc - r.start) in
    Buffer.clear r.acc;
    Buffer.add_string r.acc rest;
    r.scanned <- max 0 (r.scanned - r.start);
    r.start <- 0
  end

(* Resume the newline search where the previous one stopped, so a frame
   arriving in many chunks is scanned once, not once per chunk. *)
let find_newline r =
  let n = Buffer.length r.acc in
  let rec go i =
    if i >= n then begin
      r.scanned <- n;
      None
    end
    else if Buffer.nth r.acc i = '\n' then Some i
    else go (i + 1)
  in
  go (max r.start r.scanned)

let take_line r upto =
  let s = Buffer.sub r.acc r.start (upto - r.start) in
  r.start <- upto + 1;
  r.scanned <- r.start;
  compact r;
  let len = String.length s in
  if len > 0 && s.[len - 1] = '\r' then String.sub s 0 (len - 1) else s

let rec read_line ?(max_bytes = max_int) r =
  if r.broken then Overflow
  else
    match find_newline r with
    | Some i -> Line (take_line r i)
    | None ->
      let pending = Buffer.length r.acc - r.start in
      if pending > max_bytes then begin
        r.broken <- true;
        Overflow
      end
      else if r.at_eof then
        if pending > 0 then begin
          let s = Buffer.sub r.acc r.start pending in
          r.start <- Buffer.length r.acc;
          compact r;
          Line s
        end
        else Eof
      else begin
        (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> r.at_eof <- true
        | n -> Buffer.add_subbytes r.acc r.chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> r.at_eof <- true);
        read_line ~max_bytes r
      end

let write_line fd s =
  let data = s ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ESHUTDOWN), _, _)
        ->
        false
  in
  go 0
