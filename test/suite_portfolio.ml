(* The portfolio engine and the seeder registry.

   Two contracts under test: every registered seeder produces a valid
   injective placement (or declines with [None], delegating to the
   router's native trials), and [Engine.Portfolio.run]'s winner
   dominates its members under each objective — deterministically,
   whatever the domain count. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Config = Sabre.Config
module Mapping = Sabre.Mapping
module Initial_mapping = Sabre.Initial_mapping
module Seeder = Sabre.Initial_mapping.Seeder
module Engine = Sabre.Engine
module Portfolio = Sabre.Engine.Portfolio

let check = Alcotest.check
let tc = Alcotest.test_case
let () = Baseline.Routers.register ()

let device = Devices.ibm_q20_tokyo ()

let zoo = [ "4mod5-v1_22"; "decod24-v2_43"; "4gt13_92"; "qft_10" ]
let zoo_circuit name = Lazy.force (Workloads.Suite.find name).circuit

let entries =
  [
    { Portfolio.router = "sabre"; seeder = "reverse-traversal"; overrides = [] };
    { Portfolio.router = "hail"; seeder = "iso"; overrides = [] };
    { Portfolio.router = "greedy"; seeder = "reverse-traversal"; overrides = [] };
  ]

(* ------------------------------------------------------------------ *)
(* Seeder registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_seeder_registry () =
  let names = Seeder.names () in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " registered") true
        (List.mem expected names))
    [ "reverse-traversal"; "random"; "iso"; "trivial"; "degree"; "interaction" ];
  check Alcotest.bool "names sorted" true (names = List.sort compare names);
  List.iter
    (fun n ->
      match Seeder.find n with
      | Some s ->
        check Alcotest.string (n ^ " finds itself") n s.Seeder.name;
        check Alcotest.bool (n ^ " describes itself") true
          (String.length s.Seeder.description > 0)
      | None -> Alcotest.failf "listed seeder %s not found" n)
    names;
  (match Seeder.find "warp" with
  | None -> ()
  | Some _ -> Alcotest.fail "bogus seeder resolved");
  match Seeder.find_suggest "warp" with
  | Ok _ -> Alcotest.fail "bogus seeder resolved via find_suggest"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "miss names the culprit" true (contains msg "warp");
    List.iter
      (fun n ->
        check Alcotest.bool ("suggestion lists " ^ n) true (contains msg n))
      [ "iso"; "reverse-traversal"; "random" ]

let assert_valid_mapping label n_logical coupling m =
  check Alcotest.int (label ^ ": n_logical") n_logical (Mapping.n_logical m);
  check Alcotest.int (label ^ ": n_physical") (Coupling.n_qubits coupling)
    (Mapping.n_physical m);
  let l2p = Mapping.l2p_array m in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      check Alcotest.bool (label ^ ": in range") true
        (p >= 0 && p < Coupling.n_qubits coupling);
      check Alcotest.bool (label ^ ": injective") false (Hashtbl.mem seen p);
      Hashtbl.replace seen p ())
    l2p

let test_seeders_produce_valid_mappings () =
  let devices =
    [
      ("tokyo", device);
      ("ring12", Devices.ring 12);
      ("grid4x5", Devices.grid ~rows:4 ~cols:5);
      ("star8", Devices.star 8);
    ]
  in
  List.iter
    (fun (dname, coupling) ->
      List.iter
        (fun cname ->
          let circuit = zoo_circuit cname in
          if Circuit.n_qubits circuit <= Coupling.n_qubits coupling then
            List.iter
              (fun sname ->
                let s = Option.get (Seeder.find sname) in
                match s.Seeder.derive ~seed:2019 coupling circuit with
                | None ->
                  check Alcotest.string "only reverse-traversal declines"
                    "reverse-traversal" sname
                | Some m ->
                  assert_valid_mapping
                    (Printf.sprintf "%s on %s/%s" sname dname cname)
                    (Circuit.n_qubits circuit) coupling m)
              (Seeder.names ()))
        zoo)
    devices

let test_iso_anchors_strongest_pair () =
  (* two qubits exchanging most of the gates must land adjacent on any
     device with a free edge: that's the whole point of the seeder *)
  let circuit =
    Circuit.create ~n_qubits:4
      [
        Quantum.Gate.Cnot (0, 1);
        Quantum.Gate.Cnot (0, 1);
        Quantum.Gate.Cnot (0, 1);
        Quantum.Gate.Cnot (2, 3);
      ]
  in
  List.iter
    (fun coupling ->
      let m = Initial_mapping.iso_anchored coupling circuit in
      let p0 = Mapping.to_physical m 0 and p1 = Mapping.to_physical m 1 in
      check Alcotest.bool "hot pair placed adjacent" true
        (Coupling.connected coupling p0 p1))
    [ device; Devices.ring 8; Devices.grid ~rows:3 ~cols:3 ]

let test_seeder_determinism () =
  List.iter
    (fun sname ->
      let s = Option.get (Seeder.find sname) in
      let circuit = zoo_circuit "4gt13_92" in
      let a = s.Seeder.derive ~seed:7 device circuit in
      let b = s.Seeder.derive ~seed:7 device circuit in
      match (a, b) with
      | None, None -> ()
      | Some a, Some b ->
        check Alcotest.bool (sname ^ " deterministic at fixed seed") true
          (Mapping.equal a b)
      | _ -> Alcotest.failf "%s: Some/None disagree across runs" sname)
    (Seeder.names ())

(* ------------------------------------------------------------------ *)
(* Spec parsing and objectives                                         *)
(* ------------------------------------------------------------------ *)

let test_parse_spec () =
  (match Portfolio.parse_spec "sabre,hail/iso,greedy" with
  | Ok es ->
    check Alcotest.int "three entries" 3 (List.length es);
    check Alcotest.string "seeder defaults" "reverse-traversal"
      (List.hd es).Portfolio.seeder;
    check Alcotest.string "explicit seeder" "iso"
      (List.nth es 1).Portfolio.seeder
  | Error msg -> Alcotest.failf "good spec rejected: %s" msg);
  (match Portfolio.parse_spec " sabre , hail/iso " with
  | Ok es -> check Alcotest.int "whitespace trimmed" 2 (List.length es)
  | Error msg -> Alcotest.failf "spaced spec rejected: %s" msg);
  List.iter
    (fun bad ->
      match Portfolio.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error msg ->
        check Alcotest.bool "error non-empty" true (String.length msg > 0))
    [ ""; "sabre,,greedy"; "a/b/c"; ","; "sabre/" ]

let test_entry_name () =
  check Alcotest.string "native seeder collapses" "sabre"
    (Portfolio.entry_name
       { Portfolio.router = "sabre"; seeder = "reverse-traversal"; overrides = [] });
  check Alcotest.string "explicit seeder shown" "hail/iso"
    (Portfolio.entry_name { Portfolio.router = "hail"; seeder = "iso"; overrides = [] })

let test_objectives () =
  List.iter
    (fun (s, expected) ->
      match Portfolio.objective_of_string s with
      | Ok o ->
        check Alcotest.string ("objective " ^ s) expected
          (Portfolio.objective_name o)
      | Error msg -> Alcotest.failf "objective %S rejected: %s" s msg)
    [
      ("swaps", "swaps");
      ("depth", "depth");
      ("success", "success");
      ("success-prob", "success");
    ];
  match Portfolio.objective_of_string "prettiness" with
  | Ok _ -> Alcotest.fail "bogus objective accepted"
  | Error msg ->
    check Alcotest.bool "error non-empty" true (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Winner selection                                                    *)
(* ------------------------------------------------------------------ *)

let test_winner_dominates () =
  List.iter
    (fun objective ->
      List.iter
        (fun name ->
          let circuit = zoo_circuit name in
          let report =
            Portfolio.run ~objective ~config:Config.default device circuit
              entries
          in
          let w = Portfolio.winner_member report in
          let wv = Portfolio.objective_value objective w in
          Array.iteri
            (fun i outcome ->
              match outcome with
              | Ok m ->
                let v = Portfolio.objective_value objective m in
                check Alcotest.bool
                  (Printf.sprintf "%s/%s: winner <= member %d"
                     (Portfolio.objective_name objective)
                     name i)
                  true (wv <= v)
              | Error _ -> ())
            report.Portfolio.outcomes;
          Helpers.assert_routed ~coupling:device
            ~initial:(Mapping.l2p_array w.Portfolio.initial)
            ~final:(Mapping.l2p_array w.Portfolio.final)
            ~logical:circuit ~physical:w.Portfolio.physical
            (Portfolio.objective_name objective ^ "/" ^ name))
        zoo)
    [ Portfolio.Swaps; Portfolio.Depth; Portfolio.Success_prob ]

let test_winner_never_loses_to_sabre () =
  List.iter
    (fun name ->
      let circuit = zoo_circuit name in
      let plain = Sabre.Compiler.run ~config:Config.default device circuit in
      let report =
        Portfolio.run ~config:Config.default device circuit entries
      in
      let w = Portfolio.winner_member report in
      check Alcotest.bool (name ^ ": winner <= plain sabre") true
        (w.Portfolio.n_swaps <= plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps))
    zoo

let test_first_best_tie_break () =
  (* a circuit needing no swaps: every entry ties at 0, so the first
     entry must win — the Trial_runner.best contract made observable *)
  let circuit =
    Circuit.create ~n_qubits:2
      [ Quantum.Gate.Cnot (0, 1); Quantum.Gate.Single (Quantum.Gate.H, 0) ]
  in
  let report = Portfolio.run ~config:Config.default device circuit entries in
  check Alcotest.int "earliest entry wins ties" 0 report.Portfolio.winner

let test_all_failed_raises () =
  (* a circuit wider than the device fails every entry *)
  let circuit = Helpers.random_circuit ~seed:5 ~n:30 ~gates:40 in
  match Portfolio.run ~config:Config.default device circuit entries with
  | _ -> Alcotest.fail "30-qubit circuit routed on a 20-qubit device"
  | exception Engine.Router.Route_failed msg ->
    check Alcotest.bool "message mentions every entry failing" true
      (String.length msg > 0)

let test_unknown_names_raise () =
  let circuit = zoo_circuit "4mod5-v1_22" in
  (match
     Portfolio.run ~config:Config.default device circuit
       [ { Portfolio.router = "warp"; seeder = "reverse-traversal"; overrides = [] } ]
   with
  | _ -> Alcotest.fail "unknown router accepted"
  | exception Invalid_argument msg ->
    check Alcotest.bool "router miss suggests names" true
      (String.length msg > 0));
  match
    Portfolio.run ~config:Config.default device circuit
      [ { Portfolio.router = "sabre"; seeder = "warp"; overrides = [] } ]
  with
  | _ -> Alcotest.fail "unknown seeder accepted"
  | exception Invalid_argument msg ->
    check Alcotest.bool "seeder miss suggests names" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Determinism across domains (qcheck)                                 *)
(* ------------------------------------------------------------------ *)

let outcome_equal a b =
  match (a, b) with
  | Ok (a : Portfolio.member), Ok (b : Portfolio.member) ->
    Portfolio.entry_name a.entry = Portfolio.entry_name b.entry
    && Circuit.equal a.physical b.physical
    && Mapping.equal a.initial b.initial
    && Mapping.equal a.final b.final
    && a.n_swaps = b.n_swaps && a.depth = b.depth
  | Error a, Error b -> a = b
  | _ -> false

let domain_determinism_prop =
  QCheck.Test.make ~count:20
    ~name:"portfolio outcomes byte-identical at any domain count"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, domains) ->
      let circuit =
        Helpers.random_circuit ~seed:(1000 + seed) ~n:8 ~gates:40
      in
      let run domains =
        Portfolio.run ~domains ~config:Config.default device circuit entries
      in
      let sequential = run 1 and fanned = run domains in
      if sequential.Portfolio.winner <> fanned.Portfolio.winner then
        QCheck.Test.fail_reportf "winner differs: %d vs %d at %d domains"
          sequential.Portfolio.winner fanned.Portfolio.winner domains;
      Array.for_all2 outcome_equal sequential.Portfolio.outcomes
        fanned.Portfolio.outcomes
      || QCheck.Test.fail_reportf "outcomes differ at %d domains" domains)

(* ------------------------------------------------------------------ *)
(* Hail conformance and Batch integration                              *)
(* ------------------------------------------------------------------ *)

let test_hail_conformance () =
  let hail =
    match Engine.Router.find "hail" with
    | Some r -> r
    | None -> Alcotest.fail "hail not registered"
  in
  List.iter
    (fun name ->
      let circuit = zoo_circuit name in
      let ctx = Engine.Context.create ~config:Config.default device circuit in
      let ctx =
        Engine.Pipeline.run
          (Engine.Pipeline.default ~router:hail ~verify:true ())
          ctx
      in
      let r = Engine.Context.routed_exn ctx in
      Helpers.assert_routed ~coupling:device
        ~initial:(Mapping.l2p_array r.Engine.Context.trial_initial)
        ~final:(Mapping.l2p_array r.Engine.Context.final_mapping)
        ~logical:circuit ~physical:r.Engine.Context.physical
        ("hail/" ^ name))
    zoo

let test_batch_portfolio () =
  let jobs =
    Array.of_list
      (List.map (fun name -> { Engine.Batch.name; circuit = zoo_circuit name })
         zoo)
  in
  let report =
    Engine.Batch.compile_many ~config:Config.default
      ~portfolio:(entries, Portfolio.Swaps) ~verify:true device jobs
  in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Ok (s : Engine.Batch.success) ->
        check Alcotest.bool
          (s.Engine.Batch.name ^ ": router is an entry label") true
          (List.exists
             (fun e -> Portfolio.entry_name e = s.Engine.Batch.router)
             entries);
        (* the batch path reproduces a direct Portfolio.run *)
        let direct =
          Portfolio.run ~config:Config.default device (zoo_circuit
            (List.nth zoo i)) entries
        in
        let w = Portfolio.winner_member direct in
        check Alcotest.string (s.Engine.Batch.name ^ ": same winner")
          (Portfolio.entry_name w.Portfolio.entry)
          s.Engine.Batch.router;
        check Alcotest.bool (s.Engine.Batch.name ^ ": same circuit") true
          (Circuit.equal w.Portfolio.physical s.Engine.Batch.physical)
      | Error e -> Alcotest.failf "%s failed: %s" e.Engine.Batch.name e.message)
    report.Engine.Batch.outcomes

let test_router_find_suggest () =
  match Engine.Router.find_suggest "warp-drive" with
  | Ok _ -> Alcotest.fail "bogus router resolved"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun n -> check Alcotest.bool ("suggests " ^ n) true (contains msg n))
      [ "sabre"; "hail"; "greedy"; "bka" ]

(* ------------------------------------------------------------------ *)

let suite =
  [
    tc "seeder registry: names, find, find_suggest" `Quick test_seeder_registry;
    tc "every seeder yields a valid injective mapping" `Quick
      test_seeders_produce_valid_mappings;
    tc "iso seeder places the hottest pair adjacent" `Quick
      test_iso_anchors_strongest_pair;
    tc "seeders are deterministic at a fixed seed" `Quick
      test_seeder_determinism;
    tc "parse_spec accepts ROUTER[/SEEDER] lists" `Quick test_parse_spec;
    tc "entry_name collapses the native seeder" `Quick test_entry_name;
    tc "objective names round-trip" `Quick test_objectives;
    tc "winner dominates every member (3 objectives x zoo)" `Slow
      test_winner_dominates;
    tc "winner never loses to single-router sabre" `Quick
      test_winner_never_loses_to_sabre;
    tc "ties break to the earliest entry" `Quick test_first_best_tie_break;
    tc "all-entries-failed raises Route_failed" `Quick test_all_failed_raises;
    tc "unknown router/seeder names raise with suggestions" `Quick
      test_unknown_names_raise;
    QCheck_alcotest.to_alcotest domain_determinism_prop;
    tc "hail passes tracker + equivalence on the zoo" `Quick
      test_hail_conformance;
    tc "Batch portfolio mode reproduces Portfolio.run" `Slow
      test_batch_portfolio;
    tc "Router.find_suggest lists registered routers" `Quick
      test_router_find_suggest;
  ]
