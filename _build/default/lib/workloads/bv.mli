module Circuit = Quantum.Circuit

(** Bernstein–Vazirani circuits. The oracle's CNOT fan-in onto the
    ancilla gives a star interaction graph whose hub must wander across
    the device — a classic router stress test. *)

val circuit : hidden:int -> int -> Circuit.t
(** [circuit ~hidden n] builds the (n+1)-qubit Bernstein–Vazirani circuit
    recovering the n-bit [hidden] string: Hadamards, X+H on the ancilla
    (qubit n), a CNOT from every set bit of [hidden] into the ancilla,
    closing Hadamards, and measurements of the data qubits. *)
