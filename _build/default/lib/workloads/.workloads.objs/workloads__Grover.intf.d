lib/workloads/grover.mli: Quantum
