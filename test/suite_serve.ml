(* The routing service: codec, queue, framing, and a live in-process
   daemon exercised over a real Unix socket.

   The heart of the suite is the byte-identity contract: a response's
   QASM must equal what [Engine.Batch] (and therefore [sabre_compile])
   produces for the same circuit, device, config and router. Around it
   sit the lifecycle guarantees — admission control, deadlines, graceful
   drain — each pinned by a deterministic test. *)

module P = Serve.Protocol
module Jsonx = Serve.Jsonx
module Rqueue = Serve.Rqueue
module Netline = Serve.Netline
module Server = Serve.Server
module Client = Serve.Client
module Qasm = Quantum.Qasm
module Devices = Hardware.Devices
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Batch = Engine.Batch
module Instrument = Engine.Instrument

let check = Alcotest.check
let tc = Alcotest.test_case
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore
let () = Baseline.Routers.register ()

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_sock =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sabre_serve_%d_%d.sock" (Unix.getpid ()) !ctr)

let with_server ?(domains = 2) ?queue_capacity ?cache ?default_deadline_s
    ?max_request_bytes f =
  let path = fresh_sock () in
  let server =
    Server.start ~domains ?queue_capacity ?cache ?default_deadline_s
      ?max_request_bytes (P.Unix_sock path)
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f path server)

let rpc path req =
  Client.with_connection ~retry_for_s:5.0 (P.Unix_sock path) (fun c ->
      match Client.request c req with
      | Ok r -> r
      | Error e -> Alcotest.failf "transport failure: %s" e)

let compile_req ?(id = "x") ?(overrides = P.no_overrides) ?(cache = true)
    ?deadline_s ?(device = "tokyo") ?(router = "sabre") qasm =
  P.Compile
    {
      id;
      source = P.Inline qasm;
      device;
      device_size = None;
      router;
      overrides;
      cache;
      deadline_s;
    }

let small_qasm =
  "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncx q[0],q[3];\n\
   cx q[1],q[2];\ncx q[0],q[2];\nh q[1];\ncx q[3],q[1];\n"

(* ~0.7 s of routing at the default 5 trials: long enough that a job is
   reliably still in flight when a test needs the worker occupied. *)
let big_qasm =
  lazy
    (Qasm.to_string
       (Helpers.random_circuit ~seed:99 ~n:16 ~gates:10_000))

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

let test_jsonx_roundtrip () =
  let values =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Bool false;
      Jsonx.Int 0;
      Jsonx.Int (-42);
      Jsonx.Int max_int;
      Jsonx.Float 0.1;
      Jsonx.Float 1e300;
      Jsonx.Float (-2.5e-8);
      Jsonx.Float 3.0;
      Jsonx.Str "";
      Jsonx.Str "a\"b\\c\nd\te\x01f";
      Jsonx.Str "\xcf\x80 \xe2\x89\x88 3.14159";
      Jsonx.List [ Jsonx.Int 1; Jsonx.Str "two"; Jsonx.Null ];
      Jsonx.Obj
        [
          ("k", Jsonx.List [ Jsonx.Obj [ ("nested", Jsonx.Bool false) ] ]);
          ("empty", Jsonx.Obj []);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Jsonx.to_string v in
      match Jsonx.parse s with
      | Ok v' ->
        if v <> v' then
          Alcotest.failf "round-trip changed %s into %s" s (Jsonx.to_string v')
      | Error e -> Alcotest.failf "round-trip of %s failed: %s" s e)
    values;
  (* int/float identity is preserved, not collapsed *)
  check Alcotest.string "int prints bare" "1" (Jsonx.to_string (Jsonx.Int 1));
  check Alcotest.string "integral float keeps its point" "1.0"
    (Jsonx.to_string (Jsonx.Float 1.0));
  check Alcotest.bool "1 parses as Int" true
    (Jsonx.parse "1" = Ok (Jsonx.Int 1));
  check Alcotest.bool "1.0 parses as Float" true
    (Jsonx.parse "1.0" = Ok (Jsonx.Float 1.0));
  check Alcotest.bool "nan is unprintable" true
    (match Jsonx.to_string (Jsonx.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_jsonx_rejects () =
  let bad =
    [
      "";
      "tru";
      "{";
      "[1,]";
      "{\"a\":1,}";
      "{\"a\" 1}";
      "1 2";
      "\x01";
      "\"unterminated";
      "\"bad \\q escape\"";
      "01";
      String.concat "" (List.init 100 (fun _ -> "["));
    ]
  in
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Ok v ->
        Alcotest.failf "accepted malformed %S as %s" s (Jsonx.to_string v)
      | Error e ->
        check Alcotest.bool "error message non-empty" true
          (String.length e > 0))
    bad

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let gen_str =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 20) );
        ( 1,
          oneofl
            [
              "";
              "\"quoted\"";
              "back\\slash";
              "new\nline";
              "tab\tcr\r";
              "\xcf\x80 unicode";
            ] );
      ])

let gen_opt g = QCheck.Gen.(frequency [ (1, return None); (2, map Option.some g) ])

let gen_overrides =
  QCheck.Gen.(
    map
      (fun ((trials, traversals, delta), (weight, extended_set, seed), commutation)
           ->
        { P.trials; traversals; delta; weight; extended_set; seed; commutation })
      (triple
         (triple (gen_opt small_nat) (gen_opt small_nat)
            (gen_opt (oneofl [ 0.0; 0.001; 0.5; 12.25 ])))
         (triple
            (gen_opt (oneofl [ 0.0; 0.5; 0.75 ]))
            (gen_opt small_nat) (gen_opt small_int))
         (gen_opt bool)))

let gen_compile =
  QCheck.Gen.(
    map
      (fun ((id, src_is_path, text), (device, device_size, router),
            (overrides, cache, deadline_s)) ->
        P.Compile
          {
            id;
            source = (if src_is_path then P.Path text else P.Inline text);
            device;
            device_size;
            router;
            overrides;
            cache;
            deadline_s;
          })
      (triple
         (triple gen_str bool gen_str)
         (triple gen_str (gen_opt small_nat) gen_str)
         (triple gen_overrides bool
            (gen_opt (oneofl [ 0.0; -1.0; 0.5; 2.25 ])))))

let gen_portfolio =
  QCheck.Gen.(
    map
      (fun ((id, src_is_path, text), (device, device_size, spec),
            ((objective, race, cache), overrides, deadline_s)) ->
        P.Portfolio
          {
            id;
            source = (if src_is_path then P.Path text else P.Inline text);
            device;
            device_size;
            spec;
            objective;
            race;
            overrides;
            cache;
            deadline_s;
          })
      (triple
         (triple gen_str bool gen_str)
         (triple gen_str (gen_opt small_nat)
            (oneofl
               [
                 "sabre";
                 "sabre,hail";
                 "sabre,hail/iso,greedy";
                 "sabre:trials=1,traversals=1,greedy";
                 "";
               ]))
         (triple
            (triple (oneofl [ "swaps"; "depth"; "success"; "bogus" ]) bool bool)
            gen_overrides
            (gen_opt (oneofl [ 0.0; -1.0; 0.5; 2.25 ])))))

let gen_request =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun id -> P.Ping { id }) gen_str);
        (1, map (fun id -> P.Stats { id }) gen_str);
        (4, gen_compile);
        (2, gen_portfolio);
      ])

let shrink_request r yield =
  match r with
  | P.Ping { id } -> QCheck.Shrink.string id (fun id -> yield (P.Ping { id }))
  | P.Stats { id } -> QCheck.Shrink.string id (fun id -> yield (P.Stats { id }))
  | P.Compile c ->
    QCheck.Shrink.string c.id (fun id -> yield (P.Compile { c with id }));
    (match c.source with
    | P.Inline s ->
      QCheck.Shrink.string s (fun s ->
          yield (P.Compile { c with source = P.Inline s }))
    | P.Path s ->
      QCheck.Shrink.string s (fun s ->
          yield (P.Compile { c with source = P.Path s })));
    QCheck.Shrink.string c.device (fun device ->
        yield (P.Compile { c with device }));
    QCheck.Shrink.string c.router (fun router ->
        yield (P.Compile { c with router }));
    (match c.deadline_s with
    | Some _ -> yield (P.Compile { c with deadline_s = None })
    | None -> ());
    (match c.device_size with
    | Some _ -> yield (P.Compile { c with device_size = None })
    | None -> ());
    if not c.cache then yield (P.Compile { c with cache = true });
    if c.overrides <> P.no_overrides then
      yield (P.Compile { c with overrides = P.no_overrides })
  | P.Portfolio p ->
    QCheck.Shrink.string p.id (fun id -> yield (P.Portfolio { p with id }));
    (match p.source with
    | P.Inline s ->
      QCheck.Shrink.string s (fun s ->
          yield (P.Portfolio { p with source = P.Inline s }))
    | P.Path s ->
      QCheck.Shrink.string s (fun s ->
          yield (P.Portfolio { p with source = P.Path s })));
    QCheck.Shrink.string p.spec (fun spec ->
        yield (P.Portfolio { p with spec }));
    (match p.deadline_s with
    | Some _ -> yield (P.Portfolio { p with deadline_s = None })
    | None -> ());
    (match p.device_size with
    | Some _ -> yield (P.Portfolio { p with device_size = None })
    | None -> ());
    if not p.cache then yield (P.Portfolio { p with cache = true });
    if p.overrides <> P.no_overrides then
      yield (P.Portfolio { p with overrides = P.no_overrides })

let request_arb =
  QCheck.make gen_request
    ~print:(Format.asprintf "%a" P.pp_request)
    ~shrink:shrink_request

let request_roundtrip_prop =
  QCheck.Test.make ~count:300 ~name:"request codec round-trips (with shrinking)"
    request_arb (fun r ->
      let line = P.encode_request r in
      if String.contains line '\n' then
        QCheck.Test.fail_reportf "encoding spans lines: %S" line;
      match P.decode_request line with
      | Ok r' ->
        P.request_equal r r'
        || QCheck.Test.fail_reportf "decoded to a different request: %S" line
      | Error (_, msg) ->
        QCheck.Test.fail_reportf "own encoding rejected (%s): %S" msg line)

let test_response_roundtrip () =
  let stats =
    {
      P.served = 12;
      errored = 3;
      rejected = 4;
      timed_out = 1;
      malformed = 2;
      queue_depth = 0;
      queue_capacity = 64;
      domains = 2;
      uptime_s = 1.25;
      dist_cache_hits = 7;
      dist_cache_misses = 1;
      cache_hits = 5;
      cache_misses = 9;
      cache_entries = 4;
      cache_bytes = 131072;
      per_domain =
        [|
          { P.domain = 0; jobs_run = 6; wall_busy_s = 0.5 };
          { P.domain = 1; jobs_run = 6; wall_busy_s = 0.625 };
        |];
      per_router =
        [|
          { P.router = "hail"; requests = 3; succeeded = 2; failed = 1 };
          { P.router = "sabre"; requests = 9; succeeded = 9; failed = 0 };
        |];
    }
  in
  let responses =
    [
      P.Ok_compiled
        {
          id = "a";
          qasm = small_qasm;
          initial = [| 3; 1; 0; 2 |];
          final = [| 0; 1; 2; 3 |];
          n_swaps = 2;
          original_gates = 5;
          total_gates = 11;
          routed_depth = 7;
          time_s = 0.001953125;
        };
      P.Ok_portfolio
        {
          compiled =
            {
              id = "p";
              qasm = small_qasm;
              initial = [| 1; 0 |];
              final = [| 0; 1 |];
              n_swaps = 1;
              original_gates = 3;
              total_gates = 6;
              routed_depth = 4;
              time_s = 0.25;
            };
          winner = "hail/iso";
          members =
            [|
              {
                P.entry = "hail/iso";
                swaps = Some 1;
                depth = Some 4;
                value = Some 1.0;
                wall_s = Some 0.125;
                cancelled = false;
                error = None;
              };
              {
                P.entry = "greedy";
                swaps = None;
                depth = None;
                value = None;
                wall_s = None;
                cancelled = true;
                error = Some "route failed: \"stuck\"";
              };
            |];
        };
      P.Ok_stats { id = "s"; stats };
      P.Pong { id = "" };
    ]
    @ List.map
        (fun kind -> P.Error_resp { id = "e"; kind; message = "why \"not\"" })
        [
          P.Malformed;
          P.Oversized;
          P.Queue_full;
          P.Timeout;
          P.Qasm_error;
          P.Route_error;
          P.Invalid;
          P.Shutting_down;
        ]
  in
  List.iter
    (fun r ->
      let line = P.encode_response r in
      check Alcotest.bool "single line" false (String.contains line '\n');
      match P.decode_response line with
      | Ok r' ->
        check Alcotest.bool "response round-trips" true (P.response_equal r r')
      | Error e -> Alcotest.failf "own encoding rejected (%s): %S" e line)
    responses

(* an older server doesn't send the compile-cache stats fields; the
   client must degrade to zeros instead of rejecting the frame *)
let test_stats_decode_tolerates_old_server () =
  let stats =
    {
      P.served = 2;
      errored = 0;
      rejected = 0;
      timed_out = 0;
      malformed = 0;
      queue_depth = 0;
      queue_capacity = 64;
      domains = 1;
      uptime_s = 0.5;
      dist_cache_hits = 1;
      dist_cache_misses = 1;
      cache_hits = 5;
      cache_misses = 9;
      cache_entries = 4;
      cache_bytes = 131072;
      per_domain = [| { P.domain = 0; jobs_run = 2; wall_busy_s = 0.25 } |];
      per_router = [||];
    }
  in
  let line = P.encode_response (P.Ok_stats { id = "s"; stats }) in
  let old_line =
    match Jsonx.parse line with
    | Ok (Jsonx.Obj fields) ->
      Jsonx.to_string
        (Jsonx.Obj
           (List.filter
              (fun (name, _) ->
                not
                  (List.mem name
                     [
                       "cache_hits";
                       "cache_misses";
                       "cache_entries";
                       "cache_bytes";
                     ]))
              fields))
    | Ok _ | Error _ -> Alcotest.fail "stats frame did not parse as an object"
  in
  match P.decode_response old_line with
  | Ok (P.Ok_stats { stats = s; _ }) ->
    check Alcotest.int "served still decodes" 2 s.P.served;
    check Alcotest.int "absent cache_hits defaults to 0" 0 s.P.cache_hits;
    check Alcotest.int "absent cache_misses defaults to 0" 0 s.P.cache_misses;
    check Alcotest.int "absent cache_entries defaults to 0" 0 s.P.cache_entries;
    check Alcotest.int "absent cache_bytes defaults to 0" 0 s.P.cache_bytes
  | Ok _ -> Alcotest.fail "decoded to a different response"
  | Error e -> Alcotest.failf "old-server stats frame rejected: %s" e

let test_decode_malformed () =
  let expect_kind kind line =
    match P.decode_request line with
    | Error (k, msg) ->
      check Alcotest.string "typed error"
        (P.error_kind_name kind)
        (P.error_kind_name k);
      check Alcotest.bool "reason attached" true (String.length msg > 0)
    | Ok r ->
      Alcotest.failf "accepted %S as %a" line P.pp_request r
  in
  expect_kind P.Malformed "not json at all";
  expect_kind P.Malformed "[1,2,3]";
  expect_kind P.Malformed "{}";
  expect_kind P.Malformed {|{"kind":"teleport"}|};
  expect_kind P.Malformed {|{"kind":"compile","id":"x"}|};
  expect_kind P.Malformed
    {|{"kind":"compile","qasm":"a","path":"b","device":"tokyo"}|};
  expect_kind P.Malformed {|{"kind":"compile","qasm":"a","device":7}|};
  expect_kind P.Malformed {|{"kind":"compile","qasm":"a","device":"tokyo","surprise":1}|};
  expect_kind P.Malformed {|{"kind":"ping","id":7}|}

let test_decode_oversized () =
  (* the oversized check fires on raw length, before any parsing *)
  (match
     P.decode_request ~max_bytes:(64 * 1024)
       (P.encode_request (compile_req (String.make 4096 'h')))
   with
  | Ok _ -> ()
  | Error (_, msg) -> Alcotest.failf "within-limit request rejected: %s" msg);
  match
    P.decode_request ~max_bytes:128 (P.encode_request (compile_req small_qasm))
  with
  | Error (P.Oversized, _) -> ()
  | Error (k, _) ->
    Alcotest.failf "wrong kind %s" (P.error_kind_name k)
  | Ok _ -> Alcotest.fail "159-byte line accepted under a 128-byte limit"

(* ------------------------------------------------------------------ *)
(* Rqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_rqueue () =
  let q = Rqueue.create ~capacity:2 in
  check Alcotest.int "capacity" 2 (Rqueue.capacity q);
  check Alcotest.bool "push 1" true (Rqueue.try_push q 1 = `Ok);
  check Alcotest.bool "push 2" true (Rqueue.try_push q 2 = `Ok);
  check Alcotest.bool "push 3 full" true (Rqueue.try_push q 3 = `Full);
  check Alcotest.int "length" 2 (Rqueue.length q);
  check Alcotest.bool "fifo" true (Rqueue.pop q = Some 1);
  Rqueue.close q;
  check Alcotest.bool "closed beats full" true (Rqueue.try_push q 4 = `Closed);
  check Alcotest.bool "drains after close" true (Rqueue.pop q = Some 2);
  check Alcotest.bool "then empty" true (Rqueue.pop q = None);
  check Alcotest.bool "still empty" true (Rqueue.pop q = None);
  let z = Rqueue.create ~capacity:0 in
  check Alcotest.bool "zero capacity rejects everything" true
    (Rqueue.try_push z 1 = `Full);
  let neg = Rqueue.create ~capacity:(-3) in
  check Alcotest.int "negative capacity clamps to 0" 0 (Rqueue.capacity neg)

let test_rqueue_cross_domain () =
  let q = Rqueue.create ~capacity:1024 in
  let total = 600 in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc =
          match Rqueue.pop q with None -> acc | Some v -> go (acc + v)
        in
        go 0)
  in
  for v = 1 to total do
    let rec push () =
      match Rqueue.try_push q v with
      | `Ok -> ()
      | `Full ->
        Domain.cpu_relax ();
        push ()
      | `Closed -> Alcotest.fail "queue closed early"
    in
    push ()
  done;
  Rqueue.close q;
  check Alcotest.int "consumer saw every item exactly once"
    (total * (total + 1) / 2)
    (Domain.join consumer)

(* ------------------------------------------------------------------ *)
(* Netline                                                             *)
(* ------------------------------------------------------------------ *)

let test_netline_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  check Alcotest.bool "write hello" true (Netline.write_line a "hello");
  check Alcotest.bool "write crlf" true (Netline.write_line a "world\r");
  let r = Netline.reader b in
  check Alcotest.bool "frame 1" true (Netline.read_line r = Netline.Line "hello");
  check Alcotest.bool "crlf stripped" true
    (Netline.read_line r = Netline.Line "world");
  ignore (Unix.write_substring a "tail" 0 4);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  check Alcotest.bool "unterminated final frame" true
    (Netline.read_line r = Netline.Line "tail");
  check Alcotest.bool "then eof" true (Netline.read_line r = Netline.Eof);
  check Alcotest.bool "eof is sticky" true (Netline.read_line r = Netline.Eof);
  Unix.close a;
  Unix.close b

let test_netline_overflow () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write_substring a (String.make 32 'x') 0 32);
  let r = Netline.reader b in
  check Alcotest.bool "overflow past max_bytes" true
    (Netline.read_line ~max_bytes:10 r = Netline.Overflow);
  check Alcotest.bool "overflow is sticky" true
    (Netline.read_line ~max_bytes:1000 r = Netline.Overflow);
  Unix.close a;
  Unix.close b

let test_netline_peer_gone () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  check Alcotest.bool "write to closed peer returns false" false
    (Netline.write_line a "doomed");
  Unix.close a

(* ------------------------------------------------------------------ *)
(* Live server: liveness and typed server-side errors                  *)
(* ------------------------------------------------------------------ *)

let test_ping_and_stats () =
  with_server ~domains:2 (fun path server ->
      check Alcotest.bool "pong" true
        (rpc path (P.Ping { id = "p" }) = P.Pong { id = "p" });
      (match rpc path (P.Stats { id = "s" }) with
      | P.Ok_stats { id; stats } ->
        check Alcotest.string "stats id echoed" "s" id;
        check Alcotest.int "domains" 2 stats.P.domains;
        check Alcotest.int "default queue capacity" 64 stats.P.queue_capacity;
        check Alcotest.int "per-domain rows" 2 (Array.length stats.P.per_domain);
        check Alcotest.bool "uptime advances" true (stats.P.uptime_s >= 0.0)
      | r ->
        Alcotest.failf "stats request answered %s" (P.encode_response r));
      (* the in-process stats snapshot agrees with the wire one *)
      check Alcotest.int "Server.stats matches protocol stats" 0
        (Server.stats server).P.served)

let raw_rpc path line =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Netline.write_line fd line);
      match Netline.read_line (Netline.reader fd) with
      | Netline.Line l -> (
        match P.decode_response l with
        | Ok r -> r
        | Error e -> Alcotest.failf "undecodable response (%s): %S" e l)
      | Netline.Overflow -> Alcotest.fail "oversized response"
      | Netline.Eof -> Alcotest.fail "connection closed without a response")

let expect_error kind resp =
  match resp with
  | P.Error_resp { kind = k; message; _ } ->
    check Alcotest.string "error kind"
      (P.error_kind_name kind)
      (P.error_kind_name k);
    check Alcotest.bool "message non-empty" true (String.length message > 0)
  | r -> Alcotest.failf "expected %s, got %s" (P.error_kind_name kind)
           (P.encode_response r)

let test_typed_errors () =
  with_server ~domains:1 (fun path server ->
      expect_error P.Malformed (raw_rpc path "this is not json");
      expect_error P.Malformed (raw_rpc path {|{"kind":"warp"}|});
      expect_error P.Invalid
        (rpc path (compile_req ~router:"astar-deluxe" small_qasm));
      expect_error P.Invalid
        (rpc path (compile_req ~device:"pentagon" small_qasm));
      expect_error P.Qasm_error
        (rpc path (compile_req "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q;\n"));
      expect_error P.Invalid
        (rpc path
           (P.Compile
              {
                id = "f";
                source = P.Path "/nonexistent/circuit.qasm";
                device = "tokyo";
                device_size = None;
                router = "sabre";
                overrides = P.no_overrides;
                cache = true;
                deadline_s = None;
              }));
      expect_error P.Invalid
        (rpc path
           (compile_req
              ~overrides:{ P.no_overrides with trials = Some 0 }
              small_qasm));
      let s = Server.stats server in
      check Alcotest.int "malformed counted" 2 s.P.malformed;
      check Alcotest.int "server-side failures counted as errored" 5
        s.P.errored;
      check Alcotest.int "nothing served" 0 s.P.served)

let test_oversized_request () =
  with_server ~domains:1 ~max_request_bytes:4096 (fun path _server ->
      expect_error P.Oversized
        (raw_rpc path (P.encode_request (compile_req (String.make 8192 'h'))));
      (* the connection is dropped, but the server lives on *)
      check Alcotest.bool "server still answers" true
        (rpc path (P.Ping { id = "after" }) = P.Pong { id = "after" }))

(* ------------------------------------------------------------------ *)
(* Byte-identity with Engine.Batch across the workload zoo             *)
(* ------------------------------------------------------------------ *)

let zoo_names =
  [ "4mod5-v1_22"; "decod24-v2_43"; "4gt13_92"; "qft_10"; "ising_model_10" ]

let test_byte_identity () =
  let device = Devices.ibm_q20_tokyo () in
  let texts =
    List.map
      (fun name ->
        ( name,
          Qasm.to_string (Lazy.force (Workloads.Suite.find name).circuit) ))
      zoo_names
  in
  let config = { Config.default with trials = 2 } in
  let overrides = { P.no_overrides with trials = Some 2 } in
  with_server ~domains:2 (fun path _server ->
      List.iter
        (fun router_name ->
          let router =
            match Engine.Router.find router_name with
            | Some r -> r
            | None -> Alcotest.failf "router %s not registered" router_name
          in
          let jobs =
            Array.of_list
              (List.map
                 (fun (name, text) ->
                   { Batch.name; circuit = Qasm.of_string text })
                 texts)
          in
          let report =
            Batch.compile_many ~config ~router ~verify:true device jobs
          in
          List.iteri
            (fun i (name, text) ->
              let label = Printf.sprintf "%s/%s" router_name name in
              match
                ( rpc path
                    (compile_req ~id:label ~overrides ~router:router_name text),
                  report.Batch.outcomes.(i) )
              with
              | P.Ok_compiled r, Ok (s : Batch.success) ->
                check Alcotest.string (label ^ ": id") label r.P.id;
                check Alcotest.string
                  (label ^ ": QASM byte-identical to Engine.Batch")
                  (Qasm.to_string s.physical) r.P.qasm;
                check
                  Alcotest.(array int)
                  (label ^ ": initial mapping")
                  (Mapping.l2p_array s.initial) r.P.initial;
                check
                  Alcotest.(array int)
                  (label ^ ": final mapping")
                  (Mapping.l2p_array s.final) r.P.final;
                check Alcotest.int (label ^ ": swaps")
                  s.stats.Sabre_core.Stats.n_swaps r.P.n_swaps;
                check Alcotest.int (label ^ ": routed depth")
                  s.stats.Sabre_core.Stats.routed_depth r.P.routed_depth
              | P.Error_resp { message; _ }, _ ->
                Alcotest.failf "%s: server error: %s" label message
              | _, Error (e : Batch.error) ->
                Alcotest.failf "%s: local batch error: %s" label e.message
              | r, _ ->
                Alcotest.failf "%s: unexpected response %s" label
                  (P.encode_response r))
            texts)
        [ "sabre"; "greedy"; "bka" ])

let test_path_source_equals_inline () =
  let file = Filename.temp_file "serve_zoo" ".qasm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc small_qasm;
      close_out oc;
      with_server ~domains:1 (fun path _server ->
          let by_inline = rpc path (compile_req ~id:"inline" small_qasm) in
          let by_path =
            rpc path
              (P.Compile
                 {
                   id = "path";
                   source = P.Path file;
                   device = "tokyo";
                   device_size = None;
                   router = "sabre";
                   overrides = P.no_overrides;
                   cache = true;
                   deadline_s = None;
                 })
          in
          match (by_inline, by_path) with
          | P.Ok_compiled a, P.Ok_compiled b ->
            check Alcotest.string "inline and path QASM agree" a.P.qasm
              b.P.qasm;
            check
              Alcotest.(array int)
              "mappings agree" a.P.initial b.P.initial
          | _ -> Alcotest.fail "one of the two source kinds failed"))

(* ------------------------------------------------------------------ *)
(* Portfolio requests and per-router accounting                        *)
(* ------------------------------------------------------------------ *)

let portfolio_req ?(id = "pf") ?(spec = "sabre,hail/iso,greedy")
    ?(objective = "swaps") ?(race = false) ?(overrides = P.no_overrides)
    ?(cache = true) ?deadline_s qasm =
  P.Portfolio
    {
      id;
      source = P.Inline qasm;
      device = "tokyo";
      device_size = None;
      spec;
      objective;
      race;
      overrides;
      cache;
      deadline_s;
    }

let test_portfolio_request () =
  let overrides = { P.no_overrides with trials = Some 2 } in
  with_server ~domains:1 (fun path server ->
      (* a plain compile against the same circuit is the baseline the
         portfolio winner must beat or tie (sabre is a member) *)
      let plain =
        match rpc path (compile_req ~id:"ref" ~overrides small_qasm) with
        | P.Ok_compiled r -> r
        | r -> Alcotest.failf "baseline compile failed: %s"
                 (P.encode_response r)
      in
      (match rpc path (portfolio_req ~overrides small_qasm) with
      | P.Ok_portfolio { compiled; winner; members } ->
        check Alcotest.string "portfolio id echoed" "pf" compiled.P.id;
        check Alcotest.int "three members" 3 (Array.length members);
        check Alcotest.bool "winner is a member" true
          (Array.exists (fun m -> m.P.entry = winner) members);
        Array.iter
          (fun m ->
            match (m.P.swaps, m.P.error) with
            | Some s, None ->
              check Alcotest.bool
                (Printf.sprintf "winner <= member %s" m.P.entry)
                true
                (compiled.P.n_swaps <= s)
            | None, Some _ -> ()
            | _ -> Alcotest.failf "member %s: inconsistent outcome" m.P.entry)
          members;
        check Alcotest.bool "winner <= plain sabre" true
          (compiled.P.n_swaps <= plain.P.n_swaps);
        check Alcotest.bool "winner QASM non-empty" true
          (String.length compiled.P.qasm > 0)
      | r -> Alcotest.failf "portfolio request answered %s"
               (P.encode_response r));
      (* bad spec and bad objective answer [invalid], not a crash *)
      expect_error P.Invalid
        (rpc path (portfolio_req ~spec:"sabre,,greedy" small_qasm));
      expect_error P.Invalid
        (rpc path (portfolio_req ~objective:"prettiness" small_qasm));
      expect_error P.Invalid
        (rpc path (portfolio_req ~spec:"sabre/not-a-seeder" small_qasm));
      (* per-router accounting: the plain compile and each portfolio
         entry opened a bucket; failed specs never touched one *)
      let s = Server.stats server in
      let find name =
        match
          Array.find_opt (fun r -> r.P.router = name) s.P.per_router
        with
        | Some r -> r
        | None -> Alcotest.failf "no per-router bucket for %s" name
      in
      let sabre = find "sabre" in
      check Alcotest.bool "sabre counted for compile + portfolio entry" true
        (sabre.P.requests >= 2 && sabre.P.succeeded >= 2);
      let hail = find "hail/iso" in
      check Alcotest.int "hail/iso requests" 1 hail.P.requests;
      check Alcotest.int "hail/iso failures" 0 hail.P.failed;
      check Alcotest.int "greedy requests" 1 (find "greedy").P.requests;
      check Alcotest.bool "buckets sorted by router name" true
        (let names = Array.map (fun r -> r.P.router) s.P.per_router in
         let sorted = Array.copy names in
         Array.sort compare sorted;
         names = sorted))

let test_portfolio_matches_engine () =
  (* wire answer is byte-identical to calling Engine.Portfolio locally *)
  let device = Devices.ibm_q20_tokyo () in
  let config = { Config.default with trials = 2 } in
  let overrides = { P.no_overrides with trials = Some 2 } in
  let entries =
    match Engine.Portfolio.parse_spec "sabre,hail/iso,greedy" with
    | Ok e -> e
    | Error msg -> Alcotest.failf "spec rejected: %s" msg
  in
  let local =
    Engine.Portfolio.run ~objective:Engine.Portfolio.Swaps ~config ~verify:true
      device
      (Qasm.of_string small_qasm)
      entries
  in
  let lw = Engine.Portfolio.winner_member local in
  with_server ~domains:2 (fun path _server ->
      match rpc path (portfolio_req ~overrides small_qasm) with
      | P.Ok_portfolio { compiled; winner; _ } ->
        check Alcotest.string "same winner as Engine.Portfolio"
          (Engine.Portfolio.entry_name lw.Engine.Portfolio.entry)
          winner;
        check Alcotest.string "QASM byte-identical to Engine.Portfolio"
          (Qasm.to_string lw.Engine.Portfolio.physical)
          compiled.P.qasm;
        check Alcotest.int "same swap count"
          lw.Engine.Portfolio.n_swaps compiled.P.n_swaps
      | r ->
        Alcotest.failf "portfolio request answered %s" (P.encode_response r))

let test_portfolio_race_over_wire () =
  (* the race flag and per-entry override syntax travel the wire; the
     raced answer is byte-identical to the unraced one, losers may
     only differ by being reported cancelled *)
  let spec = "sabre/iso:trials=1,traversals=1,hail,greedy" in
  with_server ~domains:2 (fun path _server ->
      let plain_compiled, plain_winner, plain_members =
        match rpc path (portfolio_req ~spec small_qasm) with
        | P.Ok_portfolio { compiled; winner; members } ->
          (compiled, winner, members)
        | r -> Alcotest.failf "plain portfolio failed: %s"
                 (P.encode_response r)
      in
      match rpc path (portfolio_req ~spec ~race:true small_qasm) with
      | P.Ok_portfolio { compiled; winner; members } ->
        check Alcotest.string "same winner" plain_winner winner;
        check Alcotest.string "winner QASM byte-identical"
          plain_compiled.P.qasm compiled.P.qasm;
        check Alcotest.int "same member count"
          (Array.length plain_members)
          (Array.length members);
        Array.iteri
          (fun i (m : P.member_stat) ->
            let p = plain_members.(i) in
            check Alcotest.string "member names line up" p.P.entry m.P.entry;
            (match (m.P.swaps, m.P.error) with
            | Some s, None ->
              (* completed under racing: identical to the plain run *)
              check Alcotest.bool (m.P.entry ^ ": swaps unchanged") true
                (p.P.swaps = Some s);
              check Alcotest.bool (m.P.entry ^ ": value reported") true
                (m.P.value <> None);
              check Alcotest.bool (m.P.entry ^ ": not cancelled") false
                m.P.cancelled
            | None, Some _ ->
              (* stopped: only ever by cancellation, never a new failure
                 (every entry of this spec completes when unraced) *)
              check Alcotest.bool (m.P.entry ^ ": flagged cancelled") true
                m.P.cancelled
            | _ -> Alcotest.failf "member %s: inconsistent outcome" m.P.entry);
            check Alcotest.bool (m.P.entry ^ ": wall time reported") true
              (m.P.wall_s <> None))
          members
      | r ->
        Alcotest.failf "raced portfolio answered %s" (P.encode_response r))

(* ------------------------------------------------------------------ *)
(* Concurrency                                                         *)
(* ------------------------------------------------------------------ *)

let test_concurrent_clients () =
  let device = Devices.ibm_q20_tokyo () in
  let n_clients = 8 in
  let texts =
    Array.init n_clients (fun i ->
        Qasm.to_string (Helpers.random_circuit ~seed:(300 + i) ~n:10 ~gates:60))
  in
  let expected =
    Array.map
      (fun text ->
        let report =
          Batch.compile_many ~verify:true device
            [| { Batch.name = "ref"; circuit = Qasm.of_string text } |]
        in
        match report.Batch.outcomes.(0) with
        | Ok s -> Qasm.to_string s.Batch.physical
        | Error e -> Alcotest.failf "reference compile failed: %s" e.message)
      texts
  in
  with_server ~domains:3 (fun path _server ->
      let results = Array.make n_clients None in
      let threads =
        Array.init n_clients (fun i ->
            Thread.create
              (fun i ->
                Client.with_connection ~retry_for_s:5.0 (P.Unix_sock path)
                  (fun c ->
                    results.(i) <-
                      Some
                        (Client.request c
                           (compile_req ~id:(string_of_int i) texts.(i)))))
              i)
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok (P.Ok_compiled c)) ->
            check Alcotest.string "own id comes back" (string_of_int i) c.P.id;
            check Alcotest.string
              (Printf.sprintf "client %d gets its own result" i)
              expected.(i) c.P.qasm
          | Some (Ok r) ->
            Alcotest.failf "client %d: %s" i (P.encode_response r)
          | Some (Error e) -> Alcotest.failf "client %d transport: %s" i e
          | None -> Alcotest.failf "client %d got no response" i)
        results)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_capacity_zero () =
  with_server ~domains:1 ~queue_capacity:0 (fun path server ->
      expect_error P.Queue_full (rpc path (compile_req small_qasm));
      (* control plane is not subject to admission *)
      check Alcotest.bool "ping bypasses the queue" true
        (rpc path (P.Ping { id = "p" }) = P.Pong { id = "p" });
      let s = Server.stats server in
      check Alcotest.int "rejection counted" 1 s.P.rejected;
      check Alcotest.int "nothing served" 0 s.P.served)

let test_admission_flood () =
  let big = Lazy.force big_qasm in
  with_server ~domains:1 ~queue_capacity:1 (fun path server ->
      let n = 3 in
      let results = Array.make n None in
      let threads =
        Array.init n (fun i ->
            Thread.create
              (fun i ->
                Client.with_connection ~retry_for_s:5.0 (P.Unix_sock path)
                  (fun c ->
                    results.(i) <-
                      Some (Client.request c (compile_req ~id:(string_of_int i) big))))
              i)
      in
      Array.iter Thread.join threads;
      let served = ref 0 and rejected = ref 0 in
      Array.iteri
        (fun i -> function
          | Some (Ok (P.Ok_compiled _)) -> incr served
          | Some (Ok (P.Error_resp { kind = P.Queue_full; _ })) ->
            incr rejected
          | Some (Ok r) ->
            Alcotest.failf "client %d: unexpected %s" i (P.encode_response r)
          | Some (Error e) -> Alcotest.failf "client %d transport: %s" i e
          | None -> Alcotest.failf "client %d got no response" i)
        results;
      check Alcotest.bool "at least one served" true (!served >= 1);
      check Alcotest.bool "at least one rejected" true (!rejected >= 1);
      check Alcotest.int "every request accounted for" n (!served + !rejected);
      let s = Server.stats server in
      check Alcotest.int "stats.served agrees" !served s.P.served;
      check Alcotest.int "stats.rejected agrees" !rejected s.P.rejected)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_deadline_pre_expired () =
  with_server ~domains:1 (fun path server ->
      expect_error P.Timeout
        (rpc path (compile_req ~deadline_s:0.0 small_qasm));
      (* the pool is not poisoned: the next request routes normally *)
      (match rpc path (compile_req ~id:"after" small_qasm) with
      | P.Ok_compiled r -> check Alcotest.string "healthy after" "after" r.P.id
      | r -> Alcotest.failf "pool poisoned: %s" (P.encode_response r));
      let s = Server.stats server in
      check Alcotest.int "timeout counted" 1 s.P.timed_out;
      check Alcotest.int "healthy request counted" 1 s.P.served)

let test_deadline_slow_route () =
  let big = Lazy.force big_qasm in
  with_server ~domains:1 (fun path server ->
      (* routing takes ~0.7 s; the deadline expires under it, so the
         cooperative probe aborts the route and answers timeout *)
      expect_error P.Timeout (rpc path (compile_req ~deadline_s:0.05 big));
      (match rpc path (compile_req ~id:"after" small_qasm) with
      | P.Ok_compiled _ -> ()
      | r -> Alcotest.failf "pool poisoned: %s" (P.encode_response r));
      let s = Server.stats server in
      check Alcotest.int "slow route counted as timeout" 1 s.P.timed_out;
      check Alcotest.int "worker survived to serve again" 1 s.P.served)

let test_deadline_cancels_mid_route () =
  let big = Lazy.force big_qasm in
  with_server ~domains:1 (fun path server ->
      (* baseline: a full route of the big circuit (also warms the
         distance cache so the timed run below measures routing only) *)
      let t0 = Unix.gettimeofday () in
      (match rpc path (compile_req ~id:"full" big) with
      | P.Ok_compiled _ -> ()
      | r -> Alcotest.failf "baseline route failed: %s" (P.encode_response r));
      let full_s = Unix.gettimeofday () -. t0 in
      (* mid-route expiry: with cooperative cancellation the worker
         aborts at the next progress check instead of routing to the
         end and discarding — the answer must arrive well before a
         full route's wall time *)
      let deadline_s = full_s /. 8.0 in
      let t1 = Unix.gettimeofday () in
      expect_error P.Timeout (rpc path (compile_req ~deadline_s big));
      let cancelled_s = Unix.gettimeofday () -. t1 in
      check Alcotest.bool
        (Printf.sprintf
           "cancelled route returned early (%.3fs vs %.3fs full)"
           cancelled_s full_s)
        true
        (cancelled_s < 0.6 *. full_s);
      (* the abort unwound through the scratch write-back: the same
         worker routes the same circuit again, to the same answer *)
      (match rpc path (compile_req ~id:"after" big) with
      | P.Ok_compiled r -> check Alcotest.string "healthy after" "after" r.P.id
      | r -> Alcotest.failf "pool poisoned: %s" (P.encode_response r));
      let s = Server.stats server in
      check Alcotest.int "mid-route expiry counted as timeout" 1 s.P.timed_out;
      check Alcotest.int "full routes served" 2 s.P.served)

let test_default_deadline_applies () =
  with_server ~domains:1 ~default_deadline_s:(-1.0) (fun path _server ->
      (* the server default is pre-expired; a request carrying its own
         generous deadline overrides it *)
      expect_error P.Timeout (rpc path (compile_req small_qasm));
      match rpc path (compile_req ~deadline_s:30.0 small_qasm) with
      | P.Ok_compiled _ -> ()
      | r ->
        Alcotest.failf "per-request deadline ignored: %s" (P.encode_response r))

(* ------------------------------------------------------------------ *)
(* Compile cache over the wire                                         *)
(* ------------------------------------------------------------------ *)

let test_serve_compile_cache () =
  Engine.Compile_cache.clear ();
  with_server ~domains:1 ~cache:true (fun path server ->
      let cold =
        match rpc path (compile_req ~id:"cold" small_qasm) with
        | P.Ok_compiled r -> r
        | r -> Alcotest.failf "cold compile failed: %s" (P.encode_response r)
      in
      (* identical request: answered from the cache at admission *)
      let warm =
        match rpc path (compile_req ~id:"warm" small_qasm) with
        | P.Ok_compiled r -> r
        | r -> Alcotest.failf "warm compile failed: %s" (P.encode_response r)
      in
      check Alcotest.string "hit QASM byte-identical" cold.P.qasm warm.P.qasm;
      check
        Alcotest.(array int)
        "hit initial mapping identical" cold.P.initial warm.P.initial;
      check
        Alcotest.(array int)
        "hit final mapping identical" cold.P.final warm.P.final;
      check Alcotest.int "hit swap count identical" cold.P.n_swaps
        warm.P.n_swaps;
      check Alcotest.int "hit depth identical" cold.P.routed_depth
        warm.P.routed_depth;
      check Alcotest.string "hit echoes its own id" "warm" warm.P.id;
      (* cache=false forces a fresh route — same deterministic answer *)
      let fresh =
        match rpc path (compile_req ~id:"fresh" ~cache:false small_qasm) with
        | P.Ok_compiled r -> r
        | r ->
          Alcotest.failf "cache=false compile failed: %s"
            (P.encode_response r)
      in
      check Alcotest.string "uncached route agrees" cold.P.qasm fresh.P.qasm;
      (* a pre-expired deadline is never answered from the cache, even
         with the result resident *)
      expect_error P.Timeout (rpc path (compile_req ~deadline_s:0.0 small_qasm));
      let s = Server.stats server in
      check Alcotest.int "three served" 3 s.P.served;
      check Alcotest.int "timeout preserved despite resident entry" 1
        s.P.timed_out;
      check Alcotest.int "exactly one admission hit" 1 s.P.cache_hits;
      check Alcotest.bool "entry resident with bytes accounted" true
        (s.P.cache_entries >= 1 && s.P.cache_bytes > 0);
      (* the hit never occupied a worker: cold + cache=false + the
         timed-out pop are the only jobs the pool ran *)
      let jobs =
        Array.fold_left (fun acc d -> acc + d.P.jobs_run) 0 s.P.per_domain
      in
      check Alcotest.int "admission hit bypassed the worker queue" 3 jobs)

(* ------------------------------------------------------------------ *)
(* Lifecycle: drain and signals                                        *)
(* ------------------------------------------------------------------ *)

let test_sigterm_drains_in_flight () =
  let path = fresh_sock () in
  let server = Server.start ~domains:1 (P.Unix_sock path) in
  Server.install_signal_handlers server;
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default)
    (fun () ->
      let c = Client.connect ~retry_for_s:5.0 (P.Unix_sock path) in
      check Alcotest.bool "alive before signal" true
        (Client.request c (P.Ping { id = "pre" }) = Ok (P.Pong { id = "pre" }));
      let resp = ref None in
      let t =
        Thread.create
          (fun () ->
            resp := Some (Client.request c (compile_req ~id:"inflight" (Lazy.force big_qasm))))
          ()
      in
      (* let the request reach the queue, then signal ourselves *)
      Thread.delay 0.15;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Server.wait server;
      Thread.join t;
      Client.close c;
      (match !resp with
      | Some (Ok (P.Ok_compiled r)) ->
        check Alcotest.string "in-flight job drained, not dropped" "inflight"
          r.P.id
      | Some (Ok r) ->
        Alcotest.failf "in-flight job answered %s" (P.encode_response r)
      | Some (Error e) -> Alcotest.failf "in-flight transport: %s" e
      | None -> Alcotest.fail "in-flight request lost");
      (* stop is idempotent after wait *)
      Server.stop server;
      (* the socket is unlinked: connecting again fails *)
      check Alcotest.bool "socket gone after drain" true
        (match Client.connect (P.Unix_sock path) with
        | exception Unix.Unix_error _ -> true
        | c2 ->
          Client.close c2;
          false))

let test_requests_during_drain_get_shutting_down () =
  let path = fresh_sock () in
  let server = Server.start ~domains:1 (P.Unix_sock path) in
  let c = Client.connect ~retry_for_s:5.0 (P.Unix_sock path) in
  check Alcotest.bool "alive" true
    (Client.request c (P.Ping { id = "a" }) = Ok (P.Pong { id = "a" }));
  (* occupy the worker so the drain has something to wait for *)
  let busy = ref None in
  let t =
    Thread.create
      (fun () ->
        busy :=
          Some (Client.request c (compile_req ~id:"busy" (Lazy.force big_qasm))))
      ()
  in
  Thread.delay 0.15;
  (* second connection races the drain: every outcome must be a
     well-formed protocol answer or an orderly close, never a hang *)
  let c2 = Client.connect ~retry_for_s:5.0 (P.Unix_sock path) in
  let stopper = Thread.create (fun () -> Server.stop server) () in
  Thread.delay 0.05;
  let late = Client.request c2 (compile_req ~id:"late" small_qasm) in
  Thread.join stopper;
  Thread.join t;
  Client.close c;
  Client.close c2;
  (match !busy with
  | Some (Ok (P.Ok_compiled _)) -> ()
  | r ->
    Alcotest.failf "busy job not drained: %s"
      (match r with
      | Some (Ok resp) -> P.encode_response resp
      | Some (Error e) -> e
      | None -> "no response"))
  ;
  match late with
  | Ok (P.Ok_compiled _)
  | Ok (P.Error_resp { kind = P.Shutting_down; _ })
  | Error _ -> ()
  | Ok r ->
    Alcotest.failf "late request answered %s" (P.encode_response r)

(* ------------------------------------------------------------------ *)
(* Instrument.sync_collector under concurrent emitters                 *)
(* ------------------------------------------------------------------ *)

let test_sync_collector_concurrent () =
  let sink, read = Instrument.sync_collector () in
  let n_domains = 4 and per_domain = 1000 in
  let emitters =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for v = 0 to per_domain - 1 do
              sink.Instrument.emit
                (Instrument.Counter
                   { pass = Printf.sprintf "d%d" d; name = "tick"; value = v })
            done))
  in
  (* concurrent reads see consistent prefixes, never a torn list *)
  let snapshots = List.init 5 (fun _ -> List.length (read ())) in
  check Alcotest.bool "snapshot lengths are sane" true
    (List.for_all (fun n -> n >= 0 && n <= n_domains * per_domain) snapshots);
  Array.iter Domain.join emitters;
  let events = read () in
  check Alcotest.int "no event lost or duplicated" (n_domains * per_domain)
    (List.length events);
  for d = 0 to n_domains - 1 do
    let pass = Printf.sprintf "d%d" d in
    let mine =
      List.filter_map
        (function
          | Instrument.Counter { pass = p; value; _ } when p = pass ->
            Some value
          | _ -> None)
        events
    in
    check Alcotest.int (pass ^ " complete") per_domain (List.length mine);
    check
      Alcotest.(list int)
      (pass ^ " per-emitter order preserved")
      (List.init per_domain Fun.id)
      mine
  done

let test_sync_collector_with_batch () =
  let sink, read = Instrument.sync_collector () in
  let device = Devices.ibm_q20_tokyo () in
  let jobs =
    Array.init 4 (fun i ->
        {
          Batch.name = Printf.sprintf "j%d" i;
          circuit = Helpers.random_circuit ~seed:(500 + i) ~n:8 ~gates:30;
        })
  in
  let report =
    Batch.compile_many ~domains:2 ~verify:true ~instrument:sink device jobs
  in
  Array.iter
    (function
      | Ok _ -> ()
      | Error (e : Batch.error) -> Alcotest.failf "%s: %s" e.name e.message)
    report.Batch.outcomes;
  let pass_ends =
    List.length
      (List.filter
         (function Instrument.Pass_end _ -> true | _ -> false)
         (read ()))
  in
  check Alcotest.bool "pass events collected from both domains" true
    (pass_ends >= 4)

(* ------------------------------------------------------------------ *)

let suite =
  [
    tc "jsonx round-trips" `Quick test_jsonx_roundtrip;
    tc "jsonx rejects malformed input" `Quick test_jsonx_rejects;
    QCheck_alcotest.to_alcotest request_roundtrip_prop;
    tc "response codec round-trips" `Quick test_response_roundtrip;
    tc "stats decode tolerates an older server" `Quick
      test_stats_decode_tolerates_old_server;
    tc "malformed requests decode to typed errors" `Quick test_decode_malformed;
    tc "oversized requests rejected before parsing" `Quick test_decode_oversized;
    tc "rqueue admission semantics" `Quick test_rqueue;
    tc "rqueue cross-domain handoff" `Quick test_rqueue_cross_domain;
    tc "netline framing" `Quick test_netline_framing;
    tc "netline overflow is sticky" `Quick test_netline_overflow;
    tc "netline tolerates a vanished peer" `Quick test_netline_peer_gone;
    tc "ping and stats" `Quick test_ping_and_stats;
    tc "server-side failures are typed" `Quick test_typed_errors;
    tc "oversized request answered and connection dropped" `Quick
      test_oversized_request;
    tc "responses byte-identical to Engine.Batch (3 routers x zoo)" `Slow
      test_byte_identity;
    tc "path source equals inline source" `Quick test_path_source_equals_inline;
    tc "portfolio requests: winner, members, per-router stats" `Quick
      test_portfolio_request;
    tc "portfolio response byte-identical to Engine.Portfolio" `Quick
      test_portfolio_matches_engine;
    tc "concurrent clients each get their own result" `Slow
      test_concurrent_clients;
    tc "admission control: zero capacity" `Quick test_admission_capacity_zero;
    tc "admission control under flood" `Slow test_admission_flood;
    tc "pre-expired deadline times out without routing" `Quick
      test_deadline_pre_expired;
    tc "slow route hits its deadline without poisoning the pool" `Slow
      test_deadline_slow_route;
    tc "mid-route deadline cancels cooperatively" `Slow
      test_deadline_cancels_mid_route;
    tc "portfolio race flag over the wire" `Quick
      test_portfolio_race_over_wire;
    tc "per-request deadline overrides the server default" `Quick
      test_default_deadline_applies;
    tc "compile cache: admission hits, overrides, deadlines" `Quick
      test_serve_compile_cache;
    tc "SIGTERM drains in-flight work then stops" `Slow
      test_sigterm_drains_in_flight;
    tc "requests racing the drain get typed answers" `Slow
      test_requests_during_drain_get_shutting_down;
    tc "sync_collector under concurrent emitters" `Quick
      test_sync_collector_concurrent;
    tc "sync_collector as a Batch sink" `Quick test_sync_collector_with_batch;
  ]
