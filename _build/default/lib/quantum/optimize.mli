(** Peephole circuit optimisation.

    Routing inserts SWAPs that, once decomposed, can cancel against
    neighbouring CNOTs; compilers also accumulate adjacent self-inverse
    gates and mergeable rotations. This pass cleans those up without
    changing circuit semantics or qubit placement — it is safe to apply
    after routing because it never moves a two-qubit gate to a different
    qubit pair.

    Rules applied (to a fixed point across commuting reorderings along
    each qubit's gate sequence):
    - adjacent identical CNOT/CZ/SWAP pairs cancel;
    - adjacent self-inverse single-qubit pairs cancel (H·H, X·X, ...);
    - adjacent inverse pairs cancel (S·S†, T·T†);
    - adjacent rotations about the same axis merge (Rz(a)·Rz(b) = Rz(a+b),
      likewise Rx/Ry/U1), and a merged zero rotation is dropped;
    - identity gates are dropped.

    "Adjacent" means consecutive in the per-qubit gate sequence with no
    intervening gate on the same qubit(s) — exactly the dependency-DAG
    notion, so the result is equal to the input as a unitary. *)

val run : Circuit.t -> Circuit.t
(** Optimise to a fixed point. Barriers are preserved and block
    cancellation across them; measurements are preserved. *)

val cancel_pairs_once : Circuit.t -> Circuit.t
(** One sweep of the cancellation/merging rules; exposed for tests. *)

val removed_gate_count : Circuit.t -> int
(** [removed_gate_count c] = gates of [c] minus gates of [run c]. *)
