test/helpers.ml: Alcotest Hardware Quantum Sabre Sim Workloads
