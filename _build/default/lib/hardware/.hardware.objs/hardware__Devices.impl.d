lib/hardware/devices.ml: Coupling Float List Printf String
