module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Router = Engine.Router
module Config = Sabre_core.Config

type counterexample = {
  repro : Corpus.repro;
  original_gates : int;
  shrunk_gates : int;
  shrink_steps : int;
  path : string option;
}

type event = Trial_done of int | Counterexample of counterexample

type campaign = {
  trials_run : int;
  elapsed_s : float;
  routers : string list;
  failures : counterexample list;
}

(* ------------------------------------------------------------------ *)
(* Counterexample minimisation                                         *)
(* ------------------------------------------------------------------ *)

let rebuild like gates =
  Circuit.create ~n_qubits:(Circuit.n_qubits like)
    ~n_clbits:(Circuit.n_clbits like) gates

let remove_window gates lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) gates

(* Greedy delta debugging over the gate list: sweep windows of halving
   size, deleting any window whose removal keeps the failure alive. *)
let shrink ?(max_evals = 400) ~still_fails c =
  let evals = ref 0 in
  let ok cand =
    !evals < max_evals
    && begin
         incr evals;
         still_fails cand
       end
  in
  let current = ref c in
  let steps = ref 0 in
  let attempt lo len =
    let gates = Circuit.gates !current in
    let n = List.length gates in
    if lo >= n then `Past
    else begin
      let cand = rebuild !current (remove_window gates lo (min len (n - lo))) in
      if ok cand then begin
        current := cand;
        incr steps;
        `Removed
      end
      else `Kept
    end
  in
  let rec at_chunk chunk =
    if chunk >= 1 then begin
      let lo = ref 0 in
      let scanning = ref true in
      while !scanning do
        match attempt !lo chunk with
        | `Past -> scanning := false
        | `Removed -> ()  (* the window slid out; same lo, fresh gates *)
        | `Kept -> lo := !lo + chunk
      done;
      at_chunk (chunk / 2)
    end
  in
  at_chunk (max 1 (Circuit.length c / 2));
  (!current, !steps)

(* ------------------------------------------------------------------ *)
(* The deliberately faulty router                                      *)
(* ------------------------------------------------------------------ *)

let broken_router : Router.t =
  (module struct
    let name = "broken"
    let deterministic = false
    let derives_seed = false

    let route ctx ~initial =
      let (module Sabre : Router.S) = Engine.Sabre_router.router in
      let o = Sabre.route ctx ~initial in
      let gates = Circuit.gates o.Router.physical in
      let last_swap =
        List.fold_left
          (fun (i, found) g ->
            (i + 1, match g with Gate.Swap _ -> Some i | _ -> found))
          (0, None) gates
        |> snd
      in
      match last_swap with
      | None -> o
      | Some at ->
        {
          o with
          Router.physical =
            rebuild o.Router.physical
              (List.filteri (fun i _ -> i <> at) gates);
        }
  end)

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

(* trial i's instance seed: a fixed odd-constant hash of (seed, i), kept
   non-negative so it survives the repro file's decimal round-trip *)
let mix seed i = (seed + (i * 0x9e3779b1)) land 0x3FFFFFFF

let conformance_failure ~config coupling circuit router =
  match Differential.check_router ~states:1 ~config coupling circuit router with
  | Differential.Fail f -> Some (Oracle.failure_to_string f)
  | Differential.Pass | Differential.Skip _ -> None

let determinism_failure ~config coupling circuit router =
  match Differential.determinism ~config coupling circuit router with
  | Error msg -> Some msg
  | Ok () -> None

let flatcore_failure ~config coupling circuit =
  match Differential.flatcore_equivalence ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let delta_failure ~config coupling circuit =
  match Differential.delta_equivalence ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let stream_failure ~config coupling circuit =
  match Differential.stream_equivalence ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let iso_seed_failure ~config coupling circuit =
  match Differential.iso_seed_conformance ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let portfolio_failure ~config coupling circuit =
  match Differential.portfolio_dominance ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let racing_failure ~config coupling circuit =
  match Differential.racing_equivalence ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let cache_failure ~config coupling circuit =
  match Differential.cache_equivalence ~config coupling circuit with
  | Error msg -> Some msg
  | Ok () -> None

let run ?budget_s ?max_trials ?corpus_dir ?(max_qubits = 6) ?(max_gates = 40)
    ?(on_event = fun (_ : event) -> ()) ~seed ~routers () =
  Differential.ensure_registered ();
  if List.mem "broken" routers then Router.register broken_router;
  let t0 = Unix.gettimeofday () in
  let trial_cap =
    match (budget_s, max_trials) with None, None -> Some 200 | _ -> max_trials
  in
  let stop trials =
    (match budget_s with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false)
    || match trial_cap with Some m -> trials >= m | None -> false
  in
  let failures = ref [] in
  let dead = Hashtbl.create 8 in
  let record ~router ~property ~config ~coupling ~circuit ~iseed ~first_failure
      ~failure_of =
    let still_fails c = Option.is_some (failure_of c) in
    let shrunk, shrink_steps = shrink ~still_fails circuit in
    let failure =
      match failure_of shrunk with Some f -> f | None -> first_failure
    in
    let repro =
      { Corpus.router; property; seed = iseed; failure; config; coupling;
        circuit = shrunk }
    in
    let path = Option.map (fun dir -> Corpus.save ~dir repro) corpus_dir in
    let cx =
      {
        repro;
        original_gates = Circuit.length circuit;
        shrunk_gates = Circuit.length shrunk;
        shrink_steps;
        path;
      }
    in
    failures := cx :: !failures;
    Hashtbl.replace dead (router, property) ();
    on_event (Counterexample cx)
  in
  let trials = ref 0 in
  while not (stop !trials) do
    let iseed = mix seed !trials in
    let inst = Generators.instance_of_seed ~max_qubits ~max_gates iseed in
    let config = inst.Generators.config in
    let coupling = inst.Generators.coupling in
    List.iter
      (fun rname ->
        match Router.find rname with
        | None -> ()
        | Some router ->
          let (module R : Router.S) = router in
          if not (Hashtbl.mem dead (rname, "conformance")) then begin
            match
              conformance_failure ~config coupling inst.Generators.circuit
                router
            with
            | None -> ()
            | Some first_failure ->
              record ~router:rname ~property:"conformance" ~config ~coupling
                ~circuit:inst.Generators.circuit ~iseed ~first_failure
                ~failure_of:(fun c ->
                  conformance_failure ~config coupling c router)
          end;
          if
            (not R.deterministic)
            && not (Hashtbl.mem dead (rname, "determinism"))
          then begin
            match
              determinism_failure ~config coupling inst.Generators.circuit
                router
            with
            | None -> ()
            | Some first_failure ->
              record ~router:rname ~property:"determinism" ~config ~coupling
                ~circuit:inst.Generators.circuit ~iseed ~first_failure
                ~failure_of:(fun c ->
                  determinism_failure ~config coupling c router)
          end)
      routers;
    (* transitional flat-core refactor property: old and new SABRE must
       emit byte-identical routings on every generated instance *)
    if
      List.mem "sabre" routers
      && not (Hashtbl.mem dead ("sabre", "flatcore-equivalence"))
    then begin
      match flatcore_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"flatcore-equivalence" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> flatcore_failure ~config coupling c)
    end;
    (* delta-scoring property: incremental and full-recompute candidate
       scoring must emit byte-identical routings on every instance *)
    if
      List.mem "sabre" routers
      && not (Hashtbl.mem dead ("sabre", "delta-equivalence"))
    then begin
      match delta_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"delta-equivalence" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> delta_failure ~config coupling c)
    end;
    (* streaming property: windowed single-pass routing must emit the
       byte-identical gate sequence to the materialised run *)
    if
      List.mem "sabre" routers
      && not (Hashtbl.mem dead ("sabre", "stream-equivalence"))
    then begin
      match stream_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"stream-equivalence" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> stream_failure ~config coupling c)
    end;
    (* seeder property: the iso-anchored initial mapping must keep the
       routed result oracle-clean when pinned on sabre *)
    if
      List.mem "sabre" routers
      && not (Hashtbl.mem dead ("sabre", "iso-seed"))
    then begin
      match iso_seed_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"iso-seed" ~config ~coupling
          ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> iso_seed_failure ~config coupling c)
    end;
    (* portfolio property: the best-of-K winner dominates its members,
       plain sabre, and any domain fan-out *)
    if
      List.mem "sabre" routers
      && List.mem "hail" routers
      && List.mem "greedy" routers
      && not (Hashtbl.mem dead ("sabre", "portfolio-dominance"))
    then begin
      match portfolio_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"portfolio-dominance" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> portfolio_failure ~config coupling c)
    end;
    (* racing property: incumbent-bound pruning must be observationally
       pure — same winner, same completing-entry results, losers only
       ever reported cancelled *)
    if
      List.mem "sabre" routers
      && List.mem "hail" routers
      && List.mem "greedy" routers
      && not (Hashtbl.mem dead ("sabre", "racing-equivalence"))
    then begin
      match racing_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"racing-equivalence" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> racing_failure ~config coupling c)
    end;
    (* cache property: a memoized routing result (cold insert and warm
       hit) must be byte-identical to the uncached route *)
    if
      List.mem "sabre" routers
      && not (Hashtbl.mem dead ("sabre", "cache-equivalence"))
    then begin
      match cache_failure ~config coupling inst.Generators.circuit with
      | None -> ()
      | Some first_failure ->
        record ~router:"sabre" ~property:"cache-equivalence" ~config
          ~coupling ~circuit:inst.Generators.circuit ~iseed ~first_failure
          ~failure_of:(fun c -> cache_failure ~config coupling c)
    end;
    incr trials;
    on_event (Trial_done !trials)
  done;
  {
    trials_run = !trials;
    elapsed_s = Unix.gettimeofday () -. t0;
    routers;
    failures = List.rev !failures;
  }

let replay (r : Corpus.repro) =
  Differential.ensure_registered ();
  if r.Corpus.router = "broken" then Router.register broken_router;
  match Router.find r.Corpus.router with
  | None -> `Error (Printf.sprintf "router %S is not registered" r.Corpus.router)
  | Some router -> (
    let config = r.Corpus.config in
    let coupling = r.Corpus.coupling in
    let circuit = r.Corpus.circuit in
    match r.Corpus.property with
    | "conformance" -> (
      match Differential.check_router ~states:1 ~config coupling circuit router with
      | Differential.Fail f -> `Reproduced (Oracle.failure_to_string f)
      | Differential.Pass -> `Passes
      | Differential.Skip msg ->
        `Error (Printf.sprintf "router skipped the instance: %s" msg))
    | "determinism" -> (
      match Differential.determinism ~config coupling circuit router with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "flatcore-equivalence" -> (
      match Differential.flatcore_equivalence ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "delta-equivalence" -> (
      match Differential.delta_equivalence ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "stream-equivalence" -> (
      match Differential.stream_equivalence ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "iso-seed" -> (
      match Differential.iso_seed_conformance ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "portfolio-dominance" -> (
      match Differential.portfolio_dominance ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "racing-equivalence" -> (
      match Differential.racing_equivalence ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | "cache-equivalence" -> (
      match Differential.cache_equivalence ~config coupling circuit with
      | Error msg -> `Reproduced msg
      | Ok () -> `Passes)
    | p -> `Error (Printf.sprintf "unknown property %S" p))
