module Circuit = Quantum.Circuit
module Mapping = Sabre_core.Mapping

type outcome = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals : int;
  scoring : Sabre_core.Stats.scoring;
      (* inner-loop scorer accounting; [Stats.scoring_zero] for routers
         without a heuristic decision loop *)
}

exception Route_failed of string

module type S = sig
  val name : string
  val deterministic : bool
  val derives_seed : bool
  val route : Context.t -> initial:Mapping.t -> outcome
end

type t = (module S)

let name (module R : S) = R.name
let deterministic (module R : S) = R.deterministic
let derives_seed (module R : S) = R.derives_seed

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let register (module R : S) = Hashtbl.replace registry R.name (module R : S)
let find n = Hashtbl.find_opt registry n

let names () =
  Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort compare

let find_suggest n =
  match find n with
  | Some r -> Ok r
  | None ->
    Error
      (Printf.sprintf "unknown router %S (available: %s)" n
         (String.concat ", " (names ())))
