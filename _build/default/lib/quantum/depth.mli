(** Circuit depth and scheduling.

    Depth is the length of the critical path under the as-soon-as-possible
    (ASAP) schedule in which every gate occupies one time step on each of
    its qubits and a gate starts once all earlier gates on its qubits have
    finished. This matches the paper's depth metric (Section III):
    inserting a SWAP that overlaps no active qubit adds 1 to the depth,
    overlapping SWAPs serialise. *)

type schedule = {
  levels : int array;  (** [levels.(i)] is the ASAP time step of gate i *)
  depth : int;  (** total number of time steps *)
}

val asap : ?weight:(Gate.t -> int) -> Circuit.t -> schedule
(** [asap c] computes the ASAP schedule. [weight] gives each gate's
    duration in time steps (default: 1 for every unitary gate and
    measurement, 0 for barriers — barriers order gates but take no time). *)

val alap : ?weight:(Gate.t -> int) -> Circuit.t -> schedule
(** As-late-as-possible schedule with the same makespan as {!asap}:
    [levels.(i)] is the latest start of gate i that still finishes the
    circuit in [depth] steps. *)

val slack : ?weight:(Gate.t -> int) -> Circuit.t -> int array
(** Per-gate scheduling freedom: [alap level − asap level]. Gates with
    slack 0 form the critical path(s); large-slack gates are where a
    depth-aware router (the decay effect of Section IV-C3) can hide
    SWAPs for free. *)

val depth : Circuit.t -> int
(** [depth c] is [(asap c).depth]. The empty circuit has depth 0. *)

val depth_swap3 : Circuit.t -> int
(** Depth with every SWAP weighted as 3 time steps (its CNOT
    decomposition), all other unitaries as 1. This is the metric used to
    compare routed circuits when SWAPs have not yet been decomposed. *)

val two_qubit_depth : Circuit.t -> int
(** Depth counting only two-qubit gates (single-qubit gates weigh 0):
    a common NISQ proxy since CNOTs dominate error and duration. *)

val parallelism : Circuit.t -> float
(** Average number of gates per time step, [gate_count / depth];
    0 for the empty circuit. *)

val layers : Circuit.t -> Gate.t list list
(** Gates grouped by ASAP time step, earliest first; barriers excluded. *)
