module Circuit = Quantum.Circuit

(** Cuccaro ripple-carry adder — a realistic reversible-arithmetic
    workload of the kind the paper's "large" RevLib benchmarks contain.
    Toffolis are expanded with {!Quantum.Decompose.toffoli}, so the
    circuit is in the elementary gate set. *)

val circuit : int -> Circuit.t
(** [circuit bits] adds two [bits]-bit registers in place on
    2·bits + 2 qubits (carry-in ancilla, a-register, b-register,
    carry-out). Qubit layout: 0 = carry-in, then interleaved a_i, b_i
    pairs, last = carry-out. *)

val n_qubits_for : int -> int
(** Qubits used by [circuit bits]. *)
