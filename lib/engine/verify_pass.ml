module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Tracker = Sim.Tracker

exception Verify_failed of string

let name = "verify"

let fail fmt = Format.kasprintf (fun s -> raise (Verify_failed s)) fmt

let check_strict (ctx : Context.t) (r : Context.routed) =
  match
    Tracker.check ~coupling:ctx.coupling
      ~initial:(Mapping.l2p_array r.trial_initial)
      ~final:(Mapping.l2p_array r.final_mapping)
      ~logical:ctx.circuit ~physical:r.physical ()
  with
  | Ok () -> ()
  | Error e -> fail "verification failed: %a" Tracker.pp_error e

(* Commutation-aware routing may reorder commuting gates, breaking the
   per-qubit-sequence equality the tracker checks; verify compliance
   plus linearisation of the commuting DAG instead. *)
let check_commuting (ctx : Context.t) (r : Context.routed) =
  (match Tracker.check_compliance ~coupling:ctx.coupling r.physical with
  | Ok () -> ()
  | Error e -> fail "verification failed: %a" Tracker.pp_error e);
  match
    Tracker.unroute
      ~initial:(Mapping.l2p_array r.trial_initial)
      ~n_logical:(Circuit.n_qubits ctx.circuit)
      r.physical
  with
  | Error e -> fail "verification failed: %a" Tracker.pp_error e
  | Ok (recovered, _) ->
    let dag =
      match ctx.dag_forward with
      | Some d when ctx.config.Config.commutation_aware -> d
      | _ -> Dag.of_circuit_commuting ctx.circuit
    in
    if not (Dag.matches_linearization dag recovered) then
      fail "verification failed: not a commuting linearisation"

let check ctx r =
  if ctx.Context.config.Config.commutation_aware then check_commuting ctx r
  else check_strict ctx r

let pass =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      (* a compile-cache result was verified on insert (Routing_pass
         runs [check] before [Compile_cache.fill]); re-checking a hit
         would defeat the point of the cache *)
      if ctx.verified = Some true then
        Pass.count instrument ~pass:name ctx "cached" 1
      else begin
        let r = Context.routed_exn ctx in
        check ctx r;
        let ctx = { ctx with verified = Some true } in
        Pass.count instrument ~pass:name ctx "ok" 1
      end)
