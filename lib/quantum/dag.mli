(** Dependency DAG of a circuit (paper Section IV-A, "Circuit DAG
    generation").

    Nodes are gate indices into the source circuit's gate array. There is
    an edge [i -> j] when gate [j] is the first gate after [i] acting on
    one of [i]'s qubits; hence the DAG captures exactly the execution
    constraints. Unlike the paper's exposition, single-qubit gates,
    barriers and measurements are kept as nodes so that a routed circuit
    can carry them along; the routing algorithms treat any non-two-qubit
    node as always executable. Construction is O(g). *)

type t

val of_circuit : Circuit.t -> t

val of_circuit_commuting : Circuit.t -> t
(** Commutation-aware construction: on each qubit a gate depends on the
    most recent *group* of gates it does not commute with
    ({!Commutation.commute}), rather than on the immediately preceding
    gate. Every edge of this DAG is also an ordering of the plain DAG, so
    any linearisation of the plain DAG is a linearisation of this one —
    but not vice versa: routers get strictly more freedom (e.g. CNOTs
    fanning out of one control may execute in any order). *)

val matches_linearization : t -> Circuit.t -> bool
(** [matches_linearization dag c] — is [c] a topological linearisation of
    [dag] with exactly its gate multiset? Walks [c] greedily, consuming
    at each step some ready DAG node carrying an identical gate. Used to
    verify commutation-aware routing, where the per-qubit-sequence
    equality of {!Circuit.canonical_key} is deliberately violated. *)

val circuit : t -> Circuit.t
(** The circuit this DAG was built from. *)

val n_nodes : t -> int

val gate : t -> int -> Gate.t
(** [gate dag i] is the gate at node [i]. *)

val successors : t -> int -> int list
(** Direct successors of node [i], each listed once. *)

val predecessors : t -> int -> int list
(** Direct predecessors of node [i], each listed once. *)

val in_degree : t -> int -> int
(** Number of distinct predecessors. O(1) via the CSR offsets. *)

val out_degree : t -> int -> int
(** Number of distinct successors. O(1) via the CSR offsets. *)

(** {2 Flat (CSR) view}

    The adjacency is additionally stored compressed-sparse-row:
    contiguous [int array] rows behind O(1) offsets. The iterators below
    traverse it without allocating; they visit exactly the nodes of
    {!successors}/{!predecessors} in the same (ascending) order. *)

val succ_iter : t -> int -> (int -> unit) -> unit
(** [succ_iter d i f] applies [f] to each successor of [i], ascending,
    allocation-free. *)

val pred_iter : t -> int -> (int -> unit) -> unit
(** [pred_iter d i f] applies [f] to each predecessor of [i], ascending,
    allocation-free. *)

val pair_q1 : t -> int -> int
(** First logical operand of node [i] when it is a two-qubit gate, [-1]
    otherwise. Precomputed; O(1), no option allocation. *)

val pair_q2 : t -> int -> int
(** Second logical operand, or [-1]; see {!pair_q1}. *)

val is_two_qubit_node : t -> int -> bool
(** [is_two_qubit_node d i] = [pair_q1 d i >= 0]. *)

val two_qubit_pair : t -> int -> (int * int) option
(** Allocating convenience over {!pair_q1}/{!pair_q2}; agrees with
    {!Gate.two_qubit_pair} on {!gate}[ d i]. *)

val initial_front : t -> int list
(** Nodes with no predecessors, in program order: the initial front layer
    F of Algorithm 1 (before filtering out non-two-qubit gates). *)

val topological_order : t -> int list
(** A topological order (Kahn's algorithm, stable w.r.t. program order). *)

val two_qubit_nodes : t -> int list
(** Nodes carrying a two-qubit gate, in program order. *)

val descendant_count : t -> int -> int
(** Number of nodes reachable from [i] (excluding [i]); O(V+E) per call.
    Iterative (explicit worklist), safe on arbitrarily deep circuits. *)

(** {2 Windowed (streaming) view}

    A bounded incremental builder of the same dependency DAG, fed from a
    gate stream instead of a materialised circuit. Nodes are *slot ids*,
    recycled through a free list as gates execute, so the resident size
    is the active window, not the program length. Slot ids are therefore
    only meaningful between admission and execution; stream positions
    ({!Window.seq}) are the stable node identity.

    The admission discipline (see the implementation comment) guarantees
    that ready-release order is identical to the eager
    {!of_circuit}-based run: a consumer that pops ready nodes FIFO and
    calls {!Window.execute} observes exactly the node sequence the eager
    path observes, which is what makes streamed routing byte-identical
    to materialised routing. *)
module Window : sig
  type t

  val create : ?retire:int array -> n_qubits:int -> (unit -> Gate.t option) -> t
  (** [create ?retire ~n_qubits source] builds a window over [source]
      (one gate per call, [None] at end of stream). [retire.(q)], when
      given, must be at or after the stream position of the last gate
      touching [q] ([-1] for a qubit never touched): it lets the window
      stop admitting on behalf of inactive qubits, bounding resident
      slots by the maximum qubit-inactivity span. Without [retire] the
      window stays exact but may admit up to the whole stream. Raises
      [Invalid_argument] if [retire] has the wrong length, or later if
      the stream yields a gate whose qubit is outside [0, n_qubits) or a
      zero-operand gate (an empty barrier has no qubit to anchor its
      admission time to, so its position could not be reproduced). *)

  val saturate : t -> (int -> unit) -> unit
  (** [saturate t on_ready] admits gates in stream order until every
      unadmitted gate provably has an unexecuted admitted predecessor
      (or end of stream). Newly admitted gates with no unexecuted
      predecessor are passed to [on_ready] in stream order. Call once
      before consuming; {!execute} re-saturates automatically. *)

  val execute : t -> int -> (int -> unit) -> unit
  (** [execute t s on_ready] retires slot [s] (which must be ready):
      releases its successors — passing newly-ready ones to [on_ready]
      in ascending stream position — frees the slot for reuse, and
      re-saturates the window. *)

  val ensure_successors : t -> int -> (int -> unit) -> unit
  (** [ensure_successors t s on_ready] admits just enough of the stream
      that [s]'s successor set is complete, so a lookahead BFS may
      expand [s]. When the window is saturated (always true between
      executions) these admissions cannot produce ready nodes, but
      [on_ready] is taken for uniformity. *)

  val succ_iter_seq : t -> int -> (int -> unit) -> unit
  (** Iterate the distinct successors admitted so far, in ascending
      stream position — the windowed counterpart of {!succ_iter} (which
      iterates ascending node id, the same order). Call
      {!ensure_successors} first if completeness is required. Not
      reentrant (shared scratch). *)

  val gate : t -> int -> Gate.t
  val seq : t -> int -> int
  (** Stream position of the slot's gate (0-based). *)

  val pair_q1 : t -> int -> int
  val pair_q2 : t -> int -> int
  val is_two_qubit_node : t -> int -> bool

  val mark_visited : t -> int -> int -> bool
  (** [mark_visited t s gen] — first visit of [s] in generation [gen]?
      Marks as a side effect. Generations must be positive and strictly
      increasing across BFS passes; stamps are cleared on slot reuse. *)

  val exhausted : t -> bool
  (** The source returned [None]. *)

  val live_count : t -> int
  (** Slots currently admitted and unexecuted. *)

  val peak_live : t -> int
  (** High-water mark of {!live_count}: the peak window size. *)

  val admitted : t -> int
  (** Total gates admitted from the stream so far. *)

  val executed : t -> int
  (** Total gates executed so far. *)
end
