module Circuit = Quantum.Circuit

(** The 26-benchmark evaluation suite of paper Table II.

    Each row carries the paper's reported numbers (original gates, BKA
    added gates or OOM, SABRE's look-ahead-only and final added gates) so
    the benchmark harness can print paper-vs-measured side by side.

    Circuit provenance per class (see DESIGN.md §3):
    - [Small] and [Large] rows are seeded synthetic reversible circuits
      with the paper's exact width and gate count;
    - [Sim] rows are real Ising-model simulations ({!Ising});
    - [Qft] rows are real QFTs ({!Qft}); their elementary gate count
      differs slightly from the paper's where the paper used truncated
      variants. *)

type cls = Small | Sim | Qft | Large

type row = {
  name : string;  (** benchmark name as printed in Table II *)
  cls : cls;
  n : int;  (** logical qubits *)
  paper_g_ori : int;  (** paper's original gate count *)
  paper_bka_g_add : int option;  (** BKA added gates; [None] = OOM *)
  paper_bka_time_s : float option;  (** BKA runtime; [None] = OOM *)
  paper_g_la : int;  (** SABRE after first (look-ahead) traversal *)
  paper_g_op : int;  (** SABRE after reverse traversal (final) *)
  circuit : Circuit.t Lazy.t;  (** our reproduction of the workload *)
}

val all : row list
(** All 26 rows, in Table II order. *)

val find : string -> row
(** Look up a row by name. Raises [Not_found]. *)

val by_class : cls -> row list
val class_name : cls -> string

val figure8_names : string list
(** The 9 benchmarks swept in paper Figure 8. *)
