module Mapping = Sabre.Mapping

let check = Alcotest.check
let tc = Alcotest.test_case

let test_identity () =
  let m = Mapping.identity ~n_logical:3 ~n_physical:5 in
  check Alcotest.int "n_logical" 3 (Mapping.n_logical m);
  check Alcotest.int "n_physical" 5 (Mapping.n_physical m);
  for q = 0 to 2 do
    check Alcotest.int "l2p" q (Mapping.to_physical m q);
    check Alcotest.int "p2l" q (Mapping.to_logical m q)
  done;
  check Alcotest.int "free physical" (-1) (Mapping.to_logical m 4)

let test_identity_rejects_overflow () =
  Alcotest.check_raises "too many logical"
    (Invalid_argument "Mapping.identity: more logical than physical qubits")
    (fun () -> ignore (Mapping.identity ~n_logical:5 ~n_physical:3))

let test_of_array () =
  let m = Mapping.of_array ~n_physical:4 [| 2; 0 |] in
  check Alcotest.int "q0" 2 (Mapping.to_physical m 0);
  check Alcotest.int "q1" 0 (Mapping.to_physical m 1);
  check Alcotest.int "P2" 0 (Mapping.to_logical m 2);
  check Alcotest.int "P1 free" (-1) (Mapping.to_logical m 1);
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "duplicate" true
    (raises (fun () -> Mapping.of_array ~n_physical:4 [| 1; 1 |]));
  check Alcotest.bool "out of range" true
    (raises (fun () -> Mapping.of_array ~n_physical:4 [| 0; 9 |]))

let test_of_array_copies () =
  let arr = [| 0; 1 |] in
  let m = Mapping.of_array ~n_physical:2 arr in
  arr.(0) <- 1;
  check Alcotest.int "unaffected" 0 (Mapping.to_physical m 0)

let test_random_is_valid_and_deterministic () =
  let mk seed =
    Mapping.random
      ~state:(Random.State.make [| seed |])
      ~n_logical:10 ~n_physical:20
  in
  let m = mk 7 in
  (* injective into range *)
  let seen = Array.make 20 false in
  for q = 0 to 9 do
    let p = Mapping.to_physical m q in
    check Alcotest.bool "range" true (p >= 0 && p < 20);
    check Alcotest.bool "injective" false seen.(p);
    seen.(p) <- true;
    check Alcotest.int "inverse consistent" q (Mapping.to_logical m p)
  done;
  check Alcotest.bool "same seed same mapping" true (Mapping.equal (mk 7) (mk 7));
  check Alcotest.bool "diff seed diff mapping (overwhelmingly)" false
    (Mapping.equal (mk 7) (mk 8))

let test_swap_physical () =
  let m = Mapping.identity ~n_logical:2 ~n_physical:3 in
  let m' = Mapping.swap_physical m 0 2 in
  (* immutable: original unchanged *)
  check Alcotest.int "orig q0" 0 (Mapping.to_physical m 0);
  check Alcotest.int "q0 moved" 2 (Mapping.to_physical m' 0);
  check Alcotest.int "P0 now free" (-1) (Mapping.to_logical m' 0);
  check Alcotest.int "P2 holds q0" 0 (Mapping.to_logical m' 2);
  (* swap with a free qubit then back *)
  let m'' = Mapping.swap_physical m' 2 0 in
  check Alcotest.bool "round trip" true (Mapping.equal m m'')

let test_swap_inplace () =
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  Mapping.swap_physical_inplace m 0 1;
  check Alcotest.int "q0" 1 (Mapping.to_physical m 0);
  check Alcotest.int "q1" 0 (Mapping.to_physical m 1);
  check Alcotest.int "q2" 2 (Mapping.to_physical m 2)

let test_copy_isolated () =
  let m = Mapping.identity ~n_logical:2 ~n_physical:2 in
  let c = Mapping.copy m in
  Mapping.swap_physical_inplace c 0 1;
  check Alcotest.int "original untouched" 0 (Mapping.to_physical m 0)

let test_l2p_array_is_copy () =
  let m = Mapping.identity ~n_logical:2 ~n_physical:2 in
  let a = Mapping.l2p_array m in
  a.(0) <- 99;
  check Alcotest.int "unaffected" 0 (Mapping.to_physical m 0)

let test_compose_permutation () =
  let before = Mapping.of_array ~n_physical:3 [| 0; 1 |] in
  let after = Mapping.of_array ~n_physical:3 [| 1; 0 |] in
  let d = Mapping.compose_permutation before after in
  check Alcotest.int "P0 -> P1" 1 d.(0);
  check Alcotest.int "P1 -> P0" 0 d.(1);
  check Alcotest.int "P2 fixed" 2 d.(2)

let suite =
  [
    tc "identity" `Quick test_identity;
    tc "identity rejects overflow" `Quick test_identity_rejects_overflow;
    tc "of_array" `Quick test_of_array;
    tc "of_array copies input" `Quick test_of_array_copies;
    tc "random valid & deterministic" `Quick test_random_is_valid_and_deterministic;
    tc "swap_physical" `Quick test_swap_physical;
    tc "swap inplace" `Quick test_swap_inplace;
    tc "copy isolated" `Quick test_copy_isolated;
    tc "l2p_array is a copy" `Quick test_l2p_array_is_copy;
    tc "compose_permutation" `Quick test_compose_permutation;
  ]
