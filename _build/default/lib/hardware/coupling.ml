type t = {
  n : int;
  adj : int list array;
  edge_list : (int * int) list;  (* normalised (min,max), sorted *)
  mutable dist : int array array option;  (* Floyd–Warshall cache *)
}

let infinity_dist = 1 lsl 29

let create ~n_qubits edge_input =
  if n_qubits <= 0 then invalid_arg "Coupling.create: need at least one qubit";
  let seen = Hashtbl.create (List.length edge_input) in
  let adj = Array.make n_qubits [] in
  let normalised =
    List.map
      (fun (a, b) ->
        if a < 0 || a >= n_qubits || b < 0 || b >= n_qubits then
          invalid_arg
            (Printf.sprintf "Coupling.create: edge (%d,%d) out of range" a b);
        if a = b then
          invalid_arg (Printf.sprintf "Coupling.create: self-loop on %d" a);
        let e = (min a b, max a b) in
        if Hashtbl.mem seen e then
          invalid_arg
            (Printf.sprintf "Coupling.create: duplicate edge (%d,%d)" a b);
        Hashtbl.add seen e ();
        e)
      edge_input
  in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    normalised;
  Array.iteri (fun i l -> adj.(i) <- List.sort Int.compare l) adj;
  {
    n = n_qubits;
    adj;
    edge_list = List.sort compare normalised;
    dist = None;
  }

let n_qubits g = g.n
let edges g = g.edge_list
let n_edges g = List.length g.edge_list
let neighbors g i = g.adj.(i)
let degree g i = List.length g.adj.(i)
let connected g a b = List.mem b g.adj.(a)

let is_connected_graph g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit g.adj.(i)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let compute_distances g =
  let d = Array.make_matrix g.n g.n infinity_dist in
  for i = 0 to g.n - 1 do
    d.(i).(i) <- 0;
    List.iter (fun j -> d.(i).(j) <- 1) g.adj.(i)
  done;
  for k = 0 to g.n - 1 do
    for i = 0 to g.n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity_dist then
        for j = 0 to g.n - 1 do
          let through = dik + d.(k).(j) in
          if through < d.(i).(j) then d.(i).(j) <- through
        done
    done
  done;
  d

let distance_matrix g =
  match g.dist with
  | Some d -> d
  | None ->
    let d = compute_distances g in
    g.dist <- Some d;
    d

let distance g i j = (distance_matrix g).(i).(j)

let diameter g =
  let d = distance_matrix g in
  let best = ref 0 in
  for i = 0 to g.n - 1 do
    for j = 0 to g.n - 1 do
      if d.(i).(j) < infinity_dist && d.(i).(j) > !best then best := d.(i).(j)
    done
  done;
  !best

let shortest_path g src dst =
  if src = dst then [ src ]
  else begin
    let parent = Array.make g.n (-1) in
    let q = Queue.create () in
    Queue.add src q;
    parent.(src) <- src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) < 0 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end)
        g.adj.(u)
    done;
    if not !found then raise Not_found;
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    build dst []
  end

let pp ppf g =
  Format.fprintf ppf "@[<v>coupling graph: %d qubits, %d edges@,%a@]" g.n
    (n_edges g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "(%d,%d)" a b))
    g.edge_list

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph coupling {\n  node [shape=circle];\n";
  for q = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  Q%d;\n" q)
  done;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  Q%d -- Q%d;\n" a b))
    g.edge_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
