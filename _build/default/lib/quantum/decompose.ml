let swap_to_cnots a b = [ Gate.Cnot (a, b); Gate.Cnot (b, a); Gate.Cnot (a, b) ]
let cz_to_cnot a b = [ Gate.Single (H, b); Gate.Cnot (a, b); Gate.Single (H, b) ]

let cphase theta a b =
  [
    Gate.Single (Rz (theta /. 2.0), a);
    Gate.Single (Rz (theta /. 2.0), b);
    Gate.Cnot (a, b);
    Gate.Single (Rz (-.theta /. 2.0), b);
    Gate.Cnot (a, b);
  ]

let toffoli c1 c2 t =
  [
    Gate.Single (H, t);
    Gate.Cnot (c2, t);
    Gate.Single (Tdg, t);
    Gate.Cnot (c1, t);
    Gate.Single (T, t);
    Gate.Cnot (c2, t);
    Gate.Single (Tdg, t);
    Gate.Cnot (c1, t);
    Gate.Single (T, c2);
    Gate.Single (T, t);
    Gate.Single (H, t);
    Gate.Cnot (c1, c2);
    Gate.Single (T, c1);
    Gate.Single (Tdg, c2);
    Gate.Cnot (c1, c2);
  ]

let expand gate_expansion c =
  let gates =
    Circuit.gates c |> List.concat_map gate_expansion
  in
  Circuit.create ~n_qubits:(Circuit.n_qubits c) ~n_clbits:(Circuit.n_clbits c)
    gates

let expand_swaps c =
  expand (function Gate.Swap (a, b) -> swap_to_cnots a b | g -> [ g ]) c

let expand_all c =
  expand
    (function
      | Gate.Swap (a, b) -> swap_to_cnots a b
      | Gate.Cz (a, b) -> cz_to_cnot a b
      | g -> [ g ])
    c

let elementary_gate_count c =
  List.fold_left
    (fun acc g ->
      match g with
      | Gate.Swap _ | Gate.Cz _ -> acc + 3
      | Gate.Barrier _ | Gate.Measure _ -> acc
      | Gate.Single _ | Gate.Cnot _ -> acc + 1)
    0 (Circuit.gates c)
