module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

(** Exact minimum-SWAP routing for small instances, after Siraichi et
    al.'s optimal qubit-allocation dynamic program (paper Section VII):
    Dijkstra over states (next unexecuted gate, current mapping), where
    executing an executable gate is free and any SWAP costs 1. The gate
    order is the program order (a fixed topological linearisation), so
    the result is the optimum over all initial mappings and SWAP
    insertion points for that linearisation — which is exactly the
    search space of the heuristic routers compared against it.

    The state space is O(g · N!/(N−n)!): usable as a test oracle up to
    ~8 physical qubits and a few dozen gates, and a demonstration of why
    exact methods die beyond that (the motivation of Section I). *)

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;  (** provably minimal for the program linearisation *)
  states_expanded : int;
}

type failure =
  | Too_large of string  (** instance exceeds the configured limits *)
  | Budget_exhausted of int

val run :
  ?initial:Mapping.t ->
  ?max_states:int ->
  Coupling.t ->
  Circuit.t ->
  (result, failure) Stdlib.result
(** [run coupling circuit] finds a minimum-SWAP routing. When [initial]
    is given the initial mapping is fixed; otherwise all injective
    placements are implicitly searched (every zero-cost start state).
    [max_states] (default 2,000,000) bounds the search. Instances with
    more than 12 physical qubits are rejected as [Too_large]. *)

val min_swaps : ?initial:Mapping.t -> Coupling.t -> Circuit.t -> int option
(** Just the optimum; [None] when the search is infeasible. *)
