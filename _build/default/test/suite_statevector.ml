module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Sv = Sim.Statevector

let check = Alcotest.check
let tc = Alcotest.test_case

let amp_close msg expected actual =
  check (Alcotest.float 1e-9) (msg ^ " re") expected.Complex.re actual.Complex.re;
  check (Alcotest.float 1e-9) (msg ^ " im") expected.Complex.im actual.Complex.im

let test_initial_state () =
  let s = Sv.create 2 in
  amp_close "amp 00" Complex.one (Sv.amplitude s 0);
  amp_close "amp 01" Complex.zero (Sv.amplitude s 1);
  check (Alcotest.float 1e-9) "normalised" 1.0 (Sv.norm s)

let test_x_flips () =
  let s = Sv.create 2 in
  Sv.apply s (Gate.Single (X, 1));
  amp_close "amp 10" Complex.one (Sv.amplitude s 2)

let test_h_superposition () =
  let s = Sv.create 1 in
  Sv.apply s (Gate.Single (H, 0));
  let r = 1.0 /. Float.sqrt 2.0 in
  amp_close "amp 0" { Complex.re = r; im = 0. } (Sv.amplitude s 0);
  amp_close "amp 1" { Complex.re = r; im = 0. } (Sv.amplitude s 1);
  (* H is self-inverse *)
  Sv.apply s (Gate.Single (H, 0));
  amp_close "back to |0>" Complex.one (Sv.amplitude s 0)

let test_bell_state () =
  let s = Sv.create 2 in
  Sv.apply s (Gate.Single (H, 0));
  Sv.apply s (Gate.Cnot (0, 1));
  let r = 1.0 /. Float.sqrt 2.0 in
  amp_close "amp 00" { Complex.re = r; im = 0. } (Sv.amplitude s 0);
  amp_close "amp 11" { Complex.re = r; im = 0. } (Sv.amplitude s 3);
  amp_close "amp 01" Complex.zero (Sv.amplitude s 1);
  check (Alcotest.float 1e-9) "p(q1=1)" 0.5 (Sv.probability s 1)

let test_cnot_truth_table () =
  List.iter
    (fun (input, expected) ->
      let s = Sv.of_basis 2 input in
      Sv.apply s (Gate.Cnot (0, 1));
      amp_close
        (Printf.sprintf "cx |%d> -> |%d>" input expected)
        Complex.one (Sv.amplitude s expected))
    (* qubit 0 = control = LSB *)
    [ (0, 0); (1, 3); (2, 2); (3, 1) ]

let test_swap_exchanges () =
  let s = Sv.of_basis 2 1 in
  (* |01>, i.e. qubit0 = 1 *)
  Sv.apply s (Gate.Swap (0, 1));
  amp_close "swapped to |10>" Complex.one (Sv.amplitude s 2)

let test_swap_equals_three_cnots () =
  let rng = Random.State.make [| 11 |] in
  let a = Sv.random ~state:rng 3 in
  let b = Sv.copy a in
  Sv.apply a (Gate.Swap (0, 2));
  List.iter (Sv.apply b) (Quantum.Decompose.swap_to_cnots 0 2);
  check Alcotest.bool "equal" true (Sv.approx_equal a b)

let test_cz_phase () =
  let s = Sv.of_basis 2 3 in
  Sv.apply s (Gate.Cz (0, 1));
  amp_close "phase flipped" { Complex.re = -1.; im = 0. } (Sv.amplitude s 3);
  let s0 = Sv.of_basis 2 1 in
  Sv.apply s0 (Gate.Cz (0, 1));
  amp_close "untouched" Complex.one (Sv.amplitude s0 1)

let test_rotations_compose () =
  (* Rz(a) Rz(b) = Rz(a+b) up to nothing (exactly) *)
  let rng = Random.State.make [| 3 |] in
  let a = Sv.random ~state:rng 1 in
  let b = Sv.copy a in
  Sv.apply a (Gate.Single (Rz 0.4, 0));
  Sv.apply a (Gate.Single (Rz 0.9, 0));
  Sv.apply b (Gate.Single (Rz 1.3, 0));
  check Alcotest.bool "rz additive" true (Sv.approx_equal a b)

let test_s_squared_is_z () =
  let rng = Random.State.make [| 4 |] in
  let a = Sv.random ~state:rng 1 in
  let b = Sv.copy a in
  Sv.apply a (Gate.Single (S, 0));
  Sv.apply a (Gate.Single (S, 0));
  Sv.apply b (Gate.Single (Z, 0));
  check Alcotest.bool "S^2 = Z" true (Sv.approx_equal a b);
  let c = Sv.copy b in
  Sv.apply c (Gate.Single (T, 0));
  Sv.apply c (Gate.Single (T, 0));
  Sv.apply b (Gate.Single (S, 0));
  check Alcotest.bool "T^2 = S" true (Sv.approx_equal b c)

let test_unitarity_preserves_norm () =
  let rng = Random.State.make [| 5 |] in
  let s = Sv.random ~state:rng 4 in
  Sv.apply_circuit s (Workloads.Qft.circuit 4);
  check (Alcotest.float 1e-9) "norm 1" 1.0 (Sv.norm s)

let test_gate_daggers_invert () =
  let kinds =
    [
      Gate.H; X; Y; Z; S; Sdg; T; Tdg; Rx 0.31; Ry 0.77; Rz 1.23; U1 0.5;
      U2 (0.3, 0.8); U3 (0.4, 1.1, 2.2);
    ]
  in
  let rng = Random.State.make [| 6 |] in
  List.iter
    (fun k ->
      let s = Sv.random ~state:rng 1 in
      let original = Sv.copy s in
      Sv.apply s (Gate.Single (k, 0));
      Sv.apply s (Gate.dagger (Gate.Single (k, 0)));
      check Alcotest.bool
        (Gate.single_kind_name k ^ " dagger inverts")
        true
        (Sv.approx_equal s original))
    kinds

let test_measure_raises () =
  let s = Sv.create 1 in
  Alcotest.check_raises "measure"
    (Invalid_argument "Statevector.apply: cannot apply a measurement unitarily")
    (fun () -> Sv.apply s (Gate.Measure (0, 0)))

let test_embed () =
  let s = Sv.of_basis 2 3 in
  let e = Sv.embed s 4 in
  check Alcotest.int "width" 4 (Sv.n_qubits e);
  amp_close "amp |0011>" Complex.one (Sv.amplitude e 3)

let test_permute () =
  let s = Sv.of_basis 3 0b001 in
  (* qubit 0 holds 1; rotate qubits: result qubit q carries p.(q) *)
  let p = [| 2; 0; 1 |] in
  let out = Sv.permute s p in
  (* result qubit 1 carries source qubit 0 = 1 -> basis index 0b010 *)
  amp_close "permuted" Complex.one (Sv.amplitude out 0b010)

let test_permute_identity () =
  let rng = Random.State.make [| 8 |] in
  let s = Sv.random ~state:rng 4 in
  let out = Sv.permute s [| 0; 1; 2; 3 |] in
  check Alcotest.bool "identity" true (Sv.approx_equal s out)

let test_permute_swap_matches_swap_gate () =
  let rng = Random.State.make [| 9 |] in
  let s = Sv.random ~state:rng 2 in
  let via_gate = Sv.copy s in
  Sv.apply via_gate (Gate.Swap (0, 1));
  let via_perm = Sv.permute s [| 1; 0 |] in
  check Alcotest.bool "same" true (Sv.approx_equal via_gate via_perm)

let test_fidelity_global_phase () =
  let rng = Random.State.make [| 10 |] in
  let s = Sv.random ~state:rng 2 in
  let t = Sv.copy s in
  (* global phase via Rz on both arms... simpler: U1 adds phase only to |1>
     component, so use a whole-register phase: apply Rz twice *)
  Sv.apply t (Gate.Single (Rz 0.7, 0));
  Sv.apply t (Gate.Single (Rz (-0.7), 0));
  check Alcotest.bool "identical" true (Sv.approx_equal s t)

let suite =
  [
    tc "initial state" `Quick test_initial_state;
    tc "x flips" `Quick test_x_flips;
    tc "h superposition" `Quick test_h_superposition;
    tc "bell state" `Quick test_bell_state;
    tc "cnot truth table" `Quick test_cnot_truth_table;
    tc "swap exchanges" `Quick test_swap_exchanges;
    tc "swap = 3 cnots" `Quick test_swap_equals_three_cnots;
    tc "cz phase" `Quick test_cz_phase;
    tc "rz additive" `Quick test_rotations_compose;
    tc "S^2 = Z, T^2 = S" `Quick test_s_squared_is_z;
    tc "unitarity preserves norm" `Quick test_unitarity_preserves_norm;
    tc "daggers invert" `Quick test_gate_daggers_invert;
    tc "measure raises" `Quick test_measure_raises;
    tc "embed" `Quick test_embed;
    tc "permute" `Quick test_permute;
    tc "permute identity" `Quick test_permute_identity;
    tc "permute matches swap gate" `Quick test_permute_swap_matches_swap_gate;
    tc "approx_equal ignores global phase" `Quick test_fidelity_global_phase;
  ]
