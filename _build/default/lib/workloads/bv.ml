module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let circuit ~hidden n =
  if n < 1 then invalid_arg "Bv.circuit: need at least one data qubit";
  if hidden < 0 || (n < 63 && hidden >= 1 lsl n) then
    invalid_arg "Bv.circuit: hidden string out of range";
  let ancilla = n in
  let gates = ref [] in
  let add g = gates := g :: !gates in
  for q = 0 to n - 1 do
    add (Gate.Single (H, q))
  done;
  add (Gate.Single (X, ancilla));
  add (Gate.Single (H, ancilla));
  for q = 0 to n - 1 do
    if hidden land (1 lsl q) <> 0 then add (Gate.Cnot (q, ancilla))
  done;
  for q = 0 to n - 1 do
    add (Gate.Single (H, q))
  done;
  for q = 0 to n - 1 do
    add (Gate.Measure (q, q))
  done;
  Circuit.create ~n_qubits:(n + 1) ~n_clbits:n (List.rev !gates)
