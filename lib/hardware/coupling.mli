(** Device coupling graphs G(V,E) (paper Table I / Section II-B).

    Vertices are physical qubits [0 .. n-1]; edges are the symmetric qubit
    pairs that support a direct two-qubit gate. Following the paper we
    consider only symmetric coupling (CNOT allowed in both directions of
    every edge, as on IBM Q20 Tokyo). *)

type t

val create : n_qubits:int -> (int * int) list -> t
(** [create ~n_qubits edges] builds a coupling graph. Edges are
    undirected; duplicates (in either orientation) and self-loops raise
    [Invalid_argument], as do out-of-range endpoints. *)

val n_qubits : t -> int

val edges : t -> (int * int) list
(** Each undirected edge once, normalised as [(min, max)], sorted. *)

val n_edges : t -> int

val neighbors : t -> int -> int list
(** Adjacent physical qubits, ascending. *)

val degree : t -> int -> int

val connected : t -> int -> int -> bool
(** [connected g a b] is true when {a,b} is an edge — i.e. a CNOT between
    them is directly executable. *)

val neighbors_iter : t -> int -> (int -> unit) -> unit
(** [neighbors_iter g i f] applies [f] to each neighbour of [i] in
    ascending order, allocation-free (CSR adjacency). *)

val edge_id : t -> int -> int -> int
(** [edge_id g a b] is the index of undirected edge {a,b} in {!edges}
    (symmetric in [a]/[b]), or [-1] when not an edge. O(1) via a flat
    n²-entry table built on first use and cached, like
    {!distance_matrix}. Edge ids enumerate edges in the canonical sorted
    [(min, max)] order. *)

val edge_endpoints : t -> int -> int * int
(** [edge_endpoints g e] is the normalised [(min, max)] endpoint pair of
    edge id [e]. *)

val is_connected_graph : t -> bool
(** Whether the whole graph is one connected component (required for a
    router to succeed on circuits touching all qubits). *)

val distance_matrix : t -> int array array
(** All-pairs shortest path distances, one BFS per source over the CSR
    adjacency — O(V·(V+E)), exact on unit-weight edges, so identical to
    the Floyd–Warshall matrix the paper describes (Section IV-A) at a
    fraction of its O(V³) cost on sparse couplings. [D.(i).(j)] is the
    minimum number of edges between [Qi] and [Qj]; [max_int/2]-ish
    sentinel is never visible for connected graphs, and unreachable
    pairs report a value [>= n_qubits]. The matrix is computed once per
    graph value and cached; see {!Dist_cache} for the cross-instance,
    device-keyed cache. *)

val floyd_warshall : t -> int array array
(** The paper's original O(N³) Floyd–Warshall all-pairs algorithm, kept
    as a differential-testing reference for {!distance_matrix}. Not
    cached; do not use on a hot path. *)

val digest : t -> string
(** Canonical hex digest of the device: qubit count plus the normalised
    sorted edge list. Equal exactly when two graphs have the same vertex
    count and edge set (regardless of construction order); computed once
    and cached. Keys the {!Dist_cache} memo table. *)

val distance : t -> int -> int -> int
(** [distance g i j] is [ (distance_matrix g).(i).(j) ]. *)

val diameter : t -> int
(** Largest finite pairwise distance. *)

val shortest_path : t -> int -> int -> int list
(** One shortest path [i; ...; j] (BFS). Raises [Not_found] if
    disconnected. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz [graph] source for the coupling graph (undirected edges),
    for rendering device diagrams like the paper's Fig. 2. *)
