test/suite_config.ml: Alcotest Sabre
