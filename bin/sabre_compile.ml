(* sabre_compile: command-line qubit mapper.

   Reads an OpenQASM 2.0 circuit (file or a built-in workload), routes it
   for a chosen device with SABRE (or a baseline router), verifies the
   result, and writes routed QASM plus a statistics report. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Input acquisition                                                    *)
(* ------------------------------------------------------------------ *)

let load_circuit input workload size =
  match (input, workload) with
  | Some path, None -> (
    try Ok (Quantum.Qasm.of_file path) with
    | Quantum.Qasm.Parse_error { line; column; message } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line column message)
    | Sys_error msg -> Error msg)
  | None, Some name -> (
    let n = Option.value size ~default:8 in
    match String.lowercase_ascii name with
    | "qft" -> Ok (Workloads.Qft.circuit n)
    | "ising" -> Ok (Workloads.Ising.circuit n)
    | "ghz" -> Ok (Workloads.Ghz.circuit n)
    | "bv" -> Ok (Workloads.Bv.circuit ~hidden:((1 lsl (n - 1)) + 1) (n - 1))
    | "adder" -> Ok (Workloads.Adder.circuit (max 1 ((n - 2) / 2)))
    | "random" ->
      Ok (Workloads.Random_reversible.circuit ~n ~gates:(20 * n) ())
    | other -> (
      match Workloads.Suite.find other with
      | row -> Ok (Lazy.force row.circuit)
      | exception Not_found ->
        Error
          (Printf.sprintf
             "unknown workload %S (try qft/ising/ghz/bv/adder/random or a \
              Table II benchmark name)"
             other)))
  | Some _, Some _ -> Error "give either an input file or --workload, not both"
  | None, None -> Error "no input: pass a QASM file or --workload NAME"

(* ------------------------------------------------------------------ *)
(* Routing through the engine pipeline                                  *)
(* ------------------------------------------------------------------ *)

module Engine = Sabre.Engine

type routed = {
  physical : Circuit.t;
  initial : int array;
  final : int array;
  n_swaps : int;
}

(* Route and verify with the pass pipeline: every router — SABRE or a
   baseline — runs behind the same [Engine.Router] interface, and the
   [Verify_pass] replaces the hand-rolled verification this binary used
   to carry. Returns the per-pass wall times for [--stats-json]. *)
let route router_name config device circuit ~trial_mode ~cache ~instrument =
  Baseline.Routers.register ();
  match Engine.Router.find_suggest router_name with
  | Error msg -> Error msg
  | Ok router -> (
    let t0 = Sys.time () in
    let cache_spec =
      (* key with the canonical registry name, so a hit is shared with
         batch mode and the serve daemon *)
      if cache then Some (Engine.Router.name router) else None
    in
    match
      Engine.Context.create ~config ~trial_mode ?cache_spec device circuit
      |> Engine.Pipeline.run ~instrument
           (Engine.Pipeline.default ~router ~verify:true ())
    with
    | ctx ->
      let r = Engine.Context.routed_exn ctx in
      let stats = Engine.Context.stats ctx ~time_s:(Sys.time () -. t0) in
      Ok
        ( {
            physical = r.Engine.Context.physical;
            initial = Mapping.l2p_array r.Engine.Context.trial_initial;
            final = Mapping.l2p_array r.Engine.Context.final_mapping;
            n_swaps = r.Engine.Context.n_swaps;
          },
          (if router_name = "sabre" then Some stats else None),
          Engine.Context.metrics ctx )
    | exception Engine.Router.Route_failed msg -> Error msg
    | exception Engine.Verify_pass.Verify_failed msg -> Error msg)

(* Best-of-K: route once per portfolio entry, keep the winner. The
   returned router label is the winner's entry name so the reports say
   which member actually produced the circuit. *)
let route_portfolio spec objective_name config device circuit ~domains ~race
    ~cache ~instrument ~quiet =
  Baseline.Routers.register ();
  let* entries = Engine.Portfolio.parse_spec spec in
  let* objective = Engine.Portfolio.objective_of_string objective_name in
  match
    Engine.Portfolio.run ~domains ~objective ~config ~verify:true ~race ~cache
      ~instrument device circuit entries
  with
  | report ->
    let m = Engine.Portfolio.winner_member report in
    let winner_name = Engine.Portfolio.entry_name m.Engine.Portfolio.entry in
    let names =
      Array.of_list (List.map Engine.Portfolio.entry_name entries)
    in
    if not quiet then begin
      Format.eprintf "portfolio (%s objective%s):@."
        (Engine.Portfolio.objective_name objective)
        (if report.Engine.Portfolio.race then ", racing" else "");
      Array.iteri
        (fun i outcome ->
          let es = report.Engine.Portfolio.entry_stats.(i) in
          match outcome with
          | Ok (m : Engine.Portfolio.member) ->
            Format.eprintf "  %c %-22s %d swaps, depth %d%s (%.3fs)@."
              (if i = report.Engine.Portfolio.winner then '*' else ' ')
              names.(i) m.n_swaps m.depth
              (match m.success_prob with
              | Some p -> Printf.sprintf ", success %.4f" p
              | None -> "")
              es.Engine.Portfolio.e_wall_s
          | Error msg ->
            Format.eprintf "    %-22s %s: %s@." names.(i)
              (if es.Engine.Portfolio.e_cancelled then "cancelled"
               else "failed")
              msg)
        report.Engine.Portfolio.outcomes
    end;
    Ok
      ( {
          physical = m.Engine.Portfolio.physical;
          initial = Mapping.l2p_array m.Engine.Portfolio.initial;
          final = Mapping.l2p_array m.Engine.Portfolio.final;
          n_swaps = m.Engine.Portfolio.n_swaps;
        },
        winner_name,
        (report, names) )
  | exception Engine.Router.Route_failed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* --list-routers                                                       *)
(* ------------------------------------------------------------------ *)

let run_list_routers () =
  Baseline.Routers.register ();
  print_endline "routers:";
  List.iter
    (fun name ->
      match Engine.Router.find name with
      | Some r ->
        Printf.printf "  %-18s %s%s\n" name
          (if Engine.Router.deterministic r then "deterministic"
           else "randomized")
          (if Engine.Router.derives_seed r then ", derives own seed" else "")
      | None -> ())
    (Engine.Router.names ());
  print_endline "";
  print_endline "seeders (for --portfolio ROUTER/SEEDER):";
  List.iter
    (fun name ->
      match Sabre.Initial_mapping.Seeder.find name with
      | Some s ->
        Printf.printf "  %-18s %s\n" name
          s.Sabre.Initial_mapping.Seeder.description
      | None -> ())
    (Sabre.Initial_mapping.Seeder.names ());
  0

let run_list_seeders () =
  print_endline "seeders:";
  List.iter
    (fun name ->
      match Sabre.Initial_mapping.Seeder.find name with
      | Some s ->
        Printf.printf "  %-18s %s\n" name
          s.Sabre.Initial_mapping.Seeder.description
      | None -> ())
    (Sabre.Initial_mapping.Seeder.names ());
  0

(* ------------------------------------------------------------------ *)
(* Batch mode                                                           *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON string escaping, shared by batch rows and reports. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One QASM path per manifest line; blank lines and #-comments are
   skipped. Paths are resolved relative to the process, not the
   manifest. *)
let read_manifest path =
  try
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc else go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
    in
    go []
  with Sys_error msg -> Error msg

let batch_json_line = function
  | Ok (s : Engine.Batch.success) ->
    Printf.sprintf
      "{\"name\": \"%s\", \"status\": \"ok\", \"router\": \"%s\", \
       \"qubits\": %d, \"original_gates\": %d, \"routed_gates\": %d, \
       \"swaps\": %d, \"depth\": %d, \"time_s\": %.6f}"
      (json_escape s.Engine.Batch.name)
      (json_escape s.Engine.Batch.router)
      (Mapping.n_logical s.Engine.Batch.initial)
      s.stats.Sabre.Stats.original_gates s.stats.Sabre.Stats.total_gates
      s.stats.Sabre.Stats.n_swaps s.stats.Sabre.Stats.routed_depth
      s.stats.Sabre.Stats.time_s
  | Error (e : Engine.Batch.error) ->
    Printf.sprintf "{\"name\": \"%s\", \"status\": \"error\", \"message\": \"%s\"}"
      (json_escape e.Engine.Batch.name)
      (json_escape e.Engine.Batch.message)

let run_batch manifest router_name config device ~portfolio ~race ~cache
    ~domains ~verify ~quiet =
  Baseline.Routers.register ();
  let* router, portfolio =
    match portfolio with
    | None ->
      let* r = Engine.Router.find_suggest router_name in
      Ok (r, None)
    | Some (spec, objective_name) ->
      let* entries = Engine.Portfolio.parse_spec spec in
      let* objective = Engine.Portfolio.objective_of_string objective_name in
      (* entry names resolve inside Portfolio.run; the router value is
         unused in portfolio mode but compile_many wants one *)
      Ok (Engine.Sabre_router.router, Some (entries, objective))
  in
  (match read_manifest manifest with
    | Error msg -> Error msg
    | Ok [] -> Error (Printf.sprintf "%s: empty manifest" manifest)
    | Ok paths ->
      (* parse failures become error rows, not batch aborts *)
      let parsed =
        List.map
          (fun path ->
            match Quantum.Qasm.of_file path with
            | circuit -> Ok { Engine.Batch.name = path; circuit }
            | exception Quantum.Qasm.Parse_error { line; column; message } ->
              Error
                {
                  Engine.Batch.name = path;
                  message = Printf.sprintf "%s:%d:%d: %s" path line column message;
                }
            | exception Sys_error msg ->
              Error { Engine.Batch.name = path; message = msg })
          paths
      in
      let jobs =
        Array.of_list
          (List.filter_map Result.to_option parsed)
      in
      let report =
        Engine.Batch.compile_many ~config ~router ?portfolio ~race ~cache
          ~domains ~verify device jobs
      in
      (* re-merge compile outcomes with parse failures, manifest order *)
      let outcomes = Queue.create () in
      let next = ref 0 in
      List.iter
        (fun p ->
          match p with
          | Error e -> Queue.add (Error e) outcomes
          | Ok _ ->
            Queue.add report.Engine.Batch.outcomes.(!next) outcomes;
            incr next)
        parsed;
      let failures = ref 0 in
      Queue.iter
        (fun o ->
          (match o with Error _ -> incr failures | Ok _ -> ());
          print_endline (batch_json_line o))
        outcomes;
      if not quiet then begin
        let dist = Hardware.Dist_cache.stats () in
        let cc = Engine.Compile_cache.stats () in
        Format.eprintf
          "batch: %d circuits (%d failed), %d domain%s, %.3fs wall, %.1f \
           circuits/s; dist-cache %d hit%s / %d miss%s; compile-cache %d \
           hit%s / %d miss%s@."
          (List.length parsed) !failures report.Engine.Batch.domains
          (if report.Engine.Batch.domains = 1 then "" else "s")
          report.Engine.Batch.wall_s
          (float_of_int (Array.length jobs) /. report.Engine.Batch.wall_s)
          dist.Hardware.Dist_cache.hits
          (if dist.Hardware.Dist_cache.hits = 1 then "" else "s")
          dist.Hardware.Dist_cache.misses
          (if dist.Hardware.Dist_cache.misses = 1 then "" else "es")
          cc.Engine.Compile_cache.hits
          (if cc.Engine.Compile_cache.hits = 1 then "" else "s")
          cc.Engine.Compile_cache.misses
          (if cc.Engine.Compile_cache.misses = 1 then "" else "es")
      end;
      if !failures > 0 then Error (Printf.sprintf "%d circuits failed" !failures)
      else Ok ())

(* ------------------------------------------------------------------ *)
(* Streaming mode                                                       *)
(* ------------------------------------------------------------------ *)

let run_stream input output device config ~quiet ~json =
  let ( let* ) = Result.bind in
  let* path =
    match input with
    | Some p -> Ok p
    | None -> Error "--stream needs a QASM input file"
  in
  let* out =
    match output with
    | Some o -> Ok o
    | None ->
      Error
        "--stream needs -o OUT.qasm (gates are written as routed, never \
         buffered)"
  in
  let* rep = Engine.Stream_pass.route_file ~config device ~input:path ~output:out in
  let r = rep.Engine.Stream_pass.result in
  let heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
  let gates_out = r.Sabre.Routing_pass.s_gates_out in
  let gates_in = r.Sabre.Routing_pass.s_gates_in in
  let wall = rep.Engine.Stream_pass.wall_s in
  if json then
    print_endline
      (Printf.sprintf
         "{\"input\": \"%s\", \"output\": \"%s\", \"qubits\": %d, \
          \"device_qubits\": %d, \"gates_in\": %d, \"gates_out\": %d, \
          \"swaps\": %d, \"fallback_swaps\": %d, \"peak_window\": %d, \
          \"peak_heap_words\": %d, \"wall_s\": %.6f, \"gates_per_s\": %.0f}"
         (json_escape path) (json_escape out) rep.Engine.Stream_pass.n_qubits
         (Coupling.n_qubits device) gates_in gates_out
         r.Sabre.Routing_pass.s_n_swaps r.Sabre.Routing_pass.s_fallback_swaps
         r.Sabre.Routing_pass.s_peak_window heap_words wall
         (float_of_int gates_in /. wall))
  else if not quiet then begin
    Format.printf "streamed        : %s -> %s@." path out;
    Format.printf "gates           : %d in, %d out (+%d SWAPs)@." gates_in
      gates_out r.Sabre.Routing_pass.s_n_swaps;
    Format.printf "peak window     : %d resident gates@."
      r.Sabre.Routing_pass.s_peak_window;
    Format.printf "peak heap       : %d words@." heap_words;
    Format.printf "throughput      : %.0f gates/s (%.3fs)@."
      (float_of_int gates_in /. wall)
      wall
  end;
  Ok ()

let run_gen_stream path size gates seed ~quiet =
  let n = Option.value size ~default:16 in
  match Workloads.Stream_chain.to_qasm_file ~seed ~n ~gates path with
  | () ->
    if not quiet then
      Format.printf "generated       : %s (%d qubits, %d gates)@." path n gates;
    Ok ()
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let report_json ?passes ?portfolio device circuit (r : routed) stats
    router_name =
  let mapping_json arr =
    String.concat ","
      (Array.to_list (Array.map string_of_int arr))
  in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"router\": \"%s\",\n" (json_escape router_name));
  (match portfolio with
  | Some ((report : Sabre.Engine.Portfolio.report), (names : string array)) ->
    let module P = Sabre.Engine.Portfolio in
    Buffer.add_string b "  \"portfolio\": {\n";
    Buffer.add_string b
      (Printf.sprintf
         "    \"objective\": \"%s\", \"race\": %b, \"domains\": %d, \
          \"wall_s\": %.6f,\n"
         (P.objective_name report.P.objective)
         report.P.race report.P.domains report.P.wall_s);
    Buffer.add_string b
      (Printf.sprintf "    \"winner\": \"%s\",\n"
         (json_escape names.(report.P.winner)));
    Buffer.add_string b "    \"members\": [\n";
    let n = Array.length report.P.outcomes in
    Array.iteri
      (fun i o ->
        let es = report.P.entry_stats.(i) in
        let fields =
          match o with
          | Ok (m : P.member) ->
            Printf.sprintf
              "\"swaps\": %d, \"depth\": %d, \"value\": %g" m.P.n_swaps
              m.P.depth
              (P.objective_value report.P.objective m)
          | Error msg -> Printf.sprintf "\"error\": \"%s\"" (json_escape msg)
        in
        Buffer.add_string b
          (Printf.sprintf
             "      {\"entry\": \"%s\", %s, \"wall_s\": %.6f, \
              \"cancelled\": %b}%s\n"
             (json_escape names.(i))
             fields es.P.e_wall_s es.P.e_cancelled
             (if i = n - 1 then "" else ",")))
      report.P.outcomes;
    Buffer.add_string b "    ]\n  },\n"
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  \"device\": {\"qubits\": %d, \"couplers\": %d},\n"
       (Coupling.n_qubits device) (Coupling.n_edges device));
  Buffer.add_string b
    (Printf.sprintf
       "  \"logical\": {\"qubits\": %d, \"gates\": %d, \"depth\": %d},\n"
       (Circuit.n_qubits circuit)
       (Quantum.Decompose.elementary_gate_count circuit)
       (Quantum.Depth.depth circuit));
  Buffer.add_string b
    (Printf.sprintf
       "  \"routed\": {\"gates\": %d, \"depth\": %d, \"swaps\": %d, \"added_gates\": %d},\n"
       (Quantum.Decompose.elementary_gate_count r.physical)
       (Quantum.Depth.depth_swap3 r.physical)
       r.n_swaps (3 * r.n_swaps));
  (match stats with
  | Some (s : Sabre.Stats.t) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"sabre\": {\"first_traversal_swaps\": %d, \"search_steps\": %d, \"time_s\": %.6f},\n"
         s.first_traversal_swaps s.search_steps s.time_s)
  | None -> ());
  (match passes with
  | Some metrics ->
    (* per-pass wall time for every pipeline stage, in pipeline order *)
    Buffer.add_string b "  \"passes\": [\n";
    List.iteri
      (fun i (name, wall_s) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"name\": \"%s\", \"wall_s\": %.6f}%s\n"
             (json_escape name) wall_s
             (if i = List.length metrics - 1 then "" else ",")))
      metrics;
    Buffer.add_string b "  ],\n"
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  \"initial_mapping\": [%s],\n" (mapping_json r.initial));
  Buffer.add_string b
    (Printf.sprintf "  \"final_mapping\": [%s],\n" (mapping_json r.final));
  Buffer.add_string b "  \"verified\": true\n}";
  print_endline (Buffer.contents b)

let report device circuit (r : routed) stats expand =
  let out = if expand then Quantum.Decompose.expand_swaps r.physical else r.physical in
  Format.printf "device          : %d qubits, %d couplers@." (Coupling.n_qubits device)
    (Coupling.n_edges device);
  Format.printf "logical circuit : %d qubits, %d gates, depth %d@."
    (Circuit.n_qubits circuit)
    (Quantum.Decompose.elementary_gate_count circuit)
    (Quantum.Depth.depth circuit);
  Format.printf "routed circuit  : %d gates, depth %d (+%d SWAPs = +%d gates)@."
    (Quantum.Decompose.elementary_gate_count out)
    (Quantum.Depth.depth_swap3 out)
    r.n_swaps (3 * r.n_swaps);
  (match stats with
  | Some s -> Format.printf "sabre           : @[<v>%a@]@." Sabre.Stats.pp s
  | None -> ());
  Format.printf "initial mapping : %s@."
    (String.concat ", "
       (Array.to_list (Array.mapi (fun q p -> Printf.sprintf "q%d>Q%d" q p) r.initial)));
  Format.printf "verification    : OK@."

(* ------------------------------------------------------------------ *)
(* Command line                                                         *)
(* ------------------------------------------------------------------ *)

let directed_of_name = function
  | "qx2" -> Hardware.Directed.ibm_qx2 ()
  | "qx4" -> Hardware.Directed.ibm_qx4 ()
  | other -> invalid_arg (Printf.sprintf "unknown directed device %S" other)

let run_main input workload size device_name device_size directed router
    portfolio objective portfolio_race list_routers list_seeders trials
    traversals delta weight extended_size seed commutation output expand quiet
    json trace stats_json parallel batch stream gen_stream gates cache_mb
    no_cache dist_cache_entries =
  if list_routers then run_list_routers ()
  else if list_seeders then run_list_seeders ()
  else begin
  let cache = (not no_cache) && cache_mb > 0 in
  let result =
    (* cache capacities are process-wide knobs; set them before any
       routing (0 MB disables the compile cache entirely) *)
    let* () =
      if cache_mb < 0 then
        Error (Printf.sprintf "--cache-mb must be >= 0, got %d" cache_mb)
      else if dist_cache_entries < 1 then
        Error
          (Printf.sprintf "--dist-cache-entries must be >= 1, got %d"
             dist_cache_entries)
      else Ok ()
    in
    Engine.Compile_cache.set_capacity_mb (if no_cache then 0 else cache_mb);
    Hardware.Dist_cache.set_capacity dist_cache_entries;
    match (gen_stream, stream) with
    | Some path, _ -> run_gen_stream path size gates seed ~quiet
    | None, true ->
      let* () =
        if workload <> None then Error "--stream reads a QASM file, not --workload"
        else if batch <> None then Error "--stream and --batch are exclusive"
        else if portfolio <> None then
          Error "--stream routes one router in one pass; drop --portfolio"
        else if directed <> None then
          Error "--stream does not support directed devices"
        else if commutation then
          Error
            "--stream routes the plain dependency DAG (commutation-aware \
             admission needs the whole circuit)"
        else Ok ()
      in
      let* device =
        try Ok (Devices.by_name device_name device_size)
        with Invalid_argument msg -> Error msg
      in
      (* single forward traversal from the identity placement: the
         trial/traversal knobs need the materialised circuit *)
      let config =
        {
          Sabre.Config.default with
          trials = 1;
          traversals = 1;
          decay_increment = delta;
          extended_set_weight = weight;
          extended_set_size = extended_size;
          seed;
        }
      in
      let* () =
        Result.map_error (fun m -> "config: " ^ m)
          (Sabre.Config.validate config)
      in
      run_stream input output device config ~quiet ~json
    | None, false ->
    match batch with
    | Some manifest ->
      let* () =
        if input <> None || workload <> None then
          Error "--batch takes its circuits from the manifest; drop the \
                 positional input and --workload"
        else if directed <> None then
          Error "--batch does not support directed devices yet"
        else Ok ()
      in
      let* device =
        try Ok (Devices.by_name device_name device_size)
        with Invalid_argument msg -> Error msg
      in
      let config =
        {
          Sabre.Config.default with
          trials;
          traversals;
          decay_increment = delta;
          extended_set_weight = weight;
          extended_set_size = extended_size;
          seed;
          commutation_aware = commutation;
        }
      in
      let* () =
        Result.map_error (fun m -> "config: " ^ m)
          (Sabre.Config.validate config)
      in
      let domains = match parallel with None -> 1 | Some n -> max 1 n in
      run_batch manifest router config device
        ~portfolio:(Option.map (fun s -> (s, objective)) portfolio)
        ~race:portfolio_race ~cache ~domains ~verify:true ~quiet
    | None ->
    let* circuit = load_circuit input workload size in
    let* directed_device =
      match directed with
      | None -> Ok None
      | Some name -> (
        try Ok (Some (directed_of_name name))
        with Invalid_argument msg -> Error msg)
    in
    let* device =
      match directed_device with
      | Some d -> Ok (Hardware.Directed.underlying d)
      | None -> (
        try Ok (Devices.by_name device_name device_size)
        with Invalid_argument msg -> Error msg)
    in
    let config =
      {
        Sabre.Config.default with
        trials;
        traversals;
        decay_increment = delta;
        extended_set_weight = weight;
        extended_set_size = extended_size;
        seed;
        commutation_aware = commutation;
      }
    in
    let* () =
      Result.map_error (fun m -> "config: " ^ m) (Sabre.Config.validate config)
    in
    let* () =
      if Circuit.n_qubits circuit > Coupling.n_qubits device then
        Error
          (Printf.sprintf "circuit needs %d qubits but device has %d"
             (Circuit.n_qubits circuit) (Coupling.n_qubits device))
      else Ok ()
    in
    let trial_mode =
      match parallel with
      | None -> Engine.Trial_runner.Sequential
      | Some n -> Engine.Trial_runner.Domains (max 1 n)
    in
    let instrument =
      if trace then Engine.Instrument.stderr_trace else Engine.Instrument.null
    in
    let* r, stats, passes, router_label, pf_report =
      match portfolio with
      | None ->
        let* r, stats, passes =
          route router config device circuit ~trial_mode ~cache ~instrument
        in
        Ok (r, stats, passes, router, None)
      | Some spec ->
        (* -j fans the portfolio entries across domains (trials stay
           sequential inside each entry, so results are unchanged) *)
        let domains = match parallel with None -> 1 | Some n -> max 1 n in
        let* r, winner, report =
          route_portfolio spec objective config device circuit ~domains
            ~race:portfolio_race ~cache ~instrument ~quiet
        in
        Ok (r, None, [], winner, Some report)
    in
    let* r =
      match directed_device with
      | None -> Ok r
      | Some d -> (
        (* lower SWAPs and conjugate wrong-way CNOTs; re-check *)
        match Hardware.Directed.fix_directions d r.physical with
        | fixed -> (
          match Hardware.Directed.check_directions d fixed with
          | Ok () -> Ok { r with physical = fixed }
          | Error g ->
            Error
              (Format.asprintf "direction fixing left an illegal gate: %a"
                 Quantum.Gate.pp g))
        | exception Invalid_argument msg -> Error msg)
    in
    if stats_json then
      report_json ~passes ?portfolio:pf_report device circuit r stats
        router_label
    else if json then
      report_json ?portfolio:pf_report device circuit r stats router_label
    else if not quiet then report device circuit r stats expand;
    (match output with
    | Some path ->
      let out =
        if expand then Quantum.Decompose.expand_swaps r.physical else r.physical
      in
      Quantum.Qasm.to_file path out;
      if not quiet then Format.printf "wrote            : %s@." path
    | None -> ());
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Format.eprintf "sabre_compile: %s@." msg;
    1
  end

open Cmdliner

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"CIRCUIT.qasm"
         ~doc:"OpenQASM 2.0 input file.")

let workload =
  Arg.(value & opt (some string) None
       & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Built-in workload instead of a file: qft, ising, ghz, bv, \
                 adder, random, or any Table II benchmark name (e.g. \
                 qft_16, ising_model_10, rd84_142).")

let size =
  Arg.(value & opt (some int) None
       & info [ "n"; "size" ] ~docv:"N" ~doc:"Workload size (qubits).")

let device_name =
  Arg.(value & opt string "tokyo"
       & info [ "d"; "device" ] ~docv:"DEVICE"
           ~doc:"Target device: tokyo, yorktown, qx5, linear, ring, grid, \
                 star, complete, heavy_hex.")

let directed =
  Arg.(value & opt (some string) None
       & info [ "directed" ] ~docv:"DEVICE"
           ~doc:"Target a directed device (qx2, qx4): route on its \
                 symmetric collapse, then lower SWAPs and conjugate \
                 wrong-way CNOTs with Hadamards. Overrides --device.")

let device_size =
  Arg.(value & opt (some int) None
       & info [ "device-size" ] ~docv:"N"
           ~doc:"Size parameter for parametric devices (linear, ring, ...).")

let router =
  Arg.(value & opt string "sabre"
       & info [ "r"; "router" ] ~docv:"ROUTER"
           ~doc:"Routing algorithm: sabre (default), bka (Zulehner-style \
                 A*), greedy (shortest-path), hail (decayed-lookahead), \
                 or any registered router — see --list-routers. All run \
                 behind the same engine Router interface.")

let portfolio =
  Arg.(value & opt (some string) None
       & info [ "portfolio" ] ~docv:"SPEC"
           ~doc:"Best-of-K portfolio routing: comma-separated \
                 ROUTER[/SEEDER][:key=val,...] entries, e.g. \
                 sabre,hail/iso,greedy or \
                 sabre:trials=1,traversals=1,sabre:trials=10. Trailing \
                 key=val pairs override config fields for that entry \
                 only (keys: heuristic, extended-set-size, \
                 extended-set-weight, decay-increment, \
                 decay-reset-interval, trials, traversals, seed, \
                 stall-limit, commutation-aware). The circuit routes \
                 once per entry and the winner under --objective is \
                 kept (earliest entry wins ties, deterministically). \
                 Overrides --router; -j N fans the entries across N \
                 domains without changing the result.")

let objective =
  Arg.(value & opt string "swaps"
       & info [ "objective" ] ~docv:"OBJ"
           ~doc:"Portfolio winner objective: swaps (default, fewest \
                 inserted SWAPs), depth (lowest routed depth), or \
                 success (highest expected success probability under a \
                 uniform noise model).")

let portfolio_race =
  Arg.(value & opt (enum [ ("on", true); ("off", false) ]) false
       & info [ "portfolio-race" ] ~docv:"on|off"
           ~doc:"Speculative portfolio racing (default off): once an \
                 entry completes, running entries whose certified lower \
                 bound (monotone SWAP count or prefix depth) can no \
                 longer win are cancelled cooperatively. The winner and \
                 its circuit are bit-identical to the unraced run; \
                 losing entries just stop early (reported as \
                 cancelled). No effect for --objective success, which \
                 has no monotone bound.")

let list_routers =
  Arg.(value & flag
       & info [ "list-routers" ]
           ~doc:"List the registered routers (with their determinism and \
                 seeding behaviour) and the initial-mapping seeders \
                 usable in --portfolio entries, then exit.")

let list_seeders =
  Arg.(value & flag
       & info [ "list-seeders" ]
           ~doc:"List the registered initial-mapping seeders (usable in \
                 --portfolio ROUTER/SEEDER entries), then exit.")

let trials =
  Arg.(value & opt int 5 & info [ "trials" ] ~doc:"Random initial mappings tried.")

let traversals =
  Arg.(value & opt int 3
       & info [ "traversals" ]
           ~doc:"Routing passes per trial (odd; 3 = forward-backward-forward).")

let delta =
  Arg.(value & opt float 0.001
       & info [ "delta" ] ~doc:"Decay increment (depth/gate-count trade-off knob).")

let weight =
  Arg.(value & opt float 0.5 & info [ "weight" ] ~doc:"Extended-set weight W.")

let extended_size =
  Arg.(value & opt int 20 & info [ "extended-set" ] ~doc:"Extended-set size |E|.")

let seed = Arg.(value & opt int 2019 & info [ "seed" ] ~doc:"RNG seed.")

let commutation =
  Arg.(value & flag
       & info [ "commutation" ]
           ~doc:"Use the commutation-aware dependency DAG (commuting gates \
                 may execute in any order; extension beyond the paper).")

let output =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"OUT.qasm" ~doc:"Write the routed circuit here.")

let expand =
  Arg.(value & flag
       & info [ "expand-swaps" ]
           ~doc:"Lower inserted SWAPs to their 3-CNOT decomposition in the output.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the report.")

let json =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit a machine-readable JSON report instead.")

let trace =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Trace every pipeline pass (timing and counters) on stderr.")

let stats_json =
  Arg.(value & flag
       & info [ "stats-json" ]
           ~doc:"Like --json, plus per-pass wall times for every pipeline \
                 stage.")

let parallel =
  Arg.(value & opt (some int) None
       & info [ "j"; "parallel-trials" ] ~docv:"N"
           ~doc:"Run the trial loop across N OCaml domains (with --batch: \
                 run the circuit batch across N domains instead, trials \
                 staying sequential inside each job). Deterministic: the \
                 result is identical to a sequential run at the same seed.")

let batch =
  Arg.(value & opt (some file) None
       & info [ "batch" ] ~docv:"MANIFEST"
           ~doc:"Batch mode: compile every OpenQASM file listed in MANIFEST \
                 (one path per line, #-comments allowed) for the chosen \
                 device, emitting one JSON result line per circuit on \
                 stdout and a throughput summary on stderr. Combine with \
                 -j N to spread the batch over N domains; results are \
                 byte-identical to a sequential run. Exits non-zero if any \
                 circuit fails.")

let stream =
  Arg.(value & flag
       & info [ "stream" ]
           ~doc:"Streaming mode: route the input file to -o OUT.qasm in a \
                 single forward traversal, reading, routing and writing \
                 gate by gate. Peak memory is bounded by the circuit's \
                 active window (how long qubits stay idle), not its \
                 length, so million-gate files route in a few megabytes. \
                 The output is byte-identical to materialised single-pass \
                 routing from the identity placement.")

let gen_stream =
  Arg.(value & opt (some string) None
       & info [ "gen-stream" ] ~docv:"OUT.qasm"
           ~doc:"Generate a brickwork benchmark circuit (see \
                 Workloads.Stream_chain) to OUT.qasm, gate by gate in \
                 constant memory, and exit. Size with -n (qubits, default \
                 16), --gates and --seed.")

let gates =
  Arg.(value & opt int 1_000_000
       & info [ "gates" ] ~docv:"G"
           ~doc:"Gate count for --gen-stream (default 1000000).")

let cache_mb =
  Arg.(value & opt int 256
       & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Compile-cache byte budget in megabytes (default 256). The \
                 cache memoizes complete routing results keyed by the \
                 circuit, device, config and router, so re-routing an \
                 identical job later in the same process returns the \
                 byte-identical result without re-searching. (Duplicate \
                 --batch rows are already folded by manifest-level dedup \
                 before they reach the cache.) 0 disables it.")

let no_cache =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the compile cache: every job routes from scratch \
                 even when an identical result is already memoized.")

let dist_cache_entries =
  Arg.(value & opt int 16
       & info [ "dist-cache-entries" ] ~docv:"N"
           ~doc:"Distance-matrix cache capacity in devices (default 16): \
                 how many per-device all-pairs distance matrices stay \
                 resident before the least-recently-used one is evicted.")

let cmd =
  let doc = "map a quantum circuit onto a NISQ device with SABRE" in
  let man =
    [
      `S Manpage.s_description;
      `P "Reproduction of Li, Ding & Xie, 'Tackling the Qubit Mapping \
          Problem for NISQ-Era Quantum Devices' (ASPLOS 2019). Routes an \
          input circuit for a device coupling graph by inserting SWAPs, \
          with SABRE's bidirectional heuristic search or one of the \
          paper's baselines, then verifies the result semantically.";
      `S Manpage.s_examples;
      `P "Route a 16-qubit QFT onto IBM Q20 Tokyo:";
      `Pre "  sabre_compile -w qft -n 16 -d tokyo -o routed.qasm";
      `P "Compare with the BKA baseline on a ring:";
      `Pre "  sabre_compile -w qft -n 8 -d ring --device-size 12 -r bka";
      `P "Race three routers and keep whichever inserts fewest SWAPs:";
      `Pre "  sabre_compile -w qft -n 16 --portfolio sabre,hail/iso,greedy";
    ]
  in
  Cmd.v
    (Cmd.info "sabre_compile" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run_main $ input $ workload $ size $ device_name $ device_size
      $ directed $ router $ portfolio $ objective $ portfolio_race
      $ list_routers $ list_seeders $ trials $ traversals $ delta $ weight
      $ extended_size $ seed $ commutation $ output $ expand $ quiet $ json
      $ trace $ stats_json $ parallel $ batch $ stream $ gen_stream $ gates
      $ cache_mb $ no_cache $ dist_cache_entries)

let () = exit (Cmd.eval' cmd)
