lib/quantum/circuit.ml: Array Buffer Digest Format Gate Hashtbl Int List Option Printf String
