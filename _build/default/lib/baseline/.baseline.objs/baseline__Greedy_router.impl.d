lib/baseline/greedy_router.ml: Hardware List Quantum Sabre
