module Gate = Quantum.Gate

(** The heuristic cost functions of Section IV-D.

    All functions score a *candidate SWAP already applied* to the mapping:
    the caller tentatively updates π, evaluates, and reverts. Gate
    operands are given as logical qubit pairs; [l2p] is the tentative π;
    [dist] the device distance matrix. *)

val basic :
  dist:float array array -> l2p:int array -> (int * int) list -> float
(** Eq. (1): Σ_{g ∈ F} D[π(g.q1)][π(g.q2)]. The matrix is float-valued so
    that the same heuristic serves hop distances (plain reproduction) and
    reliability-weighted distances ({!Hardware.Noise}). *)

val lookahead :
  dist:float array array ->
  l2p:int array ->
  front:(int * int) list ->
  extended:(int * int) list ->
  weight:float ->
  float
(** The look-ahead refinement: (1/|F|) Σ_F D + W · (1/|E|) Σ_E D.
    An empty F or E contributes 0 (no division by zero). *)

val with_decay :
  decay:float array -> p1:int -> p2:int -> float -> float
(** Eq. (2) outer factor: multiply a look-ahead score by
    [max decay.(p1) decay.(p2)], where [p1]/[p2] are the physical qubits
    of the candidate SWAP. *)

val score :
  heuristic:Config.heuristic ->
  dist:float array array ->
  l2p:int array ->
  front:(int * int) list ->
  extended:(int * int) list ->
  weight:float ->
  decay:float array ->
  p1:int ->
  p2:int ->
  float
(** Dispatch on the configured heuristic level. For [Basic] the extended
    set and decay are ignored; for [Lookahead] decay is ignored. *)
