module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

type t = {
  n : int;
  arrow_set : (int * int, unit) Hashtbl.t;
  arrow_list : (int * int) list;  (* sorted *)
  base : Coupling.t;  (* symmetric collapse, built once *)
}

let create ~n_qubits arrow_input =
  if n_qubits <= 0 then invalid_arg "Directed.create: need at least one qubit";
  let arrow_set = Hashtbl.create (List.length arrow_input) in
  List.iter
    (fun (c, t) ->
      if c < 0 || c >= n_qubits || t < 0 || t >= n_qubits then
        invalid_arg
          (Printf.sprintf "Directed.create: arrow (%d,%d) out of range" c t);
      if c = t then
        invalid_arg (Printf.sprintf "Directed.create: self-loop on %d" c);
      if Hashtbl.mem arrow_set (c, t) then
        invalid_arg
          (Printf.sprintf "Directed.create: duplicate arrow (%d,%d)" c t);
      Hashtbl.add arrow_set (c, t) ())
    arrow_input;
  let undirected =
    List.map (fun (c, t) -> (min c t, max c t)) arrow_input
    |> List.sort_uniq compare
  in
  {
    n = n_qubits;
    arrow_set;
    arrow_list = List.sort compare arrow_input;
    base = Coupling.create ~n_qubits undirected;
  }

let n_qubits d = d.n
let arrows d = d.arrow_list
let allows d ~control ~target = Hashtbl.mem d.arrow_set (control, target)
let underlying d = d.base

(* Published directions (control -> target). *)
let ibm_qx2 () =
  create ~n_qubits:5 [ (0, 1); (0, 2); (1, 2); (3, 2); (3, 4); (4, 2) ]

let ibm_qx4 () =
  create ~n_qubits:5 [ (1, 0); (2, 0); (2, 1); (2, 3); (2, 4); (4, 3) ]

let coupled d a b =
  allows d ~control:a ~target:b || allows d ~control:b ~target:a

(* CNOT(a,b) through whatever arrow exists between a and b; reversed
   arrows are fixed with the Hadamard-conjugation identity
   CX(a,b) = (H a)(H b) CX(b,a) (H a)(H b). *)
let cnot_via d a b =
  if allows d ~control:a ~target:b then Some [ Gate.Cnot (a, b) ]
  else if allows d ~control:b ~target:a then
    Some
      [
        Gate.Single (H, a); Gate.Single (H, b); Gate.Cnot (b, a);
        Gate.Single (H, a); Gate.Single (H, b);
      ]
  else None

let fix_gate d gate =
  match gate with
  | Gate.Cnot (a, b) -> (
    match cnot_via d a b with
    | Some gs -> gs
    | None ->
      invalid_arg
        (Printf.sprintf "Directed.fix_directions: no coupler between %d and %d"
           a b))
  | Gate.Cz (a, b) -> (
    (* CZ = (H t) CX (H t) through whichever arrow exists *)
    if allows d ~control:a ~target:b then
      [ Gate.Single (H, b); Gate.Cnot (a, b); Gate.Single (H, b) ]
    else if allows d ~control:b ~target:a then
      [ Gate.Single (H, a); Gate.Cnot (b, a); Gate.Single (H, a) ]
    else
      invalid_arg
        (Printf.sprintf "Directed.fix_directions: no coupler between %d and %d"
           a b))
  | Gate.Swap _ ->
    (* handled by lowering before this function is reached *)
    assert false
  | g -> [ g ]

let fix_directions d circuit =
  let lowered = Quantum.Decompose.expand_swaps circuit in
  let gates = List.concat_map (fix_gate d) (Circuit.gates lowered) in
  Circuit.create ~n_qubits:(Circuit.n_qubits lowered)
    ~n_clbits:(Circuit.n_clbits lowered)
    gates

let check_directions d circuit =
  let offending =
    List.find_opt
      (fun g ->
        match g with
        | Gate.Cnot (a, b) -> not (allows d ~control:a ~target:b)
        | Gate.Cz _ | Gate.Swap _ -> true
        | _ -> false)
      (Circuit.gates circuit)
  in
  match offending with Some g -> Error g | None -> Ok ()

let overhead d circuit =
  let lowered = Quantum.Decompose.expand_swaps circuit in
  List.fold_left
    (fun acc g ->
      match g with
      | Gate.Cnot (a, b) when not (allows d ~control:a ~target:b) ->
        if coupled d a b then acc + 4
        else
          invalid_arg
            (Printf.sprintf "Directed.overhead: no coupler between %d and %d" a
               b)
      | Gate.Cz _ -> acc + 2
      | _ -> acc)
    0 (Circuit.gates lowered)
