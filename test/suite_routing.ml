module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Routing_pass = Sabre.Routing_pass

let check = Alcotest.check
let tc = Alcotest.test_case

let single_pass = { Config.default with trials = 1; traversals = 1 }

let route ?(config = single_pass) coupling circuit mapping =
  Routing_pass.run config coupling (Dag.of_circuit circuit) mapping

let verify coupling logical mapping (r : Routing_pass.result) label =
  Helpers.assert_routed ~coupling
    ~initial:(Mapping.l2p_array mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical ~physical:r.physical label

let test_executable_circuit_untouched () =
  (* GHZ chain on a line device with identity mapping: zero swaps *)
  let device = Devices.linear 5 in
  let c = Workloads.Ghz.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  let r = route device c m in
  check Alcotest.int "no swaps" 0 r.n_swaps;
  check Alcotest.int "same gate count" (Circuit.length c)
    (Circuit.length r.physical);
  verify device c m r "untouched"

let test_single_blocked_gate () =
  (* CNOT between the two ends of a 3-qubit line: exactly 1 swap *)
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "one swap" 1 r.n_swaps;
  verify device c m r "single blocked"

let test_paper_fig3_example () =
  (* the paper's worked example: 1 SWAP suffices *)
  let device = Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ] in
  let c =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  let m = Mapping.identity ~n_logical:4 ~n_physical:4 in
  let r = route device c m in
  check Alcotest.int "exactly one swap (Fig. 3d)" 1 r.n_swaps;
  verify device c m r "fig3"

let test_single_qubit_gates_pass_through () =
  let device = Devices.linear 2 in
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Single (T, 1); Gate.Measure (0, 0) ]
  in
  let m = Mapping.identity ~n_logical:2 ~n_physical:2 in
  let r = route device c m in
  check Alcotest.int "all emitted" 3 (Circuit.length r.physical);
  check Alcotest.int "no swaps" 0 r.n_swaps

let test_remapping_respects_initial_mapping () =
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ] in
  (* q0 on P2, q1 on P1 — adjacent, no swap; gates must be remapped *)
  let m = Mapping.of_array ~n_physical:3 [| 2; 1 |] in
  let r = route device c m in
  check Alcotest.int "no swaps" 0 r.n_swaps;
  check Alcotest.bool "gates remapped" true
    (Circuit.equal r.physical
       (Circuit.create ~n_qubits:3 [ Gate.Single (H, 2); Gate.Cnot (2, 1) ]));
  verify device c m r "remapped"

let test_all_heuristics_correct () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  List.iter
    (fun h ->
      let r = route ~config:{ single_pass with heuristic = h } device c m in
      verify device c m r "heuristic variant";
      check Alcotest.bool "made progress" true (r.n_swaps >= 1))
    [ Config.Basic; Config.Lookahead; Config.Decay ]

let test_final_mapping_consistent () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:21 ~n:8 ~gates:80 in
  let m =
    Mapping.random ~state:(Random.State.make [| 3 |]) ~n_logical:8
      ~n_physical:20
  in
  let r = route device c m in
  (* every logical qubit still placed injectively *)
  let seen = Array.make 20 false in
  for q = 0 to 7 do
    let p = Mapping.to_physical r.final_mapping q in
    check Alcotest.bool "in range" true (p >= 0 && p < 20);
    check Alcotest.bool "injective" false seen.(p);
    seen.(p) <- true
  done;
  verify device c m r "final mapping"

let test_swap_count_matches_emitted () =
  let device = Devices.linear 6 in
  let c = Helpers.random_circuit ~seed:5 ~n:6 ~gates:60 in
  let m = Mapping.identity ~n_logical:6 ~n_physical:6 in
  let r = route device c m in
  let swaps_in_circuit =
    List.length
      (List.filter
         (function Gate.Swap _ -> true | _ -> false)
         (Circuit.gates r.physical))
  in
  check Alcotest.int "n_swaps accurate" r.n_swaps swaps_in_circuit;
  check Alcotest.int "output length" (Circuit.length c + r.n_swaps)
    (Circuit.length r.physical)

let test_star_device () =
  (* on a star all routes go through the hub *)
  let device = Devices.star 6 in
  let c = Workloads.Ghz.circuit 6 in
  let m = Mapping.identity ~n_logical:6 ~n_physical:6 in
  let r = route device c m in
  verify device c m r "star"

let test_ring_device () =
  let device = Devices.ring 8 in
  let c = Helpers.random_circuit ~seed:13 ~n:8 ~gates:100 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let r = route device c m in
  verify device c m r "ring"

let test_wider_device_than_circuit () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 6 in
  let m =
    Mapping.random ~state:(Random.State.make [| 77 |]) ~n_logical:6
      ~n_physical:20
  in
  let r = route device c m in
  verify device c m r "wide device"

let test_rejects_too_wide_circuit () =
  let device = Devices.linear 3 in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  check Alcotest.bool "raises" true
    (match route device c m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_mapping_arity_mismatch () =
  let device = Devices.linear 4 in
  let c = Workloads.Qft.circuit 3 in
  let m = Mapping.identity ~n_logical:4 ~n_physical:4 in
  check Alcotest.bool "raises" true
    (match route device c m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_decay_zero_equals_lookahead () =
  (* with δ = 0 every decay factor stays 1.0, so the Decay heuristic must
     reproduce the Lookahead heuristic exactly *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:41 ~n:12 ~gates:150 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  let lookahead =
    route ~config:{ single_pass with heuristic = Config.Lookahead } device c m
  in
  let decay0 =
    route
      ~config:
        { single_pass with heuristic = Config.Decay; decay_increment = 0.0 }
      device c m
  in
  check Alcotest.bool "identical outputs" true
    (Circuit.equal lookahead.physical decay0.physical)

let test_decay_knob_has_effect () =
  (* Section IV-C3: δ is a real knob — across a δ sweep the generated
     circuits differ in the (gates, depth) plane *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 12 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  let outcomes =
    List.map
      (fun delta ->
        let r =
          route
            ~config:
              { single_pass with heuristic = Config.Decay; decay_increment = delta }
            device c m
        in
        verify device c m r (Printf.sprintf "delta %g" delta);
        (r.n_swaps, Quantum.Depth.depth_swap3 r.physical))
      [ 0.0; 0.001; 0.01; 0.1 ]
  in
  check Alcotest.bool "sweep produces distinct circuits" true
    (List.length (List.sort_uniq compare outcomes) > 1)

let test_stall_fallback_terminates () =
  (* an adversarial stall limit of 1 forces the fallback path; routing
     must still terminate and be correct *)
  let device = Devices.linear 8 in
  let c = Helpers.random_circuit ~seed:9 ~n:8 ~gates:120 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let r = route ~config:{ single_pass with stall_limit = Some 1 } device c m in
  verify device c m r "fallback";
  check Alcotest.bool "fallback used" true (r.fallback_swaps > 0)

let test_one_swap_serves_two_front_gates () =
  (* the situation of paper Fig. 6: two blocked front-layer gates share a
     profitable SWAP; the heuristic must find the single SWAP that makes
     both executable rather than fixing them one by one.

     3x3 grid     0 1 2      front: CX(0,4), CX(2,4)
                  3 4 5      swapping P1<->P4 moves q4 between q0 and q2
                  6 7 8 *)
  let device = Devices.grid ~rows:3 ~cols:3 in
  let c =
    Circuit.create ~n_qubits:9 [ Gate.Cnot (0, 4); Gate.Cnot (2, 4) ]
  in
  let m = Mapping.identity ~n_logical:9 ~n_physical:9 in
  let r = route device c m in
  check Alcotest.int "single shared swap" 1 r.n_swaps;
  (match Circuit.gates r.physical with
  | [ Gate.Swap (a, b); _; _ ] ->
    check Alcotest.bool "swap on (1,4)" true
      ((a, b) = (1, 4) || (a, b) = (4, 1))
  | _ -> Alcotest.fail "expected swap then two cnots");
  verify device c m r "fig6"

let test_candidates_restricted_to_front () =
  (* Section IV-C1: an inserted SWAP always touches a physical qubit
     occupied by a front-layer operand *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:61 ~n:10 ~gates:120 in
  let m = Mapping.identity ~n_logical:10 ~n_physical:20 in
  let r = route device c m in
  (* replay the output: before each SWAP, compute the physical homes of
     the *next* blocked logical two-qubit gates; the SWAP must touch one *)
  let p2l = Array.make 20 (-1) in
  Array.iteri (fun l p -> p2l.(p) <- l) (Mapping.l2p_array m);
  let rec upcoming_gate = function
    | Gate.Swap _ :: rest -> upcoming_gate rest
    | g :: rest -> (
      match Gate.two_qubit_pair g with Some _ -> Some g | None -> upcoming_gate rest)
    | [] -> None
  in
  let rec walk gates =
    match gates with
    | [] -> ()
    | Gate.Swap (a, b) :: rest ->
      (* some logical qubit of some not-yet-executed two-qubit gate must
         sit on a or b — weaker but checkable proxy: the physical circuit
         still contains a two-qubit gate later, and the swap moves an
         occupied qubit *)
      check Alcotest.bool "swap moves an occupied qubit" true
        (p2l.(a) >= 0 || p2l.(b) >= 0);
      check Alcotest.bool "work remains after a swap" true
        (upcoming_gate rest <> None);
      let tmp = p2l.(a) in
      p2l.(a) <- p2l.(b);
      p2l.(b) <- tmp;
      walk rest
    | _ :: rest -> walk rest
  in
  walk (Circuit.gates r.physical)

let test_empty_circuit () =
  let device = Devices.linear 3 in
  let c = Circuit.empty 3 in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "empty output" 0 (Circuit.length r.physical);
  check Alcotest.int "no swaps" 0 r.n_swaps

let test_search_steps_counted () =
  let device = Devices.linear 3 in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  let m = Mapping.identity ~n_logical:3 ~n_physical:3 in
  let r = route device c m in
  check Alcotest.int "one step" 1 r.search_steps

(* ------------------------------------------------------------------ *)
(* Incidence index + delta scoring                                     *)
(* ------------------------------------------------------------------ *)

let test_incidence_index () =
  let module I = Routing_pass.Incidence in
  let idx = I.create () in
  check Alcotest.int "fresh index has no generation" (-1) (I.generation idx);
  (* pair slots: 0:(0,1)  1:(1,2)  2:(3,0) over 5 logical qubits *)
  let q1 = [| 0; 1; 3 |] and q2 = [| 1; 2; 0 |] in
  I.build idx ~gen:7 ~n_logical:5 ~q1 ~q2 ~len:3;
  check Alcotest.int "generation recorded" 7 (I.generation idx);
  List.iteri
    (fun q d -> check Alcotest.int (Printf.sprintf "degree of %d" q) d (I.degree idx q))
    [ 2; 2; 1; 1; 0 ];
  let slots q =
    let acc = ref [] in
    I.iter idx q (fun k -> acc := k :: !acc);
    List.sort compare !acc
  in
  check (Alcotest.list Alcotest.int) "slots of qubit 0" [ 0; 2 ] (slots 0);
  check (Alcotest.list Alcotest.int) "slots of qubit 1" [ 0; 1 ] (slots 1);
  check (Alcotest.list Alcotest.int) "slots of qubit 2" [ 1 ] (slots 2);
  check (Alcotest.list Alcotest.int) "slots of qubit 3" [ 2 ] (slots 3)

let test_incidence_rebuild_invalidation () =
  (* a rebuild at a newer generation fully replaces the old content, and
     [invalidate] marks the index unusable (the between-runs reset) *)
  let module I = Routing_pass.Incidence in
  let idx = I.create () in
  I.build idx ~gen:3 ~n_logical:6 ~q1:[| 0; 2 |] ~q2:[| 1; 3 |] ~len:2;
  I.build idx ~gen:8 ~n_logical:6 ~q1:[| 4 |] ~q2:[| 5 |] ~len:1;
  check Alcotest.int "generation bumped" 8 (I.generation idx);
  check Alcotest.int "stale qubit cleared" 0 (I.degree idx 0);
  check Alcotest.int "fresh qubit indexed" 1 (I.degree idx 4);
  let acc = ref [] in
  I.iter idx 5 (fun k -> acc := k :: !acc);
  check (Alcotest.list Alcotest.int) "fresh slot id" [ 0 ] !acc;
  I.invalidate idx;
  check Alcotest.int "invalidated" (-1) (I.generation idx)

let route_mode ~scoring ?(config = single_pass) coupling dag mapping =
  Routing_pass.run_flat ~scoring config coupling dag mapping

let assert_modes_agree ?config device c m label =
  let dag = Dag.of_circuit c in
  let a = route_mode ~scoring:Routing_pass.Delta ?config device dag m in
  let b = route_mode ~scoring:Routing_pass.Full ?config device dag m in
  check Alcotest.bool (label ^ ": identical circuits") true
    (Circuit.equal a.physical b.physical);
  check
    (Alcotest.array Alcotest.int)
    (label ^ ": identical final mapping")
    (Mapping.l2p_array b.final_mapping)
    (Mapping.l2p_array a.final_mapping);
  check Alcotest.int (label ^ ": identical swaps") b.n_swaps a.n_swaps;
  (a, b)

let test_delta_equals_full_all_heuristics () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:17 ~n:12 ~gates:200 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  List.iter
    (fun h ->
      let config = { single_pass with Config.heuristic = h } in
      ignore (assert_modes_agree ~config device c m "heuristic sweep"))
    [ Config.Basic; Config.Lookahead; Config.Decay ]

let test_delta_survives_applied_swaps () =
  (* Long SWAP sequences between gate executions: the logical-keyed
     incidence index must stay valid across every applied SWAP (it only
     goes stale when front membership changes). A far CNOT on a long
     line forces many consecutive decisions on one unchanged front. *)
  let device = Devices.linear 16 in
  let c = Circuit.create ~n_qubits:16 [ Gate.Cnot (0, 15); Gate.Cnot (0, 15) ] in
  let m = Mapping.identity ~n_logical:16 ~n_physical:16 in
  let a, _ = assert_modes_agree device c m "far cnot" in
  check Alcotest.bool "many decisions on one front" true
    (a.search_steps >= 10);
  verify device c m a "far cnot delta"

let test_delta_equals_full_under_fallback () =
  (* stall_limit = 1 forces the anti-livelock path: fallback SWAPs must
     keep the incrementally-synced scoring π consistent too *)
  let device = Devices.linear 8 in
  let c = Helpers.random_circuit ~seed:9 ~n:8 ~gates:120 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let config = { single_pass with Config.stall_limit = Some 1 } in
  let a, _ = assert_modes_agree ~config device c m "fallback" in
  check Alcotest.bool "fallback exercised" true (a.fallback_swaps > 0)

let test_50k_gate_chain_regression () =
  (* mirrors the PR 3 DAG 50k-chain test at the routing level: a long
     chain must neither blow the stack nor diverge between scorers *)
  let device = Devices.linear 8 in
  let c = Helpers.random_circuit ~seed:3 ~n:8 ~gates:50_000 in
  let m = Mapping.identity ~n_logical:8 ~n_physical:8 in
  let a, _ = assert_modes_agree device c m "50k chain" in
  check Alcotest.bool "routed the whole chain" true
    (Circuit.length a.physical >= 50_000)

let test_scoring_stats_reported () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 12 in
  let m = Mapping.identity ~n_logical:12 ~n_physical:20 in
  let dag = Dag.of_circuit c in
  let d = route_mode ~scoring:Routing_pass.Delta device dag m in
  let f = route_mode ~scoring:Routing_pass.Full device dag m in
  check Alcotest.int "decisions = search steps" d.search_steps
    d.scoring.Sabre.Stats.decisions;
  check Alcotest.bool "candidates scored" true
    (d.scoring.Sabre.Stats.candidates >= d.scoring.Sabre.Stats.decisions);
  check Alcotest.bool "delta touches fewer terms" true
    (d.scoring.Sabre.Stats.delta_terms < d.scoring.Sabre.Stats.full_terms);
  check Alcotest.int "same work measured either way"
    d.scoring.Sabre.Stats.full_terms f.scoring.Sabre.Stats.full_terms;
  check Alcotest.int "full mode recomputes everything"
    f.scoring.Sabre.Stats.full_terms f.scoring.Sabre.Stats.delta_terms

let test_non_integer_metric_falls_back_to_full () =
  (* a non-integer metric (e.g. noise-weighted) cannot use exact integer
     deltas; requesting Delta must quietly degrade to full recompute —
     same output, and the stats show no terms were skipped *)
  let device = Devices.linear 5 in
  let n = Coupling.n_qubits device in
  let dist =
    Array.map (fun d -> d *. 0.5) (Hardware.Dist_cache.hop_distances device)
  in
  let c = Circuit.create ~n_qubits:5 [ Gate.Cnot (0, 4) ] in
  let m = Mapping.identity ~n_logical:5 ~n_physical:n in
  let dag = Dag.of_circuit c in
  let a =
    Routing_pass.run_flat ~dist ~scoring:Routing_pass.Delta single_pass device
      dag m
  in
  let b =
    Routing_pass.run_flat ~dist ~scoring:Routing_pass.Full single_pass device
      dag m
  in
  check Alcotest.bool "identical circuits" true
    (Circuit.equal a.physical b.physical);
  check Alcotest.int "no delta savings on a float metric"
    a.scoring.Sabre.Stats.full_terms a.scoring.Sabre.Stats.delta_terms;
  check Alcotest.bool "scored something" true
    (a.scoring.Sabre.Stats.full_terms > 0)

let test_mismatched_dist_int_rejected () =
  let device = Devices.linear 4 in
  let dist = Hardware.Dist_cache.hop_distances device in
  let dist_int = Array.copy (Hardware.Dist_cache.hop_distances_int device) in
  dist_int.(1) <- dist_int.(1) + 1;
  let c = Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 3) ] in
  let m = Mapping.identity ~n_logical:4 ~n_physical:4 in
  let dag = Dag.of_circuit c in
  check Alcotest.bool "raises on disagreement" true
    (match Routing_pass.run_flat ~dist ~dist_int single_pass device dag m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    tc "executable circuit untouched" `Quick test_executable_circuit_untouched;
    tc "single blocked gate" `Quick test_single_blocked_gate;
    tc "paper Fig. 3 example" `Quick test_paper_fig3_example;
    tc "single-qubit gates pass through" `Quick test_single_qubit_gates_pass_through;
    tc "initial mapping respected" `Quick test_remapping_respects_initial_mapping;
    tc "all heuristics correct" `Quick test_all_heuristics_correct;
    tc "final mapping consistent" `Quick test_final_mapping_consistent;
    tc "swap count matches emitted" `Quick test_swap_count_matches_emitted;
    tc "star device" `Quick test_star_device;
    tc "ring device" `Quick test_ring_device;
    tc "wider device than circuit" `Quick test_wider_device_than_circuit;
    tc "rejects too-wide circuit" `Quick test_rejects_too_wide_circuit;
    tc "rejects mapping arity mismatch" `Quick test_rejects_mapping_arity_mismatch;
    tc "decay(0) = lookahead" `Quick test_decay_zero_equals_lookahead;
    tc "decay knob has effect" `Quick test_decay_knob_has_effect;
    tc "stall fallback terminates" `Quick test_stall_fallback_terminates;
    tc "one swap serves two front gates (Fig. 6)" `Quick
      test_one_swap_serves_two_front_gates;
    tc "swaps touch occupied qubits" `Quick test_candidates_restricted_to_front;
    tc "empty circuit" `Quick test_empty_circuit;
    tc "search steps counted" `Quick test_search_steps_counted;
    tc "incidence index CSR layout" `Quick test_incidence_index;
    tc "incidence rebuild + invalidation" `Quick
      test_incidence_rebuild_invalidation;
    tc "delta = full for every heuristic" `Quick
      test_delta_equals_full_all_heuristics;
    tc "delta index survives applied swaps" `Quick
      test_delta_survives_applied_swaps;
    tc "delta = full under fallback" `Quick
      test_delta_equals_full_under_fallback;
    tc "50k-gate chain regression" `Quick test_50k_gate_chain_regression;
    tc "scoring stats reported" `Quick test_scoring_stats_reported;
    tc "non-integer metric falls back to full" `Quick
      test_non_integer_metric_falls_back_to_full;
    tc "mismatched dist_int rejected" `Quick test_mismatched_dist_int_rejected;
  ]
