test/suite_workloads.ml: Alcotest Array Complex Float Lazy List Printf Quantum Sim Workloads
