(* Property-based tests (qcheck) over random circuits and devices. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gate_gen n =
  let open QCheck.Gen in
  let qubit = int_range 0 (n - 1) in
  let distinct_pair =
    qubit >>= fun a ->
    int_range 0 (n - 2) >>= fun k ->
    let b = if k >= a then k + 1 else k in
    return (a, b)
  in
  frequency
    [
      (4, distinct_pair >|= fun (a, b) -> Gate.Cnot (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Cz (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Swap (a, b));
      (1, qubit >|= fun q -> Gate.Single (H, q));
      (1, qubit >|= fun q -> Gate.Single (T, q));
      ( 1,
        qubit >>= fun q ->
        float_range (-3.0) 3.0 >|= fun a -> Gate.Single (Rz a, q) );
    ]

(* Routed-equivalence checks identify Swap gates in the *output* as
   routing-inserted, so input circuits must be in the SWAP-free elementary
   set (as the paper's are) — generated SWAPs are expanded to 3 CNOTs. *)
let circuit_gen =
  let open QCheck.Gen in
  int_range 2 6 >>= fun n ->
  list_size (int_range 0 40) (gate_gen n) >|= fun gates ->
  Quantum.Decompose.expand_swaps (Circuit.create ~n_qubits:n gates)

let circuit_arb =
  QCheck.make circuit_gen ~print:(fun c -> Circuit.to_string c)

(* Random connected device with at least as many qubits as the circuit:
   a random spanning tree plus random extra edges. *)
let device_gen ~min_qubits =
  let open QCheck.Gen in
  int_range min_qubits (min_qubits + 4) >>= fun n ->
  if n = 1 then return (Coupling.create ~n_qubits:1 [])
  else
    (* spanning tree: each node i>0 attaches to a random previous node *)
    let attach i = int_range 0 (i - 1) >|= fun p -> (p, i) in
    let rec tree i acc =
      if i >= n then return acc
      else attach i >>= fun e -> tree (i + 1) (e :: acc)
    in
    tree 1 [] >>= fun tree_edges ->
    (* a few random extra edges *)
    list_size (int_range 0 n)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >|= fun extras ->
    let have = Hashtbl.create 16 in
    List.iter
      (fun (a, b) -> Hashtbl.replace have (min a b, max a b) ())
      tree_edges;
    let extra_edges =
      List.filter_map
        (fun (a, b) ->
          if a = b then None
          else begin
            let e = (min a b, max a b) in
            if Hashtbl.mem have e then None
            else begin
              Hashtbl.replace have e ();
              Some e
            end
          end)
        extras
    in
    Coupling.create ~n_qubits:n (tree_edges @ extra_edges)

let routed_instance_gen =
  let open QCheck.Gen in
  circuit_gen >>= fun c ->
  device_gen ~min_qubits:(Circuit.n_qubits c) >>= fun device ->
  int_range 0 1_000_000 >|= fun seed -> (c, device, seed)

let routed_instance_arb =
  QCheck.make routed_instance_gen ~print:(fun (c, device, seed) ->
      Format.asprintf "seed=%d@.%a@.%a" seed Coupling.pp device Circuit.pp c)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_sabre_output_valid =
  QCheck.Test.make ~count:60 ~name:"SABRE output compliant and equivalent"
    routed_instance_arb (fun (c, device, seed) ->
      let config = { Sabre.Config.default with trials = 1; seed } in
      let r = Sabre.Compiler.run ~config device c in
      let initial = Mapping.l2p_array r.initial_mapping in
      let final = Mapping.l2p_array r.final_mapping in
      (match
         Sim.Tracker.check ~coupling:device ~initial ~final ~logical:c
           ~physical:r.physical ()
       with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%a" Sim.Tracker.pp_error e)
      && Sim.Equivalence.routed_equivalent ~states:1 ~initial ~final
           ~logical:c ~physical:r.physical ())

let prop_greedy_output_valid =
  QCheck.Test.make ~count:60 ~name:"greedy output compliant and equivalent"
    routed_instance_arb (fun (c, device, _) ->
      let r = Baseline.Greedy_router.run device c in
      let initial = Mapping.l2p_array r.initial_mapping in
      let final = Mapping.l2p_array r.final_mapping in
      match
        Sim.Tracker.check ~coupling:device ~initial ~final ~logical:c
          ~physical:r.physical ()
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%a" Sim.Tracker.pp_error e)

let prop_bka_output_valid =
  QCheck.Test.make ~count:40 ~name:"BKA output compliant and equivalent"
    routed_instance_arb (fun (c, device, _) ->
      match Baseline.Bka.run device c with
      | Error _ -> QCheck.assume_fail ()
      | Ok r -> (
        let initial = Mapping.l2p_array r.initial_mapping in
        let final = Mapping.l2p_array r.final_mapping in
        match
          Sim.Tracker.check ~coupling:device ~initial ~final ~logical:c
            ~physical:r.physical ()
        with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_reportf "%a" Sim.Tracker.pp_error e))

let prop_reverse_involutive =
  QCheck.Test.make ~count:100 ~name:"reverse . reverse = id (unitary part)"
    circuit_arb (fun c ->
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      Circuit.equal unitary (Circuit.reverse (Circuit.reverse unitary)))

let prop_reverse_is_inverse_unitary =
  QCheck.Test.make ~count:40 ~name:"circuit . reverse = identity unitary"
    circuit_arb (fun c ->
      let n = Circuit.n_qubits c in
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      let rng = Random.State.make [| 123 |] in
      let s = Sim.Statevector.random ~state:rng n in
      let expected = Sim.Statevector.copy s in
      Sim.Statevector.apply_circuit s unitary;
      Sim.Statevector.apply_circuit s (Circuit.reverse unitary);
      Sim.Statevector.approx_equal s expected)

let prop_qasm_roundtrip =
  QCheck.Test.make ~count:100 ~name:"qasm print/parse roundtrip" circuit_arb
    (fun c ->
      let back = Quantum.Qasm.of_string (Quantum.Qasm.to_string c) in
      Circuit.equal c back)

let prop_depth_bounds =
  QCheck.Test.make ~count:100 ~name:"depth bounds" circuit_arb (fun c ->
      let d = Quantum.Depth.depth c in
      let g = Circuit.gate_count c + List.length (List.filter (function Gate.Measure _ -> true | _ -> false) (Circuit.gates c)) in
      d <= g
      &&
      (* depth at least the busiest qubit's load *)
      let loads = Array.make (Circuit.n_qubits c) 0 in
      List.iter
        (fun gate ->
          match gate with
          | Gate.Barrier _ -> ()
          | _ -> List.iter (fun q -> loads.(q) <- loads.(q) + 1) (Gate.qubits gate))
        (Circuit.gates c);
      Array.for_all (fun l -> d >= l) loads)

let prop_distance_matrix_metric =
  QCheck.Test.make ~count:60 ~name:"distance matrix is a metric"
    (QCheck.make (device_gen ~min_qubits:2))
    (fun device ->
      let n = Coupling.n_qubits device in
      let d = Coupling.distance_matrix device in
      let ok = ref true in
      for i = 0 to n - 1 do
        if d.(i).(i) <> 0 then ok := false;
        for j = 0 to n - 1 do
          if d.(i).(j) <> d.(j).(i) then ok := false;
          if i <> j && Coupling.connected device i j && d.(i).(j) <> 1 then
            ok := false;
          for k = 0 to n - 1 do
            if d.(i).(j) > d.(i).(k) + d.(k).(j) then ok := false
          done
        done
      done;
      !ok)

let prop_mapping_swap_involutive =
  QCheck.Test.make ~count:100 ~name:"mapping swap twice = identity"
    (QCheck.make
       QCheck.Gen.(
         int_range 1 8 >>= fun n ->
         int_range n 12 >>= fun np ->
         int_range 0 (np - 1) >>= fun p1 ->
         int_range 0 (np - 1) >>= fun p2 ->
         int >|= fun seed -> (n, np, p1, p2, seed)))
    (fun (n, np, p1, p2, seed) ->
      let m =
        Mapping.random
          ~state:(Random.State.make [| seed |])
          ~n_logical:n ~n_physical:np
      in
      let m' = Mapping.swap_physical (Mapping.swap_physical m p1 p2) p1 p2 in
      Mapping.equal m m')

let prop_canonical_key_stable_under_dag_relinearisation =
  QCheck.Test.make ~count:60
    ~name:"canonical key invariant under topological relinearisation"
    circuit_arb (fun c ->
      let dag = Quantum.Dag.of_circuit c in
      let order = Quantum.Dag.topological_order dag in
      let gates = Circuit.gate_array c in
      let relinearised =
        Circuit.create ~n_qubits:(Circuit.n_qubits c)
          ~n_clbits:(Circuit.n_clbits c)
          (List.map (fun i -> gates.(i)) order)
      in
      Circuit.equal_up_to_reordering c relinearised)

let prop_sabre_no_swaps_on_complete_graph =
  QCheck.Test.make ~count:60 ~name:"no swaps needed on complete coupling"
    circuit_arb (fun c ->
      let n = max 2 (Circuit.n_qubits c) in
      let device = Devices.complete n in
      let r =
        Sabre.Compiler.run
          ~config:{ Sabre.Config.default with trials = 1 }
          device c
      in
      r.stats.n_swaps = 0)

let prop_optimizer_preserves_unitary =
  QCheck.Test.make ~count:40 ~name:"peephole optimiser preserves unitary"
    circuit_arb (fun c ->
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      let optimised = Quantum.Optimize.run unitary in
      Circuit.length optimised <= Circuit.length unitary
      && Sim.Equivalence.circuits_equivalent ~states:2 unitary optimised)

let prop_optimizer_idempotent =
  QCheck.Test.make ~count:60 ~name:"peephole optimiser idempotent" circuit_arb
    (fun c ->
      let once = Quantum.Optimize.run c in
      Circuit.equal once (Quantum.Optimize.run once))

let prop_alap_slack_nonnegative =
  QCheck.Test.make ~count:80 ~name:"slack >= 0 and alap depth = asap depth"
    circuit_arb (fun c ->
      let s = Quantum.Depth.slack c in
      Array.for_all (fun x -> x >= 0) s
      && (Quantum.Depth.alap c).Quantum.Depth.depth
         = (Quantum.Depth.asap c).Quantum.Depth.depth)

let prop_directed_fix_sound =
  (* random direction assignment over a random connected device: the fix
     pass always yields direction-legal, unitarily equal circuits *)
  QCheck.Test.make ~count:40 ~name:"directed fix sound"
    (QCheck.make
       QCheck.Gen.(
         circuit_gen >>= fun c ->
         device_gen ~min_qubits:(Circuit.n_qubits c) >>= fun device ->
         int_bound 1_000_000 >|= fun seed -> (c, device, seed)))
    (fun (c, device, seed) ->
      let rng = Random.State.make [| seed |] in
      let arrows =
        List.map
          (fun (a, b) -> if Random.State.bool rng then (a, b) else (b, a))
          (Coupling.edges device)
      in
      let d =
        Hardware.Directed.create ~n_qubits:(Coupling.n_qubits device) arrows
      in
      let r =
        Sabre.Compiler.run
          ~config:{ Sabre.Config.default with trials = 1 }
          device c
      in
      let fixed = Hardware.Directed.fix_directions d r.physical in
      (match Hardware.Directed.check_directions d fixed with
      | Ok () -> true
      | Error g ->
        QCheck.Test.fail_reportf "illegal gate %s" (Quantum.Gate.to_string g))
      && Sim.Equivalence.circuits_equivalent ~states:1
           (Quantum.Decompose.expand_all r.physical)
           fixed)

let prop_noise_metric_consistent =
  QCheck.Test.make ~count:30 ~name:"noise routing metrics are metrics"
    (QCheck.make
       QCheck.Gen.(
         device_gen ~min_qubits:3 >>= fun device ->
         int_bound 10_000 >|= fun seed -> (device, seed)))
    (fun (device, seed) ->
      QCheck.assume (Coupling.is_connected_graph device);
      let m = Hardware.Noise.randomized ~seed device in
      let check_matrix d =
        let n = Coupling.n_qubits device in
        let ok = ref true in
        for i = 0 to n - 1 do
          if Float.abs d.(i).(i) > 1e-12 then ok := false;
          for j = 0 to n - 1 do
            if Float.abs (d.(i).(j) -. d.(j).(i)) > 1e-9 then ok := false;
            for k = 0 to n - 1 do
              if d.(i).(j) > d.(i).(k) +. d.(k).(j) +. 1e-9 then ok := false
            done
          done
        done;
        !ok
      in
      check_matrix (Hardware.Noise.swap_reliability_distance m)
      && check_matrix (Hardware.Noise.mixed_routing_distance m))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sabre_output_valid;
      prop_greedy_output_valid;
      prop_bka_output_valid;
      prop_reverse_involutive;
      prop_reverse_is_inverse_unitary;
      prop_qasm_roundtrip;
      prop_depth_bounds;
      prop_distance_matrix_metric;
      prop_mapping_swap_involutive;
      prop_canonical_key_stable_under_dag_relinearisation;
      prop_sabre_no_swaps_on_complete_graph;
      prop_optimizer_preserves_unitary;
      prop_optimizer_idempotent;
      prop_alap_slack_nonnegative;
      prop_directed_fix_sound;
      prop_noise_metric_consistent;
    ]
