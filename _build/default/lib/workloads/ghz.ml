module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let circuit n =
  if n < 1 then invalid_arg "Ghz.circuit: need at least one qubit";
  let chain = List.init (max 0 (n - 1)) (fun i -> Gate.Cnot (i, i + 1)) in
  Circuit.create ~n_qubits:n (Gate.Single (H, 0) :: chain)

let star n =
  if n < 1 then invalid_arg "Ghz.star: need at least one qubit";
  let spokes = List.init (max 0 (n - 1)) (fun i -> Gate.Cnot (0, i + 1)) in
  Circuit.create ~n_qubits:n (Gate.Single (H, 0) :: spokes)
