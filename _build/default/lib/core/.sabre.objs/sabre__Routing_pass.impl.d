lib/core/routing_pass.ml: Array Config Hardware Hashtbl Heuristic List Mapping Quantum Queue
