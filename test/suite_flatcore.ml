(* Flat-core refactor golden suite (PR 3).

   The digests below were produced by the PRE-refactor routing core
   (list front layer, per-decision extended-set rebuild, square distance
   matrix — the code now frozen in [Sabre_core.Routing_pass_ref]) over
   routed QASM + winning-trial initial mapping + final mapping + swap /
   search-step / fallback counters, for each (device, workload, router,
   config) row. The flat-core implementation must reproduce every one
   byte for byte: same SWAPs, same mappings, same emission order. *)

module Circuit = Quantum.Circuit
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Engine = Sabre.Engine

let check = Alcotest.check
let tc = Alcotest.test_case

let () = Check.Differential.ensure_registered ()

let device_of_name = function
  | "tokyo" -> Devices.ibm_q20_tokyo ()
  | "grid3x4" -> Devices.grid ~rows:3 ~cols:4
  | "yorktown" -> Devices.ibm_q5_yorktown ()
  | other -> Alcotest.failf "unknown golden device %s" other

let workload_of_name = function
  | "qft5" -> Workloads.Qft.circuit 5
  | "qft8" -> Workloads.Qft.circuit 8
  | "ising5" -> Workloads.Ising.circuit 5
  | "ising10" -> Workloads.Ising.circuit 10
  | "ghz5" -> Workloads.Ghz.circuit 5
  | "ghz12" -> Workloads.Ghz.circuit 12
  | "bv4" -> Workloads.Bv.circuit ~hidden:0b101 3
  | "random10" ->
    Workloads.Random_reversible.circuit ~seed:42 ~hot_bias:0.0 ~n:10 ~gates:80
      ()
  | other -> Alcotest.failf "unknown golden workload %s" other

let config_of_name = function
  | "default" -> Config.default
  | "basic" -> { Config.default with heuristic = Config.Basic }
  | "lookahead" -> { Config.default with heuristic = Config.Lookahead }
  | "commuting" -> { Config.default with commutation_aware = true }
  | "one-shot" -> { Config.default with trials = 1; traversals = 1 }
  | other -> Alcotest.failf "unknown golden config %s" other

let fingerprint (r : Engine.Context.routed) =
  let mapping m =
    String.concat ","
      (Array.to_list (Array.map string_of_int (Mapping.l2p_array m)))
  in
  let payload =
    String.concat "\n"
      [
        Quantum.Qasm.to_string r.Engine.Context.physical;
        mapping r.Engine.Context.trial_initial;
        mapping r.Engine.Context.final_mapping;
        Printf.sprintf "swaps=%d steps=%d fallback=%d"
          r.Engine.Context.n_swaps r.Engine.Context.search_steps
          r.Engine.Context.fallback_swaps;
      ]
  in
  Digest.to_hex (Digest.string payload)

(* (device, workload, router, config, pre-refactor digest) *)
let goldens =
  [
    ("yorktown", "qft5", "sabre", "default", "4bc269d9f075bd0fb0d118458306e08f");
    ("yorktown", "qft5", "greedy", "default", "e800e41f5fb6ba7dab891aec59da3cbc");
    ("yorktown", "qft5", "bka", "default", "88471370185560f3094bb82dc39ecae0");
    ("yorktown", "ising5", "sabre", "default", "20216969a040ace7ba79804f534ccbe2");
    ("yorktown", "ising5", "greedy", "default", "2308ff713f4e737d5786a125a80a52a3");
    ("yorktown", "ising5", "bka", "default", "756d376c4fd75d1555990fba09178c03");
    ("yorktown", "ghz5", "sabre", "default", "baf9ae2312dd024ea05e8fd81af72df1");
    ("yorktown", "ghz5", "greedy", "default", "b5815081a8b906226c805651367a0e6d");
    ("yorktown", "ghz5", "bka", "default", "4bb5b393f8dafbbedf701774f06421e0");
    ("yorktown", "bv4", "sabre", "default", "863fd81dc7c14a61b0b708ba1607ddbc");
    ("yorktown", "bv4", "greedy", "default", "610f7c2d57089776fad99f38d03bf88a");
    ("yorktown", "bv4", "bka", "default", "5c970e5a24453783f45dc302664f75e0");
    ("tokyo", "qft8", "sabre", "default", "0552d3b5247dedce874813659cdd35ed");
    ("tokyo", "qft8", "greedy", "default", "f6f2a68d4379cd8213ce1aeda59292fc");
    ("tokyo", "ising10", "sabre", "default", "893aa1889546d7c312df7ad70e957862");
    ("tokyo", "ising10", "greedy", "default", "6387de9616fa2a05bac539cd278b0254");
    ("tokyo", "random10", "sabre", "default", "db090e137052de5dba7b27710a22c193");
    ("tokyo", "random10", "greedy", "default", "86207a12a6139a4d0fc0d84bc25bdaeb");
    ("grid3x4", "ghz12", "sabre", "default", "3e1a908720f0efa088197b1df6b47758");
    ("tokyo", "qft8", "sabre", "basic", "6dc4f6012491960731b439ace605566f");
    ("tokyo", "qft8", "sabre", "lookahead", "2386b2eaa4f0401ccc9cfd73315e4785");
    ("tokyo", "qft8", "sabre", "commuting", "6d93ea638a988278382fd8270be55e94");
    ("tokyo", "ising10", "sabre", "one-shot", "ce71ab1a48991dba88be397b46cf5504");
  ]

let route ~router ~config device circuit =
  let r =
    match Engine.Router.find router with
    | Some r -> r
    | None -> Alcotest.failf "router %s not registered" router
  in
  let ctx = Engine.Context.create ~config device circuit in
  let ctx = Engine.Pipeline.run (Engine.Pipeline.default ~router:r ()) ctx in
  Engine.Context.routed_exn ctx

let test_goldens () =
  List.iter
    (fun (dname, wname, router, cname, expected) ->
      let r =
        route ~router ~config:(config_of_name cname) (device_of_name dname)
          (workload_of_name wname)
      in
      check Alcotest.string
        (Printf.sprintf "%s/%s/%s/%s unchanged" dname wname router cname)
        expected (fingerprint r))
    goldens

(* The frozen reference router must agree with the flat-core router on
   every golden row — the same property the fuzzer checks on random
   instances, pinned here on the named workloads. *)
let test_ref_router_agrees () =
  List.iter
    (fun (dname, wname, router, cname, _) ->
      if router = "sabre" then begin
        let config = config_of_name cname in
        let device = device_of_name dname in
        let circuit = workload_of_name wname in
        let flat = route ~router:"sabre" ~config device circuit in
        let old = route ~router:"sabre-ref" ~config device circuit in
        check Alcotest.bool
          (Printf.sprintf "%s/%s/%s sabre-ref identical" dname wname cname)
          true
          (Circuit.equal flat.Engine.Context.physical
             old.Engine.Context.physical
          && Mapping.equal flat.Engine.Context.trial_initial
               old.Engine.Context.trial_initial
          && Mapping.equal flat.Engine.Context.final_mapping
               old.Engine.Context.final_mapping
          && flat.Engine.Context.n_swaps = old.Engine.Context.n_swaps
          && flat.Engine.Context.search_steps
             = old.Engine.Context.search_steps)
      end)
    goldens

let suite =
  [
    tc "golden equivalence: pre-refactor digests, 3 routers" `Quick
      test_goldens;
    tc "sabre-ref reproduces flat-core output on goldens" `Quick
      test_ref_router_agrees;
  ]
