type t = {
  circuit : Circuit.t;
  gates : Gate.t array;  (* cached copy of the circuit's gates *)
  succ : int list array;  (* distinct successors, ascending *)
  pred : int list array;  (* distinct predecessors, ascending *)
  (* CSR (compressed-sparse-row) view of the same adjacency: row [i]
     spans [off.(i) .. off.(i+1) - 1] of [idx], ascending within a row.
     The hot routing loops traverse these instead of the lists. *)
  succ_off : int array;
  succ_idx : int array;
  pred_off : int array;
  pred_idx : int array;
  (* per-node operand table: for a two-qubit gate the logical pair,
     [(-1, -1)] otherwise, so the router never re-matches on Gate.t *)
  pair_q1 : int array;
  pair_q2 : int array;
}

let csr_of_lists n rows =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length rows.(i)
  done;
  let idx = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    List.iteri (fun k j -> idx.(off.(i) + k) <- j) rows.(i)
  done;
  (off, idx)

let finalize circuit gates succ pred =
  let n = Array.length gates in
  let succ_off, succ_idx = csr_of_lists n succ in
  let pred_off, pred_idx = csr_of_lists n pred in
  let pair_q1 = Array.make n (-1) and pair_q2 = Array.make n (-1) in
  for i = 0 to n - 1 do
    match Gate.two_qubit_pair gates.(i) with
    | Some (q1, q2) ->
      pair_q1.(i) <- q1;
      pair_q2.(i) <- q2
    | None -> ()
  done;
  {
    circuit;
    gates;
    succ;
    pred;
    succ_off;
    succ_idx;
    pred_off;
    pred_idx;
    pair_q1;
    pair_q2;
  }

let of_circuit circuit =
  let gates = Circuit.gate_array circuit in
  let n = Array.length gates in
  let succ = Array.make n [] and pred = Array.make n [] in
  (* last.(q) is the most recent node touching qubit q *)
  let last = Array.make (Circuit.n_qubits circuit) (-1) in
  for i = 0 to n - 1 do
    let deps =
      Gate.qubits gates.(i)
      |> List.filter_map (fun q ->
             let p = last.(q) in
             if p >= 0 then Some p else None)
      |> List.sort_uniq Int.compare
    in
    pred.(i) <- deps;
    List.iter (fun p -> succ.(p) <- i :: succ.(p)) deps;
    List.iter (fun q -> last.(q) <- i) (Gate.qubits gates.(i))
  done;
  (* successor lists were built in reverse; deduplicate and sort *)
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq Int.compare l) succ;
  finalize circuit gates succ pred

(* Commutation-aware construction. Per qubit we keep two gate groups:
   [current] — the most recent gates that pairwise commute with each
   other's successors on this qubit — and [previous], the group every
   [current] member depends on. A new gate joins [current] when it
   commutes with all its members; otherwise [current] becomes its
   dependency set and starts over. *)
let of_circuit_commuting circuit =
  let gates = Circuit.gate_array circuit in
  let n = Array.length gates in
  let nq = Circuit.n_qubits circuit in
  let previous = Array.make nq [] and current = Array.make nq [] in
  let pred = Array.make n [] and succ = Array.make n [] in
  for i = 0 to n - 1 do
    let deps = ref [] in
    List.iter
      (fun q ->
        let commutes_with_all =
          List.for_all (fun j -> Commutation.commute gates.(i) gates.(j))
            current.(q)
        in
        if commutes_with_all then begin
          deps := previous.(q) @ !deps;
          current.(q) <- i :: current.(q)
        end
        else begin
          deps := current.(q) @ !deps;
          previous.(q) <- current.(q);
          current.(q) <- [ i ]
        end)
      (Gate.qubits gates.(i));
    let deps = List.sort_uniq Int.compare !deps in
    pred.(i) <- deps;
    List.iter (fun p -> succ.(p) <- i :: succ.(p)) deps
  done;
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq Int.compare l) succ;
  finalize circuit gates succ pred

let matches_linearization d c =
  let n = Array.length d.gates in
  if Circuit.length c <> n then false
  else begin
    let remaining = Array.init n (fun i -> List.length d.pred.(i)) in
    let consumed = Array.make n false in
    (* ready nodes indexed by gate value for O(1)-ish matching *)
    let ready : (Gate.t, int list) Hashtbl.t = Hashtbl.create 64 in
    let add_ready i =
      let g = d.gates.(i) in
      Hashtbl.replace ready g
        (i :: Option.value ~default:[] (Hashtbl.find_opt ready g))
    in
    for i = 0 to n - 1 do
      if remaining.(i) = 0 then add_ready i
    done;
    let ok = ref true in
    List.iter
      (fun g ->
        if !ok then
          match Hashtbl.find_opt ready g with
          | Some (i :: rest) ->
            (if rest = [] then Hashtbl.remove ready g
             else Hashtbl.replace ready g rest);
            consumed.(i) <- true;
            List.iter
              (fun j ->
                remaining.(j) <- remaining.(j) - 1;
                if remaining.(j) = 0 then add_ready j)
              d.succ.(i)
          | Some [] | None -> ok := false)
      (Circuit.gates c);
    !ok && Array.for_all Fun.id consumed
  end

let circuit d = d.circuit
let n_nodes d = Array.length d.succ
let gate d i = d.gates.(i)
let successors d i = d.succ.(i)
let predecessors d i = d.pred.(i)
let in_degree d i = d.pred_off.(i + 1) - d.pred_off.(i)
let out_degree d i = d.succ_off.(i + 1) - d.succ_off.(i)

let succ_iter d i f =
  for k = d.succ_off.(i) to d.succ_off.(i + 1) - 1 do
    f d.succ_idx.(k)
  done

let pred_iter d i f =
  for k = d.pred_off.(i) to d.pred_off.(i + 1) - 1 do
    f d.pred_idx.(k)
  done

let pair_q1 d i = d.pair_q1.(i)
let pair_q2 d i = d.pair_q2.(i)
let is_two_qubit_node d i = d.pair_q1.(i) >= 0

let two_qubit_pair d i =
  if d.pair_q1.(i) >= 0 then Some (d.pair_q1.(i), d.pair_q2.(i)) else None

let initial_front d =
  let acc = ref [] in
  for i = n_nodes d - 1 downto 0 do
    if in_degree d i = 0 then acc := i :: !acc
  done;
  !acc

let topological_order d =
  let n = n_nodes d in
  let indeg = Array.init n (fun i -> in_degree d i) in
  let module Q = Queue in
  let q = Q.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Q.add i q
  done;
  let order = ref [] in
  while not (Q.is_empty q) do
    let i = Q.pop q in
    order := i :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Q.add j q)
      d.succ.(i)
  done;
  let order = List.rev !order in
  assert (List.length order = n);
  order

let two_qubit_nodes d =
  let gates = Circuit.gate_array d.circuit in
  let acc = ref [] in
  for i = Array.length gates - 1 downto 0 do
    if Gate.is_two_qubit gates.(i) then acc := i :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Windowed DAG builder                                                *)
(* ------------------------------------------------------------------ *)

(* A bounded view of the same dependency DAG, built on the fly from a
   gate stream. Only the "active frontier" is materialised: per-qubit
   last-writer tails, per-node in-degree counts, and the pending slots
   between the front layer and the admission point. Slots are recycled
   through a free list as gates execute, so resident size tracks the
   window, not the program length.

   Equivalence with the eager [of_circuit] path is by construction and
   rests on one invariant, *saturation*: after [saturate] (and after
   every [execute], which re-saturates internally), every unadmitted
   gate has at least one unexecuted predecessor among the admitted
   gates. Consequences:

   - a gate becomes in-degree-0 (ready) in the window at exactly the
     moment its last predecessor executes — the same moment the eager
     DAG releases it — so ready-queue push order matches the eager run
     gate for gate (admitted successors always have smaller stream
     position than just-admitted ones, and both sub-batches are pushed
     in ascending position);
   - the front layer seen by a router is always complete.

   Saturation is enforced by admitting, in stream order, until no qubit
   is "hungry". A qubit is hungry when it has no live (admitted,
   unexecuted) tail and the stream can still produce a gate touching it
   — i.e. the admission cursor has not passed the qubit's [retire]
   position (its last use). The optional [retire] schedule is what
   bounds the window: with it, memory is O(max qubit-inactivity span);
   without it (no pre-pass), the window degrades gracefully towards
   full materialisation but the visited order — and hence the routed
   output — is unchanged.

   The extended-set lookahead needs successor edges beyond the front;
   [ensure_successors] admits just enough of the stream to prove a
   node's successor set complete before a BFS expands it. Because
   saturation holds whenever a router runs its lookahead (no execution
   happens mid-BFS), these demand-driven admissions never create ready
   nodes, so they cannot perturb the ready queue. *)
module Window = struct
  type t = {
    n_qubits : int;
    source : unit -> Gate.t option;
    retire : int array;  (* last use per qubit; -1 never used, max_int unknown *)
    (* admission cursor *)
    mutable pos : int;  (* stream position of the next gate to admit *)
    mutable eof : bool;
    (* hungriness accounting *)
    mutable hungry : int;  (* qubits with no live tail and retire >= pos *)
    retired : bool array;  (* pos > retire.(q): q can never be hungry again *)
    by_retire : int array;  (* qubit ids sorted by retire, ascending *)
    mutable retire_cursor : int;
    (* per-qubit tails *)
    tail_slot : int array;
    tail_live : bool array;
    (* slot pool, struct-of-arrays, grown by doubling *)
    mutable cap : int;
    mutable g : Gate.t array;
    mutable seq : int array;        (* stream position of the slot's gate *)
    mutable remaining : int array;  (* unexecuted distinct predecessors *)
    mutable pq1 : int array;        (* two-qubit operands, -1 otherwise *)
    mutable pq2 : int array;
    mutable ops : int array array;  (* operand qubits *)
    mutable nxt : int array array;  (* successor slot per operand, -1 *)
    mutable stamp : int array;      (* visit stamps; cleared on alloc *)
    mutable free : int array;       (* free-list stack *)
    mutable free_len : int;
    mutable next_fresh : int;       (* first never-used slot *)
    (* successor-collection scratch *)
    mutable succs : int array;
    (* counters *)
    mutable live : int;
    mutable peak_live : int;
    mutable admitted : int;
    mutable executed : int;
  }

  let create ?retire ~n_qubits source =
    let retire =
      match retire with
      | Some r ->
        if Array.length r <> n_qubits then
          invalid_arg "Dag.Window.create: retire length <> n_qubits";
        Array.copy r
      | None -> Array.make n_qubits max_int
    in
    let by_retire = Array.init n_qubits Fun.id in
    Array.sort (fun a b -> Int.compare retire.(a) retire.(b)) by_retire;
    let cap = 64 in
    let t =
      {
        n_qubits;
        source;
        retire;
        pos = 0;
        eof = false;
        hungry = n_qubits;
        retired = Array.make n_qubits false;
        by_retire;
        retire_cursor = 0;
        tail_slot = Array.make (max 1 n_qubits) (-1);
        tail_live = Array.make (max 1 n_qubits) false;
        cap;
        g = Array.make cap (Gate.Barrier []);
        seq = Array.make cap 0;
        remaining = Array.make cap 0;
        pq1 = Array.make cap (-1);
        pq2 = Array.make cap (-1);
        ops = Array.make cap [||];
        nxt = Array.make cap [||];
        stamp = Array.make cap 0;
        free = Array.make cap 0;
        free_len = 0;
        next_fresh = 0;
        succs = Array.make 8 0;
        live = 0;
        peak_live = 0;
        admitted = 0;
        executed = 0;
      }
    in
    (* qubits already past their retire position (notably retire = -1,
       declared but never used) start retired, not hungry *)
    while
      t.retire_cursor < n_qubits
      && t.retire.(t.by_retire.(t.retire_cursor)) < 0
    do
      let q = t.by_retire.(t.retire_cursor) in
      t.retired.(q) <- true;
      t.hungry <- t.hungry - 1;
      t.retire_cursor <- t.retire_cursor + 1
    done;
    t

  let grow t =
    let cap' = 2 * t.cap in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 t.cap;
      a'
    in
    t.g <- extend t.g (Gate.Barrier []);
    t.seq <- extend t.seq 0;
    t.remaining <- extend t.remaining 0;
    t.pq1 <- extend t.pq1 (-1);
    t.pq2 <- extend t.pq2 (-1);
    t.ops <- extend t.ops [||];
    t.nxt <- extend t.nxt [||];
    t.stamp <- extend t.stamp 0;
    t.free <- extend t.free 0;
    t.cap <- cap'

  let alloc t =
    let s =
      if t.free_len > 0 then begin
        t.free_len <- t.free_len - 1;
        t.free.(t.free_len)
      end
      else begin
        if t.next_fresh >= t.cap then grow t;
        let s = t.next_fresh in
        t.next_fresh <- t.next_fresh + 1;
        s
      end
    in
    t.stamp.(s) <- 0;
    s

  (* retire qubits whose last use is behind the admission cursor *)
  let advance_retire t =
    while
      t.retire_cursor < t.n_qubits
      && t.retire.(t.by_retire.(t.retire_cursor)) < t.pos
    do
      let q = t.by_retire.(t.retire_cursor) in
      if not t.retired.(q) then begin
        t.retired.(q) <- true;
        if not t.tail_live.(q) then t.hungry <- t.hungry - 1
      end;
      t.retire_cursor <- t.retire_cursor + 1
    done

  (* admit the next stream gate as a window slot; push it on [on_ready]
     if all its predecessors have already executed *)
  let admit_one t on_ready =
    match t.source () with
    | None -> t.eof <- true
    | Some gate ->
      let qubits = Gate.qubits gate in
      (* a zero-operand gate (empty barrier) has no qubit to make
         hungry, so its admission time — and hence its position in the
         routed output — could not match the eager run's *)
      if qubits = [] then
        invalid_arg "Dag.Window: zero-operand gates are not streamable";
      List.iter
        (fun q ->
          if q < 0 || q >= t.n_qubits then
            invalid_arg
              (Printf.sprintf
                 "Dag.Window: gate qubit %d out of range (n_qubits = %d)" q
                 t.n_qubits))
        qubits;
      let s = alloc t in
      let qs = Array.of_list qubits in
      let m = Array.length qs in
      let nx = Array.make m (-1) in
      t.g.(s) <- gate;
      t.seq.(s) <- t.pos;
      t.ops.(s) <- qs;
      t.nxt.(s) <- nx;
      (match Gate.two_qubit_pair gate with
      | Some (q1, q2) ->
        t.pq1.(s) <- q1;
        t.pq2.(s) <- q2
      | None ->
        t.pq1.(s) <- -1;
        t.pq2.(s) <- -1);
      (* distinct live predecessors = in-degree; link their successor
         pointers to this slot *)
      let rem = ref 0 in
      for k = 0 to m - 1 do
        let q = qs.(k) in
        if t.tail_live.(q) then begin
          let p = t.tail_slot.(q) in
          (* point p's edge for qubit q at the new slot *)
          let pops = t.ops.(p) and pnxt = t.nxt.(p) in
          let j = ref 0 in
          while pops.(!j) <> q do
            incr j
          done;
          pnxt.(!j) <- s;
          (* count p once even when it precedes us on several qubits *)
          let dup = ref false in
          for k' = 0 to k - 1 do
            if t.tail_live.(qs.(k')) && t.tail_slot.(qs.(k')) = p then
              dup := true
          done;
          if not !dup then incr rem
        end
      done;
      t.remaining.(s) <- !rem;
      (* the new slot becomes the tail on all its qubits *)
      for k = 0 to m - 1 do
        let q = qs.(k) in
        if (not t.tail_live.(q)) && not t.retired.(q) then
          t.hungry <- t.hungry - 1;
        t.tail_slot.(q) <- s;
        t.tail_live.(q) <- true
      done;
      t.pos <- t.pos + 1;
      t.admitted <- t.admitted + 1;
      t.live <- t.live + 1;
      if t.live > t.peak_live then t.peak_live <- t.live;
      advance_retire t;
      if !rem = 0 then on_ready s

  (* The [live = 0] clause keeps the cursor moving when every admitted
     gate has executed: with a correct retire schedule it only fires to
     discover end-of-stream, and with an over-tight one it still drains
     the stream (exactness is then not guaranteed — garbage in). *)
  let saturate t on_ready =
    while (not t.eof) && (t.hungry > 0 || t.live = 0) do
      admit_one t on_ready
    done

  (* collect the distinct successors of [s] into [t.succs], sorted by
     stream position; returns the count *)
  let collect_succs t s =
    let nx = t.nxt.(s) in
    let m = Array.length nx in
    if m > Array.length t.succs then t.succs <- Array.make m 0;
    let c = ref 0 in
    for k = 0 to m - 1 do
      let u = nx.(k) in
      if u >= 0 then begin
        let dup = ref false in
        for j = 0 to !c - 1 do
          if t.succs.(j) = u then dup := true
        done;
        if not !dup then begin
          (* insertion sort by stream position: operand order is
             arbitrary but release order must match the eager DAG's
             ascending node order *)
          let j = ref !c in
          while !j > 0 && t.seq.(t.succs.(!j - 1)) > t.seq.(u) do
            t.succs.(!j) <- t.succs.(!j - 1);
            decr j
          done;
          t.succs.(!j) <- u;
          incr c
        end
      end
    done;
    !c

  let succ_iter_seq t s f =
    let c = collect_succs t s in
    for j = 0 to c - 1 do
      f t.succs.(j)
    done

  (* mark executed: release successors (ascending stream position, via
     [on_ready] when their in-degree hits zero), free the slot, then
     re-saturate so the invariant holds before the next pop *)
  let execute t s on_ready =
    let c = collect_succs t s in
    let released = Array.sub t.succs 0 c in
    Array.iter
      (fun u ->
        t.remaining.(u) <- t.remaining.(u) - 1;
        if t.remaining.(u) = 0 then on_ready u)
      released;
    Array.iter
      (fun q ->
        if t.tail_slot.(q) = s then begin
          t.tail_slot.(q) <- -1;
          t.tail_live.(q) <- false;
          if not t.retired.(q) then t.hungry <- t.hungry + 1
        end)
      t.ops.(s);
    t.ops.(s) <- [||];
    t.nxt.(s) <- [||];
    if t.free_len >= Array.length t.free then begin
      let f' = Array.make (2 * Array.length t.free) 0 in
      Array.blit t.free 0 f' 0 t.free_len;
      t.free <- f'
    end;
    t.free.(t.free_len) <- s;
    t.free_len <- t.free_len + 1;
    t.live <- t.live - 1;
    t.executed <- t.executed + 1;
    saturate t on_ready

  (* admit until [s]'s successor set is provably complete: an operand
     edge may still be missing only while [s] is the tail on that qubit
     and the stream can still produce a later gate touching it *)
  let ensure_successors t s on_ready =
    let missing () =
      (not t.eof)
      &&
      let qs = t.ops.(s) and nx = t.nxt.(s) in
      let m = Array.length qs in
      let found = ref false in
      let k = ref 0 in
      while (not !found) && !k < m do
        if nx.(!k) < 0 && t.pos <= t.retire.(qs.(!k)) then found := true;
        incr k
      done;
      !found
    in
    while missing () do
      admit_one t on_ready
    done

  let gate t s = t.g.(s)
  let seq t s = t.seq.(s)
  let pair_q1 t s = t.pq1.(s)
  let pair_q2 t s = t.pq2.(s)
  let is_two_qubit_node t s = t.pq1.(s) >= 0

  (* visit stamps for lookahead BFS: slot reuse clears the stamp, and
     router generations only grow, so stale stamps never collide *)
  let mark_visited t s gen =
    if t.stamp.(s) = gen then false
    else begin
      t.stamp.(s) <- gen;
      true
    end

  let exhausted t = t.eof
  let live_count t = t.live
  let peak_live t = t.peak_live
  let admitted t = t.admitted
  let executed t = t.executed
end

(* Explicit worklist: the naive recursion is one frame per DAG node on a
   chain circuit and overflows the stack on long programs. Every node is
   marked before it is pushed, so the stack never holds a node twice and
   an [n]-slot array suffices. *)
let descendant_count d i =
  let n = n_nodes d in
  let seen = Array.make n false in
  let stack = Array.make (max 1 n) 0 in
  let top = ref 0 in
  let count = ref 0 in
  stack.(!top) <- i;
  incr top;
  while !top > 0 do
    decr top;
    let j = stack.(!top) in
    for k = d.succ_off.(j) to d.succ_off.(j + 1) - 1 do
      let s = d.succ_idx.(k) in
      if not seen.(s) then begin
        seen.(s) <- true;
        incr count;
        stack.(!top) <- s;
        incr top
      end
    done
  done;
  !count
