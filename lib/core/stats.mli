module Circuit = Quantum.Circuit

(** Metrics of a routing run, in the units used throughout the paper's
    evaluation: gates are counted after decomposing every SWAP into 3
    CNOTs (so [added_gates = 3 × n_swaps]), and depth charges a SWAP 3
    time steps. *)

type scoring = {
  decisions : int;  (** heuristic SWAP decisions taken (front-blocked steps) *)
  candidates : int;  (** candidate SWAPs scored across all decisions *)
  delta_terms : int;
      (** distance-matrix lookups the scorer actually performed: base-sum
          construction once per decision plus the touched pair terms per
          candidate (delta mode), or the full per-candidate recompute
          (full mode, where [delta_terms = full_terms]) *)
  full_terms : int;
      (** lookups a full per-candidate recompute would perform:
          [candidates × (|F| + |E|)] — the work the delta scorer avoids *)
}
(** Inner-loop scorer accounting, summed over traversals and trials. *)

val scoring_zero : scoring
val scoring_add : scoring -> scoring -> scoring

type t = {
  n_swaps : int;  (** SWAPs inserted in the winning traversal *)
  added_gates : int;  (** g_add = 3 × n_swaps *)
  original_gates : int;  (** g_ori: elementary gates before routing *)
  total_gates : int;  (** g_tot = g_ori + g_add *)
  original_depth : int;  (** depth of the input circuit *)
  routed_depth : int;  (** depth of the output, SWAP = 3 steps *)
  search_steps : int;  (** heuristic SWAP selections, all traversals *)
  fallback_swaps : int;  (** anti-livelock SWAPs (0 in normal runs) *)
  traversals_run : int;  (** routing passes executed over all trials *)
  time_s : float;  (** CPU seconds for the whole compilation *)
  first_traversal_swaps : int;
      (** SWAPs of the best trial's *first* forward traversal — the
          paper's [g_la] column, before reverse-traversal improvement *)
  scoring : scoring;  (** inner-loop scorer accounting, all traversals *)
}

val summary :
  original:Circuit.t ->
  routed:Circuit.t ->
  n_swaps:int ->
  search_steps:int ->
  fallback_swaps:int ->
  traversals_run:int ->
  time_s:float ->
  first_traversal_swaps:int ->
  scoring:scoring ->
  t
(** Compute the derived fields from the two circuits. *)

val pp : Format.formatter -> t -> unit
