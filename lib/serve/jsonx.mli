(** Minimal JSON for the service protocol.

    The serving layer speaks newline-delimited JSON and the container
    ships no JSON library, so this module carries the little that the
    protocol needs: a value type, a strict recursive-descent parser and
    a compact printer. It is deliberately small — no streaming, no
    document order preservation beyond association lists, no
    extensions — but it is a real codec: every value [to_string]
    produces parses back to an equal value ([Float] via ["%.17g"], so
    binary round-trips are exact), and the parser rejects trailing
    garbage, unterminated constructs and over-deep nesting instead of
    guessing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in printing order *)

val max_depth : int
(** Parser nesting bound (64). Deeper input is a parse error, not a
    stack overflow — protocol messages are a few levels deep. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed).
    Errors carry a byte offset. Numbers without [.], [e] or [E] become
    [Int] when they fit, [Float] otherwise; [\uXXXX] escapes (including
    surrogate pairs) decode to UTF-8. *)

val to_string : t -> string
(** Compact printing, fields in list order, no trailing newline.
    Strings escape quotes, backslashes and control bytes; [Float]
    prints with [%.17g] (and a forced [.0] when integral) so [parse]
    returns the
    identical bit pattern. Raises [Invalid_argument] on NaN or
    infinities — JSON has no spelling for them. *)

(** {2 Accessors} — total lookups used by the protocol decoder. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields or non-objects. *)

val to_int : t -> int option
(** [Int n], or a [Float] that is exactly integral. *)

val to_float : t -> float option
(** [Float] or [Int] widened. *)

val to_str : t -> string option
val to_bool : t -> bool option
