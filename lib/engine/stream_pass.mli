module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Routing_pass = Sabre_core.Routing_pass

(** Streaming compilation: QASM file in, routed QASM file out, in
    memory bounded by the circuit's window — never by its length.

    This is the engine entry point over
    {!Sabre_core.Routing_pass.run_streaming}: a single forward routing
    traversal from a fixed initial mapping, fed by the incremental
    {!Quantum.Qasm_stream} frontend, emitting each routed gate to a
    sink the moment it is decided. The emitted gate sequence is
    byte-identical to materialising the circuit and routing it with
    {!Sabre_core.Routing_pass.run_flat} from the same mapping. What
    streaming gives up is the initial-mapping search (trials ×
    bidirectional traversals), which inherently needs the whole
    circuit. *)

type report = {
  result : Routing_pass.stream_result;
  n_qubits : int;  (** logical qubits in the stream *)
  n_clbits : int;  (** classical bits declared by the source file *)
  wall_s : float;
}

val run :
  ?config:Config.t ->
  ?initial:Mapping.t ->
  ?retire:int array ->
  n_qubits:int ->
  sink:(Quantum.Gate.t -> unit) ->
  Coupling.t ->
  (unit -> Quantum.Gate.t option) ->
  report
(** [run ~n_qubits ~sink coupling source] stream-routes the gate
    stream. [initial] defaults to the identity placement; [retire] is
    the per-qubit last-use schedule bounding the window (see
    {!Sabre_core.Routing_pass.run_streaming}); the distance matrices
    come from {!Hardware.Dist_cache}. [n_clbits] in the report is 0
    (a raw gate stream carries no classical-register information).
    Raises [Invalid_argument] if the stream needs more qubits than the
    device has. *)

val route_file :
  ?config:Config.t ->
  Coupling.t ->
  input:string ->
  output:string ->
  (report, string) result
(** [route_file coupling ~input ~output] routes the OpenQASM file
    [input] onto [coupling] and writes the routed circuit to [output]
    (one [qreg q\[device\]] register, gates as routed). Two passes over
    the file, both in bounded memory: a survey pass collecting the
    register shape and the per-qubit retire schedule, then the
    streaming route writing gates as they are decided. Parse errors,
    I/O errors and width mismatches come back as [Error "file:line:col:
    message"]-style strings; the output file is not meaningful after an
    [Error]. [wall_s] covers the routing pass only (not the survey). *)

val route_files :
  ?config:Config.t ->
  ?domains:int ->
  Coupling.t ->
  (string * string) array ->
  (report, string) result array
(** [route_files coupling jobs] runs {!route_file} over
    [(input, output)] pairs on a {!Scheduler} domain pool ([domains]
    defaults to 1). Results are in job order; one failing file never
    affects the others. Memory is bounded by [domains] × the largest
    window, not by any file's length. *)
