module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

type error =
  | Not_on_edge of Gate.t
  | Unmapped_qubit of Gate.t * int
  | Semantics_mismatch
  | Final_mapping_mismatch of int

let pp_error ppf = function
  | Not_on_edge g ->
    Format.fprintf ppf "two-qubit gate off the coupling graph: %a" Gate.pp g
  | Unmapped_qubit (g, q) ->
    Format.fprintf ppf "gate %a touches unmapped physical qubit %d" Gate.pp g q
  | Semantics_mismatch ->
    Format.fprintf ppf "un-routed circuit differs from the original"
  | Final_mapping_mismatch q ->
    Format.fprintf ppf "final mapping disagrees for logical qubit %d" q

let ( let* ) = Result.bind

let unroute ~initial ~n_logical physical =
  let n_physical = Circuit.n_qubits physical in
  let p2l = Array.make n_physical (-1) in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_physical then
        invalid_arg "Tracker.unroute: initial mapping out of range";
      if p2l.(p) >= 0 then invalid_arg "Tracker.unroute: mapping not injective";
      p2l.(p) <- l)
    initial;
  let logical_gates = ref [] in
  let error = ref None in
  let to_logical g q =
    let l = p2l.(q) in
    if l < 0 && !error = None then error := Some (Unmapped_qubit (g, q));
    l
  in
  List.iter
    (fun g ->
      if !error = None then
        match g with
        | Gate.Swap (a, b) ->
          let tmp = p2l.(a) in
          p2l.(a) <- p2l.(b);
          p2l.(b) <- tmp
        | Gate.Barrier _ -> ()
        | _ ->
          let g' = Gate.remap (to_logical g) g in
          if !error = None then logical_gates := g' :: !logical_gates)
    (Circuit.gates physical);
  match !error with
  | Some e -> Error e
  | None ->
    let final = Array.make (Array.length initial) (-1) in
    Array.iteri (fun p l -> if l >= 0 && l < n_logical then final.(l) <- p) p2l;
    let recovered =
      Circuit.create ~n_qubits:n_logical
        ~n_clbits:(Circuit.n_clbits physical)
        (List.rev !logical_gates)
    in
    Ok (recovered, final)

let check_compliance ~coupling physical =
  let bad =
    List.find_opt
      (fun g ->
        match Gate.two_qubit_pair g with
        | Some (a, b) -> not (Coupling.connected coupling a b)
        | None -> false)
      (Circuit.gates physical)
  in
  match bad with Some g -> Error (Not_on_edge g) | None -> Ok ()

let strip_barriers c =
  Circuit.filter (function Gate.Barrier _ -> false | _ -> true) c

let check ~coupling ~initial ?final ~logical ~physical () =
  let* () = check_compliance ~coupling physical in
  let* recovered, tracked_final =
    unroute ~initial ~n_logical:(Circuit.n_qubits logical) physical
  in
  let* () =
    if
      Circuit.equal_up_to_reordering (strip_barriers recovered)
        (strip_barriers logical)
    then Ok ()
    else Error Semantics_mismatch
  in
  match final with
  | None -> Ok ()
  | Some f -> (
    let mismatch = ref None in
    Array.iteri
      (fun l p -> if !mismatch = None && tracked_final.(l) <> p then mismatch := Some l)
      f;
    match !mismatch with
    | Some l -> Error (Final_mapping_mismatch l)
    | None -> Ok ())
