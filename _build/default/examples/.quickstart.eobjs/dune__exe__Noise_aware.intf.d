examples/noise_aware.mli:
