lib/core/heuristic.mli: Config Quantum
