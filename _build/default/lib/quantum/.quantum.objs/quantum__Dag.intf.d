lib/quantum/dag.mli: Circuit Gate
