lib/hardware/noise.mli: Coupling Format Quantum
