module Circuit = Quantum.Circuit

type cls = Small | Sim | Qft | Large

type row = {
  name : string;
  cls : cls;
  n : int;
  paper_g_ori : int;
  paper_bka_g_add : int option;
  paper_bka_time_s : float option;
  paper_g_la : int;
  paper_g_op : int;
  circuit : Circuit.t Lazy.t;
}

let synthetic name n gates =
  lazy (Random_reversible.of_name ~name ~n ~gates)

(* Trotter step count chosen so the structural generator lands close to
   the paper's gate count: gates = n + steps * (4n - 3). *)
let ising_row n paper_g_ori =
  let steps =
    max 1 (int_of_float (Float.round (float_of_int (paper_g_ori - n) /. float_of_int ((4 * n) - 3))))
  in
  lazy (Ising.circuit ~steps n)

let row name cls n paper_g_ori bka bka_t g_la g_op circuit =
  {
    name;
    cls;
    n;
    paper_g_ori;
    paper_bka_g_add = bka;
    paper_bka_time_s = bka_t;
    paper_g_la = g_la;
    paper_g_op = g_op;
    circuit;
  }

let all =
  [
    (* small quantum arithmetic *)
    row "4mod5-v1_22" Small 5 21 (Some 15) (Some 0.) 6 0 (synthetic "4mod5-v1_22" 5 21);
    row "mod5mils_65" Small 5 35 (Some 18) (Some 0.) 12 0 (synthetic "mod5mils_65" 5 35);
    row "alu-v0_27" Small 5 36 (Some 33) (Some 0.) 30 3 (synthetic "alu-v0_27" 5 36);
    row "decod24-v2_43" Small 4 52 (Some 27) (Some 0.) 9 0 (synthetic "decod24-v2_43" 4 52);
    row "4gt13_92" Small 5 66 (Some 42) (Some 0.) 18 0 (synthetic "4gt13_92" 5 66);
    (* quantum simulation *)
    row "ising_model_10" Sim 10 480 (Some 18) (Some 1.37) 39 0 (ising_row 10 480);
    row "ising_model_13" Sim 13 633 (Some 60) (Some 42.46) 66 0 (ising_row 13 633);
    row "ising_model_16" Sim 16 786 None None 84 0 (ising_row 16 786);
    (* quantum fourier transform *)
    row "qft_10" Qft 10 200 (Some 66) (Some 0.22) 93 54 (lazy (Qft.circuit 10));
    row "qft_13" Qft 13 403 (Some 177) (Some 266.27) 204 93 (lazy (Qft.circuit 13));
    row "qft_16" Qft 16 512 (Some 267) (Some 474.81) 276 186 (lazy (Qft.circuit 16));
    row "qft_20" Qft 20 970 None None 429 372 (lazy (Qft.circuit 20));
    (* large quantum arithmetic *)
    row "rd84_142" Large 15 343 (Some 138) (Some 1.97) 243 105 (synthetic "rd84_142" 15 343);
    row "adr4_197" Large 13 3439 (Some 1722) (Some 4.53) 2112 1614 (synthetic "adr4_197" 13 3439);
    row "radd_250" Large 13 3213 (Some 1434) (Some 2.23) 1488 1275 (synthetic "radd_250" 13 3213);
    row "z4_268" Large 11 3073 (Some 1383) (Some 1.15) 1695 1365 (synthetic "z4_268" 11 3073);
    row "sym6_145" Large 14 3888 (Some 1806) (Some 0.56) 1650 1272 (synthetic "sym6_145" 14 3888);
    row "misex1_241" Large 15 4813 (Some 2097) (Some 0.3) 2904 1521 (synthetic "misex1_241" 15 4813);
    row "rd73_252" Large 10 5321 (Some 2160) (Some 1.19) 2391 2133 (synthetic "rd73_252" 10 5321);
    row "cycle10_2_110" Large 12 6050 (Some 2802) (Some 1.31) 2622 2622 (synthetic "cycle10_2_110" 12 6050);
    row "square_root_7" Large 15 7630 (Some 3132) (Some 2.81) 5049 2598 (synthetic "square_root_7" 15 7630);
    row "sqn_258" Large 10 10223 (Some 4737) (Some 16.92) 5934 4344 (synthetic "sqn_258" 10 10223);
    row "rd84_253" Large 12 13658 (Some 6483) (Some 15.25) 7668 6147 (synthetic "rd84_253" 12 13658);
    row "co14_215" Large 15 17936 (Some 9183) (Some 18.37) 10128 8982 (synthetic "co14_215" 15 17936);
    row "sym9_193" Large 10 34881 (Some 17496) (Some 72.61) 26355 16653 (synthetic "sym9_193" 10 34881);
    row "9symml_195" Large 11 34881 (Some 17496) (Some 81.73) 25368 17268 (synthetic "9symml_195" 11 34881);
  ]

let find name = List.find (fun r -> String.equal r.name name) all
let by_class c = List.filter (fun r -> r.cls = c) all

let class_name = function
  | Small -> "small"
  | Sim -> "sim"
  | Qft -> "qft"
  | Large -> "large"

let figure8_names =
  [
    "qft_10"; "qft_13"; "qft_16"; "qft_20"; "rd84_142"; "radd_250";
    "cycle10_2_110"; "co14_215"; "sym9_193";
  ]
