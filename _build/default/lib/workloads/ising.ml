module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let interaction_pairs n = List.init (max 0 (n - 1)) (fun i -> (i, i + 1))

let circuit ?(steps = 13) ?(j = 1.0) ?(h = 0.7) n =
  if n < 2 then invalid_arg "Ising.circuit: need at least two spins";
  if steps < 1 then invalid_arg "Ising.circuit: need at least one step";
  let dt = 0.1 in
  let gates = ref [] in
  let add g = gates := g :: !gates in
  for q = 0 to n - 1 do
    add (Gate.Single (H, q))
  done;
  let zz (a, b) =
    add (Gate.Cnot (a, b));
    add (Gate.Single (Rz (2.0 *. j *. dt), b));
    add (Gate.Cnot (a, b))
  in
  for _ = 1 to steps do
    (* brickwork: even bonds first, then odd bonds — maximally parallel *)
    List.iter
      (fun (a, b) -> if a mod 2 = 0 then zz (a, b))
      (interaction_pairs n);
    List.iter
      (fun (a, b) -> if a mod 2 = 1 then zz (a, b))
      (interaction_pairs n);
    for q = 0 to n - 1 do
      add (Gate.Single (Rx (2.0 *. h *. dt), q))
    done
  done;
  Circuit.create ~n_qubits:n (List.rev !gates)
