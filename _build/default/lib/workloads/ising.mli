module Circuit = Quantum.Circuit

(** Trotterised 1D transverse-field Ising-model simulation (the paper's
    "sim" benchmark family, Section V-A1). The model couples only
    nearest neighbours on a line, so a line-embedding initial mapping
    executes it with zero SWAPs — the paper's "trivial optimum" that
    SABRE finds and BKA misses. *)

val circuit : ?steps:int -> ?j:float -> ?h:float -> int -> Circuit.t
(** [circuit n] builds the simulation of an n-spin chain: an initial
    Hadamard layer, then [steps] (default 13) Trotter steps, each
    applying the ZZ interaction exp(−iJ·Z⊗Z·dt) on every bond (as
    CNOT–Rz–CNOT, brickwork order: even bonds then odd bonds) followed by
    the transverse field as Rx on every spin. Gate count:
    n + steps × (3(n−1) + n). *)

val interaction_pairs : int -> (int * int) list
(** The n−1 nearest-neighbour bonds of the chain. *)
