lib/core/initial_mapping.mli: Hardware Mapping Quantum Random
