test/suite_commutation.ml: Alcotest Hardware Helpers List Printf Quantum Random Sabre Sim Workloads
