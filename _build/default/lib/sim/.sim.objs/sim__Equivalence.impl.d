lib/sim/equivalence.ml: Array Hardware List Quantum Random Statevector
