(** The routing-as-a-service daemon core.

    A server is a transport wrapped around the engine — the compile
    path is exactly {!Engine.Batch}'s per-job pipeline (sequential
    trials, [Verify_pass] on, distance matrix from
    {!Hardware.Dist_cache}), so a response's routed QASM is
    byte-identical to what [sabre_compile] writes for the same
    (circuit, device, config, router). What the server adds is
    lifecycle: persistent workers, admission control, deadlines,
    counters and a graceful drain.

    {b Threading model.} Connection I/O runs on systhreads of the
    calling domain (one acceptor plus one thread per connection), so a
    slow client never blocks routing; compilation runs on a pool of
    [domains] worker {e domains} that pop jobs from a bounded
    {!Rqueue}. Workers are persistent, which is the point: each keeps
    its {!Sabre_core.Routing_pass.Scratch} arena warm in domain-local
    storage across requests, and the device-keyed
    {!Hardware.Dist_cache} stays hot process-wide — after the first
    request against a device, setup cost is a digest lookup.

    {b Admission and deadlines.} A full queue rejects immediately with
    a [queue_full] error (backpressure is a protocol answer, not an
    internal buffer). Each compile request carries an absolute deadline
    from its admission time; it is checked when a worker picks the job
    up (time spent queued counts), {e during} routing, and again when
    routing returns (a late result produces a [timeout] answer and is
    discarded). In-flight interruption is cooperative: the worker hands
    the engine an {!Engine.Race} token whose probe watches the deadline
    clock and the requesting connection (zero-timeout [select] +
    [MSG_PEEK]; EOF means the client hung up and nobody will read the
    answer), and the routing pass aborts at its next progress check via
    {!Sabre_core.Routing_pass.Cancelled}. The abort path unwinds
    through the same scratch-arena write-back as a completed route, so
    the worker stays unpoisoned and its arena reusable. Portfolio
    requests additionally accept a [race] flag that arms
    incumbent-bound pruning across their entries
    ({!Engine.Portfolio.run}'s [~race]); the winner is unchanged,
    losing entries just stop early and are reported [cancelled].

    {b Shutdown.} {!stop} (or SIGTERM/SIGINT once
    {!install_signal_handlers} ran) closes the listener, lets the
    workers drain every admitted job, answers [shutting_down] to
    anything that arrives during the drain, flushes the per-connection
    responses, and only then returns. *)

type t

val start :
  ?domains:int ->
  ?queue_capacity:int ->
  ?cache:bool ->
  ?default_deadline_s:float ->
  ?max_request_bytes:int ->
  ?instrument:Engine.Instrument.t ->
  Protocol.endpoint ->
  t
(** Bind, listen and return once the server accepts connections.
    [domains] (default 1) sizes the worker pool; [queue_capacity]
    (default 64) bounds the admission queue ([0] rejects every compile
    — used by admission tests); [default_deadline_s] applies to
    requests that carry none (default: no deadline);
    [max_request_bytes] (default {!Protocol.default_max_bytes}) bounds
    one request line. [instrument] receives server counter events
    (pass ["serve"]) and every compile's pass events — it must be
    domain-safe ({!Instrument.null}, {!Instrument.stderr_trace} or
    {!Instrument.sync_collector}; a plain collector is not).

    [cache] (default [false]) opts the server into the process-wide
    {!Engine.Compile_cache}: a compile request whose result is already
    memoized is answered {e at admission}, on the connection thread,
    without ever occupying a queue slot or a worker (counted in
    [served] and the per-router bucket, but not in any worker's
    [jobs_run]); misses route normally and insert. A request carrying
    [cache=false] bypasses the cache in both directions, and a request
    whose deadline is already expired is never answered from the cache
    — it times out exactly as without caching. The [sabre_serve]
    binary enables this by default ([--no-cache] turns it off).

    Registers the baseline routers and ignores [SIGPIPE]. Raises
    [Unix.Unix_error] when binding fails (path in use, privileged
    port, ...). A Unix-domain socket path is unlinked first if it is a
    stale socket, and unlinked again on {!stop}. *)

val endpoint : t -> Protocol.endpoint
(** The actual endpoint — for [Tcp] with port 0, the bound port. *)

val stats : t -> Protocol.server_stats
(** Snapshot of the counters the [stats] request returns. *)

val request_stop : t -> unit
(** Flag the server to stop and wake the acceptor. Async-signal-safe
    (an atomic store plus a self-pipe write); does not block. The
    actual drain happens in {!stop}/{!wait}. *)

val stop : t -> unit
(** Graceful drain: stop accepting, refuse new work, finish every
    admitted job, deliver and flush all responses, join every worker
    domain and connection thread, close the listener. Idempotent and
    safe to call from several threads — late callers block until the
    drain completes. *)

val wait : t -> unit
(** Block until a stop has been requested (by {!request_stop}, a
    handled signal, or a concurrent {!stop}), then run {!stop} to
    completion. The daemon binary's main thread lives here. *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!request_stop} — together with
    {!wait} this gives the drain-then-exit-0 behaviour the CI smoke
    test exercises. *)
