type schedule = { levels : int array; depth : int }

let default_weight = function Gate.Barrier _ -> 0 | _ -> 1

let asap ?(weight = default_weight) c =
  let gates = Circuit.gate_array c in
  let n = Array.length gates in
  let ready = Array.make (Circuit.n_qubits c) 0 in
  let levels = Array.make n 0 in
  let depth = ref 0 in
  for i = 0 to n - 1 do
    let qs = Gate.qubits gates.(i) in
    let start = List.fold_left (fun acc q -> max acc ready.(q)) 0 qs in
    let finish = start + weight gates.(i) in
    levels.(i) <- start;
    List.iter (fun q -> ready.(q) <- finish) qs;
    if finish > !depth then depth := finish
  done;
  { levels; depth = !depth }

let alap ?(weight = default_weight) c =
  let { depth; _ } = asap ~weight c in
  let gates = Circuit.gate_array c in
  let n = Array.length gates in
  (* deadline.(q): latest finish allowed for the next-earlier gate on q *)
  let deadline = Array.make (Circuit.n_qubits c) depth in
  let levels = Array.make n 0 in
  for i = n - 1 downto 0 do
    let qs = Gate.qubits gates.(i) in
    let finish = List.fold_left (fun acc q -> min acc deadline.(q)) depth qs in
    let start = finish - weight gates.(i) in
    levels.(i) <- start;
    List.iter (fun q -> deadline.(q) <- start) qs
  done;
  { levels; depth }

let slack ?(weight = default_weight) c =
  let early = (asap ~weight c).levels in
  let late = (alap ~weight c).levels in
  Array.init (Array.length early) (fun i -> late.(i) - early.(i))

let depth c = (asap c).depth

let depth_swap3 c =
  let weight = function
    | Gate.Swap _ -> 3
    | Gate.Barrier _ -> 0
    | _ -> 1
  in
  (asap ~weight c).depth

let two_qubit_depth c =
  let weight g = if Gate.is_two_qubit g then 1 else 0 in
  (asap ~weight c).depth

let parallelism c =
  let d = depth c in
  if d = 0 then 0.0 else float_of_int (Circuit.gate_count c) /. float_of_int d

let layers c =
  let { levels; depth } = asap c in
  let buckets = Array.make (max depth 1) [] in
  let gates = Circuit.gate_array c in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.Barrier _ -> ()
      | _ -> buckets.(levels.(i)) <- g :: buckets.(levels.(i)))
    gates;
  Array.to_list buckets |> List.map List.rev
  |> List.filter (fun l -> l <> [])
