module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

(** The shared compilation context threaded through every pass.

    A context is created once per compilation from the inputs (circuit,
    coupling graph, config) and flows through the pipeline; each pass
    reads the fields it needs and returns an updated copy. Expensive
    derived data — notably the all-pairs distance matrix — is computed
    {e once} here and reused by every traversal of every trial instead
    of being rebuilt per routing pass. *)

type routed = Compile_cache.routed = {
  physical : Circuit.t;  (** hardware-compliant output circuit *)
  trial_initial : Mapping.t;
      (** mapping that seeded the winning trial's last forward pass
          (the reverse-traversal-optimised initial mapping) *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  n_swaps : int;  (** SWAPs of the winning trial *)
  first_swaps : int;  (** SWAPs of the winning trial's first traversal *)
  search_steps : int;  (** heuristic steps summed over all trials *)
  fallback_swaps : int;  (** anti-livelock SWAPs summed over all trials *)
  traversals_run : int;  (** traversals executed across all trials *)
  scoring : Stats.scoring;
      (** inner-loop scorer accounting summed over all trials *)
}

(** Compile-cache participation, decided once at {!create}. *)
type cache_status =
  | Cache_off
      (** no [cache_spec] was supplied, the cache is disabled, or the
          compilation is not fully keyed (noise model, custom metric,
          or fixed initial mapping) — the pipeline behaves exactly as
          it did before the cache existed *)
  | Cache_hit
      (** the probe at {!create} found a verified result: [routed] and
          [verified] are already filled, and the DAG / initial-mapping /
          routing / verify passes all reduce to counter emission *)
  | Cache_probe of string
      (** the probe missed; the payload is the composite cache key that
          {!Routing_pass} will acquire (single-flight) and fill *)

type t = {
  config : Config.t;
  coupling : Coupling.t;
  circuit : Circuit.t;
      (** current logical circuit; {!Decompose_pass} may rewrite it *)
  noise : Noise.t option;
      (** when present, trial ranking prefers estimated success
          probability (Section VI variability-aware mapping) *)
  dist : float array;
      (** routing metric, row-major flattened with stride
          [Coupling.n_qubits coupling]; all-pairs hop distances unless
          the caller substituted a custom matrix — computed once per
          compilation and shared by every trial and traversal *)
  dist_int : int array option;
      (** integer view of [dist] for the router's exact delta scorer;
          [None] when the metric is not integer-valued (e.g.
          noise-weighted), which forces full recompute scoring *)
  scoring_mode : Sabre_core.Routing_pass.scoring_mode;
      (** candidate-scoring strategy handed to the router (default
          [Delta]; output is bit-identical either way) *)
  trial_mode : Trial_runner.mode;
  race : Race.t option;
      (** cooperative cancel/prune token; routers that support it
          install {!Race.hook} into their decision loops *)
  fixed_initial : Mapping.t option;
      (** caller-supplied initial mapping; suppresses random trials *)
  dag_forward : Dag.t option;  (** set by {!Dag_pass} *)
  dag_backward : Dag.t option;
      (** set by {!Dag_pass} when the config runs reverse traversals *)
  trial_mappings : Mapping.t array option;
      (** set by {!Initial_mapping_pass}: one seed mapping per trial *)
  routed : routed option;  (** set by {!Routing_pass} (or a cache hit) *)
  verified : bool option;
      (** set by {!Verify_pass}, or [Some true] when the result came
          from (or was verified into) the compile cache *)
  cache_status : cache_status;
  metrics : (string * float) list;
      (** per-pass wall seconds, newest first (see {!metrics}) *)
  counters : (string * int) list;  (** per-pass counters, newest first *)
}

val create :
  ?config:Config.t ->
  ?dist:float array array ->
  ?noise:Noise.t ->
  ?trial_mode:Trial_runner.mode ->
  ?race:Race.t ->
  ?initial:Mapping.t ->
  ?instrument:Instrument.t ->
  ?scoring:Sabre_core.Routing_pass.scoring_mode ->
  ?cache_spec:string ->
  Coupling.t ->
  Circuit.t ->
  t
(** Validate the inputs and build a fresh context. [dist] overrides the
    hop-count metric (e.g. {!Hardware.Noise.swap_reliability_distance})
    and is flattened row-major here, once; when absent the flat
    hop-distance matrix comes from the device-keyed
    {!Hardware.Dist_cache} — a cache hit skips the all-pairs BFS
    entirely, and the hit/miss outcome is emitted on [instrument]
    (counters [context.dist_cache_hit] / [context.dist_cache_miss],
    also visible in {!counters}). The integer hop matrix rides along as
    [dist_int] (shared from the same cache entry, or derived from a
    custom [dist] when it happens to be integer-valued) so the router
    can score candidates incrementally. [scoring] selects the router's
    candidate-scoring strategy — [Delta] (default) and [Full] produce
    bit-identical output; [Full] exists as the equivalence baseline.
    [initial] is copied. Raises [Invalid_argument] on an invalid config,
    a circuit wider than the device, or a disconnected coupling
    graph.

    [cache_spec] opts this compilation into the content-addressed
    {!Compile_cache}: it names the route recipe (router name or
    portfolio entry name) and completes the composite key alongside the
    circuit, coupling, config and scoring-mode digests. When supplied
    (and the cache is enabled, and the compilation is fully keyed — no
    noise model, custom metric or fixed initial mapping), [create]
    performs a read-only probe: a hit pre-fills [routed] and [verified]
    so downstream passes skip, a miss records the key in
    [cache_status] for {!Routing_pass} to fill after routing. The
    outcome is emitted as [context.compile_cache_hit] /
    [context.compile_cache_miss]. Omitting [cache_spec] (the default
    everywhere except the CLI / batch / portfolio / serve entry points)
    keeps the pipeline byte-for-byte on its pre-cache behaviour. *)

val add_metric : t -> string -> float -> t
val add_counter : t -> pass:string -> string -> int -> t

val metrics : t -> (string * float) list
(** Per-pass wall seconds in pipeline order. *)

val counters : t -> (string * int) list
(** Counters in emission order, keys ["pass.counter"]. *)

val routed_exn : t -> routed
(** The routing result; raises [Invalid_argument] if no routing pass has
    run. *)

val stats : t -> time_s:float -> Stats.t
(** Assemble the classic {!Sabre_core.Stats.t} summary from the routed
    result. *)
