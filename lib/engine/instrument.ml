type event =
  | Pass_start of { pass : string }
  | Pass_end of { pass : string; wall_s : float }
  | Counter of { pass : string; name : string; value : int }

type t = { emit : event -> unit }

let null = { emit = ignore }

let pp_event ppf = function
  | Pass_start { pass } -> Format.fprintf ppf "pass %s: start" pass
  | Pass_end { pass; wall_s } ->
    Format.fprintf ppf "pass %s: done in %.3f ms" pass (1000.0 *. wall_s)
  | Counter { pass; name; value } ->
    Format.fprintf ppf "pass %s: %s = %d" pass name value

let stderr_trace =
  { emit = (fun e -> Format.eprintf "[engine] %a@." pp_event e) }

let collector () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events) },
    fun () -> List.rev !events )

let sync_collector () =
  let m = Mutex.create () in
  let events = ref [] in
  let with_lock f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  ( { emit = (fun e -> with_lock (fun () -> events := e :: !events)) },
    fun () -> with_lock (fun () -> List.rev !events) )

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
  }
