module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  states_expanded : int;
}

type failure = Too_large of string | Budget_exhausted of int

(* A state is (k, l2p): the first k two-qubit gates are satisfied under
   some swap history ending in mapping l2p. All transitions (one SWAP)
   cost 1, so plain BFS finds the minimum-swap solution. *)

let key k l2p =
  let n = Array.length l2p in
  let b = Bytes.create (n + 2) in
  Bytes.set b 0 (Char.chr (k land 0xff));
  Bytes.set b 1 (Char.chr ((k lsr 8) land 0xff));
  Array.iteri (fun i p -> Bytes.set b (i + 2) (Char.chr p)) l2p;
  Bytes.to_string b

(* advance k past every already-executable pair *)
let rec closure pairs coupling l2p k =
  if k >= Array.length pairs then k
  else begin
    let q1, q2 = pairs.(k) in
    if Coupling.connected coupling l2p.(q1) l2p.(q2) then
      closure pairs coupling l2p (k + 1)
    else k
  end

(* enumerate all injective placements of n logical onto N physical *)
let iter_placements ~n_logical ~n_physical yield =
  let l2p = Array.make n_logical (-1) in
  let used = Array.make n_physical false in
  let rec go q =
    if q = n_logical then yield (Array.copy l2p)
    else
      for p = 0 to n_physical - 1 do
        if not used.(p) then begin
          used.(p) <- true;
          l2p.(q) <- p;
          go (q + 1);
          used.(p) <- false
        end
      done
  in
  go 0

let count_placements ~n_logical ~n_physical =
  let rec go i acc = if i = n_logical then acc else go (i + 1) (acc * (n_physical - i)) in
  go 0 1

type node = { l2p : int array; k : int }

let run ?initial ?(max_states = 2_000_000) coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical > n_physical then
    invalid_arg "Optimal.run: circuit wider than device";
  if n_physical > 12 then
    Error (Too_large (Printf.sprintf "%d physical qubits > 12" n_physical))
  else if
    initial = None
    && count_placements ~n_logical ~n_physical > max_states
  then Error (Too_large "too many initial placements")
  else begin
    let pairs = Array.of_list (Circuit.two_qubit_interactions circuit) in
    let total = Array.length pairs in
    let edges = Coupling.edges coupling in
    (* parents: state key -> (parent key option, swap option) *)
    let parents : (string, string option * (int * int) option) Hashtbl.t =
      Hashtbl.create 4096
    in
    let queue = Queue.create () in
    let expanded = ref 0 in
    let goal = ref None in
    let enqueue_start l2p =
      let k = closure pairs coupling l2p 0 in
      let s = key k l2p in
      if not (Hashtbl.mem parents s) then begin
        Hashtbl.add parents s (None, None);
        if k = total && !goal = None then goal := Some { l2p; k }
        else Queue.add { l2p; k } queue
      end
    in
    (match initial with
    | Some m ->
      if Mapping.n_logical m <> n_logical || Mapping.n_physical m <> n_physical
      then invalid_arg "Optimal.run: mapping arity mismatch";
      enqueue_start (Mapping.l2p_array m)
    | None -> iter_placements ~n_logical ~n_physical enqueue_start);
    let budget_hit = ref false in
    while !goal = None && (not !budget_hit) && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr expanded;
      if !expanded > max_states then budget_hit := true
      else begin
        let node_key = key node.k node.l2p in
        List.iter
          (fun (a, b) ->
            if !goal = None then begin
              let l2p' = Array.copy node.l2p in
              Array.iteri
                (fun q p ->
                  if p = a then l2p'.(q) <- b else if p = b then l2p'.(q) <- a)
                node.l2p;
              let k' = closure pairs coupling l2p' node.k in
              let s' = key k' l2p' in
              if not (Hashtbl.mem parents s') then begin
                Hashtbl.add parents s' (Some node_key, Some (a, b));
                let child = { l2p = l2p'; k = k' } in
                if k' = total then goal := Some child
                else Queue.add child queue
              end
            end)
          edges
      end
    done;
    match !goal with
    | None -> Error (Budget_exhausted !expanded)
    | Some g ->
      (* walk parents back to the start state, collecting swaps and the
         initial placement *)
      let rec backtrack s swaps =
        match Hashtbl.find parents s with
        | None, None -> (s, swaps)
        | Some parent, Some swap -> backtrack parent (swap :: swaps)
        | _ -> assert false
      in
      let start_key, swaps = backtrack (key g.k g.l2p) [] in
      let initial_l2p =
        Array.init n_logical (fun q -> Char.code start_key.[q + 2])
      in
      let initial_mapping = Mapping.of_array ~n_physical initial_l2p in
      (* rebuild the physical circuit: walk the program; before each
         blocked two-qubit gate, apply scheduled swaps until it becomes
         executable *)
      let mapping = Mapping.copy initial_mapping in
      let remaining = ref swaps in
      let out = ref [] in
      let emit gate = out := gate :: !out in
      List.iter
        (fun gate ->
          (match Gate.two_qubit_pair gate with
          | Some (q1, q2) ->
            let executable () =
              Coupling.connected coupling
                (Mapping.to_physical mapping q1)
                (Mapping.to_physical mapping q2)
            in
            while not (executable ()) do
              match !remaining with
              | [] ->
                (* the swap plan always suffices: it reached k = total *)
                assert false
              | (a, b) :: rest ->
                remaining := rest;
                emit (Gate.Swap (a, b));
                Mapping.swap_physical_inplace mapping a b
            done
          | None -> ());
          emit (Gate.remap (Mapping.to_physical mapping) gate))
        (Circuit.gates circuit);
      (* trailing swaps (possible when later starts satisfied everything
         earlier) are unnecessary by minimality; assert none remain *)
      assert (!remaining = []);
      Ok
        {
          physical =
            Circuit.create ~n_qubits:n_physical
              ~n_clbits:(Circuit.n_clbits circuit)
              (List.rev !out);
          initial_mapping;
          final_mapping = mapping;
          n_swaps = List.length swaps;
          states_expanded = !expanded;
        }
  end

let min_swaps ?initial coupling circuit =
  match run ?initial coupling circuit with
  | Ok r -> Some r.n_swaps
  | Error _ -> None
