module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Router = Engine.Router

let ensure_registered () =
  Router.register Engine.Sabre_router.router;
  (* pre-flat-core reference implementation, cross-checked against the
     flat-core [sabre] router for one release cycle *)
  Router.register Engine.Sabre_ref_router.router;
  Baseline.Routers.register ()

type routed = {
  physical : Circuit.t;
  initial : int array;
  final : int array;
  n_swaps : int;
}

let route ?initial ?scoring ?cache_spec ~config coupling circuit router =
  let ctx =
    Engine.Context.create ~config ?initial ?scoring ?cache_spec coupling
      circuit
  in
  let ctx = Engine.Pipeline.run (Engine.Pipeline.default ~router ()) ctx in
  let r = Engine.Context.routed_exn ctx in
  {
    physical = r.Engine.Context.physical;
    initial = Mapping.l2p_array r.Engine.Context.trial_initial;
    final = Mapping.l2p_array r.Engine.Context.final_mapping;
    n_swaps = r.Engine.Context.n_swaps;
  }

type verdict = Pass | Fail of Oracle.failure | Skip of string

let pp_verdict ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Fail f -> Format.fprintf ppf "FAIL: %a" Oracle.pp_failure f
  | Skip msg -> Format.fprintf ppf "skip (%s)" msg

type report = { router : string; n_swaps : int option; verdict : verdict }

let check_router_full ?dense_max_qubits ?states ~config coupling circuit
    router =
  match route ~config coupling circuit router with
  | r -> (
    ( Some r.n_swaps,
      match
        Oracle.check ?dense_max_qubits ?states
          ~commuting:config.Config.commutation_aware ~coupling
          ~logical:circuit ~initial:r.initial ~final:r.final
          ~physical:r.physical ()
      with
      | Ok () -> Pass
      | Error f -> Fail f ))
  | exception Router.Route_failed msg -> (None, Skip msg)
  | exception e -> (None, Fail (Oracle.Crash (Printexc.to_string e)))

let check_router ?dense_max_qubits ?states ~config coupling circuit router =
  snd (check_router_full ?dense_max_qubits ?states ~config coupling circuit router)

let check_all ?routers ?dense_max_qubits ?states ~config coupling circuit () =
  ensure_registered ();
  let names = match routers with Some ns -> ns | None -> Router.names () in
  List.map
    (fun name ->
      match Router.find name with
      | None -> { router = name; n_swaps = None; verdict = Skip "unregistered" }
      | Some router ->
        let n_swaps, verdict =
          check_router_full ?dense_max_qubits ?states ~config coupling circuit
            router
        in
        { router = name; n_swaps; verdict })
    (List.sort compare names)

let determinism ~config coupling circuit router =
  match
    ( route ~config coupling circuit router,
      route ~config coupling circuit router )
  with
  | a, b ->
    if Circuit.equal a.physical b.physical then Ok ()
    else
      Error
        (Printf.sprintf
           "two runs at seed %d disagree: %d vs %d swaps (circuits differ)"
           config.Config.seed a.n_swaps b.n_swaps)
  | exception Router.Route_failed _ -> Ok ()

let relabel_invariance ~config ~perm coupling circuit router =
  let n = Circuit.n_qubits circuit in
  let np = Coupling.n_qubits coupling in
  if Array.length perm <> n then invalid_arg "relabel_invariance: bad perm";
  let base = Mapping.identity ~n_logical:n ~n_physical:np in
  let relabelled = Circuit.map_qubits (fun q -> perm.(q)) circuit in
  (* the permuted mapping sends relabelled qubit perm.(q) to the same
     physical home base gives q, so both runs start from the identical
     physical placement *)
  let l2p = Mapping.l2p_array base in
  let l2p' = Array.make n (-1) in
  Array.iteri (fun q p -> l2p'.(perm.(q)) <- p) l2p;
  let permuted = Mapping.of_array ~n_physical:np l2p' in
  match
    ( route ~initial:base ~config coupling circuit router,
      route ~initial:permuted ~config coupling relabelled router )
  with
  | a, b ->
    if a.n_swaps = b.n_swaps then Ok ()
    else
      Error
        (Printf.sprintf "SWAP count not relabelling-invariant: %d vs %d"
           a.n_swaps b.n_swaps)
  | exception Router.Route_failed _ -> Ok ()

let commuting_conformance ~config coupling circuit router =
  let config = { config with Config.commutation_aware = true } in
  match check_router ~config coupling circuit router with
  | Pass | Skip _ -> Ok ()
  | Fail f -> Error (Oracle.failure_to_string f)

let flatcore_equivalence ~config coupling circuit =
  ensure_registered ();
  let find n =
    match Router.find n with
    | Some r -> r
    | None -> invalid_arg ("flatcore_equivalence: router " ^ n ^ " missing")
  in
  match
    ( route ~config coupling circuit (find Engine.Sabre_router.name),
      route ~config coupling circuit (find Engine.Sabre_ref_router.name) )
  with
  | a, b ->
    if not (Circuit.equal a.physical b.physical) then
      Error
        (Printf.sprintf
           "flat-core and reference SABRE routed different circuits at seed \
            %d (%d vs %d swaps)"
           config.Config.seed a.n_swaps b.n_swaps)
    else if a.initial <> b.initial || a.final <> b.final then
      Error "flat-core and reference SABRE disagree on mappings"
    else Ok ()
  | exception Router.Route_failed _ -> Ok ()

let stream_equivalence ~config coupling circuit =
  let module Routing_pass = Sabre_core.Routing_pass in
  let module Dag = Quantum.Dag in
  let module Gate = Quantum.Gate in
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical = 0 || n_logical > n_physical then Ok ()
  else begin
    (* a fixed (seeded) placement: streaming is a single forward
       traversal, so both sides must start from the same π *)
    let initial =
      Mapping.random
        ~state:(Random.State.make [| 0x51e4; config.Config.seed |])
        ~n_logical ~n_physical
    in
    let gates = Circuit.gates circuit in
    let source () =
      let r = ref gates in
      fun () ->
        match !r with
        | [] -> None
        | g :: tl ->
          r := tl;
          Some g
    in
    let retire = Array.make n_logical (-1) in
    List.iteri
      (fun i g -> List.iter (fun q -> retire.(q) <- i) (Gate.qubits g))
      gates;
    match
      Routing_pass.run_flat config coupling (Dag.of_circuit circuit) initial
    with
    | exception Invalid_argument _ -> Ok ()
    | m ->
      let expected = Circuit.gates m.Routing_pass.physical in
      let check label retire_opt =
        let out = ref [] in
        match
          Routing_pass.run_streaming ?retire:retire_opt
            ~sink:(fun g -> out := g :: !out)
            config coupling (source ()) initial
        with
        | exception e ->
          Error
            (Printf.sprintf
               "streaming (%s) raised %s where materialised routing succeeded"
               label (Printexc.to_string e))
        | s ->
          let streamed = List.rev !out in
          if streamed <> expected then
            Error
              (Printf.sprintf
                 "streaming (%s) and materialised routing emitted different \
                  gate sequences at seed %d (%d vs %d gates, %d vs %d swaps)"
                 label config.Config.seed (List.length streamed)
                 (List.length expected) s.Routing_pass.s_n_swaps
                 m.Routing_pass.n_swaps)
          else if
            not
              (Mapping.equal s.Routing_pass.s_final_mapping
                 m.Routing_pass.final_mapping)
          then
            Error
              (Printf.sprintf
                 "streaming (%s) and materialised routing disagree on the \
                  final mapping at seed %d"
                 label config.Config.seed)
          else if s.Routing_pass.s_n_swaps <> m.Routing_pass.n_swaps then
            Error
              (Printf.sprintf
                 "streaming (%s) swap count %d <> materialised %d at seed %d"
                 label s.Routing_pass.s_n_swaps m.Routing_pass.n_swaps
                 config.Config.seed)
          else Ok ()
      in
      (match check "retire-bounded" (Some retire) with
      | Error _ as e -> e
      | Ok () -> check "unbounded" None)
  end

let iso_seed_conformance ~config coupling circuit =
  ensure_registered ();
  let module Seeder = Sabre_core.Initial_mapping.Seeder in
  let sabre =
    match Router.find Engine.Sabre_router.name with
    | Some r -> r
    | None -> invalid_arg "iso_seed_conformance: router sabre missing"
  in
  match
    Seeder.iso.Seeder.derive ~seed:config.Config.seed coupling circuit
  with
  | None -> Ok ()
  | exception Invalid_argument _ -> Ok ()
  | Some initial -> (
    match route ~initial ~config coupling circuit sabre with
    | r -> (
      match
        Oracle.check ~states:1 ~commuting:config.Config.commutation_aware
          ~coupling ~logical:circuit ~initial:r.initial ~final:r.final
          ~physical:r.physical ()
      with
      | Ok () -> Ok ()
      | Error f ->
        Error
          (Printf.sprintf "iso-seeded sabre violates the oracle: %s"
             (Oracle.failure_to_string f)))
    | exception Router.Route_failed _ -> Ok ())

let portfolio_entries =
  [
    { Engine.Portfolio.router = "sabre"; seeder = "reverse-traversal"; overrides = [] };
    { Engine.Portfolio.router = "hail"; seeder = "iso"; overrides = [] };
    { Engine.Portfolio.router = "greedy"; seeder = "reverse-traversal"; overrides = [] };
  ]

let portfolio_dominance ~config coupling circuit =
  ensure_registered ();
  let module Portfolio = Engine.Portfolio in
  match
    Portfolio.run ~objective:Portfolio.Swaps ~config coupling circuit
      portfolio_entries
  with
  | exception Router.Route_failed _ -> Ok ()
  | exception Invalid_argument _ -> Ok ()
  | report -> (
    let w = Portfolio.winner_member report in
    let losing =
      Array.exists
        (function
          | Ok (m : Portfolio.member) -> m.n_swaps < w.Portfolio.n_swaps
          | Error _ -> false)
        report.Portfolio.outcomes
    in
    if losing then
      Error
        (Printf.sprintf
           "portfolio winner (%d swaps) beaten by one of its own members at \
            seed %d"
           w.Portfolio.n_swaps config.Config.seed)
    else
      (* sabre is an entry, so the winner can never lose to a plain
         sabre run at the same config — this also cross-checks the
         portfolio's seeded pipeline against the direct one *)
      let sabre =
        match Router.find Engine.Sabre_router.name with
        | Some r -> r
        | None -> invalid_arg "portfolio_dominance: router sabre missing"
      in
      match route ~config coupling circuit sabre with
      | plain ->
        if w.Portfolio.n_swaps > plain.n_swaps then
          Error
            (Printf.sprintf
               "portfolio winner inserted %d swaps but plain sabre needs only \
                %d at seed %d"
               w.Portfolio.n_swaps plain.n_swaps config.Config.seed)
        else (
          (* fanning the entries across domains must not change anything *)
          match
            Portfolio.run ~domains:2 ~objective:Portfolio.Swaps ~config
              coupling circuit portfolio_entries
          with
          | report2 ->
            let w2 = Portfolio.winner_member report2 in
            if
              report2.Portfolio.winner <> report.Portfolio.winner
              || not (Circuit.equal w2.Portfolio.physical w.Portfolio.physical)
            then
              Error
                (Printf.sprintf
                   "portfolio winner differs between 1 and 2 domains at seed \
                    %d"
                   config.Config.seed)
            else Ok ()
          | exception Router.Route_failed _ ->
            Error "portfolio failed at 2 domains after succeeding at 1")
      | exception Router.Route_failed _ -> Ok ())

let racing_equivalence ~config coupling circuit =
  ensure_registered ();
  let module Portfolio = Engine.Portfolio in
  let run ~race ~domains =
    Portfolio.run ~domains ~race ~objective:Portfolio.Swaps ~config coupling
      circuit portfolio_entries
  in
  match run ~race:false ~domains:1 with
  | exception Router.Route_failed _ -> Ok ()
  | exception Invalid_argument _ -> Ok ()
  | base ->
    let bw = Portfolio.winner_member base in
    let check domains =
      match run ~race:true ~domains with
      | exception Router.Route_failed _ ->
        Error
          (Printf.sprintf
             "racing portfolio failed (%d domains) where the plain run \
              succeeded at seed %d"
             domains config.Config.seed)
      | raced ->
        if raced.Portfolio.winner <> base.Portfolio.winner then
          Error
            (Printf.sprintf
               "racing changed the winner at seed %d (%d domains): entry %d \
                vs %d"
               config.Config.seed domains raced.Portfolio.winner
               base.Portfolio.winner)
        else begin
          let rw = Portfolio.winner_member raced in
          if not (Circuit.equal rw.Portfolio.physical bw.Portfolio.physical)
          then
            Error
              (Printf.sprintf
                 "racing changed the winner's routed circuit at seed %d (%d \
                  domains)"
                 config.Config.seed domains)
          else begin
            (* every entry that still completed under racing must carry
               the identical result; losers may only disappear by being
               pruned, never by failing differently *)
            let n = Array.length base.Portfolio.outcomes in
            let rec scan i =
              if i >= n then Ok ()
              else
                match
                  (base.Portfolio.outcomes.(i), raced.Portfolio.outcomes.(i))
                with
                | Ok bm, Ok rm ->
                  if
                    rm.Portfolio.n_swaps <> bm.Portfolio.n_swaps
                    || not
                         (Circuit.equal rm.Portfolio.physical
                            bm.Portfolio.physical)
                  then
                    Error
                      (Printf.sprintf
                         "racing changed completing entry %d's result at seed \
                          %d (%d domains): %d vs %d swaps"
                         i config.Config.seed domains rm.Portfolio.n_swaps
                         bm.Portfolio.n_swaps)
                  else scan (i + 1)
                | Ok _, Error msg when msg = Portfolio.cancelled_msg ->
                  scan (i + 1)
                | Error _, Error _ -> scan (i + 1)
                | Ok _, Error msg ->
                  Error
                    (Printf.sprintf
                       "entry %d completed plainly but failed under racing at \
                        seed %d (%d domains): %s"
                       i config.Config.seed domains msg)
                | Error msg, Ok _ ->
                  Error
                    (Printf.sprintf
                       "entry %d failed plainly (%s) but completed under \
                        racing at seed %d (%d domains)"
                       i msg config.Config.seed domains)
            in
            scan 0
          end
        end
    in
    (match check 1 with Error _ as e -> e | Ok () -> check 2)

let cache_equivalence ~config coupling circuit =
  ensure_registered ();
  let ( let* ) = Result.bind in
  let module Cache = Engine.Compile_cache in
  let sabre =
    match Router.find Engine.Sabre_router.name with
    | Some r -> r
    | None -> invalid_arg "cache_equivalence: router sabre missing"
  in
  match route ~config coupling circuit sabre with
  | exception Router.Route_failed _ -> Ok ()
  | plain ->
    (* run the memoized path against a private budget, restoring the
       process-wide capacity whatever happens *)
    let saved = Cache.capacity_bytes () in
    Fun.protect
      ~finally:(fun () -> Cache.set_capacity_bytes saved)
      (fun () ->
        Cache.set_capacity_bytes (64 * 1024 * 1024);
        Cache.clear ();
        let cached () =
          route ~cache_spec:Engine.Sabre_router.name ~config coupling circuit
            sabre
        in
        match (cached (), cached ()) with
        | exception Router.Route_failed msg ->
          Error
            (Printf.sprintf
               "cached route failed (%s) where the uncached route succeeded \
                at seed %d"
               msg config.Config.seed)
        | cold, warm ->
          let stats = Cache.stats () in
          let same label b =
            if not (Circuit.equal plain.physical b.physical) then
              Error
                (Printf.sprintf
                   "%s cached route emitted a different circuit at seed %d \
                    (%d vs %d swaps)"
                   label config.Config.seed b.n_swaps plain.n_swaps)
            else if plain.initial <> b.initial || plain.final <> b.final then
              Error
                (Printf.sprintf
                   "%s cached route disagrees on mappings at seed %d" label
                   config.Config.seed)
            else Ok ()
          in
          let* () = same "cold (insert)" cold in
          let* () = same "warm (hit)" warm in
          if stats.Cache.insertions < 1 then
            Error
              (Printf.sprintf
                 "cold route did not insert into the cache at seed %d"
                 config.Config.seed)
          else if stats.Cache.hits < 1 then
            Error
              (Printf.sprintf
                 "warm route missed the cache at seed %d (hits=%d misses=%d)"
                 config.Config.seed stats.Cache.hits stats.Cache.misses)
          else Ok ())

let delta_equivalence ~config coupling circuit =
  ensure_registered ();
  let sabre =
    match Router.find Engine.Sabre_router.name with
    | Some r -> r
    | None -> invalid_arg "delta_equivalence: router sabre missing"
  in
  match
    ( route ~scoring:Sabre_core.Routing_pass.Delta ~config coupling circuit
        sabre,
      route ~scoring:Sabre_core.Routing_pass.Full ~config coupling circuit
        sabre )
  with
  | a, b ->
    if not (Circuit.equal a.physical b.physical) then
      Error
        (Printf.sprintf
           "delta and full-recompute scoring routed different circuits at \
            seed %d (%d vs %d swaps)"
           config.Config.seed a.n_swaps b.n_swaps)
    else if a.initial <> b.initial || a.final <> b.final then
      Error "delta and full-recompute scoring disagree on mappings"
    else Ok ()
  | exception Router.Route_failed _ -> Ok ()
