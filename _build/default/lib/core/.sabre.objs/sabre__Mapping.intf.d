lib/core/mapping.mli: Format Random
