lib/quantum/dag.ml: Array Circuit Commutation Fun Gate Hashtbl Int List Option Queue
