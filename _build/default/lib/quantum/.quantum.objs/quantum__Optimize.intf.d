lib/quantum/optimize.mli: Circuit
