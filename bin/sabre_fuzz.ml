(* sabre_fuzz: differential fuzzing and conformance campaign driver.

   Generates random (circuit, device, config) instances, routes each with
   every selected router through the engine pipeline, and checks the
   conformance oracle plus seed determinism. Failures are shrunk to
   minimal counterexamples and written as replayable repro files. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let counterexample_json (cx : Check.Fuzz.counterexample) =
  let r = cx.repro in
  Printf.sprintf
    "    {\"router\": \"%s\", \"property\": \"%s\", \"seed\": %d, \
     \"original_gates\": %d, \"shrunk_gates\": %d, \"shrink_steps\": %d, \
     \"file\": %s, \"failure\": \"%s\"}"
    (json_escape r.Check.Corpus.router)
    (json_escape r.Check.Corpus.property)
    r.Check.Corpus.seed cx.original_gates cx.shrunk_gates cx.shrink_steps
    (match cx.path with
    | Some p -> Printf.sprintf "\"%s\"" (json_escape p)
    | None -> "null")
    (json_escape r.Check.Corpus.failure)

let report_json (c : Check.Fuzz.campaign) =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"trials\": %d,\n" c.trials_run);
  Buffer.add_string b (Printf.sprintf "  \"elapsed_s\": %.3f,\n" c.elapsed_s);
  Buffer.add_string b
    (Printf.sprintf "  \"routers\": [%s],\n"
       (String.concat ", "
          (List.map (fun r -> Printf.sprintf "\"%s\"" (json_escape r)) c.routers)));
  Buffer.add_string b
    (Printf.sprintf "  \"counterexamples\": %d,\n" (List.length c.failures));
  Buffer.add_string b "  \"failures\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map counterexample_json c.failures));
  Buffer.add_string b "\n  ]\n}";
  print_endline (Buffer.contents b)

let report_human (c : Check.Fuzz.campaign) =
  Format.printf "campaign : %d trials in %.1fs over [%s]@." c.trials_run
    c.elapsed_s
    (String.concat ", " c.routers);
  match c.failures with
  | [] -> Format.printf "result   : clean — no counterexamples@."
  | fs ->
    Format.printf "result   : %d counterexample(s)@." (List.length fs);
    List.iter
      (fun (cx : Check.Fuzz.counterexample) ->
        let r = cx.repro in
        Format.printf
          "  - %s/%s seed=%d: %s@.    shrunk %d -> %d gates (%d steps)%s@."
          r.Check.Corpus.router r.Check.Corpus.property r.Check.Corpus.seed
          r.Check.Corpus.failure cx.original_gates cx.shrunk_gates
          cx.shrink_steps
          (match cx.path with
          | Some p -> Printf.sprintf "; repro: %s" p
          | None -> ""))
      fs

let run_replay path json =
  match Check.Corpus.load path with
  | Error msg ->
    Format.eprintf "sabre_fuzz: cannot load %s: %s@." path msg;
    2
  | Ok repro -> (
    match Check.Fuzz.replay repro with
    | `Reproduced msg ->
      if json then
        Printf.printf
          "{\"replay\": \"%s\", \"reproduced\": true, \"failure\": \"%s\"}\n"
          (json_escape path) (json_escape msg)
      else
        Format.printf "replay %s: REPRODUCED@.  %s@." path msg;
      1
    | `Passes ->
      if json then
        Printf.printf "{\"replay\": \"%s\", \"reproduced\": false}\n"
          (json_escape path)
      else Format.printf "replay %s: passes (defect no longer manifests)@." path;
      0
    | `Error msg ->
      Format.eprintf "sabre_fuzz: replay: %s@." msg;
      2)

let run_campaign budget_s trials seed routers json corpus_dir max_qubits
    max_gates inject_broken quiet =
  Check.Differential.ensure_registered ();
  if inject_broken then Engine.Router.register Check.Fuzz.broken_router;
  let known = Engine.Router.names () in
  let routers =
    match routers with
    | Some names -> names
    | None -> List.filter (fun n -> n <> "broken" || inject_broken) known
  in
  let unknown =
    List.filter (fun r -> not (List.mem r known) && r <> "broken") routers
  in
  match unknown with
  | _ :: _ ->
    Format.eprintf "sabre_fuzz: unknown router(s): %s (available: %s)@."
      (String.concat ", " unknown)
      (String.concat ", " known);
    2
  | [] ->
    let on_event =
      if json || quiet then fun _ -> ()
      else function
        | Check.Fuzz.Trial_done n ->
          if n mod 50 = 0 then Format.eprintf "... %d trials@." n
        | Check.Fuzz.Counterexample cx ->
          Format.eprintf "! %s/%s failed (seed %d), shrinking...@."
            cx.repro.Check.Corpus.router cx.repro.Check.Corpus.property
            cx.repro.Check.Corpus.seed
    in
    let campaign =
      Check.Fuzz.run ?budget_s ?max_trials:trials ~corpus_dir ~max_qubits
        ~max_gates ~on_event ~seed ~routers ()
    in
    if json then report_json campaign else report_human campaign;
    if campaign.failures = [] then 0 else 1

let run_list_routers () =
  Check.Differential.ensure_registered ();
  List.iter
    (fun name ->
      match Engine.Router.find name with
      | Some r ->
        Printf.printf "%-10s %s%s\n" name
          (if Engine.Router.deterministic r then "deterministic"
           else "randomized")
          (if Engine.Router.derives_seed r then ", derives own seed" else "")
      | None -> ())
    (Engine.Router.names ());
  0

let run_list_seeders () =
  List.iter
    (fun name ->
      match Sabre_core.Initial_mapping.Seeder.find name with
      | Some s ->
        Printf.printf "%-18s %s\n" name
          s.Sabre_core.Initial_mapping.Seeder.description
      | None -> ())
    (Sabre_core.Initial_mapping.Seeder.names ());
  0

let main replay_file list_routers list_seeders budget_s trials seed routers
    json corpus_dir max_qubits max_gates inject_broken quiet =
  if list_routers then run_list_routers ()
  else if list_seeders then run_list_seeders ()
  else
    match replay_file with
    | Some path -> run_replay path json
    | None ->
      run_campaign budget_s trials seed routers json corpus_dir max_qubits
        max_gates inject_broken quiet

open Cmdliner

let replay_file =
  Arg.(value & opt (some file) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a repro file instead of fuzzing: exit 1 when the \
                 stored failure reproduces, 0 when it passes.")

let list_routers =
  Arg.(value & flag
       & info [ "list-routers" ]
           ~doc:"List the registered routers (with their determinism and \
                 seeding behaviour), then exit.")

let list_seeders =
  Arg.(value & flag
       & info [ "list-seeders" ]
           ~doc:"List the registered initial-mapping seeders (used by the \
                 racing-equivalence property's portfolio entries), then \
                 exit.")

let budget_s =
  Arg.(value & opt (some float) None
       & info [ "budget-s" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the campaign.")

let trials =
  Arg.(value & opt (some int) None
       & info [ "trials" ] ~docv:"N"
           ~doc:"Trial budget (default 200 when no --budget-s is given; \
                 with both, whichever is hit first stops the campaign).")

let seed =
  Arg.(value & opt int 2019 & info [ "seed" ] ~doc:"Campaign base seed.")

let routers =
  Arg.(value & opt (some (list string)) None
       & info [ "routers" ] ~docv:"R1,R2"
           ~doc:"Comma-separated router names (default: all registered).")

let json =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let corpus_dir =
  Arg.(value & opt string "fuzz/corpus"
       & info [ "corpus-dir" ] ~docv:"DIR"
           ~doc:"Directory for repro files (created if missing).")

let max_qubits =
  Arg.(value & opt int 6
       & info [ "max-qubits" ] ~doc:"Largest generated circuit width.")

let max_gates =
  Arg.(value & opt int 40
       & info [ "max-gates" ] ~doc:"Largest generated circuit length.")

let inject_broken =
  Arg.(value & flag
       & info [ "inject-broken" ]
           ~doc:"Register the deliberately faulty \"broken\" router (a \
                 SABRE wrapper that drops its last SWAP) and include it \
                 in the campaign, so the harness can demonstrate \
                 counterexample discovery end to end.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let cmd =
  let doc = "differential fuzzing of the qubit routers" in
  let man =
    [
      `S Manpage.s_description;
      `P "Generates random SWAP-free circuits, connected coupling graphs \
          and seeded configurations; routes every instance with each \
          selected router through the engine pipeline; and checks the \
          conformance contract (hardware compliance, semantic \
          equivalence, gate accounting, depth bounds) plus seed \
          determinism. Failures are shrunk to minimal counterexamples \
          and saved as replayable repro files.";
      `S Manpage.s_examples;
      `P "A 60-second campaign over all routers, JSON report:";
      `Pre "  sabre_fuzz --budget-s 60 --json";
      `P "Demonstrate the harness catching a real bug:";
      `Pre "  sabre_fuzz --inject-broken --trials 50";
      `P "Replay a saved counterexample:";
      `Pre "  sabre_fuzz --replay fuzz/corpus/repro-broken-conformance-123.txt";
    ]
  in
  Cmd.v
    (Cmd.info "sabre_fuzz" ~version:"1.0.0" ~doc ~man)
    Term.(
      const main $ replay_file $ list_routers $ list_seeders $ budget_s
      $ trials $ seed $ routers $ json $ corpus_dir $ max_qubits $ max_gates
      $ inject_broken $ quiet)

let () = exit (Cmd.eval' cmd)
