lib/workloads/bv.mli: Quantum
