(* Engine.Batch: many circuits, one device, a Scheduler domain pool.

   Byte-identical parallel-vs-sequential equality is property-tested in
   [Suite_properties]; here we pin the service-shaped contract — job
   ordering, per-job failure isolation, verification, clamping. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Engine = Sabre.Engine
module Batch = Engine.Batch

let check = Alcotest.check
let tc = Alcotest.test_case
let device = Devices.ibm_q20_tokyo ()

let jobs_of circuits =
  Array.of_list
    (List.mapi
       (fun i c -> { Batch.name = Printf.sprintf "job%d" i; circuit = c })
       circuits)

let test_routes_and_verifies () =
  let jobs =
    jobs_of
      (List.init 6 (fun i -> Helpers.random_circuit ~seed:(70 + i) ~n:8 ~gates:40))
  in
  let report = Batch.compile_many ~domains:2 ~verify:true device jobs in
  check Alcotest.int "one outcome per job" (Array.length jobs)
    (Array.length report.outcomes);
  check Alcotest.int "clamped domain count reported" 2 report.domains;
  check Alcotest.bool "wall time recorded" true (report.wall_s >= 0.0);
  check Alcotest.int "jobs_run sums to batch size" (Array.length jobs)
    (Array.fold_left
       (fun acc s -> acc + s.Engine.Scheduler.jobs_run)
       0 report.domain_stats);
  Array.iteri
    (fun i -> function
      | Error (e : Batch.error) -> Alcotest.failf "%s: %s" e.name e.message
      | Ok (s : Batch.success) ->
        check Alcotest.string "outcomes in job order" jobs.(i).Batch.name
          s.name;
        check Alcotest.bool "per-job wall time recorded" true
          (s.stats.time_s >= 0.0);
        Helpers.assert_routed ~coupling:device
          ~initial:(Mapping.l2p_array s.initial)
          ~final:(Mapping.l2p_array s.final)
          ~logical:jobs.(i).Batch.circuit ~physical:s.physical s.name)
    report.outcomes

let test_poisoned_job_is_isolated () =
  let too_wide = Circuit.create ~n_qubits:30 [ Quantum.Gate.Cnot (0, 29) ] in
  let jobs =
    jobs_of
      [
        Helpers.random_circuit ~seed:1 ~n:6 ~gates:20;
        too_wide;
        Helpers.random_circuit ~seed:2 ~n:6 ~gates:20;
      ]
  in
  let report = Batch.compile_many ~domains:2 device jobs in
  (match report.outcomes.(1) with
  | Error (e : Batch.error) ->
    check Alcotest.string "failed job keeps its name" "job1" e.name;
    check Alcotest.bool "failure message is descriptive" true
      (String.length e.message > 0)
  | Ok _ -> Alcotest.fail "30-qubit circuit routed on a 20-qubit device");
  List.iter
    (fun i ->
      match report.outcomes.(i) with
      | Ok _ -> ()
      | Error (e : Batch.error) ->
        Alcotest.failf "neighbour %s poisoned: %s" e.name e.message)
    [ 0; 2 ]

let test_domains_clamped_to_jobs () =
  let jobs =
    jobs_of [ Helpers.random_circuit ~seed:3 ~n:5 ~gates:10 ]
  in
  let report = Batch.compile_many ~domains:64 device jobs in
  check Alcotest.int "one job never spawns a pool" 1 report.domains

let test_invalid_config_rejected () =
  let jobs = jobs_of [ Helpers.random_circuit ~seed:4 ~n:4 ~gates:5 ] in
  check Alcotest.bool "trials=0 rejected up front" true
    (match
       Batch.compile_many
         ~config:{ Sabre.Config.default with trials = 0 }
         device jobs
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_empty_batch () =
  let report = Batch.compile_many ~domains:4 device [||] in
  check Alcotest.int "empty batch, empty outcomes" 0
    (Array.length report.outcomes)

let test_dedup_respects_param_precision () =
  (* manifest dedup must fold byte-identical rows only: rotation angles
     that agree to %g's 6 significant digits but differ in lower bits
     are distinct circuits and must each keep their own parameters *)
  let circ theta =
    Circuit.create ~n_qubits:2
      [
        Quantum.Gate.Single (Quantum.Gate.Rz theta, 0);
        Quantum.Gate.Cnot (0, 1);
      ]
  in
  let a = circ 0.1234567890123 and b = circ 0.1234567890124 in
  let report = Batch.compile_many device (jobs_of [ a; b; a ]) in
  let physical i =
    match report.outcomes.(i) with
    | Ok (s : Batch.success) -> s.physical
    | Error (e : Batch.error) -> Alcotest.failf "%s: %s" e.name e.message
  in
  check Alcotest.bool "identical rows fold to one result" true
    (Circuit.equal (physical 0) (physical 2));
  check Alcotest.bool "near-identical params stay distinct" false
    (Circuit.equal (physical 0) (physical 1));
  let rz_params c =
    List.concat_map
      (function
        | Quantum.Gate.Single (Quantum.Gate.Rz t, _) -> [ t ]
        | _ -> [])
      (Circuit.gates c)
  in
  check (Alcotest.list (Alcotest.float 0.0)) "row 1 keeps its own angle"
    (rz_params b) (rz_params (physical 1))

let suite =
  [
    tc "routes and verifies a batch" `Quick test_routes_and_verifies;
    tc "poisoned job is isolated" `Quick test_poisoned_job_is_isolated;
    tc "domains clamped to job count" `Quick test_domains_clamped_to_jobs;
    tc "invalid config rejected" `Quick test_invalid_config_rejected;
    tc "empty batch" `Quick test_empty_batch;
    tc "dedup respects float param precision" `Quick
      test_dedup_respects_param_precision;
  ]
