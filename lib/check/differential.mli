module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Router = Engine.Router

(** Cross-router differential testing.

    Every registered router (SABRE, greedy, BKA, plus any future one)
    must satisfy the same conformance contract ({!Oracle}) on the same
    (circuit, device, config, seed); this module runs each router through
    the engine pass pipeline and asserts its output independently,
    plus the metamorphic properties: seed determinism, qubit-relabelling
    invariance of SWAP counts, and commutation-aware routing remaining
    equivalent. *)

val ensure_registered : unit -> unit
(** Register the built-in routers (SABRE and the baselines) in the
    {!Engine.Router} registry. Idempotent. *)

type routed = {
  physical : Circuit.t;
  initial : int array;
  final : int array;
  n_swaps : int;
}

val route :
  ?initial:Sabre_core.Mapping.t ->
  ?scoring:Sabre_core.Routing_pass.scoring_mode ->
  ?cache_spec:string ->
  config:Config.t ->
  Coupling.t ->
  Circuit.t ->
  Router.t ->
  routed
(** Run one router through the engine pipeline (decompose → DAG → initial
    mapping → routing). [scoring] selects the SABRE candidate-scoring
    strategy (delta vs full recompute; ignored by other routers).
    [cache_spec] opts the run into the process-wide
    {!Engine.Compile_cache} under that route-recipe name. Raises
    whatever the pipeline raises ([Router.Route_failed],
    [Invalid_argument]). *)

type verdict =
  | Pass
  | Fail of Oracle.failure
  | Skip of string
      (** the router declined the instance ([Route_failed], e.g. BKA's
          node-budget abort) — not a conformance failure *)

val pp_verdict : Format.formatter -> verdict -> unit

type report = { router : string; n_swaps : int option; verdict : verdict }

val check_router :
  ?dense_max_qubits:int ->
  ?states:int ->
  config:Config.t ->
  Coupling.t ->
  Circuit.t ->
  Router.t ->
  verdict
(** Route and apply the conformance oracle; exceptions are folded into
    the verdict ([Skip] for [Route_failed], [Fail Crash] otherwise). *)

val check_all :
  ?routers:string list ->
  ?dense_max_qubits:int ->
  ?states:int ->
  config:Config.t ->
  Coupling.t ->
  Circuit.t ->
  unit ->
  report list
(** {!check_router} for every named router (default: all registered),
    in sorted name order. *)

val determinism :
  config:Config.t -> Coupling.t -> Circuit.t -> Router.t ->
  (unit, string) result
(** Route twice at the same seed: the physical circuits must be
    structurally identical. [Ok ()] also when the router skips. *)

val relabel_invariance :
  config:Config.t -> perm:int array -> Coupling.t -> Circuit.t -> Router.t ->
  (unit, string) result
(** Route the circuit, then route its image under the logical-qubit
    permutation [perm] with the correspondingly permuted fixed initial
    mapping: SWAP counts must agree. Only meaningful for routers that
    honour a fixed initial mapping (SABRE, greedy). *)

val commuting_conformance :
  config:Config.t -> Coupling.t -> Circuit.t -> Router.t ->
  (unit, string) result
(** Route with [commutation_aware = true] and check the commuting-mode
    oracle: the output must still be compliant and a linearisation of the
    commuting DAG, and unitarily equivalent on small devices. *)

val flatcore_equivalence :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Route with both the flat-core [sabre] router and the frozen
    pre-refactor [sabre-ref] reference at the same seed: physical
    circuits and both mappings must be byte-identical. Transitional
    check for the flat-core refactor; delete with {!Engine.Sabre_ref_router}. *)

val stream_equivalence :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Route the circuit's gate stream with
    {!Sabre_core.Routing_pass.run_streaming} — once retire-bounded (the
    per-qubit last-use schedule that keeps the window small) and once
    unbounded — and route the materialised circuit with
    {!Sabre_core.Routing_pass.run_flat} from the same seeded fixed
    initial mapping: the emitted gate sequences, final mappings and SWAP
    counts must be byte-identical. [Ok ()] when the instance is wider
    than the device or the materialised route itself rejects it. *)

val iso_seed_conformance :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Derive the greedy subgraph-isomorphism-anchored initial mapping
    ({!Sabre_core.Initial_mapping.Seeder.iso}) for the instance and
    route SABRE from it as a pinned placement: the result must pass the
    conformance oracle. [Ok ()] when the seeder declines the instance
    or the route is skipped. *)

val portfolio_entries : Engine.Portfolio.entry list
(** The canonical fuzzing portfolio:
    [sabre, hail/iso, greedy] — one native-seeded stochastic router,
    one seeder-pinned router, one deterministic baseline. *)

val portfolio_dominance :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Run {!Engine.Portfolio.run} over {!portfolio_entries} on the SWAP
    objective and assert the selection contract: the winner's SWAP
    count is no worse than any member's, no worse than an independent
    plain-sabre route at the same config (sabre being a member), and
    identical — same winner index, byte-identical circuit — when the
    entries are fanned across 2 domains. *)

val racing_equivalence :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Run {!Engine.Portfolio.run} over {!portfolio_entries} twice — with
    incumbent-bound pruning off and on (at 1 and 2 domains) — and
    assert racing is observationally pure on the result: same winner
    index, byte-identical winning circuit, and every entry that still
    completes under racing carries the identical outcome. Losing
    entries may only differ by being reported
    {!Engine.Portfolio.cancelled_msg}. *)

val cache_equivalence :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Route with the [sabre] router three times at the same seed — once
    uncached, then twice through a cleared {!Engine.Compile_cache}
    (first populating the cache, then hitting it): all three results
    must be byte-identical (circuit and both mappings), the cold route
    must insert and the warm route must hit. The process-wide cache
    capacity is saved and restored around the check. *)

val delta_equivalence :
  config:Config.t -> Coupling.t -> Circuit.t -> (unit, string) result
(** Route with the [sabre] router twice at the same seed — once with
    incremental delta scoring, once with the full per-candidate
    recompute: physical circuits and both mappings must be
    byte-identical (the delta scorer's integer-exactness guarantee made
    observable end to end). *)
