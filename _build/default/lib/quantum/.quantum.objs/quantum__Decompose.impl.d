lib/quantum/decompose.ml: Circuit Gate List
