module Circuit = Quantum.Circuit

(** Grover search — the database-search application cited in the paper's
    first paragraph. Multi-controlled phase oracles are compiled to the
    elementary gate set with a clean-ancilla Toffoli cascade, so the
    circuit mixes a wide data register with an ancilla chain: a routing
    pattern unlike QFT's all-to-all or Ising's line. *)

val circuit : ?iterations:int -> marked:int -> int -> Circuit.t
(** [circuit ~marked n] searches an n-qubit space for the basis state
    [marked]: data qubits 0..n−1, ancillas n..2n−3 (for n ≥ 3). The
    iteration count defaults to floor(π/4·√2ⁿ). Measurements of the data
    qubits close the circuit. Requires [1 <= n <= 12] and [marked] in
    range. *)

val n_qubits_for : int -> int
(** Total width (data + ancillas) used by [circuit] for an n-qubit
    search space: [2n − 2] for n ≥ 3, [n] otherwise. *)

val success_probability : marked:int -> int -> float
(** Simulated probability of measuring [marked] after {!circuit} (small
    n only; exercises the oracle+diffusion construction end to end). *)
