lib/workloads/qft.ml: Float List Quantum
