lib/core/heuristic.ml: Array Config Float List Quantum
