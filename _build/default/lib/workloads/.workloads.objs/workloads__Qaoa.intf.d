lib/workloads/qaoa.mli: Quantum
