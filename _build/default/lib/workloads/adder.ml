module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Decompose = Quantum.Decompose

let n_qubits_for bits = (2 * bits) + 2

(* Qubit roles: 0 = carry-in c0; a_i = 1 + 2i; b_i = 2 + 2i;
   carry-out z = 2*bits + 1. MAJ/UMA blocks follow Cuccaro et al. 2004. *)
let circuit bits =
  if bits < 1 then invalid_arg "Adder.circuit: need at least one bit";
  let a i = 1 + (2 * i) and b i = 2 + (2 * i) in
  let z = (2 * bits) + 1 in
  let gates = ref [] in
  let add g = gates := g :: !gates in
  let maj c y x =
    add (Gate.Cnot (x, y));
    add (Gate.Cnot (x, c));
    List.iter add (Decompose.toffoli c y x)
  in
  let uma c y x =
    List.iter add (Decompose.toffoli c y x);
    add (Gate.Cnot (x, c));
    add (Gate.Cnot (c, y))
  in
  maj 0 (b 0) (a 0);
  for i = 1 to bits - 1 do
    maj (a (i - 1)) (b i) (a i)
  done;
  add (Gate.Cnot (a (bits - 1), z));
  for i = bits - 1 downto 1 do
    uma (a (i - 1)) (b i) (a i)
  done;
  uma 0 (b 0) (a 0);
  Circuit.create ~n_qubits:(n_qubits_for bits) (List.rev !gates)
