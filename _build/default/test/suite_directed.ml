module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Directed = Hardware.Directed

let check = Alcotest.check
let tc = Alcotest.test_case

let test_create_and_queries () =
  let d = Directed.create ~n_qubits:3 [ (0, 1); (2, 1) ] in
  check Alcotest.int "qubits" 3 (Directed.n_qubits d);
  check Alcotest.bool "0->1" true (Directed.allows d ~control:0 ~target:1);
  check Alcotest.bool "1->0 blocked" false
    (Directed.allows d ~control:1 ~target:0);
  check Alcotest.bool "2->1" true (Directed.allows d ~control:2 ~target:1);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "arrows" [ (0, 1); (2, 1) ] (Directed.arrows d)

let test_create_rejects () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "self loop" true
    (raises (fun () -> Directed.create ~n_qubits:2 [ (1, 1) ]));
  check Alcotest.bool "duplicate" true
    (raises (fun () -> Directed.create ~n_qubits:2 [ (0, 1); (0, 1) ]));
  check Alcotest.bool "out of range" true
    (raises (fun () -> Directed.create ~n_qubits:2 [ (0, 5) ]))

let test_underlying_collapse () =
  (* both directions of a pair collapse to one undirected edge *)
  let d = Directed.create ~n_qubits:3 [ (0, 1); (1, 0); (1, 2) ] in
  let u = Directed.underlying d in
  check Alcotest.int "two edges" 2 (Coupling.n_edges u);
  check Alcotest.bool "0-1" true (Coupling.connected u 0 1);
  check Alcotest.bool "1-2" true (Coupling.connected u 1 2)

let test_qx_models () =
  let qx2 = Directed.ibm_qx2 () in
  check Alcotest.int "qx2 arrows" 6 (List.length (Directed.arrows qx2));
  check Alcotest.bool "qx2 connected" true
    (Coupling.is_connected_graph (Directed.underlying qx2));
  let qx4 = Directed.ibm_qx4 () in
  check Alcotest.int "qx4 arrows" 6 (List.length (Directed.arrows qx4));
  check Alcotest.bool "qx4 connected" true
    (Coupling.is_connected_graph (Directed.underlying qx4))

let test_fix_allowed_passthrough () =
  let d = Directed.create ~n_qubits:2 [ (0, 1) ] in
  let c = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  let fixed = Directed.fix_directions d c in
  check Alcotest.bool "unchanged" true (Circuit.equal c fixed);
  check Alcotest.int "no overhead" 0 (Directed.overhead d c)

let test_fix_reversed_cnot () =
  let d = Directed.create ~n_qubits:2 [ (0, 1) ] in
  let c = Circuit.create ~n_qubits:2 [ Gate.Cnot (1, 0) ] in
  let fixed = Directed.fix_directions d c in
  check Alcotest.int "4 extra gates" 5 (Circuit.length fixed);
  check Alcotest.int "overhead" 4 (Directed.overhead d c);
  (* semantics preserved *)
  check Alcotest.bool "unitary" true (Sim.Equivalence.circuits_equivalent c fixed);
  (* directions now legal *)
  check Alcotest.bool "legal" true
    (match Directed.check_directions d fixed with Ok () -> true | Error _ -> false)

let test_fix_swap_and_cz () =
  let d = Directed.create ~n_qubits:2 [ (0, 1) ] in
  let c = Circuit.create ~n_qubits:2 [ Gate.Swap (0, 1); Gate.Cz (1, 0) ] in
  let fixed = Directed.fix_directions d c in
  check Alcotest.bool "unitary" true (Sim.Equivalence.circuits_equivalent c fixed);
  check Alcotest.bool "legal" true
    (match Directed.check_directions d fixed with Ok () -> true | Error _ -> false)

let test_fix_uncoupled_raises () =
  let d = Directed.create ~n_qubits:3 [ (0, 1) ] in
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  check Alcotest.bool "raises" true
    (match Directed.fix_directions d c with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_check_directions_errors () =
  let d = Directed.create ~n_qubits:2 [ (0, 1) ] in
  let bad = Circuit.create ~n_qubits:2 [ Gate.Cnot (1, 0) ] in
  (match Directed.check_directions d bad with
  | Error g -> check Alcotest.bool "offender is cnot" true (Gate.name g = "cx")
  | Ok () -> Alcotest.fail "should flag reversed cnot");
  let swap = Circuit.create ~n_qubits:2 [ Gate.Swap (0, 1) ] in
  check Alcotest.bool "swap flagged" true
    (match Directed.check_directions d swap with Error _ -> true | Ok () -> false)

let test_route_then_fix_end_to_end () =
  (* full pipeline on QX2: SABRE on the symmetric collapse, then fix *)
  let d = Directed.ibm_qx2 () in
  let device = Directed.underlying d in
  let circuit = Workloads.Qft.circuit 5 in
  let r = Sabre.Compiler.run device circuit in
  let fixed = Directed.fix_directions d r.physical in
  check Alcotest.bool "directions legal" true
    (match Directed.check_directions d fixed with Ok () -> true | Error _ -> false);
  (* still semantically the routed circuit *)
  check Alcotest.bool "unitary preserved" true
    (Sim.Equivalence.circuits_equivalent
       (Quantum.Decompose.expand_all r.physical)
       fixed);
  (* and still on real couplers *)
  (match Sim.Tracker.check_compliance ~coupling:device fixed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Sim.Tracker.pp_error e)

let suite =
  [
    tc "create and queries" `Quick test_create_and_queries;
    tc "create rejects invalid" `Quick test_create_rejects;
    tc "underlying collapse" `Quick test_underlying_collapse;
    tc "qx2/qx4 models" `Quick test_qx_models;
    tc "allowed cnot passes through" `Quick test_fix_allowed_passthrough;
    tc "reversed cnot fixed" `Quick test_fix_reversed_cnot;
    tc "swap and cz lowered" `Quick test_fix_swap_and_cz;
    tc "uncoupled pair raises" `Quick test_fix_uncoupled_raises;
    tc "check_directions errors" `Quick test_check_directions_errors;
    tc "route then fix end-to-end" `Quick test_route_then_fix_end_to_end;
  ]
