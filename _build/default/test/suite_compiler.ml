module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Compiler = Sabre.Compiler

let check = Alcotest.check
let tc = Alcotest.test_case

let fast = { Config.default with trials = 2 }

let test_end_to_end_tokyo () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 8 in
  let r = Compiler.run ~config:fast device c in
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "qft8 tokyo";
  check Alcotest.int "added gates = 3*swaps" (3 * r.stats.n_swaps)
    r.stats.added_gates;
  check Alcotest.int "total gates" (r.stats.original_gates + r.stats.added_gates)
    r.stats.total_gates

let test_perfect_initial_mapping_found () =
  (* paper Section V-A1: for nearest-neighbour workloads SABRE finds a
     perfect initial mapping — Ising chain embeds into Tokyo's grid *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Ising.circuit ~steps:4 10 in
  let r = Compiler.run device c in
  check Alcotest.int "zero swaps" 0 r.stats.n_swaps;
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "ising perfect"

let test_ghz_chain_near_perfect_on_grid () =
  (* a 12-qubit chain embeds into a 3×4 grid (serpentine Hamiltonian
     path); SABRE's randomised bidirectional search finds it or lands
     within a couple of SWAPs of it *)
  let device = Devices.grid ~rows:3 ~cols:4 in
  let c = Workloads.Ghz.circuit 12 in
  let r = Compiler.run device c in
  check Alcotest.bool
    (Printf.sprintf "%d swaps <= 2" r.stats.n_swaps)
    true (r.stats.n_swaps <= 2);
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "ghz grid"

let test_reverse_traversal_improves () =
  (* the g_op <= g_la claim: the optimised initial mapping should not be
     worse than the first traversal's on this structured workload *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 12 in
  let r = Compiler.run device c in
  check Alcotest.bool
    (Printf.sprintf "final %d <= first %d" r.stats.n_swaps
       r.stats.first_traversal_swaps)
    true
    (r.stats.n_swaps <= r.stats.first_traversal_swaps);
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "bidirectional"

let test_single_traversal_config () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r =
    Compiler.run ~config:{ fast with traversals = 1; trials = 3 } device c
  in
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "single trav"

let test_route_with_initial_deterministic () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let m = Mapping.identity ~n_logical:5 ~n_physical:5 in
  let r1 = Compiler.route_with_initial device c m in
  let r2 = Compiler.route_with_initial device c m in
  check Alcotest.bool "same output" true
    (Circuit.equal r1.physical r2.physical);
  check Alcotest.bool "initial preserved" true
    (Mapping.equal r1.initial_mapping m)

let test_compiler_deterministic_given_seed () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:31 ~n:10 ~gates:120 in
  let r1 = Compiler.run ~config:fast device c in
  let r2 = Compiler.run ~config:fast device c in
  check Alcotest.bool "reproducible" true
    (Circuit.equal r1.physical r2.physical);
  let r3 = Compiler.run ~config:{ fast with seed = 99 } device c in
  (* different seed may differ; just make sure both verify *)
  Helpers.assert_compiler_result ~coupling:device ~logical:c r3 "seed 99"

let test_measurements_survive () =
  let device = Devices.linear 4 in
  let c = Workloads.Bv.circuit ~hidden:0b101 3 in
  let r = Compiler.run ~config:fast device c in
  let measures =
    List.length
      (List.filter
         (function Gate.Measure _ -> true | _ -> false)
         (Circuit.gates r.physical))
  in
  check Alcotest.int "3 measures kept" 3 measures;
  Helpers.assert_compiler_result ~coupling:device ~logical:c r "bv"

let test_rejects_disconnected_device () =
  let device = Coupling.create ~n_qubits:4 [ (0, 1); (2, 3) ] in
  let c = Workloads.Ghz.circuit 4 in
  check Alcotest.bool "raises" true
    (match Compiler.run device c with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_invalid_config () =
  let device = Devices.linear 4 in
  let c = Workloads.Ghz.circuit 4 in
  check Alcotest.bool "raises" true
    (match Compiler.run ~config:{ fast with trials = 0 } device c with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stats_depths () =
  let device = Devices.linear 5 in
  let c = Workloads.Qft.circuit 5 in
  let r = Compiler.run ~config:fast device c in
  check Alcotest.int "original depth" (Quantum.Depth.depth c)
    r.stats.original_depth;
  check Alcotest.int "routed depth"
    (Quantum.Depth.depth_swap3 r.physical)
    r.stats.routed_depth;
  check Alcotest.bool "time recorded" true (r.stats.time_s >= 0.0)

let test_expand_swaps_compliant () =
  (* after lowering SWAPs to CNOTs the circuit must still be compliant *)
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = Compiler.run ~config:fast device c in
  let lowered = Quantum.Decompose.expand_swaps r.physical in
  match Sim.Tracker.check_compliance ~coupling:device lowered with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lowered: %a" Sim.Tracker.pp_error e

let test_all_devices_smoke () =
  List.iter
    (fun (name, device) ->
      let n = min 5 (Coupling.n_qubits device) in
      let c = Helpers.random_circuit ~seed:55 ~n ~gates:30 in
      let r = Compiler.run ~config:fast device c in
      Helpers.assert_compiler_result ~simulate_up_to:6 ~coupling:device
        ~logical:c r name)
    Devices.all_named

let suite =
  [
    tc "end to end on Tokyo" `Quick test_end_to_end_tokyo;
    tc "perfect initial mapping (ising)" `Quick test_perfect_initial_mapping_found;
    tc "ghz on grid, near-perfect" `Quick test_ghz_chain_near_perfect_on_grid;
    tc "reverse traversal improves" `Quick test_reverse_traversal_improves;
    tc "single traversal config" `Quick test_single_traversal_config;
    tc "route_with_initial deterministic" `Quick test_route_with_initial_deterministic;
    tc "deterministic given seed" `Quick test_compiler_deterministic_given_seed;
    tc "measurements survive" `Quick test_measurements_survive;
    tc "rejects disconnected device" `Quick test_rejects_disconnected_device;
    tc "rejects invalid config" `Quick test_rejects_invalid_config;
    tc "stats depths" `Quick test_stats_depths;
    tc "expanded swaps stay compliant" `Quick test_expand_swaps_compliant;
    tc "all devices smoke" `Slow test_all_devices_smoke;
  ]
