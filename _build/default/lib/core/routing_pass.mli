module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

(** One traversal of SABRE's SWAP-based heuristic search (paper
    Algorithm 1).

    The pass consumes a circuit DAG and an initial mapping and produces
    the physical circuit: original gates remapped through the evolving π,
    interleaved with inserted SWAP gates on coupling-graph edges. The
    bidirectional driver {!Compiler} calls this once per traversal. *)

type result = {
  physical : Circuit.t;  (** hardware-compliant output circuit *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  n_swaps : int;  (** SWAPs inserted (each costs 3 CNOTs) *)
  search_steps : int;  (** heuristic SWAP selections performed *)
  fallback_swaps : int;
      (** SWAPs inserted by the anti-livelock shortest-path fallback; 0
          in normal operation *)
}

val run :
  ?dist:float array array ->
  Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** [run config coupling dag initial] routes the DAG's circuit. [dist]
    overrides the hop-count distance matrix with a custom routing metric
    (e.g. {!Hardware.Noise.swap_reliability_distance} for fidelity-aware
    mapping); it must be non-negative, symmetric, zero on the diagonal
    and finite between connected qubits. The
    initial mapping is not mutated. Raises [Invalid_argument] when the
    circuit needs more logical qubits than the device has physical ones,
    or when the coupling graph is disconnected while the circuit requires
    interaction across components. *)
