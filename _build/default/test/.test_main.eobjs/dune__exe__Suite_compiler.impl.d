test/suite_compiler.ml: Alcotest Hardware Helpers List Printf Quantum Sabre Sim Workloads
