(** Dependency-DAG construction (paper Section IV-A).

    Builds the forward DAG of the current circuit — strict program
    order, or the commutation-aware DAG when
    [config.commutation_aware] — and, when the config runs reverse
    traversals ([traversals > 1]), the DAG of the reversed circuit for
    the backward passes. *)

val pass : Pass.t
