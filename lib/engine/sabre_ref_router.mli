(** The pre-flat-core SABRE router ([sabre-ref]), kept for one release
    cycle as the differential-testing reference against the flat-core
    implementation. Routes through {!Sabre_core.Routing_pass_ref}; for
    fixed seeds its output must be byte-identical to the [sabre]
    router's. Not registered at module init — the check harness
    ({!Check.Differential.ensure_registered}) registers it. *)

val name : string
val router : Router.t
