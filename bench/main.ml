(* Benchmark harness regenerating the paper's evaluation artefacts.

   Sections (select with an argument, default = all):
     table2      — Table II: gate counts & runtime, SABRE vs BKA, 26 rows
     figure8     — Figure 8: gate-count/depth trade-off under a δ sweep
     scalability — Section V-B: BKA's exponential blow-up vs SABRE
     ablation    — what each Section IV-C design decision buys
     scaling     — SABRE runtime on devices of 20-400 qubits
     scoring     — incremental delta scoring vs full recompute on the
                   scaling sweep, with a SWAP-determinism gate
     pipeline    — engine per-stage wall times + dist-matrix sharing
     throughput  — batch compilation: circuits/sec across domain pools,
                   cold vs warm device-keyed distance cache
     stream      — streaming ingest: windowed single-pass routing of
                   250k/1M-gate lazy circuits, with a byte-identity
                   gate against the materialised route
     serve       — sabre_serve daemon under concurrent clients: latency
                   percentiles and throughput per client count, warm vs
                   cold distance cache, every response byte-checked
                   against Engine.Batch
     portfolio   — best-of-K (router x seeder) selection over the
                   workload zoo: winner vs single-router SABRE, with a
                   1/2/4-domain determinism gate
     cache       — content-addressed compile cache: cold route vs
                   memoized hit (10x FATAL gate, byte-equality gate)
                   and repeat-heavy serving through a cache-enabled
                   daemon
     micro       — Bechamel micro-benchmarks (one per table/figure)

   Flags: --json FILE records machine-readable rows, --repeat K reports
   min-of-K wall time per timed row (stable cross-PR numbers),
   --max-qubits / --max-domains cap the scaling and throughput sweeps.

   Every routed circuit is verified with Sim.Tracker before its numbers
   are printed; a verification failure aborts the run. *)

module Circuit = Quantum.Circuit
module Depth = Quantum.Depth
module Decompose = Quantum.Decompose
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Suite = Workloads.Suite

let device = Devices.ibm_q20_tokyo ()

(* Wall-clock timing. [Sys.time] measures CPU time of the process, which
   under-reports multi-domain runs and ignores time spent blocked; every
   reported number below is wall time. *)
let wall = Unix.gettimeofday

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

(* --repeat K: timed rows report the minimum wall time over K identical
   runs — the standard way to suppress scheduler/allocator noise so
   BENCH_*.json numbers stay comparable across PRs. Every run computes
   the same deterministic result; the last one is returned. *)
let repeat = ref 1

let time_min f =
  let r, t0 = time f in
  let best = ref t0 and result = ref r in
  for _ = 2 to !repeat do
    let r, t = time f in
    if t < !best then best := t;
    result := r
  done;
  (!result, !best)

(* ------------------------------------------------------------------ *)
(* JSON recording (--json FILE)                                        *)
(* ------------------------------------------------------------------ *)

module Record = struct
  type value = Int of int | Float of float | Str of string

  type section = {
    name : string;
    mutable wall_s : float;
    mutable rows : (string * value) list list;  (* in insertion order *)
  }

  let enabled = ref false
  let sections : section list ref = ref []

  let section name =
    match List.find_opt (fun s -> s.name = name) !sections with
    | Some s -> s
    | None ->
      let s = { name; wall_s = 0.0; rows = [] } in
      sections := !sections @ [ s ];
      s

  let row name fields =
    if !enabled then begin
      let s = section name in
      s.rows <- s.rows @ [ fields ]
    end

  let finish name wall_s = if !enabled then (section name).wall_s <- wall_s

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let value_to_json = function
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%.6f" f
    | Str s -> Printf.sprintf "\"%s\"" (escape s)

  let row_to_json fields =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (value_to_json v))
           fields)
    ^ "}"

  let write path =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"sections\": [\n";
    let n = List.length !sections in
    List.iteri
      (fun i s ->
        Printf.fprintf oc
          "    {\"name\": \"%s\", \"wall_s\": %.6f, \"rows\": [\n" s.name
          s.wall_s;
        let m = List.length s.rows in
        List.iteri
          (fun j r ->
            Printf.fprintf oc "      %s%s\n" (row_to_json r)
              (if j = m - 1 then "" else ","))
          s.rows;
        Printf.fprintf oc "    ]}%s\n" (if i = n - 1 then "" else ",");
        ())
      !sections;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Format.printf "@.wrote %s@." path
end

let verified ~logical ~initial ~final ~physical label =
  match
    Sim.Tracker.check ~coupling:device
      ~initial:(Mapping.l2p_array initial)
      ~final:(Mapping.l2p_array final)
      ~logical ~physical ()
  with
  | Ok () -> ()
  | Error e ->
    Format.eprintf "FATAL: %s failed verification: %a@." label
      Sim.Tracker.pp_error e;
    exit 2

(* ------------------------------------------------------------------ *)
(* Table II                                                             *)
(* ------------------------------------------------------------------ *)

type bka_outcome = Bka_done of { g_add : int; t : float } | Bka_oom of float

let run_bka circuit name =
  match time (fun () -> Baseline.Bka.run device circuit) with
  | Ok r, t ->
    verified ~logical:circuit ~initial:r.initial_mapping
      ~final:r.final_mapping ~physical:r.physical (name ^ "/bka");
    Bka_done { g_add = 3 * r.n_swaps; t }
  | Error (Baseline.Bka.Node_budget_exhausted _), t -> Bka_oom t

let run_sabre circuit name =
  let r, t = time (fun () -> Sabre.Compiler.run device circuit) in
  verified ~logical:circuit ~initial:r.initial_mapping
    ~final:r.final_mapping ~physical:r.physical (name ^ "/sabre");
  (r, t)

let pp_opt_int = function Some v -> string_of_int v | None -> "OOM"
let pp_opt_time = function Some t -> Printf.sprintf "%.2f" t | None -> "OOM"

let table2 () =
  Format.printf
    "@.== Table II: number of additional gates and runtime, IBM Q20 Tokyo ==@.";
  Format.printf
    "   (g_add = 3 x SWAPs; g_la = SABRE first traversal; g_op = after \
     reverse traversal; paper numbers in parentheses)@.@.";
  Format.printf "%-5s %-15s %3s %6s | %9s %8s | %10s %10s %8s %8s | %7s %7s | %6s@."
    "type" "name" "n" "g_ori" "BKA_gadd" "(paper)" "SABRE_gla" "SABRE_gop"
    "(p_gla)" "(p_gop)" "t_bka" "t_sabre" "dg/bka";
  let sum_ratio = ref 0.0 and n_ratio = ref 0 in
  let optimal_small = ref 0 in
  List.iter
    (fun (row : Suite.row) ->
      let circuit = Lazy.force row.circuit in
      let g_ori = Decompose.elementary_gate_count circuit in
      let bka = run_bka circuit row.name in
      let sabre, t_sabre = run_sabre circuit row.name in
      let g_la = 3 * sabre.stats.first_traversal_swaps in
      let g_op = sabre.stats.added_gates in
      let bka_g, bka_t =
        match bka with
        | Bka_done { g_add; t } -> (Some g_add, Some t)
        | Bka_oom _ -> (None, None)
      in
      (match bka_g with
      | Some b when b > 0 ->
        sum_ratio := !sum_ratio +. (float_of_int (b - g_op) /. float_of_int b);
        incr n_ratio
      | _ -> ());
      if row.cls = Suite.Small && g_op = 0 then incr optimal_small;
      Format.printf
        "%-5s %-15s %3d %6d | %9s %8s | %10d %10d %8d %8d | %7s %7.2f | %6s@."
        (Suite.class_name row.cls) row.name row.n g_ori (pp_opt_int bka_g)
        ("(" ^ pp_opt_int row.paper_bka_g_add ^ ")")
        g_la g_op row.paper_g_la row.paper_g_op (pp_opt_time bka_t) t_sabre
        (match bka_g with
        | Some b when b > 0 ->
          Printf.sprintf "%+.0f%%"
            (100.0 *. float_of_int (b - g_op) /. float_of_int b)
        | Some _ -> "-"
        | None -> "-"))
    Suite.all;
  Format.printf
    "@.summary: SABRE eliminates all additional gates on %d/5 small \
     benchmarks; mean reduction vs BKA where BKA completes: %.0f%% \
     (paper: ~10%% on large benchmarks, >=91%% on small).@."
    !optimal_small
    (100.0 *. !sum_ratio /. float_of_int (max 1 !n_ratio))

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let figure8 () =
  Format.printf
    "@.== Figure 8: trade-off between gate count and depth (delta sweep) ==@.";
  Format.printf
    "   (x = gates normalised to g_ori, y = depth normalised to original \
     depth; one series per benchmark)@.@.";
  let deltas = [ 0.0; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  Format.printf "%-15s" "benchmark";
  List.iter (fun d -> Format.printf " | %-13s" (Printf.sprintf "d=%g" d)) deltas;
  Format.printf "@.";
  List.iter
    (fun name ->
      let row = Suite.find name in
      let circuit = Lazy.force row.circuit in
      let g_ori = float_of_int (Decompose.elementary_gate_count circuit) in
      let d_ori = float_of_int (Depth.depth circuit) in
      Format.printf "%-15s" name;
      List.iter
        (fun delta ->
          let config = { Sabre.Config.default with decay_increment = delta } in
          let r = Sabre.Compiler.run ~config device circuit in
          verified ~logical:circuit ~initial:r.initial_mapping
            ~final:r.final_mapping ~physical:r.physical
            (Printf.sprintf "%s/delta=%g" name delta);
          let lowered = Decompose.expand_swaps r.physical in
          let g = float_of_int (Circuit.gate_count lowered) in
          let d = float_of_int (Depth.depth lowered) in
          Format.printf " | %-13s"
            (Printf.sprintf "%.3f,%.3f" (g /. g_ori) (d /. d_ori)))
        deltas;
      Format.printf "@.%!")
    Suite.figure8_names;
  Format.printf
    "@.Each cell is (normalised gates, normalised depth). Moving along a \
     row trades extra gates for parallel SWAPs; the depth spread within \
     a row is the paper's ~8%% controllability claim.@."

(* ------------------------------------------------------------------ *)
(* Scalability (Section V-B)                                            *)
(* ------------------------------------------------------------------ *)

let scalability () =
  Format.printf
    "@.== Section V-B: scalability — BKA search explodes, SABRE stays \
     fast ==@.@.";
  Format.printf "%-16s %3s %6s | %16s %8s | %9s %8s@." "benchmark" "n"
    "g_ori" "BKA peak nodes" "t_bka" "t_sabre" "steps";
  List.iter
    (fun name ->
      let row = Suite.find name in
      let circuit = Lazy.force row.circuit in
      let g_ori = Decompose.elementary_gate_count circuit in
      let bka_cell, t_cell =
        match time (fun () -> Baseline.Bka.run device circuit) with
        | Ok r, t ->
          (Printf.sprintf "%d" r.peak_layer_nodes, Printf.sprintf "%.2f" t)
        | Error (Baseline.Bka.Node_budget_exhausted { nodes; _ }), t ->
          (Printf.sprintf ">%d OOM" nodes, Printf.sprintf "%.2f" t)
      in
      let sabre, t_sabre = run_sabre circuit name in
      Format.printf "%-16s %3d %6d | %16s %8s | %9.3f %8d@." name row.n g_ori
        bka_cell t_cell t_sabre sabre.stats.search_steps)
    [
      "qft_10"; "qft_13"; "qft_16"; "qft_20"; "ising_model_10";
      "ising_model_13"; "ising_model_16";
    ];
  Format.printf
    "@.BKA's per-layer A* over whole mappings grows exponentially with \
     device/circuit width (OOM = node budget, the paper's 378 GB \
     analogue); SABRE's SWAP-based search space is O(N) per step and its \
     runtime stays in fractions of a second.@."

(* ------------------------------------------------------------------ *)
(* Ablations of the design decisions (DESIGN.md per-experiment index)   *)
(* ------------------------------------------------------------------ *)

let ablation () =
  Format.printf
    "@.== Ablations: what each SABRE design decision buys (Section IV-C) \
     ==@.";
  let workloads = [ "qft_13"; "rd84_142"; "adr4_197" ] in
  let run_with config circuit name =
    let r = Sabre.Compiler.run ~config device circuit in
    if config.Sabre.Config.commutation_aware then begin
      (* reordered commuting gates break per-qubit-sequence equality;
         verify compliance + linearisation of the commuting DAG instead *)
      (match Sim.Tracker.check_compliance ~coupling:device r.physical with
      | Ok () -> ()
      | Error e ->
        Format.eprintf "FATAL: %s: %a@." name Sim.Tracker.pp_error e;
        exit 2);
      match
        Sim.Tracker.unroute
          ~initial:(Mapping.l2p_array r.initial_mapping)
          ~n_logical:(Circuit.n_qubits circuit)
          r.physical
      with
      | Ok (recovered, _) ->
        if
          not
            (Quantum.Dag.matches_linearization
               (Quantum.Dag.of_circuit_commuting circuit)
               recovered)
        then begin
          Format.eprintf "FATAL: %s: not a commuting linearisation@." name;
          exit 2
        end
      | Error e ->
        Format.eprintf "FATAL: %s: %a@." name Sim.Tracker.pp_error e;
        exit 2
    end
    else
      verified ~logical:circuit ~initial:r.initial_mapping
        ~final:r.final_mapping ~physical:r.physical name;
    r
  in

  Format.printf "@.-- heuristic level (Eq. 1 vs look-ahead vs decay) --@.";
  Format.printf "%-12s | %14s | %14s | %14s@." "benchmark" "basic g_add"
    "lookahead" "decay";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let cell h =
        let r =
          run_with { Sabre.Config.default with heuristic = h } circuit name
        in
        Printf.sprintf "%5d / d%5d" r.stats.added_gates r.stats.routed_depth
      in
      Format.printf "%-12s | %14s | %14s | %14s@." name
        (cell Sabre.Config.Basic)
        (cell Sabre.Config.Lookahead)
        (cell Sabre.Config.Decay))
    workloads;

  Format.printf
    "@.-- reverse traversal (1 = no initial-mapping optimisation) --@.";
  Format.printf "%-12s | %10s %10s %10s@." "benchmark" "1 pass" "3 passes"
    "5 passes";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let cell k =
        (run_with { Sabre.Config.default with traversals = k } circuit name)
          .stats
          .added_gates
      in
      Format.printf "%-12s | %10d %10d %10d@." name (cell 1) (cell 3) (cell 5))
    workloads;

  Format.printf "@.-- extended set size |E| (look-ahead horizon) --@.";
  Format.printf "%-12s |" "benchmark";
  let sizes = [ 0; 5; 10; 20; 50 ] in
  List.iter (fun s -> Format.printf " %8s" (Printf.sprintf "|E|=%d" s)) sizes;
  Format.printf "@.";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      Format.printf "%-12s |" name;
      List.iter
        (fun s ->
          let r =
            run_with
              { Sabre.Config.default with extended_set_size = s }
              circuit name
          in
          Format.printf " %8d" r.stats.added_gates)
        sizes;
      Format.printf "@.")
    workloads;

  Format.printf "@.-- random-restart trials --@.";
  Format.printf "%-12s | %10s %10s %10s@." "benchmark" "1 trial" "5 trials"
    "10 trials";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let cell k =
        (run_with { Sabre.Config.default with trials = k } circuit name).stats
          .added_gates
      in
      Format.printf "%-12s | %10d %10d %10d@." name (cell 1) (cell 5)
        (cell 10))
    workloads;
  Format.printf
    "@.-- commutation-aware DAG (extension; strict = paper's Algorithm 1) --@.";
  Format.printf "%-14s | %10s %12s@." "benchmark" "strict" "commuting";
  let fanout =
    (* two shuffled rounds of CNOT fan-out: the workload shape gate-level
       commutation provably helps on *)
    let n = 12 in
    let rng = Random.State.make [| 7 |] in
    let round =
      List.init (n - 1) (fun i -> i + 1)
      |> List.map (fun t -> (Random.State.bits rng, t))
      |> List.sort compare
      |> List.map (fun (_, t) -> Quantum.Gate.Cnot (0, t))
    in
    Circuit.create ~n_qubits:n (round @ round)
  in
  List.iter
    (fun (name, circuit) ->
      let swaps cfg = (run_with cfg circuit name).stats.added_gates in
      Format.printf "%-14s | %10d %12d@." name
        (swaps Sabre.Config.default)
        (swaps { Sabre.Config.default with commutation_aware = true }))
    (("cnot_fanout12", fanout)
    :: List.map
         (fun name -> (name, Lazy.force (Suite.find name).circuit))
         workloads);

  Format.printf
    "@.-- initial mapping strategy (single forward pass from each seed) --@.";
  Format.printf "%-12s | %9s %9s %9s %9s | %12s@." "benchmark" "trivial"
    "degree" "greedy" "random" "sabre(full)";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let seeded m label =
        let r = Sabre.Compiler.route_with_initial device circuit m in
        verified ~logical:circuit ~initial:r.initial_mapping
          ~final:r.final_mapping ~physical:r.physical (name ^ "/" ^ label);
        r.stats.added_gates
      in
      let full = run_with Sabre.Config.default circuit name in
      Format.printf "%-12s | %9d %9d %9d %9d | %12d@." name
        (seeded (Sabre.Initial_mapping.trivial device circuit) "trivial")
        (seeded (Sabre.Initial_mapping.degree_matching device circuit) "degree")
        (seeded (Sabre.Initial_mapping.interaction_greedy device circuit) "greedy")
        (seeded
           (Sabre.Initial_mapping.random
              ~state:(Random.State.make [| 1 |])
              device circuit)
           "random")
        full.stats.added_gates)
    workloads;
  Format.printf
    "@.Expected shape: each ingredient (look-ahead, decay, reverse \
     traversal, restarts, a moderate |E|) independently reduces the \
     added-gate count, and the reverse-traversal initial mapping beats \
     every static seeding strategy — the paper's motivation for each \
     design decision.@."

(* ------------------------------------------------------------------ *)
(* Device-size scaling (objective 4, Section III-B)                     *)
(* ------------------------------------------------------------------ *)

let scaling_sizes = ref [ 20; 50; 100; 200; 400 ]

let scaling () =
  Format.printf
    "@.== Device-size scaling: SABRE on NISQ devices of growing size ==@.@.";
  Format.printf "%-10s %8s %8s %8s | %10s %12s@." "device" "qubits" "n_log"
    "gates" "t_sabre" "us/2q-gate";
  List.iter
    (fun n_physical ->
      let rows = int_of_float (Float.sqrt (float_of_int n_physical)) in
      let cols = (n_physical + rows - 1) / rows in
      let dev = Devices.grid ~rows ~cols in
      let n = Coupling.n_qubits dev / 2 in
      let gates = 20 * n in
      let circuit =
        Workloads.Random_reversible.circuit ~seed:n_physical ~hot_bias:0.0 ~n
          ~gates ()
      in
      let config = { Sabre.Config.default with trials = 1 } in
      let r, t = time_min (fun () -> Sabre.Compiler.run ~config dev circuit) in
      (match
         Sim.Tracker.check ~coupling:dev
           ~initial:(Mapping.l2p_array r.initial_mapping)
           ~final:(Mapping.l2p_array r.final_mapping)
           ~logical:circuit ~physical:r.physical ()
       with
      | Ok () -> ()
      | Error e ->
        Format.eprintf "FATAL: scaling: %a@." Sim.Tracker.pp_error e;
        exit 2);
      let two_q = Circuit.two_qubit_count circuit in
      Record.row "scaling"
        [
          ("device", Str (Printf.sprintf "grid%dx%d" rows cols));
          ("qubits", Int (Coupling.n_qubits dev));
          ("n_logical", Int n);
          ("gates", Int gates);
          ("swaps", Int r.stats.n_swaps);
          ("route_s", Float t);
        ];
      Format.printf "%-10s %8d %8d %8d | %9.2fs %12.1f@."
        (Printf.sprintf "grid%dx%d" rows cols)
        (Coupling.n_qubits dev) n gates t
        (1e6 *. t /. float_of_int two_q))
    !scaling_sizes;
  Format.printf
    "@.Time per routed two-qubit gate grows polynomially (the O(N) \
     candidate set times the O(N) heuristic evaluation), not \
     exponentially — the scalability objective of Section III-B; devices \
     with hundreds of qubits remain in seconds.@."

(* ------------------------------------------------------------------ *)
(* Delta scoring: incremental vs full-recompute decision loop           *)
(* ------------------------------------------------------------------ *)

let scoring () =
  Format.printf
    "@.== Delta scoring: O(Δ) incremental SWAP-candidate evaluation vs \
     full recompute ==@.@.";
  Format.printf "%-10s %7s %7s %7s | %9s %9s %8s | %11s %11s@." "device"
    "qubits" "gates" "swaps" "full_s" "delta_s" "speedup" "delta_terms"
    "full_terms";
  List.iter
    (fun n_physical ->
      let rows = int_of_float (Float.sqrt (float_of_int n_physical)) in
      let cols = (n_physical + rows - 1) / rows in
      let dev = Devices.grid ~rows ~cols in
      let n = Coupling.n_qubits dev / 2 in
      let gates = 20 * n in
      let circuit =
        Workloads.Random_reversible.circuit ~seed:n_physical ~hot_bias:0.0 ~n
          ~gates ()
      in
      let dag = Quantum.Dag.of_circuit circuit in
      let m0 =
        Mapping.identity ~n_logical:n ~n_physical:(Coupling.n_qubits dev)
      in
      let config = Sabre.Config.default in
      let route mode () =
        Sabre.Routing_pass.run ~scoring:mode config dev dag m0
      in
      let full, t_full = time_min (route Sabre.Routing_pass.Full) in
      let delta, t_delta = time_min (route Sabre.Routing_pass.Delta) in
      (* both modes must make byte-identical decisions: this is the
         exactness guarantee the delta scorer is built on — a mismatch
         is a correctness bug, not a benchmark artefact *)
      if
        (not (Circuit.equal full.physical delta.physical))
        || full.n_swaps <> delta.n_swaps
        || Mapping.l2p_array full.final_mapping
           <> Mapping.l2p_array delta.final_mapping
      then begin
        Format.eprintf
          "FATAL: scoring: delta and full modes diverged on grid%dx%d \
           (%d vs %d swaps) — determinism broken@."
          rows cols delta.n_swaps full.n_swaps;
        exit 2
      end;
      let name = Printf.sprintf "grid%dx%d" rows cols in
      Record.row "scoring"
        [
          ("device", Str name);
          ("qubits", Int (Coupling.n_qubits dev));
          ("n_logical", Int n);
          ("gates", Int gates);
          ("swaps_full", Int full.n_swaps);
          ("swaps_delta", Int delta.n_swaps);
          ("full_s", Float t_full);
          ("delta_s", Float t_delta);
          ("speedup", Float (t_full /. t_delta));
          ("decisions", Int delta.scoring.Sabre.Stats.decisions);
          ("candidates", Int delta.scoring.Sabre.Stats.candidates);
          ("delta_terms", Int delta.scoring.Sabre.Stats.delta_terms);
          ("full_terms", Int delta.scoring.Sabre.Stats.full_terms);
        ];
      Format.printf "%-10s %7d %7d %7d | %8.3fs %8.3fs %7.2fx | %11d %11d@.%!"
        name (Coupling.n_qubits dev) gates delta.n_swaps t_full t_delta
        (t_full /. t_delta) delta.scoring.Sabre.Stats.delta_terms
        delta.scoring.Sabre.Stats.full_terms)
    !scaling_sizes;
  Format.printf
    "@.Both modes emit byte-identical circuits (enforced above); the \
     delta scorer touches O(pairs incident to the swapped qubits) \
     distance terms per candidate instead of O(|F|+|E|), so the term \
     ratio — and with it the decision-loop speedup — grows with device \
     size.@."

(* ------------------------------------------------------------------ *)
(* Engine pipeline: per-stage timing + distance-matrix sharing          *)
(* ------------------------------------------------------------------ *)

module Engine = Sabre.Engine

let pipeline () =
  Format.printf
    "@.== Engine pipeline: per-stage wall time (IBM Q20 Tokyo) ==@.@.";
  let stages = [ "decompose"; "dag"; "initial_mapping"; "routing"; "verify" ] in
  Format.printf "%-16s" "benchmark";
  List.iter (fun s -> Format.printf " | %13s" s) stages;
  Format.printf " | %11s@." "total";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let ctx = Engine.Context.create device circuit in
      let ctx =
        Engine.Pipeline.run (Engine.Pipeline.default ~verify:true ()) ctx
      in
      let metrics = Engine.Context.metrics ctx in
      Format.printf "%-16s" name;
      List.iter
        (fun s ->
          let t = try List.assoc s metrics with Not_found -> 0.0 in
          Format.printf " | %11.3fms" (1e3 *. t))
        stages;
      Format.printf " | %9.3fms@.%!"
        (1e3 *. List.fold_left (fun acc (_, t) -> acc +. t) 0.0 metrics))
    [ "qft_10"; "qft_16"; "ising_model_13"; "rd84_142" ];
  Format.printf
    "@.-- distance matrix: shared in Context.t vs converted per routing \
     pass --@.";
  (* Before the engine refactor every routing pass re-derived the float
     distance matrix from the coupling graph (trials x traversals
     conversions per compilation); [Engine.Context.create] now does it
     once and every pass and trial domain shares the same array. *)
  let c = Sabre.Config.default in
  let conversions = c.Sabre.Config.trials * c.Sabre.Config.traversals in
  let reps = 500 in
  let time_n f =
    let t0 = wall () in
    for _ = 1 to reps do
      f ()
    done;
    (wall () -. t0) /. float_of_int reps
  in
  let convert () =
    ignore
      (Array.map (Array.map float_of_int) (Coupling.distance_matrix device))
  in
  let t_old =
    time_n (fun () ->
        for _ = 1 to conversions do
          convert ()
        done)
  in
  let t_new = time_n convert in
  Format.printf "per routing pass (x%d) : %8.2f us of conversion/compile@."
    conversions (1e6 *. t_old);
  Format.printf
    "shared in Context (x1) : %8.2f us of conversion/compile (%.1fx less)@."
    (1e6 *. t_new)
    (t_old /. t_new)

(* ------------------------------------------------------------------ *)
(* Batch throughput: Scheduler domain pool + device-keyed dist cache    *)
(* ------------------------------------------------------------------ *)

let max_domains = ref max_int

let throughput () =
  Format.printf
    "@.== Batch throughput: circuits/sec across the Scheduler domain pool \
     (IBM Q20 Tokyo) ==@.@.";
  let n_jobs = 40 in
  let jobs =
    Array.init n_jobs (fun i ->
        {
          Engine.Batch.name = Printf.sprintf "rand10_%03d" i;
          circuit =
            Workloads.Random_reversible.circuit ~seed:(4000 + i)
              ~hot_bias:0.0 ~n:10 ~gates:120 ();
        })
  in
  let config = { Sabre.Config.default with trials = 2 } in
  let fail_job (e : Engine.Batch.error) =
    Format.eprintf "FATAL: throughput: %s failed: %s@." e.name e.message;
    exit 2
  in
  let swaps_of (report : Engine.Batch.report) =
    Array.fold_left
      (fun acc -> function
        | Ok (s : Engine.Batch.success) -> acc + s.stats.n_swaps
        | Error e -> fail_job e)
      0 report.outcomes
  in
  (* Sequential reference: every routed circuit semantically verified,
     and its total SWAP count is the determinism yardstick every
     multi-domain row must match exactly. *)
  let seq = Engine.Batch.compile_many ~config ~domains:1 device jobs in
  Array.iteri
    (fun i -> function
      | Ok (s : Engine.Batch.success) ->
        verified ~logical:jobs.(i).Engine.Batch.circuit ~initial:s.initial
          ~final:s.final ~physical:s.physical s.name
      | Error e -> fail_job e)
    seq.outcomes;
  let seq_swaps = swaps_of seq in
  let host = Engine.Trial_runner.default_domains () in
  let domain_counts =
    List.sort_uniq compare [ 1; 2; 4; host ]
    |> List.filter (fun d -> d <= !max_domains)
    |> function [] -> [ 1 ] | l -> l
  in
  Format.printf "%-8s %9s %9s | %12s %9s | %7s@." "domains" "circuits"
    "wall_s" "circuits/s" "speedup" "swaps";
  let t1 = ref nan in
  List.iter
    (fun d ->
      let report, t =
        time_min (fun () ->
            Engine.Batch.compile_many ~config ~domains:d device jobs)
      in
      let swaps = swaps_of report in
      if swaps <> seq_swaps then begin
        Format.eprintf
          "FATAL: throughput: %d domains produced %d swaps, sequential \
           produced %d — determinism broken@."
          d swaps seq_swaps;
        exit 2
      end;
      if d = 1 then t1 := t;
      let per_s = float_of_int n_jobs /. t in
      let speedup = !t1 /. t in
      Record.row "throughput"
        [
          ("kind", Str "batch");
          ("domains", Int d);
          ("host_cores", Int host);
          ("circuits", Int n_jobs);
          ("wall_s", Float t);
          ("circuits_per_s", Float per_s);
          ("speedup_vs_1", Float speedup);
          ("swaps", Int swaps);
        ];
      Format.printf "%-8d %9d %9.3f | %12.1f %8.2fx | %7d@." d n_jobs t per_s
        speedup swaps)
    domain_counts;
  Format.printf
    "@.-- Context.create setup cost: cold vs warm distance cache \
     (grid20x20, 400 qubits) --@.";
  (* Each measurement uses a fresh Coupling.t so the per-instance memo
     never helps: the timed region is exactly what a new request against
     a known device pays — digest + cache hit when warm, digest + BFS
     all-pairs shortest paths + insertion when cold. *)
  let probe = Workloads.Qft.circuit 8 in
  let setup_once ~cold =
    if cold then Hardware.Dist_cache.clear ()
    else
      ignore (Hardware.Dist_cache.hop_distances (Devices.grid ~rows:20 ~cols:20));
    let dev = Devices.grid ~rows:20 ~cols:20 in
    let t0 = wall () in
    ignore (Engine.Context.create ~config dev probe);
    wall () -. t0
  in
  let min_of k f =
    let best = ref (f ()) in
    for _ = 2 to k do
      let t = f () in
      if t < !best then best := t
    done;
    !best
  in
  let reps = max 3 !repeat in
  let t_cold = min_of reps (fun () -> setup_once ~cold:true) in
  let t_warm = min_of reps (fun () -> setup_once ~cold:false) in
  Record.row "throughput"
    [
      ("kind", Str "setup");
      ("device", Str "grid20x20");
      ("qubits", Int 400);
      ("cold_s", Float t_cold);
      ("warm_s", Float t_warm);
      ("cold_over_warm", Float (t_cold /. t_warm));
    ];
  Format.printf "cold (BFS APSP + insert) : %9.3f ms@." (1e3 *. t_cold);
  Format.printf "warm (digest + hit)      : %9.3f ms  (%.1fx less)@."
    (1e3 *. t_warm) (t_cold /. t_warm);
  Format.printf
    "@.Multi-domain rows must report byte-identical SWAP totals to the \
     sequential row (enforced above); throughput scaling depends on the \
     cores this host exposes (%d).@."
    host

(* ------------------------------------------------------------------ *)
(* Streaming ingest: windowed single-pass routing                      *)
(* ------------------------------------------------------------------ *)

module Routing_pass = Sabre.Routing_pass

let stream_sizes = [ 250_000; 1_000_000 ]

let stream () =
  Format.printf
    "@.== Streaming: windowed single-pass routing, heap bounded by the \
     window ==@.@.";
  let n = 16 in
  let config = { Sabre.Config.default with trials = 1; traversals = 1 } in
  let m0 =
    Mapping.identity ~n_logical:n ~n_physical:(Coupling.n_qubits device)
  in
  (* the streamed gate sequence must be byte-identical to the
     materialised route from the same initial mapping — a mismatch is a
     correctness bug, not a benchmark artefact *)
  let check_gates = 50_000 in
  let flat =
    Routing_pass.run_flat config device
      (Quantum.Dag.of_circuit
         (Workloads.Stream_chain.circuit ~n ~gates:check_gates ()))
      m0
  in
  let streamed = ref [] in
  let s =
    Routing_pass.run_streaming
      ~retire:(Workloads.Stream_chain.last_use ~n ~gates:check_gates ())
      ~sink:(fun g -> streamed := g :: !streamed)
      config device
      (Workloads.Stream_chain.events ~n ~gates:check_gates ())
      m0
  in
  if
    List.rev !streamed <> Circuit.gates flat.physical
    || s.Routing_pass.s_n_swaps <> flat.n_swaps
    || Mapping.l2p_array s.Routing_pass.s_final_mapping
       <> Mapping.l2p_array flat.final_mapping
  then begin
    Format.eprintf
      "FATAL: stream: streamed and materialised routes diverged on a \
       %d-gate chain (%d vs %d swaps) — exactness broken@."
      check_gates s.Routing_pass.s_n_swaps flat.n_swaps;
    exit 2
  end;
  Format.printf
    "equivalence gate: %d-gate streamed route byte-identical to the \
     materialised one (%d swaps)@.@."
    check_gates s.Routing_pass.s_n_swaps;
  Format.printf "%-9s %7s %9s | %9s %11s | %11s %12s@." "gates" "qubits"
    "swaps" "wall_s" "gates/s" "peak_window" "top_heap_w";
  List.iter
    (fun gates ->
      let retire = Workloads.Stream_chain.last_use ~n ~gates () in
      let route () =
        Routing_pass.run_streaming ~retire ~sink:ignore config device
          (Workloads.Stream_chain.events ~n ~gates ())
          m0
      in
      let r, t = time_min route in
      let heap = (Gc.quick_stat ()).Gc.top_heap_words in
      let rate = float_of_int gates /. t in
      Record.row "stream"
        [
          ("gates", Int gates);
          ("n_logical", Int n);
          ("qubits", Int (Coupling.n_qubits device));
          ("swaps", Int r.Routing_pass.s_n_swaps);
          ("gates_out", Int r.Routing_pass.s_gates_out);
          ("wall_s", Float t);
          ("gates_per_s", Float rate);
          ("peak_window", Int r.Routing_pass.s_peak_window);
          ("top_heap_words", Int heap);
        ];
      Format.printf "%-9d %7d %9d | %8.3fs %11.0f | %11d %12d@.%!" gates
        (Coupling.n_qubits device) r.Routing_pass.s_n_swaps t rate
        r.Routing_pass.s_peak_window heap)
    stream_sizes;
  Format.printf
    "@.Peak resident state tracks the window (the circuit's \
     qubit-inactivity span), not the gate count. top_heap_words is a \
     process-wide high-water mark: it is only meaningful when this \
     section runs alone, which is how the CI stream-smoke job measures \
     it (via sabre_compile --stream in a fresh process).@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "@.== Bechamel micro-benchmarks (one per experiment) ==@.@.";
  let qft10 = Workloads.Qft.circuit 10 in
  let qft10_dag = Quantum.Dag.of_circuit qft10 in
  let ising10 = Workloads.Ising.circuit 10 in
  let m0 = Mapping.identity ~n_logical:10 ~n_physical:20 in
  let single_pass = { Sabre.Config.default with trials = 1; traversals = 1 } in
  let tests =
    Test.make_grouped ~name:"sabre_repro"
      [
        (* Table II inner loop: one SABRE traversal of qft_10 on Tokyo *)
        Test.make ~name:"table2/sabre_pass_qft10"
          (Staged.stage (fun () ->
               ignore (Sabre.Routing_pass.run single_pass device qft10_dag m0)));
        (* Table II baseline: full BKA on ising_10 *)
        Test.make ~name:"table2/bka_ising10"
          (Staged.stage (fun () -> ignore (Baseline.Bka.run device ising10)));
        (* Figure 8 inner loop: full bidirectional SABRE with decay *)
        Test.make ~name:"figure8/sabre_full_qft10"
          (Staged.stage (fun () -> ignore (Sabre.Compiler.run device qft10)));
        (* Scalability substrates: the Section IV-A preprocessing steps *)
        Test.make ~name:"scalability/floyd_warshall_tokyo"
          (Staged.stage (fun () ->
               (* rebuild the graph so the distance cache is cold *)
               let g = Coupling.create ~n_qubits:20 (Coupling.edges device) in
               ignore (Coupling.distance_matrix g)));
        Test.make ~name:"scalability/dag_generation_qft10"
          (Staged.stage (fun () -> ignore (Quantum.Dag.of_circuit qft10)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> Float.nan
      in
      Format.printf "%-45s %14.1f ns/run  (%.3f ms)@." name ns (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Serving: the routing daemon under concurrent clients                *)
(* ------------------------------------------------------------------ *)

module SP = Serve.Protocol

let serve_client_counts = [ 1; 2; 4; 8 ]

let serve () =
  Format.printf
    "@.== Serving: concurrent clients against an in-process daemon ==@.@.";
  let n_circuits = 16 and requests_per_sweep = 64 in
  let texts =
    Array.init n_circuits (fun i ->
        Quantum.Qasm.to_string
          (Workloads.Random_reversible.circuit ~seed:(900 + i) ~hot_bias:0.0
             ~n:10 ~gates:80 ()))
  in
  (* reference outputs: every response is gated on byte-identity with
     Engine.Batch — a mismatch aborts the run like a verification
     failure would *)
  let jobs =
    Array.mapi
      (fun i text ->
        {
          Engine.Batch.name = string_of_int i;
          circuit = Quantum.Qasm.of_string text;
        })
      texts
  in
  let reference = Engine.Batch.compile_many ~verify:true device jobs in
  let expected =
    Array.map
      (function
        | Ok (s : Engine.Batch.success) -> Quantum.Qasm.to_string s.physical
        | Error (e : Engine.Batch.error) ->
          Format.eprintf "FATAL: serve: reference compile %s failed: %s@."
            e.name e.message;
          exit 2)
      reference.outcomes
  in
  let domains = min 4 !max_domains in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sabre_bench_%d.sock" (Unix.getpid ()))
  in
  let server = Serve.Server.start ~domains (SP.Unix_sock sock) in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) @@ fun () ->
  let request_of i =
    let c = i mod n_circuits in
    SP.Compile
      {
        id = string_of_int c;
        source = SP.Inline texts.(c);
        device = "tokyo";
        device_size = None;
        router = "sabre";
        overrides = SP.no_overrides;
        cache = true;
        deadline_s = None;
      }
  in
  let check_response = function
    | SP.Ok_compiled r ->
      let c = int_of_string r.SP.id in
      if r.SP.qasm <> expected.(c) then begin
        Format.eprintf
          "FATAL: serve: response for circuit %d differs from Engine.Batch@."
          c;
        exit 2
      end
    | SP.Error_resp { message; _ } ->
      Format.eprintf "FATAL: serve: %s@." message;
      exit 2
    | _ ->
      Format.eprintf "FATAL: serve: unexpected response kind@.";
      exit 2
  in
  Format.printf "%-8s %9s %9s | %10s %9s %9s %9s@." "clients" "requests"
    "wall_s" "req/s" "p50_ms" "p95_ms" "p99_ms";
  List.iter
    (fun clients ->
      let per_client = requests_per_sweep / clients in
      let total = clients * per_client in
      let latencies = Array.make total 0.0 in
      let t0 = wall () in
      let threads =
        List.init clients (fun c ->
            Thread.create
              (fun c ->
                Serve.Client.with_connection ~retry_for_s:5.0
                  (SP.Unix_sock sock) (fun conn ->
                    for k = 0 to per_client - 1 do
                      let idx = (c * per_client) + k in
                      let t = wall () in
                      match Serve.Client.request conn (request_of idx) with
                      | Ok resp ->
                        latencies.(idx) <- wall () -. t;
                        check_response resp
                      | Error e ->
                        Format.eprintf "FATAL: serve: transport: %s@." e;
                        exit 2
                    done))
              c)
      in
      List.iter Thread.join threads;
      let wall_s = wall () -. t0 in
      Array.sort compare latencies;
      let pct p =
        1e3
        *. latencies.(max 0
                        (min (total - 1) (int_of_float (p *. float_of_int total))))
      in
      Record.row "serve"
        [
          ("kind", Str "sweep");
          ("clients", Int clients);
          ("domains", Int domains);
          ("requests", Int total);
          ("wall_s", Float wall_s);
          ("req_per_s", Float (float_of_int total /. wall_s));
          ("p50_ms", Float (pct 0.50));
          ("p95_ms", Float (pct 0.95));
          ("p99_ms", Float (pct 0.99));
        ];
      Format.printf "%-8d %9d %9.3f | %10.1f %9.2f %9.2f %9.2f@." clients
        total wall_s
        (float_of_int total /. wall_s)
        (pct 0.50) (pct 0.95) (pct 0.99))
    serve_client_counts;
  (* warm vs cold device-keyed distance cache, measured end-to-end at
     the protocol level. Tokyo's 20-qubit BFS is microseconds, so the
     probe targets a 400-qubit grid, where a cold request pays a real
     all-pairs BFS and a warm one a digest lookup. *)
  let latency_of_one () =
    Serve.Client.with_connection ~retry_for_s:5.0 (SP.Unix_sock sock)
      (fun conn ->
        let t = wall () in
        match
          Serve.Client.request conn
            (SP.Compile
               {
                 id = "cache-probe";
                 source = SP.Inline texts.(0);
                 device = "grid";
                 device_size = Some 400;
                 router = "sabre";
                 overrides = SP.no_overrides;
                 cache = true;
                 deadline_s = None;
               })
        with
        | Ok (SP.Ok_compiled _) -> wall () -. t
        | Ok r ->
          Format.eprintf "FATAL: serve: cache probe answered %s@."
            (SP.encode_response r);
          exit 2
        | Error e ->
          Format.eprintf "FATAL: serve: transport: %s@." e;
          exit 2)
  in
  Hardware.Dist_cache.clear ();
  let t_cold = latency_of_one () in
  let t_warm =
    let best = ref (latency_of_one ()) in
    for _ = 2 to max 3 !repeat do
      let t = latency_of_one () in
      if t < !best then best := t
    done;
    !best
  in
  Record.row "serve"
    [
      ("kind", Str "dist_cache");
      ("cold_ms", Float (1e3 *. t_cold));
      ("warm_ms", Float (1e3 *. t_warm));
      ("cold_over_warm", Float (t_cold /. t_warm));
    ];
  Format.printf
    "@.first request, cold dist cache : %7.2f ms@.same request, warm cache \
     \ \ \ \ : %7.2f ms  (%.1fx less)@."
    (1e3 *. t_cold) (1e3 *. t_warm) (t_cold /. t_warm);
  let s = Serve.Server.stats server in
  Record.row "serve"
    [
      ("kind", Str "stats");
      ("served", Int s.SP.served);
      ("errored", Int s.SP.errored);
      ("rejected", Int s.SP.rejected);
      ("timed_out", Int s.SP.timed_out);
      ("malformed", Int s.SP.malformed);
      ("dist_cache_hits", Int s.SP.dist_cache_hits);
      ("dist_cache_misses", Int s.SP.dist_cache_misses);
    ];
  Format.printf
    "@.daemon counters: served %d, errored %d, rejected %d, timed out %d \
     (every response byte-checked against Engine.Batch)@."
    s.SP.served s.SP.errored s.SP.rejected s.SP.timed_out

(* ------------------------------------------------------------------ *)
(* Portfolio: best-of-K (router x seeder) selection                     *)
(* ------------------------------------------------------------------ *)

let portfolio_zoo =
  [ "4mod5-v1_22"; "decod24-v2_43"; "4gt13_92"; "qft_10"; "ising_model_10" ]

let portfolio_entries =
  [
    { Engine.Portfolio.router = "sabre"; seeder = "reverse-traversal"; overrides = [] };
    { Engine.Portfolio.router = "sabre"; seeder = "iso"; overrides = [] };
    { Engine.Portfolio.router = "hail"; seeder = "reverse-traversal"; overrides = [] };
    { Engine.Portfolio.router = "hail"; seeder = "iso"; overrides = [] };
    { Engine.Portfolio.router = "greedy"; seeder = "reverse-traversal"; overrides = [] };
    { Engine.Portfolio.router = "greedy"; seeder = "iso"; overrides = [] };
  ]

let portfolio () =
  let module Portfolio = Engine.Portfolio in
  Baseline.Routers.register ();
  let config = Sabre.Config.default in
  Format.printf
    "@.== Portfolio: best-of-%d (router x seeder), SWAP objective ==@.@."
    (List.length portfolio_entries);
  Format.printf "%-16s %7s %7s %8s | %-22s | %9s@." "circuit" "sabre" "winner"
    "saved" "winning entry" "wall_s";
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      (* the single-router baseline the portfolio must dominate: sabre is
         one of the entries, so losing to it is a selection bug *)
      let plain = Sabre.Compiler.run ~config device circuit in
      let report, t =
        time_min (fun () ->
            Portfolio.run ~objective:Portfolio.Swaps ~config device circuit
              portfolio_entries)
      in
      let w = Portfolio.winner_member report in
      verified ~logical:circuit ~initial:w.Portfolio.initial
        ~final:w.Portfolio.final ~physical:w.Portfolio.physical
        (Printf.sprintf "portfolio:%s" name);
      if w.Portfolio.n_swaps > plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps
      then begin
        Format.eprintf
          "FATAL: portfolio: winner inserted %d swaps on %s but plain sabre \
           needs only %d — selection broken@."
          w.Portfolio.n_swaps name
          plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps;
        exit 2
      end;
      (* determinism gate: fanning the entries over 2 and 4 domains must
         reproduce the 1-domain outcomes byte for byte *)
      List.iter
        (fun domains ->
          let r =
            Portfolio.run ~domains ~objective:Portfolio.Swaps ~config device
              circuit portfolio_entries
          in
          let same_outcomes =
            Array.for_all2
              (fun a b ->
                match (a, b) with
                | Ok (a : Portfolio.member), Ok (b : Portfolio.member) ->
                  a.n_swaps = b.n_swaps
                  && Circuit.equal a.physical b.physical
                | Error a, Error b -> a = b
                | _ -> false)
              r.Portfolio.outcomes report.Portfolio.outcomes
          in
          if r.Portfolio.winner <> report.Portfolio.winner || not same_outcomes
          then begin
            Format.eprintf
              "FATAL: portfolio: %s differs between 1 and %d domains — \
               determinism broken@."
              name domains;
            exit 2
          end)
        [ 2; 4 ];
      let entry = Portfolio.entry_name w.Portfolio.entry in
      Record.row "portfolio"
        [
          ("circuit", Str name);
          ("entries", Int (List.length portfolio_entries));
          ("sabre_swaps", Int plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps);
          ("winner_swaps", Int w.Portfolio.n_swaps);
          ("winner_depth", Int w.Portfolio.depth);
          ("winner", Str entry);
          ("wall_s", Float t);
        ];
      Format.printf "%-16s %7d %7d %8d | %-22s | %8.3fs@." name
        plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps w.Portfolio.n_swaps
        (plain.Sabre.Compiler.stats.Sabre.Stats.n_swaps - w.Portfolio.n_swaps)
        entry t)
    portfolio_zoo;
  Format.printf
    "@.The winner never loses to single-router SABRE (enforced above: \
     sabre/reverse-traversal is an entry, and ties break to the earliest \
     entry), and the outcome array is byte-identical at 1/2/4 domains.@."

(* ------------------------------------------------------------------ *)
(* Racing: incumbent-bound pruning vs the plain portfolio               *)
(* ------------------------------------------------------------------ *)

(* The shape that makes pruning observable: a fast strong entry first
   (one trial, one traversal — its whole run is the certified final
   forward traversal, so it completes quickly and sets the incumbent),
   then slower single-pass baselines whose swap counters blow through
   the incumbent mid-route. *)
let racing_spec = "sabre/iso:trials=1,traversals=1,hail,hail/degree,hail/interaction"

let racing () =
  let module Portfolio = Engine.Portfolio in
  Baseline.Routers.register ();
  let config = Sabre.Config.default in
  let entries =
    match Portfolio.parse_spec racing_spec with
    | Ok e -> e
    | Error msg ->
      Format.eprintf "FATAL: racing: spec rejected: %s@." msg;
      exit 2
  in
  Format.printf
    "@.== Racing: incumbent-bound pruning over %d entries, SWAP objective \
     ==@.   spec: %s@.@."
    (List.length entries) racing_spec;
  Format.printf "%-16s %7s | %9s %9s %8s %9s | %-16s@." "circuit" "swaps"
    "plain_s" "raced_s" "speedup" "cancelled" "winner";
  let speedups = ref [] in
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      let run ~race ~domains =
        Portfolio.run ~race ~domains ~objective:Portfolio.Swaps ~config
          device circuit entries
      in
      let plain, t_off = time_min (fun () -> run ~race:false ~domains:1) in
      let raced, t_on = time_min (fun () -> run ~race:true ~domains:1) in
      let pw = Portfolio.winner_member plain in
      verified ~logical:circuit ~initial:pw.Portfolio.initial
        ~final:pw.Portfolio.final ~physical:pw.Portfolio.physical
        (Printf.sprintf "racing:%s" name);
      (* equivalence gate: racing must be observationally pure — the
         winner (name, swaps, depth, circuit) and every completing
         entry's result are bit-identical at 1, 2 and 4 domains *)
      List.iter
        (fun (label, r) ->
          let rw = Portfolio.winner_member r in
          if
            r.Portfolio.winner <> plain.Portfolio.winner
            || Portfolio.entry_name rw.Portfolio.entry
               <> Portfolio.entry_name pw.Portfolio.entry
            || rw.Portfolio.n_swaps <> pw.Portfolio.n_swaps
            || rw.Portfolio.depth <> pw.Portfolio.depth
            || not (Circuit.equal rw.Portfolio.physical pw.Portfolio.physical)
          then begin
            Format.eprintf
              "FATAL: racing: %s winner differs from the plain portfolio on \
               %s — pruning broke selection@."
              label name;
            exit 2
          end;
          Array.iteri
            (fun i o ->
              match (plain.Portfolio.outcomes.(i), o) with
              | Ok (a : Portfolio.member), Ok (b : Portfolio.member) ->
                if
                  a.Portfolio.n_swaps <> b.Portfolio.n_swaps
                  || not (Circuit.equal a.Portfolio.physical b.Portfolio.physical)
                then begin
                  Format.eprintf
                    "FATAL: racing: %s changed completing entry %d on %s@."
                    label i name;
                  exit 2
                end
              | Ok _, Error msg when msg = Portfolio.cancelled_msg -> ()
              | Error a, Error b when a = b -> ()
              | _ ->
                Format.eprintf
                  "FATAL: racing: %s changed entry %d's outcome kind on %s@."
                  label i name;
                exit 2)
            r.Portfolio.outcomes)
        [
          ("race@1", raced);
          ("race@2", run ~race:true ~domains:2);
          ("race@4", run ~race:true ~domains:4);
        ];
      let cancelled =
        Array.fold_left
          (fun acc (s : Portfolio.entry_stat) ->
            if s.Portfolio.e_cancelled then acc + 1 else acc)
          0 raced.Portfolio.entry_stats
      in
      let speedup = t_off /. t_on in
      speedups := speedup :: !speedups;
      let entry = Portfolio.entry_name pw.Portfolio.entry in
      Record.row "racing"
        [
          ("circuit", Str name);
          ("entries", Int (List.length entries));
          ("winner", Str entry);
          ("winner_swaps", Int pw.Portfolio.n_swaps);
          ("winner_depth", Int pw.Portfolio.depth);
          ("plain_wall_s", Float t_off);
          ("raced_wall_s", Float t_on);
          ("speedup", Float speedup);
          ("cancelled_entries", Int cancelled);
        ];
      Format.printf "%-16s %7d | %8.4fs %8.4fs %7.2fx %9d | %-16s@." name
        pw.Portfolio.n_swaps t_off t_on speedup cancelled entry)
    portfolio_zoo;
  let best = List.fold_left max 0.0 !speedups in
  Record.row "racing" [ ("kind", Str "summary"); ("best_speedup", Float best) ];
  Format.printf
    "@.best speedup %.2fx. The raced winner (entry, SWAPs, depth, circuit) \
     and every completing entry are bit-identical to the plain portfolio at \
     1/2/4 domains (enforced above); losers only ever stop early.@."
    best

(* ------------------------------------------------------------------ *)
(* Compile cache: memoized routing across engine and serve              *)
(* ------------------------------------------------------------------ *)

let cache_zoo = [ "qft_10"; "qft_16"; "rd84_142" ]

let cache () =
  let module Cache = Engine.Compile_cache in
  Format.printf "@.== Compile cache: cold route vs memoized hit ==@.@.";
  Engine.Router.register Engine.Sabre_router.router;
  let router =
    match Engine.Router.find Engine.Sabre_router.name with
    | Some r -> r
    | None -> assert false
  in
  let saved = Cache.capacity_bytes () in
  Fun.protect ~finally:(fun () -> Cache.set_capacity_bytes saved) @@ fun () ->
  Cache.set_capacity_mb 256;
  let route circuit =
    let ctx = Engine.Context.create ~cache_spec:"sabre" device circuit in
    let ctx =
      Engine.Pipeline.run (Engine.Pipeline.default ~router ~verify:true ()) ctx
    in
    Engine.Context.routed_exn ctx
  in
  Format.printf "%-16s %10s %10s %9s@." "circuit" "cold_ms" "warm_ms" "speedup";
  let worst = ref infinity in
  List.iter
    (fun name ->
      let circuit = Lazy.force (Suite.find name).circuit in
      (* min-of-K on both sides (the cold side re-clears each round) so
         a noisy scheduler cannot fake or hide the speedup *)
      let reps = max 3 !repeat in
      let cold = ref None and t_cold = ref infinity and t_warm = ref infinity in
      for _ = 1 to reps do
        Cache.clear ();
        let r, t = time (fun () -> route circuit) in
        cold := Some r;
        if t < !t_cold then t_cold := t
      done;
      let warm = ref (route circuit) in
      for _ = 1 to reps do
        let r, t = time (fun () -> route circuit) in
        warm := r;
        if t < !t_warm then t_warm := t
      done;
      let cold = Option.get !cold
      and warm = !warm
      and t_cold = !t_cold
      and t_warm = !t_warm in
      (* byte-equality gate: a memoized hit must reproduce the fresh
         route exactly — circuit, both mappings and the accounting *)
      if
        not
          (Circuit.equal cold.Engine.Context.physical
             warm.Engine.Context.physical)
        || Mapping.l2p_array cold.Engine.Context.trial_initial
           <> Mapping.l2p_array warm.Engine.Context.trial_initial
        || Mapping.l2p_array cold.Engine.Context.final_mapping
           <> Mapping.l2p_array warm.Engine.Context.final_mapping
        || cold.Engine.Context.n_swaps <> warm.Engine.Context.n_swaps
      then begin
        Format.eprintf
          "FATAL: cache: memoized result differs from the fresh route on %s@."
          name;
        exit 2
      end;
      verified ~logical:circuit ~initial:warm.Engine.Context.trial_initial
        ~final:warm.Engine.Context.final_mapping
        ~physical:warm.Engine.Context.physical
        (Printf.sprintf "cache:%s" name);
      let speedup = t_cold /. t_warm in
      if speedup < !worst then worst := speedup;
      Record.row "cache"
        [
          ("kind", Str "hit");
          ("circuit", Str name);
          ("cold_ms", Float (1e3 *. t_cold));
          ("warm_ms", Float (1e3 *. t_warm));
          ("speedup", Float speedup);
        ];
      Format.printf "%-16s %10.2f %10.3f %8.1fx@." name (1e3 *. t_cold)
        (1e3 *. t_warm) speedup)
    cache_zoo;
  if !worst < 10.0 then begin
    Format.eprintf
      "FATAL: cache: worst hit speedup %.1fx is below the 10x gate@." !worst;
    exit 2
  end;
  (* repeat-heavy serving: a cache-enabled daemon answers duplicate
     requests at admission, without occupying a worker *)
  let n_circuits = 4 and requests = 64 and clients = 4 in
  let texts =
    Array.init n_circuits (fun i ->
        Quantum.Qasm.to_string
          (Workloads.Random_reversible.circuit ~seed:(700 + i) ~hot_bias:0.0
             ~n:10 ~gates:80 ()))
  in
  let jobs =
    Array.mapi
      (fun i text ->
        {
          Engine.Batch.name = string_of_int i;
          circuit = Quantum.Qasm.of_string text;
        })
      texts
  in
  let reference = Engine.Batch.compile_many ~verify:true device jobs in
  let expected =
    Array.map
      (function
        | Ok (s : Engine.Batch.success) -> Quantum.Qasm.to_string s.physical
        | Error (e : Engine.Batch.error) ->
          Format.eprintf "FATAL: cache: reference compile %s failed: %s@."
            e.name e.message;
          exit 2)
      reference.outcomes
  in
  let domains = min 4 !max_domains in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sabre_bench_cache_%d.sock" (Unix.getpid ()))
  in
  Cache.clear ();
  let server = Serve.Server.start ~domains ~cache:true (SP.Unix_sock sock) in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) @@ fun () ->
  let sweep ~use_cache =
    let per_client = requests / clients in
    let t0 = wall () in
    let threads =
      List.init clients (fun c ->
          Thread.create
            (fun c ->
              Serve.Client.with_connection ~retry_for_s:5.0 (SP.Unix_sock sock)
                (fun conn ->
                  for k = 0 to per_client - 1 do
                    let i = ((c * per_client) + k) mod n_circuits in
                    match
                      Serve.Client.request conn
                        (SP.Compile
                           {
                             id = string_of_int i;
                             source = SP.Inline texts.(i);
                             device = "tokyo";
                             device_size = None;
                             router = "sabre";
                             overrides = SP.no_overrides;
                             cache = use_cache;
                             deadline_s = None;
                           })
                    with
                    | Ok (SP.Ok_compiled r) ->
                      if r.SP.qasm <> expected.(int_of_string r.SP.id) then begin
                        Format.eprintf
                          "FATAL: cache: serve response for circuit %s \
                           differs from Engine.Batch@."
                          r.SP.id;
                        exit 2
                      end
                    | Ok resp ->
                      Format.eprintf "FATAL: cache: serve answered %s@."
                        (SP.encode_response resp);
                      exit 2
                    | Error e ->
                      Format.eprintf "FATAL: cache: transport: %s@." e;
                      exit 2
                  done))
            c)
    in
    List.iter Thread.join threads;
    wall () -. t0
  in
  let t_nocache = sweep ~use_cache:false in
  let t_cached = sweep ~use_cache:true in
  let s = Serve.Server.stats server in
  if s.SP.cache_hits = 0 then begin
    Format.eprintf
      "FATAL: cache: repeat-heavy serve sweep produced no cache hits@.";
    exit 2
  end;
  Record.row "cache"
    [
      ("kind", Str "serve");
      ("requests", Int requests);
      ("distinct_circuits", Int n_circuits);
      ("clients", Int clients);
      ("domains", Int domains);
      ("nocache_req_per_s", Float (float_of_int requests /. t_nocache));
      ("cached_req_per_s", Float (float_of_int requests /. t_cached));
      ("cached_over_nocache", Float (t_nocache /. t_cached));
      ("cache_hits", Int s.SP.cache_hits);
      ("cache_misses", Int s.SP.cache_misses);
      ("cache_entries", Int s.SP.cache_entries);
      ("cache_bytes", Int s.SP.cache_bytes);
    ];
  Format.printf
    "@.repeat-heavy serving (%d requests over %d circuits, %d clients): \
     %.1f req/s bypassing the cache, %.1f req/s cached (%.1fx), %d \
     admission hits@."
    requests n_circuits clients
    (float_of_int requests /. t_nocache)
    (float_of_int requests /. t_cached)
    (t_nocache /. t_cached) s.SP.cache_hits

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let usage () =
  Format.eprintf
    "usage: bench [--json FILE] [--max-qubits N] [--max-domains N] \
     [--repeat K] \
     [table2|figure8|scalability|ablation|scaling|scoring|pipeline|throughput|stream|serve|portfolio|racing|cache|micro]...@.";
  exit 1

let () =
  let json_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | "--max-qubits" :: n :: rest ->
      (match int_of_string_opt n with
      | Some cap when cap > 0 ->
        scaling_sizes := List.filter (fun s -> s <= cap) !scaling_sizes;
        if !scaling_sizes = [] then scaling_sizes := [ cap ]
      | _ -> usage ());
      parse acc rest
    | "--max-domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some cap when cap > 0 -> max_domains := cap
      | _ -> usage ());
      parse acc rest
    | "--repeat" :: k :: rest ->
      (match int_of_string_opt k with
      | Some k when k > 0 -> repeat := k
      | _ -> usage ());
      parse acc rest
    | ("--json" | "--max-qubits" | "--max-domains" | "--repeat") :: [] ->
      usage ()
    | section :: rest -> parse (section :: acc) rest
  in
  let sections =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] ->
      [
        "table2"; "figure8"; "scalability"; "ablation"; "scaling"; "scoring";
        "pipeline"; "throughput"; "stream"; "serve"; "portfolio"; "racing";
        "cache"; "micro";
      ]
    | named -> named
  in
  Record.enabled := Option.is_some !json_file;
  List.iter
    (fun section ->
      let run =
        match section with
        | "table2" -> table2
        | "figure8" -> figure8
        | "scalability" -> scalability
        | "ablation" -> ablation
        | "scaling" -> scaling
        | "scoring" -> scoring
        | "pipeline" -> pipeline
        | "throughput" -> throughput
        | "stream" -> stream
        | "serve" -> serve
        | "portfolio" -> portfolio
        | "racing" -> racing
        | "cache" -> cache
        | "micro" -> micro
        | other ->
          Format.eprintf "unknown section %S@." other;
          usage ()
      in
      let (), t = time run in
      Record.finish section t)
    sections;
  match !json_file with None -> () | Some path -> Record.write path
