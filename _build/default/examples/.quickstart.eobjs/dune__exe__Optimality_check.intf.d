examples/optimality_check.mli:
