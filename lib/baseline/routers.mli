(** The paper's Section VII baselines as engine {!Engine.Router.S}
    implementations, so the CLI and custom pipelines can swap them in
    for SABRE behind the same interface.

    Both are deterministic: they ignore the random trial seeds (greedy
    starts from the context's fixed initial mapping when one is given,
    the identity otherwise; BKA derives its own greedy
    beginning-of-circuit placement), so the routing pass runs a single
    trial. BKA raises {!Engine.Router.Route_failed} when its node
    budget is exhausted — the paper's out-of-memory row. *)

val greedy : Engine.Router.t
val bka : Engine.Router.t

val register : unit -> unit
(** Add the baseline routers to the {!Engine.Router} registry:
    ["greedy"], ["bka"], and the HAIL lookahead router ["hail"]
    ({!Hail.router}). *)
