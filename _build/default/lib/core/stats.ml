module Circuit = Quantum.Circuit
module Depth = Quantum.Depth
module Decompose = Quantum.Decompose

type t = {
  n_swaps : int;
  added_gates : int;
  original_gates : int;
  total_gates : int;
  original_depth : int;
  routed_depth : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
  time_s : float;
  first_traversal_swaps : int;
}

let summary ~original ~routed ~n_swaps ~search_steps ~fallback_swaps
    ~traversals_run ~time_s ~first_traversal_swaps =
  let original_gates = Decompose.elementary_gate_count original in
  {
    n_swaps;
    added_gates = 3 * n_swaps;
    original_gates;
    total_gates = original_gates + (3 * n_swaps);
    original_depth = Depth.depth original;
    routed_depth = Depth.depth_swap3 routed;
    search_steps;
    fallback_swaps;
    traversals_run;
    time_s;
    first_traversal_swaps;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>swaps inserted : %d (gates +%d)@,\
     gates          : %d -> %d@,\
     depth          : %d -> %d@,\
     search steps   : %d (fallback swaps %d)@,\
     traversals     : %d in %.3fs@]"
    s.n_swaps s.added_gates s.original_gates s.total_gates s.original_depth
    s.routed_depth s.search_steps s.fallback_swaps s.traversals_run s.time_s
