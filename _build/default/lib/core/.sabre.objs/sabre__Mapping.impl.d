lib/core/mapping.ml: Array Format Fun Random
