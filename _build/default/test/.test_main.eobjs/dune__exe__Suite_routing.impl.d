test/suite_routing.ml: Alcotest Array Hardware Helpers List Printf Quantum Random Sabre Workloads
