lib/hardware/noise.ml: Array Coupling Float Format List Printf Quantum Random
