examples/qft_on_tokyo.ml: Baseline Format Hardware List Printf Quantum Sabre Sim Workloads
