lib/baseline/heap.ml: Array
