module Gate = Quantum.Gate
module Qasm = Quantum.Qasm
module Qasm_stream = Quantum.Qasm_stream
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Routing_pass = Sabre_core.Routing_pass

type report = {
  result : Routing_pass.stream_result;
  n_qubits : int;
  n_clbits : int;
  wall_s : float;
}

let run ?(config = Config.default) ?initial ?retire ~n_qubits ~sink coupling
    source =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Stream_pass.run: " ^ msg));
  let n_physical = Coupling.n_qubits coupling in
  if n_qubits > n_physical then
    invalid_arg
      (Printf.sprintf "Stream_pass.run: stream needs %d qubits, device has %d"
         n_qubits n_physical);
  let initial =
    match initial with
    | Some m -> m
    | None -> Mapping.identity ~n_logical:n_qubits ~n_physical
  in
  let dist, dist_int, _ = Hardware.Dist_cache.lookup_all coupling in
  let t0 = Unix.gettimeofday () in
  let result =
    Routing_pass.run_streaming ~dist ~dist_int ?retire ~sink config coupling
      source initial
  in
  {
    result;
    n_qubits;
    n_clbits = 0;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* Gate events only; register declarations are handled by the survey. *)
let rec next_gate stream () =
  match Qasm_stream.next_event stream with
  | None -> None
  | Some (Qasm_stream.Gate g) -> Some g
  | Some (Qasm_stream.Qreg _ | Qasm_stream.Creg _) -> next_gate stream ()

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let route_file ?(config = Config.default) coupling ~input ~output =
  match
    (* pass 1: survey the file in O(n_qubits) memory for the register
       shape and the per-qubit retire schedule *)
    let sv = with_in input (fun ic -> Qasm_stream.survey (Qasm_stream.of_channel ic)) in
    let n_physical = Coupling.n_qubits coupling in
    if sv.Qasm_stream.sv_n_qubits > n_physical then
      Error
        (Printf.sprintf "%s: circuit needs %d qubits, device has %d" input
           sv.Qasm_stream.sv_n_qubits n_physical)
    else begin
      (* pass 2: stream-route gate by gate, writing as we go *)
      let t0 = Unix.gettimeofday () in
      let result =
        with_in input (fun ic ->
            with_out output (fun oc ->
                let source = next_gate (Qasm_stream.of_channel ic) in
                let n_clbits = max sv.Qasm_stream.sv_n_clbits 1 in
                Qasm.output_prelude oc ~n_qubits:n_physical ~n_clbits;
                run ~config ~retire:sv.Qasm_stream.sv_last_use
                  ~n_qubits:sv.Qasm_stream.sv_n_qubits
                  ~sink:(Qasm.output_gate oc) coupling source))
      in
      Ok
        {
          result with
          n_clbits = sv.Qasm_stream.sv_n_clbits;
          wall_s = Unix.gettimeofday () -. t0;
        }
    end
  with
  | r -> r
  | exception Qasm_stream.Parse_error { line; column; message } ->
    Error (Printf.sprintf "%s:%d:%d: %s" input line column message)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let route_files ?(config = Config.default) ?(domains = 1) coupling jobs =
  let thunks =
    Array.map
      (fun (input, output) -> fun () -> route_file ~config coupling ~input ~output)
      jobs
  in
  Scheduler.run ~domains thunks
