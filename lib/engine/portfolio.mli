module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

(** Best-of-K portfolio routing: fan (router × seeder) entries across
    the {!Scheduler} pool, keep the best result per circuit.

    Every entry compiles the same circuit through the default pipeline
    — its router from the {!Router} registry, its seeder from
    {!Sabre_core.Initial_mapping.Seeder} (pinning one trial, or falling
    through to the router-native random-trials flow for
    ["reverse-traversal"]) — with trials sequential inside each entry,
    so the only parallelism is across entries and the outcome array is
    byte-identical at any domain count. The winner is the entry whose
    objective value is lowest, chosen with {!Trial_runner.best}'s
    first-best-wins tie-break: the earliest listed entry wins ties,
    whatever the schedule was.

    Per-entry failures (route/verify failure, invalid input) are
    captured as [Error] outcomes; the portfolio only raises
    {!Router.Route_failed} when {e every} entry failed. *)

type objective =
  | Swaps  (** fewest inserted SWAPs *)
  | Depth  (** lowest {!Quantum.Depth.depth_swap3} of the routed circuit *)
  | Success_prob
      (** highest {!Hardware.Noise.circuit_success_probability}; without
          an explicit noise model, [Noise.uniform] over the device *)

val objective_name : objective -> string
val objective_of_string : string -> (objective, string) result

type entry = { router : string; seeder : string }

val entry_name : entry -> string
(** ["router"] when the seeder is the default router-native
    ["reverse-traversal"], ["router/seeder"] otherwise. *)

val parse_spec : string -> (entry list, string) result
(** Parse a CLI spec: comma-separated [ROUTER[/SEEDER]] items, e.g.
    ["sabre,hail/iso,greedy"]. Name resolution happens in {!run} (the
    registries may still be filling up at parse time). *)

type member = {
  entry : entry;
  physical : Circuit.t;  (** hardware-compliant routed circuit *)
  initial : Mapping.t;  (** the winning trial's starting placement *)
  final : Mapping.t;
  n_swaps : int;
  depth : int;  (** [depth_swap3] of [physical] *)
  success_prob : float option;
      (** populated when a noise model was given or the objective is
          [Success_prob] *)
  stats : Stats.t;  (** [time_s] is 0 — members race, wall time is
                        meaningless per entry *)
}

type outcome = (member, string) result

type report = {
  objective : objective;
  outcomes : outcome array;  (** in entry order *)
  winner : int;  (** index into [outcomes]; always an [Ok] member *)
  wall_s : float;
  domains : int;  (** domains actually used (after clamping) *)
}

val winner_member : report -> member

val objective_value : objective -> member -> float
(** Lower is better for every objective (success probability is
    negated). Raises [Invalid_argument] for [Success_prob] on a member
    without a probability. *)

val run :
  ?domains:int ->
  ?objective:objective ->
  ?config:Config.t ->
  ?noise:Noise.t ->
  ?verify:bool ->
  ?instrument:Instrument.t ->
  Coupling.t ->
  Circuit.t ->
  entry list ->
  report
(** [run coupling circuit entries] routes [circuit] once per entry and
    picks the winner. [domains] defaults to 1 (sequential); results are
    identical at any domain count. [instrument] receives every entry's
    pass events plus per-entry [portfolio.<entry>.swaps/.depth/.failed]
    counters and [portfolio.winner]; it must be domain-safe when
    [domains > 1]. Raises [Invalid_argument] on an unknown router or
    seeder name (listing the registered names), and
    {!Router.Route_failed} when every entry failed. *)
