module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let check = Alcotest.check
let tc = Alcotest.test_case

let sample () =
  Circuit.create ~n_qubits:3
    [
      Gate.Single (H, 0);
      Gate.Cnot (0, 1);
      Gate.Single (T, 2);
      Gate.Cnot (1, 2);
      Gate.Swap (0, 2);
      Gate.Measure (2, 0);
    ]

let test_create_and_counts () =
  let c = sample () in
  check Alcotest.int "n_qubits" 3 (Circuit.n_qubits c);
  check Alcotest.int "length" 6 (Circuit.length c);
  check Alcotest.int "gate_count" 5 (Circuit.gate_count c);
  check Alcotest.int "two_qubit" 3 (Circuit.two_qubit_count c);
  check Alcotest.int "single_qubit" 2 (Circuit.single_qubit_count c)

let test_create_rejects_invalid () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit.create: gate cx: qubit 5 out of range [0,3)")
    (fun () -> ignore (Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 5) ]));
  Alcotest.check_raises "negative register"
    (Invalid_argument "Circuit.create: negative register size") (fun () ->
      ignore (Circuit.create ~n_qubits:(-1) []))

let test_empty () =
  let c = Circuit.empty 4 in
  check Alcotest.int "gates" 0 (Circuit.length c);
  check Alcotest.int "qubits" 4 (Circuit.n_qubits c)

let test_count_by_name () =
  let c = sample () in
  let counts = Circuit.count_by_name c in
  check (Alcotest.option Alcotest.int) "cx" (Some 2) (List.assoc_opt "cx" counts);
  check (Alcotest.option Alcotest.int) "h" (Some 1) (List.assoc_opt "h" counts);
  check (Alcotest.option Alcotest.int) "swap" (Some 1)
    (List.assoc_opt "swap" counts);
  check (Alcotest.option Alcotest.int) "measure" (Some 1)
    (List.assoc_opt "measure" counts)

let test_append_concat () =
  let c = Circuit.empty 2 in
  let c = Circuit.append c (Gate.Single (H, 0)) in
  let c = Circuit.append c (Gate.Cnot (0, 1)) in
  check Alcotest.int "after appends" 2 (Circuit.length c);
  let d = Circuit.concat c c in
  check Alcotest.int "after concat" 4 (Circuit.length d);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Circuit.concat: register size mismatch") (fun () ->
      ignore (Circuit.concat c (Circuit.empty 3)))

let test_map_qubits () =
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 1); Gate.Single (H, 2) ] in
  let rotated = Circuit.map_qubits (fun q -> (q + 1) mod 3) c in
  check Alcotest.bool "gates rotated" true
    (Circuit.equal rotated
       (Circuit.create ~n_qubits:3 [ Gate.Cnot (1, 2); Gate.Single (H, 0) ]));
  Alcotest.check_raises "not injective"
    (Invalid_argument "Circuit.map_qubits: not injective") (fun () ->
      ignore (Circuit.map_qubits (fun _ -> 0) c))

let test_reverse () =
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (T, 0); Gate.Cnot (0, 1); Gate.Measure (1, 0) ]
  in
  let r = Circuit.reverse c in
  (* measurement dropped, order reversed, T daggered *)
  check Alcotest.bool "reversed" true
    (Circuit.equal r
       (Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1); Gate.Single (Tdg, 0) ]))

let test_reverse_involutive_on_unitaries () =
  let c =
    Circuit.create ~n_qubits:3
      [ Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Single (Rz 0.25, 2) ]
  in
  check Alcotest.bool "double reverse" true
    (Circuit.equal c (Circuit.reverse (Circuit.reverse c)))

let test_reverse_preserves_interactions () =
  let c = Workloads.Qft.circuit 5 in
  let fwd = Circuit.two_qubit_interactions c in
  let bwd = Circuit.two_qubit_interactions (Circuit.reverse c) in
  check Alcotest.int "same number" (List.length fwd) (List.length bwd);
  check Alcotest.bool "reversed order" true (List.rev fwd = bwd)

let test_two_qubit_interactions () =
  let c = sample () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "pairs"
    [ (0, 1); (1, 2); (0, 2) ]
    (Circuit.two_qubit_interactions c)

let test_used_qubits () =
  let c = Circuit.create ~n_qubits:5 [ Gate.Cnot (3, 1) ] in
  check (Alcotest.list Alcotest.int) "used" [ 1; 3 ] (Circuit.used_qubits c)

let test_filter () =
  let c = sample () in
  let only_two = Circuit.filter Gate.is_two_qubit c in
  check Alcotest.int "filtered" 3 (Circuit.length only_two)

let test_canonical_key_reordering () =
  (* independent gates commute: H(0) and T(1) in either order *)
  let a =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Single (T, 1); Gate.Cnot (0, 1) ]
  in
  let b =
    Circuit.create ~n_qubits:2
      [ Gate.Single (T, 1); Gate.Single (H, 0); Gate.Cnot (0, 1) ]
  in
  check Alcotest.bool "reordered equal" true (Circuit.equal_up_to_reordering a b);
  check Alcotest.bool "not structurally equal" false (Circuit.equal a b)

let test_canonical_key_order_sensitive () =
  (* dependent gates do NOT commute: different per-qubit sequences *)
  let a =
    Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ]
  in
  let b =
    Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1); Gate.Single (H, 0) ]
  in
  check Alcotest.bool "different" false (Circuit.equal_up_to_reordering a b)

let test_canonical_key_distinguishes_gates () =
  let a = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  let b = Circuit.create ~n_qubits:2 [ Gate.Cnot (1, 0) ] in
  check Alcotest.bool "orientation matters" false
    (Circuit.equal_up_to_reordering a b)

let test_digest_bit_exact_params () =
  (* angles agreeing to %g's 6 significant digits must still hash
     apart: a digest collision would serve the wrong cached route *)
  let circ theta = Circuit.create ~n_qubits:1 [ Gate.Single (Rz theta, 0) ] in
  let a = circ 0.1234567890123 and b = circ 0.1234567890124 in
  check Alcotest.bool "param tail distinguishes digest" false
    (String.equal (Circuit.digest a) (Circuit.digest b));
  check Alcotest.bool "param tail distinguishes canonical key" false
    (String.equal (Circuit.canonical_key a) (Circuit.canonical_key b));
  (* stable spellings for the float edge cases (%h convention) *)
  check Alcotest.bool "digest deterministic" true
    (String.equal (Circuit.digest a) (Circuit.digest (circ 0.1234567890123)));
  check Alcotest.bool "signed zero distinguishes" false
    (String.equal (Circuit.digest (circ 0.0)) (Circuit.digest (circ (-0.0))));
  check Alcotest.bool "nan digest stable" true
    (String.equal (Circuit.digest (circ Float.nan))
       (Circuit.digest (circ Float.nan)));
  let subnormal = Float.min_float /. 2.0 in
  check Alcotest.bool "subnormal distinguishes from zero" false
    (String.equal (Circuit.digest (circ subnormal)) (Circuit.digest (circ 0.0)))

let suite =
  [
    tc "create and counts" `Quick test_create_and_counts;
    tc "create rejects invalid" `Quick test_create_rejects_invalid;
    tc "empty" `Quick test_empty;
    tc "count_by_name" `Quick test_count_by_name;
    tc "append/concat" `Quick test_append_concat;
    tc "map_qubits" `Quick test_map_qubits;
    tc "reverse" `Quick test_reverse;
    tc "reverse involutive" `Quick test_reverse_involutive_on_unitaries;
    tc "reverse preserves interactions" `Quick test_reverse_preserves_interactions;
    tc "two_qubit_interactions" `Quick test_two_qubit_interactions;
    tc "used_qubits" `Quick test_used_qubits;
    tc "filter" `Quick test_filter;
    tc "canonical key: reordering" `Quick test_canonical_key_reordering;
    tc "canonical key: order sensitive" `Quick test_canonical_key_order_sensitive;
    tc "canonical key: gate identity" `Quick test_canonical_key_distinguishes_gates;
    tc "digest: bit-exact float params" `Quick test_digest_bit_exact_params;
  ]
