module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Decompose = Quantum.Decompose

let n_qubits_for n = if n >= 3 then (2 * n) - 2 else n

(* Multi-controlled Z across all n data qubits (symmetric). For n >= 3 a
   clean-ancilla Toffoli cascade ANDs controls into ancillas, applies a
   CZ against the last data qubit, and uncomputes. *)
let mcz_all n add =
  match n with
  | 1 -> add (Gate.Single (Z, 0))
  | 2 -> add (Gate.Cz (0, 1))
  | _ ->
    let ancilla i = n + i in
    (* forward AND chain: anc0 = q0 & q1; anc_i = anc_{i-1} & q_{i+1} *)
    let compute = ref [] in
    let push_toffoli a b t =
      List.iter (fun g -> compute := g :: !compute) (Decompose.toffoli a b t)
    in
    push_toffoli 0 1 (ancilla 0);
    for i = 1 to n - 3 do
      push_toffoli (ancilla (i - 1)) (i + 1) (ancilla i)
    done;
    let forward = List.rev !compute in
    List.iter add forward;
    add (Gate.Cz (ancilla (n - 3), n - 1));
    (* uncompute: the Toffoli decomposition is its own inverse here only
       gate-by-gate reversed with daggers *)
    List.iter add (List.rev_map Gate.dagger forward)

let apply_mask n marked add =
  for q = 0 to n - 1 do
    if marked land (1 lsl q) = 0 then add (Gate.Single (X, q))
  done

let default_iterations n =
  (* floor(pi/4 * sqrt(N)): rounding up overshoots the rotation (e.g.
     n = 2 is exact after a single iteration) *)
  max 1
    (int_of_float (Float.pi /. 4.0 *. Float.sqrt (float_of_int (1 lsl n))))

let circuit ?iterations ~marked n =
  if n < 1 || n > 12 then invalid_arg "Grover.circuit: need 1 <= n <= 12";
  if marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.circuit: marked state out of range";
  let iterations =
    match iterations with Some k -> max 1 k | None -> default_iterations n
  in
  let width = n_qubits_for n in
  let gates = ref [] in
  let add g = gates := g :: !gates in
  for q = 0 to n - 1 do
    add (Gate.Single (H, q))
  done;
  for _ = 1 to iterations do
    (* oracle: phase-flip |marked> *)
    apply_mask n marked add;
    mcz_all n add;
    apply_mask n marked add;
    (* diffusion: reflect about the uniform state *)
    for q = 0 to n - 1 do
      add (Gate.Single (H, q))
    done;
    for q = 0 to n - 1 do
      add (Gate.Single (X, q))
    done;
    mcz_all n add;
    for q = 0 to n - 1 do
      add (Gate.Single (X, q))
    done;
    for q = 0 to n - 1 do
      add (Gate.Single (H, q))
    done
  done;
  for q = 0 to n - 1 do
    add (Gate.Measure (q, q))
  done;
  Circuit.create ~n_qubits:width ~n_clbits:n (List.rev !gates)

let success_probability ~marked n =
  let c =
    Circuit.filter
      (function Gate.Measure _ -> false | _ -> true)
      (circuit ~marked n)
  in
  let width = Circuit.n_qubits c in
  let s = Sim.Statevector.create width in
  Sim.Statevector.apply_circuit s c;
  (* ancillas are uncomputed to |0>, so the marked outcome is the single
     basis state with data bits = marked and ancilla bits = 0 *)
  Complex.norm2 (Sim.Statevector.amplitude s marked)
