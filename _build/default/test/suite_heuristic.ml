module Config = Sabre.Config
module Heuristic = Sabre.Heuristic

let check = Alcotest.check
let tc = Alcotest.test_case

(* Line device 0-1-2-3-4: distances are |i-j|. *)
let dist =
  Hardware.Coupling.distance_matrix (Hardware.Devices.linear 5)
  |> Array.map (Array.map float_of_int)

let checkf msg expected actual = check (Alcotest.float 1e-9) msg expected actual

let identity = [| 0; 1; 2; 3; 4 |]

let test_basic_sums_distances () =
  checkf "one pair" 3.0 (Heuristic.basic ~dist ~l2p:identity [ (0, 3) ]);
  checkf "two pairs" 5.0
    (Heuristic.basic ~dist ~l2p:identity [ (0, 3); (1, 3) ]);
  checkf "empty front" 0.0 (Heuristic.basic ~dist ~l2p:identity [])

let test_basic_uses_mapping () =
  (* logical 0 placed on P4: distance to logical 1 on P1 is 3 *)
  let l2p = [| 4; 1; 2; 3; 0 |] in
  checkf "remapped" 3.0 (Heuristic.basic ~dist ~l2p [ (0, 1) ])

let test_lookahead_normalises () =
  (* F = {(0,3)} dist 3; E = {(0,1),(1,2)} dist 1 each, avg 1; W = 0.5 *)
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 3) ]
      ~extended:[ (0, 1); (1, 2) ] ~weight:0.5
  in
  check (Alcotest.float 1e-9) "3/1 + 0.5*1" 3.5 v

let test_lookahead_empty_extended () =
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 2) ] ~extended:[]
      ~weight:0.5
  in
  check (Alcotest.float 1e-9) "front only" 2.0 v

let test_lookahead_zero_weight_ignores_extended () =
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 2) ]
      ~extended:[ (0, 4) ] ~weight:0.0
  in
  check (Alcotest.float 1e-9) "W=0" 2.0 v

let test_decay_scales () =
  let decay = [| 1.0; 1.0; 1.2; 1.0; 1.0 |] in
  check (Alcotest.float 1e-9) "max decay" (1.2 *. 10.0)
    (Heuristic.with_decay ~decay ~p1:1 ~p2:2 10.0);
  check (Alcotest.float 1e-9) "no decay" 10.0
    (Heuristic.with_decay ~decay ~p1:0 ~p2:3 10.0)

let test_score_dispatch () =
  let decay = [| 1.0; 1.0; 1.0; 1.0; 2.0 |] in
  let front = [ (0, 3) ] and extended = [ (0, 1) ] in
  let score h p1 =
    Heuristic.score ~heuristic:h ~dist ~l2p:identity ~front ~extended
      ~weight:0.5 ~decay ~p1 ~p2:1
  in
  check (Alcotest.float 1e-9) "basic ignores E and decay" 3.0
    (score Config.Basic 4);
  check (Alcotest.float 1e-9) "lookahead ignores decay" 3.5
    (score Config.Lookahead 4);
  check (Alcotest.float 1e-9) "decay multiplies" 7.0 (score Config.Decay 4);
  check (Alcotest.float 1e-9) "decay neutral at rest" 3.5
    (score Config.Decay 0)

let test_swap_that_helps_scores_lower () =
  (* F = {(0,4)} on a line. A SWAP moving q0 from P0 to P1 reduces the
     distance; evaluate the heuristic under both tentative mappings. *)
  let before = Heuristic.basic ~dist ~l2p:identity [ (0, 4) ] in
  let moved = [| 1; 0; 2; 3; 4 |] in
  let after = Heuristic.basic ~dist ~l2p:moved [ (0, 4) ] in
  check Alcotest.bool "improvement visible" true (after < before)

let suite =
  [
    tc "basic sums distances (Eq. 1)" `Quick test_basic_sums_distances;
    tc "basic uses mapping" `Quick test_basic_uses_mapping;
    tc "lookahead normalises (Eq. 2)" `Quick test_lookahead_normalises;
    tc "lookahead with empty E" `Quick test_lookahead_empty_extended;
    tc "lookahead W=0" `Quick test_lookahead_zero_weight_ignores_extended;
    tc "decay scales by max" `Quick test_decay_scales;
    tc "score dispatch" `Quick test_score_dispatch;
    tc "helpful swap scores lower" `Quick test_swap_that_helps_scores_lower;
  ]
