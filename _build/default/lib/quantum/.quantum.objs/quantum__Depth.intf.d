lib/quantum/depth.mli: Circuit Gate
