lib/workloads/qaoa.ml: List Quantum Random
