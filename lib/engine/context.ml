module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type routed = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
}

type t = {
  config : Config.t;
  coupling : Coupling.t;
  circuit : Circuit.t;
  noise : Noise.t option;
  dist : float array;  (* row-major, stride = Coupling.n_qubits coupling *)
  trial_mode : Trial_runner.mode;
  fixed_initial : Mapping.t option;
  dag_forward : Dag.t option;
  dag_backward : Dag.t option;
  trial_mappings : Mapping.t array option;
  routed : routed option;
  verified : bool option;
  metrics : (string * float) list;
  counters : (string * int) list;
}

let check_device coupling circuit =
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Engine.Context: circuit wider than device";
  if Circuit.n_qubits circuit > 1 && not (Coupling.is_connected_graph coupling)
  then invalid_arg "Engine.Context: disconnected coupling graph"

(* Flat row-major hop distances, derived once from the Floyd–Warshall
   cache; every pass, trial and traversal direction shares this array. *)
let hop_distances coupling =
  let d = Coupling.distance_matrix coupling in
  let n = Coupling.n_qubits coupling in
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- float_of_int row.(j)
    done
  done;
  flat

let create ?(config = Config.default) ?dist ?noise
    ?(trial_mode = Trial_runner.Sequential) ?initial coupling circuit =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Context: " ^ msg));
  check_device coupling circuit;
  {
    config;
    coupling;
    circuit;
    noise;
    dist =
      (match dist with
      | Some d -> Sabre_core.Heuristic.flatten_dist d
      | None -> hop_distances coupling);
    trial_mode;
    fixed_initial = Option.map Mapping.copy initial;
    dag_forward = None;
    dag_backward = None;
    trial_mappings = None;
    routed = None;
    verified = None;
    metrics = [];
    counters = [];
  }

let add_metric ctx name v = { ctx with metrics = (name, v) :: ctx.metrics }

let add_counter ctx ~pass name v =
  { ctx with counters = (pass ^ "." ^ name, v) :: ctx.counters }

let metrics ctx = List.rev ctx.metrics
let counters ctx = List.rev ctx.counters

let routed_exn ctx =
  match ctx.routed with
  | Some r -> r
  | None -> invalid_arg "Engine.Context: no routing pass has run"

let stats ctx ~time_s =
  let r = routed_exn ctx in
  Stats.summary ~original:ctx.circuit ~routed:r.physical ~n_swaps:r.n_swaps
    ~search_steps:r.search_steps ~fallback_swaps:r.fallback_swaps
    ~traversals_run:r.traversals_run ~time_s
    ~first_traversal_swaps:r.first_swaps
