test/suite_dag.ml: Alcotest Array List Quantum
