(* Content-addressed compile cache.

   These tests serialise on the global cache (private byte budget +
   clear at the start, restore at the end of each case), so they stay
   meaningful whatever order alcotest runs them in. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module RP = Sabre_core.Routing_pass
module Cache = Engine.Compile_cache

let check = Alcotest.check
let tc = Alcotest.test_case

let sabre () =
  Engine.Router.register Engine.Sabre_router.router;
  match Engine.Router.find Engine.Sabre_router.name with
  | Some r -> r
  | None -> Alcotest.fail "sabre router missing"

let with_cache bytes f =
  let saved = Cache.capacity_bytes () in
  Fun.protect
    ~finally:(fun () -> Cache.set_capacity_bytes saved)
    (fun () ->
      Cache.set_capacity_bytes bytes;
      Cache.clear ();
      f ())

let route ?config ?cache_spec ~router device circuit =
  let ctx = Engine.Context.create ?config ?cache_spec device circuit in
  let ctx = Engine.Pipeline.run (Engine.Pipeline.default ~router ()) ctx in
  Engine.Context.routed_exn ctx

let same_routed label (a : Engine.Context.routed) (b : Engine.Context.routed) =
  check Alcotest.bool (label ^ ": physical circuit") true
    (Circuit.equal a.physical b.physical);
  check
    (Alcotest.array Alcotest.int)
    (label ^ ": initial mapping")
    (Mapping.l2p_array a.trial_initial)
    (Mapping.l2p_array b.trial_initial);
  check
    (Alcotest.array Alcotest.int)
    (label ^ ": final mapping")
    (Mapping.l2p_array a.final_mapping)
    (Mapping.l2p_array b.final_mapping);
  check Alcotest.int (label ^ ": n_swaps") a.n_swaps b.n_swaps;
  check Alcotest.int (label ^ ": first_swaps") a.first_swaps b.first_swaps;
  check Alcotest.int (label ^ ": search_steps") a.search_steps b.search_steps;
  check Alcotest.int (label ^ ": fallback_swaps") a.fallback_swaps
    b.fallback_swaps;
  check Alcotest.int (label ^ ": traversals_run") a.traversals_run
    b.traversals_run

let test_hit_round_trip () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 6 in
      let plain = route ~router device circuit in
      let cold = route ~cache_spec:"sabre" ~router device circuit in
      let s1 = Cache.stats () in
      check Alcotest.int "cold route misses once" 1 s1.Cache.misses;
      check Alcotest.int "cold route inserts once" 1 s1.Cache.insertions;
      check Alcotest.int "one resident entry" 1 s1.Cache.entries;
      check Alcotest.bool "bytes accounted" true (s1.Cache.bytes > 0);
      let warm = route ~cache_spec:"sabre" ~router device circuit in
      let s2 = Cache.stats () in
      check Alcotest.int "warm route hits" 1 s2.Cache.hits;
      check Alcotest.int "warm route does not re-insert" 1 s2.Cache.insertions;
      same_routed "cold vs uncached" cold plain;
      same_routed "warm vs uncached" warm plain)

let test_context_reports_cache_status () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 4 in
      let counters spec =
        let ctx = Engine.Context.create ?cache_spec:spec device circuit in
        let ctx = Engine.Pipeline.run (Engine.Pipeline.default ~router ()) ctx in
        Engine.Context.counters ctx
      in
      let cold = counters (Some "sabre") in
      check Alcotest.int "cold create counts a compile-cache miss" 1
        (List.assoc "context.compile_cache_miss" cold);
      let warm = counters (Some "sabre") in
      check Alcotest.int "warm create counts a compile-cache hit" 1
        (List.assoc "context.compile_cache_hit" warm);
      let off = counters None in
      check Alcotest.bool "no cache_spec emits no compile-cache counters" true
        (not (List.mem_assoc "context.compile_cache_hit" off)
        && not (List.mem_assoc "context.compile_cache_miss" off)))

let test_disabled_cache_routes_normally () =
  let router = sabre () in
  with_cache 0 (fun () ->
      check Alcotest.bool "capacity 0 disables" false (Cache.enabled ());
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 4 in
      let a = route ~cache_spec:"sabre" ~router device circuit in
      let b = route ~cache_spec:"sabre" ~router device circuit in
      same_routed "disabled cache still routes" a b;
      let s = Cache.stats () in
      check Alcotest.int "no cache traffic while disabled" 0
        (s.Cache.hits + s.Cache.misses + s.Cache.insertions))

let test_single_flight_one_route () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 8 in
      (* warm the dist cache outside the race so only the compile cache
         is exercised concurrently with it *)
      ignore (Hardware.Dist_cache.lookup device);
      let n = 4 in
      let gate = Atomic.make 0 in
      let worker _ =
        Domain.spawn (fun () ->
            Atomic.incr gate;
            while Atomic.get gate < n do
              Domain.cpu_relax ()
            done;
            route ~cache_spec:"sabre" ~router device circuit)
      in
      let results = Array.map Domain.join (Array.init n worker) in
      let s = Cache.stats () in
      check Alcotest.int "exactly one insertion" 1 s.Cache.insertions;
      check Alcotest.int "one resident entry" 1 s.Cache.entries;
      Array.iter (same_routed "domains agree" results.(0)) results)

let test_lru_eviction_under_byte_budget () =
  let router = sabre () in
  let config seed = { Config.default with Config.seed } in
  let device = Devices.ibm_q20_tokyo () in
  let circuit = Workloads.Qft.circuit 5 in
  let key seed =
    Cache.key ~circuit ~coupling:device ~config:(config seed) ~scoring:RP.Delta
      ~spec:"sabre"
  in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      (* measure one entry's cost, then shrink the budget so each of
         the 8 shards holds about two and a half entries; 32 distinct
         seeds must then evict the cold majority while the store stays
         within the byte budget *)
      ignore (route ~config:(config 0) ~cache_spec:"sabre" ~router device circuit);
      let per_entry = (Cache.stats ()).Cache.bytes in
      check Alcotest.bool "entry cost accounted" true (per_entry > 0);
      Cache.set_capacity_bytes (8 * ((2 * per_entry) + (per_entry / 2)));
      Cache.clear ();
      let n = 32 in
      for seed = 1 to n do
        ignore
          (route ~config:(config seed) ~cache_spec:"sabre" ~router device
             circuit)
      done;
      let s = Cache.stats () in
      check Alcotest.bool "evictions happened" true (s.Cache.evictions >= 1);
      check Alcotest.bool "not everything survived" true (s.Cache.entries < n);
      check Alcotest.bool "something survived" true (s.Cache.entries >= 1);
      check Alcotest.int "residency accounting balances" s.Cache.entries
        (s.Cache.insertions - s.Cache.evictions);
      check Alcotest.bool "stays within the byte budget" true
        (s.Cache.bytes <= Cache.capacity_bytes ());
      check Alcotest.bool "warmest entry resident" true
        (Cache.find (key n) <> None))

let raising_router : Engine.Router.t =
  (module struct
    let name = "cache-test-raising"
    let deterministic = true
    let derives_seed = false

    let route _ctx ~initial:_ =
      raise (Engine.Router.Route_failed "poisoned route")
  end)

let test_poisoned_route_not_cached () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 4 in
      let key =
        Cache.key ~circuit ~coupling:device ~config:Config.default
          ~scoring:RP.Delta ~spec:"sabre"
      in
      (* a failing route under the same cache key aborts its flight:
         the failure is not cached and the slot is not wedged *)
      (match
         route ~cache_spec:"sabre" ~router:raising_router device circuit
       with
      | _ -> Alcotest.fail "raising router unexpectedly routed"
      | exception Engine.Router.Route_failed _ -> ());
      check Alcotest.bool "failure not cached" true (Cache.find key = None);
      check Alcotest.int "nothing inserted" 0 (Cache.stats ()).Cache.insertions;
      (* the key is immediately routable again *)
      let r = route ~cache_spec:"sabre" ~router device circuit in
      check Alcotest.bool "recovered flight inserted" true
        ((Cache.stats ()).Cache.insertions = 1);
      match Cache.find key with
      | None -> Alcotest.fail "recovered result not resident"
      | Some cached ->
        check Alcotest.bool "recovered result identical" true
          (Circuit.equal cached.Cache.physical r.Engine.Context.physical))

let test_abort_wakes_waiter_who_inherits () =
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let key = "suite-compile-cache-poisoned-flight" in
      (match Cache.acquire key with
      | Cache.Compute -> ()
      | Cache.Hit _ -> Alcotest.fail "fresh key cannot hit");
      let waiter =
        Domain.spawn (fun () ->
            match Cache.acquire key with
            | Cache.Compute ->
              (* inherited the aborted flight; resolve it so the slot
                 is not left pending *)
              Cache.abort key;
              true
            | Cache.Hit _ -> false)
      in
      (* give the waiter time to block on the in-flight slot *)
      Thread.delay 0.05;
      Cache.abort key;
      check Alcotest.bool "waiter inherited the flight" true
        (Domain.join waiter);
      check Alcotest.bool "aborted key not resident" true
        (Cache.find key = None))

let test_inflight_probe_counts_once () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 4 in
      (* route once for real so we hold a routed value to resolve the
         synthetic flight with *)
      ignore (route ~cache_spec:"sabre" ~router device circuit);
      let donor_key =
        Cache.key ~circuit ~coupling:device ~config:Config.default
          ~scoring:RP.Delta ~spec:"sabre"
      in
      let routed =
        match Cache.find donor_key with
        | Some r -> r
        | None -> Alcotest.fail "donor entry missing"
      in
      Cache.reset_stats ();
      let key = "suite-compile-cache-inflight-stats" in
      (* owner: cold probe counts the miss, then claims the flight *)
      check Alcotest.bool "fresh probe misses" true (Cache.find key = None);
      (match Cache.acquire key with
      | Cache.Compute -> ()
      | Cache.Hit _ -> Alcotest.fail "fresh key cannot hit");
      let waiter =
        Domain.spawn (fun () ->
            (* this probe lands on the in-flight slot: it must NOT
               count a miss — acquire classifies it as a hit below *)
            (match Cache.find key with
            | None -> ()
            | Some _ -> Alcotest.fail "in-flight probe returned a result");
            match Cache.acquire key with
            | Cache.Hit (_, waited) -> waited
            | Cache.Compute -> Alcotest.fail "waiter should receive the fill")
      in
      (* give the waiter time to block on the in-flight slot *)
      Thread.delay 0.05;
      Cache.fill key routed;
      check Alcotest.bool "waiter blocked on the flight" true
        (Domain.join waiter);
      let s = Cache.stats () in
      check Alcotest.int "one miss: the owner's cold probe" 1 s.Cache.misses;
      check Alcotest.int "one hit: the wait-resolved probe" 1 s.Cache.hits;
      check Alcotest.int "one recorded wait" 1 s.Cache.inflight_waits)

let test_coupling_digest_ignores_edge_presentation () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  let a = Coupling.create ~n_qubits:4 edges in
  let b = Coupling.create ~n_qubits:4 (List.rev edges) in
  let c =
    Coupling.create ~n_qubits:4 (List.map (fun (u, v) -> (v, u)) edges)
  in
  check Alcotest.string "permuted edge list digests equal"
    (Coupling.digest a) (Coupling.digest b);
  check Alcotest.string "flipped endpoints digest equal" (Coupling.digest a)
    (Coupling.digest c);
  let ring = Coupling.create ~n_qubits:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check Alcotest.bool "different topology digests differ" true
    (Coupling.digest a <> Coupling.digest ring)

let test_config_digest_float_canonicalisation () =
  let d w = Config.digest { Config.default with Config.extended_set_weight = w } in
  check Alcotest.string "equal weight, equal digest" (d 0.5) (d 0.5);
  check Alcotest.string "negative zero is stable" (d (-0.0)) (d (-0.0));
  check Alcotest.bool "0.0 and -0.0 do not collide" true (d 0.0 <> d (-0.0));
  check Alcotest.string "NaN is stable" (d Float.nan) (d Float.nan);
  check Alcotest.string "subnormal is stable" (d 1e-310) (d 1e-310);
  check Alcotest.bool "subnormal distinct from zero" true (d 1e-310 <> d 0.0);
  check Alcotest.bool "seed participates" true
    (Config.digest Config.default
    <> Config.digest { Config.default with Config.seed = Config.default.Config.seed + 1 })

let test_key_component_sensitivity () =
  let device = Devices.ibm_q20_tokyo () in
  let circuit = Workloads.Qft.circuit 4 in
  let key ?(config = Config.default) ?(scoring = RP.Delta) ?(spec = "sabre")
      ?(circuit = circuit) ?(coupling = device) () =
    Cache.key ~circuit ~coupling ~config ~scoring ~spec
  in
  check Alcotest.string "key is deterministic" (key ()) (key ());
  check Alcotest.bool "scoring mode distinguishes" true
    (key () <> key ~scoring:RP.Full ());
  check Alcotest.bool "route spec distinguishes" true
    (key () <> key ~spec:"hail/iso" ());
  check Alcotest.bool "config seed distinguishes" true
    (key () <> key ~config:{ Config.default with Config.seed = 7 } ());
  check Alcotest.bool "device distinguishes" true
    (key () <> key ~coupling:(Devices.ibm_qx5 ()) ());
  (* strict program order: interleavings with identical per-qubit
     sequences must not share a key *)
  let a =
    Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ]
  in
  let b =
    Circuit.create ~n_qubits:4 [ Gate.Cnot (2, 3); Gate.Cnot (0, 1) ]
  in
  check Alcotest.bool "program order distinguishes" true
    (key ~circuit:a () <> key ~circuit:b ())

let test_clear_and_capacity () =
  let router = sabre () in
  with_cache
    (64 * 1024 * 1024)
    (fun () ->
      let device = Devices.ibm_q20_tokyo () in
      let circuit = Workloads.Qft.circuit 4 in
      ignore (route ~cache_spec:"sabre" ~router device circuit);
      check Alcotest.bool "entry resident" true ((Cache.stats ()).Cache.entries = 1);
      Cache.clear ();
      let s = Cache.stats () in
      check Alcotest.int "clear drops entries" 0 s.Cache.entries;
      check Alcotest.int "clear zeroes bytes" 0 s.Cache.bytes;
      check Alcotest.int "clear zeroes counters" 0
        (s.Cache.hits + s.Cache.misses + s.Cache.insertions);
      check Alcotest.bool "rejects negative budget" true
        (match Cache.set_capacity_bytes (-1) with
        | () -> false
        | exception Invalid_argument _ -> true))

let suite =
  [
    tc "hit round trip is byte-identical" `Quick test_hit_round_trip;
    tc "context reports cache status" `Quick test_context_reports_cache_status;
    tc "disabled cache routes normally" `Quick test_disabled_cache_routes_normally;
    tc "single flight: one route, shared result" `Quick
      test_single_flight_one_route;
    tc "LRU eviction under the byte budget" `Quick
      test_lru_eviction_under_byte_budget;
    tc "poisoned route is not cached" `Quick test_poisoned_route_not_cached;
    tc "abort wakes a waiter who inherits" `Quick
      test_abort_wakes_waiter_who_inherits;
    tc "in-flight probe counts one hit, not a miss" `Quick
      test_inflight_probe_counts_once;
    tc "coupling digest ignores edge presentation" `Quick
      test_coupling_digest_ignores_edge_presentation;
    tc "config digest canonicalises floats" `Quick
      test_config_digest_float_canonicalisation;
    tc "key is sensitive to every component" `Quick
      test_key_component_sensitivity;
    tc "clear and capacity validation" `Quick test_clear_and_capacity;
  ]
