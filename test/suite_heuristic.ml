module Config = Sabre.Config
module Heuristic = Sabre.Heuristic

let check = Alcotest.check
let tc = Alcotest.test_case

(* Line device 0-1-2-3-4: distances are |i-j|. *)
let dist =
  Hardware.Coupling.distance_matrix (Hardware.Devices.linear 5)
  |> Array.map (Array.map float_of_int)

let checkf msg expected actual = check (Alcotest.float 1e-9) msg expected actual

let identity = [| 0; 1; 2; 3; 4 |]

let test_basic_sums_distances () =
  checkf "one pair" 3.0 (Heuristic.basic ~dist ~l2p:identity [ (0, 3) ]);
  checkf "two pairs" 5.0
    (Heuristic.basic ~dist ~l2p:identity [ (0, 3); (1, 3) ]);
  checkf "empty front" 0.0 (Heuristic.basic ~dist ~l2p:identity [])

let test_basic_uses_mapping () =
  (* logical 0 placed on P4: distance to logical 1 on P1 is 3 *)
  let l2p = [| 4; 1; 2; 3; 0 |] in
  checkf "remapped" 3.0 (Heuristic.basic ~dist ~l2p [ (0, 1) ])

let test_lookahead_normalises () =
  (* F = {(0,3)} dist 3; E = {(0,1),(1,2)} dist 1 each, avg 1; W = 0.5 *)
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 3) ]
      ~extended:[ (0, 1); (1, 2) ] ~weight:0.5
  in
  check (Alcotest.float 1e-9) "3/1 + 0.5*1" 3.5 v

let test_lookahead_empty_extended () =
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 2) ] ~extended:[]
      ~weight:0.5
  in
  check (Alcotest.float 1e-9) "front only" 2.0 v

let test_lookahead_zero_weight_ignores_extended () =
  let v =
    Heuristic.lookahead ~dist ~l2p:identity ~front:[ (0, 2) ]
      ~extended:[ (0, 4) ] ~weight:0.0
  in
  check (Alcotest.float 1e-9) "W=0" 2.0 v

let test_decay_scales () =
  let decay = [| 1.0; 1.0; 1.2; 1.0; 1.0 |] in
  check (Alcotest.float 1e-9) "max decay" (1.2 *. 10.0)
    (Heuristic.with_decay ~decay ~p1:1 ~p2:2 10.0);
  check (Alcotest.float 1e-9) "no decay" 10.0
    (Heuristic.with_decay ~decay ~p1:0 ~p2:3 10.0)

let test_score_dispatch () =
  let decay = [| 1.0; 1.0; 1.0; 1.0; 2.0 |] in
  let front = [ (0, 3) ] and extended = [ (0, 1) ] in
  let score h p1 =
    Heuristic.score ~heuristic:h ~dist ~l2p:identity ~front ~extended
      ~weight:0.5 ~decay ~p1 ~p2:1
  in
  check (Alcotest.float 1e-9) "basic ignores E and decay" 3.0
    (score Config.Basic 4);
  check (Alcotest.float 1e-9) "lookahead ignores decay" 3.5
    (score Config.Lookahead 4);
  check (Alcotest.float 1e-9) "decay multiplies" 7.0 (score Config.Decay 4);
  check (Alcotest.float 1e-9) "decay neutral at rest" 3.5
    (score Config.Decay 0)

let test_swap_that_helps_scores_lower () =
  (* F = {(0,4)} on a line. A SWAP moving q0 from P0 to P1 reduces the
     distance; evaluate the heuristic under both tentative mappings. *)
  let before = Heuristic.basic ~dist ~l2p:identity [ (0, 4) ] in
  let moved = [| 1; 0; 2; 3; 4 |] in
  let after = Heuristic.basic ~dist ~l2p:moved [ (0, 4) ] in
  check Alcotest.bool "improvement visible" true (after < before)

let test_average_distance_single_traversal () =
  (* the satellite fix: one fold now carries the count along with the
     sum — values must stay bit-identical to sum /. length on the same
     pair order (here with fractional per-pair distances so division
     actually rounds) *)
  let frac =
    Array.init 5 (fun i -> Array.init 5 (fun j -> float_of_int (abs (i - j)) /. 3.0))
  in
  let pairs = [ (0, 3); (1, 4); (0, 1); (2, 4) ] in
  let expected =
    Heuristic.basic ~dist:frac ~l2p:identity pairs
    /. float_of_int (List.length pairs)
  in
  check Alcotest.bool "bit-identical to sum/length" true
    (Float.equal expected
       (Heuristic.average_distance ~dist:frac ~l2p:identity pairs));
  checkf "empty pairs still 0" 0.0
    (Heuristic.average_distance ~dist:frac ~l2p:identity [])

let test_int_sum_matches_float_sum () =
  let flat = Heuristic.flatten_dist dist in
  let flat_int = Option.get (Heuristic.dist_int_of_flat flat) in
  let q1 = [| 0; 1; 0; 2 |] and q2 = [| 3; 4; 1; 4 |] in
  let s =
    Heuristic.sum_int ~dist:flat_int ~stride:5 ~l2p:identity ~q1 ~q2 ~len:4
  in
  let f =
    Heuristic.basic_flat ~dist:flat ~stride:5 ~l2p:identity ~q1 ~q2 ~len:4
  in
  check Alcotest.bool "float sum = float_of_int int sum" true
    (Float.equal f (float_of_int s));
  check Alcotest.int "hand value: 3+3+1+2" 9 s

let test_score_of_sums_matches_score_flat () =
  (* the reconstruction mirrors score_flat's expression shape exactly:
     compare bit-for-bit on all three modes, including an empty E *)
  let flat = Heuristic.flatten_dist dist in
  let flat_int = Option.get (Heuristic.dist_int_of_flat flat) in
  let decay = [| 1.0; 1.3; 1.0; 1.0; 2.0 |] in
  let fq1 = [| 0; 1 |] and fq2 = [| 3; 4 |] in
  let eq1 = [| 0; 1; 2 |] and eq2 = [| 1; 2; 4 |] in
  List.iter
    (fun (flen, elen) ->
      let fsum =
        Heuristic.sum_int ~dist:flat_int ~stride:5 ~l2p:identity ~q1:fq1
          ~q2:fq2 ~len:flen
      and esum =
        Heuristic.sum_int ~dist:flat_int ~stride:5 ~l2p:identity ~q1:eq1
          ~q2:eq2 ~len:elen
      in
      List.iter
        (fun heuristic ->
          let full =
            Heuristic.score_flat ~heuristic ~dist:flat ~stride:5
              ~l2p:identity ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight:0.5
              ~decay ~p1:1 ~p2:4
          in
          let rebuilt =
            Heuristic.score_of_sums_int ~heuristic ~fsum ~flen ~esum ~elen
              ~weight:0.5 ~decay ~p1:1 ~p2:4
          in
          check Alcotest.bool "bit-identical reconstruction" true
            (Float.equal full rebuilt))
        [ Config.Basic; Config.Lookahead; Config.Decay ])
    [ (2, 3); (2, 0); (1, 1) ]

let test_dist_int_of_flat_rejects_non_integer () =
  check Alcotest.bool "fractional entry rejected" true
    (Heuristic.dist_int_of_flat [| 0.0; 0.5; 0.5; 0.0 |] = None);
  check Alcotest.bool "negative entry rejected" true
    (Heuristic.dist_int_of_flat [| 0.0; -1.0; -1.0; 0.0 |] = None);
  check Alcotest.bool "oversized entry rejected" true
    (Heuristic.dist_int_of_flat [| 0.0; 1e18; 1e18; 0.0 |] = None);
  match Heuristic.dist_int_of_flat [| 0.0; 2.0; 2.0; 0.0 |] with
  | Some ints ->
    check (Alcotest.array Alcotest.int) "integer view" [| 0; 2; 2; 0 |] ints
  | None -> Alcotest.fail "integer matrix wrongly rejected"

let suite =
  [
    tc "basic sums distances (Eq. 1)" `Quick test_basic_sums_distances;
    tc "basic uses mapping" `Quick test_basic_uses_mapping;
    tc "lookahead normalises (Eq. 2)" `Quick test_lookahead_normalises;
    tc "lookahead with empty E" `Quick test_lookahead_empty_extended;
    tc "lookahead W=0" `Quick test_lookahead_zero_weight_ignores_extended;
    tc "decay scales by max" `Quick test_decay_scales;
    tc "score dispatch" `Quick test_score_dispatch;
    tc "helpful swap scores lower" `Quick test_swap_that_helps_scores_lower;
    tc "average_distance single traversal" `Quick
      test_average_distance_single_traversal;
    tc "int sum matches float sum" `Quick test_int_sum_matches_float_sum;
    tc "score_of_sums_int mirrors score_flat" `Quick
      test_score_of_sums_matches_score_flat;
    tc "dist_int_of_flat gating" `Quick
      test_dist_int_of_flat_rejects_non_integer;
  ]
