test/suite_circuit.ml: Alcotest List Quantum Workloads
