lib/hardware/coupling.ml: Array Buffer Format Fun Hashtbl Int List Printf Queue
