module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats
module Seeder = Sabre_core.Initial_mapping.Seeder

type objective = Swaps | Depth | Success_prob

let objective_name = function
  | Swaps -> "swaps"
  | Depth -> "depth"
  | Success_prob -> "success"

let objective_of_string = function
  | "swaps" -> Ok Swaps
  | "depth" -> Ok Depth
  | "success" | "success-prob" -> Ok Success_prob
  | s ->
    Error
      (Printf.sprintf
         "unknown objective %S (available: swaps, depth, success)" s)

type entry = { router : string; seeder : string }

let entry_name e =
  if e.seeder = Seeder.reverse_traversal.Seeder.name then e.router
  else e.router ^ "/" ^ e.seeder

let parse_spec spec =
  let parts = String.split_on_char ',' spec |> List.map String.trim in
  if parts = [] || List.exists (fun p -> p = "") parts then
    Error (Printf.sprintf "bad portfolio spec %S: expected ROUTER[/SEEDER],..." spec)
  else
    let parse p =
      match String.index_opt p '/' with
      | None -> Ok { router = p; seeder = Seeder.reverse_traversal.Seeder.name }
      | Some i ->
        let router = String.sub p 0 i
        and seeder = String.sub p (i + 1) (String.length p - i - 1) in
        if router = "" || seeder = "" || String.contains seeder '/' then
          Error (Printf.sprintf "bad portfolio entry %S: expected ROUTER[/SEEDER]" p)
        else Ok { router; seeder }
    in
    List.fold_right
      (fun p acc ->
        match (parse p, acc) with
        | Ok e, Ok es -> Ok (e :: es)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      parts (Ok [])

type member = {
  entry : entry;
  physical : Circuit.t;
  initial : Mapping.t;
  final : Mapping.t;
  n_swaps : int;
  depth : int;
  success_prob : float option;
  stats : Stats.t;
}

type outcome = (member, string) result

type report = {
  objective : objective;
  outcomes : outcome array;
  winner : int;
  wall_s : float;
  domains : int;
}

let winner_member r =
  match r.outcomes.(r.winner) with
  | Ok m -> m
  | Error _ -> assert false

(* lower-is-better scalar; success probability negated so one ordering
   serves all three objectives *)
let objective_value objective m =
  match objective with
  | Swaps -> float_of_int m.n_swaps
  | Depth -> float_of_int m.depth
  | Success_prob -> (
    match m.success_prob with
    | Some p -> -.p
    | None -> invalid_arg "Portfolio.objective_value: no success probability")

(* strict improvement only: ties keep the earlier entry, the same
   first-best-wins rule Trial_runner.best applies to trials *)
let better objective (_, a) (_, b) =
  match (a, b) with
  | Ok a, Ok b -> objective_value objective a < objective_value objective b
  | Ok _, Error _ -> true
  | Error _, _ -> false

let wall = Unix.gettimeofday

let run ?(domains = 1) ?(objective = Swaps) ?(config = Config.default) ?noise
    ?(verify = false) ?(instrument = Instrument.null) coupling circuit entries
    =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg));
  if entries = [] then invalid_arg "Engine.Portfolio: empty entry list";
  let resolved =
    List.map
      (fun e ->
        let router =
          match Router.find_suggest e.router with
          | Ok r -> r
          | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg)
        in
        let seeder =
          match Seeder.find_suggest e.seeder with
          | Ok s -> s
          | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg)
        in
        (e, router, seeder))
      entries
    |> Array.of_list
  in
  (* success probability needs a noise model; default to the uniform
     Tokyo-average calibration over this device *)
  let noise =
    match (noise, objective) with
    | (Some _ as n), _ -> n
    | None, Success_prob -> Some (Noise.uniform coupling)
    | None, _ -> None
  in
  (* warm the device-keyed distance cache once on the calling domain so
     workers start from a hit instead of racing on the first miss *)
  ignore (Hardware.Dist_cache.hop_distances coupling);
  let compile (e, router, seeder) () =
    match
      Context.create ~config ~trial_mode:Trial_runner.Sequential ?noise
        ~instrument coupling circuit
      |> Pipeline.run ~instrument
           (Pipeline.default ~router
              ~initial_strategy:(Initial_mapping_pass.Seeded seeder) ~verify ())
    with
    | ctx ->
      let r = Context.routed_exn ctx in
      let physical = r.Context.physical in
      Ok
        {
          entry = e;
          physical;
          initial = r.Context.trial_initial;
          final = r.Context.final_mapping;
          n_swaps = r.Context.n_swaps;
          depth = Quantum.Depth.depth_swap3 physical;
          success_prob =
            Option.map
              (fun n -> Noise.circuit_success_probability n physical)
              noise;
          stats = Context.stats ctx ~time_s:0.0;
        }
    | exception Router.Route_failed msg -> Error msg
    | exception Verify_pass.Verify_failed msg -> Error msg
    | exception Invalid_argument msg -> Error msg
  in
  let t0 = wall () in
  let domains = max 1 (min domains (Array.length resolved)) in
  let outcomes = Scheduler.run ~domains (Array.map compile resolved) in
  let wall_s = wall () -. t0 in
  Array.iteri
    (fun i o ->
      let name = entry_name (let e, _, _ = resolved.(i) in e) in
      let count n v =
        instrument.Instrument.emit
          (Instrument.Counter { pass = "portfolio"; name = name ^ "." ^ n; value = v })
      in
      match o with
      | Ok m ->
        count "swaps" m.n_swaps;
        count "depth" m.depth
      | Error _ -> count "failed" 1)
    outcomes;
  let indexed = Array.mapi (fun i o -> (i, o)) outcomes in
  let winner_i, winner = Trial_runner.best ~better:(better objective) indexed in
  (match winner with
  | Ok _ -> ()
  | Error _ ->
    let msgs =
      Array.to_list outcomes
      |> List.mapi (fun i o ->
             let e, _, _ = resolved.(i) in
             match o with
             | Error m -> entry_name e ^ ": " ^ m
             | Ok _ -> assert false)
    in
    raise
      (Router.Route_failed
         ("portfolio: every entry failed — " ^ String.concat "; " msgs)));
  instrument.Instrument.emit
    (Instrument.Counter { pass = "portfolio"; name = "winner"; value = winner_i });
  { objective; outcomes; winner = winner_i; wall_s; domains }
