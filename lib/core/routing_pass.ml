module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

type scoring_mode = Delta | Full
type verdict = Continue | Stop
type progress = { swaps : int; decisions : int; depth_lb : int }
type hook = { every : int; notify : progress -> verdict }

exception Cancelled

type result = {
  physical : Circuit.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  scoring : Stats.scoring;
}

type stream_result = {
  s_final_mapping : Mapping.t;
  s_n_swaps : int;
  s_search_steps : int;
  s_fallback_swaps : int;
  s_scoring : Stats.scoring;
  s_gates_in : int;
  s_gates_out : int;
  s_peak_window : int;
}

(* Per-logical-qubit incidence index over the front/extended pair slots,
   in CSR form: [idx.(off.(q) .. off.(q+1)-1)] are the slot ids whose
   pair contains logical qubit [q]. Keyed by *logical* qubits — not
   physical ones — so the index is π-independent: it stays valid across
   every SWAP applied while the front is blocked, and only needs a
   rebuild when front membership changes (tracked by [built_gen], the
   front generation the index was built at). Built by an
   allocation-free counting sort; arrays grow to high-water capacity. *)
module Incidence = struct
  type t = {
    mutable off : int array;  (* n_logical+1 exclusive prefix sums *)
    mutable idx : int array;  (* 2·len slot ids, grouped by qubit *)
    mutable built_gen : int;  (* front generation reflected; -1 = none *)
  }

  let create () = { off = [||]; idx = [||]; built_gen = -1 }
  let invalidate t = t.built_gen <- -1
  let generation t = t.built_gen

  let build t ~gen ~n_logical ~q1 ~q2 ~len =
    let n1 = n_logical + 1 in
    if Array.length t.off < n1 then t.off <- Array.make (max n1 16) 0
    else Array.fill t.off 0 n1 0;
    if Array.length t.idx < 2 * len then
      t.idx <- Array.make (max (2 * len) 16) 0;
    let off = t.off and idx = t.idx in
    (* count → exclusive prefix → cursor fill → shift back to starts *)
    for k = 0 to len - 1 do
      off.(q1.(k)) <- off.(q1.(k)) + 1;
      off.(q2.(k)) <- off.(q2.(k)) + 1
    done;
    let start = ref 0 in
    for q = 0 to n_logical do
      let c = off.(q) in
      off.(q) <- !start;
      start := !start + c
    done;
    for k = 0 to len - 1 do
      idx.(off.(q1.(k))) <- k;
      off.(q1.(k)) <- off.(q1.(k)) + 1;
      idx.(off.(q2.(k))) <- k;
      off.(q2.(k)) <- off.(q2.(k)) + 1
    done;
    for q = n_logical downto 1 do
      off.(q) <- off.(q - 1)
    done;
    off.(0) <- 0;
    t.built_gen <- gen

  let degree t q = t.off.(q + 1) - t.off.(q)

  let iter t q f =
    for s = t.off.(q) to t.off.(q + 1) - 1 do
      f t.idx.(s)
    done
end

(* Growable int FIFO: the ready queue and the extended-set BFS both ran
   on [int Queue.t], one boxed cell per push; this is a flat ring buffer
   with identical FIFO semantics and no per-element allocation. *)
module Intq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create n = { buf = Array.make (max 16 n) 0; head = 0; len = 0 }
  let is_empty q = q.len = 0
  let clear q =
    q.head <- 0;
    q.len <- 0

  let push q x =
    let cap = Array.length q.buf in
    if q.len = cap then begin
      let buf = Array.make (2 * cap) 0 in
      let tail = cap - q.head in
      Array.blit q.buf q.head buf 0 tail;
      Array.blit q.buf 0 buf tail q.head;
      q.buf <- buf;
      q.head <- 0
    end;
    q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
    q.len <- q.len + 1

  let pop q =
    if q.len = 0 then invalid_arg "Intq.pop: empty";
    let x = q.buf.(q.head) in
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    x
end

(* Reusable search-state arena. One scratch owns every array the
   traversal loop touches, so a driver that routes many circuits against
   one device (trials × traversals × batched compilations) allocates
   the arena once per domain and the steady-state hot path performs no
   array allocation at all.

   Reset discipline: per-run state (front deque length, ready/BFS
   queues, decay, remaining-predecessor counts) is cleared at the start
   of every run; the stamp arrays ([cand_mark], [visit_stamp]) are
   deliberately NOT cleared — their generation counters survive in the
   scratch and keep increasing monotonically across runs, so a stale
   stamp can never equal a fresh generation. Growable arrays keep their
   high-water capacity between runs.

   A scratch is single-domain state: never share one across concurrent
   runs. *)
module Scratch = struct
  type t = {
    n_physical : int;
    n_edges : int;
    decay : float array;  (* per physical qubit, refilled 1.0 per run *)
    cand_mark : int array;  (* per coupling edge, generation-stamped *)
    mutable cand_gen : int;
    mutable remaining : int array;  (* grown to the largest DAG seen *)
    mutable visit_stamp : int array;
    mutable visit_gen : int;
    mutable front_buf : int array;
    mutable fq1 : int array;
    mutable fq2 : int array;
    mutable eq1 : int array;
    mutable eq2 : int array;
    mutable l2p : int array;  (* grown to the widest circuit seen *)
    finc : Incidence.t;  (* front-pair incidence, delta scoring *)
    einc : Incidence.t;  (* extended-set incidence, delta scoring *)
    ready : Intq.t;
    bfs : Intq.t;
  }

  let create coupling =
    {
      n_physical = Coupling.n_qubits coupling;
      n_edges = Coupling.n_edges coupling;
      decay = Array.make (Coupling.n_qubits coupling) 1.0;
      cand_mark = Array.make (max 1 (Coupling.n_edges coupling)) 0;
      cand_gen = 0;
      remaining = [||];
      visit_stamp = [||];
      visit_gen = 0;
      front_buf = Array.make 16 0;
      fq1 = [||];
      fq2 = [||];
      eq1 = [||];
      eq2 = [||];
      l2p = [||];
      finc = Incidence.create ();
      einc = Incidence.create ();
      ready = Intq.create 64;
      bfs = Intq.create 64;
    }
end

(* Mutable search state for one traversal. *)
type state = {
  config : Config.t;
  coupling : Coupling.t;
  dist : float array;  (* row-major, stride = n_physical *)
  dist_int : int array option;
      (* integer view of [dist]; [Some] engages delta scoring (the
         matrix must be integer-valued, see Heuristic's exactness
         argument), [None] falls back to full per-candidate recompute *)
  stride : int;
  n_logical : int;
  dag : Dag.t;
  mapping : Mapping.t;  (* private copy, updated in place *)
  remaining : int array;  (* unexecuted predecessor count per node *)
  ready : Intq.t;  (* nodes whose predecessors all executed *)
  (* Front layer: array-backed deque of ready-but-blocked two-qubit
     nodes, oldest first, always compacted to start at index 0.
     [front_gen] bumps whenever membership changes; the caches below
     carry the generation they were built at. *)
  mutable front_buf : int array;
  mutable front_len : int;
  mutable front_gen : int;
  mutable cache_gen : int;  (* generation of fq/eq caches; -1 = stale *)
  mutable fq1 : int array;  (* front-layer logical pairs, front order *)
  mutable fq2 : int array;
  mutable flen : int;
  mutable eq1 : int array;  (* extended set E, BFS collection order *)
  mutable eq2 : int array;
  mutable elen : int;
  (* extended-set BFS scratch, reused across rebuilds *)
  visit_stamp : int array;  (* per DAG node; = visit_gen if seen *)
  mutable visit_gen : int;
  bfs : Intq.t;
  (* SWAP-candidate scratch: per-coupling-edge stamps. A set bit at
     [cand_gen] marks the edge as a candidate for the current decision;
     scanning edge ids in order recovers the canonical sorted (min,max)
     enumeration with no hashtable and no sort. *)
  cand_mark : int array;
  mutable cand_gen : int;
  l2p_scratch : int array;
      (* logical→physical view of [mapping], initialised once per run
         and kept in lock-step by [apply_swap]; the full-recompute
         scorer additionally flips/restores it per candidate *)
  (* delta-scoring state: per-logical-qubit incidence over the fq/eq
     pair slots, rebuilt with the front caches *)
  finc : Incidence.t;
  einc : Incidence.t;
  sink : Gate.t -> unit;  (* receives emitted physical gates in order *)
  decay : float array;  (* per physical qubit; 1.0 at rest *)
  mutable steps_since_reset : int;
  mutable stall : int;  (* swaps since the last gate execution *)
  stall_limit : int;
  mutable n_swaps : int;
  mutable search_steps : int;
  mutable fallback_swaps : int;
  (* scorer accounting, reported through [result.scoring] *)
  mutable sc_decisions : int;
  mutable sc_candidates : int;
  mutable sc_delta_terms : int;
  mutable sc_full_terms : int;
}

(* Prefix ASAP depth under {!Depth.depth_swap3} weights (Swap 3,
   Barrier 0, else 1), maintained gate by gate over the emitted
   physical stream. ASAP finish times only ever grow as gates are
   appended, so the depth of the emitted prefix is a lower bound on the
   depth of every extension — the monotonicity that makes it usable as
   a pruning bound. Engaged only when a progress hook is installed; the
   hookless hot path never pays for it. *)
let depth_tracker n_physical =
  let ready = Array.make n_physical 0 in
  let depth = ref 0 in
  let note g =
    let w =
      match g with Gate.Swap _ -> 3 | Gate.Barrier _ -> 0 | _ -> 1
    in
    let qs = Gate.qubits g in
    let start = List.fold_left (fun acc q -> max acc ready.(q)) 0 qs in
    let finish = start + w in
    List.iter (fun q -> ready.(q) <- finish) qs;
    if finish > depth.contents then depth := finish
  in
  (note, fun () -> depth.contents)

(* Every-N-decisions progress check for the traversal loops below.
   Raising [Cancelled] from inside the [Fun.protect]ed loop is safe for
   the arena: the [finally] sync writes back grown arrays and the
   monotone generation counters, so an aborted run leaves the scratch
   reusable (stale stamps sit below every future generation). *)
let progress_check ~hook ~decisions ~swaps ~depth_lb =
  match hook with
  | None -> fun () -> ()
  | Some { every; notify } ->
    let every = max 1 every in
    let next = ref every in
    fun () ->
      if decisions () >= next.contents then begin
        next := decisions () + every;
        match
          notify
            { swaps = swaps (); decisions = decisions (); depth_lb = depth_lb () }
        with
        | Continue -> ()
        | Stop -> raise Cancelled
      end

let reset_decay st =
  Array.fill st.decay 0 (Array.length st.decay) 1.0;
  st.steps_since_reset <- 0

let emit st gate = st.sink gate

let front_push st i =
  if st.front_len = Array.length st.front_buf then begin
    let buf = Array.make (2 * st.front_len) 0 in
    Array.blit st.front_buf 0 buf 0 st.front_len;
    st.front_buf <- buf
  end;
  st.front_buf.(st.front_len) <- i;
  st.front_len <- st.front_len + 1;
  st.front_gen <- st.front_gen + 1

(* Emit the logical gate at DAG node [i], remapped through the current π,
   and release its successors. *)
let execute_node st i =
  let to_physical q = Mapping.to_physical st.mapping q in
  emit st (Gate.remap to_physical (Dag.gate st.dag i));
  Dag.succ_iter st.dag i (fun j ->
      st.remaining.(j) <- st.remaining.(j) - 1;
      if st.remaining.(j) = 0 then Intq.push st.ready j);
  st.stall <- 0;
  if Dag.is_two_qubit_node st.dag i then reset_decay st

let executable st i =
  let q1 = Dag.pair_q1 st.dag i in
  q1 < 0
  || Coupling.connected st.coupling
       (Mapping.to_physical st.mapping q1)
       (Mapping.to_physical st.mapping (Dag.pair_q2 st.dag i))

(* Drain the ready queue and the front layer until no gate can execute.
   Returns once progress stops; the front then holds exactly the blocked
   two-qubit gates (possibly none, if the circuit is finished). *)
let advance st =
  let again = ref true in
  while !again do
    let progressed = ref false in
    while not (Intq.is_empty st.ready) do
      let i = Intq.pop st.ready in
      if Dag.is_two_qubit_node st.dag i then front_push st i
      else begin
        execute_node st i;
        progressed := true
      end
    done;
    (* one in-place sweep: executable nodes run (executability depends
       only on π, which gate execution never changes, so interleaving
       equals the old partition-then-execute), blocked ones compact *)
    let w = ref 0 in
    let executed = ref false in
    for r = 0 to st.front_len - 1 do
      let i = st.front_buf.(r) in
      if executable st i then begin
        execute_node st i;
        executed := true
      end
      else begin
        st.front_buf.(!w) <- i;
        incr w
      end
    done;
    if !executed then begin
      st.front_len <- !w;
      st.front_gen <- st.front_gen + 1;
      progressed := true
    end;
    again := !progressed
  done

let ensure_capacity arr len = if Array.length arr < len then Array.make (2 * len) 0 else arr

(* Rebuild the front-pair arrays and the extended set E (Section IV-D:
   breadth-first successors of the front layer, up to [size] two-qubit
   gates). Both depend only on front membership — not on π — so they
   stay valid across every candidate scored and every SWAP applied until
   a gate executes; [cache_gen] tracks that. *)
let rebuild_front_caches st =
  st.fq1 <- ensure_capacity st.fq1 st.front_len;
  st.fq2 <- ensure_capacity st.fq2 st.front_len;
  for r = 0 to st.front_len - 1 do
    let i = st.front_buf.(r) in
    st.fq1.(r) <- Dag.pair_q1 st.dag i;
    st.fq2.(r) <- Dag.pair_q2 st.dag i
  done;
  st.flen <- st.front_len;
  let size = st.config.extended_set_size in
  st.elen <- 0;
  if size > 0 && st.config.heuristic <> Config.Basic then begin
    st.eq1 <- ensure_capacity st.eq1 size;
    st.eq2 <- ensure_capacity st.eq2 size;
    st.visit_gen <- st.visit_gen + 1;
    Intq.clear st.bfs;
    for r = 0 to st.front_len - 1 do
      Dag.succ_iter st.dag st.front_buf.(r) (fun j -> Intq.push st.bfs j)
    done;
    while st.elen < size && not (Intq.is_empty st.bfs) do
      let i = Intq.pop st.bfs in
      if st.visit_stamp.(i) <> st.visit_gen then begin
        st.visit_stamp.(i) <- st.visit_gen;
        if Dag.is_two_qubit_node st.dag i then begin
          st.eq1.(st.elen) <- Dag.pair_q1 st.dag i;
          st.eq2.(st.elen) <- Dag.pair_q2 st.dag i;
          st.elen <- st.elen + 1
        end;
        Dag.succ_iter st.dag i (fun j -> Intq.push st.bfs j)
      end
    done
  end;
  (* Delta scoring: the incidence indices mirror the fq/eq slots just
     rebuilt. Logical-qubit keyed, so they survive applied SWAPs and
     only go stale when front membership changes — exactly when this
     function runs again. [einc] is skipped while E is empty (its
     generation stays stale, and the scorer never consults it). *)
  (match st.dist_int with
  | Some _ ->
    Incidence.build st.finc ~gen:st.front_gen ~n_logical:st.n_logical
      ~q1:st.fq1 ~q2:st.fq2 ~len:st.flen;
    if st.elen > 0 then
      Incidence.build st.einc ~gen:st.front_gen ~n_logical:st.n_logical
        ~q1:st.eq1 ~q2:st.eq2 ~len:st.elen
  | None -> ());
  st.cache_gen <- st.front_gen

(* Candidate SWAPs: coupling-graph edges with at least one endpoint
   occupied by a logical qubit of a front-layer gate (Section IV-C1).
   Unlike the front caches these depend on π, which the applied SWAP
   mutates, so they are re-marked per decision — but with per-edge
   stamps instead of a hashtable, and the id-order scan replaces the
   sort (edge ids are already the sorted (min,max) order). *)
let mark_candidates st =
  st.cand_gen <- st.cand_gen + 1;
  let stamp = st.cand_gen in
  let mark_qubit q =
    let p = Mapping.to_physical st.mapping q in
    Coupling.neighbors_iter st.coupling p (fun p' ->
        st.cand_mark.(Coupling.edge_id st.coupling p p') <- stamp)
  in
  (* reads the fq caches — same pairs, same order as the front deque —
     so the function is independent of how the DAG is represented;
     [choose_and_apply_swap] rebuilds stale caches before marking *)
  for r = 0 to st.flen - 1 do
    mark_qubit st.fq1.(r);
    mark_qubit st.fq2.(r)
  done;
  stamp

let apply_swap st ~fallback (p1, p2) =
  emit st (Gate.Swap (p1, p2));
  let l1 = Mapping.to_logical st.mapping p1
  and l2 = Mapping.to_logical st.mapping p2 in
  Mapping.swap_physical_inplace st.mapping p1 p2;
  (* keep the scoring π in lock-step with the live mapping — O(1) per
     SWAP (heuristic and fallback alike) instead of the O(n_logical)
     rebuild every decision used to pay *)
  if l1 >= 0 then st.l2p_scratch.(l1) <- p2;
  if l2 >= 0 then st.l2p_scratch.(l2) <- p1;
  st.n_swaps <- st.n_swaps + 1;
  if fallback then st.fallback_swaps <- st.fallback_swaps + 1

let score_swap st ~l2p ~p1 ~p2 =
  (* tentatively apply the swap on the scratch π *)
  let l1 = Mapping.to_logical st.mapping p1
  and l2 = Mapping.to_logical st.mapping p2 in
  if l1 >= 0 then l2p.(l1) <- p2;
  if l2 >= 0 then l2p.(l2) <- p1;
  let v =
    Heuristic.score_flat ~heuristic:st.config.heuristic ~dist:st.dist
      ~stride:st.stride ~l2p ~fq1:st.fq1 ~fq2:st.fq2 ~flen:st.flen
      ~eq1:st.eq1 ~eq2:st.eq2 ~elen:st.elen
      ~weight:st.config.extended_set_weight ~decay:st.decay ~p1 ~p2
  in
  if l1 >= 0 then l2p.(l1) <- p1;
  if l2 >= 0 then l2p.(l2) <- p2;
  v

(* Full-recompute scorer: every candidate pays |F|+|E| distance terms.
   Scans edge ids in order — same enumeration as the old sorted
   candidate list, same first-strictly-better tie-break. *)
let choose_full st stamp =
  let l2p = st.l2p_scratch in
  let per_candidate = st.flen + st.elen in
  let best_p1 = ref (-1) and best_p2 = ref (-1) in
  let best_score = ref infinity in
  let have_best = ref false in
  for e = 0 to Coupling.n_edges st.coupling - 1 do
    if st.cand_mark.(e) = stamp then begin
      let p1, p2 = Coupling.edge_endpoints st.coupling e in
      let s = score_swap st ~l2p ~p1 ~p2 in
      st.sc_candidates <- st.sc_candidates + 1;
      st.sc_delta_terms <- st.sc_delta_terms + per_candidate;
      st.sc_full_terms <- st.sc_full_terms + per_candidate;
      if (not !have_best) || s < !best_score then begin
        have_best := true;
        best_score := s;
        best_p1 := p1;
        best_p2 := p2
      end
    end
  done;
  (!have_best, !best_p1, !best_p2)

(* Delta scorer: integer base sums [fsum]/[esum] once per decision, then
   each candidate (p1,p2) only revisits the pair slots whose logical
   qubits currently sit on p1 or p2 ([Incidence]), rebuilding
   [score_flat]'s value bit-identically from the updated integer sums
   (see Heuristic's exactness argument). Same edge-id scan order, same
   first-strictly-better tie-break as [choose_full]. *)
let choose_delta st di stamp =
  (* Defence in depth: the index must describe the live front.
     [choose_and_apply_swap] rebuilds stale caches before scoring, so
     this can only fire if that invariant is broken. *)
  if Incidence.generation st.finc <> st.front_gen then
    invalid_arg "Routing_pass: stale incidence index (front changed)";
  if st.elen > 0 && Incidence.generation st.einc <> st.front_gen then
    invalid_arg "Routing_pass: stale extended incidence index";
  let l2p = st.l2p_scratch in
  let stride = st.stride in
  let fsum =
    Heuristic.sum_int ~dist:di ~stride ~l2p ~q1:st.fq1 ~q2:st.fq2
      ~len:st.flen
  in
  let esum =
    if st.elen = 0 then 0
    else
      Heuristic.sum_int ~dist:di ~stride ~l2p ~q1:st.eq1 ~q2:st.eq2
        ~len:st.elen
  in
  st.sc_delta_terms <- st.sc_delta_terms + st.flen + st.elen;
  let per_candidate_full = st.flen + st.elen in
  let touched = ref 0 in
  let best_p1 = ref (-1) and best_p2 = ref (-1) in
  let best_score = ref infinity in
  let have_best = ref false in
  for e = 0 to Coupling.n_edges st.coupling - 1 do
    if st.cand_mark.(e) = stamp then begin
      let p1, p2 = Coupling.edge_endpoints st.coupling e in
      let l1 = Mapping.to_logical st.mapping p1
      and l2 = Mapping.to_logical st.mapping p2 in
      touched := 0;
      (* Σ over pair slots incident to logical qubit [l] of
         (term after the candidate SWAP − term before). Slots whose
         pair also contains [skip] are omitted: when walking l2's
         slots, pairs containing l1 were already counted in l1's
         walk. The new physical position is the transposition (p1 p2)
         applied to the current one — no l2p mutation needed. *)
      let delta_over inc q1a q2a l skip =
        if l < 0 then 0
        else begin
          let d = ref 0 in
          Incidence.iter inc l (fun k ->
              let a = q1a.(k) and b = q2a.(k) in
              if a <> skip && b <> skip then begin
                let pa = l2p.(a) and pb = l2p.(b) in
                let pa' =
                  if pa = p1 then p2 else if pa = p2 then p1 else pa
                in
                let pb' =
                  if pb = p1 then p2 else if pb = p2 then p1 else pb
                in
                d := !d + di.((pa' * stride) + pb') - di.((pa * stride) + pb);
                incr touched
              end);
          !d
        end
      in
      let df =
        delta_over st.finc st.fq1 st.fq2 l1 (-1)
        + delta_over st.finc st.fq1 st.fq2 l2 l1
      in
      let de =
        if st.elen = 0 then 0
        else
          delta_over st.einc st.eq1 st.eq2 l1 (-1)
          + delta_over st.einc st.eq1 st.eq2 l2 l1
      in
      let s =
        Heuristic.score_of_sums_int ~heuristic:st.config.heuristic
          ~fsum:(fsum + df) ~flen:st.flen ~esum:(esum + de) ~elen:st.elen
          ~weight:st.config.extended_set_weight ~decay:st.decay ~p1 ~p2
      in
      st.sc_candidates <- st.sc_candidates + 1;
      st.sc_delta_terms <- st.sc_delta_terms + (2 * !touched);
      st.sc_full_terms <- st.sc_full_terms + per_candidate_full;
      if (not !have_best) || s < !best_score then begin
        have_best := true;
        best_score := s;
        best_p1 := p1;
        best_p2 := p2
      end
    end
  done;
  (!have_best, !best_p1, !best_p2)

(* [rebuild] refreshes the fq/eq caches from the current front: the
   materialised path passes [rebuild_front_caches], the streaming path
   its window-backed equivalent. Everything below the caches is
   representation-agnostic. *)
let choose_and_apply_swap ~rebuild st =
  if st.cache_gen <> st.front_gen then rebuild st;
  let stamp = mark_candidates st in
  st.sc_decisions <- st.sc_decisions + 1;
  let have_best, p1, p2 =
    match st.dist_int with
    | Some di -> choose_delta st di stamp
    | None -> choose_full st stamp
  in
  if not have_best then
    (* Cannot happen on a connected graph with a non-empty front: every
       occupied qubit has neighbours. *)
    invalid_arg "Routing_pass: no SWAP candidates (disconnected device?)";
  apply_swap st ~fallback:false (p1, p2);
  st.search_steps <- st.search_steps + 1;
  st.stall <- st.stall + 1;
  (* decay bookkeeping (Section IV-C3 / V "Algorithm Configuration") *)
  if st.config.heuristic = Config.Decay then begin
    st.decay.(p1) <- st.decay.(p1) +. st.config.decay_increment;
    st.decay.(p2) <- st.decay.(p2) +. st.config.decay_increment;
    st.steps_since_reset <- st.steps_since_reset + 1;
    if st.steps_since_reset >= st.config.decay_reset_interval then
      reset_decay st
  end

(* Anti-livelock fallback: force the oldest front gate executable by
   swapping one operand along a shortest path to the other. *)
let fallback_walk st q1 q2 =
  assert (q1 >= 0);
  let p1 = Mapping.to_physical st.mapping q1
  and p2 = Mapping.to_physical st.mapping q2 in
  let path = Coupling.shortest_path st.coupling p1 p2 in
  let rec walk = function
    | a :: (b :: (_ :: _ as rest)) ->
      apply_swap st ~fallback:true (a, b);
      walk (b :: rest)
    | _ -> ()
  in
  walk path;
  reset_decay st;
  st.stall <- 0

let fallback_route st =
  if st.front_len > 0 then begin
    let i = st.front_buf.(0) in
    fallback_walk st (Dag.pair_q1 st.dag i) (Dag.pair_q2 st.dag i)
  end

let flat_hop_distances coupling =
  let d = Coupling.distance_matrix coupling in
  let n = Coupling.n_qubits coupling in
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- float_of_int row.(j)
    done
  done;
  flat

(* Grow-only capacity helper for scratch arrays. Replacing a stamp
   array with a zeroed one is safe: stamps are only ever compared
   against generations that keep increasing, and 0 is below any live
   generation. *)
let grown arr len = if Array.length arr >= len then arr else Array.make len 0

(* Shared metric validation/derivation for the materialised and
   streaming entry points. Delta scoring needs an integer view of the
   metric. A caller-provided one is validated against [dist] entry for
   entry (the delta scorer's exactness argument assumes they agree);
   otherwise one is derived, which quietly fails — falling back to full
   recompute — for non-integer metrics such as noise-weighted
   distances. *)
let resolve_metric ~coupling ~scoring ~dist ~dist_int =
  let n_physical = Coupling.n_qubits coupling in
  let dist =
    match dist with
    | Some d ->
      if Array.length d <> n_physical * n_physical then
        invalid_arg "Routing_pass.run: flat dist has wrong dimension";
      d
    | None -> flat_hop_distances coupling
  in
  let dist_int =
    match scoring with
    | Full -> None
    | Delta -> (
      match dist_int with
      | Some di ->
        if Array.length di <> n_physical * n_physical then
          invalid_arg "Routing_pass.run: flat dist_int has wrong dimension";
        for i = 0 to Array.length di - 1 do
          if dist.(i) <> float_of_int di.(i) then
            invalid_arg "Routing_pass.run: dist_int disagrees with dist"
        done;
        Some di
      | None -> Heuristic.dist_int_of_flat dist)
  in
  (dist, dist_int)

let run_with_scratch ~scratch ?dist ?dist_int ?(scoring = Delta) ?hook config
    coupling dag initial =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Routing_pass.run: " ^ msg));
  let circuit = Dag.circuit dag in
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Routing_pass.run: circuit wider than device";
  if Mapping.n_logical initial <> Circuit.n_qubits circuit then
    invalid_arg "Routing_pass.run: mapping arity mismatch";
  let n = Dag.n_nodes dag in
  let n_physical = Coupling.n_qubits coupling in
  if
    scratch.Scratch.n_physical <> n_physical
    || scratch.Scratch.n_edges <> Coupling.n_edges coupling
  then invalid_arg "Routing_pass.run: scratch built for a different device";
  let dist, dist_int = resolve_metric ~coupling ~scoring ~dist ~dist_int in
  (* per-run reset of the reused arena *)
  scratch.Scratch.remaining <- grown scratch.Scratch.remaining n;
  let remaining = scratch.Scratch.remaining in
  for i = 0 to n - 1 do
    remaining.(i) <- Dag.in_degree dag i
  done;
  scratch.Scratch.visit_stamp <- grown scratch.Scratch.visit_stamp (max 1 n);
  scratch.Scratch.l2p <- grown scratch.Scratch.l2p (Mapping.n_logical initial);
  Intq.clear scratch.Scratch.ready;
  Intq.clear scratch.Scratch.bfs;
  Array.fill scratch.Scratch.decay 0 (Array.length scratch.Scratch.decay) 1.0;
  (* front generations restart at 0 every run, so an index left over
     from a previous run could alias a fresh generation — invalidate *)
  Incidence.invalidate scratch.Scratch.finc;
  Incidence.invalidate scratch.Scratch.einc;
  let n_logical = Mapping.n_logical initial in
  let out_rev = ref [] in
  let base_sink g = out_rev := g :: !out_rev in
  let sink, depth_lb =
    match hook with
    | None -> (base_sink, fun () -> 0)
    | Some _ ->
      let note, current = depth_tracker n_physical in
      ( (fun g ->
          note g;
          base_sink g),
        current )
  in
  let st =
    {
      config;
      coupling;
      dist;
      dist_int;
      stride = n_physical;
      n_logical;
      dag;
      mapping = Mapping.copy initial;
      remaining;
      ready = scratch.Scratch.ready;
      front_buf = scratch.Scratch.front_buf;
      front_len = 0;
      front_gen = 0;
      cache_gen = -1;
      fq1 = scratch.Scratch.fq1;
      fq2 = scratch.Scratch.fq2;
      flen = 0;
      eq1 = scratch.Scratch.eq1;
      eq2 = scratch.Scratch.eq2;
      elen = 0;
      visit_stamp = scratch.Scratch.visit_stamp;
      visit_gen = scratch.Scratch.visit_gen;
      bfs = scratch.Scratch.bfs;
      cand_mark = scratch.Scratch.cand_mark;
      cand_gen = scratch.Scratch.cand_gen;
      l2p_scratch = scratch.Scratch.l2p;
      finc = scratch.Scratch.finc;
      einc = scratch.Scratch.einc;
      sink;
      decay = scratch.Scratch.decay;
      steps_since_reset = 0;
      stall = 0;
      stall_limit =
        (match config.stall_limit with
        | Some s -> s
        | None -> 10 + (5 * Coupling.diameter coupling));
      n_swaps = 0;
      search_steps = 0;
      fallback_swaps = 0;
      sc_decisions = 0;
      sc_candidates = 0;
      sc_delta_terms = 0;
      sc_full_terms = 0;
    }
  in
  (* initialise the scoring π once per run; [apply_swap] keeps it in
     lock-step from here on *)
  for q = 0 to n_logical - 1 do
    st.l2p_scratch.(q) <- Mapping.to_physical st.mapping q
  done;
  (* Sync grown arrays and generation counters back even when the run
     raises: a stamp written during an aborted run must stay below the
     next run's generations, so the counters may never rewind. *)
  let sync () =
    scratch.Scratch.front_buf <- st.front_buf;
    scratch.Scratch.fq1 <- st.fq1;
    scratch.Scratch.fq2 <- st.fq2;
    scratch.Scratch.eq1 <- st.eq1;
    scratch.Scratch.eq2 <- st.eq2;
    scratch.Scratch.visit_gen <- st.visit_gen;
    scratch.Scratch.cand_gen <- st.cand_gen
  in
  let check =
    progress_check ~hook
      ~decisions:(fun () -> st.sc_decisions)
      ~swaps:(fun () -> st.n_swaps)
      ~depth_lb
  in
  Fun.protect ~finally:sync (fun () ->
      List.iter (fun i -> Intq.push st.ready i) (Dag.initial_front dag);
      advance st;
      while st.front_len > 0 do
        if st.stall > st.stall_limit then fallback_route st
        else choose_and_apply_swap ~rebuild:rebuild_front_caches st;
        check ();
        advance st
      done;
      {
        physical =
          Circuit.create
            ~n_qubits:(Coupling.n_qubits coupling)
            ~n_clbits:(Circuit.n_clbits circuit)
            (List.rev !out_rev);
        final_mapping = st.mapping;
        n_swaps = st.n_swaps;
        search_steps = st.search_steps;
        fallback_swaps = st.fallback_swaps;
        scoring =
          {
            Stats.decisions = st.sc_decisions;
            candidates = st.sc_candidates;
            delta_terms = st.sc_delta_terms;
            full_terms = st.sc_full_terms;
          };
      })

let run_flat ?dist ?dist_int ?scoring ?hook config coupling dag initial =
  run_with_scratch
    ~scratch:(Scratch.create coupling)
    ?dist ?dist_int ?scoring ?hook config coupling dag initial

let run ?dist ?scoring config coupling dag initial =
  let dist = Option.map Heuristic.flatten_dist dist in
  run_flat ?dist ?scoring config coupling dag initial

(* ------------------------------------------------------------------ *)
(* Streaming entry point                                               *)
(* ------------------------------------------------------------------ *)

(* placeholder for [state.dag] in streaming runs: the window-backed
   driver below never touches it *)
let empty_dag = lazy (Dag.of_circuit (Circuit.create ~n_qubits:0 []))

(* Single forward traversal over a gate stream, emitting routed gates
   through [sink] as they execute. Byte-for-byte equivalent to
   [run_flat] on the materialised circuit with the same [initial]
   mapping: the window releases ready nodes in exactly the order the
   eager DAG does (see [Dag.Window]), the front/extended-set caches are
   rebuilt from the window with the same contents and order, and the
   scoring machinery below the caches is shared code. Peak memory is
   bounded by the window, which [retire] (per-qubit last-use stream
   positions, e.g. from [Qasm_stream.survey]) keeps proportional to the
   circuit's qubit-inactivity span rather than its length. *)
let run_streaming ?dist ?dist_int ?(scoring = Delta) ?retire ?hook ~sink config
    coupling source initial =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Routing_pass.run: " ^ msg));
  let n_physical = Coupling.n_qubits coupling in
  let n_logical = Mapping.n_logical initial in
  if n_logical > n_physical then
    invalid_arg "Routing_pass.run_streaming: circuit wider than device";
  let dist, dist_int = resolve_metric ~coupling ~scoring ~dist ~dist_int in
  let w = Dag.Window.create ?retire ~n_qubits:n_logical source in
  let gates_out = ref 0 in
  let note_depth, depth_lb =
    match hook with
    | None -> ((fun _ -> ()), fun () -> 0)
    | Some _ -> depth_tracker n_physical
  in
  let st =
    {
      config;
      coupling;
      dist;
      dist_int;
      stride = n_physical;
      n_logical;
      dag = Lazy.force empty_dag;
      mapping = Mapping.copy initial;
      remaining = [||];
      ready = Intq.create 64;
      front_buf = Array.make 16 0;
      front_len = 0;
      front_gen = 0;
      cache_gen = -1;
      fq1 = [||];
      fq2 = [||];
      flen = 0;
      eq1 = [||];
      eq2 = [||];
      elen = 0;
      visit_stamp = [||];
      visit_gen = 0;
      bfs = Intq.create 64;
      cand_mark = Array.make (max 1 (Coupling.n_edges coupling)) 0;
      cand_gen = 0;
      l2p_scratch = Array.make (max 1 n_logical) 0;
      finc = Incidence.create ();
      einc = Incidence.create ();
      sink =
        (fun g ->
          incr gates_out;
          note_depth g;
          sink g);
      decay = Array.make n_physical 1.0;
      steps_since_reset = 0;
      stall = 0;
      stall_limit =
        (match config.stall_limit with
        | Some s -> s
        | None -> 10 + (5 * Coupling.diameter coupling));
      n_swaps = 0;
      search_steps = 0;
      fallback_swaps = 0;
      sc_decisions = 0;
      sc_candidates = 0;
      sc_delta_terms = 0;
      sc_full_terms = 0;
    }
  in
  for q = 0 to n_logical - 1 do
    st.l2p_scratch.(q) <- Mapping.to_physical st.mapping q
  done;
  let on_ready i = Intq.push st.ready i in
  (* window-backed counterparts of [execute_node]/[executable]/[advance]
     — same control flow, with successor release (and re-saturation)
     delegated to the window *)
  let execute_slot i =
    let to_physical q = Mapping.to_physical st.mapping q in
    emit st (Gate.remap to_physical (Dag.Window.gate w i));
    let two = Dag.Window.is_two_qubit_node w i in
    Dag.Window.execute w i on_ready;
    st.stall <- 0;
    if two then reset_decay st
  in
  let slot_executable i =
    let q1 = Dag.Window.pair_q1 w i in
    q1 < 0
    || Coupling.connected st.coupling
         (Mapping.to_physical st.mapping q1)
         (Mapping.to_physical st.mapping (Dag.Window.pair_q2 w i))
  in
  let advance_stream () =
    let again = ref true in
    while !again do
      let progressed = ref false in
      while not (Intq.is_empty st.ready) do
        let i = Intq.pop st.ready in
        if Dag.Window.is_two_qubit_node w i then front_push st i
        else begin
          execute_slot i;
          progressed := true
        end
      done;
      let wr = ref 0 in
      let executed = ref false in
      for r = 0 to st.front_len - 1 do
        let i = st.front_buf.(r) in
        if slot_executable i then begin
          execute_slot i;
          executed := true
        end
        else begin
          st.front_buf.(!wr) <- i;
          incr wr
        end
      done;
      if !executed then begin
        st.front_len <- !wr;
        st.front_gen <- st.front_gen + 1;
        progressed := true
      end;
      again := !progressed
    done
  in
  (* window-backed [rebuild_front_caches]: identical contents and order;
     [ensure_successors] completes a node's successor set before the
     BFS expands it (admissions during a rebuild never release ready
     nodes — the window is saturated whenever a router is stalled) *)
  let rebuild_stream_caches st =
    st.fq1 <- ensure_capacity st.fq1 st.front_len;
    st.fq2 <- ensure_capacity st.fq2 st.front_len;
    for r = 0 to st.front_len - 1 do
      let i = st.front_buf.(r) in
      st.fq1.(r) <- Dag.Window.pair_q1 w i;
      st.fq2.(r) <- Dag.Window.pair_q2 w i
    done;
    st.flen <- st.front_len;
    let size = st.config.extended_set_size in
    st.elen <- 0;
    if size > 0 && st.config.heuristic <> Config.Basic then begin
      st.eq1 <- ensure_capacity st.eq1 size;
      st.eq2 <- ensure_capacity st.eq2 size;
      st.visit_gen <- st.visit_gen + 1;
      Intq.clear st.bfs;
      for r = 0 to st.front_len - 1 do
        Dag.Window.ensure_successors w st.front_buf.(r) on_ready;
        Dag.Window.succ_iter_seq w st.front_buf.(r) (fun j ->
            Intq.push st.bfs j)
      done;
      while st.elen < size && not (Intq.is_empty st.bfs) do
        let i = Intq.pop st.bfs in
        if Dag.Window.mark_visited w i st.visit_gen then begin
          if Dag.Window.is_two_qubit_node w i then begin
            st.eq1.(st.elen) <- Dag.Window.pair_q1 w i;
            st.eq2.(st.elen) <- Dag.Window.pair_q2 w i;
            st.elen <- st.elen + 1
          end;
          Dag.Window.ensure_successors w i on_ready;
          Dag.Window.succ_iter_seq w i (fun j -> Intq.push st.bfs j)
        end
      done
    end;
    (match st.dist_int with
    | Some _ ->
      Incidence.build st.finc ~gen:st.front_gen ~n_logical:st.n_logical
        ~q1:st.fq1 ~q2:st.fq2 ~len:st.flen;
      if st.elen > 0 then
        Incidence.build st.einc ~gen:st.front_gen ~n_logical:st.n_logical
          ~q1:st.eq1 ~q2:st.eq2 ~len:st.elen
    | None -> ());
    st.cache_gen <- st.front_gen
  in
  let fallback_stream () =
    if st.front_len > 0 then begin
      let i = st.front_buf.(0) in
      fallback_walk st (Dag.Window.pair_q1 w i) (Dag.Window.pair_q2 w i)
    end
  in
  let check =
    progress_check ~hook
      ~decisions:(fun () -> st.sc_decisions)
      ~swaps:(fun () -> st.n_swaps)
      ~depth_lb
  in
  Dag.Window.saturate w on_ready;
  advance_stream ();
  while st.front_len > 0 do
    if st.stall > st.stall_limit then fallback_stream ()
    else choose_and_apply_swap ~rebuild:rebuild_stream_caches st;
    check ();
    advance_stream ()
  done;
  if not (Dag.Window.exhausted w && Dag.Window.live_count w = 0) then
    invalid_arg "Routing_pass.run_streaming: stream not drained";
  {
    s_final_mapping = st.mapping;
    s_n_swaps = st.n_swaps;
    s_search_steps = st.search_steps;
    s_fallback_swaps = st.fallback_swaps;
    s_scoring =
      {
        Stats.decisions = st.sc_decisions;
        candidates = st.sc_candidates;
        delta_terms = st.sc_delta_terms;
        full_terms = st.sc_full_terms;
      };
    s_gates_in = Dag.Window.admitted w;
    s_gates_out = !gates_out;
    s_peak_window = Dag.Window.peak_live w;
  }
