examples/optimality_check.ml: Baseline Format Hardware List Quantum Sabre Workloads
