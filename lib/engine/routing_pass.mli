(** The routing stage: drive a {!Router} over every trial seed and keep
    the best attempt.

    Trials are evaluated by {!Trial_runner} in the context's trial mode
    (sequentially or across Domains) and reduced in trial order by the
    paper's ranking: fewest inserted SWAPs, ties broken by routed depth
    — or, when the context carries a noise model, highest estimated
    success probability (Section VI). Deterministic routers (greedy,
    BKA) run a single trial. *)

val pass : ?router:Router.t -> unit -> Pass.t
(** Defaults to the SABRE router. *)

val better :
  noise:Hardware.Noise.t option -> Router.outcome -> Router.outcome -> bool
(** [better ~noise a b] — is trial [a] strictly better than [b]? Exposed
    for tests. *)
