lib/baseline/bka.mli: Format Hardware Quantum Sabre Stdlib
