module Gate = Quantum.Gate

let check = Alcotest.check
let tc = Alcotest.test_case

let test_qubits () =
  check (Alcotest.list Alcotest.int) "single" [ 3 ] (Gate.qubits (Single (H, 3)));
  check (Alcotest.list Alcotest.int) "cnot" [ 0; 4 ] (Gate.qubits (Cnot (0, 4)));
  check (Alcotest.list Alcotest.int) "cz" [ 2; 1 ] (Gate.qubits (Cz (2, 1)));
  check (Alcotest.list Alcotest.int) "swap" [ 5; 6 ] (Gate.qubits (Swap (5, 6)));
  check (Alcotest.list Alcotest.int) "barrier" [ 0; 1; 2 ]
    (Gate.qubits (Barrier [ 0; 1; 2 ]));
  check (Alcotest.list Alcotest.int) "measure" [ 7 ] (Gate.qubits (Measure (7, 0)))

let test_is_two_qubit () =
  check Alcotest.bool "cnot" true (Gate.is_two_qubit (Cnot (0, 1)));
  check Alcotest.bool "cz" true (Gate.is_two_qubit (Cz (0, 1)));
  check Alcotest.bool "swap" true (Gate.is_two_qubit (Swap (0, 1)));
  check Alcotest.bool "single" false (Gate.is_two_qubit (Single (X, 0)));
  check Alcotest.bool "barrier" false (Gate.is_two_qubit (Barrier [ 0; 1 ]));
  check Alcotest.bool "measure" false (Gate.is_two_qubit (Measure (0, 0)))

let test_two_qubit_pair () =
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "cnot"
    (Some (3, 1))
    (Gate.two_qubit_pair (Cnot (3, 1)));
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "single"
    None
    (Gate.two_qubit_pair (Single (T, 0)))

let test_remap () =
  let f q = q + 10 in
  check Alcotest.bool "cnot" true
    (Gate.equal (Cnot (10, 11)) (Gate.remap f (Cnot (0, 1))));
  check Alcotest.bool "barrier" true
    (Gate.equal (Barrier [ 10; 12 ]) (Gate.remap f (Barrier [ 0; 2 ])));
  (* classical bit must not move *)
  check Alcotest.bool "measure" true
    (Gate.equal (Measure (15, 5)) (Gate.remap f (Measure (5, 5))))

let test_dagger_involutive () =
  let gates =
    [
      Gate.Single (H, 0); Single (X, 0); Single (Y, 0); Single (Z, 0);
      Single (S, 0); Single (Sdg, 0); Single (T, 0); Single (Tdg, 0);
      Single (Rx 0.3, 0); Single (Ry 0.7, 0); Single (Rz 1.1, 0);
      Single (U1 0.2, 0); Single (U3 (0.1, 0.2, 0.3), 0);
      Cnot (0, 1); Cz (0, 1); Swap (0, 1); Barrier [ 0; 1 ];
    ]
  in
  List.iter
    (fun g ->
      check Alcotest.bool (Gate.to_string g) true
        (Gate.equal g (Gate.dagger (Gate.dagger g))))
    gates

let test_dagger_pairs () =
  check Alcotest.bool "s" true (Gate.equal (Single (Sdg, 0)) (Gate.dagger (Single (S, 0))));
  check Alcotest.bool "t" true (Gate.equal (Single (Tdg, 0)) (Gate.dagger (Single (T, 0))));
  check Alcotest.bool "rz" true
    (Gate.equal (Single (Rz (-0.5), 2)) (Gate.dagger (Single (Rz 0.5, 2))))

let test_dagger_measure_raises () =
  Alcotest.check_raises "measure"
    (Invalid_argument "Gate.dagger: measurement is not unitary") (fun () ->
      ignore (Gate.dagger (Measure (0, 0))))

let test_names () =
  check Alcotest.string "h" "h" (Gate.name (Single (H, 0)));
  check Alcotest.string "cx" "cx" (Gate.name (Cnot (0, 1)));
  check Alcotest.string "swap" "swap" (Gate.name (Swap (0, 1)));
  check Alcotest.string "rz" "rz" (Gate.name (Single (Rz 0.1, 0)));
  check Alcotest.string "u3" "u3" (Gate.name (Single (U3 (1., 2., 3.), 0)))

let test_to_string () =
  check Alcotest.string "cx" "cx q[0], q[3]" (Gate.to_string (Cnot (0, 3)));
  check Alcotest.string "h" "h q[2]" (Gate.to_string (Single (H, 2)));
  check Alcotest.string "measure" "measure q[1] -> c[4]"
    (Gate.to_string (Measure (1, 4)))

let ok = function Ok () -> true | Error _ -> false

let test_validate () =
  check Alcotest.bool "good cnot" true (ok (Gate.validate ~n_qubits:3 (Cnot (0, 2))));
  check Alcotest.bool "out of range" false
    (ok (Gate.validate ~n_qubits:3 (Cnot (0, 3))));
  check Alcotest.bool "negative" false
    (ok (Gate.validate ~n_qubits:3 (Single (H, -1))));
  check Alcotest.bool "same operand" false
    (ok (Gate.validate ~n_qubits:3 (Cnot (1, 1))));
  check Alcotest.bool "swap same" false
    (ok (Gate.validate ~n_qubits:3 (Swap (2, 2))));
  check Alcotest.bool "duplicate barrier" false
    (ok (Gate.validate ~n_qubits:3 (Barrier [ 0; 0 ])));
  check Alcotest.bool "good barrier" true
    (ok (Gate.validate ~n_qubits:3 (Barrier [ 0; 1; 2 ])))

let suite =
  [
    tc "qubits" `Quick test_qubits;
    tc "is_two_qubit" `Quick test_is_two_qubit;
    tc "two_qubit_pair" `Quick test_two_qubit_pair;
    tc "remap" `Quick test_remap;
    tc "dagger involutive" `Quick test_dagger_involutive;
    tc "dagger pairs" `Quick test_dagger_pairs;
    tc "dagger of measure raises" `Quick test_dagger_measure_raises;
    tc "names" `Quick test_names;
    tc "to_string" `Quick test_to_string;
    tc "validate" `Quick test_validate;
  ]
