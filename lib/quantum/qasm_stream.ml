exception Parse_error of { line : int; column : int; message : string }

let fail line column fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { line; column; message }))
    fmt

(* ------------------------------------------------------------------ *)
(* Chunked character reader                                            *)
(* ------------------------------------------------------------------ *)

(* The reader pulls bytes from a refill callback one chunk at a time, so
   the frontend never holds more than one chunk of the input in memory.
   [line]/[col] always describe the next unconsumed character; both are
   1-based, and a newline resets the column. *)
type reader = {
  refill : bytes -> int;  (* fills the buffer, returns 0 at end of input *)
  buf : Bytes.t;
  mutable len : int;
  mutable pos : int;
  mutable eof : bool;
  mutable line : int;
  mutable col : int;
}

let chunk_size = 65536

let reader_of_refill refill =
  {
    refill;
    buf = Bytes.create chunk_size;
    len = 0;
    pos = 0;
    eof = false;
    line = 1;
    col = 1;
  }

let ensure r =
  if r.pos >= r.len && not r.eof then begin
    let n = r.refill r.buf in
    r.len <- n;
    r.pos <- 0;
    if n = 0 then r.eof <- true
  end

let at_eof r =
  ensure r;
  r.pos >= r.len

(* valid only immediately after [at_eof r = false] *)
let cur r = Bytes.unsafe_get r.buf r.pos

let advance r =
  let c = Bytes.unsafe_get r.buf r.pos in
  r.pos <- r.pos + 1;
  if c = '\n' then begin
    r.line <- r.line + 1;
    r.col <- 1
  end
  else r.col <- r.col + 1

(* ------------------------------------------------------------------ *)
(* Incremental lexer                                                   *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | String of string
  | LBracket
  | RBracket
  | LParen
  | RParen
  | Comma
  | Semicolon
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | LBrace
  | RBrace

type lexed = { token : token; line : int; col : int }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let scan_number r ~line ~col ~first =
  let b = Buffer.create 24 in
  Buffer.add_char b first;
  let prev = ref first in
  let continues () =
    (not (at_eof r))
    &&
    let ch = cur r in
    is_digit ch || ch = '.' || ch = 'e' || ch = 'E'
    || ((ch = '+' || ch = '-') && (!prev = 'e' || !prev = 'E'))
  in
  while continues () do
    let ch = cur r in
    Buffer.add_char b ch;
    prev := ch;
    advance r
  done;
  let text = Buffer.contents b in
  match float_of_string_opt text with
  | Some f -> { token = Number f; line; col }
  | None -> fail line col "malformed number %S" text

let rec next_token r =
  if at_eof r then None
  else begin
    let c = cur r in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then begin
      advance r;
      next_token r
    end
    else begin
      let line = r.line and col = r.col in
      if c = '/' then begin
        advance r;
        if (not (at_eof r)) && cur r = '/' then begin
          (* line comment *)
          while (not (at_eof r)) && cur r <> '\n' do
            advance r
          done;
          next_token r
        end
        else Some { token = Slash; line; col }
      end
      else if c = '"' then begin
        advance r;
        let b = Buffer.create 16 in
        let rec scan () =
          if at_eof r then fail line col "unterminated string literal"
          else begin
            let ch = cur r in
            advance r;
            if ch <> '"' then begin
              Buffer.add_char b ch;
              scan ()
            end
          end
        in
        scan ();
        Some { token = String (Buffer.contents b); line; col }
      end
      else if is_digit c then begin
        advance r;
        Some (scan_number r ~line ~col ~first:c)
      end
      else if c = '.' then begin
        advance r;
        if (not (at_eof r)) && is_digit (cur r) then
          Some (scan_number r ~line ~col ~first:'.')
        else fail line col "unexpected character %C" '.'
      end
      else if is_ident_start c then begin
        let b = Buffer.create 16 in
        Buffer.add_char b c;
        advance r;
        while (not (at_eof r)) && is_ident_char (cur r) do
          Buffer.add_char b (cur r);
          advance r
        done;
        Some { token = Ident (Buffer.contents b); line; col }
      end
      else if c = '-' then begin
        advance r;
        if (not (at_eof r)) && cur r = '>' then begin
          advance r;
          Some { token = Arrow; line; col }
        end
        else Some { token = Minus; line; col }
      end
      else begin
        advance r;
        let t =
          match c with
          | '[' -> LBracket
          | ']' -> RBracket
          | '(' -> LParen
          | ')' -> RParen
          | ',' -> Comma
          | ';' -> Semicolon
          | '+' -> Plus
          | '{' -> LBrace
          | '}' -> RBrace
          | '*' -> Star
          | '^' -> Caret
          | _ -> fail line col "unexpected character %C" c
        in
        Some { token = t; line; col }
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Token stream with one-token lookahead                               *)
(* ------------------------------------------------------------------ *)

type tokstream = {
  rdr : reader;
  mutable la : lexed option;
  mutable last_line : int;
  mutable last_col : int;  (* position of the last consumed token *)
}

let peek ts =
  match ts.la with
  | Some _ as s -> s
  | None ->
    let s = next_token ts.rdr in
    ts.la <- s;
    s

let next ts =
  match peek ts with
  | None -> fail ts.last_line ts.last_col "unexpected end of input"
  | Some t ->
    ts.la <- None;
    ts.last_line <- t.line;
    ts.last_col <- t.col;
    t

let expect ts tok what =
  let t = next ts in
  if t.token <> tok then fail t.line t.col "expected %s" what

let expect_ident ts =
  let t = next ts in
  match t.token with
  | Ident s -> (s, t.line, t.col)
  | _ -> fail t.line t.col "expected identifier"

let expect_nat ts =
  let t = next ts in
  match t.token with
  | Number f when Float.is_integer f && f >= 0.0 -> int_of_float f
  | _ -> fail t.line t.col "expected a non-negative integer"

(* ------------------------------------------------------------------ *)
(* Parameter expression evaluation                                     *)
(* ------------------------------------------------------------------ *)

(* Parameter expressions are parsed to an AST so that user-defined gate
   bodies can reference formal parameters; top-level applications are
   evaluated in the empty environment.

   expr := term (('+'|'-') term)*
   term := factor (('*'|'/') factor)*
   factor := atom ('^' factor)?
   atom := number | 'pi' | ident | '-' atom | '(' expr ')' *)
type expr =
  | Num of float
  | Var of string * int * int  (* name, line, col (for error reporting) *)
  | Neg of expr
  | Bin of [ `Add | `Sub | `Mul | `Div | `Pow ] * expr * expr

let rec parse_expr ts =
  let v = ref (parse_term ts) in
  let rec loop () =
    match peek ts with
    | Some { token = Plus; _ } ->
      ignore (next ts);
      v := Bin (`Add, !v, parse_term ts);
      loop ()
    | Some { token = Minus; _ } ->
      ignore (next ts);
      v := Bin (`Sub, !v, parse_term ts);
      loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_term ts =
  let v = ref (parse_factor ts) in
  let rec loop () =
    match peek ts with
    | Some { token = Star; _ } ->
      ignore (next ts);
      v := Bin (`Mul, !v, parse_factor ts);
      loop ()
    | Some { token = Slash; _ } ->
      ignore (next ts);
      v := Bin (`Div, !v, parse_factor ts);
      loop ()
    | _ -> ()
  in
  loop ();
  !v

and parse_factor ts =
  let base = parse_atom ts in
  match peek ts with
  | Some { token = Caret; _ } ->
    ignore (next ts);
    Bin (`Pow, base, parse_factor ts)
  | _ -> base

and parse_atom ts =
  let t = next ts in
  match t.token with
  | Number f -> Num f
  | Ident "pi" -> Num Float.pi
  | Ident name -> Var (name, t.line, t.col)
  | Minus -> Neg (parse_atom ts)
  | LParen ->
    let v = parse_expr ts in
    expect ts RParen ")";
    v
  | _ -> fail t.line t.col "expected a parameter expression"

let rec eval_expr env = function
  | Num f -> f
  | Var (name, line, col) -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> fail line col "unknown parameter %S" name)
  | Neg e -> -.eval_expr env e
  | Bin (op, a, b) -> (
    let x = eval_expr env a and y = eval_expr env b in
    match op with
    | `Add -> x +. y
    | `Sub -> x -. y
    | `Mul -> x *. y
    | `Div -> x /. y
    | `Pow -> Float.pow x y)

(* ------------------------------------------------------------------ *)
(* Program parsing                                                     *)
(* ------------------------------------------------------------------ *)

type event =
  | Qreg of { name : string; size : int }
  | Creg of { name : string; size : int }
  | Gate of Gate.t

type register = { base : int; size : int }

(* One statement of a user-defined gate body: callee name, parameter
   expressions over the definition's formals, and formal qubit names. *)
type body_stmt = {
  callee : string;
  callee_line : int;
  callee_col : int;
  exprs : expr list;
  qargs : string list;
}

type gate_def = {
  formal_params : string list;
  formal_qubits : string list;
  body : body_stmt list;
}

type env = {
  qregs : (string, register) Hashtbl.t;
  cregs : (string, register) Hashtbl.t;
  defs : (string, gate_def) Hashtbl.t;
  mutable n_qubits : int;
  mutable n_clbits : int;
  events : event Queue.t;
}

(* A qubit argument: either one qubit or a whole register (broadcast). *)
type arg = Qubit of int | Whole of register

let parse_arg env ts =
  let name, line, col = expect_ident ts in
  let reg =
    match Hashtbl.find_opt env.qregs name with
    | Some r -> r
    | None -> fail line col "unknown quantum register %S" name
  in
  match peek ts with
  | Some { token = LBracket; _ } ->
    ignore (next ts);
    let idx = expect_nat ts in
    expect ts RBracket "]";
    if idx >= reg.size then
      fail line col "index %d out of bounds for %S" idx name;
    Qubit (reg.base + idx)
  | _ -> Whole reg

let parse_carg env ts =
  let name, line, col = expect_ident ts in
  let reg =
    match Hashtbl.find_opt env.cregs name with
    | Some r -> r
    | None -> fail line col "unknown classical register %S" name
  in
  match peek ts with
  | Some { token = LBracket; _ } ->
    ignore (next ts);
    let idx = expect_nat ts in
    expect ts RBracket "]";
    if idx >= reg.size then
      fail line col "index %d out of bounds for %S" idx name;
    Qubit (reg.base + idx)
  | _ -> Whole reg

let parse_params ts =
  match peek ts with
  | Some { token = LParen; _ } ->
    ignore (next ts);
    let rec loop acc =
      let v = parse_expr ts in
      match (next ts).token with
      | Comma -> loop (v :: acc)
      | RParen -> List.rev (v :: acc)
      | _ ->
        fail ts.last_line ts.last_col "expected , or ) in parameter list"
    in
    loop []
  | _ -> []

let parse_args env ts =
  let rec loop acc =
    let a = parse_arg env ts in
    match peek ts with
    | Some { token = Comma; _ } ->
      ignore (next ts);
      loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  loop []

let emit env g = Queue.add (Gate g) env.events

let single_kind_of line col name params =
  let p i = List.nth params i in
  match (name, List.length params) with
  | "id", 0 -> Gate.I
  | "h", 0 -> Gate.H
  | "x", 0 -> Gate.X
  | "y", 0 -> Gate.Y
  | "z", 0 -> Gate.Z
  | "s", 0 -> Gate.S
  | "sdg", 0 -> Gate.Sdg
  | "t", 0 -> Gate.T
  | "tdg", 0 -> Gate.Tdg
  | "rx", 1 -> Gate.Rx (p 0)
  | "ry", 1 -> Gate.Ry (p 0)
  | "rz", 1 -> Gate.Rz (p 0)
  | "u1", 1 -> Gate.U1 (p 0)
  | "u2", 2 -> Gate.U2 (p 0, p 1)
  | ("u3" | "u" | "U"), 3 -> Gate.U3 (p 0, p 1, p 2)
  | _, k -> fail line col "gate %S with %d parameter(s) is not supported" name k

let one_qubit line col = function
  | Qubit q -> q
  | Whole _ -> fail line col "broadcast is only supported for single-qubit gates"

(* Apply a gate given already-evaluated parameters and resolved qubit
   arguments. User-defined gates expand recursively; recursion is finite
   because a definition may only call gates defined before it. *)
let rec apply_gate env line col name params args =
  match (name, args) with
  | ("cx" | "CX"), [ a; b ] ->
    emit env (Gate.Cnot (one_qubit line col a, one_qubit line col b))
  | "cz", [ a; b ] ->
    emit env (Gate.Cz (one_qubit line col a, one_qubit line col b))
  | "swap", [ a; b ] ->
    emit env (Gate.Swap (one_qubit line col a, one_qubit line col b))
  | ("ccx" | "toffoli"), [ a; b; c ] ->
    List.iter (emit env)
      (Decompose.toffoli (one_qubit line col a) (one_qubit line col b)
         (one_qubit line col c))
  | ("cx" | "CX" | "cz" | "swap"), _ ->
    fail line col "gate %S expects exactly 2 qubit arguments" name
  | ("ccx" | "toffoli"), _ ->
    fail line col "gate %S expects exactly 3 qubit arguments" name
  | _, _ when Hashtbl.mem env.defs name ->
    let def = Hashtbl.find env.defs name in
    if List.length params <> List.length def.formal_params then
      fail line col "gate %S expects %d parameter(s)" name
        (List.length def.formal_params);
    if List.length args <> List.length def.formal_qubits then
      fail line col "gate %S expects %d qubit argument(s)" name
        (List.length def.formal_qubits);
    let qubit_binding =
      List.combine def.formal_qubits (List.map (one_qubit line col) args)
    in
    let param_binding = List.combine def.formal_params params in
    List.iter
      (fun stmt ->
        let callee_params = List.map (eval_expr param_binding) stmt.exprs in
        let callee_args =
          List.map
            (fun formal ->
              match List.assoc_opt formal qubit_binding with
              | Some q -> Qubit q
              | None ->
                fail stmt.callee_line stmt.callee_col
                  "unknown qubit argument %S" formal)
            stmt.qargs
        in
        apply_gate env stmt.callee_line stmt.callee_col stmt.callee
          callee_params callee_args)
      def.body
  | _, [ Qubit q ] ->
    emit env (Gate.Single (single_kind_of line col name params, q))
  | _, [ Whole reg ] ->
    let kind = single_kind_of line col name params in
    for i = 0 to reg.size - 1 do
      emit env (Gate.Single (kind, reg.base + i))
    done
  | _, _ -> fail line col "gate %S expects exactly 1 qubit argument" name

(* gate name(p, ...) q, ... { callee(expr, ...) q, ...; ... } *)
let parse_gate_def env ts =
  let name, line, col = expect_ident ts in
  if Hashtbl.mem env.defs name then fail line col "gate %S defined twice" name;
  let formal_params =
    match peek ts with
    | Some { token = LParen; _ } ->
      ignore (next ts);
      (match peek ts with
      | Some { token = RParen; _ } ->
        ignore (next ts);
        []
      | _ ->
        let rec loop acc =
          let p, _, _ = expect_ident ts in
          match (next ts).token with
          | Comma -> loop (p :: acc)
          | RParen -> List.rev (p :: acc)
          | _ ->
            fail ts.last_line ts.last_col
              "expected , or ) in formal parameters"
        in
        loop [])
    | _ -> []
  in
  let rec qubit_formals acc =
    let q, _, _ = expect_ident ts in
    match peek ts with
    | Some { token = Comma; _ } ->
      ignore (next ts);
      qubit_formals (q :: acc)
    | _ -> List.rev (q :: acc)
  in
  let formal_qubits = qubit_formals [] in
  (match (next ts).token with
  | LBrace -> ()
  | _ -> fail ts.last_line ts.last_col "expected { to open the gate body");
  let body = ref [] in
  let rec body_loop () =
    match peek ts with
    | Some { token = RBrace; _ } -> ignore (next ts)
    | Some _ ->
      let callee, callee_line, callee_col = expect_ident ts in
      if callee = "barrier" then begin
        (* barriers inside gate bodies only constrain scheduling of the
           expansion; accept and drop them *)
        let rec skip () =
          match (next ts).token with Semicolon -> () | _ -> skip ()
        in
        skip ();
        body_loop ()
      end
      else begin
        let exprs =
          match peek ts with
          | Some { token = LParen; _ } ->
            ignore (next ts);
            let rec loop acc =
              let e = parse_expr ts in
              match (next ts).token with
              | Comma -> loop (e :: acc)
              | RParen -> List.rev (e :: acc)
              | _ ->
                fail ts.last_line ts.last_col
                  "expected , or ) in parameter list"
            in
            loop []
          | _ -> []
        in
        let rec qargs acc =
          let q, _, _ = expect_ident ts in
          match (next ts).token with
          | Comma -> qargs (q :: acc)
          | Semicolon -> List.rev (q :: acc)
          | _ -> fail ts.last_line ts.last_col "expected , or ; in gate body"
        in
        let qargs = qargs [] in
        body := { callee; callee_line; callee_col; exprs; qargs } :: !body;
        body_loop ()
      end
    | None -> fail ts.last_line ts.last_col "unterminated gate body"
  in
  body_loop ();
  Hashtbl.add env.defs name
    { formal_params; formal_qubits; body = List.rev !body }

let parse_statement env ts =
  let name, line, col = expect_ident ts in
  match name with
  | "OPENQASM" ->
    let _version = eval_expr [] (parse_expr ts) in
    expect ts Semicolon ";"
  | "include" ->
    let t = next ts in
    (match t.token with
    | String _ -> ()
    | _ -> fail t.line t.col "include expects a string literal");
    expect ts Semicolon ";"
  | "qreg" | "creg" ->
    let reg_name, rline, rcol = expect_ident ts in
    expect ts LBracket "[";
    let size = expect_nat ts in
    expect ts RBracket "]";
    expect ts Semicolon ";";
    let table, base =
      if name = "qreg" then (env.qregs, env.n_qubits)
      else (env.cregs, env.n_clbits)
    in
    if Hashtbl.mem table reg_name then
      fail rline rcol "register %S declared twice" reg_name;
    Hashtbl.add table reg_name { base; size };
    if name = "qreg" then begin
      env.n_qubits <- env.n_qubits + size;
      Queue.add (Qreg { name = reg_name; size }) env.events
    end
    else begin
      env.n_clbits <- env.n_clbits + size;
      Queue.add (Creg { name = reg_name; size }) env.events
    end
  | "barrier" ->
    let args = parse_args env ts in
    expect ts Semicolon ";";
    let qs =
      List.concat_map
        (function
          | Qubit q -> [ q ]
          | Whole reg -> List.init reg.size (fun i -> reg.base + i))
        args
    in
    emit env (Gate.Barrier qs)
  | "measure" ->
    let src = parse_arg env ts in
    expect ts Arrow "->";
    let dst = parse_carg env ts in
    expect ts Semicolon ";";
    (match (src, dst) with
    | Qubit q, Qubit c -> emit env (Gate.Measure (q, c))
    | Whole qr, Whole cr when qr.size = cr.size ->
      for i = 0 to qr.size - 1 do
        emit env (Gate.Measure (qr.base + i, cr.base + i))
      done
    | _ ->
      fail line col "measure arguments must both be bits or equal-size registers")
  | "gate" -> parse_gate_def env ts
  | "opaque" ->
    (* declaration without body: consume through the semicolon; any later
       application will fail as an unknown gate *)
    let rec skip () =
      match (next ts).token with Semicolon -> () | _ -> skip ()
    in
    skip ()
  | _ ->
    let params = List.map (eval_expr []) (parse_params ts) in
    let args = parse_args env ts in
    expect ts Semicolon ";";
    apply_gate env line col name params args

(* ------------------------------------------------------------------ *)
(* Pull-based event API                                                *)
(* ------------------------------------------------------------------ *)

type t = { ts : tokstream; env : env }

let make refill =
  {
    ts =
      { rdr = reader_of_refill refill; la = None; last_line = 1; last_col = 1 };
    env =
      {
        qregs = Hashtbl.create 4;
        cregs = Hashtbl.create 4;
        defs = Hashtbl.create 4;
        n_qubits = 0;
        n_clbits = 0;
        events = Queue.create ();
      };
  }

let of_refill refill = make refill
let of_channel ic = make (fun b -> input ic b 0 (Bytes.length b))

let of_string s =
  let off = ref 0 in
  make (fun b ->
      let n = min (Bytes.length b) (String.length s - !off) in
      Bytes.blit_string s !off b 0 n;
      off := !off + n;
      n)

let rec next_event t =
  if not (Queue.is_empty t.env.events) then Some (Queue.pop t.env.events)
  else
    match peek t.ts with
    | None -> None
    | Some _ ->
      parse_statement t.env t.ts;
      next_event t

let n_qubits t = t.env.n_qubits
let n_clbits t = t.env.n_clbits

(* ------------------------------------------------------------------ *)
(* Survey pass                                                         *)
(* ------------------------------------------------------------------ *)

type survey = {
  sv_n_qubits : int;
  sv_n_clbits : int;
  sv_n_gates : int;
  sv_last_use : int array;
}

let survey t =
  let last = ref (Array.make 16 (-1)) in
  let ensure_q n =
    if n > Array.length !last then begin
      let grown = Array.make (max n (2 * Array.length !last)) (-1) in
      Array.blit !last 0 grown 0 (Array.length !last);
      last := grown
    end
  in
  let pos = ref 0 in
  let rec drain () =
    match next_event t with
    | None -> ()
    | Some (Gate g) ->
      List.iter
        (fun q ->
          ensure_q (q + 1);
          !last.(q) <- !pos)
        (Gate.qubits g);
      incr pos;
      drain ()
    | Some (Qreg _ | Creg _) -> drain ()
  in
  drain ();
  let nq = n_qubits t in
  ensure_q nq;
  {
    sv_n_qubits = nq;
    sv_n_clbits = n_clbits t;
    sv_n_gates = !pos;
    sv_last_use = Array.sub !last 0 nq;
  }
