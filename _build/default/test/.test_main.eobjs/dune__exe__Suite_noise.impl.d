test/suite_noise.ml: Alcotest Array Hardware Helpers List Printf Quantum Sabre Workloads
