(** Pass-pipeline driver.

    [run passes ctx] threads the context through every pass in order,
    timing each one: the pass's wall-clock duration is appended to the
    context's metrics and emitted as [Pass_start] / [Pass_end] events on
    the instrument sink, so frontends get per-stage timing for free. *)

val run : ?instrument:Instrument.t -> Pass.t list -> Context.t -> Context.t

val default :
  ?router:Router.t ->
  ?decompose:Decompose_pass.level ->
  ?initial_strategy:Initial_mapping_pass.strategy ->
  ?verify:bool ->
  unit ->
  Pass.t list
(** The paper's flow: decompose (identity by default) → DAG → initial
    mapping → routing — plus the verify pass when [verify] is set.
    [router] defaults to SABRE. *)
