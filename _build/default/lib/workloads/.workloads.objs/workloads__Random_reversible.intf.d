lib/workloads/random_reversible.mli: Quantum
