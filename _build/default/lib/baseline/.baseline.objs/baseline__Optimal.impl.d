lib/baseline/optimal.ml: Array Bytes Char Hardware Hashtbl List Printf Quantum Queue Sabre String
