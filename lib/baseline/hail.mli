(** HAIL-style layer-weight lookahead router (arXiv:2502.07536) as a
    {!Engine.Router.S}.

    Program-order SWAP insertion; each decision scores candidate SWAPs
    (only edges incident to the blocked gate's operands — HAIL's
    search-space reduction) against the two-qubit pairs of the next
    [lookahead] static ASAP layers, weighted [lookahead - offset] so the
    front gate dominates. Candidate evaluation follows the PR 5 delta
    contract: exact integer base−old+new sums over the affected window
    pairs when {!Engine.Context.t.dist_int} is available, full float
    recompute per candidate otherwise; both paths feed
    {!Sabre_core.Stats.scoring}. A stall guard (config [stall_limit],
    default [2 * n_physical]) falls back to a shortest-path walk so
    routing always terminates.

    Not deterministic ([deterministic = false]): a trial's random
    initial mapping flows straight into the search, so the engine's
    multi-trial machinery and external seeders both apply. Registered as
    ["hail"] by {!Routers.register}. *)

include Engine.Router.S

val router : Engine.Router.t
