(* The public SABRE namespace.

   The algorithmic substrate lives in [Sabre_core] (mapping, config,
   heuristics, the single-traversal routing pass) and the staged
   compilation driver in [Engine] (pass pipeline, routers, trial
   runner); this module stitches them together so users keep the
   historical [Sabre.X] paths and gain [Sabre.Engine] for custom
   pipelines. *)

module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats
module Heuristic = Sabre_core.Heuristic
module Routing_pass = Sabre_core.Routing_pass
module Initial_mapping = Sabre_core.Initial_mapping
module Engine = Engine
module Compiler = Compiler
