module Circuit = Quantum.Circuit

(** Seeded synthetic reversible circuits standing in for the RevLib /
    Quipper / ScaffCC benchmark files that are not available offline
    (substitution documented in DESIGN.md §3).

    The generator reproduces the statistics that matter to a router:
    exact logical width and gate count, a CNOT-heavy gate mix (~70 %
    two-qubit), and the locality skew of arithmetic netlists — a small
    set of "hot" qubits (carry/ancilla lines) participates in a
    disproportionate share of the two-qubit gates. Output is a
    deterministic function of the parameters. *)

val circuit :
  ?seed:int ->
  ?two_qubit_ratio:float ->
  ?hot_fraction:float ->
  ?hot_bias:float ->
  n:int ->
  gates:int ->
  unit ->
  Circuit.t
(** [circuit ~n ~gates ()] builds a circuit with exactly [gates]
    elementary gates on [n] qubits. [two_qubit_ratio] (default 0.7) is
    the CNOT share; [hot_fraction] (default 0.3) of the qubits are hot;
    each CNOT operand is hot with probability [hot_bias] (default 0.6).
    [seed] defaults to 1. Requires [n >= 2]. *)

val toffoli_network :
  ?seed:int -> ?hot_fraction:float -> ?hot_bias:float -> n:int -> gates:int ->
  unit -> Circuit.t
(** [toffoli_network ~n ~gates ()] mimics RevLib netlists structurally: a
    random sequence of Toffoli (60 %), CNOT (30 %) and NOT/phase (10 %)
    operations over hot-biased operands, decomposed into the elementary
    gate set with {!Quantum.Decompose.toffoli} and truncated to exactly
    [gates] elementary gates. Unlike {!circuit}'s uniform pair soup, the
    interaction graph is a union of a few triangles and edges — sparse
    enough that small instances admit the perfect initial mappings the
    paper reports (Section V-A1). Requires [n >= 3]. *)

val of_name : name:string -> n:int -> gates:int -> Circuit.t
(** [of_name ~name ~n ~gates] builds {!toffoli_network} with the seed
    derived from [name] (stable string hash), so each named Table II row
    gets its own but reproducible circuit. *)
