module Coupling = Hardware.Coupling
module Devices = Hardware.Devices

let check = Alcotest.check
let tc = Alcotest.test_case

let test_tokyo_shape () =
  let g = Devices.ibm_q20_tokyo () in
  check Alcotest.int "20 qubits" 20 (Coupling.n_qubits g);
  check Alcotest.int "43 couplers" 43 (Coupling.n_edges g);
  check Alcotest.bool "connected" true (Coupling.is_connected_graph g);
  (* paper Section II-B: Q0-Q1 and Q0-Q5 coupled, Q0-Q6 not *)
  check Alcotest.bool "0-1" true (Coupling.connected g 0 1);
  check Alcotest.bool "0-5" true (Coupling.connected g 0 5);
  check Alcotest.bool "0-6 absent" false (Coupling.connected g 0 6);
  check Alcotest.int "small diameter" 4 (Coupling.diameter g)

let test_yorktown () =
  let g = Devices.ibm_q5_yorktown () in
  check Alcotest.int "5 qubits" 5 (Coupling.n_qubits g);
  check Alcotest.int "6 edges" 6 (Coupling.n_edges g);
  check Alcotest.int "hub degree" 4 (Coupling.degree g 2)

let test_qx5 () =
  let g = Devices.ibm_qx5 () in
  check Alcotest.int "16 qubits" 16 (Coupling.n_qubits g);
  check Alcotest.int "22 edges" 22 (Coupling.n_edges g);
  check Alcotest.bool "connected" true (Coupling.is_connected_graph g)

let test_linear () =
  let g = Devices.linear 7 in
  check Alcotest.int "edges" 6 (Coupling.n_edges g);
  check Alcotest.int "end degree" 1 (Coupling.degree g 0);
  check Alcotest.int "inner degree" 2 (Coupling.degree g 3)

let test_ring () =
  let g = Devices.ring 8 in
  check Alcotest.int "edges" 8 (Coupling.n_edges g);
  for i = 0 to 7 do
    check Alcotest.int "degree 2" 2 (Coupling.degree g i)
  done;
  check Alcotest.int "diameter" 4 (Coupling.diameter g)

let test_grid () =
  let g = Devices.grid ~rows:3 ~cols:4 in
  check Alcotest.int "qubits" 12 (Coupling.n_qubits g);
  (* 3*(4-1) horizontal + (3-1)*4 vertical *)
  check Alcotest.int "edges" 17 (Coupling.n_edges g);
  check Alcotest.int "corner degree" 2 (Coupling.degree g 0);
  check Alcotest.int "diameter" 5 (Coupling.diameter g)

let test_star () =
  let g = Devices.star 6 in
  check Alcotest.int "hub degree" 5 (Coupling.degree g 0);
  check Alcotest.int "leaf degree" 1 (Coupling.degree g 3);
  check Alcotest.int "diameter" 2 (Coupling.diameter g)

let test_complete () =
  let g = Devices.complete 6 in
  check Alcotest.int "edges" 15 (Coupling.n_edges g);
  check Alcotest.int "diameter" 1 (Coupling.diameter g)

let test_heavy_hex () =
  let g = Devices.heavy_hex 3 in
  check Alcotest.bool "connected" true (Coupling.is_connected_graph g);
  (* heavy-hex is sparse: max degree 3 *)
  for i = 0 to Coupling.n_qubits g - 1 do
    check Alcotest.bool "degree <= 3" true (Coupling.degree g i <= 3)
  done;
  Alcotest.check_raises "even distance rejected"
    (Invalid_argument "Devices.heavy_hex: distance must be odd and >= 3")
    (fun () -> ignore (Devices.heavy_hex 4))

let test_by_name () =
  check Alcotest.int "tokyo" 20 (Coupling.n_qubits (Devices.by_name "tokyo" None));
  check Alcotest.int "linear 9" 9
    (Coupling.n_qubits (Devices.by_name "linear" (Some 9)));
  check Alcotest.int "grid 12" 12
    (Coupling.n_qubits (Devices.by_name "grid" (Some 12)));
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "unknown" true
    (raises (fun () -> Devices.by_name "nonsense" None));
  check Alcotest.bool "missing size" true
    (raises (fun () -> Devices.by_name "linear" None))

let test_all_named_connected () =
  List.iter
    (fun (name, g) ->
      check Alcotest.bool (name ^ " connected") true
        (Coupling.is_connected_graph g))
    Devices.all_named

let suite =
  [
    tc "IBM Q20 Tokyo (Fig. 2)" `Quick test_tokyo_shape;
    tc "IBM Q5 Yorktown" `Quick test_yorktown;
    tc "IBM QX5" `Quick test_qx5;
    tc "linear" `Quick test_linear;
    tc "ring" `Quick test_ring;
    tc "grid" `Quick test_grid;
    tc "star" `Quick test_star;
    tc "complete" `Quick test_complete;
    tc "heavy hex" `Quick test_heavy_hex;
    tc "by_name" `Quick test_by_name;
    tc "all named devices connected" `Quick test_all_named_connected;
  ]
