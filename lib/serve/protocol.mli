(** Wire protocol of the routing service.

    One request or response per line, each line one JSON object — the
    newline-delimited framing lets any client (the bundled {!Client},
    a python script, [nc]) speak to the daemon without a schema
    compiler. The codec is total in both directions: every value
    {!encode_request} produces decodes back to an equal request (the
    QCheck round-trip property in [test/suite_serve.ml]), and malformed
    or oversized input decodes to a {e typed} error instead of an
    exception, so the server can always answer with a well-formed
    error response.

    A [compile] request names its circuit (inline QASM source or a
    server-side file path), a device from {!Hardware.Devices.by_name},
    a registered router, and optional config overrides mirroring the
    [sabre_compile] CLI knobs. The response carries the routed circuit
    as QASM text that is byte-identical to what [sabre_compile -o]
    writes for the same inputs — the server is a transport around the
    engine, never a second code path. *)

type endpoint =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of { host : string; port : int }

val pp_endpoint : Format.formatter -> endpoint -> unit

(** {2 Requests} *)

type source =
  | Inline of string  (** OpenQASM 2.0 program text *)
  | Path of string  (** file path resolved on the server *)

type overrides = {
  trials : int option;
  traversals : int option;
  delta : float option;  (** decay increment *)
  weight : float option;  (** extended-set weight W *)
  extended_set : int option;
  seed : int option;
  commutation : bool option;
}
(** Config fields a request may override; [None] keeps
    {!Sabre_core.Config.default}'s value (the CLI defaults). *)

val no_overrides : overrides

type compile = {
  id : string;  (** client-chosen tag, echoed in the response *)
  source : source;
  device : string;  (** {!Hardware.Devices.by_name} name *)
  device_size : int option;  (** size for parametric devices *)
  router : string;  (** registered router name, e.g. ["sabre"] *)
  overrides : overrides;
  cache : bool;
      (** allow the compile cache (default [true] on the wire; only
          effective when the server enabled caching at startup) —
          [false] forces a fresh route, bypassing both the
          admission-time probe and the worker-side cache *)
  deadline_s : float option;
      (** per-request deadline in seconds from admission, overriding
          the server default; [Some d] with [d <= 0] is already
          expired (deterministic timeout, used by tests and CI) *)
}

type portfolio = {
  id : string;
  source : source;
  device : string;
  device_size : int option;
  spec : string;
      (** comma-separated [ROUTER[/SEEDER][:key=val,...]] entries, the
          {!Engine.Portfolio.parse_spec} syntax *)
  objective : string;  (** ["swaps"], ["depth"] or ["success"] *)
  race : bool;
      (** arm incumbent-bound pruning ({!Engine.Portfolio.run}'s
          [~race]); defaults to [false] on the wire *)
  overrides : overrides;
  cache : bool;
      (** allow the compile cache per entry (default [true] on the
          wire; effective only when the server enabled caching) *)
  deadline_s : float option;
}
(** Best-of-K request: route once per portfolio entry, answer with the
    winner plus per-entry outcomes. *)

type request =
  | Compile of compile
  | Portfolio of portfolio
  | Stats of { id : string }  (** snapshot of the server counters *)
  | Ping of { id : string }  (** liveness probe *)

(** {2 Responses} *)

(** Why a request failed. [Malformed] and [Oversized] are produced by
    the decoder itself; the rest by the server. *)
type error_kind =
  | Malformed  (** not JSON, not an object, missing/ill-typed fields *)
  | Oversized  (** request line longer than the server's limit *)
  | Queue_full  (** admission control rejected the request *)
  | Timeout  (** deadline expired before or around routing *)
  | Qasm_error  (** circuit source failed to parse *)
  | Route_error  (** router or verifier failed *)
  | Invalid  (** unknown device/router, invalid config, bad circuit *)
  | Shutting_down  (** server is draining; no new work admitted *)

val error_kind_name : error_kind -> string
(** Stable wire names ([malformed], [oversized], [queue_full],
    [timeout], [qasm_error], [route_error], [invalid],
    [shutting_down]). *)

val error_kind_of_name : string -> error_kind option

type compiled = {
  id : string;
  qasm : string;
      (** routed circuit, byte-identical to [sabre_compile -o] output *)
  initial : int array;  (** winning trial's initial mapping, l2p *)
  final : int array;  (** mapping after the last gate, l2p *)
  n_swaps : int;
  original_gates : int;
  total_gates : int;
  routed_depth : int;
  time_s : float;  (** server-side wall time of the routing call *)
}

type member_stat = {
  entry : string;  (** {!Engine.Portfolio.entry_name} label *)
  swaps : int option;  (** [None] when the entry failed *)
  depth : int option;
  value : float option;
      (** the entry's objective value, lower wins (success probability
          is negated); [None] when the entry failed *)
  wall_s : float option;  (** wall seconds the entry's compile ran *)
  cancelled : bool;
      (** the entry was stopped early — incumbent-bound pruning,
          deadline expiry, or client disconnect — instead of finishing *)
  error : string option;  (** failure message, [None] on success *)
}

type domain_load = { domain : int; jobs_run : int; wall_busy_s : float }

type router_load = {
  router : string;  (** router name, or portfolio entry label *)
  requests : int;  (** compile/portfolio-entry requests routed to it *)
  succeeded : int;
  failed : int;
}

type server_stats = {
  served : int;  (** compile requests answered [ok] *)
  errored : int;  (** compile requests answered [qasm_error]/[route_error]/[invalid] *)
  rejected : int;  (** admission-control rejections ([queue_full]) *)
  timed_out : int;
  malformed : int;  (** undecodable requests, including oversized *)
  queue_depth : int;  (** jobs waiting right now *)
  queue_capacity : int;
  domains : int;  (** worker pool size *)
  uptime_s : float;
  dist_cache_hits : int;
  dist_cache_misses : int;
  cache_hits : int;  (** compile-cache hits ({!Engine.Compile_cache}) *)
  cache_misses : int;
  cache_entries : int;  (** resident memoized routing results *)
  cache_bytes : int;  (** bytes held by resident results *)
  per_domain : domain_load array;  (** by worker index *)
  per_router : router_load array;  (** sorted by router name *)
}

type response =
  | Ok_compiled of compiled
  | Ok_portfolio of {
      compiled : compiled;  (** the winning entry's routed circuit *)
      winner : string;  (** winning entry label *)
      members : member_stat array;  (** in portfolio-entry order *)
    }
  | Ok_stats of { id : string; stats : server_stats }
  | Pong of { id : string }
  | Error_resp of { id : string; kind : error_kind; message : string }
      (** [id] is [""] when the request was too broken to carry one *)

(** {2 Codec} *)

val encode_request : request -> string
(** One line of JSON, no trailing newline. *)

val decode_request :
  ?max_bytes:int -> string -> (request, error_kind * string) result
(** Decode one request line. [max_bytes] (default {!default_max_bytes})
    bounds the accepted line length — longer input is rejected as
    [Oversized] without being parsed. Any other failure is [Malformed]
    with a human-readable reason. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result
(** Used by the client library and the protocol tests. *)

val default_max_bytes : int
(** 8 MiB — larger than any benchmark circuit, small enough to bound a
    hostile request. *)

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool
(** Structural equality (arrays compared by contents); the codec
    round-trip properties are stated with these. *)

val pp_request : Format.formatter -> request -> unit
(** Debug printing for test failures (the encoded JSON line). *)
