module Gate = Quantum.Gate

let basic ~dist ~l2p pairs =
  List.fold_left
    (fun acc (q1, q2) -> acc +. dist.(l2p.(q1)).(l2p.(q2)))
    0.0 pairs

let average_distance ~dist ~l2p pairs =
  match pairs with
  | [] -> 0.0
  | _ -> basic ~dist ~l2p pairs /. float_of_int (List.length pairs)

let lookahead ~dist ~l2p ~front ~extended ~weight =
  average_distance ~dist ~l2p front
  +. (weight *. average_distance ~dist ~l2p extended)

let with_decay ~decay ~p1 ~p2 value = Float.max decay.(p1) decay.(p2) *. value

let score ~heuristic ~dist ~l2p ~front ~extended ~weight ~decay ~p1 ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> basic ~dist ~l2p front
  | Lookahead -> lookahead ~dist ~l2p ~front ~extended ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2 (lookahead ~dist ~l2p ~front ~extended ~weight)

(* ------------------------------------------------------------------ *)
(* Flat variants: row-major distance matrix, pair sets as parallel int
   arrays. Summation order matches the list versions exactly (index
   order = list order), so both produce bit-identical floats.           *)
(* ------------------------------------------------------------------ *)

let flatten_dist d =
  let n = Array.length d in
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let row = d.(i) in
    if Array.length row <> n then
      invalid_arg "Heuristic.flatten_dist: matrix not square";
    Array.blit row 0 flat (i * n) n
  done;
  flat

let basic_flat ~dist ~stride ~l2p ~q1 ~q2 ~len =
  let acc = ref 0.0 in
  for k = 0 to len - 1 do
    acc := !acc +. dist.((l2p.(q1.(k)) * stride) + l2p.(q2.(k)))
  done;
  !acc

let average_flat ~dist ~stride ~l2p ~q1 ~q2 ~len =
  if len = 0 then 0.0
  else basic_flat ~dist ~stride ~l2p ~q1 ~q2 ~len /. float_of_int len

let lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight
    =
  average_flat ~dist ~stride ~l2p ~q1:fq1 ~q2:fq2 ~len:flen
  +. (weight *. average_flat ~dist ~stride ~l2p ~q1:eq1 ~q2:eq2 ~len:elen)

let score_flat ~heuristic ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen
    ~weight ~decay ~p1 ~p2 =
  match (heuristic : Config.heuristic) with
  | Basic -> basic_flat ~dist ~stride ~l2p ~q1:fq1 ~q2:fq2 ~len:flen
  | Lookahead ->
    lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight
  | Decay ->
    with_decay ~decay ~p1 ~p2
      (lookahead_flat ~dist ~stride ~l2p ~fq1 ~fq2 ~flen ~eq1 ~eq2 ~elen
         ~weight)
