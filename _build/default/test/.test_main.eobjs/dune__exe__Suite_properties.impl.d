test/suite_properties.ml: Array Baseline Float Format Hardware Hashtbl List QCheck QCheck_alcotest Quantum Random Sabre Sim
