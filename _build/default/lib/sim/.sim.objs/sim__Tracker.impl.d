lib/sim/tracker.ml: Array Format Hardware List Quantum Result
