(** Newline framing over raw file descriptors.

    Both ends of the protocol — server connection threads and the
    {!Client} — read '\n'-terminated frames from a socket and write
    them back. This module is the one place that owns the buffering,
    the partial-write loop and the error taxonomy, so the two sides
    cannot drift.

    Readers are single-owner (one thread reads a given connection);
    writes take the fd directly and are safe to interleave with reads
    on the same socket from the same thread. *)

type reader

val reader : ?chunk_bytes:int -> Unix.file_descr -> reader
(** Buffered reader over [fd]. [chunk_bytes] (default 65536) sizes the
    read buffer, not a limit on line length. *)

type line =
  | Line of string
      (** one frame, without the ['\n'] (a trailing ['\r'] is also
          stripped, for telnet-style clients); at EOF a final unterminated
          frame is delivered as a [Line] before [Eof] *)
  | Overflow
      (** the current frame exceeded [max_bytes] before its newline
          arrived. The stream cannot be resynchronised — the caller
          should answer with a typed error and drop the connection.
          Subsequent calls keep returning [Overflow]. *)
  | Eof  (** orderly close, connection reset, or any read error *)

val read_line : ?max_bytes:int -> reader -> line
(** Block until one of the three outcomes. [max_bytes] (default
    unlimited) bounds the bytes buffered for a single frame. *)

val write_line : Unix.file_descr -> string -> bool
(** Write [s ^ "\n"] fully, looping over partial writes. [false] when
    the peer is gone ([EPIPE]/[ECONNRESET]/[EBADF]/[ESHUTDOWN]) —
    callers treat that as a dropped connection, never an exception.
    The process must ignore [SIGPIPE] ({!Server.start} and
    {!Client.connect} both arrange this). *)
