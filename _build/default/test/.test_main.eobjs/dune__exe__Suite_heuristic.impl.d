test/suite_heuristic.ml: Alcotest Array Hardware Sabre
