module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

(** Directed coupling: devices where CNOT is natively available in only
    one direction per coupler (paper Section III-A — IBM's 5- and
    16-qubit generations; the paper itself targets the symmetric Q20, and
    notes the asymmetric case is "overcome by technology advance", so
    this module is the backwards-compatibility extension).

    The intended flow keeps SABRE unchanged: route against the
    {!underlying} symmetric graph, then {!fix_directions} rewrites each
    wrong-way CNOT as H⊗H · CNOT(reversed) · H⊗H (4 extra single-qubit
    gates), after lowering SWAPs. *)

type t

val create : n_qubits:int -> (int * int) list -> t
(** [create ~n_qubits arrows] where each arrow [(c, t)] permits a native
    CNOT with control [c] and target [t]. Duplicate arrows and self-loops
    are rejected; both directions of a pair may be listed (making that
    coupler effectively symmetric). *)

val n_qubits : t -> int

val arrows : t -> (int * int) list
(** The permitted (control, target) pairs, sorted. *)

val allows : t -> control:int -> target:int -> bool

val underlying : t -> Coupling.t
(** The symmetric coupling graph obtained by forgetting directions —
    what the router sees. *)

val ibm_qx2 : unit -> t
(** The 5-qubit IBM QX2 with its published CNOT directions. *)

val ibm_qx4 : unit -> t
(** The 5-qubit IBM QX4 (all arrows reversed w.r.t. QX2's layout). *)

val fix_directions : t -> Circuit.t -> Circuit.t
(** Rewrite a hardware-compliant circuit over {!underlying} into one
    whose every CNOT obeys the device's directions: allowed CNOTs pass
    through; disallowed ones are conjugated by Hadamards; SWAPs are first
    lowered to 3 CNOTs; CZ (direction-free physically) is lowered through
    an available CNOT. Raises [Invalid_argument] if a two-qubit gate
    sits on a pair with no arrow at all. *)

val check_directions : t -> Circuit.t -> (unit, Gate.t) result
(** [Ok ()] when every CNOT runs along an arrow and no CZ/SWAP remains;
    otherwise the first offending gate. *)

val overhead : t -> Circuit.t -> int
(** Number of extra single-qubit gates {!fix_directions} would add. *)
