module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config

(** QCheck generators (with shrinking) for the conformance harness.

    Extracted and generalised from the original property suite: random
    SWAP-free circuits over the paper's elementary gate set, random
    connected coupling graphs spanning the topology families the repo
    routes on (path / ring / grid / random spanning tree + extra edges),
    and randomised-but-valid SABRE configurations. Every generator is a
    pure function of its [Random.State.t], so a single integer seed
    reproduces a whole fuzz instance (see {!instance_of_seed}). *)

val gate : n_qubits:int -> Gate.t QCheck.Gen.t
(** A random elementary gate on a register of [n_qubits >= 2]:
    CNOT-dominated, with CZ/SWAP/H/T/Rz sprinkled in. *)

val circuit :
  ?min_qubits:int -> ?max_qubits:int -> ?max_gates:int -> unit ->
  Circuit.t QCheck.Gen.t
(** Random SWAP-free circuit (generated SWAPs are expanded to 3 CNOTs, as
    routed-equivalence checks identify output [Swap] gates as
    routing-inserted). Defaults: 2–6 qubits, 0–40 gates. *)

val shrink_circuit : Circuit.t QCheck.Shrink.t
(** Shrinks by deleting gates (spine shrinking); the register size is
    preserved so a shrunk circuit still fits the same device. *)

val circuit_arb :
  ?min_qubits:int -> ?max_qubits:int -> ?max_gates:int -> unit ->
  Circuit.t QCheck.arbitrary
(** {!circuit} packaged with printing and {!shrink_circuit}. *)

val qasm_program : string QCheck.Gen.t
(** A random valid OpenQASM 2.0 source: 1–3 quantum and 1–2 classical
    registers, optional user-defined gates (one parameterised via an
    arithmetic expression, one two-qubit), indexed and broadcast
    single-qubit applications, cross-register CNOTs, barriers, indexed
    and whole-register measures, comments and blank lines. Parameters
    are multiples of 0.25 so print→parse round-trips are float-exact.
    Drives the frontend round-trip and streaming-equivalence
    properties. *)

val qasm_program_arb : string QCheck.arbitrary
(** {!qasm_program} packaged with printing (no shrinking: deleting
    program lines rarely preserves well-formedness). *)

val coupling : ?min_qubits:int -> ?slack:int -> unit -> Coupling.t QCheck.Gen.t
(** Random {e connected} coupling graph with between [min_qubits]
    (default 2) and [min_qubits + slack] (default slack 4) qubits, drawn
    from four topology families: path, ring, near-square grid, and a
    random spanning tree plus random extra edges. *)

val config : Config.t QCheck.Gen.t
(** Random valid configuration: every field that {!Config.validate}
    accepts is exercised (all three heuristics, small trial/traversal
    counts, random extended-set size/weight, decay parameters, seed).
    [commutation_aware] stays [false]; the differential harness turns it
    on explicitly for the commuting metamorphic property. *)

type instance = {
  circuit : Circuit.t;
  coupling : Coupling.t;
  config : Config.t;
}
(** One routing problem: a circuit, a device at least as wide, and a
    seeded configuration. *)

val instance :
  ?max_qubits:int -> ?max_gates:int -> unit -> instance QCheck.Gen.t

val print_instance : instance -> string

val shrink_instance : instance QCheck.Shrink.t
(** Shrinks the circuit only (device and config are kept, so the shrunk
    instance remains well-formed). *)

val instance_arb :
  ?max_qubits:int -> ?max_gates:int -> unit -> instance QCheck.arbitrary

val instance_of_seed : ?max_qubits:int -> ?max_gates:int -> int -> instance
(** Deterministic instance from a single integer seed — the fuzz
    campaign's unit of reproducibility. *)
