module Circuit = Quantum.Circuit
module Router = Engine.Router

(** Time/trial-budgeted differential fuzz campaigns with counterexample
    minimisation.

    Each trial derives a deterministic instance from (campaign seed,
    trial index), routes it with every selected router, and applies the
    conformance oracle plus the seed-determinism metamorphic check. On a
    failure the circuit is shrunk with greedy delta-debugging (chunks of
    halving size, then single gates) while the failure persists, and the
    minimal case is captured as a replayable {!Corpus.repro}. *)

type counterexample = {
  repro : Corpus.repro;
  original_gates : int;  (** gate count before shrinking *)
  shrunk_gates : int;
  shrink_steps : int;  (** accepted reductions *)
  path : string option;  (** where the repro file was written, if saved *)
}

type event =
  | Trial_done of int  (** 1-based index of the trial just finished *)
  | Counterexample of counterexample

type campaign = {
  trials_run : int;
  elapsed_s : float;
  routers : string list;
  failures : counterexample list;
}

val shrink :
  ?max_evals:int ->
  still_fails:(Circuit.t -> bool) ->
  Circuit.t ->
  Circuit.t * int
(** [shrink ~still_fails c] greedily removes gates while [still_fails]
    holds, evaluating the predicate at most [max_evals] (default 400)
    times; returns the shrunk circuit (never larger than [c]) and the
    number of accepted reductions. The result always satisfies
    [still_fails] when [c] did. *)

val broken_router : Router.t
(** A deliberately faulty router named ["broken"]: it routes with SABRE
    then drops the final inserted SWAP, so any instance that needs
    routing violates the oracle. Used to validate that the harness
    catches, shrinks and reports real bugs (and by [--inject-broken]). *)

val run :
  ?budget_s:float ->
  ?max_trials:int ->
  ?corpus_dir:string ->
  ?max_qubits:int ->
  ?max_gates:int ->
  ?on_event:(event -> unit) ->
  seed:int ->
  routers:string list ->
  unit ->
  campaign
(** Run a campaign over the named routers. Stops when the wall-clock
    budget [budget_s] or the trial budget [max_trials] is exhausted
    (default, when neither is given: 200 trials). After the first
    counterexample for a given (router, property) pair, that pair is not
    checked again — one minimal repro per defect per campaign. Repro
    files are written to [corpus_dir] when given. *)

val replay : Corpus.repro -> [ `Reproduced of string | `Passes | `Error of string ]
(** Re-run the stored check on the stored instance: [`Reproduced msg]
    when it still fails (with the fresh failure description), [`Passes]
    when the defect no longer manifests, [`Error] when the repro cannot
    be executed (unknown router or property). *)
