lib/quantum/commutation.ml: Gate List
