(** Quantum gate representation.

    Gates act on qubits identified by non-negative integer indices. A gate
    value is purely syntactic: whether an index denotes a logical or a
    physical qubit is a property of the circuit it lives in, not of the
    gate itself. The gate set follows the paper's assumption (Section II-A)
    that circuits are expressed with single-qubit gates and CNOT; SWAP is
    kept as a first-class constructor because the mapping algorithms insert
    it and later decompose it into three CNOTs. *)

(** Parametrised single-qubit gate kinds. The set covers the IBM
    elementary gates used by the paper's benchmarks (H, Pauli, phase,
    T/T{^ †}, rotations and the U1/U2/U3 family of OpenQASM 2.0). *)
type single_kind =
  | I  (** identity *)
  | H  (** Hadamard *)
  | X  (** Pauli-X *)
  | Y  (** Pauli-Y *)
  | Z  (** Pauli-Z *)
  | S  (** phase gate, sqrt(Z) *)
  | Sdg  (** S{^ †} *)
  | T  (** π/8 gate, sqrt(S) *)
  | Tdg  (** T{^ †} *)
  | Rx of float  (** rotation around X by the given angle (radians) *)
  | Ry of float  (** rotation around Y *)
  | Rz of float  (** rotation around Z *)
  | U1 of float  (** diagonal phase gate; U1(λ) = diag(1, e{^ iλ}) *)
  | U2 of float * float  (** U2(φ, λ), one-pulse OpenQASM gate *)
  | U3 of float * float * float  (** generic single-qubit unitary *)

type t =
  | Single of single_kind * int  (** single-qubit gate on one qubit *)
  | Cnot of int * int  (** [Cnot (control, target)] *)
  | Cz of int * int  (** controlled-Z; symmetric two-qubit gate *)
  | Swap of int * int  (** state exchange between two qubits *)
  | Barrier of int list  (** scheduling barrier across the listed qubits *)
  | Measure of int * int  (** [Measure (qubit, classical_bit)] *)

val qubits : t -> int list
(** [qubits g] lists the qubit indices [g] acts on, in declaration order. *)

val is_two_qubit : t -> bool
(** [is_two_qubit g] is [true] exactly for [Cnot], [Cz] and [Swap]. *)

val two_qubit_pair : t -> (int * int) option
(** [two_qubit_pair g] is [Some (a, b)] when [g] is a two-qubit gate. *)

val remap : (int -> int) -> t -> t
(** [remap f g] renames every qubit index [q] of [g] to [f q]. Classical
    bit indices of measurements are left untouched. *)

val dagger : t -> t
(** [dagger g] is the inverse gate of [g]. Raises [Invalid_argument] on
    [Measure], which is not unitary. [Barrier] is its own inverse. *)

val name : t -> string
(** [name g] is a short mnemonic ("h", "cx", "swap", ...), matching the
    OpenQASM 2.0 gate name where one exists. *)

val equal : t -> t -> bool
(** Structural equality; float parameters are compared exactly. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer in OpenQASM-like syntax, e.g. [cx q[0], q[3]]. *)

val to_string : t -> string
(** [to_string g] is {!pp} rendered to a string. Float parameters are
    printed with [%g] (6 significant digits) — human-readable, but NOT
    injective; use {!digest_string} wherever distinct gates must never
    serialise alike. *)

val digest_string : t -> string
(** Like {!to_string} but bit-exact: float parameters are rendered as
    hex-floats ([%h]), so two gates share a digest string iff they are
    {!equal} (with all NaN payloads conflated, matching the hex-float
    convention of [Config.digest]). This is the serialisation behind
    {!Circuit.digest} and {!Circuit.canonical_key}. *)

val single_kind_name : single_kind -> string
(** OpenQASM mnemonic of a single-qubit kind (without parameters). *)

val single_kind_dagger : single_kind -> single_kind
(** Inverse of a single-qubit kind. *)

val validate : n_qubits:int -> t -> (unit, string) result
(** [validate ~n_qubits g] checks that all qubit indices are within
    [0 .. n_qubits - 1], that two-qubit gates address two distinct qubits,
    and that barriers list distinct qubits. *)
