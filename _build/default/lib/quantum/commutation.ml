let diagonal_kind (k : Gate.single_kind) =
  match k with
  | I | Z | S | Sdg | T | Tdg | Rz _ | U1 _ -> true
  | H | X | Y | Rx _ | Ry _ | U2 _ | U3 _ -> false

let x_axis (k : Gate.single_kind) =
  match k with
  | I | X | Rx _ -> true
  | H | Y | Z | S | Sdg | T | Tdg | Ry _ | Rz _ | U1 _ | U2 _ | U3 _ -> false

let diagonal = function
  | Gate.Single (k, _) -> diagonal_kind k
  | Gate.Cz _ -> true
  | Gate.Cnot _ | Gate.Swap _ | Gate.Barrier _ | Gate.Measure _ -> false

let disjoint a b =
  not (List.exists (fun q -> List.mem q (Gate.qubits b)) (Gate.qubits a))

(* Commutation of two overlapping gates. The rules, all standard:
   - two diagonal gates commute;
   - a single-qubit diagonal commutes through a CNOT's control;
   - a single-qubit X-axis gate commutes through a CNOT's target;
   - CNOTs sharing (only) their control commute; likewise (only) their
     target; a CNOT commutes with itself;
   - a CZ commutes with a CNOT touching only the CNOT's control
     (both diagonal there). *)
let overlapping_commute a b =
  match (a, b) with
  | _ when diagonal a && diagonal b -> true
  | Gate.Single (k, q), Gate.Cnot (c, t) | Gate.Cnot (c, t), Gate.Single (k, q)
    ->
    (q = c && diagonal_kind k) || (q = t && x_axis k)
  | Gate.Cnot (c1, t1), Gate.Cnot (c2, t2) ->
    if c1 = c2 && t1 = t2 then true
    else if c1 = c2 then t1 <> t2
    else if t1 = t2 then c1 <> c2
    else (* overlap is control-of-one = target-of-other: no *)
      false
  | Gate.Cz (a1, a2), Gate.Cnot (c, t) | Gate.Cnot (c, t), Gate.Cz (a1, a2) ->
    (* CZ is diagonal; safe iff the shared qubits avoid the CNOT target *)
    t <> a1 && t <> a2 && (c = a1 || c = a2)
  | _ -> false

let commute a b =
  match (a, b) with
  | (Gate.Barrier _ | Gate.Measure _), _ | _, (Gate.Barrier _ | Gate.Measure _)
    -> disjoint a b
  | _ -> disjoint a b || overlapping_commute a b
