module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

type t = { n : int; amps : Complex.t array }

let create n =
  if n < 0 || n > 24 then invalid_arg "Statevector.create: unsupported size";
  let amps = Array.make (1 lsl n) Complex.zero in
  amps.(0) <- Complex.one;
  { n; amps }

let n_qubits s = s.n

let of_basis n k =
  let s = create n in
  if k < 0 || k >= 1 lsl n then invalid_arg "Statevector.of_basis";
  s.amps.(0) <- Complex.zero;
  s.amps.(k) <- Complex.one;
  s

let norm s =
  Float.sqrt
    (Array.fold_left (fun acc a -> acc +. Complex.norm2 a) 0.0 s.amps)

let random ?state n =
  let rng = match state with Some r -> r | None -> Random.State.make [| 7 |] in
  let gaussian () =
    (* Box–Muller *)
    let u1 = Random.State.float rng 1.0 +. 1e-12 in
    let u2 = Random.State.float rng 1.0 in
    Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)
  in
  let s = create n in
  Array.iteri
    (fun i _ -> s.amps.(i) <- { Complex.re = gaussian (); im = gaussian () })
    s.amps;
  let nrm = norm s in
  Array.iteri
    (fun i a ->
      s.amps.(i) <-
        { Complex.re = a.Complex.re /. nrm; im = a.Complex.im /. nrm })
    s.amps;
  s

let copy s = { n = s.n; amps = Array.copy s.amps }
let amplitude s k = s.amps.(k)

let cx x = { Complex.re = x; im = 0.0 }
let ci x = { Complex.re = 0.0; im = x }
let cexp theta = { Complex.re = Float.cos theta; im = Float.sin theta }

(* 2x2 matrix as (m00, m01, m10, m11) *)
let single_matrix kind =
  let open Gate in
  let h = 1.0 /. Float.sqrt 2.0 in
  match kind with
  | I -> (Complex.one, Complex.zero, Complex.zero, Complex.one)
  | H -> (cx h, cx h, cx h, cx (-.h))
  | X -> (Complex.zero, Complex.one, Complex.one, Complex.zero)
  | Y -> (Complex.zero, ci (-1.0), ci 1.0, Complex.zero)
  | Z -> (Complex.one, Complex.zero, Complex.zero, cx (-1.0))
  | S -> (Complex.one, Complex.zero, Complex.zero, ci 1.0)
  | Sdg -> (Complex.one, Complex.zero, Complex.zero, ci (-1.0))
  | T -> (Complex.one, Complex.zero, Complex.zero, cexp (Float.pi /. 4.0))
  | Tdg -> (Complex.one, Complex.zero, Complex.zero, cexp (-.Float.pi /. 4.0))
  | Rx a ->
    let c = cx (Float.cos (a /. 2.0)) and s = ci (-.Float.sin (a /. 2.0)) in
    (c, s, s, c)
  | Ry a ->
    let c = cx (Float.cos (a /. 2.0)) and s = Float.sin (a /. 2.0) in
    (c, cx (-.s), cx s, c)
  | Rz a ->
    (cexp (-.a /. 2.0), Complex.zero, Complex.zero, cexp (a /. 2.0))
  | U1 lam -> (Complex.one, Complex.zero, Complex.zero, cexp lam)
  | U2 (phi, lam) ->
    let h = cx (1.0 /. Float.sqrt 2.0) in
    ( h,
      Complex.neg (Complex.mul h (cexp lam)),
      Complex.mul h (cexp phi),
      Complex.mul h (cexp (phi +. lam)) )
  | U3 (theta, phi, lam) ->
    let c = Float.cos (theta /. 2.0) and s = Float.sin (theta /. 2.0) in
    ( cx c,
      Complex.neg (Complex.mul (cx s) (cexp lam)),
      Complex.mul (cx s) (cexp phi),
      Complex.mul (cx c) (cexp (phi +. lam)) )

let apply_single s kind q =
  let m00, m01, m10, m11 = single_matrix kind in
  let bit = 1 lsl q in
  let size = Array.length s.amps in
  let a = s.amps in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let a0 = a.(!i) and a1 = a.(j) in
      a.(!i) <- Complex.add (Complex.mul m00 a0) (Complex.mul m01 a1);
      a.(j) <- Complex.add (Complex.mul m10 a0) (Complex.mul m11 a1)
    end;
    incr i
  done

let apply_cnot s control target =
  let cb = 1 lsl control and tb = 1 lsl target in
  let a = s.amps in
  for k = 0 to Array.length a - 1 do
    if k land cb <> 0 && k land tb = 0 then begin
      let j = k lor tb in
      let tmp = a.(k) in
      a.(k) <- a.(j);
      a.(j) <- tmp
    end
  done

let apply_cz s q1 q2 =
  let b1 = 1 lsl q1 and b2 = 1 lsl q2 in
  let a = s.amps in
  for k = 0 to Array.length a - 1 do
    if k land b1 <> 0 && k land b2 <> 0 then a.(k) <- Complex.neg a.(k)
  done

let apply_swap s q1 q2 =
  let b1 = 1 lsl q1 and b2 = 1 lsl q2 in
  let a = s.amps in
  for k = 0 to Array.length a - 1 do
    if k land b1 <> 0 && k land b2 = 0 then begin
      let j = k lxor b1 lxor b2 in
      let tmp = a.(k) in
      a.(k) <- a.(j);
      a.(j) <- tmp
    end
  done

let apply s g =
  match g with
  | Gate.Single (kind, q) -> apply_single s kind q
  | Gate.Cnot (c, t) -> apply_cnot s c t
  | Gate.Cz (a, b) -> apply_cz s a b
  | Gate.Swap (a, b) -> apply_swap s a b
  | Gate.Barrier _ -> ()
  | Gate.Measure _ ->
    invalid_arg "Statevector.apply: cannot apply a measurement unitarily"

let apply_circuit ?(drop_measurements = false) s c =
  List.iter
    (fun g ->
      match g with
      | Gate.Measure _ when drop_measurements -> ()
      | _ -> apply s g)
    (Circuit.gates c)

let probability s q =
  let bit = 1 lsl q in
  let acc = ref 0.0 in
  Array.iteri
    (fun k a -> if k land bit <> 0 then acc := !acc +. Complex.norm2 a)
    s.amps;
  !acc

let inner_product a b =
  if a.n <> b.n then invalid_arg "Statevector.inner_product: size mismatch";
  let acc = ref Complex.zero in
  for k = 0 to Array.length a.amps - 1 do
    acc := Complex.add !acc (Complex.mul (Complex.conj a.amps.(k)) b.amps.(k))
  done;
  !acc

let fidelity a b = Complex.norm2 (inner_product a b)
let approx_equal ?(tol = 1e-9) a b = Float.abs (fidelity a b -. 1.0) <= tol

let embed s m =
  if m < s.n then invalid_arg "Statevector.embed: target smaller than source";
  let out = create m in
  out.amps.(0) <- Complex.zero;
  Array.blit s.amps 0 out.amps 0 (Array.length s.amps);
  out

let permute s p =
  if Array.length p <> s.n then invalid_arg "Statevector.permute: arity";
  let seen = Array.make s.n false in
  Array.iter
    (fun q ->
      if q < 0 || q >= s.n || seen.(q) then
        invalid_arg "Statevector.permute: not a permutation";
      seen.(q) <- true)
    p;
  let out = create s.n in
  let size = Array.length s.amps in
  for k = 0 to size - 1 do
    (* index j of the output: bit q of j = bit p.(q) of k *)
    let j = ref 0 in
    for q = 0 to s.n - 1 do
      if k land (1 lsl p.(q)) <> 0 then j := !j lor (1 lsl q)
    done;
    out.amps.(!j) <- s.amps.(k)
  done;
  out
