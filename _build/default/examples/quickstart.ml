(* Quickstart: build a circuit, route it onto a device, inspect and
   verify the result.

   Run with:  dune exec examples/quickstart.exe *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let () =
  (* 1. A logical circuit. This is the paper's Fig. 3(c): six CNOTs on
     four qubits. Qubit indices are logical — no device yet. *)
  let circuit =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1);
        Gate.Cnot (2, 3);
        Gate.Cnot (1, 3);
        Gate.Cnot (1, 2);
        Gate.Cnot (2, 3);
        Gate.Cnot (0, 3);
      ]
  in
  Format.printf "== logical circuit ==@.%a@.@." Circuit.pp circuit;

  (* 2. A device. Fig. 3(b): a 4-qubit square — the diagonals are NOT
     coupled, so some of the CNOTs above cannot run directly. *)
  let device =
    Hardware.Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ]
  in
  Format.printf "== device ==@.%a@.@." Hardware.Coupling.pp device;

  (* 3. Route with SABRE. The compiler picks an initial mapping with the
     reverse-traversal trick and inserts the SWAPs the hardware needs. *)
  let result = Sabre.Compiler.run device circuit in
  Format.printf "== routed circuit ==@.%a@.@." Circuit.pp result.physical;
  Format.printf "== stats ==@.%a@.@." Sabre.Stats.pp result.stats;

  (* 4. Verify: the routed circuit must be hardware-compliant and
     semantically identical to the original (two independent checkers). *)
  let initial = Sabre.Mapping.l2p_array result.initial_mapping in
  let final = Sabre.Mapping.l2p_array result.final_mapping in
  (match
     Sim.Tracker.check ~coupling:device ~initial ~final ~logical:circuit
       ~physical:result.physical ()
   with
  | Ok () -> Format.printf "tracker verification      : OK@."
  | Error e -> Format.printf "tracker verification      : %a@." Sim.Tracker.pp_error e);
  let equivalent =
    Sim.Equivalence.routed_equivalent ~initial ~final ~logical:circuit
      ~physical:result.physical ()
  in
  Format.printf "state-vector verification : %s@."
    (if equivalent then "OK" else "FAILED");

  (* 5. Lower the inserted SWAPs to CNOTs and export as OpenQASM. *)
  let elementary = Quantum.Decompose.expand_swaps result.physical in
  Format.printf "@.== OpenQASM 2.0 output ==@.%s"
    (Quantum.Qasm.to_string elementary)
