module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Noise = Hardware.Noise
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats
module Routing = Sabre_core.Routing_pass
module Seeder = Sabre_core.Initial_mapping.Seeder

type objective = Swaps | Depth | Success_prob

let objective_name = function
  | Swaps -> "swaps"
  | Depth -> "depth"
  | Success_prob -> "success"

let objective_of_string = function
  | "swaps" -> Ok Swaps
  | "depth" -> Ok Depth
  | "success" | "success-prob" -> Ok Success_prob
  | s ->
    Error
      (Printf.sprintf
         "unknown objective %S (available: swaps, depth, success)" s)

type entry = {
  router : string;
  seeder : string;
  overrides : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Per-entry config overrides                                          *)
(* ------------------------------------------------------------------ *)

let override_keys =
  [
    "heuristic";
    "extended-set-size";
    "extended-set-weight";
    "decay-increment";
    "decay-reset-interval";
    "trials";
    "traversals";
    "seed";
    "stall-limit";
    "commutation-aware";
  ]

let parse_bool key v =
  match v with
  | "true" | "on" | "1" -> Ok true
  | "false" | "off" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "override %s: expected a boolean, got %S" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None ->
    Error (Printf.sprintf "override %s: expected an integer, got %S" key v)

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "override %s: expected a number, got %S" key v)

let apply_override config (key, v) =
  let open Config in
  match key with
  | "heuristic" -> (
    match v with
    | "basic" -> Ok { config with heuristic = Basic }
    | "lookahead" -> Ok { config with heuristic = Lookahead }
    | "decay" -> Ok { config with heuristic = Decay }
    | _ ->
      Error
        (Printf.sprintf
           "override heuristic: unknown value %S (available: basic, \
            lookahead, decay)"
           v))
  | "extended-set-size" ->
    Result.map (fun i -> { config with extended_set_size = i }) (parse_int key v)
  | "extended-set-weight" ->
    Result.map
      (fun f -> { config with extended_set_weight = f })
      (parse_float key v)
  | "decay-increment" ->
    Result.map (fun f -> { config with decay_increment = f }) (parse_float key v)
  | "decay-reset-interval" ->
    Result.map
      (fun i -> { config with decay_reset_interval = i })
      (parse_int key v)
  | "trials" -> Result.map (fun i -> { config with trials = i }) (parse_int key v)
  | "traversals" ->
    Result.map (fun i -> { config with traversals = i }) (parse_int key v)
  | "seed" -> Result.map (fun i -> { config with seed = i }) (parse_int key v)
  | "stall-limit" ->
    if v = "none" then Ok { config with stall_limit = None }
    else
      Result.map (fun i -> { config with stall_limit = Some i }) (parse_int key v)
  | "commutation-aware" ->
    Result.map (fun b -> { config with commutation_aware = b }) (parse_bool key v)
  | _ ->
    (* the same suggest-style miss as Router/Seeder.find_suggest: name
       the culprit, list what would have worked *)
    Error
      (Printf.sprintf "unknown override key %S (available: %s)" key
         (String.concat ", " override_keys))

let apply_overrides config overrides =
  let rec go config = function
    | [] -> (
      match Config.validate config with
      | Ok () -> Ok config
      | Error msg -> Error ("overrides produce an invalid config: " ^ msg))
    | kv :: rest -> (
      match apply_override config kv with
      | Ok config -> go config rest
      | Error _ as e -> e)
  in
  go config overrides

let entry_name e =
  let base =
    if e.seeder = Seeder.reverse_traversal.Seeder.name then e.router
    else e.router ^ "/" ^ e.seeder
  in
  match e.overrides with
  | [] -> base
  | kvs ->
    base ^ ":" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

let parse_overrides part =
  let kvs = String.split_on_char ',' part |> List.map String.trim in
  let parse kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "bad override %S: expected key=value" kv)
    | Some i ->
      let k = String.sub kv 0 i
      and v = String.sub kv (i + 1) (String.length kv - i - 1) in
      if k = "" || v = "" then
        Error (Printf.sprintf "bad override %S: expected key=value" kv)
      else Ok (k, v)
  in
  List.fold_right
    (fun kv acc ->
      match (parse kv, acc) with
      | Ok kv, Ok kvs -> Ok (kv :: kvs)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    kvs (Ok [])

let parse_spec spec =
  let parts = String.split_on_char ',' spec |> List.map String.trim in
  (* an override list may itself contain commas, so a fragment like
     "traversals=1" after "sabre:trials=1" belongs to the previous
     entry: re-join fragments that are pure key=value *)
  let parts =
    List.fold_left
      (fun acc p ->
        match acc with
        | prev :: rest
          when String.contains p '=' && not (String.contains p ':') ->
          (prev ^ "," ^ p) :: rest
        | _ -> p :: acc)
      [] parts
    |> List.rev
  in
  if parts = [] || List.exists (fun p -> p = "") parts then
    Error
      (Printf.sprintf
         "bad portfolio spec %S: expected ROUTER[/SEEDER][:key=val,...],..."
         spec)
  else
    let parse p =
      let name_part, overrides =
        match String.index_opt p ':' with
        | None -> (Ok p, Ok [])
        | Some i ->
          let hd = String.sub p 0 i
          and tl = String.sub p (i + 1) (String.length p - i - 1) in
          if hd = "" || tl = "" then
            ( Error
                (Printf.sprintf
                   "bad portfolio entry %S: expected \
                    ROUTER[/SEEDER][:key=val,...]"
                   p),
              Ok [] )
          else (Ok hd, parse_overrides tl)
      in
      match (name_part, overrides) with
      | Error msg, _ | _, Error msg -> Error msg
      | Ok name_part, _ when String.contains name_part '=' ->
        (* a leading key=val fragment: an override with no entry in
           front of it to attach to (names never contain '=') *)
        Error
          (Printf.sprintf
             "bad portfolio entry %S: override fragments must follow a \
              ROUTER[/SEEDER]: prefix"
             p)
      | Ok name_part, Ok overrides -> (
        (* validate keys and value syntax now, against the default
           config; [run] re-applies them to the caller's base config *)
        match apply_overrides Config.default overrides with
        | Error msg -> Error msg
        | Ok _ -> (
          match String.index_opt name_part '/' with
          | None ->
            Ok
              {
                router = name_part;
                seeder = Seeder.reverse_traversal.Seeder.name;
                overrides;
              }
          | Some i ->
            let router = String.sub name_part 0 i
            and seeder =
              String.sub name_part (i + 1) (String.length name_part - i - 1)
            in
            if router = "" || seeder = "" || String.contains seeder '/' then
              Error
                (Printf.sprintf
                   "bad portfolio entry %S: expected ROUTER[/SEEDER]" p)
            else Ok { router; seeder; overrides }))
    in
    List.fold_right
      (fun p acc ->
        match (parse p, acc) with
        | Ok e, Ok es -> Ok (e :: es)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      parts (Ok [])

type member = {
  entry : entry;
  physical : Circuit.t;
  initial : Mapping.t;
  final : Mapping.t;
  n_swaps : int;
  depth : int;
  success_prob : float option;
  stats : Stats.t;
}

type outcome = (member, string) result
type entry_stat = { e_wall_s : float; e_cancelled : bool }

type report = {
  objective : objective;
  outcomes : outcome array;
  entry_stats : entry_stat array;
  winner : int;
  wall_s : float;
  domains : int;
  race : bool;
}

let winner_member r =
  match r.outcomes.(r.winner) with
  | Ok m -> m
  | Error _ -> assert false

(* lower-is-better scalar; success probability negated so one ordering
   serves all three objectives *)
let objective_value objective m =
  match objective with
  | Swaps -> float_of_int m.n_swaps
  | Depth -> float_of_int m.depth
  | Success_prob -> (
    match m.success_prob with
    | Some p -> -.p
    | None -> invalid_arg "Portfolio.objective_value: no success probability")

(* strict improvement only: ties keep the earlier entry, the same
   first-best-wins rule Trial_runner.best applies to trials *)
let better objective (_, a) (_, b) =
  match (a, b) with
  | Ok a, Ok b -> objective_value objective a < objective_value objective b
  | Ok _, Error _ -> true
  | Error _, _ -> false

let wall = Unix.gettimeofday
let cancelled_msg = "cancelled: a completed entry is unbeatable"

let run ?(domains = 1) ?(objective = Swaps) ?(config = Config.default) ?noise
    ?(verify = false) ?(race = false) ?(cache = false) ?cancel
    ?(instrument = Instrument.null) coupling circuit entries =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg));
  if entries = [] then invalid_arg "Engine.Portfolio: empty entry list";
  let resolved =
    List.map
      (fun e ->
        let router =
          match Router.find_suggest e.router with
          | Ok r -> r
          | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg)
        in
        let seeder =
          match Seeder.find_suggest e.seeder with
          | Ok s -> s
          | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg)
        in
        let config =
          match apply_overrides config e.overrides with
          | Ok c -> c
          | Error msg -> invalid_arg ("Engine.Portfolio: " ^ msg)
        in
        (e, router, seeder, config))
      entries
    |> Array.of_list
  in
  (* success probability needs a noise model; default to the uniform
     Tokyo-average calibration over this device *)
  let noise =
    match (noise, objective) with
    | (Some _ as n), _ -> n
    | None, Success_prob -> Some (Noise.uniform coupling)
    | None, _ -> None
  in
  (* Racing tokens. Success_prob has no monotone counter, so it opts
     out of pruning (no group) — the ?cancel probe still applies.
     Without racing or a probe there is no token at all, and the
     compile path is exactly the unraced one. *)
  let bound =
    match objective with
    | Swaps -> Some Race.Swaps_bound
    | Depth -> Some Race.Depth_bound
    | Success_prob -> None
  in
  let group = if race then Option.map (fun _ -> Race.group ()) bound else None in
  let tokens =
    Array.mapi
      (fun i _ ->
        match (group, bound) with
        | Some g, Some b ->
          Some (Race.entry ~group:g ~bound:b ~index:i ?should_stop:cancel ())
        | _ -> Option.map (fun f -> Race.token ~should_stop:f ()) cancel)
      resolved
  in
  (* warm the device-keyed distance cache once on the calling domain so
     workers start from a hit instead of racing on the first miss *)
  ignore (Hardware.Dist_cache.hop_distances coupling);
  let entry_walls = Array.make (Array.length resolved) 0.0 in
  let compile i (e, router, seeder, config) () =
    let t0 = wall () in
    (* the entry name encodes router, seeder and overrides, so it is
       exactly the spec component of the compile-cache key; a cached
       entry returns instantly and its Race.complete below becomes an
       unbeatable incumbent that prunes the rest of the race *)
    let cache_spec = if cache then Some (entry_name e) else None in
    let outcome =
      match
        Context.create ~config ~trial_mode:Trial_runner.Sequential ?noise
          ?race:tokens.(i) ~instrument ?cache_spec coupling circuit
        |> Pipeline.run ~instrument
             (Pipeline.default ~router
                ~initial_strategy:(Initial_mapping_pass.Seeded seeder) ~verify
                ())
      with
      | ctx ->
        let r = Context.routed_exn ctx in
        let physical = r.Context.physical in
        let m =
          {
            entry = e;
            physical;
            initial = r.Context.trial_initial;
            final = r.Context.final_mapping;
            n_swaps = r.Context.n_swaps;
            depth = Quantum.Depth.depth_swap3 physical;
            success_prob =
              Option.map
                (fun n -> Noise.circuit_success_probability n physical)
                noise;
            stats = Context.stats ctx ~time_s:0.0;
          }
        in
        (match tokens.(i) with
        | Some t -> Race.complete t ~swaps:m.n_swaps ~depth:m.depth
        | None -> ());
        Ok m
      | exception Routing.Cancelled -> Error cancelled_msg
      | exception Router.Route_failed msg -> Error msg
      | exception Verify_pass.Verify_failed msg -> Error msg
      | exception Invalid_argument msg -> Error msg
    in
    entry_walls.(i) <- wall () -. t0;
    outcome
  in
  let t0 = wall () in
  let domains = max 1 (min domains (Array.length resolved)) in
  let jobs = Array.mapi compile resolved in
  let outcomes =
    if Array.for_all Option.is_none tokens then Scheduler.run ~domains jobs
    else
      Scheduler.run_cancellable ~chunk:1
        ~cancelled:(fun i ->
          match tokens.(i) with
          | Some t -> Race.skip_at_claim t
          | None -> false)
        ~domains jobs
      |> Array.map (function Some o -> o | None -> Error cancelled_msg)
  in
  let wall_s = wall () -. t0 in
  let entry_stats =
    Array.mapi
      (fun i o ->
        let hard =
          match tokens.(i) with
          | Some t -> Race.was_cancelled t
          | None -> false
        in
        {
          e_wall_s = entry_walls.(i);
          e_cancelled = (hard || o = Error cancelled_msg);
        })
      outcomes
  in
  Array.iteri
    (fun i o ->
      let name = entry_name (let e, _, _, _ = resolved.(i) in e) in
      let count n v =
        instrument.Instrument.emit
          (Instrument.Counter
             { pass = "portfolio"; name = name ^ "." ^ n; value = v })
      in
      (match o with
      | Ok m ->
        count "swaps" m.n_swaps;
        count "depth" m.depth
      | Error _ -> count "failed" 1);
      if entry_stats.(i).e_cancelled then count "cancelled" 1)
    outcomes;
  let indexed = Array.mapi (fun i o -> (i, o)) outcomes in
  let winner_i, winner = Trial_runner.best ~better:(better objective) indexed in
  (match winner with
  | Ok _ -> ()
  | Error _ ->
    let msgs =
      Array.to_list outcomes
      |> List.mapi (fun i o ->
             let e, _, _, _ = resolved.(i) in
             match o with
             | Error m -> entry_name e ^ ": " ^ m
             | Ok _ -> assert false)
    in
    raise
      (Router.Route_failed
         ("portfolio: every entry failed — " ^ String.concat "; " msgs)));
  instrument.Instrument.emit
    (Instrument.Counter { pass = "portfolio"; name = "winner"; value = winner_i });
  {
    objective;
    outcomes;
    entry_stats;
    winner = winner_i;
    wall_s;
    domains;
    race = group <> None;
  }
