module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Depth = Quantum.Depth
module Render = Quantum.Render

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- ALAP / slack (scheduling extensions) ------------------------- *)

let test_alap_same_depth () =
  let c = Workloads.Qft.circuit 5 in
  check Alcotest.int "same makespan" (Depth.asap c).Depth.depth
    (Depth.alap c).Depth.depth

let test_alap_never_earlier () =
  let c = Helpers.random_circuit ~seed:3 ~n:6 ~gates:50 in
  let early = (Depth.asap c).Depth.levels in
  let late = (Depth.alap c).Depth.levels in
  Array.iteri
    (fun i e -> check Alcotest.bool "alap >= asap" true (late.(i) >= e))
    early

let test_slack_values () =
  (* q0 has a 3-gate chain (critical), q1 a single gate: slack 2 *)
  let c =
    Circuit.create ~n_qubits:2
      [
        Gate.Single (H, 0); Gate.Single (T, 0); Gate.Single (H, 0);
        Gate.Single (X, 1);
      ]
  in
  let s = Depth.slack c in
  check Alcotest.int "critical H" 0 s.(0);
  check Alcotest.int "critical T" 0 s.(1);
  check Alcotest.int "critical H2" 0 s.(2);
  check Alcotest.int "idle X slack" 2 s.(3)

let test_alap_respects_dependencies () =
  let c = Helpers.random_circuit ~seed:4 ~n:5 ~gates:40 in
  let { Depth.levels; _ } = Depth.alap c in
  let gates = Circuit.gate_array c in
  let dag = Quantum.Dag.of_circuit c in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun j ->
          check Alcotest.bool "edge order" true (levels.(i) < levels.(j)))
        (Quantum.Dag.successors dag i))
    gates

(* --- ASCII rendering ---------------------------------------------- *)

let test_ascii_smoke () =
  let c =
    Circuit.create ~n_qubits:3
      [
        Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Cz (1, 2);
        Gate.Swap (0, 2); Gate.Measure (2, 0);
      ]
  in
  let art = Render.circuit_ascii c in
  let lines = String.split_on_char '\n' art |> List.filter (fun l -> l <> "") in
  check Alcotest.int "one line per qubit" 3 (List.length lines);
  check Alcotest.bool "control marker" true (String.contains art '*');
  check Alcotest.bool "target marker" true (String.contains art 'X');
  check Alcotest.bool "swap marker" true (String.contains art 'x');
  check Alcotest.bool "measure marker" true (String.contains art 'M');
  check Alcotest.bool "hadamard" true (String.contains art 'H')

let test_ascii_connector_crosses_middle_qubit () =
  let c = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 2) ] in
  let art = Render.circuit_ascii c in
  (match String.split_on_char '\n' art with
  | [ _; q1; _; "" ] | [ _; q1; _ ] ->
    check Alcotest.bool "middle row carries |" true (String.contains q1 '|')
  | _ -> Alcotest.failf "unexpected layout:\n%s" art)

let test_ascii_truncation () =
  let c =
    Circuit.create ~n_qubits:1
      (List.init 50 (fun _ -> Gate.Single (Gate.H, 0)))
  in
  let art = Render.circuit_ascii ~max_columns:10 c in
  check Alcotest.bool "ellipsis" true
    (String.length art > 3
    && String.sub art (String.length art - 4) 3 = "...")

let test_ascii_empty () =
  check Alcotest.string "empty" "(empty register)"
    (Render.circuit_ascii (Circuit.create ~n_qubits:0 []))

(* --- dot exports --------------------------------------------------- *)

let test_coupling_dot () =
  let dot = Hardware.Coupling.to_dot (Hardware.Devices.ibm_q5_yorktown ()) in
  check Alcotest.bool "graph header" true
    (String.length dot > 5 && String.sub dot 0 5 = "graph");
  (* 6 undirected edges *)
  let count_sub sub s =
    let n = ref 0 in
    let sl = String.length sub in
    for i = 0 to String.length s - sl do
      if String.sub s i sl = sub then incr n
    done;
    !n
  in
  check Alcotest.int "6 edges" 6 (count_sub " -- " dot)

let test_dag_dot () =
  let c = Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ] in
  let dot = Render.dag_dot (Quantum.Dag.of_circuit c) in
  check Alcotest.bool "digraph" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  check Alcotest.bool "edge" true
    (let has_edge = ref false in
     String.split_on_char '\n' dot
     |> List.iter (fun l ->
            if l = "  g0 -> g1;" then has_edge := true);
     !has_edge)

let suite =
  [
    tc "alap same depth" `Quick test_alap_same_depth;
    tc "alap never earlier" `Quick test_alap_never_earlier;
    tc "slack values" `Quick test_slack_values;
    tc "alap respects dependencies" `Quick test_alap_respects_dependencies;
    tc "ascii smoke" `Quick test_ascii_smoke;
    tc "ascii connector" `Quick test_ascii_connector_crosses_middle_qubit;
    tc "ascii truncation" `Quick test_ascii_truncation;
    tc "ascii empty" `Quick test_ascii_empty;
    tc "coupling dot" `Quick test_coupling_dot;
    tc "dag dot" `Quick test_dag_dot;
  ]
