module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  stats : Stats.t;
}

let validate config =
  match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sabre.Compiler: " ^ msg)

let finish t0 ctx =
  let time_s = Sys.time () -. t0 in
  let r = Engine.Context.routed_exn ctx in
  {
    physical = r.Engine.Context.physical;
    initial_mapping = r.Engine.Context.trial_initial;
    final_mapping = r.Engine.Context.final_mapping;
    stats = Engine.Context.stats ctx ~time_s;
  }

let run ?(config = Config.default) ?dist ?noise coupling circuit =
  validate config;
  let t0 = Sys.time () in
  Engine.Context.create ~config ?dist ?noise coupling circuit
  |> Engine.Pipeline.run (Engine.Pipeline.default ())
  |> finish t0

let route_with_initial ?(config = Config.default) ?dist coupling circuit
    initial =
  validate config;
  let t0 = Sys.time () in
  (* the historical contract: exactly one forward traversal, no trials *)
  let config = { config with Config.trials = 1; traversals = 1 } in
  Engine.Context.create ~config ?dist ~initial coupling circuit
  |> Engine.Pipeline.run (Engine.Pipeline.default ())
  |> finish t0
