test/suite_tracker.ml: Alcotest Hardware Quantum Sim
